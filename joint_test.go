package p2

import (
	"testing"
)

func TestPlanJointMegatronStyle(t *testing.T) {
	sys := A100System(4)
	jp, err := PlanJoint(sys, []int{8, 8}, []Reduction{
		{ReduceAxes: []int{0}, Bytes: 64e6, Count: 96}, // activations, tensor axis
		{ReduceAxes: []int{1}, Bytes: 1.5e9},           // gradients, data axis
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(jp.Choices) != 3 {
		t.Fatalf("choices = %d, want 3 placements", len(jp.Choices))
	}
	// Ranking is ascending by total.
	for i := 1; i < len(jp.Choices); i++ {
		if jp.Choices[i-1].Total > jp.Choices[i].Total {
			t.Fatal("choices not sorted by total")
		}
	}
	best := jp.Best()
	// With heavy per-step activation traffic, the tensor axis must stay
	// inside a node: best matrix is [[1 8] [4 2]].
	if got := best.Matrix.String(); got != "[[1 8] [4 2]]" {
		t.Errorf("best joint placement = %s, want [[1 8] [4 2]]", got)
	}
	if len(best.PerReduction) != 2 || len(best.Costs) != 2 {
		t.Fatal("per-reduction results missing")
	}
	sum := best.Costs[0] + best.Costs[1]
	if diff := sum - best.Total; diff > 1e-9 || diff < -1e-9 {
		t.Errorf("Total %v != sum of costs %v", best.Total, sum)
	}
}

func TestPlanJointWeightSensitivity(t *testing.T) {
	// When the data-axis gradient reduction dominates (huge payload, no
	// activation traffic), the best placement flips to the one keeping
	// the data axis local: [[4 2] [1 8]].
	sys := A100System(4)
	jp, err := PlanJoint(sys, []int{8, 8}, []Reduction{
		{ReduceAxes: []int{0}, Bytes: 1e3}, // negligible
		{ReduceAxes: []int{1}, Bytes: 8e9}, // dominant
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := jp.Best().Matrix.String(); got != "[[4 2] [1 8]]" {
		t.Errorf("best placement = %s, want [[4 2] [1 8]]", got)
	}
}

func TestPlanJointCountWeighting(t *testing.T) {
	// Count multiplies the per-occurrence cost.
	sys := V100System(2)
	one, err := PlanJoint(sys, []int{4, 4}, []Reduction{
		{ReduceAxes: []int{0}, Bytes: 1e8, Count: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	ten, err := PlanJoint(sys, []int{4, 4}, []Reduction{
		{ReduceAxes: []int{0}, Bytes: 1e8, Count: 10},
	})
	if err != nil {
		t.Fatal(err)
	}
	ratio := ten.Best().Total / one.Best().Total
	if ratio < 9.99 || ratio > 10.01 {
		t.Errorf("count weighting ratio = %v, want 10", ratio)
	}
}

func TestPlanJointErrors(t *testing.T) {
	sys := A100System(2)
	if _, err := PlanJoint(sys, []int{8, 4}, nil); err == nil {
		t.Error("empty reductions accepted")
	}
	if _, err := PlanJoint(sys, []int{5, 5}, []Reduction{{ReduceAxes: []int{0}, Bytes: 1}}); err == nil {
		t.Error("invalid axes accepted")
	}
	if _, err := PlanJoint(sys, []int{8, 4}, []Reduction{{ReduceAxes: []int{9}, Bytes: 1}}); err == nil {
		t.Error("invalid reduce axis accepted")
	}
}

func TestJointMeasureConcurrent(t *testing.T) {
	sys := A100System(2)
	jp, err := PlanJoint(sys, []int{8, 4}, []Reduction{
		{ReduceAxes: []int{0}, Bytes: 1e9},
		{ReduceAxes: []int{1}, Bytes: 2e9},
	})
	if err != nil {
		t.Fatal(err)
	}
	best := jp.Best()
	times := best.MeasureConcurrent()
	if len(times) != 2 {
		t.Fatalf("times = %v", times)
	}
	for i, v := range times {
		if v <= 0 {
			t.Errorf("reduction %d time %v", i, v)
		}
		// Concurrent completion can't beat the reduction running alone.
		solo := best.PerReduction[i].Measure()
		if v < solo*0.999 {
			t.Errorf("reduction %d concurrent (%v) faster than solo (%v)", i, v, solo)
		}
	}
}
