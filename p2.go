// Package p2 is a Go implementation of P², the parallelism-placement and
// reduction-strategy synthesizer of "Synthesizing Optimal Parallelism
// Placement and Reduction Strategies on Hierarchical Systems for Deep
// Learning" (MLSys 2022).
//
// Given a hierarchical accelerator system (nodes, switches, NICs with their
// bandwidths), the sizes of the parallelism axes of a training job (data
// parallelism, parameter sharding, ...), and the axes a gradient reduction
// runs over, p2:
//
//  1. enumerates every topology-aware parallelism placement (a parallelism
//     matrix mapping axes onto hierarchy levels),
//  2. synthesizes every semantically valid reduction program — sequences of
//     AllReduce / ReduceScatter / AllGather / Reduce / Broadcast steps over
//     hierarchy-derived device groups — per placement, and
//  3. ranks all (placement, program) pairs with a topology-aware analytic
//     cost model, so that only a handful of candidates need measuring.
//
// The typical entry point is Plan:
//
//	plan, err := p2.Plan(p2.A100System(4), p2.Request{
//		Axes:       []int{4, 16}, // data parallel × parameter shards
//		ReduceAxes: []int{0},     // reduce gradients across data parallelism
//	})
//	best := plan.Strategies[0] // fastest predicted (placement, program)
//
// An event-level network emulator (Strategy.Measure) stands in for real
// hardware; see DESIGN.md for the substitution rationale.
package p2

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sort"
	"strconv"
	"strings"

	"p2/internal/cost"
	"p2/internal/dsl"
	"p2/internal/hierarchy"
	"p2/internal/lower"
	"p2/internal/netsim"
	"p2/internal/placement"
	"p2/internal/plan"
	"p2/internal/synth"
	"p2/internal/topology"
)

// System is a hierarchical accelerator system (re-exported from the
// topology layer). Construct one with NewSystem or use the presets.
type System = topology.System

// Level is one tier of a system hierarchy.
type Level = topology.Level

// Link describes an interconnect uplink (bandwidth in bytes/s).
type Link = topology.Link

// LinkOverride degrades one specific entity's uplink (bandwidth/latency
// multipliers, loss fraction, or a fully down link), making a system's
// fabric heterogeneous; attach overrides with System.WithOverrides.
type LinkOverride = topology.LinkOverride

// ParseFaults parses a fault-spec string ("LEVEL:ENTITY:EFFECT[,...]"
// clauses, ';'-separated — see topology.ParseFaults for the grammar)
// against a concrete system, yielding overrides for System.WithOverrides.
func ParseFaults(sys *System, spec string) ([]LinkOverride, error) {
	return topology.ParseFaults(sys, spec)
}

// Matrix is a parallelism placement matrix.
type Matrix = placement.Matrix

// Program is a reduction program in the paper's DSL.
type Program = dsl.Program

// Algorithm selects the modelled NCCL algorithm.
type Algorithm = cost.Algorithm

// SimOptions tune the event-level network emulator used by
// Strategy.MeasureWith/TraceWith (re-exported from the netsim layer).
type SimOptions = netsim.Options

// Re-exported algorithm constants.
const (
	Ring            = cost.Ring
	Tree            = cost.Tree
	HalvingDoubling = cost.HalvingDoubling
)

// Re-exported algorithm sets for Request.Algos: the paper's two evaluated
// algorithms, and the set extended with halving-doubling.
var (
	Algorithms         = cost.Algorithms
	ExtendedAlgorithms = cost.ExtendedAlgorithms
)

// MeasureMode selects measured-in-the-loop planning (re-exported from the
// planning engine): whether the analytic ranking is re-ordered by emulated
// runtimes before it is returned.
type MeasureMode = plan.RerankMode

// Measured-in-the-loop planning modes for Request.Measure and
// JointOptions.Measure.
const (
	// MeasureOff ranks purely analytically (the default).
	MeasureOff = plan.RerankOff
	// MeasureRerank measures the analytic top-K survivors on the network
	// emulator and re-sorts those K candidates by measured time — the
	// paper's "measure only a handful of candidates" loop closed: the
	// analytic stage stays bound-pruned and fast, and the final ranking
	// is backed by emulation at a cost of K extra emulator runs. With
	// TopK = 0 every candidate survives, so the mode equals MeasureRankAll.
	MeasureRerank = plan.RerankTopK
	// MeasureRankAll measures every candidate and orders the whole
	// (placement × program) space by measured time — the exhaustive
	// reference. It disables the analytic stage's top-K pruning (analytic
	// bounds cannot cut a measured ranking) and costs one emulator run
	// per candidate.
	MeasureRankAll = plan.RerankAll
)

// ParseMeasureMode parses a measured-mode name ("off", "rerank",
// "rank-all", case-insensitive) as spelled by MeasureMode.String — the
// shared vocabulary of every -measure CLI flag.
func ParseMeasureMode(s string) (MeasureMode, error) { return plan.ParseRerankMode(s) }

// NewSystem builds a custom system; levels are ordered root-most first and
// uplinks align with levels.
func NewSystem(name string, levels []Level, uplinks []Link) (*System, error) {
	return topology.New(name, levels, uplinks)
}

// A100System is the paper's Fig. 9a preset: nodes × 16 A100 GPUs behind one
// NVSwitch and one NIC per node.
func A100System(nodes int) *System { return topology.A100System(nodes) }

// V100System is the paper's Fig. 9b preset: nodes × 8 V100 GPUs on an
// NVLink ring with a shared NIC per node.
func V100System(nodes int) *System { return topology.V100System(nodes) }

// Fig2aSystem is the paper's running example: 1 rack × 2 servers × 2 CPUs
// × 4 GPUs.
func Fig2aSystem() *System { return topology.Fig2aSystem() }

// SuperPodSystem is a three-level DGX-style cluster: pods × nodes × 8 GPUs
// with NVSwitch, InfiniBand rails and an oversubscribed spine.
func SuperPodSystem(pods, nodesPerPod int) *System {
	return topology.SuperPodSystem(pods, nodesPerPod)
}

// ParseSystem resolves a preset name to a system, sharing one vocabulary
// between the CLI's -system flag and the serve API's "system" field:
// "a100" or "v100" scaled to nodes (nodes <= 0 defaults to 4, the CLI
// default), "fig2a" (fixed shape), or "superpod[:PxN]" (P pods × N nodes
// per pod, default 2x4). Names are case-insensitive.
func ParseSystem(name string, nodes int) (*System, error) {
	if nodes <= 0 {
		nodes = 4
	}
	lname := strings.ToLower(name)
	if shape, ok := strings.CutPrefix(lname, "superpod"); ok {
		pods, nodesPerPod := 2, 4
		if shape != "" {
			var err error
			if pods, nodesPerPod, err = parseSuperPodShape(shape); err != nil {
				return nil, err
			}
		}
		return topology.SuperPodSystem(pods, nodesPerPod), nil
	}
	switch lname {
	case "a100":
		return topology.A100System(nodes), nil
	case "v100":
		return topology.V100System(nodes), nil
	case "fig2a":
		return topology.Fig2aSystem(), nil
	default:
		return nil, fmt.Errorf("unknown system %q (want a100, v100, fig2a or superpod[:PxN])", name)
	}
}

// parseSuperPodShape parses the ":PxN" suffix of superpod:PxN.
func parseSuperPodShape(shape string) (pods, nodesPerPod int, err error) {
	rest, ok := strings.CutPrefix(shape, ":")
	if !ok {
		return 0, 0, fmt.Errorf("malformed superpod shape %q (want superpod:PxN, e.g. superpod:4x8)", shape)
	}
	p, n, ok := strings.Cut(rest, "x")
	if !ok {
		return 0, 0, fmt.Errorf("malformed superpod shape %q (want superpod:PxN, e.g. superpod:4x8)", shape)
	}
	if pods, err = strconv.Atoi(p); err == nil {
		nodesPerPod, err = strconv.Atoi(n)
	}
	if err != nil || pods <= 0 || nodesPerPod <= 0 {
		return 0, 0, fmt.Errorf("malformed superpod shape %q (want superpod:PxN, e.g. superpod:4x8)", shape)
	}
	return pods, nodesPerPod, nil
}

// Placements enumerates every parallelism matrix mapping the given axes
// onto the system hierarchy (§3.1).
func Placements(sys *System, axes []int) ([]*Matrix, error) {
	return placement.Enumerate(sys.Hierarchy(), axes)
}

// Request describes what to synthesize.
type Request struct {
	// Axes are the parallelism axis sizes; their product must equal the
	// system's device count.
	Axes []int
	// ReduceAxes are the axis indices the reduction runs over.
	ReduceAxes []int
	// Algo is the NCCL algorithm to model (default Ring).
	Algo Algorithm
	// Algos, when it has two or more entries, searches the set instead of
	// pinning Algo: every step of every candidate independently runs the
	// algorithm predicted fastest for it (NCCL_ALGO as a tuned dimension,
	// per the paper's §5 cost-model knobs). Pass cost.ExtendedAlgorithms
	// (= p2.ExtendedAlgorithms) for the full Ring/Tree/HalvingDoubling
	// space. nil means {Algo}; a single entry pins that algorithm.
	Algos []Algorithm
	// Bytes is the per-device payload in bytes (default: the paper's
	// 2^29 × machines float32, where machines is the product of all
	// non-leaf level counts).
	Bytes float64
	// MaxProgramSize limits synthesized program length (default 5).
	MaxProgramSize int
	// Matrix restricts synthesis to a single placement instead of
	// enumerating all of them.
	Matrix *Matrix
	// Parallelism bounds the planner's worker pool (how many placements
	// are evaluated concurrently). 0 uses GOMAXPROCS; 1 processes the
	// placements sequentially. Any value yields the same ranking.
	Parallelism int
	// TopK, when positive, keeps only the K fastest-predicted strategies
	// — exactly the first K entries of the full ranking — using bounded
	// per-worker heaps instead of materializing the whole cross-product.
	// In measured modes (Measure) it bounds the final measured ranking
	// instead; see MeasureRerank and MeasureRankAll for how each stage
	// uses it.
	TopK int
	// Measure selects measured-in-the-loop planning: MeasureOff (the
	// zero value) returns the analytic ranking as before; MeasureRerank
	// re-ranks the analytic top-K on the network emulator; MeasureRankAll
	// measures every candidate. In measured modes Strategies are ordered
	// by (and carry) Strategy.Measured, and PlanResult.Stats reports the
	// emulation effort and the analytic-vs-measured rank inversions.
	Measure MeasureMode
	// SimOpts tunes the emulator used by measured planning modes (the
	// zero value is the emulator defaults); ignored with MeasureOff.
	SimOpts SimOptions
}

// Strategy is one candidate (placement, program) pair with its predicted
// — and, in measured planning modes, emulated — runtime.
type Strategy struct {
	// Matrix is the parallelism placement and Program the reduction
	// program (in the paper's DSL) of the candidate.
	Matrix    *Matrix
	Program   Program
	Predicted float64 // analytic model estimate, seconds
	// Measured is the emulated runtime in seconds when the plan ran in a
	// measured mode (Request.Measure); 0 in purely analytic plans — call
	// Measure/MeasureWith to emulate on demand.
	Measured float64
	// StepAlgos, when non-nil, is the winning per-step algorithm
	// assignment of a multi-algorithm search (Request.Algos), one entry
	// per lowered step. nil means every step runs Algo() — including
	// searched candidates whose winning assignment was uniform, which are
	// canonicalized to the fixed algorithm they chose.
	StepAlgos []Algorithm

	lowered *lower.Program
	sys     *System
	algo    Algorithm
	bytes   float64
}

// Lowered exposes the physical collective steps of the strategy.
func (s *Strategy) Lowered() *lower.Program { return s.lowered }

// Algo returns the strategy's fixed algorithm; it is the algorithm of
// every step unless StepAlgos overrides them.
func (s *Strategy) Algo() Algorithm { return s.algo }

// AlgoString names the strategy's algorithm choice compactly: a single
// name for fixed-algorithm strategies, a "/"-joined per-step sequence for
// mixed assignments (e.g. "HalvingDoubling/Ring/HalvingDoubling").
func (s *Strategy) AlgoString() string {
	return cost.FormatAlgos(s.algo, s.StepAlgos)
}

// Measure runs the strategy on the event-level network emulator and
// returns the emulated runtime in seconds.
func (s *Strategy) Measure() float64 { return s.MeasureWith(SimOptions{}) }

// MeasureWith is Measure under explicit emulator options (noise, launch
// overhead, fusion and cross-domain toggles).
func (s *Strategy) MeasureWith(opts SimOptions) float64 {
	sim := &netsim.Simulator{Sys: s.sys, Algo: s.algo, Bytes: s.bytes, Opts: opts}
	return sim.MeasureSteps(s.lowered, s.StepAlgos)
}

// Trace measures the strategy while recording every transfer, returning
// the events for visualization (see internal/trace for Chrome export).
func (s *Strategy) Trace() (float64, []netsim.Event) {
	return s.TraceWith(SimOptions{})
}

// TraceWith is Trace under explicit emulator options.
func (s *Strategy) TraceWith(opts SimOptions) (float64, []netsim.Event) {
	var events []netsim.Event
	sim := &netsim.Simulator{Sys: s.sys, Algo: s.algo, Bytes: s.bytes, Opts: opts,
		Recorder: func(ev netsim.Event) { events = append(events, ev) }}
	return sim.MeasureSteps(s.lowered, s.StepAlgos), events
}

// Pipelined predicts the strategy's runtime when the payload is split
// into the given number of buckets flowing through its steps as a
// pipeline (gradient bucketing).
func (s *Strategy) Pipelined(buckets int) float64 {
	model := &cost.Model{Sys: s.sys, Algo: s.algo, Bytes: s.bytes}
	return model.PipelinedTimeSteps(s.lowered, buckets, s.StepAlgos)
}

// OptimalBuckets returns the bucket count (1..max) minimizing the
// pipelined prediction, with the predicted time.
func (s *Strategy) OptimalBuckets(max int) (int, float64) {
	model := &cost.Model{Sys: s.sys, Algo: s.algo, Bytes: s.bytes}
	return cost.OptimalBucketsSteps(model, s.lowered, max, s.StepAlgos)
}

// String renders the strategy compactly.
func (s *Strategy) String() string {
	return fmt.Sprintf("%v via %v [%s] (predicted %.3fs)",
		s.Matrix, s.Program, s.AlgoString(), s.Predicted)
}

// PlanResult is the ranked synthesis result of Plan.
type PlanResult struct {
	// Strategies are all candidates, fastest predicted first — fastest
	// measured first when the request ran in a measured mode
	// (Request.Measure), with analytic order breaking measured ties.
	// With Request.TopK set, only the K fastest are present.
	Strategies []*Strategy
	// Request echoes the planned request (with defaults applied), System
	// the system it planned against.
	Request Request
	System  *System
	// Stats reports the planning effort (placements, synthesis runs,
	// signature-memo hits, candidates scored), with Request.TopK the
	// pruning wins (placements and programs skipped by the admissible
	// lower bound, threshold tightenings), and in measured modes the
	// emulation effort (candidates measured, analytic-vs-measured rank
	// inversions).
	Stats plan.Stats
	// Partial marks an anytime result: the request's context was cancelled
	// or its deadline expired mid-plan (PlanCtx), and Strategies holds the
	// best-so-far ranking — every entry fully scored and correctly ordered
	// among those present, but not necessarily a prefix of the complete
	// ranking. If cancellation landed during a measured re-rank, Measured
	// fields are zeroed and the order is the analytic one. Always false
	// from Plan and from requests that ran to completion.
	Partial bool
}

// Best returns the first-ranked strategy: fastest predicted, or fastest
// measured when the request ran in a measured mode.
func (p *PlanResult) Best() *Strategy { return p.Strategies[0] }

// BaselineFor returns the single-AllReduce strategy for the given matrix,
// or nil if the matrix was not part of the plan.
func (p *PlanResult) BaselineFor(m *Matrix) *Strategy {
	base := synth.BaselineAllReduce().String()
	for _, s := range p.Strategies {
		if s.Matrix.Equal(m) && s.Program.String() == base {
			return s
		}
	}
	return nil
}

// planMatrices resolves the placement set of a request.
func planMatrices(sys *System, req Request) ([]*Matrix, error) {
	if req.Matrix != nil {
		return []*Matrix{req.Matrix}, nil
	}
	return Placements(sys, req.Axes)
}

// withDefaults resolves every defaulted Request field, so that
// PlanResult.Request faithfully echoes what was planned: payload (the
// paper's 2^29 × machines float32), program-size limit, worker pool, and
// the algorithm set (nil Algos means {Algo}; a single entry pins Algo).
func (req Request) withDefaults(sys *System) Request {
	if req.Bytes <= 0 {
		req.Bytes = cost.DefaultPayload(sys)
	}
	if req.MaxProgramSize <= 0 {
		req.MaxProgramSize = synth.DefaultMaxSize
	}
	if req.Parallelism <= 0 {
		req.Parallelism = runtime.GOMAXPROCS(0)
	}
	if len(req.Algos) == 0 {
		req.Algos = []Algorithm{req.Algo}
	} else if len(req.Algos) == 1 {
		req.Algo = req.Algos[0]
	}
	return req
}

// Plan enumerates placements (or uses req.Matrix), synthesizes every valid
// reduction program for each, predicts every candidate's runtime and
// returns them ranked. With req.Algos naming two or more algorithms, the
// ranking additionally searches the per-step algorithm assignment of
// every candidate — (placement, program, per-step algorithm) jointly.
//
// Planning runs on the bound-pruned streaming engine (internal/plan):
// placements stream from the enumeration DFS (placement.Iterate) straight
// into req.Parallelism workers without materializing the placement set,
// placements inducing the same reduction hierarchy share one synthesis
// run, step costs are scored allocation-free and memoized by
// (instruction, rows, algorithm), and req.TopK bounds the result without
// materializing the full cross-product — additionally arming admissible
// lower-bound pruning that skips synthesis, lowering and scoring for
// provably out-of-top-K work (see PlanResult.Stats). The ranking —
// including tie order — is identical to PlanSerial for every parallelism
// level and every TopK.
//
// With req.Measure set, planning runs measured-in-the-loop: the analytic
// ranking is measured on the network emulator and re-sorted by measured
// time (MeasureRerank re-ranks only the analytic top-K; MeasureRankAll
// measures everything). Measured rankings are equally deterministic —
// byte-identical at every parallelism level — because the emulator and
// the tie order are pure functions of the request.
func Plan(sys *System, req Request) (*PlanResult, error) {
	return PlanCtx(context.Background(), sys, req) //p2:ctx-ok documented no-deadline compatibility entry point wrapping PlanCtx
}

// PlanCtx is Plan under a context, with anytime semantics: an uncancelled
// context plans byte-identically to Plan; on cancellation or deadline
// expiry the engine stops cooperatively and, if any candidates were
// already scored, returns the best-so-far ranking with Partial set and a
// nil error. Cancellation before the first scored candidate returns the
// context's error. See PlanResult.Partial for exactly what a partial
// ranking guarantees.
func PlanCtx(ctx context.Context, sys *System, req Request) (*PlanResult, error) {
	return (&Planner{eng: plan.New()}).PlanCtx(ctx, sys, req)
}

// Planner plans requests against a synthesis memo that persists across
// calls: placements inducing the same reduction hierarchy — within one
// request or across many — share one synthesis run. Plan/PlanCtx at
// package level construct a fresh Planner per call (memo spans exactly
// one request); a long-lived daemon keeps one Planner so repeat traffic
// hits a warm memo. A Planner is safe for concurrent use, and a
// cancelled request can never corrupt the shared memo: memo entries
// complete exactly once regardless of which request triggered them
// (cancellation cuts between programs and placements, never inside a
// synthesis).
type Planner struct {
	eng *plan.Planner
}

// NewPlanner returns an empty Planner. memoCap bounds the shared
// synthesis memo to that many entries (once full, unseen hierarchy
// signatures synthesize without being recorded — correct, just not
// shared); memoCap <= 0 means unbounded.
func NewPlanner(memoCap int) *Planner {
	return &Planner{eng: plan.New(plan.WithMemoCap(memoCap))}
}

// isCtxErr reports whether err is context cancellation or deadline
// expiry, possibly wrapped.
func isCtxErr(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}

// PlanCtx plans one request on the Planner's shared memo; see the
// package-level PlanCtx for the anytime contract.
func (pl *Planner) PlanCtx(ctx context.Context, sys *System, req Request) (*PlanResult, error) {
	req = req.withDefaults(sys)
	stream := func(yield func(*placement.Matrix) bool) error {
		if req.Matrix != nil {
			yield(req.Matrix)
			return nil
		}
		return placement.Iterate(sys.Hierarchy(), req.Axes, yield)
	}
	model := &cost.Model{Sys: sys, Algo: req.Algo, Bytes: req.Bytes}
	cands, stats, err := pl.eng.RunStreamCtx(ctx, stream, req.ReduceAxes, model, plan.Options{
		Parallelism:    req.Parallelism,
		TopK:           req.TopK,
		MaxProgramSize: req.MaxProgramSize,
		Collapse:       len(req.ReduceAxes) > 1,
		Algos:          req.Algos,
		Rerank:         req.Measure,
		SimOpts:        req.SimOpts,
	})
	partial := false
	if err != nil {
		if !isCtxErr(err) || len(cands) == 0 {
			return nil, err
		}
		partial = true
	}
	if len(cands) == 0 {
		return nil, fmt.Errorf("p2: no valid strategies for axes %v reduce %v", req.Axes, req.ReduceAxes)
	}
	res := &PlanResult{Request: req, System: sys, Stats: stats, Partial: partial}
	res.Strategies = make([]*Strategy, len(cands))
	for i, c := range cands {
		res.Strategies[i] = strategyFromCandidate(c, sys, req.Algo, req.Bytes)
	}
	return res, nil
}

// strategyFromCandidate adopts a planner candidate as a public Strategy,
// canonicalizing uniform per-step assignments to the fixed algorithm they
// name (so they render and measure exactly like a pinned run).
func strategyFromCandidate(c *plan.Candidate, sys *System, algo Algorithm, bytes float64) *Strategy {
	stepAlgos := c.StepAlgos
	if a, ok := cost.UniformAlgo(stepAlgos); ok {
		algo, stepAlgos = a, nil
	}
	return &Strategy{
		Matrix:    c.Matrix,
		Program:   c.Program,
		Predicted: c.Predicted,
		Measured:  c.Measured,
		StepAlgos: stepAlgos,
		lowered:   c.Lowered,
		sys:       sys,
		algo:      algo,
		bytes:     bytes,
	}
}

// PlanSerial is the reference implementation of Plan: one placement at a
// time, a fresh synthesis per placement, full materialization, stable
// sort, and — with req.Algos set — a brute-force per-algorithm sweep over
// every step of every program (no step-cost memo). It ignores
// req.Parallelism, req.TopK and req.Measure (its ranking is always the
// full analytic one). The parallel engine is required to
// reproduce its ranking byte for byte (see the equivalence tests); it
// exists for exactly that cross-check and for ablation benchmarks of the
// engine.
func PlanSerial(sys *System, req Request) (*PlanResult, error) {
	req = req.withDefaults(sys)
	matrices, err := planMatrices(sys, req)
	if err != nil {
		return nil, err
	}
	model := &cost.Model{Sys: sys, Algo: req.Algo, Bytes: req.Bytes}
	res := &PlanResult{Request: req, System: sys}
	for _, m := range matrices {
		opts := hierarchy.Options{Collapse: len(req.ReduceAxes) > 1}
		h, err := hierarchy.Build(hierarchy.KindReductionAxes, m, req.ReduceAxes, opts)
		if err != nil {
			return nil, err
		}
		sres := synth.Synthesize(h, synth.Options{MaxSize: req.MaxProgramSize})
		for _, prog := range sres.Programs {
			lp, err := lower.Lower(prog, h)
			if err != nil {
				return nil, err
			}
			s := &Strategy{
				Matrix:  m,
				Program: prog,
				lowered: lp,
				sys:     sys,
				algo:    req.Algo,
				bytes:   req.Bytes,
			}
			if len(req.Algos) > 1 {
				stepAlgos, predicted := model.BestStepAlgos(lp, req.Algos)
				s.Predicted = predicted
				if a, ok := cost.UniformAlgo(stepAlgos); ok {
					s.algo = a
				} else {
					s.StepAlgos = stepAlgos
				}
			} else {
				s.Predicted = model.ProgramTime(lp)
			}
			res.Strategies = append(res.Strategies, s)
		}
	}
	if len(res.Strategies) == 0 {
		return nil, fmt.Errorf("p2: no valid strategies for axes %v reduce %v", req.Axes, req.ReduceAxes)
	}
	sort.SliceStable(res.Strategies, func(i, j int) bool {
		return res.Strategies[i].Predicted < res.Strategies[j].Predicted
	})
	res.Stats = plan.Stats{Placements: len(matrices), SynthRuns: len(matrices),
		Candidates: len(res.Strategies)}
	return res, nil
}

// ParseMatrix parses the paper's matrix notation, e.g. "[[1 4] [4 4]]",
// validating it against the system hierarchy and axes.
func ParseMatrix(sys *System, axes []int, s string) (*Matrix, error) {
	return placement.ParseMatrix(s, sys.Hierarchy(), axes)
}

// ParseProgram parses a reduction program printed by Program.String.
func ParseProgram(s string) (Program, error) { return dsl.Parse(s) }
