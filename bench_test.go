// Benchmark harness regenerating every table and figure of the paper's
// evaluation (see DESIGN.md §4 for the experiment index). Each benchmark
// both times the relevant pipeline stage and — once per `go test -bench`
// invocation — prints the regenerated artifact rows, so that
//
//	go test -bench=. -benchmem
//
// emits the full set of reproduced tables alongside the timings.
// EXPERIMENTS.md records a reference run.
package p2_test

import (
	"fmt"
	"runtime"
	"sync"
	"testing"

	"p2"
	"p2/internal/collective"
	"p2/internal/cost"
	"p2/internal/dsl"
	"p2/internal/eval"
	"p2/internal/hierarchy"
	"p2/internal/lower"
	"p2/internal/netsim"
	"p2/internal/placement"
	"p2/internal/search"
	"p2/internal/synth"
	"p2/internal/topology"
	"p2/internal/trace"
	"p2/internal/verify"
	"p2/internal/xla"
)

var printOnce sync.Map

// printArtifact emits a regenerated artifact exactly once per process.
func printArtifact(key, body string) {
	if _, loaded := printOnce.LoadOrStore(key, true); !loaded {
		fmt.Printf("\n===== %s =====\n%s\n", key, body)
	}
}

func mustMatrix(b *testing.B, hier, axes []int, rows [][]int) *placement.Matrix {
	b.Helper()
	m, err := placement.NewMatrix(hier, axes, rows)
	if err != nil {
		b.Fatal(err)
	}
	return m
}

// --- Table 1: synthesis hierarchies --------------------------------------

func BenchmarkTable1Hierarchies(b *testing.B) {
	m := mustMatrix(b, []int{1, 2, 2, 4}, []int{4, 4},
		[][]int{{1, 1, 2, 2}, {1, 2, 1, 2}})
	var body string
	for _, kind := range hierarchy.Kinds {
		h := hierarchy.MustBuild(kind, m, []int{1}, hierarchy.Options{KeepUnitLevels: true})
		body += fmt.Sprintf("%-16s %v\n", kind, h)
	}
	printArtifact("Table 1 — synthesis hierarchies for [[1 1 2 2] [1 2 1 2]], reduce axis 1", body)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		for _, kind := range hierarchy.Kinds {
			hierarchy.MustBuild(kind, m, []int{1}, hierarchy.Options{})
		}
	}
}

// --- Table 2: slice/form device groups -----------------------------------

func BenchmarkTable2Groups(b *testing.B) {
	m := mustMatrix(b, []int{1, 2, 2, 4}, []int{16}, [][]int{{1, 2, 2, 4}})
	h := hierarchy.MustBuild(hierarchy.KindSystem, m, []int{0}, hierarchy.Options{})
	sys := topology.Fig2aSystem()
	ins := []struct {
		label string
		in    dsl.Instruction
	}{
		{"CPU, InsideGroup", dsl.Instruction{Slice: 2, Form: dsl.InsideGroup}},
		{"CPU, Parallel(server)", dsl.Instruction{Slice: 2, Form: dsl.Parallel, Arg: 1}},
		{"CPU, Parallel(rack)", dsl.Instruction{Slice: 2, Form: dsl.Parallel, Arg: 0}},
		{"CPU, Master(rack)", dsl.Instruction{Slice: 2, Form: dsl.Master, Arg: 0}},
		{"server, InsideGroup", dsl.Instruction{Slice: 1, Form: dsl.InsideGroup}},
		{"server, Parallel(rack)", dsl.Instruction{Slice: 1, Form: dsl.Parallel, Arg: 0}},
		{"rack, InsideGroup", dsl.Instruction{Slice: 0, Form: dsl.InsideGroup}},
	}
	var body string
	for _, c := range ins {
		groups := c.in.Groups(h)
		body += fmt.Sprintf("%-24s", c.label)
		for _, g := range groups {
			body += "{"
			for i, u := range g {
				if i > 0 {
					body += ","
				}
				body += sys.DeviceName(u)
			}
			body += "}"
		}
		body += "\n"
	}
	printArtifact("Table 2 — hierarchical communication patterns for Fig. 2a", body)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		for _, c := range ins {
			c.in.Groups(h)
		}
	}
}

// --- Table 3: AllReduce across parallelism matrices ----------------------

func benchTable3(b *testing.B, sys *topology.System, axesList [][]int, key string) {
	t, err := eval.BuildTable3(sys, axesList)
	if err != nil {
		b.Fatal(err)
	}
	printArtifact(key, t.Markdown())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eval.BuildTable3(sys, axesList); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable3A100(b *testing.B) {
	benchTable3(b, topology.A100System(4),
		[][]int{{2, 32}, {4, 16}, {8, 8}},
		"Table 3 (A100 rows A/B/C) — AllReduce time across matrices")
}

func BenchmarkTable3V100(b *testing.B) {
	benchTable3(b, topology.V100System(4),
		[][]int{{8, 4}},
		"Table 3 (V100 rows E) — AllReduce time across matrices")
}

// --- Table 4: synthesized optimal vs AllReduce ---------------------------

func benchTable4(b *testing.B, cfg eval.Config, key string) {
	r, err := eval.Run(cfg)
	if err != nil {
		b.Fatal(err)
	}
	printArtifact(key, eval.BuildTable4([]*eval.Result{r}).Markdown())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eval.Run(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable4RowF(b *testing.B) {
	benchTable4(b, eval.Config{Sys: topology.A100System(2), Axes: []int{8, 4},
		ReduceAxes: []int{0}, Algo: cost.Ring},
		"Table 4 row F — 2-node A100, Ring, axes [8 4]")
}

func BenchmarkTable4RowG(b *testing.B) {
	benchTable4(b, eval.Config{Sys: topology.A100System(4), Axes: []int{4, 16},
		ReduceAxes: []int{0}, Algo: cost.Tree},
		"Table 4 row G — 4-node A100, Tree, axes [4 16]")
}

func BenchmarkTable4RowH(b *testing.B) {
	benchTable4(b, eval.Config{Sys: topology.A100System(4), Axes: []int{16, 2, 2},
		ReduceAxes: []int{0, 2}, Algo: cost.Ring},
		"Table 4 row H — 4-node A100, Ring, axes [16 2 2], reduce {0,2}")
}

func BenchmarkTable4RowI(b *testing.B) {
	benchTable4(b, eval.Config{Sys: topology.A100System(4), Axes: []int{2, 2, 16},
		ReduceAxes: []int{0, 2}, Algo: cost.Ring},
		"Table 4 row I — 4-node A100, Ring, axes [2 2 16], reduce {0,2}")
}

func BenchmarkTable4RowJ(b *testing.B) {
	benchTable4(b, eval.Config{Sys: topology.A100System(4), Axes: []int{64},
		ReduceAxes: []int{0}, Algo: cost.Tree},
		"Table 4 row J — 4-node A100, Tree, axes [64]")
}

func BenchmarkTable4RowK(b *testing.B) {
	benchTable4(b, eval.Config{Sys: topology.V100System(4), Axes: []int{8, 2, 2},
		ReduceAxes: []int{0, 2}, Algo: cost.Ring},
		"Table 4 row K — 4-node V100, Ring, axes [8 2 2], reduce {0,2}")
}

func BenchmarkTable4RowL(b *testing.B) {
	benchTable4(b, eval.Config{Sys: topology.V100System(4), Axes: []int{32},
		ReduceAxes: []int{0}, Algo: cost.Ring},
		"Table 4 row L — 4-node V100, Ring, axes [32]")
}

// --- Table 5: simulator accuracy (full suite) -----------------------------

func BenchmarkTable5Accuracy(b *testing.B) {
	// Pinned Ring/Tree rows (the paper's table) plus the auto-mode rows
	// with the analytic-vs-measured disagreement rate.
	run := func() []*eval.Result {
		var all []*eval.Result
		for _, s := range eval.PaperSuites() {
			rs, err := eval.RunSuite(s, []cost.Algorithm{cost.Ring, cost.Tree})
			if err != nil {
				b.Fatal(err)
			}
			all = append(all, rs...)
			auto, err := eval.RunSuiteAuto(s)
			if err != nil {
				b.Fatal(err)
			}
			all = append(all, auto...)
		}
		return all
	}
	all := run()
	printArtifact("Table 5 — prediction accuracy (full suite)",
		eval.BuildTable5(all).Markdown())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		run()
	}
}

// --- Figure 11: simulation vs measurement series --------------------------

func benchFigure11(b *testing.B, cfg eval.Config, key string) {
	r, err := eval.Run(cfg)
	if err != nil {
		b.Fatal(err)
	}
	printArtifact(key, eval.BuildFigure11(r).Markdown())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eval.Run(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure11a(b *testing.B) {
	benchFigure11(b, eval.Config{Sys: topology.V100System(4), Axes: []int{2, 16},
		ReduceAxes: []int{1}, Algo: cost.Ring},
		"Figure 11a — 4-node V100, Ring, axes [2 16], reduce axis 1")
}

func BenchmarkFigure11b(b *testing.B) {
	benchFigure11(b, eval.Config{Sys: topology.A100System(4), Axes: []int{4, 2, 8},
		ReduceAxes: []int{0, 2}, Algo: cost.Tree},
		"Figure 11b — 4-node A100, Tree, axes [4 2 8], reduce {0,2}")
}

// --- RQ2: synthesis speed --------------------------------------------------

func BenchmarkSynthesisTwoLevel(b *testing.B) {
	m := mustMatrix(b, []int{4, 16}, []int{4, 16}, [][]int{{2, 2}, {2, 8}})
	h := hierarchy.MustBuild(hierarchy.KindReductionAxes, m, []int{0}, hierarchy.Options{})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		synth.Synthesize(h, synth.Options{})
	}
}

func BenchmarkSynthesisThreeAxis(b *testing.B) {
	m := mustMatrix(b, []int{4, 16}, []int{16, 2, 2}, [][]int{{2, 8}, {2, 1}, {1, 2}})
	h := hierarchy.MustBuild(hierarchy.KindReductionAxes, m, []int{0, 2},
		hierarchy.Options{Collapse: true})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		synth.Synthesize(h, synth.Options{})
	}
}

// --- Ablations (design choices of §2.5/§3.4) -------------------------------

// BenchmarkAblationHierarchy compares synthesis cost across the four
// synthesis hierarchies on the running example — the justification for
// using (d): same expressible lowered programs, far smaller search space.
func BenchmarkAblationHierarchy(b *testing.B) {
	m := mustMatrix(b, []int{1, 2, 2, 4}, []int{4, 4},
		[][]int{{1, 1, 2, 2}, {1, 2, 1, 2}})
	var body string
	for _, kind := range hierarchy.Kinds {
		h := hierarchy.MustBuild(kind, m, []int{1}, hierarchy.Options{})
		res := synth.Synthesize(h, synth.Options{MaxSize: 4})
		body += fmt.Sprintf("%-16s universe=%2d candidates=%3d programs=%3d explored=%6d time=%v\n",
			kind, h.K(), len(synth.Candidates(h)), len(res.Programs), res.Explored, res.Elapsed)
	}
	printArtifact("Ablation — synthesis hierarchy choice (Theorem 3.2 trade-off)", body)
	for _, kind := range hierarchy.Kinds {
		b.Run(kind.String(), func(b *testing.B) {
			h := hierarchy.MustBuild(kind, m, []int{1}, hierarchy.Options{})
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				synth.Synthesize(h, synth.Options{MaxSize: 4})
			}
		})
	}
}

// BenchmarkAblationCollapse measures the §2.5 same-hardware-level collapse.
func BenchmarkAblationCollapse(b *testing.B) {
	m := mustMatrix(b, []int{4, 16}, []int{8, 2, 4}, [][]int{{2, 4}, {2, 1}, {1, 4}})
	var body string
	for _, collapse := range []bool{false, true} {
		h := hierarchy.MustBuild(hierarchy.KindReductionAxes, m, []int{0, 2},
			hierarchy.Options{Collapse: collapse})
		res := synth.Synthesize(h, synth.Options{})
		body += fmt.Sprintf("collapse=%-5v hierarchy=%v programs=%4d explored=%7d time=%v\n",
			collapse, h, len(res.Programs), res.Explored, res.Elapsed)
	}
	printArtifact("Ablation — same-level factor collapsing (§2.5)", body)
	for _, collapse := range []bool{false, true} {
		name := "off"
		if collapse {
			name = "on"
		}
		b.Run(name, func(b *testing.B) {
			h := hierarchy.MustBuild(hierarchy.KindReductionAxes, m, []int{0, 2},
				hierarchy.Options{Collapse: collapse})
			for i := 0; i < b.N; i++ {
				synth.Synthesize(h, synth.Options{})
			}
		})
	}
}

// BenchmarkAblationMemoization measures the context-memoization pruning.
func BenchmarkAblationMemoization(b *testing.B) {
	m := mustMatrix(b, []int{4, 16}, []int{4, 16}, [][]int{{2, 2}, {2, 8}})
	h := hierarchy.MustBuild(hierarchy.KindReductionAxes, m, []int{0}, hierarchy.Options{})
	for _, memo := range []bool{true, false} {
		name := "on"
		if !memo {
			name = "off"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				synth.Synthesize(h, synth.Options{NoMemo: !memo})
			}
		})
	}
}

// BenchmarkAblationSizeLimit sweeps the program-size limit (the paper notes
// size 5 suffices and larger limits rarely add programs).
func BenchmarkAblationSizeLimit(b *testing.B) {
	m := mustMatrix(b, []int{4, 16}, []int{4, 16}, [][]int{{2, 2}, {2, 8}})
	h := hierarchy.MustBuild(hierarchy.KindReductionAxes, m, []int{0}, hierarchy.Options{})
	var body string
	for size := 1; size <= 6; size++ {
		res := synth.Synthesize(h, synth.Options{MaxSize: size})
		body += fmt.Sprintf("maxSize=%d programs=%4d explored=%7d time=%v\n",
			size, len(res.Programs), res.Explored, res.Elapsed)
	}
	printArtifact("Ablation — program size limit (§4.2 Result 2)", body)
	for _, size := range []int{3, 5} {
		b.Run(fmt.Sprintf("size%d", size), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				synth.Synthesize(h, synth.Options{MaxSize: size})
			}
		})
	}
}

// BenchmarkAblationFusion measures the emulator's XLA AllReduce-fusion
// peephole (§5's explanation for prediction misses).
func BenchmarkAblationFusion(b *testing.B) {
	m := mustMatrix(b, []int{4, 16}, []int{4, 16}, [][]int{{2, 2}, {2, 8}})
	h := hierarchy.MustBuild(hierarchy.KindReductionAxes, m, []int{0}, hierarchy.Options{})
	program := dsl.Program{
		{Slice: 1, Form: dsl.InsideGroup, Op: collective.AllReduce},
		{Slice: 1, Form: dsl.Parallel, Arg: 0, Op: collective.AllReduce},
	}
	lp, err := lower.Lower(program, h)
	if err != nil {
		b.Fatal(err)
	}
	for _, fuse := range []bool{true, false} {
		name := "on"
		if !fuse {
			name = "off"
		}
		b.Run(name, func(b *testing.B) {
			sim := &netsim.Simulator{Sys: topology.A100System(4), Algo: cost.Ring,
				Bytes: cost.PayloadBytes(4),
				Opts:  netsim.Options{DisableFusion: !fuse}}
			for i := 0; i < b.N; i++ {
				sim.Measure(lp)
			}
		})
	}
}

// --- Micro-benchmarks of the pipeline stages -------------------------------

func BenchmarkPlacementEnumerate(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := placement.Enumerate([]int{4, 16}, []int{16, 2, 2}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkLower(b *testing.B) {
	m := mustMatrix(b, []int{4, 16}, []int{4, 16}, [][]int{{2, 2}, {2, 8}})
	h := hierarchy.MustBuild(hierarchy.KindReductionAxes, m, []int{0}, hierarchy.Options{})
	prog := synth.BaselineAllReduce()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := lower.Lower(prog, h); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCostEstimate compares the reference Model.ProgramTime against
// the planner's reusable cost.Scorer: identical floats, but the scorer's
// dirty-entry scratch reset and schedule memo make the scoring path
// allocation-free (the "scorer" sub-benchmark must report 0 allocs/op).
func BenchmarkCostEstimate(b *testing.B) {
	m := mustMatrix(b, []int{4, 16}, []int{4, 16}, [][]int{{2, 2}, {2, 8}})
	h := hierarchy.MustBuild(hierarchy.KindReductionAxes, m, []int{0}, hierarchy.Options{})
	lp, err := lower.Lower(synth.BaselineAllReduce(), h)
	if err != nil {
		b.Fatal(err)
	}
	sys := topology.A100System(4)
	model := &cost.Model{Sys: sys, Algo: cost.Ring, Bytes: cost.PayloadBytes(4)}
	b.Run("model", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			model.ProgramTime(lp)
		}
	})
	b.Run("scorer", func(b *testing.B) {
		sc := cost.NewScorer(sys)
		sc.ProgramTime(model, lp) // warm the schedule cache
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			sc.ProgramTime(model, lp)
		}
	})
}

func BenchmarkNetsimMeasure(b *testing.B) {
	m := mustMatrix(b, []int{4, 16}, []int{4, 16}, [][]int{{2, 2}, {2, 8}})
	h := hierarchy.MustBuild(hierarchy.KindReductionAxes, m, []int{0}, hierarchy.Options{})
	lp, err := lower.Lower(synth.BaselineAllReduce(), h)
	if err != nil {
		b.Fatal(err)
	}
	sim := &netsim.Simulator{Sys: topology.A100System(4), Algo: cost.Ring, Bytes: cost.PayloadBytes(4)}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sim.Measure(lp)
	}
}

// --- Planning engine: serial vs parallel memoized (DESIGN.md §6) -----------

// benchPlanEngine compares the serial reference path against the
// parallel memoized engine on one request. The parallel engine owes its
// advantage to two effects measured here separately: placement fan-out
// over GOMAXPROCS workers, and synthesis sharing between placements with
// equal hierarchy signatures (the serial path re-synthesizes per
// placement).
func benchPlanEngine(b *testing.B, sys *topology.System, axes, red []int) {
	req := p2.Request{Axes: axes, ReduceAxes: red}
	stat, err := p2.Plan(sys, req)
	if err != nil {
		b.Fatal(err)
	}
	top5 := req
	top5.TopK = 5
	pruned, err := p2.Plan(sys, top5)
	if err != nil {
		b.Fatal(err)
	}
	printArtifact(fmt.Sprintf("Planning engine — %s axes %v", sys.Name, axes),
		fmt.Sprintf("placements=%d synthRuns=%d memoHits=%d candidates=%d workers<=%d\n"+
			"topk=5 pruning: prunedPlacements=%d prunedPrograms=%d boundTightenings=%d candidates=%d\n",
			stat.Stats.Placements, stat.Stats.SynthRuns, stat.Stats.MemoHits,
			stat.Stats.Candidates, runtime.GOMAXPROCS(0),
			pruned.Stats.PrunedPlacements, pruned.Stats.PrunedPrograms,
			pruned.Stats.BoundTightenings, pruned.Stats.Candidates))
	b.Run("serial", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := p2.PlanSerial(sys, req); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("parallel", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := p2.Plan(sys, req); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("parallel-top8", func(b *testing.B) {
		r := req
		r.TopK = 8
		for i := 0; i < b.N; i++ {
			if _, err := p2.Plan(sys, r); err != nil {
				b.Fatal(err)
			}
		}
	})
	// parallel-top5 is the acceptance configuration: bound pruning plus
	// early-exit scoring against the shared top-5 threshold.
	b.Run("parallel-top5", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := p2.Plan(sys, top5); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkPlanSuperPod2x4 is the medium configuration: 64 devices,
// 6 placements.
func BenchmarkPlanSuperPod2x4(b *testing.B) {
	benchPlanEngine(b, topology.SuperPodSystem(2, 4), []int{8, 8}, []int{0})
}

// BenchmarkPlanSuperPod4x8 is the acceptance-scale configuration: 256
// devices, 10 placements, ~5.5k strategies. Parallel must beat serial
// here (EXPERIMENTS.md records a reference run).
func BenchmarkPlanSuperPod4x8(b *testing.B) {
	benchPlanEngine(b, topology.SuperPodSystem(4, 8), []int{16, 16}, []int{0})
}

// BenchmarkPlanSuperPod3x4 is the non-power-of-two configuration: a
// 3-pod cluster whose reduction groups (3, 6, 12 wide) run the residual
// halving-doubling schedule under the `-algo auto` search, tracking the
// residual-HD scoring path in BENCH_plan.json.
func BenchmarkPlanSuperPod3x4(b *testing.B) {
	sys := topology.SuperPodSystem(3, 4)
	req := p2.Request{Axes: []int{12, 8}, ReduceAxes: []int{0}, Algos: cost.ExtendedAlgorithms}
	b.Run("serial", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := p2.PlanSerial(sys, req); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("parallel", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := p2.Plan(sys, req); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("parallel-top5", func(b *testing.B) {
		r := req
		r.TopK = 5
		for i := 0; i < b.N; i++ {
			if _, err := p2.Plan(sys, r); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkPlanSuperPod3x4Degraded is BenchmarkPlanSuperPod3x4 on a system
// carrying link overrides: scoring leaves the uniform-link fast path and
// reads per-entity effective bandwidths/latencies, and the per-entity
// admissible bound drives the pruning. The delta against the pristine
// benchmark is the planning cost of heterogeneity.
func BenchmarkPlanSuperPod3x4Degraded(b *testing.B) {
	sys := topology.SuperPodSystem(3, 4).MustWithOverrides(
		topology.Throttle(2, 13, 10), topology.Slow(1, 5, 4))
	req := p2.Request{Axes: []int{12, 8}, ReduceAxes: []int{0}, Algos: cost.ExtendedAlgorithms}
	b.Run("parallel", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := p2.Plan(sys, req); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("parallel-top5", func(b *testing.B) {
		r := req
		r.TopK = 5
		for i := 0; i < b.N; i++ {
			if _, err := p2.Plan(sys, r); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkPlanJointEngine compares serial and parallel joint planning
// (two reductions à la Megatron data × tensor parallelism).
func BenchmarkPlanJointEngine(b *testing.B) {
	sys := topology.SuperPodSystem(2, 4)
	axes := []int{8, 8}
	reductions := []p2.Reduction{
		{ReduceAxes: []int{0}, Bytes: 1 << 30},
		{ReduceAxes: []int{1}, Bytes: 1 << 26, Count: 48},
	}
	b.Run("serial", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := p2.PlanJointSerial(sys, axes, reductions); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("parallel", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := p2.PlanJoint(sys, axes, reductions); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// --- Extensions beyond the paper -------------------------------------------

// BenchmarkExtensionBestFirst compares cost-guided Dijkstra search against
// full enumeration + ranking for finding the single optimal program.
func BenchmarkExtensionBestFirst(b *testing.B) {
	m := mustMatrix(b, []int{4, 16}, []int{4, 16}, [][]int{{2, 2}, {2, 8}})
	h := hierarchy.MustBuild(hierarchy.KindReductionAxes, m, []int{0}, hierarchy.Options{})
	model := &cost.Model{Sys: topology.A100System(4), Algo: cost.Ring, Bytes: cost.PayloadBytes(4)}
	prog, total, stats, ok := search.Best(h, model, 5)
	if !ok {
		b.Fatal("search failed")
	}
	res := synth.Synthesize(h, synth.Options{})
	printArtifact("Extension — best-first search vs enumeration",
		fmt.Sprintf("optimum: %v (%.3fs)\nbest-first expanded %d states; enumeration explored %d for %d programs\n",
			prog, total, stats.Expanded, res.Explored, len(res.Programs)))
	b.Run("dijkstra", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			search.Best(h, model, 5)
		}
	})
	b.Run("enumerate-all", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			r := synth.Synthesize(h, synth.Options{})
			for _, p := range r.Programs {
				lp, err := lower.Lower(p, h)
				if err != nil {
					b.Fatal(err)
				}
				model.ProgramTime(lp)
			}
		}
	})
}

// BenchmarkExtensionPipelining prints the bucket-count sweep for the
// RS-AR-AG strategy (gradient bucketing) and times the estimator.
func BenchmarkExtensionPipelining(b *testing.B) {
	m := mustMatrix(b, []int{4, 16}, []int{4, 16}, [][]int{{2, 2}, {2, 8}})
	h := hierarchy.MustBuild(hierarchy.KindReductionAxes, m, []int{0}, hierarchy.Options{})
	prog := dsl.Program{
		{Slice: 1, Form: dsl.InsideGroup, Op: collective.ReduceScatter},
		{Slice: 1, Form: dsl.Parallel, Arg: 0, Op: collective.AllReduce},
		{Slice: 1, Form: dsl.InsideGroup, Op: collective.AllGather},
	}
	lp, err := lower.Lower(prog, h)
	if err != nil {
		b.Fatal(err)
	}
	model := &cost.Model{Sys: topology.A100System(4), Algo: cost.Ring, Bytes: cost.PayloadBytes(4)}
	var body string
	for _, buckets := range []int{1, 2, 4, 8, 16, 32, 64} {
		body += fmt.Sprintf("buckets=%-3d predicted=%.3fs\n", buckets, model.PipelinedTime(lp, buckets))
	}
	bOpt, tOpt := cost.OptimalBuckets(model, lp, 64)
	body += fmt.Sprintf("optimal: %d buckets at %.3fs (unbucketed %.3fs)\n",
		bOpt, tOpt, model.ProgramTime(lp))
	printArtifact("Extension — pipelined gradient bucketing (RS-AR-AG on [[2 2] [2 8]])", body)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		cost.OptimalBuckets(model, lp, 64)
	}
}

// BenchmarkExtensionAlgorithms prints the three-algorithm comparison for a
// mixed local/remote AllReduce.
func BenchmarkExtensionAlgorithms(b *testing.B) {
	m := mustMatrix(b, []int{4, 16}, []int{4, 16}, [][]int{{2, 2}, {2, 8}})
	h := hierarchy.MustBuild(hierarchy.KindReductionAxes, m, []int{0}, hierarchy.Options{})
	lp, err := lower.Lower(synth.BaselineAllReduce(), h)
	if err != nil {
		b.Fatal(err)
	}
	var body string
	for _, algo := range cost.ExtendedAlgorithms {
		model := &cost.Model{Sys: topology.A100System(4), Algo: algo, Bytes: cost.PayloadBytes(4)}
		sim := &netsim.Simulator{Sys: topology.A100System(4), Algo: algo, Bytes: cost.PayloadBytes(4)}
		body += fmt.Sprintf("%-16s predicted=%.3fs emulated=%.3fs\n",
			algo, model.ProgramTime(lp), sim.Measure(lp))
	}
	printArtifact("Extension — AllReduce algorithm comparison on [[2 2] [2 8]]", body)
	for _, algo := range cost.ExtendedAlgorithms {
		b.Run(algo.String(), func(b *testing.B) {
			sim := &netsim.Simulator{Sys: topology.A100System(4), Algo: algo, Bytes: cost.PayloadBytes(4)}
			for i := 0; i < b.N; i++ {
				sim.Measure(lp)
			}
		})
	}
}

// BenchmarkTraceRecording measures the emulator overhead of transfer
// recording.
func BenchmarkTraceRecording(b *testing.B) {
	m := mustMatrix(b, []int{4, 16}, []int{4, 16}, [][]int{{2, 2}, {2, 8}})
	h := hierarchy.MustBuild(hierarchy.KindReductionAxes, m, []int{0}, hierarchy.Options{})
	lp, err := lower.Lower(synth.BaselineAllReduce(), h)
	if err != nil {
		b.Fatal(err)
	}
	col := &trace.Collector{}
	sim := &netsim.Simulator{Sys: topology.A100System(4), Algo: cost.Ring, Bytes: cost.PayloadBytes(4),
		Recorder: col.Record}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		col.Events = col.Events[:0]
		sim.Measure(lp)
	}
	if len(col.Events) == 0 {
		b.Fatal("no events recorded")
	}
}

// BenchmarkVerifyConcrete measures the concrete-data executor.
func BenchmarkVerifyConcrete(b *testing.B) {
	m := mustMatrix(b, []int{4, 16}, []int{4, 16}, [][]int{{2, 2}, {2, 8}})
	h := hierarchy.MustBuild(hierarchy.KindReductionAxes, m, []int{0}, hierarchy.Options{})
	lp, err := lower.Lower(synth.BaselineAllReduce(), h)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := verify.Check(lp, m, []int{0}, 2); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkXLAEmit measures the HLO renderer round trip.
func BenchmarkXLAEmit(b *testing.B) {
	m := mustMatrix(b, []int{4, 16}, []int{4, 16}, [][]int{{2, 2}, {2, 8}})
	h := hierarchy.MustBuild(hierarchy.KindReductionAxes, m, []int{0}, hierarchy.Options{})
	lp, err := lower.Lower(synth.BaselineAllReduce(), h)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		src, err := xla.Emit(lp, 1<<20)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := xla.Parse(src); err != nil {
			b.Fatal(err)
		}
	}
}
