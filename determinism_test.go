// Equivalence tests for the parallel memoized planning engine: the
// parallel path must produce byte-identical strategy rankings to the
// serial reference (PlanSerial / PlanJointSerial) at every parallelism
// level, and TopK must be an exact prefix of the full ranking.
package p2_test

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sort"
	"strings"
	"testing"
	"time"

	"p2"
)

// planFingerprint renders a ranking byte-exactly: placement, program,
// per-step algorithm assignment and the raw float64 bits of the
// prediction and the measurement (zero unless the plan ran in a measured
// mode), one strategy per line.
func planFingerprint(res *p2.PlanResult) string {
	var b strings.Builder
	for _, s := range res.Strategies {
		fmt.Fprintf(&b, "%v|%v|%s|%016x|%016x\n", s.Matrix, s.Program, s.AlgoString(),
			math.Float64bits(s.Predicted), math.Float64bits(s.Measured))
	}
	return b.String()
}

func jointFingerprint(jp *p2.JointPlan) string {
	var b strings.Builder
	for _, c := range jp.Choices {
		fmt.Fprintf(&b, "%v|%016x|%016x", c.Matrix, math.Float64bits(c.Total),
			math.Float64bits(c.MeasuredTotal))
		for i, s := range c.PerReduction {
			fmt.Fprintf(&b, "|%v[%s]@%016x*%016x~%016x", s.Program, s.AlgoString(),
				math.Float64bits(s.Predicted), math.Float64bits(c.Costs[i]),
				math.Float64bits(s.Measured))
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// measuredReference builds the expected result of a measured plan from
// the serial analytic ranking: truncate to the analytic top-K (0 = all),
// measure every survivor on the emulator, stable-sort by measured time
// (so analytic order breaks measured ties), and truncate to finalK (for
// rank-all, where truncation happens after the measured sort).
func measuredReference(serial *p2.PlanResult, analyticK, finalK int, opts p2.SimOptions) *p2.PlanResult {
	n := len(serial.Strategies)
	if analyticK > 0 && analyticK < n {
		n = analyticK
	}
	kept := make([]*p2.Strategy, n)
	for i, s := range serial.Strategies[:n] {
		c := *s
		c.Measured = s.MeasureWith(opts)
		kept[i] = &c
	}
	sort.SliceStable(kept, func(i, j int) bool { return kept[i].Measured < kept[j].Measured })
	if finalK > 0 && finalK < len(kept) {
		kept = kept[:finalK]
	}
	return &p2.PlanResult{Strategies: kept}
}

var determinismCases = []struct {
	name  string
	sys   *p2.System
	axes  []int
	red   []int
	algos []p2.Algorithm
}{
	{"fig2a", p2.Fig2aSystem(), []int{4, 4}, []int{0}, nil},
	{"fig2a-multi-axis", p2.Fig2aSystem(), []int{2, 2, 4}, []int{0, 2}, nil},
	{"a100-4", p2.A100System(4), []int{4, 16}, []int{0}, nil},
	{"a100-4-multi-axis", p2.A100System(4), []int{16, 2, 2}, []int{0, 2}, nil},
	{"superpod-2x4", p2.SuperPodSystem(2, 4), []int{8, 8}, []int{0}, nil},
	// The per-step algorithm search must reproduce the serial brute-force
	// sweep byte for byte — assignments, predictions and tie order.
	{"fig2a-auto", p2.Fig2aSystem(), []int{4, 4}, []int{0}, p2.ExtendedAlgorithms},
	{"a100-4-auto", p2.A100System(4), []int{4, 16}, []int{0}, p2.ExtendedAlgorithms},
	{"superpod-2x4-auto", p2.SuperPodSystem(2, 4), []int{8, 8}, []int{0}, p2.ExtendedAlgorithms},
	// Non-power-of-two pod count: reduction groups of 3, 6 and 12 run the
	// residual halving-doubling schedule inside the auto search.
	{"superpod-3x4-auto", p2.SuperPodSystem(3, 4), []int{12, 8}, []int{0}, p2.ExtendedAlgorithms},
	// Degraded fabric: link overrides switch the cost model onto the
	// per-entity path, which must stay as deterministic as the uniform one.
	{"superpod-3x4-degraded", degradedSuperPod34(), []int{12, 8}, []int{0}, nil},
	{"superpod-3x4-degraded-auto", degradedSuperPod34(), []int{12, 8}, []int{0}, p2.ExtendedAlgorithms},
}

// degradedSuperPod34 is the determinism matrix's degraded system: a
// superpod-3x4 with one GPU's NVSwitch uplink throttled to a tenth.
func degradedSuperPod34() *p2.System {
	return p2.SuperPodSystem(3, 4).MustWithOverrides(
		p2.LinkOverride{Level: 2, Entity: 13, BandwidthScale: 0.1, LatencyScale: 1})
}

func TestPlanParallelMatchesSerial(t *testing.T) {
	for _, tc := range determinismCases {
		t.Run(tc.name, func(t *testing.T) {
			req := p2.Request{Axes: tc.axes, ReduceAxes: tc.red, Algos: tc.algos}
			serial, err := p2.PlanSerial(tc.sys, req)
			if err != nil {
				t.Fatal(err)
			}
			want := planFingerprint(serial)
			for _, par := range []int{1, 4, 16} {
				req.Parallelism = par
				got, err := p2.Plan(tc.sys, req)
				if err != nil {
					t.Fatal(err)
				}
				if g := planFingerprint(got); g != want {
					t.Errorf("parallelism %d: ranking differs from serial (%d vs %d strategies)",
						par, len(got.Strategies), len(serial.Strategies))
				}
			}
		})
	}
}

// TestPlanCtxUndeadlinedMatchesSerial is the service-path determinism
// row: PlanCtx under an uncancelled Background context — the exact call
// the serve daemon makes for an undeadlined request — must rank
// byte-identically to the serial reference at every parallelism level,
// with Partial never set.
func TestPlanCtxUndeadlinedMatchesSerial(t *testing.T) {
	for _, tc := range determinismCases {
		t.Run(tc.name, func(t *testing.T) {
			req := p2.Request{Axes: tc.axes, ReduceAxes: tc.red, Algos: tc.algos}
			serial, err := p2.PlanSerial(tc.sys, req)
			if err != nil {
				t.Fatal(err)
			}
			want := planFingerprint(serial)
			for _, par := range []int{1, 4, 16} {
				req.Parallelism = par
				got, err := p2.PlanCtx(context.Background(), tc.sys, req)
				if err != nil {
					t.Fatal(err)
				}
				if got.Partial {
					t.Fatalf("parallelism %d: uncancelled PlanCtx returned a partial result", par)
				}
				if g := planFingerprint(got); g != want {
					t.Errorf("parallelism %d: PlanCtx ranking differs from serial (%d vs %d strategies)",
						par, len(got.Strategies), len(serial.Strategies))
				}
			}
		})
	}
}

// TestPlanJointCtxUndeadlinedMatchesSerial: the joint planner's context
// path under an uncancelled context must reproduce the serial joint
// ranking byte for byte at every parallelism level.
func TestPlanJointCtxUndeadlinedMatchesSerial(t *testing.T) {
	for _, tc := range []struct {
		name string
		sys  *p2.System
		axes []int
	}{
		{"fig2a", p2.Fig2aSystem(), []int{4, 4}},
		{"a100-4", p2.A100System(4), []int{4, 16}},
		{"superpod-2x4", p2.SuperPodSystem(2, 4), []int{8, 8}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			reductions := []p2.Reduction{
				{ReduceAxes: []int{0}, Bytes: 1 << 30},
				{ReduceAxes: []int{1}, Bytes: 1 << 26, Count: 48,
					Algos: p2.ExtendedAlgorithms},
			}
			serial, err := p2.PlanJointSerial(tc.sys, tc.axes, reductions)
			if err != nil {
				t.Fatal(err)
			}
			want := jointFingerprint(serial)
			for _, par := range []int{1, 4, 16} {
				got, err := p2.PlanJointCtx(context.Background(), tc.sys, tc.axes, reductions,
					p2.JointOptions{Parallelism: par})
				if err != nil {
					t.Fatal(err)
				}
				if got.Partial {
					t.Fatalf("parallelism %d: uncancelled PlanJointCtx returned a partial result", par)
				}
				if g := jointFingerprint(got); g != want {
					t.Errorf("parallelism %d: PlanJointCtx joint ranking differs from serial:\ngot:\n%swant:\n%s",
						par, g, want)
				}
			}
		})
	}
}

// TestPlanCtxCancellationKeepsPlannerMemoSafe is the memo-safety half of
// the cancellation contract: cancelled requests on a shared Planner
// return promptly (the context's error, or a well-formed partial
// ranking), and a subsequent uncancelled request on the same Planner —
// whose memo the cancelled runs populated arbitrary prefixes of — must
// return the complete ranking, byte-identical to a fresh engine's.
func TestPlanCtxCancellationKeepsPlannerMemoSafe(t *testing.T) {
	sys := p2.SuperPodSystem(4, 8)
	req := p2.Request{Axes: []int{16, 16}, ReduceAxes: []int{0}, Parallelism: 4}
	pl := p2.NewPlanner(0)

	// Already-dead context: nothing may be scored, so the context's error
	// comes back — and promptly, not after planning everything anyway.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	type outcome struct {
		res *p2.PlanResult
		err error
	}
	done := make(chan outcome, 1)
	go func() {
		res, err := pl.PlanCtx(ctx, sys, req)
		done <- outcome{res, err}
	}()
	select {
	case o := <-done:
		if o.err == nil {
			t.Fatalf("pre-cancelled plan returned a result (partial=%v), want context.Canceled",
				o.res.Partial)
		}
		if !errors.Is(o.err, context.Canceled) {
			t.Fatalf("pre-cancelled plan error = %v, want context.Canceled", o.err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("pre-cancelled plan did not return promptly")
	}

	// Mid-plan cancellation: the deadline may land before the first scored
	// candidate (context error), mid-rank (partial), or after completion —
	// all are legal; what matters is that the memo survives whichever
	// prefix of synthesis work the run managed.
	for _, timeout := range []time.Duration{time.Millisecond, 5 * time.Millisecond} {
		ctx, cancel := context.WithTimeout(context.Background(), timeout)
		res, err := pl.PlanCtx(ctx, sys, req)
		cancel()
		switch {
		case err != nil && !errors.Is(err, context.DeadlineExceeded):
			t.Fatalf("timeout %v: error %v, want context.DeadlineExceeded or a result", timeout, err)
		case err == nil && res.Partial && len(res.Strategies) == 0:
			t.Fatalf("timeout %v: partial result with no strategies", timeout)
		}
	}

	// The shared memo must now serve the full request bit-exactly.
	serial, err := p2.PlanSerial(sys, req)
	if err != nil {
		t.Fatal(err)
	}
	got, err := pl.PlanCtx(context.Background(), sys, req)
	if err != nil {
		t.Fatal(err)
	}
	if got.Partial {
		t.Fatal("uncancelled request on the shared Planner returned a partial result")
	}
	if planFingerprint(got) != planFingerprint(serial) {
		t.Error("ranking after cancelled runs differs from the serial reference: cancellation corrupted the shared memo")
	}
}

func TestPlanTopKIsPrefix(t *testing.T) {
	tc := determinismCases[2] // a100-4
	full, err := p2.PlanSerial(tc.sys, p2.Request{Axes: tc.axes, ReduceAxes: tc.red})
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range []int{1, 5, 37, len(full.Strategies) + 10} {
		got, err := p2.Plan(tc.sys, p2.Request{Axes: tc.axes, ReduceAxes: tc.red,
			TopK: k, Parallelism: 4})
		if err != nil {
			t.Fatal(err)
		}
		want := len(full.Strategies)
		if k < want {
			want = k
		}
		if len(got.Strategies) != want {
			t.Fatalf("TopK=%d kept %d strategies, want %d", k, len(got.Strategies), want)
		}
		prefix := &p2.PlanResult{Strategies: full.Strategies[:want]}
		if planFingerprint(got) != planFingerprint(prefix) {
			t.Errorf("TopK=%d is not a prefix of the full ranking", k)
		}
	}
}

func TestPlanJointParallelMatchesSerial(t *testing.T) {
	for _, tc := range []struct {
		name string
		sys  *p2.System
		axes []int
	}{
		{"fig2a", p2.Fig2aSystem(), []int{4, 4}},
		{"a100-4", p2.A100System(4), []int{4, 16}},
		{"superpod-2x4", p2.SuperPodSystem(2, 4), []int{8, 8}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			reductions := []p2.Reduction{
				{ReduceAxes: []int{0}, Bytes: 1 << 30},
				{ReduceAxes: []int{1}, Bytes: 1 << 26, Count: 48,
					Algos: p2.ExtendedAlgorithms},
			}
			serial, err := p2.PlanJointSerial(tc.sys, tc.axes, reductions)
			if err != nil {
				t.Fatal(err)
			}
			want := jointFingerprint(serial)
			for _, par := range []int{1, 4, 16} {
				got, err := p2.PlanJointOpts(tc.sys, tc.axes, reductions,
					p2.JointOptions{Parallelism: par})
				if err != nil {
					t.Fatal(err)
				}
				if g := jointFingerprint(got); g != want {
					t.Errorf("parallelism %d: joint ranking differs from serial:\ngot:\n%swant:\n%s",
						par, g, want)
				}
			}
			// TopK keeps the cheapest prefix.
			top, err := p2.PlanJointOpts(tc.sys, tc.axes, reductions,
				p2.JointOptions{Parallelism: 4, TopK: 2})
			if err != nil {
				t.Fatal(err)
			}
			if len(top.Choices) != 2 {
				t.Fatalf("TopK=2 kept %d choices", len(top.Choices))
			}
			prefix := &p2.JointPlan{Choices: serial.Choices[:2]}
			if jointFingerprint(top) != jointFingerprint(prefix) {
				t.Error("joint TopK=2 is not a prefix of the serial ranking")
			}
		})
	}
}

// TestPlanPrunedMatchesSerial is the determinism contract of the
// bound-pruned engine: at every parallelism level × TopK × algorithm
// search mode, the pruned ranking must be byte-identical to the
// corresponding prefix of the serial brute-force ranking — assignments,
// predictions and tie order. TopK=0 exercises the serial-identical
// fallback (no threshold exists, nothing may be pruned).
func TestPlanPrunedMatchesSerial(t *testing.T) {
	for _, tc := range []struct {
		name  string
		sys   *p2.System
		axes  []int
		red   []int
		algos []p2.Algorithm
	}{
		{"a100-4-auto", p2.A100System(4), []int{4, 16}, []int{0}, p2.ExtendedAlgorithms},
		{"superpod-2x4-auto", p2.SuperPodSystem(2, 4), []int{8, 8}, []int{0}, p2.ExtendedAlgorithms},
		{"a100-4-multi-axis", p2.A100System(4), []int{16, 2, 2}, []int{0, 2}, nil},
		// Residual halving-doubling under pruning: non-pow2 groups must
		// still rank byte-identically to the serial brute force at every
		// TopK × parallelism combination.
		{"superpod-3x4-auto", p2.SuperPodSystem(3, 4), []int{12, 8}, []int{0}, p2.ExtendedAlgorithms},
		// Degraded fabric under pruning: the per-entity bound must prune
		// exactly as the serial reference ranks, with a throttled NVSwitch
		// uplink steering both the bound and the model.
		{"superpod-3x4-degraded-auto", degradedSuperPod34(), []int{12, 8}, []int{0}, p2.ExtendedAlgorithms},
	} {
		t.Run(tc.name, func(t *testing.T) {
			serial, err := p2.PlanSerial(tc.sys, p2.Request{Axes: tc.axes, ReduceAxes: tc.red, Algos: tc.algos})
			if err != nil {
				t.Fatal(err)
			}
			full := planFingerprint(serial)
			for _, k := range []int{0, 1, 5} {
				for _, par := range []int{1, 4, 16} {
					got, err := p2.Plan(tc.sys, p2.Request{Axes: tc.axes, ReduceAxes: tc.red,
						Algos: tc.algos, TopK: k, Parallelism: par})
					if err != nil {
						t.Fatal(err)
					}
					wantLen := len(serial.Strategies)
					if k > 0 && k < wantLen {
						wantLen = k
					}
					if len(got.Strategies) != wantLen {
						t.Fatalf("TopK=%d parallelism=%d: %d strategies, want %d",
							k, par, len(got.Strategies), wantLen)
					}
					want := planFingerprint(&p2.PlanResult{Strategies: serial.Strategies[:wantLen]})
					if g := planFingerprint(got); g != want {
						t.Errorf("TopK=%d parallelism=%d: pruned ranking differs from serial prefix:\ngot:\n%swant:\n%s",
							k, par, g, want)
					}
					if k == 0 && (got.Stats.PrunedPlacements != 0 || got.Stats.PrunedPrograms != 0) {
						t.Errorf("TopK=0 pruned work: %+v", got.Stats)
					}
					if k > 0 && got.Stats.Placements != serial.Stats.Placements {
						t.Errorf("TopK=%d parallelism=%d: streamed %d placements, want %d",
							k, par, got.Stats.Placements, serial.Stats.Placements)
					}
				}
			}
			if full == "" {
				t.Fatal("empty serial ranking")
			}
		})
	}
}

// TestPlanRerankDeterministic is the determinism contract of the
// measured re-rank stage: at TopK {1, 5} × parallelism {1, 4, 16}, the
// re-ranked result must be byte-identical to the serial reference —
// the analytic top-K, measured on the emulator and stably re-sorted by
// measured time — including the raw float bits of both the predictions
// and the measurements.
func TestPlanRerankDeterministic(t *testing.T) {
	for _, tc := range []struct {
		name  string
		sys   *p2.System
		axes  []int
		red   []int
		algos []p2.Algorithm
	}{
		{"a100-4-auto", p2.A100System(4), []int{4, 16}, []int{0}, p2.ExtendedAlgorithms},
		{"superpod-2x4", p2.SuperPodSystem(2, 4), []int{8, 8}, []int{0}, nil},
		// Residual halving-doubling groups must re-rank deterministically
		// too (the emulator's fold/core/unfold schedule is exercised).
		{"superpod-3x4-auto", p2.SuperPodSystem(3, 4), []int{12, 8}, []int{0}, p2.ExtendedAlgorithms},
	} {
		t.Run(tc.name, func(t *testing.T) {
			serial, err := p2.PlanSerial(tc.sys, p2.Request{Axes: tc.axes, ReduceAxes: tc.red, Algos: tc.algos})
			if err != nil {
				t.Fatal(err)
			}
			for _, k := range []int{1, 5} {
				want := planFingerprint(measuredReference(serial, k, 0, p2.SimOptions{}))
				for _, par := range []int{1, 4, 16} {
					got, err := p2.Plan(tc.sys, p2.Request{Axes: tc.axes, ReduceAxes: tc.red,
						Algos: tc.algos, TopK: k, Parallelism: par, Measure: p2.MeasureRerank})
					if err != nil {
						t.Fatal(err)
					}
					if g := planFingerprint(got); g != want {
						t.Errorf("TopK=%d parallelism=%d: re-ranked result differs from serial reference:\ngot:\n%swant:\n%s",
							k, par, g, want)
					}
					if got.Stats.MeasuredCandidates != k {
						t.Errorf("TopK=%d parallelism=%d: measured %d candidates, want %d",
							k, par, got.Stats.MeasuredCandidates, k)
					}
				}
			}
		})
	}
}

// TestPlanRankAllMatchesBruteForce: rank-all must order the entire
// candidate space by measured time — byte-identical to measuring every
// strategy of the serial analytic ranking and stably re-sorting — and a
// rank-all TopK must be an exact prefix of that measured ranking (which
// a re-ranked analytic TopK is generally not: pruning happens before
// measurement there).
func TestPlanRankAllMatchesBruteForce(t *testing.T) {
	sys := p2.A100System(2)
	req := p2.Request{Axes: []int{2, 16}, ReduceAxes: []int{0}, Algos: p2.ExtendedAlgorithms}
	serial, err := p2.PlanSerial(sys, req)
	if err != nil {
		t.Fatal(err)
	}
	full := measuredReference(serial, 0, 0, p2.SimOptions{})
	for _, k := range []int{0, 5} {
		want := planFingerprint(measuredReference(serial, 0, k, p2.SimOptions{}))
		for _, par := range []int{1, 4} {
			r := req
			r.TopK, r.Parallelism, r.Measure = k, par, p2.MeasureRankAll
			got, err := p2.Plan(sys, r)
			if err != nil {
				t.Fatal(err)
			}
			if g := planFingerprint(got); g != want {
				t.Errorf("rank-all TopK=%d parallelism=%d differs from measured brute force:\ngot:\n%swant:\n%s",
					k, par, g, want)
			}
			// Every candidate must have been measured, even under TopK.
			if got.Stats.MeasuredCandidates != len(full.Strategies) {
				t.Errorf("rank-all TopK=%d measured %d candidates, want %d",
					k, got.Stats.MeasuredCandidates, len(full.Strategies))
			}
			if got.Stats.PrunedPlacements != 0 || got.Stats.PrunedPrograms != 0 {
				t.Errorf("rank-all pruned analytic work: %+v", got.Stats)
			}
		}
	}
}

// TestPlanJointRerankDeterministic: measured joint planning re-sorts the
// placements by summed weighted emulated time, byte-identically at every
// parallelism level to the serial reference (measure each placement's
// per-reduction winners, weight, stable-sort).
func TestPlanJointRerankDeterministic(t *testing.T) {
	sys := p2.SuperPodSystem(2, 4)
	axes := []int{8, 8}
	reductions := []p2.Reduction{
		{ReduceAxes: []int{0}, Bytes: 1 << 30},
		{ReduceAxes: []int{1}, Bytes: 1 << 26, Count: 48, Algos: p2.ExtendedAlgorithms},
	}
	serial, err := p2.PlanJointSerial(sys, axes, reductions)
	if err != nil {
		t.Fatal(err)
	}
	// Serial reference: measure, weight, stable-sort by measured total.
	ref := make([]*p2.JointChoice, len(serial.Choices))
	for i, c := range serial.Choices {
		cc := *c
		cc.PerReduction = append([]*p2.Strategy(nil), c.PerReduction...)
		cc.Measured = make([]float64, len(c.PerReduction))
		cc.MeasuredTotal = 0
		for ri, s := range c.PerReduction {
			ss := *s
			ss.Measured = s.MeasureWith(p2.SimOptions{})
			cc.PerReduction[ri] = &ss
			count := reductions[ri].Count
			if count <= 0 {
				count = 1
			}
			cc.Measured[ri] = count * ss.Measured
			cc.MeasuredTotal += cc.Measured[ri]
		}
		ref[i] = &cc
	}
	sort.SliceStable(ref, func(i, j int) bool { return ref[i].MeasuredTotal < ref[j].MeasuredTotal })
	want := jointFingerprint(&p2.JointPlan{Choices: ref})
	for _, par := range []int{1, 4, 16} {
		got, err := p2.PlanJointOpts(sys, axes, reductions,
			p2.JointOptions{Parallelism: par, Measure: p2.MeasureRerank})
		if err != nil {
			t.Fatal(err)
		}
		if g := jointFingerprint(got); g != want {
			t.Errorf("parallelism %d: measured joint ranking differs from serial reference:\ngot:\n%swant:\n%s",
				par, g, want)
		}
	}
}

// TestPlanPrunedStatsConsistent: every streamed placement is either
// synthesized, served from the memo, or bound-pruned.
func TestPlanPrunedStatsConsistent(t *testing.T) {
	res, err := p2.Plan(p2.SuperPodSystem(4, 8), p2.Request{Axes: []int{16, 16}, ReduceAxes: []int{0}, TopK: 5})
	if err != nil {
		t.Fatal(err)
	}
	s := res.Stats
	if s.SynthRuns+s.MemoHits+s.PrunedPlacements != s.Placements {
		t.Errorf("placement accounting broken: %+v", s)
	}
	if s.PrunedPlacements == 0 && s.PrunedPrograms == 0 {
		t.Errorf("no pruning on SuperPod(4,8) TopK=5: %+v", s)
	}
}

// TestPlanMemoizedStats asserts the engine actually reuses synthesis
// across placements that share a reduction hierarchy.
func TestPlanMemoizedStats(t *testing.T) {
	res, err := p2.Plan(p2.SuperPodSystem(2, 4), p2.Request{Axes: []int{8, 8}, ReduceAxes: []int{0}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.SynthRuns+res.Stats.MemoHits != res.Stats.Placements {
		t.Errorf("stats don't add up: %+v", res.Stats)
	}
	if res.Stats.SynthRuns >= res.Stats.Placements {
		t.Errorf("no memo sharing on SuperPod(2,4): %+v", res.Stats)
	}
}
