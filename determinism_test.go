// Equivalence tests for the parallel memoized planning engine: the
// parallel path must produce byte-identical strategy rankings to the
// serial reference (PlanSerial / PlanJointSerial) at every parallelism
// level, and TopK must be an exact prefix of the full ranking.
package p2_test

import (
	"fmt"
	"math"
	"strings"
	"testing"

	"p2"
)

// planFingerprint renders a ranking byte-exactly: placement, program,
// per-step algorithm assignment and the raw float64 bits of the
// prediction, one strategy per line.
func planFingerprint(res *p2.PlanResult) string {
	var b strings.Builder
	for _, s := range res.Strategies {
		fmt.Fprintf(&b, "%v|%v|%s|%016x\n", s.Matrix, s.Program, s.AlgoString(),
			math.Float64bits(s.Predicted))
	}
	return b.String()
}

func jointFingerprint(jp *p2.JointPlan) string {
	var b strings.Builder
	for _, c := range jp.Choices {
		fmt.Fprintf(&b, "%v|%016x", c.Matrix, math.Float64bits(c.Total))
		for i, s := range c.PerReduction {
			fmt.Fprintf(&b, "|%v[%s]@%016x*%016x", s.Program, s.AlgoString(),
				math.Float64bits(s.Predicted), math.Float64bits(c.Costs[i]))
		}
		b.WriteByte('\n')
	}
	return b.String()
}

var determinismCases = []struct {
	name  string
	sys   *p2.System
	axes  []int
	red   []int
	algos []p2.Algorithm
}{
	{"fig2a", p2.Fig2aSystem(), []int{4, 4}, []int{0}, nil},
	{"fig2a-multi-axis", p2.Fig2aSystem(), []int{2, 2, 4}, []int{0, 2}, nil},
	{"a100-4", p2.A100System(4), []int{4, 16}, []int{0}, nil},
	{"a100-4-multi-axis", p2.A100System(4), []int{16, 2, 2}, []int{0, 2}, nil},
	{"superpod-2x4", p2.SuperPodSystem(2, 4), []int{8, 8}, []int{0}, nil},
	// The per-step algorithm search must reproduce the serial brute-force
	// sweep byte for byte — assignments, predictions and tie order.
	{"fig2a-auto", p2.Fig2aSystem(), []int{4, 4}, []int{0}, p2.ExtendedAlgorithms},
	{"a100-4-auto", p2.A100System(4), []int{4, 16}, []int{0}, p2.ExtendedAlgorithms},
	{"superpod-2x4-auto", p2.SuperPodSystem(2, 4), []int{8, 8}, []int{0}, p2.ExtendedAlgorithms},
	// Non-power-of-two pod count: reduction groups of 3, 6 and 12 run the
	// residual halving-doubling schedule inside the auto search.
	{"superpod-3x4-auto", p2.SuperPodSystem(3, 4), []int{12, 8}, []int{0}, p2.ExtendedAlgorithms},
}

func TestPlanParallelMatchesSerial(t *testing.T) {
	for _, tc := range determinismCases {
		t.Run(tc.name, func(t *testing.T) {
			req := p2.Request{Axes: tc.axes, ReduceAxes: tc.red, Algos: tc.algos}
			serial, err := p2.PlanSerial(tc.sys, req)
			if err != nil {
				t.Fatal(err)
			}
			want := planFingerprint(serial)
			for _, par := range []int{1, 4, 16} {
				req.Parallelism = par
				got, err := p2.Plan(tc.sys, req)
				if err != nil {
					t.Fatal(err)
				}
				if g := planFingerprint(got); g != want {
					t.Errorf("parallelism %d: ranking differs from serial (%d vs %d strategies)",
						par, len(got.Strategies), len(serial.Strategies))
				}
			}
		})
	}
}

func TestPlanTopKIsPrefix(t *testing.T) {
	tc := determinismCases[2] // a100-4
	full, err := p2.PlanSerial(tc.sys, p2.Request{Axes: tc.axes, ReduceAxes: tc.red})
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range []int{1, 5, 37, len(full.Strategies) + 10} {
		got, err := p2.Plan(tc.sys, p2.Request{Axes: tc.axes, ReduceAxes: tc.red,
			TopK: k, Parallelism: 4})
		if err != nil {
			t.Fatal(err)
		}
		want := len(full.Strategies)
		if k < want {
			want = k
		}
		if len(got.Strategies) != want {
			t.Fatalf("TopK=%d kept %d strategies, want %d", k, len(got.Strategies), want)
		}
		prefix := &p2.PlanResult{Strategies: full.Strategies[:want]}
		if planFingerprint(got) != planFingerprint(prefix) {
			t.Errorf("TopK=%d is not a prefix of the full ranking", k)
		}
	}
}

func TestPlanJointParallelMatchesSerial(t *testing.T) {
	for _, tc := range []struct {
		name string
		sys  *p2.System
		axes []int
	}{
		{"fig2a", p2.Fig2aSystem(), []int{4, 4}},
		{"a100-4", p2.A100System(4), []int{4, 16}},
		{"superpod-2x4", p2.SuperPodSystem(2, 4), []int{8, 8}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			reductions := []p2.Reduction{
				{ReduceAxes: []int{0}, Bytes: 1 << 30},
				{ReduceAxes: []int{1}, Bytes: 1 << 26, Count: 48,
					Algos: p2.ExtendedAlgorithms},
			}
			serial, err := p2.PlanJointSerial(tc.sys, tc.axes, reductions)
			if err != nil {
				t.Fatal(err)
			}
			want := jointFingerprint(serial)
			for _, par := range []int{1, 4, 16} {
				got, err := p2.PlanJointOpts(tc.sys, tc.axes, reductions,
					p2.JointOptions{Parallelism: par})
				if err != nil {
					t.Fatal(err)
				}
				if g := jointFingerprint(got); g != want {
					t.Errorf("parallelism %d: joint ranking differs from serial:\ngot:\n%swant:\n%s",
						par, g, want)
				}
			}
			// TopK keeps the cheapest prefix.
			top, err := p2.PlanJointOpts(tc.sys, tc.axes, reductions,
				p2.JointOptions{Parallelism: 4, TopK: 2})
			if err != nil {
				t.Fatal(err)
			}
			if len(top.Choices) != 2 {
				t.Fatalf("TopK=2 kept %d choices", len(top.Choices))
			}
			prefix := &p2.JointPlan{Choices: serial.Choices[:2]}
			if jointFingerprint(top) != jointFingerprint(prefix) {
				t.Error("joint TopK=2 is not a prefix of the serial ranking")
			}
		})
	}
}

// TestPlanPrunedMatchesSerial is the determinism contract of the
// bound-pruned engine: at every parallelism level × TopK × algorithm
// search mode, the pruned ranking must be byte-identical to the
// corresponding prefix of the serial brute-force ranking — assignments,
// predictions and tie order. TopK=0 exercises the serial-identical
// fallback (no threshold exists, nothing may be pruned).
func TestPlanPrunedMatchesSerial(t *testing.T) {
	for _, tc := range []struct {
		name  string
		sys   *p2.System
		axes  []int
		red   []int
		algos []p2.Algorithm
	}{
		{"a100-4-auto", p2.A100System(4), []int{4, 16}, []int{0}, p2.ExtendedAlgorithms},
		{"superpod-2x4-auto", p2.SuperPodSystem(2, 4), []int{8, 8}, []int{0}, p2.ExtendedAlgorithms},
		{"a100-4-multi-axis", p2.A100System(4), []int{16, 2, 2}, []int{0, 2}, nil},
		// Residual halving-doubling under pruning: non-pow2 groups must
		// still rank byte-identically to the serial brute force at every
		// TopK × parallelism combination.
		{"superpod-3x4-auto", p2.SuperPodSystem(3, 4), []int{12, 8}, []int{0}, p2.ExtendedAlgorithms},
	} {
		t.Run(tc.name, func(t *testing.T) {
			serial, err := p2.PlanSerial(tc.sys, p2.Request{Axes: tc.axes, ReduceAxes: tc.red, Algos: tc.algos})
			if err != nil {
				t.Fatal(err)
			}
			full := planFingerprint(serial)
			for _, k := range []int{0, 1, 5} {
				for _, par := range []int{1, 4, 16} {
					got, err := p2.Plan(tc.sys, p2.Request{Axes: tc.axes, ReduceAxes: tc.red,
						Algos: tc.algos, TopK: k, Parallelism: par})
					if err != nil {
						t.Fatal(err)
					}
					wantLen := len(serial.Strategies)
					if k > 0 && k < wantLen {
						wantLen = k
					}
					if len(got.Strategies) != wantLen {
						t.Fatalf("TopK=%d parallelism=%d: %d strategies, want %d",
							k, par, len(got.Strategies), wantLen)
					}
					want := planFingerprint(&p2.PlanResult{Strategies: serial.Strategies[:wantLen]})
					if g := planFingerprint(got); g != want {
						t.Errorf("TopK=%d parallelism=%d: pruned ranking differs from serial prefix:\ngot:\n%swant:\n%s",
							k, par, g, want)
					}
					if k == 0 && (got.Stats.PrunedPlacements != 0 || got.Stats.PrunedPrograms != 0) {
						t.Errorf("TopK=0 pruned work: %+v", got.Stats)
					}
					if k > 0 && got.Stats.Placements != serial.Stats.Placements {
						t.Errorf("TopK=%d parallelism=%d: streamed %d placements, want %d",
							k, par, got.Stats.Placements, serial.Stats.Placements)
					}
				}
			}
			if full == "" {
				t.Fatal("empty serial ranking")
			}
		})
	}
}

// TestPlanPrunedStatsConsistent: every streamed placement is either
// synthesized, served from the memo, or bound-pruned.
func TestPlanPrunedStatsConsistent(t *testing.T) {
	res, err := p2.Plan(p2.SuperPodSystem(4, 8), p2.Request{Axes: []int{16, 16}, ReduceAxes: []int{0}, TopK: 5})
	if err != nil {
		t.Fatal(err)
	}
	s := res.Stats
	if s.SynthRuns+s.MemoHits+s.PrunedPlacements != s.Placements {
		t.Errorf("placement accounting broken: %+v", s)
	}
	if s.PrunedPlacements == 0 && s.PrunedPrograms == 0 {
		t.Errorf("no pruning on SuperPod(4,8) TopK=5: %+v", s)
	}
}

// TestPlanMemoizedStats asserts the engine actually reuses synthesis
// across placements that share a reduction hierarchy.
func TestPlanMemoizedStats(t *testing.T) {
	res, err := p2.Plan(p2.SuperPodSystem(2, 4), p2.Request{Axes: []int{8, 8}, ReduceAxes: []int{0}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.SynthRuns+res.Stats.MemoHits != res.Stats.Placements {
		t.Errorf("stats don't add up: %+v", res.Stats)
	}
	if res.Stats.SynthRuns >= res.Stats.Placements {
		t.Errorf("no memo sharing on SuperPod(2,4): %+v", res.Stats)
	}
}
