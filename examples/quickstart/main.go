// Quickstart walks through the paper's running example (§2) on the Fig. 2a
// system: 1 rack × 2 servers × 2 CPUs × 4 GPUs, combining data parallelism
// of size 4 with 4 parameter shards.
//
// It enumerates the parallelism placements of Fig. 2, then synthesizes the
// reduction strategies of Fig. 3 for the Fig. 2d placement and ranks them
// with the analytic cost model — or, with -measure, measured-in-the-loop:
// the analytic ranking is re-ordered by the network emulator.
//
// Run with: go run ./examples/quickstart [-measure rerank|rank-all]
package main

import (
	"flag"
	"fmt"
	"log"

	"p2"
)

func main() {
	measureFlag := flag.String("measure", "off", "measured-in-the-loop planning: off (analytic only), rerank (re-rank the analytic ranking on the emulator) or rank-all (rank every candidate by measured time)")
	flag.Parse()
	measure, err := p2.ParseMeasureMode(*measureFlag)
	if err != nil {
		log.Fatal(err)
	}

	sys := p2.Fig2aSystem()
	fmt.Println("system:", sys)

	// Step 1 — parallelism placement synthesis (§3.1).
	axes := []int{4, 4} // data parallelism × parameter shards
	matrices, err := p2.Placements(sys, axes)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n%d parallelism placements for axes %v:\n", len(matrices), axes)
	for _, m := range matrices {
		fmt.Println("  ", m)
	}

	// Step 2 — reduction strategy synthesis (§3.3–3.5) for the Fig. 2d
	// placement, reducing along parameter sharding (axis 1).
	fig2d, err := p2.ParseMatrix(sys, axes, "[[1 1 2 2] [1 2 1 2]]")
	if err != nil {
		log.Fatal(err)
	}
	plan, err := p2.Plan(sys, p2.Request{
		Axes:       axes,
		ReduceAxes: []int{1},
		Matrix:     fig2d,
		Bytes:      512e6, // 512 MB of gradients per device
		Measure:    measure,
	})
	if err != nil {
		log.Fatal(err)
	}
	if measure != p2.MeasureOff {
		fmt.Printf("\nreduction strategies for %v (reduce axis 1), fastest measured first:\n", fig2d)
		for i, s := range plan.Strategies {
			fmt.Printf("  %2d: %8.2f ms measured (%8.2f ms predicted)  %v\n",
				i+1, s.Measured*1e3, s.Predicted*1e3, s.Program)
		}
		fmt.Printf("\nemulated %d candidates, %d analytic-vs-measured rank inversions\n",
			plan.Stats.MeasuredCandidates, plan.Stats.RankInversions)
	} else {
		fmt.Printf("\nreduction strategies for %v (reduce axis 1), fastest first:\n", fig2d)
		for i, s := range plan.Strategies {
			fmt.Printf("  %2d: %8.2f ms  %v\n", i+1, s.Predicted*1e3, s.Program)
		}
	}

	// Step 3 — compare the best strategy against the plain AllReduce on
	// the event-level emulator.
	best := plan.Best()
	base := plan.BaselineFor(fig2d)
	fmt.Printf("\nbaseline AllReduce: %8.2f ms (emulated)\n", base.Measure()*1e3)
	fmt.Printf("best strategy:      %8.2f ms (emulated)  %v\n", best.Measure()*1e3, best.Program)
}
