// Resnet50 reproduces the use case of the paper's introduction: speeding up
// data-parallel ResNet-50 training across 4 nodes of 8 V100 GPUs each by
// improving the gradient all-reduce (the paper reports a 15% end-to-end
// improvement on this exact system).
//
// ResNet-50 has ~25.6M parameters; with float32 gradients every iteration
// must reduce ~102 MB across all 32 replicas. The example plans the
// reduction, compares the default AllReduce against the synthesized optimal
// strategy on the network emulator, and translates the saving into training
// throughput assuming a 120 ms compute phase per iteration.
//
// Run with: go run ./examples/resnet50
package main

import (
	"fmt"
	"log"

	"p2"
)

const (
	resnetParams   = 25_600_000
	bytesPerParam  = 4
	gradientBytes  = resnetParams * bytesPerParam
	computePhaseMS = 120.0 // forward+backward per iteration at batch 256/GPU
)

func main() {
	sys := p2.V100System(4)
	fmt.Println("system:", sys)
	fmt.Printf("gradient payload: %.1f MB per GPU\n", float64(gradientBytes)/1e6)

	// Pure data parallelism: one axis covering all 32 GPUs. NCCL_ALGO is
	// a free knob, so instead of planning per algorithm and comparing by
	// hand, let the planner search the per-step assignment over the full
	// Ring/Tree/HalvingDoubling space (Request.Algos).
	plan, err := p2.Plan(sys, p2.Request{
		Axes:       []int{32},
		ReduceAxes: []int{0},
		Bytes:      gradientBytes,
		Algos:      p2.ExtendedAlgorithms,
	})
	if err != nil {
		log.Fatal(err)
	}
	// The comparison baseline stays the NCCL default: a plain ring
	// AllReduce, planned with the algorithm pinned.
	ringPlan, err := p2.Plan(sys, p2.Request{
		Axes:       []int{32},
		ReduceAxes: []int{0},
		Bytes:      gradientBytes,
		Algo:       p2.Ring,
		Matrix:     plan.Strategies[0].Matrix,
	})
	if err != nil {
		log.Fatal(err)
	}
	tBase := ringPlan.BaselineFor(plan.Strategies[0].Matrix).Measure()
	var best *p2.Strategy
	tBest := -1.0
	fmt.Printf("\nstrategies with searched per-step algorithms (emulated):\n")
	for i, s := range plan.Strategies {
		t := s.Measure()
		fmt.Printf("  %2d: %7.2f ms  [%s] %v\n", i+1, t*1e3, s.AlgoString(), s.Program)
		if tBest < 0 || t < tBest {
			tBest, best = t, s
		}
	}

	fmt.Printf("\ndefault ring AllReduce: %6.2f ms\n", tBase*1e3)
	fmt.Printf("optimal synthesized:    %6.2f ms  [%s] %v\n", tBest*1e3, best.AlgoString(), best.Program)
	fmt.Printf("communication speedup: %.2f×\n", tBase/tBest)

	iterBase := computePhaseMS + tBase*1e3
	iterBest := computePhaseMS + tBest*1e3
	fmt.Printf("iteration time: %.1f ms → %.1f ms (%.1f%% end-to-end improvement)\n",
		iterBase, iterBest, 100*(iterBase-iterBest)/iterBase)
}
