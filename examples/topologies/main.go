// Topologies demonstrates the paper's closing use case: "establishing
// projections about communication costs when investigating new system
// hierarchies". It defines a hypothetical future system with a custom
// hierarchy — 8 nodes, each with 2 accelerator pods of 8 devices — and
// projects AllReduce cost across every placement of a 16-way data-parallel,
// 8-way sharded workload, for three candidate pod-interconnect bandwidths.
//
// Run with: go run ./examples/topologies
package main

import (
	"fmt"
	"log"

	"p2"
)

func buildSystem(podBW float64) *p2.System {
	sys, err := p2.NewSystem(
		fmt.Sprintf("future-%.0fGBps", podBW/1e9),
		[]p2.Level{
			{Name: "node", Count: 8},
			{Name: "pod", Count: 2},
			{Name: "dev", Count: 8},
		},
		[]p2.Link{
			{Name: "NIC", Bandwidth: 12e9, Latency: 15e-6},     // node ↔ DCN
			{Name: "PodLink", Bandwidth: podBW, Latency: 4e-6}, // pod ↔ pod
			{Name: "DevLink", Bandwidth: 300e9, Latency: 1e-6}, // dev ↔ pod switch
		},
	)
	if err != nil {
		log.Fatal(err)
	}
	return sys
}

func main() {
	axes := []int{16, 8} // data parallelism × parameter shards
	const payload = 2e9  // 2 GB gradients per device

	for _, podBW := range []float64{32e9, 128e9, 512e9} {
		sys := buildSystem(podBW)
		fmt.Printf("\n=== %s: %v ===\n", sys.Name, sys)
		matrices, err := p2.Placements(sys, axes)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("placements for %v: %d\n", axes, len(matrices))
		fmt.Printf("%-26s %16s %16s %10s\n",
			"matrix", "AllReduce (s)", "best synth (s)", "speedup")

		// Project the data-parallel gradient reduction for each placement.
		bestTotal, bestMatrix := -1.0, ""
		for _, m := range matrices {
			plan, err := p2.Plan(sys, p2.Request{
				Axes: axes, ReduceAxes: []int{0}, Matrix: m, Bytes: payload,
			})
			if err != nil {
				log.Fatal(err)
			}
			base := plan.BaselineFor(m)
			best := plan.Best()
			fmt.Printf("%-26v %16.3f %16.3f %9.2f×\n",
				m, base.Predicted, best.Predicted, base.Predicted/best.Predicted)
			if bestTotal < 0 || best.Predicted < bestTotal {
				bestTotal = best.Predicted
				bestMatrix = m.String()
			}
		}
		fmt.Printf("projected best: %s at %.3f s\n", bestMatrix, bestTotal)
	}
}
