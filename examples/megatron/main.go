// Megatron demonstrates multi-axis planning in the style of Megatron-LM
// parameter sharding combined with data parallelism (§4.1's closing point:
// "models with multiple parallelism forms involve reductions across both
// axes, and the selection of a mapping should take all of them into
// account").
//
// On a 4-node A100 system (64 GPUs) we combine 8-way tensor (sharding)
// parallelism with 8-way data parallelism. Training needs two reductions
// per iteration:
//
//   - activations are all-reduced along the tensor-parallel axis twice per
//     layer per step (many occurrences, modest payloads), and
//   - gradients are all-reduced along the data-parallel axis once per step
//     (one big payload).
//
// p2.PlanJoint scores every placement by the combined cost of both
// reductions; the example contrasts that against optimizing either
// reduction alone.
//
// Run with: go run ./examples/megatron
package main

import (
	"fmt"
	"log"

	"p2"
)

const (
	activationBytes = 64e6  // hidden activations per tensor-parallel allreduce
	gradientBytes   = 1.5e9 // sharded transformer gradients per step
	activationCount = 96    // 48 layers × 2 allreduces, per step
)

func main() {
	sys := p2.A100System(4)
	axes := []int{8, 8} // tensor parallel × data parallel
	fmt.Println("system:", sys)
	fmt.Printf("axes: tensor=%d data=%d\n\n", axes[0], axes[1])

	reductions := []p2.Reduction{
		{ReduceAxes: []int{0}, Bytes: activationBytes, Count: activationCount},
		{ReduceAxes: []int{1}, Bytes: gradientBytes},
	}
	jp, err := p2.PlanJoint(sys, axes, reductions)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("placement ranking by combined per-step communication (predicted):")
	fmt.Printf("%-18s %14s %14s %14s\n", "matrix", "tensor (s)", "data (s)", "total (s)")
	for _, c := range jp.Choices {
		fmt.Printf("%-18v %14.3f %14.3f %14.3f\n", c.Matrix, c.Costs[0], c.Costs[1], c.Total)
	}

	best := jp.Best()
	fmt.Printf("\nbest joint placement: %v\n", best.Matrix)
	fmt.Printf("  tensor-axis strategy: %v\n", best.PerReduction[0].Program)
	fmt.Printf("  data-axis strategy:   %v\n", best.PerReduction[1].Program)

	// The paper's point: optimizing only one reduction can pick a
	// placement that is jointly much worse.
	tensorOnly, dataOnly := best, best
	for _, c := range jp.Choices {
		if c.Costs[0] < tensorOnly.Costs[0] {
			tensorOnly = c
		}
		if c.Costs[1] < dataOnly.Costs[1] {
			dataOnly = c
		}
	}
	fmt.Printf("\nbest for tensor reduction alone: %v (joint total %.3fs)\n", tensorOnly.Matrix, tensorOnly.Total)
	fmt.Printf("best for data reduction alone:   %v (joint total %.3fs)\n", dataOnly.Matrix, dataOnly.Total)
	fmt.Printf("best jointly:                    %v (joint total %.3fs)\n", best.Matrix, best.Total)
	if dataOnly.Total > best.Total {
		fmt.Printf("\noptimizing only the gradient reduction would cost %.1f× more per step\n",
			dataOnly.Total/best.Total)
	}
}
