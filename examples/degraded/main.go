// Degraded demonstrates planning around link faults: the same 4-node A100
// reduction is planned on the pristine fabric, on a fabric with one GPU's
// NVSwitch uplink throttled 10x, and on a fabric with a down NIC. The
// throttle reshuffles the ranking (the stale pristine winner pays a
// penalty over re-planning); the outage makes every route crossing the
// dead link infinite, and re-planning surfaces the strategies that avoid
// it.
//
// Run with: go run ./examples/degraded
package main

import (
	"fmt"
	"log"
	"math"

	"p2"
)

func plan(sys *p2.System) []*p2.Strategy {
	res, err := p2.Plan(sys, p2.Request{Axes: []int{4, 16}, ReduceAxes: []int{0}})
	if err != nil {
		log.Fatal(err)
	}
	return res.Strategies
}

func timeOf(v float64) string {
	if math.IsInf(v, 1) {
		return "never (down link)"
	}
	return fmt.Sprintf("%.4fs", v)
}

func degrade(pristine *p2.System, spec string) {
	faults, err := p2.ParseFaults(pristine, spec)
	if err != nil {
		log.Fatal(err)
	}
	sys, err := pristine.WithOverrides(faults...)
	if err != nil {
		log.Fatal(err)
	}
	base := plan(pristine)
	shifted := plan(sys)

	// The stale plan: what the pristine winner costs on the degraded
	// fabric (both runs rank the identical candidate set, so match by
	// placement and program).
	stale := math.Inf(1)
	for _, s := range shifted {
		if s.Matrix.String() == base[0].Matrix.String() &&
			s.Program.String() == base[0].Program.String() {
			stale = s.Predicted
		}
	}
	fmt.Printf("\n=== fault %q ===\n", spec)
	fmt.Printf("pristine winner:  %v via %v — %s degraded (stale plan)\n",
		base[0].Matrix, base[0].Program, timeOf(stale))
	fmt.Printf("re-planned winner: %v via %v — %s\n",
		shifted[0].Matrix, shifted[0].Program, timeOf(shifted[0].Predicted))
	switch {
	case math.IsInf(stale, 1) && !math.IsInf(shifted[0].Predicted, 1):
		fmt.Println("re-planning routes around the outage the stale plan crosses")
	case stale > shifted[0].Predicted:
		fmt.Printf("re-planning is %.2fx faster than keeping the stale plan\n",
			stale/shifted[0].Predicted)
	default:
		fmt.Println("the pristine winner survives this fault")
	}
}

func main() {
	sys := p2.A100System(4)
	fmt.Printf("system %s %v\n", sys.Name, sys)
	degrade(sys, "gpu:0/0:bw/10")      // one NVSwitch uplink at a tenth
	degrade(sys, "node:2:down")        // a dead NIC
	degrade(sys, "node:*:lat*4;gpu:1/3:loss=0.2") // fleet-wide slow + one lossy link
}
