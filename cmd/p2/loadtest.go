package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"

	"p2/internal/load"
	"p2/internal/serve"
)

// cmdLoadtest drives a seeded synthetic workload (internal/load) against
// the planning service and reports throughput, tail latency and
// per-class counts. With no -url it boots an in-process serve.Server on
// an httptest listener, so the whole stack runs in one process; -warm
// warm-starts that server's strategy cache from the paper-suite catalog
// first, and -compare-warm runs the same stream against a cold and a
// warm server and reports both. The run fails (exit 1) on any
// unexpected error or — when cross-checking — any mismatch between
// client-observed counts and the daemon's /statz deltas.
func cmdLoadtest(args []string, out, errOut io.Writer) error {
	fs := flag.NewFlagSet("loadtest", flag.ContinueOnError)
	fs.SetOutput(errOut)
	url := fs.String("url", "", "base URL of a running daemon (empty = boot an in-process server)")
	mode := fs.String("mode", "closed", `drive mode: "closed" (N clients, think-time 0) or "open" (fixed arrival rate)`)
	clients := fs.Int("clients", 8, "closed-loop concurrent clients")
	rps := fs.Float64("rps", 50, "open-loop target arrival rate (requests per second)")
	requests := fs.Int("requests", 200, "total requests in the generated stream")
	seed := fs.Int64("seed", 1, "workload PRNG seed; same seed ⇒ byte-identical request stream")
	hotFrac := fs.Float64("hot-frac", 0.5, "fraction of requests drawn from the hot set (sets the cache-hit ratio)")
	timeoutFrac := fs.Float64("timeout-frac", 0.05, "fraction of requests carrying a 1ms deadline (anytime/partial path)")
	malformedFrac := fs.Float64("malformed-frac", 0.05, "fraction of deliberately malformed bodies (400 path)")
	warm := fs.Bool("warm", false, "warm-start the in-process server's strategy cache from the paper-suite catalog")
	compareWarm := fs.Bool("compare-warm", false, "run the same stream against a cold and a warm in-process server, report both")
	window := fs.Int("window", 50, "first-window size for the cold-vs-warm p99 comparison")
	crossCheck := fs.Bool("crosscheck", true, "audit client-observed counts against /statz deltas (disable if the target serves other traffic)")
	jsonOut := fs.Bool("json", false, "emit the full report as JSON instead of a summary")
	maxInFlight := fs.Int("max-inflight", 0, "in-process server: concurrent /plan computations before shedding (0 = 2×GOMAXPROCS)")
	cacheSize := fs.Int("cache-size", 0, "in-process server: strategy-cache capacity (0 = 256, negative disables)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *url != "" && (*warm || *compareWarm) {
		return fmt.Errorf("loadtest: -warm and -compare-warm boot an in-process server and cannot be combined with -url")
	}

	m, err := load.ParseMode(*mode)
	if err != nil {
		return err
	}
	stream, err := load.Generate(load.WorkloadConfig{
		Seed:          *seed,
		HotFrac:       *hotFrac,
		TimeoutFrac:   *timeoutFrac,
		MalformedFrac: *malformedFrac,
	}, *requests)
	if err != nil {
		return err
	}
	opts := load.Options{Mode: m, Clients: *clients, RPS: *rps, Window: *window, CrossCheck: *crossCheck}
	cfg := serve.Config{MaxInFlight: *maxInFlight, CacheSize: *cacheSize}
	client := load.NewClient(*clients)

	runInProcess := func(warmStart bool) (*load.Report, error) {
		var warmSet []serve.PlanRequest
		if warmStart {
			warmSet = load.Catalog()
		}
		baseURL, warmed, shutdown, err := load.InProcess(cfg, warmSet)
		if err != nil {
			return nil, err
		}
		defer shutdown()
		if warmStart {
			fmt.Fprintf(errOut, "warmed %d catalog entries\n", warmed)
		}
		return load.Run(client, baseURL, stream, opts)
	}

	reports := map[string]*load.Report{}
	switch {
	case *url != "":
		rep, err := load.Run(client, *url, stream, opts)
		if err != nil {
			return err
		}
		reports["remote"] = rep
	case *compareWarm:
		cold, err := runInProcess(false)
		if err != nil {
			return err
		}
		warmRep, err := runInProcess(true)
		if err != nil {
			return err
		}
		reports["cold"] = cold
		reports["warm"] = warmRep
	default:
		rep, err := runInProcess(*warm)
		if err != nil {
			return err
		}
		if *warm {
			reports["warm"] = rep
		} else {
			reports["cold"] = rep
		}
	}
	for _, rep := range reports {
		rep.Seed = *seed
	}

	if *jsonOut {
		enc := json.NewEncoder(out)
		enc.SetIndent("", "  ")
		if err := enc.Encode(reports); err != nil {
			return err
		}
	} else {
		for _, name := range []string{"remote", "cold", "warm"} {
			rep, ok := reports[name]
			if !ok {
				continue
			}
			printReport(out, name, rep)
		}
		if cold, warm := reports["cold"], reports["warm"]; cold != nil && warm != nil {
			fmt.Fprintf(out, "warm-start: first-window p99 %.1fms cold vs %.1fms warm\n",
				cold.FirstWindow.P99, warm.FirstWindow.P99)
		}
	}

	for name, rep := range reports {
		if rep.Failed() {
			return fmt.Errorf("loadtest: %s run failed: %d unexpected errors, %d cross-check failures",
				name, rep.Counts.Errors, len(rep.CrossCheck))
		}
	}
	return nil
}

// printReport writes the human-readable summary of one run.
func printReport(out io.Writer, name string, r *load.Report) {
	fmt.Fprintf(out, "%s (%s loop, seed %d): %d requests in %.2fs, %.1f req/s\n",
		name, r.Mode, r.Seed, r.Requests, r.DurationSec, r.Throughput)
	fmt.Fprintf(out, "  latency ms: p50 %.1f  p95 %.1f  p99 %.1f  p99.9 %.1f (first %d: p99 %.1f)\n",
		r.Latency.P50, r.Latency.P95, r.Latency.P99, r.Latency.P999, r.Window, r.FirstWindow.P99)
	c := r.Counts
	fmt.Fprintf(out, "  counts: %d complete, %d cache hits, %d partials, %d shed, %d deadline-expired, %d malformed, %d errors\n",
		c.Complete, c.CacheHits, c.Partials, c.Shed, c.DeadlineExpired+c.CoalesceExpired, c.Malformed, c.Errors)
	fmt.Fprintf(out, "  statz delta: %d requests, %d hits, %d misses, %d coalesced, %d shed, %d partials; first hot cached: %v\n",
		r.Statz.Requests, r.Statz.CacheHits, r.Statz.CacheMisses, r.Statz.Coalesced, r.Statz.Shed, r.Statz.Partials, r.FirstHotCached)
	if r.CrossChecked {
		if len(r.CrossCheck) == 0 {
			fmt.Fprintln(out, "  crosscheck: client counts and /statz deltas agree")
		} else {
			for _, f := range r.CrossCheck {
				fmt.Fprintf(out, "  crosscheck FAIL: %s\n", f)
			}
		}
	}
	for _, s := range r.ErrorSamples {
		fmt.Fprintf(out, "  error: %s\n", s)
	}
}
