package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"syscall"
	"time"

	"p2/internal/load"
	"p2/internal/serve"
)

// cmdServe runs the planning daemon (internal/serve): an HTTP/JSON
// front end over the engine with per-request deadlines, anytime
// rankings, panic isolation, a single-flight strategy cache, load
// shedding and graceful drain. SIGTERM or interrupt starts the drain;
// the command exits 0 once in-flight requests have finished (or the
// -drain bound expired).
func cmdServe(args []string, out, errOut io.Writer) error {
	fs := flag.NewFlagSet("serve", flag.ContinueOnError)
	fs.SetOutput(errOut)
	addr := fs.String("addr", "127.0.0.1:8080", "listen address (host:port; port 0 picks a free one, printed on startup)")
	maxInFlight := fs.Int("max-inflight", 0, "concurrent /plan computations before requests are shed with 429 (0 = 2×GOMAXPROCS)")
	cacheSize := fs.Int("cache-size", 0, "complete /plan responses cached across requests, evicted FIFO (0 = 256, negative disables)")
	memoCap := fs.Int("memo-cap", 0, "synthesis-memo entries the shared planner keeps across requests (0 = 4096, negative = unbounded)")
	requestTimeout := fs.Duration("request-timeout", 0, "default planning deadline per request when the request body has no timeout_ms (0 = none)")
	drain := fs.Duration("drain", 5*time.Second, "graceful-shutdown bound: how long in-flight requests may finish after SIGTERM/interrupt")
	warm := fs.Bool("warm", false, "plan the paper-suite catalog into the strategy cache before accepting traffic")
	if err := fs.Parse(args); err != nil {
		return err
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	s := serve.NewServer(serve.Config{
		MaxInFlight:    *maxInFlight,
		CacheSize:      *cacheSize,
		MemoCap:        *memoCap,
		DefaultTimeout: *requestTimeout,
		DrainTimeout:   *drain,
	})
	if *warm {
		warmed, err := s.Warm(ctx, load.Catalog())
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "warmed %d catalog entries\n", warmed)
	}
	return s.ListenAndServe(ctx, *addr, out)
}
