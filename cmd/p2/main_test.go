package main

import (
	"bytes"
	"strings"
	"testing"
)

// exec runs the CLI and returns (stdout, stderr, exit code).
func exec(args ...string) (string, string, int) {
	var out, errOut bytes.Buffer
	code := run(args, &out, &errOut)
	return out.String(), errOut.String(), code
}

func TestNoArgs(t *testing.T) {
	_, errOut, code := exec()
	if code != 2 {
		t.Errorf("exit = %d, want 2", code)
	}
	if !strings.Contains(errOut, "commands:") {
		t.Error("usage missing")
	}
}

func TestUnknownCommand(t *testing.T) {
	_, errOut, code := exec("frobnicate")
	if code != 2 || !strings.Contains(errOut, "unknown command") {
		t.Errorf("exit=%d err=%q", code, errOut)
	}
}

func TestHelp(t *testing.T) {
	out, _, code := exec("help")
	if code != 0 || !strings.Contains(out, "placements") {
		t.Errorf("help failed: %d %q", code, out)
	}
}

func TestPlacementsCommand(t *testing.T) {
	out, errOut, code := exec("placements", "-system", "a100", "-nodes", "4", "-axes", "[4 16]")
	if code != 0 {
		t.Fatalf("exit %d: %s", code, errOut)
	}
	for _, want := range []string{"3 placements", "[[1 4] [4 4]]", "[[4 1] [1 16]]"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestPlacementsBadAxes(t *testing.T) {
	_, errOut, code := exec("placements", "-axes", "[3 5]")
	if code != 1 || !strings.Contains(errOut, "p2:") {
		t.Errorf("exit=%d err=%q", code, errOut)
	}
}

func TestSynthCommand(t *testing.T) {
	out, errOut, code := exec("synth", "-system", "a100", "-nodes", "2",
		"-axes", "[4 8]", "-reduce", "[0]", "-top", "3")
	if code != 0 {
		t.Fatalf("exit %d: %s", code, errOut)
	}
	if !strings.Contains(out, "strategies") || !strings.Contains(out, "AllReduce") {
		t.Errorf("output:\n%s", out)
	}
}

func TestSynthParallelismAndTopK(t *testing.T) {
	// The ranking must not depend on the worker count, and -topk must
	// return the identical leading strategies.
	ref, errOut, code := exec("synth", "-system", "a100", "-nodes", "2",
		"-axes", "[4 8]", "-reduce", "[0]", "-parallelism", "1", "-top", "5")
	if code != 0 {
		t.Fatalf("exit %d: %s", code, errOut)
	}
	par, errOut, code := exec("synth", "-system", "a100", "-nodes", "2",
		"-axes", "[4 8]", "-reduce", "[0]", "-parallelism", "4", "-top", "5")
	if code != 0 {
		t.Fatalf("exit %d: %s", code, errOut)
	}
	if par != ref {
		t.Errorf("-parallelism 4 output differs from -parallelism 1:\n%s\nvs\n%s", par, ref)
	}
	topk, errOut, code := exec("synth", "-system", "a100", "-nodes", "2",
		"-axes", "[4 8]", "-reduce", "[0]", "-parallelism", "4", "-topk", "5", "-top", "5")
	if code != 0 {
		t.Fatalf("exit %d: %s", code, errOut)
	}
	// Same 5 leading strategies; only the reported total count differs.
	refLines := strings.SplitN(ref, "\n", 2)
	topkLines := strings.SplitN(topk, "\n", 2)
	if !strings.Contains(topkLines[0], "5 strategies") {
		t.Errorf("-topk 5 header: %q", topkLines[0])
	}
	if topkLines[1] != refLines[1] {
		t.Errorf("-topk 5 strategies differ from full ranking prefix:\n%s\nvs\n%s",
			topkLines[1], refLines[1])
	}
}

func TestSynthMeasureRerankDeterministic(t *testing.T) {
	// Measured re-ranking must not depend on the worker count: the
	// emulator and the tie order are pure functions of the request.
	args := func(par string) []string {
		return []string{"synth", "-system", "a100", "-nodes", "2",
			"-axes", "[4 8]", "-reduce", "[0]", "-topk", "5",
			"-measure", "rerank", "-parallelism", par}
	}
	ref, errOut, code := exec(args("1")...)
	if code != 0 {
		t.Fatalf("exit %d: %s", code, errOut)
	}
	if !strings.Contains(ref, "fastest measured first") || !strings.Contains(ref, "meas") {
		t.Errorf("measured header/column missing:\n%s", ref)
	}
	for _, par := range []string{"4", "16"} {
		got, errOut, code := exec(args(par)...)
		if code != 0 {
			t.Fatalf("exit %d: %s", code, errOut)
		}
		if got != ref {
			t.Errorf("-parallelism %s re-ranked output differs from -parallelism 1:\n%s\nvs\n%s", par, got, ref)
		}
	}
}

func TestSynthMeasureRankAllPrefix(t *testing.T) {
	// rank-all -topk K must return the first K entries of the full
	// measured ranking.
	full, errOut, code := exec("synth", "-system", "a100", "-nodes", "2",
		"-axes", "[4 8]", "-reduce", "[0]", "-measure", "rank-all", "-top", "5")
	if code != 0 {
		t.Fatalf("exit %d: %s", code, errOut)
	}
	topk, errOut, code := exec("synth", "-system", "a100", "-nodes", "2",
		"-axes", "[4 8]", "-reduce", "[0]", "-measure", "rank-all", "-topk", "5", "-top", "5")
	if code != 0 {
		t.Fatalf("exit %d: %s", code, errOut)
	}
	fullLines := strings.SplitN(full, "\n", 2)
	topkLines := strings.SplitN(topk, "\n", 2)
	if topkLines[1] != fullLines[1] {
		t.Errorf("rank-all -topk 5 differs from full measured ranking prefix:\n%s\nvs\n%s",
			topkLines[1], fullLines[1])
	}
}

func TestMeasureBadMode(t *testing.T) {
	_, errOut, code := exec("synth", "-system", "a100", "-nodes", "2",
		"-axes", "[4 8]", "-reduce", "[0]", "-measure", "bogus")
	if code != 1 || !strings.Contains(errOut, "unknown -measure mode") {
		t.Errorf("exit=%d err=%q", code, errOut)
	}
}

func TestEvalRejectsMeasure(t *testing.T) {
	_, errOut, code := exec("eval", "-system", "a100", "-nodes", "2",
		"-axes", "[4 8]", "-reduce", "[0]", "-measure", "rerank")
	if code != 1 || !strings.Contains(errOut, "-measure has no effect") {
		t.Errorf("exit=%d err=%q", code, errOut)
	}
}

func TestSynthWithMatrix(t *testing.T) {
	out, _, code := exec("synth", "-system", "a100", "-nodes", "2",
		"-axes", "[4 8]", "-reduce", "[0]", "-matrix", "[[2 2] [1 8]]", "-top", "0")
	if code != 0 {
		t.Fatalf("exit %d", code)
	}
	if strings.Contains(out, "[[1 4]") {
		t.Error("matrix restriction ignored")
	}
}

func TestEvalCommand(t *testing.T) {
	out, errOut, code := exec("eval", "-system", "v100", "-nodes", "2",
		"-axes", "[4 4]", "-reduce", "[1]", "-algo", "Ring", "-tsv")
	if code != 0 {
		t.Fatalf("exit %d: %s", code, errOut)
	}
	if !strings.Contains(out, "Speedup") || !strings.Contains(out, "\t") {
		t.Errorf("TSV output:\n%s", out)
	}
}

func TestEvalAutoCommand(t *testing.T) {
	// -algo auto emits the fixed-vs-auto comparison; on the paper's A100
	// 4-node [4 16] sweep the search strictly beats pinned Ring on at
	// least one matrix (emulator and search are deterministic).
	out, errOut, code := exec("eval", "-system", "a100", "-nodes", "4",
		"-axes", "[4 16]", "-reduce", "[0]", "-algo", "auto", "-tsv")
	if code != 0 {
		t.Fatalf("exit %d: %s", code, errOut)
	}
	if !strings.Contains(out, "Auto assignment") || !strings.Contains(out, "Winner") {
		t.Fatalf("comparison table missing:\n%s", out)
	}
	autoWins := false
	for _, line := range strings.Split(out, "\n") {
		cols := strings.Split(line, "\t")
		if len(cols) == 7 && cols[6] == "auto" {
			autoWins = true // auto strictly beat both pinned algorithms
		}
	}
	if !autoWins {
		t.Errorf("no config where auto strictly beats fixed Ring:\n%s", out)
	}
}

func TestSynthAutoShowsAssignments(t *testing.T) {
	out, errOut, code := exec("synth", "-system", "v100", "-nodes", "4",
		"-axes", "[32]", "-reduce", "[0]", "-algo", "auto", "-top", "0")
	if code != 0 {
		t.Fatalf("exit %d: %s", code, errOut)
	}
	if !strings.Contains(out, "HalvingDoubling") {
		t.Errorf("auto synth never chose HalvingDoubling:\n%s", out)
	}
	if !strings.Contains(out, "/") || !strings.Contains(out, "Ring") {
		t.Errorf("expected mixed per-step assignments in:\n%s", out)
	}
}

func TestExportCommand(t *testing.T) {
	out, errOut, code := exec("export", "-system", "v100", "-nodes", "2",
		"-axes", "[4 4]", "-reduce", "[1]")
	if code != 0 {
		t.Fatalf("exit %d: %s", code, errOut)
	}
	if !strings.Contains(out, `"system": "v100-2node"`) {
		t.Errorf("JSON output:\n%s", out)
	}
}

func TestHLOCommand(t *testing.T) {
	out, errOut, code := exec("hlo", "-system", "a100", "-nodes", "2",
		"-axes", "[4 8]", "-reduce", "[0]", "-matrix", "[[2 2] [1 8]]",
		"-program", "(1, InsideGroup, ReduceScatter); (1, Parallel(0), AllReduce); (1, InsideGroup, AllGather)",
		"-elems", "1024")
	if code != 0 {
		t.Fatalf("exit %d: %s", code, errOut)
	}
	for _, want := range []string{"HloModule", "reduce-scatter", "all-reduce", "all-gather"} {
		if !strings.Contains(out, want) {
			t.Errorf("HLO missing %q:\n%s", want, out)
		}
	}
}

func TestHLOBestProgram(t *testing.T) {
	out, errOut, code := exec("hlo", "-system", "a100", "-nodes", "2",
		"-axes", "[4 8]", "-reduce", "[0]", "-matrix", "[[1 4] [2 4]]")
	if code != 0 {
		t.Fatalf("exit %d: %s", code, errOut)
	}
	if !strings.Contains(out, "HloModule") {
		t.Errorf("output:\n%s", out)
	}
}

func TestHLORequiresMatrix(t *testing.T) {
	_, errOut, code := exec("hlo", "-system", "a100", "-nodes", "2",
		"-axes", "[4 8]", "-reduce", "[0]")
	if code != 1 || !strings.Contains(errOut, "-matrix") {
		t.Errorf("exit=%d err=%q", code, errOut)
	}
}

func TestVerifyCommand(t *testing.T) {
	out, errOut, code := exec("verify", "-system", "a100", "-nodes", "2",
		"-axes", "[4 8]", "-reduce", "[0]", "-matrix", "[[2 2] [1 8]]")
	if code != 0 {
		t.Fatalf("exit %d: %s", code, errOut)
	}
	if !strings.Contains(out, "OK:") {
		t.Errorf("output:\n%s", out)
	}
}

func TestFigure11Chart(t *testing.T) {
	out, errOut, code := exec("figure11", "-panel", "a", "-chart")
	if code != 0 {
		t.Fatalf("exit %d: %s", code, errOut)
	}
	if !strings.Contains(out, "measured") || !strings.Contains(out, "Figure 11") {
		t.Errorf("chart output:\n%s", out)
	}
}

func TestFigure11UnknownPanel(t *testing.T) {
	_, _, code := exec("figure11", "-panel", "z")
	if code != 1 {
		t.Errorf("exit = %d", code)
	}
}

func TestTablesUnknown(t *testing.T) {
	_, _, code := exec("tables", "-table", "99")
	if code != 1 {
		t.Errorf("exit = %d", code)
	}
}

func TestTables3V100TwoNode(t *testing.T) {
	out, errOut, code := exec("tables", "-table", "3", "-system", "v100", "-nodes", "2")
	if code != 0 {
		t.Fatalf("exit %d: %s", code, errOut)
	}
	if !strings.Contains(out, "Table 3") {
		t.Errorf("output:\n%s", out)
	}
}

func TestBuildSystemErrors(t *testing.T) {
	if _, err := buildSystem("tpu", 4); err == nil {
		t.Error("unknown system accepted")
	}
	for _, name := range []string{"a100", "V100", "fig2a"} {
		if _, err := buildSystem(name, 2); err != nil {
			t.Errorf("buildSystem(%q): %v", name, err)
		}
	}
}

func TestTraceSummaryCommand(t *testing.T) {
	out, errOut, code := exec("trace", "-system", "a100", "-nodes", "2",
		"-axes", "[4 8]", "-reduce", "[0]", "-matrix", "[[2 2] [1 8]]", "-summary")
	if code != 0 {
		t.Fatalf("exit %d: %s", code, errOut)
	}
	if !strings.Contains(out, "emulated total") || !strings.Contains(out, "step 0") {
		t.Errorf("summary output:\n%s", out)
	}
}

func TestTraceJSONCommand(t *testing.T) {
	out, errOut, code := exec("trace", "-system", "a100", "-nodes", "2",
		"-axes", "[4 8]", "-reduce", "[0]", "-matrix", "[[2 2] [1 8]]",
		"-program", "(0, InsideGroup, AllReduce)")
	if code != 0 {
		t.Fatalf("exit %d: %s", code, errOut)
	}
	if !strings.Contains(out, "traceEvents") {
		t.Errorf("trace output:\n%s", out)
	}
}

func TestTraceUnknownProgram(t *testing.T) {
	_, errOut, code := exec("trace", "-system", "a100", "-nodes", "2",
		"-axes", "[4 8]", "-reduce", "[0]", "-program", "(0, InsideGroup, Broadcast)")
	if code != 1 || !strings.Contains(errOut, "not synthesized") {
		t.Errorf("exit=%d err=%q", code, errOut)
	}
}

func TestDegradeCommand(t *testing.T) {
	out, errOut, code := exec("degrade", "-system", "a100", "-nodes", "2",
		"-axes", "[2 16]", "-reduce", "[0]", "-fault", "gpu:0/0:bw/10", "-top", "5")
	if code != 0 {
		t.Fatalf("exit %d: %s", code, errOut)
	}
	for _, want := range []string{"1 link override(s)", "ranking shift:", "pairs flipped",
		"tau-distance", "best strategy", "Degraded (s)"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestDegradeDownLinkCommand(t *testing.T) {
	out, errOut, code := exec("degrade", "-system", "a100", "-nodes", "4",
		"-axes", "[4 16]", "-reduce", "[0]", "-fault", "node:2:down", "-top", "0")
	if code != 0 {
		t.Fatalf("exit %d: %s", code, errOut)
	}
	if !strings.Contains(out, "down link") {
		t.Errorf("down-link outage not spelled out:\n%s", out)
	}
}

func TestDegradeDeterministic(t *testing.T) {
	args := func(par string) []string {
		return []string{"degrade", "-system", "a100", "-nodes", "2",
			"-axes", "[2 16]", "-reduce", "[0]", "-fault", "gpu:0/0:bw/10",
			"-parallelism", par}
	}
	ref, errOut, code := exec(args("1")...)
	if code != 0 {
		t.Fatalf("exit %d: %s", code, errOut)
	}
	for _, par := range []string{"4", "16"} {
		if got, _, _ := exec(args(par)...); got != ref {
			t.Errorf("-parallelism %s output differs from serial:\n%s\nvs\n%s", par, got, ref)
		}
	}
}

// TestExitCodeContract table-drives the CLI's exit-code contract over
// every subcommand: -h exits 0, an unknown flag exits 1 with the
// diagnostic on stderr, and stdout stays clean in both cases so pipes
// never see usage text or error spew.
func TestExitCodeContract(t *testing.T) {
	subcommands := []string{"placements", "synth", "eval", "export", "hlo",
		"verify", "trace", "tables", "figure11", "accuracy", "degrade", "serve", "loadtest"}
	for _, cmd := range subcommands {
		t.Run(cmd+"/help", func(t *testing.T) {
			out, errOut, code := exec(cmd, "-h")
			if code != 0 {
				t.Errorf("%s -h exit = %d, want 0", cmd, code)
			}
			if out != "" {
				t.Errorf("%s -h wrote usage to stdout: %q", cmd, out)
			}
			if !strings.Contains(errOut, "-h") && !strings.Contains(errOut, "Usage") {
				t.Errorf("%s -h printed no usage: %q", cmd, errOut)
			}
		})
		t.Run(cmd+"/bad flag", func(t *testing.T) {
			out, errOut, code := exec(cmd, "-definitely-not-a-flag")
			if code != 1 {
				t.Errorf("%s with unknown flag exit = %d, want 1", cmd, code)
			}
			if out != "" {
				t.Errorf("%s with unknown flag polluted stdout: %q", cmd, out)
			}
			if !strings.Contains(errOut, "flag provided but not defined") {
				t.Errorf("%s with unknown flag stderr: %q", cmd, errOut)
			}
		})
	}
}

// TestLoadtestCommand runs a small warm in-process closed-loop load
// test end to end: exit 0, throughput and tail latency in the summary,
// a clean cross-check, and the warm-start hit on the first hot request.
func TestLoadtestCommand(t *testing.T) {
	out, errOut, code := exec("loadtest", "-requests", "40", "-clients", "4", "-warm")
	if code != 0 {
		t.Fatalf("exit %d: %s", code, errOut)
	}
	for _, want := range []string{"req/s", "p99", "first hot cached: true",
		"crosscheck: client counts and /statz deltas agree"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	if !strings.Contains(errOut, "warmed") {
		t.Errorf("warm progress line missing from stderr: %q", errOut)
	}
}

func TestLoadtestErrors(t *testing.T) {
	for name, args := range map[string][]string{
		"warm with url": {"loadtest", "-url", "http://127.0.0.1:1", "-warm"},
		"bad mode":      {"loadtest", "-mode", "sideways"},
		"bad fractions": {"loadtest", "-hot-frac", "0.9", "-timeout-frac", "0.9"},
		"dead url":      {"loadtest", "-url", "http://127.0.0.1:1", "-requests", "2"},
	} {
		if _, errOut, code := exec(args...); code != 1 || !strings.Contains(errOut, "p2:") {
			t.Errorf("%s: exit=%d err=%q", name, code, errOut)
		}
	}
}

// TestTimeoutExpiredBeforePlanning pins the deterministic end of the
// -timeout contract: a deadline that is already expired when planning
// starts scores nothing, so the command fails with the context error
// rather than fabricating an empty ranking.
func TestTimeoutExpiredBeforePlanning(t *testing.T) {
	out, errOut, code := exec("synth", "-system", "a100", "-nodes", "2",
		"-axes", "[4 8]", "-reduce", "[0]", "-timeout", "1ns")
	if code != 1 {
		t.Fatalf("exit = %d, want 1\nstdout: %s\nstderr: %s", code, out, errOut)
	}
	if !strings.Contains(errOut, "deadline") {
		t.Errorf("stderr does not name the deadline: %q", errOut)
	}
}

// TestTimeoutGenerousIsComplete pins the other end: a deadline the plan
// comfortably beats changes nothing — identical output, no PARTIAL label.
func TestTimeoutGenerousIsComplete(t *testing.T) {
	ref, _, code := exec("synth", "-system", "a100", "-nodes", "2",
		"-axes", "[4 8]", "-reduce", "[0]", "-top", "5")
	if code != 0 {
		t.Fatalf("reference run exit = %d", code)
	}
	got, errOut, code := exec("synth", "-system", "a100", "-nodes", "2",
		"-axes", "[4 8]", "-reduce", "[0]", "-top", "5", "-timeout", "10m")
	if code != 0 {
		t.Fatalf("exit = %d: %s", code, errOut)
	}
	if got != ref {
		t.Errorf("-timeout 10m changed the output:\n%s\nvs\n%s", got, ref)
	}
	if strings.Contains(got, "PARTIAL") {
		t.Errorf("complete run labeled PARTIAL:\n%s", got)
	}
}

// TestTimeoutMidPlan drives a deadline into a large request. Whether the
// deadline lands before or after the first scored candidate depends on
// the machine, so both contract outcomes are legal — but each must be
// well-formed: exit 0 with the ranking (labeled PARTIAL if truncated),
// or exit 1 naming the deadline.
func TestTimeoutMidPlan(t *testing.T) {
	out, errOut, code := exec("synth", "-system", "superpod:4x8",
		"-axes", "[16 16]", "-reduce", "[0]", "-topk", "3", "-timeout", "150ms")
	switch code {
	case 0:
		if !strings.Contains(out, "strategies") {
			t.Errorf("exit 0 without a ranking:\n%s", out)
		}
	case 1:
		if !strings.Contains(errOut, "deadline") {
			t.Errorf("exit 1 without naming the deadline: %q", errOut)
		}
	default:
		t.Errorf("exit = %d, want 0 or 1", code)
	}
}

// TestTimeoutRejectedWhereMeaningless checks that commands that never
// plan refuse -timeout instead of silently ignoring it.
func TestTimeoutRejectedWhereMeaningless(t *testing.T) {
	for name, args := range map[string][]string{
		"placements": {"placements", "-system", "a100", "-nodes", "2", "-axes", "[4 8]", "-timeout", "1s"},
		"verify": {"verify", "-system", "a100", "-nodes", "2", "-axes", "[4 8]", "-reduce", "[0]",
			"-matrix", "[[2 2] [1 8]]", "-timeout", "1s"},
		"hlo -program": {"hlo", "-system", "a100", "-nodes", "2", "-axes", "[4 8]", "-reduce", "[0]",
			"-matrix", "[[2 2] [1 8]]", "-program", "(0, InsideGroup, AllReduce)", "-timeout", "1s"},
	} {
		if _, errOut, code := exec(args...); code != 1 || !strings.Contains(errOut, "-timeout has no effect") {
			t.Errorf("%s: exit=%d err=%q", name, code, errOut)
		}
	}
}

func TestDegradeErrors(t *testing.T) {
	for name, args := range map[string][]string{
		"no fault":  {"degrade", "-system", "a100", "-nodes", "2", "-axes", "[2 16]", "-reduce", "[0]"},
		"bad fault": {"degrade", "-system", "a100", "-nodes", "2", "-axes", "[2 16]", "-reduce", "[0]", "-fault", "warp:0:down"},
		"measure":   {"degrade", "-system", "a100", "-nodes", "2", "-axes", "[2 16]", "-reduce", "[0]", "-fault", "gpu:0/0:bw/10", "-measure", "rerank"},
		"matrix":    {"degrade", "-system", "a100", "-nodes", "2", "-axes", "[2 16]", "-reduce", "[0]", "-fault", "gpu:0/0:bw/10", "-matrix", "[[2 2] [1 16]]"},
	} {
		if _, errOut, code := exec(args...); code != 1 || !strings.Contains(errOut, "p2:") {
			t.Errorf("%s: exit=%d err=%q", name, code, errOut)
		}
	}
}
