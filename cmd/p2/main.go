// Command p2 is the command-line interface to the P² synthesizer: it
// enumerates parallelism placements, synthesizes reduction strategies,
// evaluates them on the analytic model and the network emulator, and
// regenerates the paper's tables and figures.
//
// Usage:
//
//	p2 placements -system a100 -nodes 4 -axes "[4 16]"
//	p2 synth      -system a100 -nodes 4 -axes "[4 16]" -reduce "[0]" [-matrix "[[2 2] [2 8]]"] [-algo auto]
//	p2 synth      -system superpod:4x8 -axes "[16 16]" -reduce "[0]" -topk 5 -stats [-bytes 1e9] [-cpuprofile plan.prof]
//	p2 synth      -system superpod:4x8 -axes "[16 16]" -reduce "[0]" -topk 5 -measure rerank   # emulator re-ranked top-K
//	p2 eval       -system a100 -nodes 4 -axes "[4 16]" -reduce "[0]" -algo Ring
//	p2 eval       -system a100 -nodes 4 -axes "[4 16]" -reduce "[0]" -algo auto   # search NCCL_ALGO per step
//	p2 export     -system a100 -nodes 4 -axes "[4 16]" -reduce "[0]" -algo Ring   # JSON
//	p2 hlo        -system a100 -nodes 4 -axes "[4 16]" -reduce "[0]" -matrix "[[2 2] [2 8]]" -program "..."
//	p2 verify     -system a100 -nodes 4 -axes "[4 16]" -reduce "[0]" -matrix "[[2 2] [2 8]]"
//	p2 tables     -table 3|4|appendix [-system a100|v100] [-nodes N]
//	p2 figure11   -panel a|b [-chart]
//	p2 accuracy
//	p2 degrade    -system superpod:3x4 -axes "[12 8]" -reduce "[0]" -fault "gpu:0/0/0:bw/10"   # ranking shift under a degraded link
//	p2 degrade    -system a100 -nodes 4 -axes "[4 16]" -reduce "[0]" -fault "node:2:down"      # re-plan around a down NIC
//	p2 serve      -addr 127.0.0.1:8080 [-max-inflight N] [-cache-size N] [-request-timeout 2s] [-drain 5s] [-warm]
//	p2 loadtest   -mode closed -clients 8 -requests 200 -seed 1 [-warm] [-compare-warm] [-json]
//	p2 loadtest   -mode open -rps 50 -url http://127.0.0.1:8080   # against a running daemon
//	p2 synth      -system superpod:4x8 -axes "[16 16]" -reduce "[0]" -timeout 200ms            # anytime: best-so-far past the deadline
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run dispatches a CLI invocation; it is the testable entry point. The
// exit-code contract, enforced by TestExitCodeContract: 0 on success
// (including -h/-help on any subcommand), 1 on any command error —
// always reported to errOut, never to out — and 2 for usage errors at
// the dispatch level (no or unknown subcommand).
func run(args []string, out, errOut io.Writer) int {
	if len(args) < 1 {
		usage(errOut)
		return 2
	}
	cmd, rest := args[0], args[1:]
	var err error
	switch cmd {
	case "placements":
		err = cmdPlacements(rest, out, errOut)
	case "synth":
		err = cmdSynth(rest, out, errOut)
	case "eval":
		err = cmdEval(rest, out, errOut)
	case "export":
		err = cmdExport(rest, out, errOut)
	case "hlo":
		err = cmdHLO(rest, out, errOut)
	case "verify":
		err = cmdVerify(rest, out, errOut)
	case "trace":
		err = cmdTrace(rest, out, errOut)
	case "tables":
		err = cmdTables(rest, out, errOut)
	case "figure11":
		err = cmdFigure11(rest, out, errOut)
	case "accuracy":
		err = cmdAccuracy(rest, out, errOut)
	case "degrade":
		err = cmdDegrade(rest, out, errOut)
	case "serve":
		err = cmdServe(rest, out, errOut)
	case "loadtest":
		err = cmdLoadtest(rest, out, errOut)
	case "help", "-h", "--help":
		usage(out)
	default:
		fmt.Fprintf(errOut, "p2: unknown command %q\n", cmd)
		usage(errOut)
		return 2
	}
	if errors.Is(err, flag.ErrHelp) {
		// -h on a subcommand: the FlagSet already printed its usage;
		// asking for help is not a failure.
		return 0
	}
	if err != nil {
		fmt.Fprintln(errOut, "p2:", err)
		return 1
	}
	return 0
}

func usage(w io.Writer) {
	fmt.Fprintln(w, `p2 — parallelism placement and reduction strategy synthesis

commands:
  placements  enumerate parallelism matrices for an axis configuration
  synth       synthesize reduction programs and rank them by predicted time
              (-measure rerank re-ranks the analytic top-K on the emulator,
              -measure rank-all ranks every candidate by measured time)
  eval        full sweep: synthesize, predict, measure, report per matrix
              (-algo auto searches the per-step NCCL algorithm and reports
              where it beats pinned Ring/Tree)
  export      full sweep emitted as JSON
  hlo         emit a synthesized program as XLA-HLO-style module text
  verify      execute synthesized programs on concrete data and check sums
  trace       emulate one strategy and emit a Chrome trace of its transfers
  tables      regenerate the paper's Table 3, Table 4 or the appendix table
  figure11    regenerate a Figure 11 panel (-chart for an ASCII plot)
  accuracy    regenerate Table 5 (top-k prediction accuracy, full suite)
              extended with auto-mode rows and the analytic-vs-measured
              disagreement rate (-pinned-only for the Ring/Tree rows
              alone, -json for the auto-sweep export)
  degrade     plan the same request on the pristine and a degraded system
              (-fault "LEVEL:ENTITY:down|bw/F|lat*F|loss=F", repeatable) and
              report the ranking shift (Kendall-tau) plus what re-planning
              around the fault buys
  serve       run the planning daemon: POST /plan with per-request
              deadlines (anytime best-so-far results), /healthz, /statz,
              a cross-request strategy cache and graceful drain on SIGTERM
              (-warm plans the paper-suite catalog into the cache first)
  loadtest    drive a seeded synthetic workload against the daemon —
              in-process by default, a remote one with -url — and report
              throughput, p50/p95/p99/p99.9 latency and per-class counts
              cross-checked against /statz deltas (-compare-warm measures
              what cache warm-starting buys)`)
}
