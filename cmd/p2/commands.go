package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"runtime/pprof"
	"strings"
	"time"

	"p2"
	"p2/internal/cost"
	"p2/internal/eval"
	"p2/internal/hierarchy"
	"p2/internal/lower"
	"p2/internal/placement"
	"p2/internal/plan"
	"p2/internal/synth"
	"p2/internal/topology"
	"p2/internal/trace"
	"p2/internal/verify"
	"p2/internal/xla"
)

// commonFlags bundles the flags shared by most subcommands.
type commonFlags struct {
	fs          *flag.FlagSet
	sysName     *string
	nodes       *int
	axes        *string
	reduce      *string
	algo        *string
	matrix      *string
	parallelism *int
	topk        *int
	bytes       *float64
	measure     *string
	timeout     *time.Duration
	stats       *bool
	cpuprofile  *string
}

// newCommon builds a subcommand's flag set. Flag-parse errors and usage
// go to errOut (stderr in production): stdout stays reserved for command
// output, so piping a failed invocation never mixes diagnostics into it.
func newCommon(name string, errOut io.Writer) *commonFlags {
	fs := flag.NewFlagSet(name, flag.ContinueOnError)
	fs.SetOutput(errOut)
	return &commonFlags{
		fs:          fs,
		sysName:     fs.String("system", "a100", "system preset: a100, v100, fig2a, or superpod[:PxN] (P pods × N nodes, default 2x4)"),
		nodes:       fs.Int("nodes", 4, "number of nodes (a100/v100 presets)"),
		axes:        fs.String("axes", "", `parallelism axes, e.g. "[4 16]"`),
		reduce:      fs.String("reduce", "[0]", `reduction axes, e.g. "[0]" or "[0 2]"`),
		algo:        fs.String("algo", "Ring", "NCCL algorithm (case-insensitive): Ring, Tree, HalvingDoubling, or auto to search the per-step assignment"),
		matrix:      fs.String("matrix", "", `restrict to one matrix, e.g. "[[2 2] [2 8]]"`),
		parallelism: fs.Int("parallelism", 0, "planner worker pool size (0 = GOMAXPROCS, 1 = sequential)"),
		topk:        fs.Int("topk", 0, "keep only the K fastest-predicted strategies (0 = all); also arms bound pruning"),
		bytes:       fs.Float64("bytes", 0, "per-device payload in bytes (0 = paper default, 2^29 × machines float32)"),
		measure:     fs.String("measure", "off", "measured-in-the-loop planning: off, rerank (re-rank the analytic top-K on the emulator), or rank-all (measure every candidate)"),
		timeout:     fs.Duration("timeout", 0, "planning deadline, e.g. 500ms; past it ranking commands return the best-so-far ranking labeled PARTIAL, sweep commands abort (0 = none)"),
		stats:       fs.Bool("stats", false, "report planning-engine statistics (memoization, pruning and measurement counters)"),
		cpuprofile:  fs.String("cpuprofile", "", "write a CPU profile of the command to this file"),
	}
}

func (c *commonFlags) system() (*topology.System, error) {
	return buildSystem(*c.sysName, *c.nodes)
}

// profiled runs fn under the optional -cpuprofile collection.
func (c *commonFlags) profiled(fn func() error) error {
	if *c.cpuprofile == "" {
		return fn()
	}
	f, err := os.Create(*c.cpuprofile)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := pprof.StartCPUProfile(f); err != nil {
		return err
	}
	defer pprof.StopCPUProfile()
	return fn()
}

// printStats reports the planning-engine counters when -stats is set.
// Memoization counters are deterministic; the pruning counters depend on
// worker timing (how early the shared threshold tightened), so they are
// opt-in rather than part of the default (reproducible) output. The
// measurement counters (deterministic again) appear only when a measured
// mode actually emulated something.
func (c *commonFlags) printStats(out io.Writer, s plan.Stats) {
	if !*c.stats {
		return
	}
	fmt.Fprintf(out, "planning: %d placements (%d bound-pruned), %d synth runs, %d memo hits, %d candidates scored (%d pruned early, %d bound tightenings)\n",
		s.Placements, s.PrunedPlacements, s.SynthRuns, s.MemoHits,
		s.Candidates, s.PrunedPrograms, s.BoundTightenings)
	if s.MeasuredCandidates > 0 {
		fmt.Fprintf(out, "measured: %d candidates emulated, %d analytic-vs-measured rank inversions\n",
			s.MeasuredCandidates, s.RankInversions)
	}
}

// measureMode parses the -measure flag.
func (c *commonFlags) measureMode() (p2.MeasureMode, error) {
	return p2.ParseMeasureMode(*c.measure)
}

// planCtx returns the command's planning context: Background, bounded by
// -timeout when set. The caller must invoke the cancel function.
func (c *commonFlags) planCtx() (context.Context, context.CancelFunc) {
	if *c.timeout <= 0 {
		return context.Background(), func() {}
	}
	return context.WithTimeout(context.Background(), *c.timeout)
}

// requireNoTimeout rejects -timeout on commands that never plan —
// silently ignoring it would let the user believe the deadline was
// enforced.
func (c *commonFlags) requireNoTimeout(path string) error {
	if *c.timeout != 0 {
		return fmt.Errorf("-timeout has no effect on %s", path)
	}
	return nil
}

// requireNoMeasure rejects -measure on commands whose output it cannot
// influence — silently ignoring it would let the user believe the numbers
// were emulator-ranked.
func (c *commonFlags) requireNoMeasure(path string) error {
	if mode, err := c.measureMode(); err != nil {
		return err
	} else if mode != p2.MeasureOff {
		return fmt.Errorf("-measure has no effect on %s", path)
	}
	return nil
}

// requireNoStats rejects -stats on commands that have no planning
// statistics to report, or whose output must stay machine-parseable —
// silently ignoring the flag would misreport that no pruning happened.
func (c *commonFlags) requireNoStats() error {
	if *c.stats {
		return fmt.Errorf("-stats is not supported by %q (use synth, or trace -summary)", c.fs.Name())
	}
	return nil
}

// requireNoBytes rejects -bytes on commands (or command paths) whose
// output does not depend on the payload — silently ignoring it would let
// the user believe the numbers were computed at the requested size.
func (c *commonFlags) requireNoBytes(path string) error {
	if *c.bytes != 0 {
		return fmt.Errorf("-bytes has no effect on %s", path)
	}
	return nil
}

// parsed resolves the shared flags. With -algo auto, algo is Ring (the
// base) and algos carries the searched set (cost.ExtendedAlgorithms);
// otherwise algos is nil and algo is the pinned algorithm.
func (c *commonFlags) parsed() (axes, red []int, algo cost.Algorithm, algos []cost.Algorithm, err error) {
	if *c.bytes < 0 {
		// Request.Bytes treats <= 0 as "use the paper default"; letting a
		// negative through would silently plan at ~17 GB instead of the
		// requested size.
		return nil, nil, 0, nil, fmt.Errorf("-bytes must be positive (got %g)", *c.bytes)
	}
	axes, err = placement.ParseVector(*c.axes)
	if err != nil {
		return nil, nil, 0, nil, err
	}
	red, err = placement.ParseVector(*c.reduce)
	if err != nil {
		return nil, nil, 0, nil, err
	}
	if strings.EqualFold(*c.algo, "auto") {
		return axes, red, cost.Ring, cost.ExtendedAlgorithms, nil
	}
	if algo, err = cost.ParseAlgorithm(*c.algo); err != nil {
		// ParseAlgorithm doesn't know about the CLI-level auto mode; its
		// error must still offer it.
		err = fmt.Errorf("%w (or \"auto\" to search the per-step assignment)", err)
	}
	return axes, red, algo, nil, err
}

func buildSystem(name string, nodes int) (*topology.System, error) {
	return p2.ParseSystem(name, nodes)
}

// planFor wraps p2.PlanCtx with optional matrix restriction and engine
// options from the CLI flags; -timeout bounds the plan, and past it the
// result comes back with Partial set (the anytime contract — callers
// label it).
func (c *commonFlags) planFor(sys *topology.System, axes, red []int, algo cost.Algorithm, algos []cost.Algorithm) (*p2.PlanResult, error) {
	measure, err := c.measureMode()
	if err != nil {
		return nil, err
	}
	req := p2.Request{Axes: axes, ReduceAxes: red, Algo: algo, Algos: algos,
		Parallelism: *c.parallelism, TopK: *c.topk, Bytes: *c.bytes, Measure: measure}
	if *c.matrix != "" {
		m, err := p2.ParseMatrix(sys, axes, *c.matrix)
		if err != nil {
			return nil, err
		}
		req.Matrix = m
	}
	ctx, cancel := c.planCtx()
	defer cancel()
	return p2.PlanCtx(ctx, sys, req)
}

func cmdPlacements(args []string, out, errOut io.Writer) error {
	c := newCommon("placements", errOut)
	if err := c.fs.Parse(args); err != nil {
		return err
	}
	if err := c.requireNoTimeout(`"placements" (it only enumerates matrices)`); err != nil {
		return err
	}
	sys, err := c.system()
	if err != nil {
		return err
	}
	axes, err := placement.ParseVector(*c.axes)
	if err != nil {
		return err
	}
	if err := c.requireNoStats(); err != nil {
		return err
	}
	if err := c.requireNoBytes(`"placements" (it only enumerates matrices)`); err != nil {
		return err
	}
	if err := c.requireNoMeasure(`"placements" (it only enumerates matrices)`); err != nil {
		return err
	}
	return c.profiled(func() error {
		ms, err := placement.Enumerate(sys.Hierarchy(), axes)
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "system %s %v, axes %v: %d placements (naive space: %v)\n",
			sys.Name, sys.Hierarchy(), axes, len(ms), placement.NaivePlacementCount(axes))
		for i, m := range ms {
			fmt.Fprintf(out, "  %2d: %s\n", i+1, m)
		}
		return nil
	})
}

func cmdSynth(args []string, out, errOut io.Writer) error {
	c := newCommon("synth", errOut)
	top := c.fs.Int("top", 10, "show only the fastest-predicted N programs (0 = all)")
	if err := c.fs.Parse(args); err != nil {
		return err
	}
	sys, err := c.system()
	if err != nil {
		return err
	}
	axes, red, algo, algos, err := c.parsed()
	if err != nil {
		return err
	}
	return c.profiled(func() error {
		plan, err := c.planFor(sys, axes, red, algo, algos)
		if err != nil {
			return err
		}
		if plan.Partial {
			fmt.Fprintln(out, "PARTIAL: -timeout expired mid-plan; this is the best-so-far ranking, not necessarily a prefix of the full one")
		}
		measured := plan.Request.Measure != p2.MeasureOff
		n := len(plan.Strategies)
		if measured {
			fmt.Fprintf(out, "%d strategies (placement × program), fastest measured first (-measure %s):\n",
				n, plan.Request.Measure)
		} else {
			fmt.Fprintf(out, "%d strategies (placement × program), fastest predicted first:\n", n)
		}
		if *top > 0 && *top < n {
			n = *top
		}
		for i := 0; i < n; i++ {
			s := plan.Strategies[i]
			if measured {
				fmt.Fprintf(out, "  %2d: %9.3fs meas %9.3fs pred  %-18v %-16s %v\n",
					i+1, s.Measured, s.Predicted, s.Matrix, s.AlgoString(), s.Program)
			} else {
				fmt.Fprintf(out, "  %2d: %9.3fs  %-18v %-16s %v\n", i+1, s.Predicted, s.Matrix, s.AlgoString(), s.Program)
			}
		}
		c.printStats(out, plan.Stats)
		return nil
	})
}

func cmdEval(args []string, out, errOut io.Writer) error {
	c := newCommon("eval", errOut)
	tsv := c.fs.Bool("tsv", false, "emit TSV instead of markdown")
	if err := c.fs.Parse(args); err != nil {
		return err
	}
	sys, err := c.system()
	if err != nil {
		return err
	}
	axes, red, algo, algos, err := c.parsed()
	if err != nil {
		return err
	}
	if err := c.requireNoStats(); err != nil {
		return err
	}
	if err := c.requireNoMeasure(`"eval" (its sweeps always measure every program)`); err != nil {
		return err
	}
	cfg := eval.Config{Sys: sys, Axes: axes, ReduceAxes: red, Algo: algo, Algos: algos, Bytes: *c.bytes}
	return c.profiled(func() error {
		ctx, cancel := c.planCtx()
		defer cancel()
		if len(algos) > 1 {
			// Auto mode: contrast the searched per-step assignment against
			// the paper's pinned Ring and Tree sweeps.
			ring, tree, auto, err := eval.RunAutoComparisonCtx(ctx, cfg)
			if err != nil {
				return err
			}
			emit(out, eval.BuildAutoComparison(ring, tree, auto), *tsv)
			return nil
		}
		r, err := eval.RunCtx(ctx, cfg)
		if err != nil {
			return err
		}
		emit(out, eval.BuildTable4([]*eval.Result{r}), *tsv)
		return nil
	})
}

func cmdExport(args []string, out, errOut io.Writer) error {
	c := newCommon("export", errOut)
	if err := c.fs.Parse(args); err != nil {
		return err
	}
	sys, err := c.system()
	if err != nil {
		return err
	}
	axes, red, algo, algos, err := c.parsed()
	if err != nil {
		return err
	}
	if err := c.requireNoStats(); err != nil {
		return err
	}
	if err := c.requireNoMeasure(`"export" (its sweeps always measure every program)`); err != nil {
		return err
	}
	return c.profiled(func() error {
		ctx, cancel := c.planCtx()
		defer cancel()
		r, err := eval.RunCtx(ctx, eval.Config{Sys: sys, Axes: axes, ReduceAxes: red, Algo: algo, Algos: algos, Bytes: *c.bytes})
		if err != nil {
			return err
		}
		data, err := eval.ToJSON([]*eval.Result{r})
		if err != nil {
			return err
		}
		_, err = out.Write(append(data, '\n'))
		return err
	})
}

func cmdHLO(args []string, out, errOut io.Writer) error {
	c := newCommon("hlo", errOut)
	progStr := c.fs.String("program", "", `program text, e.g. "(0, InsideGroup, AllReduce)"; empty = best predicted`)
	elems := c.fs.Int("elems", 1<<22, "per-device f32 element count")
	if err := c.fs.Parse(args); err != nil {
		return err
	}
	sys, err := c.system()
	if err != nil {
		return err
	}
	axes, red, algo, algos, err := c.parsed()
	if err != nil {
		return err
	}
	if *c.matrix == "" {
		return fmt.Errorf("hlo requires -matrix")
	}
	if err := c.requireNoStats(); err != nil {
		return err
	}
	if *progStr != "" {
		// With an explicit program nothing is planned, so neither the
		// payload nor a measured mode can influence the emitted HLO
		// (element count comes from -elems).
		if err := c.requireNoBytes(`"hlo -program" (use -elems for the HLO shape)`); err != nil {
			return err
		}
		if err := c.requireNoMeasure(`"hlo -program" (nothing is planned)`); err != nil {
			return err
		}
		if err := c.requireNoTimeout(`"hlo -program" (nothing is planned)`); err != nil {
			return err
		}
	}
	return c.profiled(func() error {
		m, err := placement.ParseMatrix(*c.matrix, sys.Hierarchy(), axes)
		if err != nil {
			return err
		}
		h, err := hierarchy.Build(hierarchy.KindReductionAxes, m, red,
			hierarchy.Options{Collapse: len(red) > 1})
		if err != nil {
			return err
		}
		var lp *lower.Program
		if *progStr != "" {
			prog, err := p2.ParseProgram(*progStr)
			if err != nil {
				return err
			}
			if lp, err = lower.Lower(prog, h); err != nil {
				return err
			}
		} else {
			plan, err := c.planFor(sys, axes, red, algo, algos)
			if err != nil {
				return err
			}
			if plan.Partial {
				// The module text must stay machine-parseable, so the anytime
				// caveat goes to stderr.
				fmt.Fprintln(errOut, "p2: PARTIAL: -timeout expired mid-plan; emitting the best-so-far strategy")
			}
			lp = plan.Best().Lowered()
		}
		src, err := xla.Emit(lp, *elems)
		if err != nil {
			return err
		}
		_, err = io.WriteString(out, src)
		return err
	})
}

func cmdVerify(args []string, out, errOut io.Writer) error {
	c := newCommon("verify", errOut)
	progStr := c.fs.String("program", "", "verify only this program (empty = all synthesized)")
	if err := c.fs.Parse(args); err != nil {
		return err
	}
	if err := c.requireNoTimeout(`"verify" (it executes on small concrete data)`); err != nil {
		return err
	}
	sys, err := c.system()
	if err != nil {
		return err
	}
	axes, red, _, _, err := c.parsed()
	if err != nil {
		return err
	}
	if err := c.requireNoStats(); err != nil {
		return err
	}
	if err := c.requireNoBytes(`"verify" (it executes on small concrete data)`); err != nil {
		return err
	}
	if err := c.requireNoMeasure(`"verify" (it executes on small concrete data)`); err != nil {
		return err
	}
	return c.profiled(func() error {
		var matrices []*placement.Matrix
		if *c.matrix != "" {
			m, err := placement.ParseMatrix(*c.matrix, sys.Hierarchy(), axes)
			if err != nil {
				return err
			}
			matrices = []*placement.Matrix{m}
		} else if matrices, err = placement.Enumerate(sys.Hierarchy(), axes); err != nil {
			return err
		}
		total := 0
		for _, m := range matrices {
			h, err := hierarchy.Build(hierarchy.KindReductionAxes, m, red,
				hierarchy.Options{Collapse: len(red) > 1})
			if err != nil {
				return err
			}
			var progs []p2.Program
			if *progStr != "" {
				prog, err := p2.ParseProgram(*progStr)
				if err != nil {
					return err
				}
				progs = []p2.Program{prog}
			} else {
				progs = synth.Synthesize(h, synth.Options{}).Programs
			}
			for _, prog := range progs {
				lp, err := lower.Lower(prog, h)
				if err != nil {
					return fmt.Errorf("matrix %v program %v: %w", m, prog, err)
				}
				if err := verify.Check(lp, m, red, 2); err != nil {
					return fmt.Errorf("matrix %v program %v: %w", m, prog, err)
				}
				total++
			}
			fmt.Fprintf(out, "matrix %v: %d programs verified on concrete data\n", m, len(progs))
		}
		fmt.Fprintf(out, "OK: %d lowered programs compute exact reduction sums\n", total)
		return nil
	})
}

func cmdTrace(args []string, out, errOut io.Writer) error {
	c := newCommon("trace", errOut)
	progStr := c.fs.String("program", "", "program text; empty = best predicted")
	outPath := c.fs.String("o", "", "write Chrome trace JSON to this file (default stdout)")
	summary := c.fs.Bool("summary", false, "print a per-step summary instead of the JSON")
	if err := c.fs.Parse(args); err != nil {
		return err
	}
	sys, err := c.system()
	if err != nil {
		return err
	}
	axes, red, algo, algos, err := c.parsed()
	if err != nil {
		return err
	}
	if *c.stats && !*summary {
		// The JSON output must stay parseable; only the summary form has
		// room for the stats line.
		return fmt.Errorf("-stats requires -summary for trace")
	}
	return c.profiled(func() error {
		plan, err := c.planFor(sys, axes, red, algo, algos)
		if err != nil {
			return err
		}
		if plan.Partial {
			// The JSON output must stay machine-parseable, so the anytime
			// caveat goes to stderr.
			fmt.Fprintln(errOut, "p2: PARTIAL: -timeout expired mid-plan; tracing the best-so-far strategy")
		}
		strat := plan.Best()
		if *progStr != "" {
			prog, err := p2.ParseProgram(*progStr)
			if err != nil {
				return err
			}
			found := false
			for _, s := range plan.Strategies {
				if s.Program.String() == prog.String() && (*c.matrix == "" || s.Matrix.String() == strat.Matrix.String()) {
					strat, found = s, true
					break
				}
			}
			if !found {
				return fmt.Errorf("program %q was not synthesized for this request", *progStr)
			}
		}
		// Trace through the strategy so the request's (defaulted) payload and
		// any per-step algorithm assignment are honored.
		col := &trace.Collector{}
		total, events := strat.Trace()
		col.Events = events
		if *summary {
			fmt.Fprintf(out, "strategy: %v via %v [%s]\n", strat.Matrix, strat.Program, strat.AlgoString())
			fmt.Fprintf(out, "emulated total: %.4f s, %d transfers\n", total, len(col.Events))
			for _, s := range col.Summarize() {
				fmt.Fprintf(out, "  step %d %-14s %5d transfers %10.1f MB  [%.4f, %.4f] s\n",
					s.Step, s.Op, s.Transfers, s.Bytes/1e6, s.Start, s.End)
			}
			c.printStats(out, plan.Stats)
			return nil
		}
		w := out
		if *outPath != "" {
			f, err := os.Create(*outPath)
			if err != nil {
				return err
			}
			defer f.Close()
			w = f
		}
		return col.WriteChrome(w, sys)
	})
}

func cmdTables(args []string, out, errOut io.Writer) error {
	c := newCommon("tables", errOut)
	table := c.fs.String("table", "4", "which table: 3, 4 or appendix")
	tsv := c.fs.Bool("tsv", false, "emit TSV instead of markdown")
	if err := c.fs.Parse(args); err != nil {
		return err
	}
	if err := c.requireNoStats(); err != nil {
		return err
	}
	if err := c.requireNoBytes(`"tables" (paper tables use the paper's payload)`); err != nil {
		return err
	}
	if err := c.requireNoMeasure(`"tables" (paper tables already measure every program)`); err != nil {
		return err
	}
	return c.profiled(func() error {
		return runTables(c, out, *table, *tsv)
	})
}

func runTables(c *commonFlags, out io.Writer, table string, tsv bool) error {
	ctx, cancel := c.planCtx()
	defer cancel()
	switch table {
	case "3":
		sys, err := c.system()
		if err != nil {
			return err
		}
		var axesList [][]int
		for _, cc := range eval.PaperCases(sys.NumDevices(), false) {
			if len(cc.Axes) == 2 {
				axesList = append(axesList, cc.Axes)
			}
		}
		t, err := eval.BuildTable3(sys, axesList)
		if err != nil {
			return err
		}
		emit(out, t, tsv)
	case "4":
		sys, err := c.system()
		if err != nil {
			return err
		}
		suite := eval.Suite{Sys: sys, Cases: eval.PaperCases(sys.NumDevices(), *c.nodes >= 4)}
		rs, err := eval.RunSuiteCtx(ctx, suite, []cost.Algorithm{cost.Ring, cost.Tree})
		if err != nil {
			return err
		}
		emit(out, eval.BuildTable4(rs), tsv)
	case "appendix":
		var all []*eval.Result
		for _, s := range eval.PaperSuites() {
			rs, err := eval.RunSuiteCtx(ctx, s, []cost.Algorithm{cost.Ring, cost.Tree})
			if err != nil {
				return err
			}
			all = append(all, rs...)
		}
		emit(out, eval.BuildAppendix(all), tsv)
	default:
		return fmt.Errorf("unknown table %q", table)
	}
	return nil
}

func cmdFigure11(args []string, out, errOut io.Writer) error {
	fs := flag.NewFlagSet("figure11", flag.ContinueOnError)
	fs.SetOutput(errOut)
	panel := fs.String("panel", "a", "panel a (V100 ring [2 16] red axis 1) or b (A100 tree [4 2 8] red axes {0,2})")
	chart := fs.Bool("chart", false, "render an ASCII chart instead of the table")
	tsv := fs.Bool("tsv", false, "emit TSV instead of markdown")
	if err := fs.Parse(args); err != nil {
		return err
	}
	var cfg eval.Config
	switch *panel {
	case "a":
		cfg = eval.Config{Sys: topology.V100System(4), Axes: []int{2, 16},
			ReduceAxes: []int{1}, Algo: cost.Ring}
	case "b":
		cfg = eval.Config{Sys: topology.A100System(4), Axes: []int{4, 2, 8},
			ReduceAxes: []int{0, 2}, Algo: cost.Tree}
	default:
		return fmt.Errorf("unknown panel %q", *panel)
	}
	r, err := eval.Run(cfg)
	if err != nil {
		return err
	}
	if *chart {
		_, err = io.WriteString(out, eval.Figure11Chart(r))
		return err
	}
	emit(out, eval.BuildFigure11(r), *tsv)
	return nil
}

func cmdAccuracy(args []string, out, errOut io.Writer) error {
	fs := flag.NewFlagSet("accuracy", flag.ContinueOnError)
	fs.SetOutput(errOut)
	tsv := fs.Bool("tsv", false, "emit TSV instead of markdown")
	pinnedOnly := fs.Bool("pinned-only", false, "skip the auto-mode sweeps (Ring/Tree rows only; roughly halves the runtime)")
	jsonOut := fs.Bool("json", false, "emit the auto-mode sweeps as JSON (predicted/measured best per sweep, per-system accuracy and disagreement rate) instead of the table")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *jsonOut && *pinnedOnly {
		return fmt.Errorf("-json exports the auto-mode sweeps; it cannot be combined with -pinned-only")
	}
	if *jsonOut && *tsv {
		return fmt.Errorf("-json replaces the table output; it cannot be combined with -tsv")
	}
	var all, autos []*eval.Result
	for _, s := range eval.PaperSuites() {
		if !*pinnedOnly {
			auto, err := eval.RunSuiteAuto(s)
			if err != nil {
				return err
			}
			autos = append(autos, auto...)
		}
		if *jsonOut {
			continue // the JSON export covers only the auto sweeps
		}
		rs, err := eval.RunSuite(s, []cost.Algorithm{cost.Ring, cost.Tree})
		if err != nil {
			return err
		}
		all = append(all, rs...)
	}
	if *jsonOut {
		data, err := eval.AutoSuiteToJSON(autos)
		if err != nil {
			return err
		}
		_, err = out.Write(append(data, '\n'))
		return err
	}
	emit(out, eval.BuildTable5(append(all, autos...)), *tsv)
	return nil
}

// faultList collects repeated -fault flags; each value may itself hold
// several ';'-separated fault clauses (topology.ParseFaults).
type faultList []string

func (f *faultList) String() string { return strings.Join(*f, ";") }

func (f *faultList) Set(v string) error {
	*f = append(*f, v)
	return nil
}

func cmdDegrade(args []string, out, errOut io.Writer) error {
	c := newCommon("degrade", errOut)
	var faults faultList
	c.fs.Var(&faults, "fault", `link fault "LEVEL:ENTITY:EFFECT[,EFFECT...]" — LEVEL a level or uplink name (or index), ENTITY coords like 0/1 (or an entity id, or *), EFFECT one of down, bw*F, bw/F, lat*F, lat/F, loss=F; repeatable, ';' separates clauses`)
	top := c.fs.Int("top", 10, "show only the N best degraded strategies (0 = all)")
	tsv := c.fs.Bool("tsv", false, "emit TSV instead of markdown")
	if err := c.fs.Parse(args); err != nil {
		return err
	}
	if len(faults) == 0 {
		return fmt.Errorf(`degrade requires at least one -fault (e.g. -fault "gpu:0/0/0:bw/10")`)
	}
	sys, err := c.system()
	if err != nil {
		return err
	}
	axes, red, algo, algos, err := c.parsed()
	if err != nil {
		return err
	}
	if err := c.requireNoStats(); err != nil {
		return err
	}
	if err := c.requireNoMeasure(`"degrade" (it compares analytic rankings)`); err != nil {
		return err
	}
	if *c.matrix != "" {
		return fmt.Errorf("-matrix has no effect on degrade (ranking shift needs the full placement space)")
	}
	var overrides []topology.LinkOverride
	for _, spec := range faults {
		ovs, err := topology.ParseFaults(sys, spec)
		if err != nil {
			return err
		}
		overrides = append(overrides, ovs...)
	}
	if len(algos) == 0 {
		algos = []cost.Algorithm{algo}
	}
	return c.profiled(func() error {
		ctx, cancel := c.planCtx()
		defer cancel()
		r, err := eval.RunDegradeCtx(ctx, eval.DegradeConfig{
			Sys:         sys,
			Overrides:   overrides,
			Axes:        axes,
			ReduceAxes:  red,
			Algos:       algos,
			Bytes:       *c.bytes,
			Parallelism: *c.parallelism,
		})
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "system %s %v with %d link override(s), axes %v, reduce %v: %d candidates\n",
			sys.Name, sys.Hierarchy(), len(overrides), axes, red, len(r.PristineRank))
		fmt.Fprintf(out, "ranking shift: %d of %d pairs flipped (tau-distance %.4f)\n",
			r.Inversions, r.MaxPairs, r.Tau)
		pb, db := r.PristineRank[0], r.DegradedRank[0]
		if r.BestShifted {
			fmt.Fprintf(out, "best strategy shifted: pristine winner %v via %v now costs %s; re-planning picks %v via %v at %s (%s)\n",
				pb.Matrix, pb.Program, degradeTime(r.StaleTime),
				db.Matrix, db.Program, degradeTime(r.ReplanTime),
				replanGain(r.ReplanSpeedup))
		} else {
			fmt.Fprintf(out, "best strategy unchanged: %v via %v (%s pristine, %s degraded)\n",
				pb.Matrix, pb.Program, degradeTime(pb.Predicted), degradeTime(r.StaleTime))
		}
		k := *top
		if k > 0 && *c.topk > 0 && *c.topk < k {
			k = *c.topk
		}
		emit(out, eval.BuildDegradeTable(r, k), *tsv)
		return nil
	})
}

// degradeTime renders a predicted time, spelling out the +Inf a down link
// produces.
func degradeTime(v float64) string {
	if math.IsInf(v, 1) {
		return "never completes (down link)"
	}
	return fmt.Sprintf("%.3fs", v)
}

// replanGain renders the stale-over-replanned ratio.
func replanGain(v float64) string {
	if math.IsInf(v, 1) {
		return "re-planning avoids a down link the stale plan crosses"
	}
	return fmt.Sprintf("%.2fx faster than keeping the stale plan", v)
}

func emit(out io.Writer, t *eval.Table, tsv bool) {
	if tsv {
		io.WriteString(out, t.TSV())
	} else {
		io.WriteString(out, t.Markdown())
	}
}
