// Command p2lint runs p2's static-analysis suite (internal/analysis) over
// the given packages — a self-contained multichecker enforcing the
// engine's documented invariants at compile time:
//
//	annot        //p2: markers are well-formed (valid kind + justification)
//	detmaprange  no range-over-map in determinism-critical packages
//	nanfloat     no NaN-unsafe float comparisons (==/!=, `x <= c` guards, math.Max/Min)
//	zeroalloc    //p2:zeroalloc functions contain no allocating constructs
//	wallclock    no time.Now/timers/math-rand inside the engine
//	fanout       parallel results land by index, not by arrival order
//
// Usage:
//
//	go run ./cmd/p2lint ./...
//
// Exit status 1 when any diagnostic is reported; CI runs it on every
// change. Escape hatches and their required justifications are documented
// in DESIGN.md §10.
package main

import (
	"flag"
	"fmt"
	"os"

	"p2/internal/analysis"
)

func main() {
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: p2lint [packages]\n\nAnalyzers:\n")
		for _, a := range analysis.All {
			fmt.Fprintf(flag.CommandLine.Output(), "  %-12s %s\n", a.Name, a.Doc)
		}
	}
	flag.Parse()
	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	diags, err := analysis.Run("", patterns, analysis.All)
	if err != nil {
		fmt.Fprintln(os.Stderr, "p2lint:", err)
		os.Exit(2)
	}
	for _, d := range diags {
		fmt.Println(d)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "p2lint: %d invariant violation(s)\n", len(diags))
		os.Exit(1)
	}
}
