// Command p2lint runs p2's static-analysis suite (internal/analysis) over
// the given packages — a self-contained multichecker enforcing the
// engine's documented invariants at compile time:
//
//	annot          //p2: markers are well-formed (valid kind + justification)
//	detmaprange    no range-over-map in determinism-critical packages
//	nanfloat       no NaN-unsafe float comparisons (==/!=, `x <= c` guards, math.Max/Min)
//	zeroalloc      //p2:zeroalloc functions contain no allocating constructs
//	wallclock      no time.Now/timers/math-rand inside the engine
//	fanout         parallel results land by index, not by arrival order
//	ctxflow        no context.Background/TODO in cancellable packages; ctx holders thread it to FooCtx variants
//	atomichygiene  a field touched via sync/atomic anywhere is atomic everywhere
//	locksafe       no locks copied by value, no Lock without Unlock, no Add inside the goroutine
//	errflow        errors.Is/As over ==/!=, fmt.Errorf wraps with %w
//	leakcheck      goroutine channel ops in cancellable code carry a ctx.Done() arm
//	exhaustive     switches over module enum types cover every constant or default
//
// Usage:
//
//	go run ./cmd/p2lint [-json] [-enable list] [-disable list] [packages]
//
// -json emits the diagnostics as a JSON array (the CI build artifact);
// -enable/-disable take comma-separated analyzer names and narrow the
// suite. The exit-code contract matches cmd/p2's: 0 clean (including -h),
// 1 when diagnostics are reported, 2 for usage errors (unknown flag or
// analyzer name). Escape hatches and their required justifications are
// documented in DESIGN.md §10.
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"p2/internal/analysis"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// jsonDiagnostic is the -json output shape: one object per diagnostic,
// position split into file/line/col, paths relative to the working
// directory so the report is stable across checkouts.
type jsonDiagnostic struct {
	Analyzer string `json:"analyzer"`
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Message  string `json:"message"`
	Fix      string `json:"fix,omitempty"`
}

// run is the testable entry point. Exit-code contract (mirrors cmd/p2,
// enforced by TestExitCodeContract): 0 clean (including -h/-help), 1 when
// any diagnostic is reported, 2 for usage errors — unknown flags, unknown
// analyzer names, or a failed load.
func run(args []string, out, errOut io.Writer) int {
	fs := flag.NewFlagSet("p2lint", flag.ContinueOnError)
	fs.SetOutput(errOut)
	jsonOut := fs.Bool("json", false, "emit diagnostics as a JSON array")
	enable := fs.String("enable", "", "comma-separated analyzer names to run (default: all)")
	disable := fs.String("disable", "", "comma-separated analyzer names to skip")
	fs.Usage = func() {
		fmt.Fprintf(errOut, "usage: p2lint [-json] [-enable list] [-disable list] [packages]\n\nAnalyzers:\n")
		for _, a := range analysis.All {
			fmt.Fprintf(errOut, "  %-14s %s\n", a.Name, a.Doc)
		}
	}
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return 0
		}
		return 2
	}
	analyzers, err := selectAnalyzers(*enable, *disable)
	if err != nil {
		fmt.Fprintln(errOut, "p2lint:", err)
		return 2
	}
	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	diags, err := analysis.Run("", patterns, analyzers)
	if err != nil {
		fmt.Fprintln(errOut, "p2lint:", err)
		return 2
	}
	relativize(diags)
	if *jsonOut {
		printJSON(out, diags)
	} else {
		for _, d := range diags {
			fmt.Fprintln(out, d)
		}
	}
	if len(diags) > 0 {
		fmt.Fprintf(errOut, "p2lint: %d invariant violation(s)\n", len(diags))
		return 1
	}
	return 0
}

// selectAnalyzers narrows analysis.All by the -enable/-disable lists,
// rejecting unknown names (a typoed analyzer name silently running the
// wrong suite would be worse than an error).
func selectAnalyzers(enable, disable string) ([]*analysis.Analyzer, error) {
	byName := map[string]*analysis.Analyzer{}
	for _, a := range analysis.All {
		byName[a.Name] = a
	}
	parse := func(list string) (map[string]bool, error) {
		if list == "" {
			return nil, nil
		}
		set := map[string]bool{}
		for _, name := range strings.Split(list, ",") {
			name = strings.TrimSpace(name)
			if byName[name] == nil {
				return nil, fmt.Errorf("unknown analyzer %q (run -h for the list)", name)
			}
			set[name] = true
		}
		return set, nil
	}
	enabled, err := parse(enable)
	if err != nil {
		return nil, err
	}
	disabled, err := parse(disable)
	if err != nil {
		return nil, err
	}
	var out []*analysis.Analyzer
	for _, a := range analysis.All {
		if enabled != nil && !enabled[a.Name] {
			continue
		}
		if disabled[a.Name] {
			continue
		}
		out = append(out, a)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no analyzers selected")
	}
	return out, nil
}

// relativize rewrites diagnostic file paths relative to the working
// directory: stable output for golden tests and CI artifacts.
func relativize(diags []analysis.Diagnostic) {
	wd, err := os.Getwd()
	if err != nil {
		return
	}
	for i := range diags {
		if rel, err := filepath.Rel(wd, diags[i].Pos.Filename); err == nil && !strings.HasPrefix(rel, "..") {
			diags[i].Pos.Filename = rel
		}
	}
}

// printJSON emits the diagnostics as an indented JSON array — `[]` when
// clean, so the CI artifact is always parseable.
func printJSON(out io.Writer, diags []analysis.Diagnostic) {
	jds := make([]jsonDiagnostic, 0, len(diags))
	for _, d := range diags {
		jds = append(jds, jsonDiagnostic{
			Analyzer: d.Analyzer,
			File:     d.Pos.Filename,
			Line:     d.Pos.Line,
			Col:      d.Pos.Column,
			Message:  d.Message,
			Fix:      d.Fix,
		})
	}
	enc := json.NewEncoder(out)
	enc.SetIndent("", "  ")
	if err := enc.Encode(jds); err != nil {
		fmt.Fprintln(os.Stderr, "p2lint: encoding report:", err)
	}
}
