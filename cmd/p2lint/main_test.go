package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// The errflow fixture doubles as the golden input: a real package with
// known diagnostics, loaded through the real driver from the repo root,
// exactly as CI invokes p2lint.
const errflowFixture = "./internal/analysis/testdata/src/errflow"

var update = flag.Bool("update", false, "rewrite the golden -json output")

// exec runs the CLI from the repo root and returns (stdout, stderr, exit
// code).
func exec(t *testing.T, args ...string) (string, string, int) {
	t.Helper()
	t.Chdir("../..")
	var out, errOut bytes.Buffer
	code := run(args, &out, &errOut)
	return out.String(), errOut.String(), code
}

// TestExitCodeContract pins the same contract cmd/p2 has: 0 on success
// and -h, 1 when diagnostics are reported, 2 on usage errors.
func TestExitCodeContract(t *testing.T) {
	t.Run("help is success", func(t *testing.T) {
		_, errOut, code := exec(t, "-h")
		if code != 0 {
			t.Errorf("exit = %d, want 0", code)
		}
		if !strings.Contains(errOut, "ctxflow") || !strings.Contains(errOut, "exhaustive") {
			t.Errorf("usage must list all analyzers, got:\n%s", errOut)
		}
	})
	t.Run("unknown flag is usage error", func(t *testing.T) {
		if _, _, code := exec(t, "-frobnicate"); code != 2 {
			t.Errorf("exit = %d, want 2", code)
		}
	})
	t.Run("unknown analyzer is usage error", func(t *testing.T) {
		_, errOut, code := exec(t, "-enable", "bogus", errflowFixture)
		if code != 2 || !strings.Contains(errOut, `unknown analyzer "bogus"`) {
			t.Errorf("exit=%d err=%q", code, errOut)
		}
	})
	t.Run("everything disabled is usage error", func(t *testing.T) {
		_, errOut, code := exec(t, "-enable", "errflow", "-disable", "errflow", errflowFixture)
		if code != 2 || !strings.Contains(errOut, "no analyzers selected") {
			t.Errorf("exit=%d err=%q", code, errOut)
		}
	})
	t.Run("bad pattern is usage error", func(t *testing.T) {
		if _, _, code := exec(t, "./does/not/exist"); code != 2 {
			t.Errorf("exit = %d, want 2", code)
		}
	})
	t.Run("clean package is success", func(t *testing.T) {
		out, errOut, code := exec(t, "./cmd/p2lint")
		if code != 0 {
			t.Errorf("exit = %d, want 0\nstdout:\n%s\nstderr:\n%s", code, out, errOut)
		}
	})
	t.Run("findings exit 1", func(t *testing.T) {
		out, errOut, code := exec(t, "-enable", "errflow", errflowFixture)
		if code != 1 {
			t.Fatalf("exit = %d, want 1 (stderr %q)", code, errOut)
		}
		if !strings.Contains(errOut, "invariant violation(s)") {
			t.Errorf("summary missing from stderr: %q", errOut)
		}
		// Paths are relativized: stable across checkouts.
		if strings.Contains(out, "/root/") || !strings.Contains(out, "internal/analysis/testdata/src/errflow/errflow.go:") {
			t.Errorf("diagnostics not relative to the repo root:\n%s", out)
		}
	})
}

// TestDisableRemovesAnalyzer: -disable carves one analyzer out of the
// full suite rather than replacing it.
func TestDisableRemovesAnalyzer(t *testing.T) {
	analyzers, err := selectAnalyzers("", "errflow")
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range analyzers {
		if a.Name == "errflow" {
			t.Error("-disable errflow left errflow selected")
		}
	}
	if len(analyzers) != 11 {
		t.Errorf("expected 11 analyzers after disabling one, got %d", len(analyzers))
	}
}

// TestGoldenJSON locks the -json report shape byte for byte. Regenerate
// with `go test ./cmd/p2lint -run Golden -update`.
func TestGoldenJSON(t *testing.T) {
	out, errOut, code := exec(t, "-json", "-enable", "errflow", errflowFixture)
	if code != 1 {
		t.Fatalf("exit = %d, want 1 (stderr %q)", code, errOut)
	}
	golden := filepath.Join("cmd", "p2lint", "testdata", "errflow.json")
	if *update {
		if err := os.WriteFile(golden, []byte(out), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatal(err)
	}
	if out != string(want) {
		t.Errorf("-json output differs from %s:\ngot:\n%s\nwant:\n%s", golden, out, want)
	}
	// The report must stay machine-readable: parse it back.
	var report []jsonDiagnostic
	if err := json.Unmarshal([]byte(out), &report); err != nil {
		t.Fatalf("report is not valid JSON: %v", err)
	}
	if len(report) == 0 || report[0].Analyzer != "errflow" || report[0].Line == 0 {
		t.Errorf("report entries malformed: %+v", report)
	}
}
