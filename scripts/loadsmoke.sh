#!/bin/sh
# loadsmoke.sh — in-process load-test smoke of the planning service, run
# in CI. Builds the CLI with -race and drives `p2 loadtest -compare-warm`:
# the same seeded mixed workload (hot/fresh/deadlined/malformed) against
# a cold and a warm-started in-process daemon, everything in one process
# so the race detector covers client and server together. Asserts:
#
#  1. both runs finish with zero unexpected errors and a clean
#     client-vs-/statz cross-check (loadtest exits non-zero otherwise),
#  2. nonzero throughput and reported tail latency,
#  3. the cold run's first hot request misses the cache, the warm run's
#     hits it — the warm-start contract,
#
# then snapshots both reports into BENCH_serve.json (the service-side
# perf trajectory, next to BENCH_plan.json). The target file's existing
# "baseline" section is preserved; only "current" is rewritten.
#
# Usage:   scripts/loadsmoke.sh [output.json]
# Env:     LOADREQUESTS  stream length (default 200)
#          LOADCLIENTS   closed-loop clients (default 8)
#          BENCHNOTE     free-form note recorded in the snapshot
set -eu
cd "$(dirname "$0")/.."

OUT="${1:-BENCH_serve.json}"
REQUESTS="${LOADREQUESTS:-200}"
CLIENTS="${LOADCLIENTS:-8}"

TMP="$(mktemp -d)"
trap 'rm -rf "$TMP"' EXIT

fail() {
  echo "loadsmoke: FAIL: $1" >&2
  echo "--- loadtest report ---" >&2
  cat "$TMP/report.json" >&2 || true
  echo "--- loadtest log ---" >&2
  cat "$TMP/log" >&2 || true
  exit 1
}

go build -race -o "$TMP/p2" ./cmd/p2

# loadtest itself exits non-zero on any unexpected error or cross-check
# failure in either run — assertion 1 is its exit code.
"$TMP/p2" loadtest -requests "$REQUESTS" -clients "$CLIENTS" -seed 1 \
  -compare-warm -json > "$TMP/report.json" 2> "$TMP/log" \
  || fail "loadtest exited non-zero"

# JSON field assertions via grep: the report pretty-prints with a
# two-space indent, so scalar fields appear as "name": value.
has() { grep -q "\"$1\": $2" "$TMP/report.json" || fail "report lacks \"$1\": $2"; }

[ "$(grep -c '"unexpected_errors": 0' "$TMP/report.json")" -eq 2 ] \
  || fail "expected exactly two runs with zero unexpected errors"
[ "$(grep -c '"crosschecked": true' "$TMP/report.json")" -eq 2 ] \
  || fail "expected both runs cross-checked against /statz"
grep -q '"crosscheck_failures"' "$TMP/report.json" \
  && fail "cross-check failures in the report" || true

grep -Eq '"throughput_rps": [1-9]' "$TMP/report.json" || fail "throughput is zero"
grep -q '"p99":' "$TMP/report.json" || fail "no p99 in the report"

# Warm-start contract: cold first hot request misses, warm hits.
has first_hot_cached false
has first_hot_cached true

go run ./scripts/servebenchjson -o "$OUT" -note "${BENCHNOTE:-}" < "$TMP/report.json"
echo "loadsmoke: OK ($REQUESTS requests x cold+warm under -race; wrote $OUT)"
