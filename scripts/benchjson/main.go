// Command benchjson converts `go test -bench -benchmem` output (on stdin)
// into the repo's BENCH_plan.json snapshot: per-benchmark ns/op, B/op and
// allocs/op plus the planning engine's memoization/pruning artifact lines.
// If the output file already exists, its "baseline" section is preserved
// so successive runs compare against the recorded pre-optimization
// numbers; on first run the current numbers seed the baseline.
//
// It is invoked by scripts/bench.sh, which owns the benchmark selection.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"strconv"
	"strings"
	"time"
)

// Bench is one benchmark's measurements.
type Bench struct {
	NsOp     float64 `json:"ns_op"`
	BOp      *int64  `json:"b_op,omitempty"`
	AllocsOp *int64  `json:"allocs_op,omitempty"`
}

// Run is one snapshot of the suite.
type Run struct {
	Date       string             `json:"date"`
	Benchtime  string             `json:"benchtime"`
	Benchmarks map[string]Bench   `json:"benchmarks"`
	// Pruning holds the planning-engine artifact lines (placements,
	// synth runs, memo hits, bound-pruning counters) keyed by engine
	// configuration, verbatim.
	Pruning map[string][]string `json:"pruning,omitempty"`
	Note    string              `json:"note,omitempty"`
}

// File is the BENCH_plan.json layout.
type File struct {
	Baseline *Run `json:"baseline,omitempty"`
	Current  *Run `json:"current"`
}

var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+\d+\s+([0-9.]+) ns/op(?:\s+(\d+) B/op\s+(\d+) allocs/op)?`)

func main() {
	out := flag.String("o", "BENCH_plan.json", "output file")
	benchtime := flag.String("benchtime", "", "benchtime label recorded in the snapshot")
	note := flag.String("note", "", "free-form note recorded in the snapshot")
	flag.Parse()

	cur := &Run{
		Date:       time.Now().UTC().Format(time.RFC3339),
		Benchtime:  *benchtime,
		Benchmarks: map[string]Bench{},
		Pruning:    map[string][]string{},
		Note:       *note,
	}
	engineKey := ""
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := sc.Text()
		if m := benchLine.FindStringSubmatch(line); m != nil {
			b := Bench{}
			b.NsOp, _ = strconv.ParseFloat(m[2], 64)
			if m[3] != "" {
				bop, _ := strconv.ParseInt(m[3], 10, 64)
				aop, _ := strconv.ParseInt(m[4], 10, 64)
				b.BOp, b.AllocsOp = &bop, &aop
			}
			cur.Benchmarks[m[1]] = b
			continue
		}
		if rest, ok := strings.CutPrefix(line, "===== Planning engine — "); ok {
			engineKey = strings.TrimSuffix(rest, " =====")
			continue
		}
		if engineKey != "" {
			if trimmed := strings.TrimSpace(line); trimmed != "" &&
				(strings.HasPrefix(trimmed, "placements=") || strings.HasPrefix(trimmed, "topk=")) {
				cur.Pruning[engineKey] = append(cur.Pruning[engineKey], trimmed)
				continue
			}
			engineKey = ""
		}
	}
	if err := sc.Err(); err != nil {
		fatal(err)
	}
	if len(cur.Benchmarks) == 0 {
		fatal(fmt.Errorf("no benchmark lines found on stdin"))
	}

	f := &File{Current: cur}
	if data, err := os.ReadFile(*out); err == nil {
		var prev File
		if err := json.Unmarshal(data, &prev); err == nil && prev.Baseline != nil {
			f.Baseline = prev.Baseline
		}
	}
	if f.Baseline == nil {
		f.Baseline = cur
	}
	data, err := json.MarshalIndent(f, "", "  ")
	if err != nil {
		fatal(err)
	}
	if err := os.WriteFile(*out, append(data, '\n'), 0o644); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchjson:", err)
	os.Exit(1)
}
