#!/bin/sh
# servesmoke.sh — end-to-end smoke test of the p2 serve daemon, run in
# CI. Builds the CLI with -race, boots the daemon on an ephemeral port,
# and drives the full service contract over real HTTP:
#
#  1. a complete /plan round trip (partial=false, ranked strategies),
#  2. concurrent mixed traffic, including one deliberately-deadlined
#     rank-all request that must come back partial=true (anytime),
#  3. a repeat of request 1 that must be served from the cache,
#  4. /statz accounting for the cache hit,
#  5. a clean SIGTERM drain: exit status 0, drain messages logged.
#
# Any failed assertion exits non-zero with the daemon log for debugging.
set -eu
cd "$(dirname "$0")/.."

TMP="$(mktemp -d)"
DAEMON=""
cleanup() {
  [ -n "$DAEMON" ] && kill "$DAEMON" 2>/dev/null || true
  rm -rf "$TMP"
}
trap cleanup EXIT

fail() {
  echo "servesmoke: FAIL: $1" >&2
  echo "--- daemon log ---" >&2
  cat "$TMP/log" >&2 || true
  exit 1
}

# JSON field assertions via grep: the daemon pretty-prints with a
# two-space indent, so top-level scalar fields appear as  "name": value.
has() { grep -q "\"$2\": $3" "$TMP/$1" || fail "$1 lacks \"$2\": $3"; }

go build -race -o "$TMP/p2" ./cmd/p2

"$TMP/p2" serve -addr 127.0.0.1:0 -request-timeout 30s > "$TMP/log" 2>&1 &
DAEMON=$!

ADDR=""
for _ in $(seq 1 100); do
  ADDR="$(sed -n 's/^p2 serve listening on //p' "$TMP/log")"
  [ -n "$ADDR" ] && break
  sleep 0.1
done
[ -n "$ADDR" ] || fail "daemon never logged its listen address"

post() { curl --silent --show-error --max-time 120 --data "$2" "http://$ADDR/plan" > "$TMP/$1"; }

# 1. Complete round trip.
post full.json '{"system": "fig2a", "axes": [16], "reduce": [0], "topk": 5}'
has full.json partial false
has full.json cached false
grep -q '"strategies"' "$TMP/full.json" || fail "full.json has no strategies"

# 2. Concurrent mixed traffic: two fresh plans, the cached repeat of
#    request 1, and a deadlined rank-all. Its analytic phase takes under
#    2s even with -race and concurrent load, while measuring all of
#    superpod:4x8's candidates takes minutes — so a 5s deadline reliably
#    lands mid-measurement, and the anytime contract owes us
#    partial=true.
post a100.json '{"system": "a100", "nodes": 4, "axes": [4, 16], "reduce": [0], "topk": 3}' &
P1=$!
post auto.json '{"system": "fig2a", "axes": [4, 4], "reduce": [0], "algo": "auto"}' &
P2=$!
post cached.json '{"system": "fig2a", "axes": [16], "reduce": [0], "topk": 5}' &
P3=$!
post partial.json '{"system": "superpod:4x8", "axes": [16, 16], "reduce": [0],
                    "measure": "rank-all", "timeout_ms": 5000}' &
P4=$!
wait "$P1" "$P2" "$P3" "$P4"

has a100.json partial false
has auto.json partial false
has cached.json cached true
has cached.json partial false
has partial.json partial true

# 3. /statz accounts for the cache hit.
curl --silent --max-time 30 "http://$ADDR/statz" > "$TMP/statz.json"
grep -q '"cache_hits": 0' "$TMP/statz.json" && fail "statz reports no cache hits"

# 4. Graceful drain: SIGTERM, exit 0, drain messages.
kill -TERM "$DAEMON"
if ! wait "$DAEMON"; then
  fail "daemon exited non-zero after SIGTERM"
fi
DAEMON=""
grep -q "p2 serve draining" "$TMP/log" || fail "no drain message in the log"
grep -q "p2 serve drained" "$TMP/log" || fail "no drained message in the log"

echo "servesmoke: OK (complete, concurrent, anytime-partial, cached, statz and SIGTERM drain all verified)"
