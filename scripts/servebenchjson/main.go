// Command servebenchjson converts a `p2 loadtest -compare-warm -json`
// report (on stdin) into the repo's BENCH_serve.json snapshot: the cold
// and warm run reports verbatim under a dated entry. If the output file
// already exists, its "baseline" section is preserved so successive runs
// compare against the recorded numbers; on first run the current numbers
// seed the baseline.
//
// It is invoked by scripts/loadsmoke.sh, which owns the run parameters.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"time"
)

// Run is one snapshot: the loadtest report (keyed cold/warm) verbatim.
type Run struct {
	Date string                     `json:"date"`
	Runs map[string]json.RawMessage `json:"runs"`
	Note string                     `json:"note,omitempty"`
}

// File is the BENCH_serve.json layout.
type File struct {
	Baseline *Run `json:"baseline,omitempty"`
	Current  *Run `json:"current"`
}

func main() {
	out := flag.String("o", "BENCH_serve.json", "output snapshot file")
	note := flag.String("note", "", "free-form note recorded in the snapshot")
	flag.Parse()
	if err := run(*out, *note); err != nil {
		fmt.Fprintln(os.Stderr, "servebenchjson:", err)
		os.Exit(1)
	}
}

func run(out, note string) error {
	data, err := io.ReadAll(os.Stdin)
	if err != nil {
		return fmt.Errorf("reading report from stdin: %w", err)
	}
	var runs map[string]json.RawMessage
	if err := json.Unmarshal(data, &runs); err != nil {
		return fmt.Errorf("parsing loadtest report: %w", err)
	}
	for _, key := range []string{"cold", "warm"} {
		if _, ok := runs[key]; !ok {
			return fmt.Errorf("report has no %q run: pass `p2 loadtest -compare-warm -json` output", key)
		}
	}
	cur := &Run{Date: time.Now().UTC().Format(time.RFC3339), Runs: runs, Note: note}

	f := File{Current: cur}
	if prev, err := os.ReadFile(out); err == nil {
		var old File
		if err := json.Unmarshal(prev, &old); err != nil {
			return fmt.Errorf("parsing existing %s: %w", out, err)
		}
		f.Baseline = old.Baseline
	}
	if f.Baseline == nil {
		f.Baseline = cur
	}

	enc, err := json.MarshalIndent(&f, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(out, append(enc, '\n'), 0o644)
}
