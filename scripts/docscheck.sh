#!/bin/sh
# docscheck.sh — documentation consistency checks, run in CI:
#
#  1. Every CLI flag mentioned in README.md (a token like `-topk` after a
#     space, backtick or parenthesis) is actually defined by cmd/p2 or
#     cmd/p2lint.
#  2. DESIGN.md's "Contents" index matches its numbered "## N." section
#     headers exactly, both ways.
#  3. The //p2: annotation markers documented in DESIGN.md §10, the set
#     internal/analysis accepts, and the set used in the tree agree:
#     every documented marker appears in the source tree, and every
#     marker used anywhere is documented.
#
# Exit status is non-zero on any mismatch, printing what drifted.
set -eu
cd "$(dirname "$0")/.."

fail=0

# --- 1. README flags exist in cmd/p2 or cmd/p2lint --------------------------
# Flags defined anywhere in the CLIs: flag.FlagSet
# String/Int/Bool/Float64/Duration declarations name the flag in the
# first argument, Var declarations (used for repeatable flags like
# -fault) in the second.
defined=$(
  {
    grep -hoE 'fs\.(String|Int|Int64|Bool|Float64|Duration)\("[a-z-]+"' cmd/p2/*.go cmd/p2lint/*.go
    grep -hoE 'fs\.Var\([^,]+, "[a-z-]+"' cmd/p2/*.go
    # package flag defines -h/-help on every FlagSet implicitly.
    printf 'h\nhelp\n'
  } | sed -E 's/.*"([a-z-]+)"/\1/' | sort -u
)

# Flag-looking tokens in the README: "-name" right after start-of-line,
# whitespace, backtick or '(' — single-letter flags like -o included.
# Hyphenated prose ("top-k", "rank-all") never matches because its dash
# is preceded by a letter; list bullets "- " fail the [a-z] after the dash.
mentioned=$(grep -oE '(^|[[:space:]`(])-[a-z][a-z-]*' README.md \
  | grep -oE -- '-[a-z][a-z-]*' | sed 's/^-//' | sort -u)

for f in $mentioned; do
  if ! printf '%s\n' "$defined" | grep -qx "$f"; then
    echo "docscheck: README.md mentions flag -$f, but cmd/p2 does not define it" >&2
    fail=1
  fi
done

# --- 2. DESIGN.md contents index matches its headers ------------------------
toc=$(awk '/^## Contents/{inblock=1; next} /^## /{inblock=0} inblock && /^[0-9]+\. /' DESIGN.md)
headers=$(grep -E '^## [0-9]+\. ' DESIGN.md | sed 's/^## //')

if [ -z "$toc" ]; then
  echo "docscheck: DESIGN.md has no '## Contents' index" >&2
  fail=1
elif [ "$toc" != "$headers" ]; then
  echo "docscheck: DESIGN.md Contents index and section headers disagree:" >&2
  echo "--- Contents ---" >&2
  printf '%s\n' "$toc" >&2
  echo "--- Headers ----" >&2
  printf '%s\n' "$headers" >&2
  fail=1
fi

# --- 3. //p2: annotation markers: DESIGN.md §10 vs the tree -----------------
# Documented markers: backticked `//p2:name ...` occurrences in DESIGN.md.
documented=$(grep -oE '`//p2:[a-z-]+' DESIGN.md | sed 's|.*//p2:||' | sort -u)
# Markers the analyzers accept: the Marker constants in analysis.go.
accepted=$(grep -oE 'Marker = "[a-z-]+"' internal/analysis/analysis.go \
  | sed 's/.*"\(.*\)"/\1/' | sort -u)
# Markers used in Go sources (the annot fixture's deliberate typo lives in
# internal/analysis/testdata and is excluded along with the analyzer
# sources themselves, which name markers in prose and diagnostics).
used=$(grep -rhoE '//p2:[a-z-]+' --include='*.go' --exclude-dir=analysis . \
  | sed 's|//p2:||' | sort -u)

if [ -z "$documented" ]; then
  echo "docscheck: DESIGN.md documents no //p2: annotation markers (expected in §10)" >&2
  fail=1
fi
if [ "$documented" != "$accepted" ]; then
  echo "docscheck: DESIGN.md §10 markers and internal/analysis Marker constants disagree:" >&2
  echo "--- DESIGN.md §10 ---" >&2
  printf '%s\n' "$documented" >&2
  echo "--- analysis.go -----" >&2
  printf '%s\n' "$accepted" >&2
  fail=1
fi
for m in $documented; do
  if ! printf '%s\n' "$used" | grep -qx "$m"; then
    echo "docscheck: DESIGN.md documents marker //p2:$m, but nothing in the tree uses it" >&2
    fail=1
  fi
done
for m in $used; do
  if ! printf '%s\n' "$documented" | grep -qx "$m"; then
    echo "docscheck: marker //p2:$m is used in the tree but not documented in DESIGN.md §10" >&2
    fail=1
  fi
done

if [ "$fail" -ne 0 ]; then
  exit 1
fi
echo "docscheck: OK (README flags consistent with cmd/p2 and cmd/p2lint; DESIGN.md index matches headers; //p2: markers documented, accepted and used consistently)"
