#!/bin/sh
# bench.sh — run the planning-engine benchmark suite and snapshot it into
# BENCH_plan.json (ns/op, B/op, allocs/op, plus the engine's memoization
# and bound-pruning counters) for before/after comparison.
#
# Usage:   scripts/bench.sh [output.json]
# Env:     BENCHTIME   go test -benchtime value (default 3x; CI uses 1x)
#          BENCHNOTE   free-form note recorded in the snapshot
#
# The target file's existing "baseline" section is preserved across runs
# (the committed BENCH_plan.json carries the pre-optimization numbers);
# only "current" is rewritten.
set -eu
cd "$(dirname "$0")/.."

OUT="${1:-BENCH_plan.json}"
BENCHTIME="${BENCHTIME:-3x}"
BENCHNOTE="${BENCHNOTE:-}"

TMP="$(mktemp)"
trap 'rm -f "$TMP"' EXIT

go test -run XXX \
  -bench 'BenchmarkPlanSuperPod2x4|BenchmarkPlanSuperPod3x4|BenchmarkPlanSuperPod3x4Degraded|BenchmarkPlanSuperPod4x8|BenchmarkPlanJointEngine|BenchmarkCostEstimate|BenchmarkLower$' \
  -benchmem -benchtime "$BENCHTIME" . | tee "$TMP"

go run ./scripts/benchjson -o "$OUT" -benchtime "$BENCHTIME" -note "$BENCHNOTE" < "$TMP"
echo "bench.sh: wrote $OUT"
