package trace

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"p2/internal/collective"
	"p2/internal/cost"
	"p2/internal/dsl"
	"p2/internal/hierarchy"
	"p2/internal/lower"
	"p2/internal/netsim"
	"p2/internal/placement"
	"p2/internal/topology"
)

// record runs the RS-AR-AG program on the emulator with a collector.
func record(t *testing.T) (*Collector, *topology.System) {
	t.Helper()
	m, err := placement.NewMatrix([]int{4, 16}, []int{4, 16}, [][]int{{2, 2}, {2, 8}})
	if err != nil {
		t.Fatal(err)
	}
	h, err := hierarchy.Build(hierarchy.KindReductionAxes, m, []int{0}, hierarchy.Options{})
	if err != nil {
		t.Fatal(err)
	}
	lp, err := lower.Lower(dsl.Program{
		{Slice: 1, Form: dsl.InsideGroup, Op: collective.ReduceScatter},
		{Slice: 1, Form: dsl.Parallel, Arg: 0, Op: collective.AllReduce},
		{Slice: 1, Form: dsl.InsideGroup, Op: collective.AllGather},
	}, h)
	if err != nil {
		t.Fatal(err)
	}
	sys := topology.A100System(4)
	col := &Collector{}
	sim := &netsim.Simulator{Sys: sys, Algo: cost.Ring, Bytes: 1e9,
		Opts:     netsim.Options{DisableNoise: true, LaunchOverhead: 1e-9},
		Recorder: col.Record}
	if got := sim.Measure(lp); got <= 0 {
		t.Fatalf("Measure = %v", got)
	}
	return col, sys
}

func TestCollectorRecordsAllSteps(t *testing.T) {
	col, _ := record(t)
	if len(col.Events) == 0 {
		t.Fatal("no events recorded")
	}
	steps := map[int]bool{}
	for _, ev := range col.Events {
		steps[ev.Step] = true
		if ev.End < ev.Start {
			t.Errorf("event ends before it starts: %+v", ev)
		}
		if ev.Bytes <= 0 {
			t.Errorf("non-positive bytes: %+v", ev)
		}
		if ev.Src == ev.Dst {
			t.Errorf("self transfer: %+v", ev)
		}
	}
	for s := 0; s < 3; s++ {
		if !steps[s] {
			t.Errorf("no events for step %d", s)
		}
	}
}

func TestEventTimesRespectStepOrder(t *testing.T) {
	col, _ := record(t)
	// Compute per-step intervals; step i must end before step i+1 starts
	// (steps are barriers).
	sums := col.Summarize()
	if len(sums) != 3 {
		t.Fatalf("summaries = %d", len(sums))
	}
	for i := 1; i < len(sums); i++ {
		if sums[i].Start < sums[i-1].End-1e-12 {
			t.Errorf("step %d starts (%v) before step %d ends (%v)",
				i, sums[i].Start, i-1, sums[i-1].End)
		}
	}
	if sums[0].Op != "ReduceScatter" || sums[1].Op != "AllReduce" || sums[2].Op != "AllGather" {
		t.Errorf("summary ops = %v %v %v", sums[0].Op, sums[1].Op, sums[2].Op)
	}
}

func TestSummaryByteAccounting(t *testing.T) {
	col, _ := record(t)
	sums := col.Summarize()
	// Step 1 (cross-node AllReduce over halves) must move fewer bytes
	// than a full AllReduce would: its per-device input is 0.5 GB.
	if sums[1].Bytes >= sums[0].Bytes*2.1 {
		t.Errorf("middle step bytes unexpectedly large: %+v", sums)
	}
	for _, s := range sums {
		if s.Transfers == 0 || s.Bytes <= 0 {
			t.Errorf("empty summary %+v", s)
		}
	}
}

func TestWriteChromeProducesValidJSON(t *testing.T) {
	col, sys := record(t)
	var buf bytes.Buffer
	if err := col.WriteChrome(&buf, sys); err != nil {
		t.Fatal(err)
	}
	var doc map[string]any
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	events, ok := doc["traceEvents"].([]any)
	if !ok || len(events) == 0 {
		t.Fatal("traceEvents missing")
	}
	s := buf.String()
	for _, want := range []string{`"ph":"X"`, `"ph":"M"`, "ReduceScatter", "AllGather", "a100-4node"} {
		if !strings.Contains(s, want) {
			t.Errorf("trace missing %q", want)
		}
	}
}

func TestEmptyCollector(t *testing.T) {
	col := &Collector{}
	if got := col.Summarize(); len(got) != 0 {
		t.Errorf("Summarize on empty = %v", got)
	}
	var buf bytes.Buffer
	if err := col.WriteChrome(&buf, topology.A100System(2)); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "traceEvents") {
		t.Error("empty trace missing envelope")
	}
}
