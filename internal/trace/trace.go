// Package trace converts the network emulator's transfer events into the
// Chrome trace-event JSON format (chrome://tracing, Perfetto), so that a
// reduction program's execution can be inspected visually: one track per
// device, one duration slice per transfer, annotated with the collective,
// step, group and byte volume.
package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"p2/internal/netsim"
	"p2/internal/topology"
)

// Collector accumulates emulator events; attach Collector.Record to
// netsim.Simulator.Recorder.
type Collector struct {
	Events []netsim.Event
}

// Record appends an event (the netsim.Recorder signature).
func (c *Collector) Record(ev netsim.Event) { c.Events = append(c.Events, ev) }

// chromeEvent is one entry of the Chrome trace-event format.
type chromeEvent struct {
	Name     string            `json:"name"`
	Cat      string            `json:"cat"`
	Phase    string            `json:"ph"`
	TsMicros float64           `json:"ts"`
	DurUS    float64           `json:"dur"`
	PID      int               `json:"pid"`
	TID      int               `json:"tid"`
	Args     map[string]string `json:"args,omitempty"`
}

type chromeMeta struct {
	Name  string         `json:"name"`
	Phase string         `json:"ph"`
	PID   int            `json:"pid"`
	TID   int            `json:"tid,omitempty"`
	Args  map[string]any `json:"args"`
}

// WriteChrome renders the collected events as a Chrome trace. Devices
// become threads of a single process named after the system; transfers are
// duration events on the *source* device's track.
func (c *Collector) WriteChrome(w io.Writer, sys *topology.System) error {
	events := append([]netsim.Event(nil), c.Events...)
	sort.SliceStable(events, func(i, j int) bool { return events[i].Start < events[j].Start })

	var out []any
	out = append(out, chromeMeta{
		Name:  "process_name",
		Phase: "M",
		PID:   1,
		Args:  map[string]any{"name": sys.Name},
	})
	seen := map[int]bool{}
	for _, ev := range events {
		for _, dev := range []int{ev.Src, ev.Dst} {
			if !seen[dev] {
				seen[dev] = true
				out = append(out, chromeMeta{
					Name:  "thread_name",
					Phase: "M",
					PID:   1,
					TID:   dev + 1,
					Args:  map[string]any{"name": "dev " + sys.DeviceName(dev)},
				})
			}
		}
	}
	for _, ev := range events {
		out = append(out, chromeEvent{
			Name:     fmt.Sprintf("%v %s→%s", ev.Op, sys.DeviceName(ev.Src), sys.DeviceName(ev.Dst)),
			Cat:      "transfer",
			Phase:    "X",
			TsMicros: ev.Start * 1e6,
			DurUS:    (ev.End - ev.Start) * 1e6,
			PID:      1,
			TID:      ev.Src + 1,
			Args: map[string]string{
				"step":  fmt.Sprintf("%d", ev.Step),
				"group": fmt.Sprintf("%d", ev.Group),
				"bytes": fmt.Sprintf("%.0f", ev.Bytes),
			},
		})
	}
	enc := json.NewEncoder(w)
	return enc.Encode(map[string]any{"traceEvents": out})
}

// Summary aggregates the collected events per (step, op): transfer count,
// total bytes, and the step's busy interval. Rows are ordered by step.
type Summary struct {
	Step      int
	Op        string
	Transfers int
	Bytes     float64
	Start     float64
	End       float64
}

// Summarize builds per-step summaries from the collected events.
func (c *Collector) Summarize() []Summary {
	byStep := map[int]*Summary{}
	var steps []int
	for _, ev := range c.Events {
		s, ok := byStep[ev.Step]
		if !ok {
			s = &Summary{Step: ev.Step, Op: ev.Op.String(), Start: ev.Start, End: ev.End}
			byStep[ev.Step] = s
			steps = append(steps, ev.Step)
		}
		s.Transfers++
		s.Bytes += ev.Bytes
		if ev.Start < s.Start {
			s.Start = ev.Start
		}
		if ev.End > s.End {
			s.End = ev.End
		}
	}
	sort.Ints(steps)
	out := make([]Summary, 0, len(steps))
	for _, st := range steps {
		out = append(out, *byStep[st])
	}
	return out
}
