package netsim

import (
	"sync"
	"testing"

	"p2/internal/cost"
	"p2/internal/hierarchy"
	"p2/internal/lower"
	"p2/internal/placement"
	"p2/internal/synth"
	"p2/internal/topology"
)

// raceFixture builds a shared system and a few lowered programs for the
// concurrency tests.
func raceFixture(t *testing.T) (*topology.System, []*lower.Program) {
	t.Helper()
	sys := topology.A100System(2)
	m, err := placement.NewMatrix([]int{2, 16}, []int{4, 8}, [][]int{{2, 2}, {1, 8}})
	if err != nil {
		t.Fatal(err)
	}
	h, err := hierarchy.Build(hierarchy.KindReductionAxes, m, []int{0}, hierarchy.Options{})
	if err != nil {
		t.Fatal(err)
	}
	res := synth.Synthesize(h, synth.Options{MaxSize: 3})
	if len(res.Programs) < 2 {
		t.Fatalf("want >= 2 programs, got %d", len(res.Programs))
	}
	var progs []*lower.Program
	for _, p := range res.Programs[:2] {
		lp, err := lower.Lower(p, h)
		if err != nil {
			t.Fatal(err)
		}
		progs = append(progs, lp)
	}
	return sys, progs
}

// TestMeasureSharedSystemRace runs many emulations concurrently against
// one shared *topology.System — both through per-goroutine Simulators and
// through one Simulator shared across goroutines (Measure must not mutate
// its receiver). Run with -race; it also checks determinism of the
// results under contention.
func TestMeasureSharedSystemRace(t *testing.T) {
	sys, progs := raceFixture(t)
	shared := &Simulator{Sys: sys, Algo: cost.Ring, Bytes: cost.PayloadBytes(2)}
	want := shared.Measure(progs[0])

	var wg sync.WaitGroup
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			own := &Simulator{Sys: sys, Algo: cost.Ring, Bytes: cost.PayloadBytes(2)}
			for i := 0; i < 5; i++ {
				if got := own.Measure(progs[0]); got != want {
					t.Errorf("goroutine %d own simulator: %v, want %v", g, got, want)
					return
				}
				if got := shared.Measure(progs[0]); got != want {
					t.Errorf("goroutine %d shared simulator: %v, want %v", g, got, want)
					return
				}
			}
		}(g)
	}
	wg.Wait()
}

// TestMeasureConcurrentSpecsRace exercises the multi-lane emulator from
// many goroutines sharing one System.
func TestMeasureConcurrentSpecsRace(t *testing.T) {
	sys, progs := raceFixture(t)
	specs := []ConcurrentSpec{
		{Program: progs[0], Bytes: 1 << 28},
		{Program: progs[1], Bytes: 1 << 26},
	}
	ref := (&Simulator{Sys: sys, Algo: cost.Ring, Bytes: cost.PayloadBytes(2)}).MeasureConcurrentSpecs(specs)

	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			sim := &Simulator{Sys: sys, Algo: cost.Ring, Bytes: cost.PayloadBytes(2)}
			for i := 0; i < 3; i++ {
				got := sim.MeasureConcurrentSpecs(specs)
				for li := range got {
					if got[li] != ref[li] {
						t.Errorf("goroutine %d lane %d: %v, want %v", g, li, got[li], ref[li])
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
}
