package netsim

import (
	"math"
	"testing"

	"p2/internal/cost"
	"p2/internal/synth"
	"p2/internal/topology"
)

// TestConcurrentSpecDefaultsMatchMeasureSteps locks the byte-for-byte
// agreement between the multi-lane and single-program emulators: a lone
// spec that inherits every default (payload, algorithm, per-step
// assignment) must produce the exact float MeasureSteps produces, for
// every way of spelling the same assignment.
func TestConcurrentSpecDefaultsMatchMeasureSteps(t *testing.T) {
	lp := lowerFor(t, []int{4, 16}, []int{4, 16}, [][]int{{2, 2}, {2, 8}}, []int{0},
		synth.BaselineAllReduce())
	sim := &Simulator{Sys: topology.A100System(4), Algo: cost.Ring, Bytes: cost.PayloadBytes(4),
		Opts: Options{DisableNoise: true}}
	uniform := make([]cost.Algorithm, len(lp.Steps))
	for i := range uniform {
		uniform[i] = cost.Ring
	}
	want := sim.MeasureSteps(lp, nil)
	specs := map[string]ConcurrentSpec{
		"zero value":        {Program: lp},
		"explicit payload":  {Program: lp, Bytes: sim.Bytes},
		"explicit algo":     {Program: lp, Algo: cost.Ring, HasAlgo: true},
		"uniform stepAlgos": {Program: lp, StepAlgos: uniform},
	}
	for name, spec := range specs {
		if got := sim.MeasureConcurrentSpecs([]ConcurrentSpec{spec})[0]; got != want {
			t.Errorf("%s: MeasureConcurrentSpecs = %v, MeasureSteps = %v (must be bitwise equal)",
				name, got, want)
		}
	}
}

// TestMeasureDownLinkStalls: a transfer whose path crosses a down link can
// never finish — the emulator must report +Inf rather than spin or panic,
// in both the single-program and the multi-lane runner.
func TestMeasureDownLinkStalls(t *testing.T) {
	lp := lowerFor(t, []int{4, 16}, []int{4, 16}, [][]int{{2, 2}, {2, 8}}, []int{0},
		synth.BaselineAllReduce())
	down := topology.A100System(4).MustWithOverrides(topology.Down(0, 2))
	sim := &Simulator{Sys: down, Algo: cost.Ring, Bytes: cost.PayloadBytes(4),
		Opts: Options{DisableNoise: true}}
	if got := sim.Measure(lp); !math.IsInf(got, 1) {
		t.Errorf("Measure over a down NIC = %v, want +Inf", got)
	}
	got := sim.MeasureConcurrentSpecs([]ConcurrentSpec{{Program: lp}, {Program: lp}})
	for i, v := range got {
		if !math.IsInf(v, 1) {
			t.Errorf("concurrent lane %d over a down NIC = %v, want +Inf", i, v)
		}
	}
}

// TestMeasureThrottledLinkSlowsDown: degrading one NIC must strictly slow a
// cross-node reduction (the ring serializes through the slow hop), and the
// pristine system must be untouched by measuring on the degraded copy.
func TestMeasureThrottledLinkSlowsDown(t *testing.T) {
	lp := lowerFor(t, []int{4, 16}, []int{4, 16}, [][]int{{2, 2}, {2, 8}}, []int{0},
		synth.BaselineAllReduce())
	pristine := topology.A100System(4)
	sim := &Simulator{Sys: pristine, Algo: cost.Ring, Bytes: cost.PayloadBytes(4),
		Opts: Options{DisableNoise: true}}
	base := sim.Measure(lp)
	slow := &Simulator{Sys: pristine.MustWithOverrides(topology.Throttle(0, 1, 10)),
		Algo: cost.Ring, Bytes: cost.PayloadBytes(4), Opts: Options{DisableNoise: true}}
	degraded := slow.Measure(lp)
	if !(degraded > base) {
		t.Errorf("throttled NIC: measured %v, pristine %v — expected a slowdown", degraded, base)
	}
	if again := sim.Measure(lp); again != base {
		t.Errorf("pristine measurement changed after degraded run: %v vs %v", again, base)
	}
}
