// Package netsim is an event-level network emulator used as the testbed
// substitute for the paper's GCP GPU measurements (see DESIGN.md). It
// executes lowered reduction programs on a topology model at
// transfer granularity with:
//
//   - per-link fair bandwidth sharing (all transfers crossing a link split
//     its bandwidth equally, so a node's single NIC is a real point of
//     contention),
//   - the ring/tree/halving-doubling schedules of NCCL, executed round by
//     round (halving-doubling on non-power-of-two groups runs the
//     2-proc-residual variant: a fold pre-round into power-of-two
//     partners, the recursive-halving/doubling core, an unfold
//     post-round),
//   - per-step launch overhead and per-round link latency,
//   - V100 cross-PCIe-domain throttling (the effect the paper's analytic
//     model deliberately ignores, Fig. 9b),
//   - deterministic multiplicative noise seeded from the program
//     fingerprint (standing in for network jitter), and
//   - an XLA-like peephole that fuses consecutive AllReduce steps (the
//     paper observes XLA doing exactly this to 2-step AllReduce programs).
//
// Because the emulator models effects the analytic model (internal/cost)
// does not, predictions and "measurements" disagree in the same ways the
// paper reports: mostly small gaps, larger on V100, and occasional
// prediction misses on fused programs.
package netsim

import (
	"context"
	"fmt"
	"math"
	"sort"

	"p2/internal/collective"
	"p2/internal/cost"
	"p2/internal/lower"
	"p2/internal/topology"
)

// Options tune emulator fidelity; the zero value gives the defaults used
// by the experiment harness.
type Options struct {
	// Seed perturbs the deterministic noise stream.
	Seed uint64
	// NoiseFrac is the maximum multiplicative payload jitter (default
	// 0.04, i.e. transfers are up to 4% slower than nominal). A literal
	// zero means "use the default"; turn jitter off with DisableNoise.
	NoiseFrac float64
	// LaunchOverhead is the fixed per-step cost in seconds (kernel launch
	// + NCCL setup; default 30 µs). A literal zero means "use the
	// default"; an explicit zero overhead is expressed with
	// DisableLaunchOverhead.
	LaunchOverhead float64
	// DisableFusion turns off the consecutive-AllReduce fusion peephole.
	DisableFusion bool
	// DisableCrossDomain turns off V100 PCIe-domain throttling.
	DisableCrossDomain bool
	// DisableNoise turns off jitter (useful for exact-value tests).
	DisableNoise bool
	// DisableLaunchOverhead forces a zero per-step cost, overriding
	// LaunchOverhead — the overhead analogue of DisableNoise (useful for
	// cross-checks against the analytic model, which has no launch term).
	DisableLaunchOverhead bool
}

const (
	defaultNoiseFrac      = 0.04
	defaultLaunchOverhead = 30e-6
)

// effective resolves the option defaults: zero NoiseFrac / LaunchOverhead
// mean "default", with DisableNoise / DisableLaunchOverhead as the
// explicit-zero sentinels.
func (o Options) effective() Options {
	//p2:nan-ok exact zero is the documented default sentinel; DisableNoise carries explicit zero
	if o.NoiseFrac == 0 {
		o.NoiseFrac = defaultNoiseFrac
	}
	//p2:nan-ok exact zero is the documented default sentinel; DisableLaunchOverhead carries explicit zero
	if o.LaunchOverhead == 0 {
		o.LaunchOverhead = defaultLaunchOverhead
	}
	if o.DisableLaunchOverhead {
		o.LaunchOverhead = 0
	}
	return o
}

// Event describes one completed transfer, for tracing/visualization.
type Event struct {
	// Step is the lowered-step index (after fusion).
	Step int
	// Group is the device-group index within the step.
	Group int
	// Op is the collective the transfer belongs to.
	Op collective.Op
	// Src and Dst are physical device ids.
	Src, Dst int
	// Bytes is the transferred volume (including jitter).
	Bytes float64
	// Start and End are simulation timestamps in seconds.
	Start, End float64
}

// Simulator measures lowered programs on one system/algorithm/payload.
type Simulator struct {
	// Sys is the topology the transfers contend on.
	Sys *topology.System
	// Algo is the algorithm every step runs unless a per-step assignment
	// (MeasureSteps) overrides it.
	Algo cost.Algorithm
	// Bytes is the per-device payload in bytes.
	Bytes float64
	// Opts tunes emulator fidelity (zero value = defaults).
	Opts Options
	// Recorder, when non-nil, receives every completed transfer. It is
	// called in completion order with monotonically non-decreasing End
	// timestamps.
	Recorder func(Event)
	// Ctx, when non-nil, makes measurement cooperative: the event loops
	// poll it every few dozen iterations and a cancelled measurement
	// returns +Inf (the same "never completes" sentinel a stalled down
	// link produces) instead of running to completion. Callers that can
	// be cancelled must check Ctx.Err() and discard the value — a
	// cancelled measurement is not the transfer time of anything. Nil
	// (the zero value) measures to completion exactly as before.
	Ctx context.Context
}

// cancelled reports whether the simulator's context, if any, is done.
func (s *Simulator) cancelled() bool {
	return s.Ctx != nil && s.Ctx.Err() != nil
}

// Measure returns the emulated end-to-end runtime in seconds.
func (s *Simulator) Measure(p *lower.Program) float64 {
	return s.MeasureSteps(p, nil)
}

// MeasureSteps is Measure under a per-step algorithm assignment (one entry
// per step of p, as produced by the planner's multi-algorithm search); nil
// runs every step with the simulator's Algo. A uniform assignment is
// canonicalized to the fixed algorithm it names, so an all-Ring auto
// choice measures byte-identically to a fixed-Ring run. Steps assigned
// different algorithms are never fused.
func (s *Simulator) MeasureSteps(p *lower.Program, stepAlgos []cost.Algorithm) float64 {
	if p.NumDevices != s.Sys.NumDevices() {
		panic(fmt.Sprintf("netsim: program has %d devices, system %d",
			p.NumDevices, s.Sys.NumDevices()))
	}
	if stepAlgos != nil && len(stepAlgos) != len(p.Steps) {
		panic(fmt.Sprintf("netsim: %d step algorithms for %d steps",
			len(stepAlgos), len(p.Steps)))
	}
	algo := s.Algo
	if a, ok := cost.UniformAlgo(stepAlgos); ok {
		algo, stepAlgos = a, nil
	}
	opts := s.Opts.effective()
	steps := p.Steps
	if !opts.DisableFusion {
		steps, stepAlgos = fuseStepsAlgos(steps, stepAlgos)
	}
	noise := newNoise(opts.Seed ^
		fingerprintAlgos(fingerprint(s.Sys.Name, int(algo), p.Key()), stepAlgos))
	total := 0.0
	for si, st := range steps {
		if s.cancelled() {
			return math.Inf(1)
		}
		stepAlgo := algo
		if stepAlgos != nil {
			stepAlgo = stepAlgos[si]
		}
		total += opts.LaunchOverhead
		total += s.runStep(st, stepAlgo, si, total, noise, opts)
	}
	return total
}

// resource is a contended link: an uplink (level >= 0) or a V100
// cross-domain path (level == domainLevel).
type resource struct {
	bandwidth float64
	active    int
}

const domainLevel = -1

type resKey struct {
	level  int
	entity int
}

// transferSpec is one point-to-point copy within a round.
type transferSpec struct {
	src, dst int
	bytes    float64
}

// transfer is a live transfer.
type transfer struct {
	remaining float64
	paths     []int // resource indices
	group     int
	rate      float64
	// stalled marks a transfer whose path crosses a down link (a
	// LinkOverride with bandwidth scale 0): it never completes, never
	// occupies bandwidth on the healthy links of its path, and its group —
	// hence the step — never finishes, making the measured time +Inf.
	stalled bool
	// trace metadata (only used when a Recorder is attached)
	src, dst int
	bytes    float64
	started  float64
}

// groupRun tracks one group's progress through its rounds.
type groupRun struct {
	rounds   [][]transferSpec
	next     int     // next round index
	inflight int     // live transfers of the current round
	latency  float64 // per-round latency for this group
	startAt  float64 // time the next round may start
	done     bool
}

func (s *Simulator) runStep(st lower.Step, algo cost.Algorithm, stepIdx int, base float64, noise *noiseStream, opts Options) float64 {
	resIdx := map[resKey]int{}
	var resources []resource
	getRes := func(k resKey, bw float64) int {
		if i, ok := resIdx[k]; ok {
			return i
		}
		resources = append(resources, resource{bandwidth: bw})
		resIdx[k] = len(resources) - 1
		return len(resources) - 1
	}

	perDevice := st.FracIn() * s.Bytes
	groups := make([]*groupRun, len(st.Groups))
	live := 0
	for gi, g := range st.Groups {
		rounds := scheduleRounds(s.Sys, st.Op, g, perDevice, algo)
		lat := 0.0
		for _, rd := range rounds {
			for _, tr := range rd {
				if l := s.pathLatency(tr.src, tr.dst); l > lat {
					lat = l
				}
			}
		}
		groups[gi] = &groupRun{rounds: rounds, latency: lat}
		live++
	}

	var active []*transfer
	stalled := 0
	now := 0.0

	pathOf := func(a, b int) []int {
		ldiv := s.Sys.DivergenceLevel(a, b)
		if ldiv < 0 {
			return nil
		}
		var out []int
		for l := ldiv; l < s.Sys.NumLevels(); l++ {
			ea := s.Sys.EntityID(a, l)
			eb := s.Sys.EntityID(b, l)
			out = append(out,
				getRes(resKey{l, ea}, s.Sys.LinkBandwidth(l, ea)),
				getRes(resKey{l, eb}, s.Sys.LinkBandwidth(l, eb)))
		}
		if cd := s.Sys.CrossDomain; cd != nil && !opts.DisableCrossDomain && ldiv == s.Sys.NumLevels()-1 {
			// Same node, leaf-level divergence: check PCIe domains.
			leaf := s.Sys.Levels[len(s.Sys.Levels)-1].Count
			per := leaf / cd.DomainsPerNode
			ca := s.Sys.Coords(a)
			cb := s.Sys.Coords(b)
			if ca[len(ca)-1]/per != cb[len(cb)-1]/per {
				node := s.Sys.EntityID(a, s.Sys.NumLevels()-2)
				out = append(out, getRes(resKey{domainLevel, node}, cd.Bandwidth))
			}
		}
		return out
	}

	startRound := func(gi int) {
		g := groups[gi]
		round := g.rounds[g.next]
		g.next++
		for ti, spec := range round {
			b := spec.bytes
			if !opts.DisableNoise {
				b *= 1 + opts.NoiseFrac*noise.next(stepIdx, gi, g.next, ti)
			}
			tr := &transfer{
				remaining: b,
				paths:     pathOf(spec.src, spec.dst),
				group:     gi,
				src:       spec.src,
				dst:       spec.dst,
				bytes:     b,
				started:   now,
			}
			for _, ri := range tr.paths {
				//p2:nan-ok link rates are validated finite by (*System).init; exact 0 is the down-link sentinel
				if resources[ri].bandwidth == 0 {
					tr.stalled = true
				}
			}
			if tr.stalled {
				stalled++
			} else {
				for _, ri := range tr.paths {
					resources[ri].active++
				}
			}
			active = append(active, tr)
			g.inflight++
		}
	}

	for gi := range groups {
		startRound(gi)
	}

	for iter := 0; live > 0; iter++ {
		// Cancellation poll, amortized over 64 event-loop iterations: a
		// cancelled measurement returns the +Inf never-completes sentinel
		// (callers observing Ctx.Err() discard the value).
		if iter&63 == 0 && s.cancelled() {
			return math.Inf(1)
		}
		// Assign equal-share rates. Stalled transfers hold rate 0 and do
		// not count toward any link's active share (they move no bytes).
		for _, tr := range active {
			if tr.stalled {
				tr.rate = 0
				continue
			}
			rate := math.Inf(1)
			for _, ri := range tr.paths {
				r := resources[ri].bandwidth / float64(resources[ri].active)
				if r < rate {
					rate = r
				}
			}
			tr.rate = rate
		}
		// Time of next completion or pending round start. Non-stalled
		// transfers always have rate > 0: base bandwidths are validated
		// positive and a transfer counts toward its own links' shares.
		dt := math.Inf(1)
		for _, tr := range active {
			if tr.stalled {
				continue
			}
			if d := tr.remaining / tr.rate; d < dt {
				dt = d
			}
		}
		for _, g := range groups {
			if !g.done && g.inflight == 0 && g.next < len(g.rounds) {
				if d := g.startAt - now; d < dt {
					dt = d
				}
			}
		}
		if math.IsInf(dt, 1) {
			if stalled > 0 {
				// All remaining progress is behind a down link: the step
				// never completes.
				return math.Inf(1)
			}
			panic("netsim: deadlock with no progress")
		}
		if dt < 0 {
			dt = 0
		}
		now += dt
		// Drain and retire completed transfers.
		const eps = 1e-9
		kept := active[:0]
		for _, tr := range active {
			tr.remaining -= tr.rate * dt
			if tr.remaining <= eps*tr.rate+1e-12 {
				if s.Recorder != nil {
					s.Recorder(Event{
						Step:  stepIdx,
						Group: tr.group,
						Op:    st.Op,
						Src:   tr.src,
						Dst:   tr.dst,
						Bytes: tr.bytes,
						Start: base + tr.started,
						End:   base + now,
					})
				}
				for _, ri := range tr.paths {
					resources[ri].active--
				}
				g := groups[tr.group]
				g.inflight--
				if g.inflight == 0 {
					if g.next >= len(g.rounds) {
						g.done = true
						live--
					} else {
						g.startAt = now + g.latency
					}
				}
			} else {
				kept = append(kept, tr)
			}
		}
		active = kept
		// Launch any rounds whose start time has arrived.
		for gi, g := range groups {
			if !g.done && g.inflight == 0 && g.next < len(g.rounds) && g.startAt <= now+1e-15 {
				startRound(gi)
			}
		}
	}
	return now
}

func (s *Simulator) pathLatency(a, b int) float64 {
	ldiv := s.Sys.DivergenceLevel(a, b)
	if ldiv < 0 {
		return 0
	}
	lat := 0.0
	for l := ldiv; l < s.Sys.NumLevels(); l++ {
		if la := s.Sys.LinkLatency(l, s.Sys.EntityID(a, l)); la > lat {
			lat = la
		}
		if lb := s.Sys.LinkLatency(l, s.Sys.EntityID(b, l)); lb > lat {
			lat = lb
		}
	}
	if cd := s.Sys.CrossDomain; cd != nil && cd.Latency > lat {
		lat = cd.Latency
	}
	return lat
}

// scheduleRounds expands a collective over one group into rounds of
// concurrent transfers.
func scheduleRounds(sys *topology.System, op collective.Op, g []int, perDevice float64, algo cost.Algorithm) [][]transferSpec {
	n := len(g)
	ringRounds := func(cnt int, bytes float64) [][]transferSpec {
		rounds := make([][]transferSpec, cnt)
		for r := range rounds {
			round := make([]transferSpec, n)
			for i := range g {
				round[i] = transferSpec{src: g[i], dst: g[(i+1)%n], bytes: bytes}
			}
			rounds[r] = round
		}
		return rounds
	}
	chainRound := func(bytes float64, reverse bool) [][]transferSpec {
		// Pipelined chain: all hops busy concurrently ≈ one round.
		round := make([]transferSpec, 0, n-1)
		for i := 1; i < n; i++ {
			if reverse {
				round = append(round, transferSpec{src: g[i], dst: g[i-1], bytes: bytes})
			} else {
				round = append(round, transferSpec{src: g[i-1], dst: g[i], bytes: bytes})
			}
		}
		return [][]transferSpec{round}
	}
	treeRound := func(bytes float64, up bool) []transferSpec {
		round := make([]transferSpec, 0, n-1)
		for _, pair := range cost.TreeLinks(sys, g) {
			if up {
				round = append(round, transferSpec{src: pair[1], dst: pair[0], bytes: bytes})
			} else {
				round = append(round, transferSpec{src: pair[0], dst: pair[1], bytes: bytes})
			}
		}
		return round
	}
	hdRounds := func() [][]transferSpec {
		// Recursive halving then recursive doubling with NCCL's
		// 2-proc-residual pre/post rounds for non-power-of-two groups:
		// with p = 2^⌊log2 n⌋, each residual member p+k first folds its
		// full vector into core partner k, the p core members run the
		// standard schedule — in round r of the halving phase, core index
		// i exchanges D/2^(r+1) with i XOR 2^r, the doubling phase
		// mirroring it — and a post-round returns the full result from
		// partner k to p+k. For power-of-two groups the pre/post rounds
		// are empty and the schedule is the pure core.
		p := 1
		for p*2 <= n {
			p *= 2
		}
		var out [][]transferSpec
		if p < n {
			pre := make([]transferSpec, 0, n-p)
			for k := p; k < n; k++ {
				pre = append(pre, transferSpec{src: g[k], dst: g[k-p], bytes: perDevice})
			}
			out = append(out, pre)
		}
		var halving [][]transferSpec
		for r := 0; 1<<r < p; r++ {
			bytes := perDevice / float64(int(2)<<r)
			round := make([]transferSpec, 0, p)
			for i := 0; i < p; i++ {
				round = append(round, transferSpec{src: g[i], dst: g[i^(1<<r)], bytes: bytes})
			}
			halving = append(halving, round)
		}
		out = append(out, halving...)
		for i := len(halving) - 1; i >= 0; i-- {
			out = append(out, halving[i])
		}
		if p < n {
			post := make([]transferSpec, 0, n-p)
			for k := p; k < n; k++ {
				post = append(post, transferSpec{src: g[k-p], dst: g[k], bytes: perDevice})
			}
			out = append(out, post)
		}
		return out
	}
	switch op {
	case collective.AllReduce:
		if algo == cost.Tree {
			return [][]transferSpec{treeRound(perDevice, true), treeRound(perDevice, false)}
		}
		if algo == cost.HalvingDoubling {
			return hdRounds()
		}
		return ringRounds(2*(n-1), perDevice/float64(n))
	case collective.ReduceScatter:
		return ringRounds(n-1, perDevice/float64(n))
	case collective.AllGather:
		return ringRounds(n-1, perDevice)
	case collective.Reduce:
		if algo != cost.Ring {
			return [][]transferSpec{treeRound(perDevice, true)}
		}
		return chainRound(perDevice, true)
	case collective.Broadcast:
		if algo != cost.Ring {
			return [][]transferSpec{treeRound(perDevice, false)}
		}
		return chainRound(perDevice, false)
	default:
		panic(fmt.Sprintf("netsim: unknown op %v", op))
	}
}

// FuseAllReduces applies the XLA peephole: consecutive AllReduce steps are
// merged into a single AllReduce over the connected components of their
// groups. The resulting step reduces exactly the same data (AllReduce
// composition is associative over components), so this is semantics
// preserving; it is exposed for tests and ablations.
func FuseAllReduces(steps []lower.Step) []lower.Step {
	out, _ := fuseStepsAlgos(steps, nil)
	return out
}

// fuseStepsAlgos is FuseAllReduces carrying an optional per-step algorithm
// assignment alongside: steps assigned different algorithms would not be
// fused by XLA into one collective, so they only merge when their
// algorithms agree, and the fused step inherits the shared algorithm.
func fuseStepsAlgos(steps []lower.Step, algos []cost.Algorithm) ([]lower.Step, []cost.Algorithm) {
	out := make([]lower.Step, 0, len(steps))
	var outAlgos []cost.Algorithm
	if algos != nil {
		outAlgos = make([]cost.Algorithm, 0, len(algos))
	}
	for i, st := range steps {
		if len(out) > 0 && st.Op == collective.AllReduce && out[len(out)-1].Op == collective.AllReduce &&
			(algos == nil || algos[i] == outAlgos[len(outAlgos)-1]) {
			prev := out[len(out)-1]
			merged := mergeGroups(prev.Groups, st.Groups)
			if merged != nil {
				prev.Groups = merged
				prev.RowsOut = st.RowsOut
				out[len(out)-1] = prev
				continue
			}
		}
		out = append(out, st)
		if algos != nil {
			outAlgos = append(outAlgos, algos[i])
		}
	}
	return out, outAlgos
}

// mergeGroups unions two partitions into connected components. It returns
// nil when the components would be ragged (different sizes), in which case
// fusion is skipped.
func mergeGroups(a, b [][]int) [][]int {
	parent := map[int]int{}
	var find func(x int) int
	find = func(x int) int {
		p, ok := parent[x]
		if !ok {
			parent[x] = x
			return x
		}
		if p != x {
			parent[x] = find(p)
		}
		return parent[x]
	}
	union := func(x, y int) {
		parent[find(x)] = find(y)
	}
	for _, gs := range [][][]int{a, b} {
		for _, g := range gs {
			for _, d := range g[1:] {
				union(g[0], d)
			}
		}
	}
	comps := map[int][]int{}
	var roots []int
	//p2:order-independent components and their members are fully sorted before return; the ragged-size nil outcome is order-invariant
	for x := range parent {
		r := find(x)
		if _, ok := comps[r]; !ok {
			roots = append(roots, r)
		}
		comps[r] = append(comps[r], x)
	}
	var out [][]int
	size := -1
	for _, r := range roots {
		c := comps[r]
		sort.Ints(c)
		if size < 0 {
			size = len(c)
		} else if len(c) != size {
			return nil
		}
		out = append(out, c)
	}
	sort.Slice(out, func(i, j int) bool { return out[i][0] < out[j][0] })
	return out
}

// noiseStream yields deterministic pseudo-random values in [0, 1).
type noiseStream struct {
	state uint64
}

func newNoise(seed uint64) *noiseStream {
	return &noiseStream{state: seed | 1}
}

func (n *noiseStream) next(vals ...int) float64 {
	x := n.state
	for _, v := range vals {
		x ^= uint64(v+0x9e37) * 0x9e3779b97f4a7c15
		x ^= x >> 29
		x *= 0xbf58476d1ce4e5b9
	}
	x ^= x >> 32
	n.state = n.state*6364136223846793005 + 1442695040888963407
	return float64(x%1_000_003) / 1_000_003
}

// fingerprintAlgos folds a per-step algorithm assignment into a noise
// fingerprint; a nil assignment leaves it unchanged, so fixed-algorithm
// runs keep their historical noise streams.
func fingerprintAlgos(h uint64, stepAlgos []cost.Algorithm) uint64 {
	for _, a := range stepAlgos {
		h = (h ^ uint64(int(a)+1)) * 1099511628211
	}
	return h
}

func fingerprint(name string, algo int, key string) uint64 {
	var h uint64 = 14695981039346656037
	mix := func(b byte) {
		h = (h ^ uint64(b)) * 1099511628211
	}
	for i := 0; i < len(name); i++ {
		mix(name[i])
	}
	mix(byte(algo))
	for i := 0; i < len(key); i++ {
		mix(key[i])
	}
	return h
}
