package netsim

import (
	"fmt"
	"math"

	"p2/internal/cost"
	"p2/internal/lower"
)

// ConcurrentSpec pairs a program with its own payload size and algorithm
// (zero values inherit the simulator's).
type ConcurrentSpec struct {
	// Program is the lowered program this lane executes.
	Program *lower.Program
	// Bytes is the per-device payload; <= 0 inherits the simulator's.
	Bytes float64
	// Algo is the lane's algorithm, honored only with HasAlgo set —
	// the explicit-set marker exists because the zero Algorithm value is
	// a valid algorithm (Ring), so a zero Algo alone cannot distinguish
	// "inherit" from "pin Ring".
	Algo    cost.Algorithm
	HasAlgo bool
	// StepAlgos, when non-nil, assigns a per-step algorithm (one entry
	// per step of Program), overriding Algo step by step; uniform
	// assignments are canonicalized to the fixed algorithm they name.
	StepAlgos []cost.Algorithm
}

// normalized resolves the spec's inherit-from-simulator defaults into
// explicit values: a non-positive payload becomes the simulator's Bytes, an
// unset algorithm the simulator's Algo, and a uniform per-step assignment
// collapses to the fixed algorithm it names. It is the single place spec
// defaulting happens, which is what guarantees MeasureConcurrentSpecs of a
// lone default spec agrees byte-for-byte with MeasureSteps of the same
// program.
func (c ConcurrentSpec) normalized(s *Simulator) ConcurrentSpec {
	if c.Bytes <= 0 {
		c.Bytes = s.Bytes
	}
	if !c.HasAlgo {
		c.Algo, c.HasAlgo = s.Algo, true
	}
	if c.StepAlgos != nil && len(c.StepAlgos) != len(c.Program.Steps) {
		panic(fmt.Sprintf("netsim: %d step algorithms for %d steps",
			len(c.StepAlgos), len(c.Program.Steps)))
	}
	if a, ok := cost.UniformAlgo(c.StepAlgos); ok {
		c.Algo, c.StepAlgos = a, nil
	}
	return c
}

// MeasureConcurrent emulates several lowered programs executing at the
// same time on the shared network — e.g. a tensor-parallel activation
// all-reduce overlapping a data-parallel gradient all-reduce, as happens
// when they run on different streams. Each program's steps remain
// sequential internally (steps are barriers within a program), but
// transfers of different programs contend for links concurrently.
//
// It returns the per-program completion times. MeasureConcurrent(p) with a
// single program is equivalent to Measure(p).
func (s *Simulator) MeasureConcurrent(programs []*lower.Program) []float64 {
	specs := make([]ConcurrentSpec, len(programs))
	for i, p := range programs {
		specs[i] = ConcurrentSpec{Program: p}
	}
	return s.MeasureConcurrentSpecs(specs)
}

// MeasureConcurrentSpecs is MeasureConcurrent with per-program payloads
// and algorithms.
func (s *Simulator) MeasureConcurrentSpecs(specs []ConcurrentSpec) []float64 {
	if len(specs) == 0 {
		return nil
	}
	if len(specs) == 1 {
		// A lone lane has nothing to contend with, and its noise stream is
		// seeded identically to the single-program runner's (the lane-index
		// perturbation is zero for lane 0) — delegating makes the documented
		// equivalence with MeasureSteps bitwise exact rather than merely
		// approximate (the two event loops group their time sums
		// differently, which costs an ULP).
		spec := specs[0].normalized(s)
		single := *s
		single.Bytes = spec.Bytes
		single.Algo = spec.Algo
		return []float64{single.MeasureSteps(spec.Program, spec.StepAlgos)}
	}
	opts := s.Opts.effective()

	type laneState struct {
		steps     []lower.Step
		stepAlgos []cost.Algorithm // per fused step; nil = algo throughout
		stepIdx   int
		groups    []*groupRun
		live      int // unfinished groups of the current step
		nextAt    float64
		done      bool
		finish    float64
		noise     *noiseStream
		bytes     float64
		algo      cost.Algorithm
	}

	resIdx := map[resKey]int{}
	var resources []resource
	getRes := func(k resKey, bw float64) int {
		if i, ok := resIdx[k]; ok {
			return i
		}
		resources = append(resources, resource{bandwidth: bw})
		resIdx[k] = len(resources) - 1
		return len(resources) - 1
	}
	pathOf := func(a, b int) []int {
		ldiv := s.Sys.DivergenceLevel(a, b)
		if ldiv < 0 {
			return nil
		}
		var out []int
		for l := ldiv; l < s.Sys.NumLevels(); l++ {
			ea := s.Sys.EntityID(a, l)
			eb := s.Sys.EntityID(b, l)
			out = append(out,
				getRes(resKey{l, ea}, s.Sys.LinkBandwidth(l, ea)),
				getRes(resKey{l, eb}, s.Sys.LinkBandwidth(l, eb)))
		}
		if cd := s.Sys.CrossDomain; cd != nil && !opts.DisableCrossDomain && ldiv == s.Sys.NumLevels()-1 {
			leaf := s.Sys.Levels[len(s.Sys.Levels)-1].Count
			per := leaf / cd.DomainsPerNode
			ca := s.Sys.Coords(a)
			cb := s.Sys.Coords(b)
			if ca[len(ca)-1]/per != cb[len(cb)-1]/per {
				node := s.Sys.EntityID(a, s.Sys.NumLevels()-2)
				out = append(out, getRes(resKey{domainLevel, node}, cd.Bandwidth))
			}
		}
		return out
	}

	lanes := make([]*laneState, len(specs))
	for li, spec := range specs {
		spec = spec.normalized(s)
		p := spec.Program
		if p.NumDevices != s.Sys.NumDevices() {
			panic(fmt.Sprintf("netsim: program has %d devices, system %d",
				p.NumDevices, s.Sys.NumDevices()))
		}
		bytes := spec.Bytes
		algo := spec.Algo
		stepAlgos := spec.StepAlgos
		steps := p.Steps
		if !opts.DisableFusion {
			steps, stepAlgos = fuseStepsAlgos(steps, stepAlgos)
		}
		lanes[li] = &laneState{
			steps:     steps,
			stepAlgos: stepAlgos,
			bytes:     bytes,
			algo:      algo,
			nextAt:    opts.LaunchOverhead,
			noise: newNoise(opts.Seed ^
				fingerprintAlgos(fingerprint(s.Sys.Name, int(algo), p.Key()), stepAlgos) ^
				uint64(li)*0x9e3779b97f4a7c15),
		}
	}

	type liveTransfer struct {
		*transfer
		lane int
	}
	var active []*liveTransfer
	now := 0.0
	unfinished := len(lanes)
	stalledTransfers := 0

	startStep := func(li int) {
		lane := lanes[li]
		st := lane.steps[lane.stepIdx]
		stepAlgo := lane.algo
		if lane.stepAlgos != nil {
			stepAlgo = lane.stepAlgos[lane.stepIdx]
		}
		perDevice := st.FracIn() * lane.bytes
		lane.groups = lane.groups[:0]
		lane.live = 0
		for gi, g := range st.Groups {
			rounds := scheduleRounds(s.Sys, st.Op, g, perDevice, stepAlgo)
			lat := 0.0
			for _, rd := range rounds {
				for _, tr := range rd {
					if l := s.pathLatency(tr.src, tr.dst); l > lat {
						lat = l
					}
				}
			}
			lane.groups = append(lane.groups, &groupRun{rounds: rounds, latency: lat, startAt: now})
			lane.live++
			_ = gi
		}
	}
	startRound := func(li, gi int) {
		lane := lanes[li]
		g := lane.groups[gi]
		round := g.rounds[g.next]
		g.next++
		for ti, spec := range round {
			b := spec.bytes
			if !opts.DisableNoise {
				b *= 1 + opts.NoiseFrac*lane.noise.next(lane.stepIdx, gi, g.next, ti)
			}
			tr := &transfer{
				remaining: b,
				paths:     pathOf(spec.src, spec.dst),
				group:     gi,
				src:       spec.src,
				dst:       spec.dst,
				bytes:     b,
				started:   now,
			}
			for _, ri := range tr.paths {
				//p2:nan-ok link rates are validated finite by (*System).init; exact 0 is the down-link sentinel
				if resources[ri].bandwidth == 0 {
					tr.stalled = true
				}
			}
			if tr.stalled {
				stalledTransfers++
			} else {
				for _, ri := range tr.paths {
					resources[ri].active++
				}
			}
			active = append(active, &liveTransfer{transfer: tr, lane: li})
			g.inflight++
		}
	}

	for iter := 0; unfinished > 0; iter++ {
		// Cancellation poll, amortized like runStep's: a cancelled
		// concurrent measurement marks every unfinished lane +Inf.
		if iter&63 == 0 && s.cancelled() {
			for _, lane := range lanes {
				if !lane.done {
					lane.finish = math.Inf(1)
				}
			}
			break
		}
		// Launch lane steps and group rounds whose time has come.
		for li, lane := range lanes {
			if lane.done {
				continue
			}
			if lane.groups == nil || lane.live == 0 {
				// Between steps: waiting out the launch overhead.
				if lane.nextAt <= now+1e-15 {
					startStep(li)
					for gi, g := range lane.groups {
						if g.inflight == 0 && g.next < len(g.rounds) && g.startAt <= now+1e-15 {
							startRound(li, gi)
						}
					}
				}
				continue
			}
			for gi, g := range lane.groups {
				if !g.done && g.inflight == 0 && g.next < len(g.rounds) && g.startAt <= now+1e-15 {
					startRound(li, gi)
				}
			}
		}
		// Rates. Stalled transfers (path crossing a down link) hold rate 0
		// and do not count toward any link's active share.
		for _, tr := range active {
			if tr.stalled {
				tr.rate = 0
				continue
			}
			rate := math.Inf(1)
			for _, ri := range tr.paths {
				r := resources[ri].bandwidth / float64(resources[ri].active)
				if r < rate {
					rate = r
				}
			}
			tr.rate = rate
		}
		// Next event time.
		dt := math.Inf(1)
		for _, tr := range active {
			if tr.stalled {
				continue
			}
			if d := tr.remaining / tr.rate; d < dt {
				dt = d
			}
		}
		for _, lane := range lanes {
			if lane.done {
				continue
			}
			if lane.groups == nil || lane.live == 0 {
				if d := lane.nextAt - now; d < dt {
					dt = d
				}
				continue
			}
			for _, g := range lane.groups {
				if !g.done && g.inflight == 0 && g.next < len(g.rounds) {
					if d := g.startAt - now; d < dt {
						dt = d
					}
				}
			}
		}
		if math.IsInf(dt, 1) {
			if stalledTransfers > 0 {
				// Every remaining lane is blocked behind a down link: those
				// lanes never finish.
				for _, lane := range lanes {
					if !lane.done {
						lane.finish = math.Inf(1)
					}
				}
				break
			}
			panic("netsim: concurrent deadlock with no progress")
		}
		if dt < 0 {
			dt = 0
		}
		now += dt
		// Retire completed transfers.
		kept := active[:0]
		for _, tr := range active {
			tr.remaining -= tr.rate * dt
			if tr.remaining <= 1e-9*tr.rate+1e-12 {
				for _, ri := range tr.paths {
					resources[ri].active--
				}
				lane := lanes[tr.lane]
				g := lane.groups[tr.group]
				g.inflight--
				if g.inflight == 0 {
					if g.next >= len(g.rounds) {
						g.done = true
						lane.live--
						if lane.live == 0 {
							lane.stepIdx++
							if lane.stepIdx >= len(lane.steps) {
								lane.done = true
								lane.finish = now
								unfinished--
							} else {
								lane.nextAt = now + opts.LaunchOverhead
							}
						}
					} else {
						g.startAt = now + g.latency
					}
				}
			} else {
				kept = append(kept, tr)
			}
		}
		active = kept
	}

	out := make([]float64, len(lanes))
	for li, lane := range lanes {
		out[li] = lane.finish
	}
	return out
}
