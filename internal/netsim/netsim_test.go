package netsim

import (
	"math"
	"reflect"
	"testing"

	"p2/internal/collective"
	"p2/internal/cost"
	"p2/internal/dsl"
	"p2/internal/hierarchy"
	"p2/internal/lower"
	"p2/internal/placement"
	"p2/internal/synth"
	"p2/internal/topology"
)

func lowerFor(t *testing.T, hier, axes []int, rows [][]int, red []int, p dsl.Program) *lower.Program {
	t.Helper()
	m, err := placement.NewMatrix(hier, axes, rows)
	if err != nil {
		t.Fatal(err)
	}
	h, err := hierarchy.Build(hierarchy.KindReductionAxes, m, red, hierarchy.Options{Collapse: true})
	if err != nil {
		t.Fatal(err)
	}
	lp, err := lower.Lower(p, h)
	if err != nil {
		t.Fatal(err)
	}
	return lp
}

func quietSim(sys *topology.System, algo cost.Algorithm, bytes float64) *Simulator {
	return &Simulator{Sys: sys, Algo: algo, Bytes: bytes,
		Opts: Options{DisableNoise: true, DisableLaunchOverhead: true}}
}

func TestMeasureMatchesAnalyticWithinNode(t *testing.T) {
	// With noise and overheads off, the emulator and the analytic model
	// should agree closely on an uncontended within-node AllReduce.
	lp := lowerFor(t, []int{4, 16}, []int{4, 16}, [][]int{{1, 4}, {4, 4}}, []int{0},
		synth.BaselineAllReduce())
	sys := topology.A100System(4)
	sim := quietSim(sys, cost.Ring, cost.PayloadBytes(4))
	model := &cost.Model{Sys: sys, Algo: cost.Ring, Bytes: cost.PayloadBytes(4)}
	got := sim.Measure(lp)
	want := model.ProgramTime(lp)
	if math.Abs(got-want)/want > 0.10 {
		t.Errorf("emulated %v vs analytic %v (>10%% apart)", got, want)
	}
}

func TestCrossNodeContention(t *testing.T) {
	// 16 cross-node groups share each node's NIC; the emulator must show
	// the same ~50 s magnitude the analytic model (and the paper) shows.
	lp := lowerFor(t, []int{4, 16}, []int{4, 16}, [][]int{{4, 1}, {1, 16}}, []int{0},
		synth.BaselineAllReduce())
	sys := topology.A100System(4)
	sim := quietSim(sys, cost.Ring, cost.PayloadBytes(4))
	got := sim.Measure(lp)
	if got < 30 || got > 90 {
		t.Errorf("cross-node AllReduce = %v s, want tens of seconds", got)
	}
}

func TestMeasureDeterministic(t *testing.T) {
	lp := lowerFor(t, []int{4, 16}, []int{4, 16}, [][]int{{2, 2}, {2, 8}}, []int{0},
		synth.BaselineAllReduce())
	sim := &Simulator{Sys: topology.A100System(4), Algo: cost.Ring, Bytes: cost.PayloadBytes(4)}
	a := sim.Measure(lp)
	b := sim.Measure(lp)
	if a != b {
		t.Errorf("nondeterministic measurement: %v vs %v", a, b)
	}
	if a <= 0 {
		t.Errorf("non-positive measurement %v", a)
	}
}

func TestNoiseIsBoundedAndSeedDependent(t *testing.T) {
	lp := lowerFor(t, []int{4, 16}, []int{4, 16}, [][]int{{2, 2}, {2, 8}}, []int{0},
		synth.BaselineAllReduce())
	sys := topology.A100System(4)
	quiet := quietSim(sys, cost.Ring, cost.PayloadBytes(4)).Measure(lp)
	noisy := (&Simulator{Sys: sys, Algo: cost.Ring, Bytes: cost.PayloadBytes(4),
		Opts: Options{LaunchOverhead: 1e-12}}).Measure(lp)
	if noisy < quiet {
		t.Errorf("noise made the run faster: %v < %v", noisy, quiet)
	}
	if noisy > quiet*1.10 {
		t.Errorf("noise exceeded its bound: %v vs %v", noisy, quiet)
	}
	other := (&Simulator{Sys: sys, Algo: cost.Ring, Bytes: cost.PayloadBytes(4),
		Opts: Options{Seed: 12345, LaunchOverhead: 1e-12}}).Measure(lp)
	if other == noisy {
		t.Error("different seeds produced identical measurements")
	}
}

func TestLaunchOverheadPerStep(t *testing.T) {
	one := lowerFor(t, []int{4, 16}, []int{4, 16}, [][]int{{1, 4}, {4, 4}}, []int{0},
		synth.BaselineAllReduce())
	three := lowerFor(t, []int{4, 16}, []int{4, 16}, [][]int{{1, 4}, {4, 4}}, []int{0},
		dsl.Program{
			{Slice: 0, Form: dsl.InsideGroup, Op: collective.ReduceScatter},
			{Slice: 0, Form: dsl.InsideGroup, Op: collective.AllGather},
		})
	sim := &Simulator{Sys: topology.A100System(4), Algo: cost.Ring, Bytes: 1,
		Opts: Options{DisableNoise: true, LaunchOverhead: 1.0}}
	t1 := sim.Measure(one)
	t2 := sim.Measure(three)
	if t1 < 1.0 || t1 > 1.1 {
		t.Errorf("one-step overhead = %v, want ≈ 1", t1)
	}
	if t2 < 2.0 || t2 > 2.1 {
		t.Errorf("two-step overhead = %v, want ≈ 2", t2)
	}
}

func TestFuseAllReduces(t *testing.T) {
	// Two consecutive AllReduces — pairs {0,1},{2,3} then {0,2},{1,3} —
	// fuse into one AllReduce over {0,1,2,3}.
	steps := []lower.Step{
		{Op: collective.AllReduce, Groups: [][]int{{0, 1}, {2, 3}}, Rows: 4, RowsOut: 4, K: 4},
		{Op: collective.AllReduce, Groups: [][]int{{0, 2}, {1, 3}}, Rows: 4, RowsOut: 4, K: 4},
	}
	fused := FuseAllReduces(steps)
	if len(fused) != 1 {
		t.Fatalf("fused into %d steps, want 1", len(fused))
	}
	if !reflect.DeepEqual(fused[0].Groups, [][]int{{0, 1, 2, 3}}) {
		t.Errorf("fused groups = %v", fused[0].Groups)
	}
}

func TestFuseKeepsDisjointComponents(t *testing.T) {
	steps := []lower.Step{
		{Op: collective.AllReduce, Groups: [][]int{{0, 1}, {4, 5}}, Rows: 4, RowsOut: 4, K: 4},
		{Op: collective.AllReduce, Groups: [][]int{{2, 3}, {6, 7}}, Rows: 4, RowsOut: 4, K: 4},
	}
	fused := FuseAllReduces(steps)
	if len(fused) != 1 {
		t.Fatalf("fused into %d steps, want 1", len(fused))
	}
	want := [][]int{{0, 1}, {2, 3}, {4, 5}, {6, 7}}
	if !reflect.DeepEqual(fused[0].Groups, want) {
		t.Errorf("fused groups = %v, want %v", fused[0].Groups, want)
	}
}

func TestFuseDoesNotTouchOtherOps(t *testing.T) {
	steps := []lower.Step{
		{Op: collective.ReduceScatter, Groups: [][]int{{0, 1}}, Rows: 4, RowsOut: 2, K: 4},
		{Op: collective.AllReduce, Groups: [][]int{{0, 2}}, Rows: 2, RowsOut: 2, K: 4},
		{Op: collective.AllGather, Groups: [][]int{{0, 1}}, Rows: 2, RowsOut: 4, K: 4},
	}
	fused := FuseAllReduces(steps)
	if len(fused) != 3 {
		t.Errorf("non-AllReduce steps were fused: %d", len(fused))
	}
}

func TestFusionMakesTwoStepAllReduceFast(t *testing.T) {
	// The paper's observation: a 2-step AllReduce program is measured as
	// fast as the 1-step program because XLA fuses it, while the analytic
	// model predicts it slower.
	rows := [][]int{{2, 2}, {2, 8}}
	twoStep := lowerFor(t, []int{4, 16}, []int{4, 16}, rows, []int{0}, dsl.Program{
		{Slice: 1, Form: dsl.InsideGroup, Op: collective.AllReduce},
		{Slice: 1, Form: dsl.Parallel, Arg: 0, Op: collective.AllReduce},
	})
	oneStep := lowerFor(t, []int{4, 16}, []int{4, 16}, rows, []int{0},
		synth.BaselineAllReduce())
	sys := topology.A100System(4)
	sim := quietSim(sys, cost.Ring, cost.PayloadBytes(4))
	tTwo := sim.Measure(twoStep)
	tOne := sim.Measure(oneStep)
	if math.Abs(tTwo-tOne)/tOne > 0.05 {
		t.Errorf("fused 2-step (%v) should match 1-step (%v)", tTwo, tOne)
	}
	noFuse := &Simulator{Sys: sys, Algo: cost.Ring, Bytes: cost.PayloadBytes(4),
		Opts: Options{DisableNoise: true, LaunchOverhead: 1e-12, DisableFusion: true}}
	if noFuse.Measure(twoStep) <= tOne*1.05 {
		t.Error("without fusion the 2-step program should be slower")
	}
}

func TestV100CrossDomainSlowdown(t *testing.T) {
	// A within-node AllReduce whose ring crosses PCIe domains must be
	// slower with cross-domain modelling than without — the effect that
	// costs the analytic model V100 accuracy (§5).
	lp := lowerFor(t, []int{4, 8}, []int{8, 4}, [][]int{{1, 8}, {4, 1}}, []int{0},
		synth.BaselineAllReduce())
	sys := topology.V100System(4)
	with := quietSim(sys, cost.Ring, cost.PayloadBytes(4))
	without := &Simulator{Sys: sys, Algo: cost.Ring, Bytes: cost.PayloadBytes(4),
		Opts: Options{DisableNoise: true, LaunchOverhead: 1e-12, DisableCrossDomain: true}}
	tw := with.Measure(lp)
	two := without.Measure(lp)
	if tw <= two {
		t.Errorf("cross-domain modelling did not slow the run: %v vs %v", tw, two)
	}
}

func TestRSARAGBeatsAllReduceCrossNode(t *testing.T) {
	// Result 5 on the emulator: the hierarchical program wins cross-node.
	rows := [][]int{{2, 2}, {2, 8}}
	baseline := lowerFor(t, []int{4, 16}, []int{4, 16}, rows, []int{0},
		synth.BaselineAllReduce())
	rsarag := lowerFor(t, []int{4, 16}, []int{4, 16}, rows, []int{0}, dsl.Program{
		{Slice: 1, Form: dsl.InsideGroup, Op: collective.ReduceScatter},
		{Slice: 1, Form: dsl.Parallel, Arg: 0, Op: collective.AllReduce},
		{Slice: 1, Form: dsl.InsideGroup, Op: collective.AllGather},
	})
	sim := quietSim(topology.A100System(4), cost.Ring, cost.PayloadBytes(4))
	tBase := sim.Measure(baseline)
	tOpt := sim.Measure(rsarag)
	speedup := tBase / tOpt
	if speedup < 1.2 {
		t.Errorf("RS-AR-AG speedup = %.2f, want > 1.2", speedup)
	}
}

func TestTreeAlgorithm(t *testing.T) {
	lp := lowerFor(t, []int{4, 16}, []int{4, 16}, [][]int{{1, 4}, {4, 4}}, []int{0},
		synth.BaselineAllReduce())
	sys := topology.A100System(4)
	ring := quietSim(sys, cost.Ring, cost.PayloadBytes(4)).Measure(lp)
	tree := quietSim(sys, cost.Tree, cost.PayloadBytes(4)).Measure(lp)
	if tree <= ring {
		t.Errorf("within-node tree (%v) should be slower than ring (%v)", tree, ring)
	}
}

func TestAllOpsRunOnEmulator(t *testing.T) {
	m := placement.MustMatrix([]int{2, 16}, []int{4, 8}, [][]int{{2, 2}, {1, 8}})
	h, err := hierarchy.Build(hierarchy.KindReductionAxes, m, []int{0}, hierarchy.Options{})
	if err != nil {
		t.Fatal(err)
	}
	res := synth.Synthesize(h, synth.Options{})
	sim := quietSim(topology.A100System(2), cost.Ring, 1e8)
	for _, p := range res.Programs {
		lp, err := lower.Lower(p, h)
		if err != nil {
			t.Fatal(err)
		}
		v := sim.Measure(lp)
		if v <= 0 || math.IsNaN(v) || math.IsInf(v, 0) {
			t.Errorf("%v: measured %v", p, v)
		}
	}
}

func TestDeviceCountMismatchPanics(t *testing.T) {
	lp := lowerFor(t, []int{4, 16}, []int{4, 16}, [][]int{{1, 4}, {4, 4}}, []int{0},
		synth.BaselineAllReduce())
	sim := quietSim(topology.A100System(2), cost.Ring, 1e8)
	defer func() {
		if recover() == nil {
			t.Error("mismatched device count did not panic")
		}
	}()
	sim.Measure(lp)
}

func TestHalvingDoublingOnEmulator(t *testing.T) {
	// The emulator's HD rounds must mirror the analytic model: a mixed
	// local/remote group beats ring, and totals stay within 15% of the
	// analytic prediction with noise disabled.
	lp := lowerFor(t, []int{4, 16}, []int{4, 16}, [][]int{{2, 2}, {2, 8}}, []int{0},
		synth.BaselineAllReduce())
	sys := topology.A100System(4)
	ringT := quietSim(sys, cost.Ring, cost.PayloadBytes(4)).Measure(lp)
	hdT := quietSim(sys, cost.HalvingDoubling, cost.PayloadBytes(4)).Measure(lp)
	if hdT >= ringT {
		t.Errorf("HD (%v) should beat ring (%v) on mixed groups", hdT, ringT)
	}
	model := &cost.Model{Sys: sys, Algo: cost.HalvingDoubling, Bytes: cost.PayloadBytes(4)}
	pred := model.ProgramTime(lp)
	if math.Abs(hdT-pred)/pred > 0.15 {
		t.Errorf("emulated HD %v vs analytic %v (>15%% apart)", hdT, pred)
	}
}
