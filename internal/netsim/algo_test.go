package netsim

import (
	"fmt"
	"math"
	"testing"

	"p2/internal/collective"
	"p2/internal/cost"
	"p2/internal/dsl"
	"p2/internal/lower"
	"p2/internal/synth"
	"p2/internal/topology"
)

// TestExplicitZeroLaunchOverhead locks the Options bugfix: a literal zero
// per-step overhead is expressible via DisableLaunchOverhead, and the
// default still applies when neither field is set.
func TestExplicitZeroLaunchOverhead(t *testing.T) {
	lp := lowerFor(t, []int{4, 16}, []int{4, 16}, [][]int{{1, 4}, {4, 4}}, []int{0},
		dsl.Program{
			{Slice: 0, Form: dsl.InsideGroup, Op: collective.ReduceScatter},
			{Slice: 0, Form: dsl.InsideGroup, Op: collective.AllGather},
		})
	sys := topology.A100System(4)
	base := &Simulator{Sys: sys, Algo: cost.Ring, Bytes: 1e9,
		Opts: Options{DisableNoise: true}}
	zero := &Simulator{Sys: sys, Algo: cost.Ring, Bytes: 1e9,
		Opts: Options{DisableNoise: true, DisableLaunchOverhead: true}}
	tBase, tZero := base.Measure(lp), zero.Measure(lp)
	// Two steps at the default 30 µs each separate the two runs exactly.
	want := 2 * defaultLaunchOverhead
	if diff := tBase - tZero; math.Abs(diff-want) > 1e-12 {
		t.Errorf("default-vs-zero overhead gap = %v, want %v", diff, want)
	}
	// DisableLaunchOverhead wins over an explicit non-zero value.
	forced := &Simulator{Sys: sys, Algo: cost.Ring, Bytes: 1e9,
		Opts: Options{DisableNoise: true, DisableLaunchOverhead: true, LaunchOverhead: 1.0}}
	if got := forced.Measure(lp); got != tZero {
		t.Errorf("DisableLaunchOverhead with LaunchOverhead set = %v, want %v", got, tZero)
	}
}

// TestHalvingDoublingCrossCheckPow2 cross-checks the analytic HD model
// against the emulator on the power-of-two path: a group spanning nodes
// with a pow2 size must land within 15% with noise and overheads off.
func TestHalvingDoublingCrossCheckPow2(t *testing.T) {
	// [[4 1] [1 16]]: 16 groups of 4 (one member per node) — every HD
	// exchange crosses the NIC.
	lp := lowerFor(t, []int{4, 16}, []int{4, 16}, [][]int{{4, 1}, {1, 16}}, []int{0},
		synth.BaselineAllReduce())
	sys := topology.A100System(4)
	model := &cost.Model{Sys: sys, Algo: cost.HalvingDoubling, Bytes: cost.PayloadBytes(4)}
	pred := model.ProgramTime(lp)
	meas := quietSim(sys, cost.HalvingDoubling, cost.PayloadBytes(4)).Measure(lp)
	if math.Abs(meas-pred)/pred > 0.15 {
		t.Errorf("all-remote HD: emulated %v vs analytic %v (>15%% apart)", meas, pred)
	}
}

// TestHalvingDoublingCrossCheckResidual cross-checks the analytic model
// against the emulator on the residual (non-power-of-two) schedule for
// every residual size the acceptance criteria name: with noise and
// overheads off, one-member-per-node groups of n ∈ {3, 5, 6, 7, 12} must
// land within 15% — and must NOT reproduce the ring numbers, proving the
// fallback is gone from both executions.
func TestHalvingDoublingCrossCheckResidual(t *testing.T) {
	for _, n := range []int{3, 5, 6, 7, 12} {
		sys := topology.MustNew(fmt.Sprintf("odd-%d", n),
			[]topology.Level{{Name: "node", Count: n}, {Name: "gpu", Count: 4}},
			[]topology.Link{
				{Name: "NIC", Bandwidth: 8e9, Latency: 2e-5},
				{Name: "NVL", Bandwidth: 200e9, Latency: 2e-6},
			})
		// [[n 1] [1 4]]: 4 groups of n, one member per node.
		lp := lowerFor(t, []int{n, 4}, []int{n, 4}, [][]int{{n, 1}, {1, 4}}, []int{0},
			synth.BaselineAllReduce())
		// The emulator must execute the fold round, the 2·log2(p) core
		// rounds and the unfold round — not a ring's 2(n-1) rounds.
		g := lp.Steps[0].Groups[0]
		wantRounds := 2
		for q := 1; q < cost.CorePow2(n); q *= 2 {
			wantRounds += 2
		}
		if rounds := scheduleRounds(sys, collective.AllReduce, g, 1e9, cost.HalvingDoubling); len(rounds) != wantRounds {
			t.Errorf("n=%d: emulator runs %d rounds, want %d (fold + core + unfold)", n, len(rounds), wantRounds)
		}
		hdModel := &cost.Model{Sys: sys, Algo: cost.HalvingDoubling, Bytes: 1e9}
		pred := hdModel.ProgramTime(lp)
		meas := quietSim(sys, cost.HalvingDoubling, 1e9).Measure(lp)
		if math.Abs(meas-pred)/pred > 0.15 {
			t.Errorf("n=%d: emulated residual HD %v vs analytic %v (>15%% apart)", n, meas, pred)
		}
		ringModel := &cost.Model{Sys: sys, Algo: cost.Ring, Bytes: 1e9}
		if rp := ringModel.ProgramTime(lp); rp == pred {
			t.Errorf("n=%d: analytic residual HD still equals ring (%v)", n, pred)
		}
		if rm := quietSim(sys, cost.Ring, 1e9).Measure(lp); rm == meas {
			t.Errorf("n=%d: emulated residual HD still equals ring (%v)", n, meas)
		}
	}
}

// TestMeasureStepsPerStepAlgos exercises MeasureSteps: a uniform
// assignment is canonicalized to the fixed algorithm (identical noise
// stream and result), and a mixed assignment runs each step under its own
// schedule, deterministically.
func TestMeasureStepsPerStepAlgos(t *testing.T) {
	lp := lowerFor(t, []int{4, 16}, []int{4, 16}, [][]int{{2, 2}, {2, 8}}, []int{0},
		dsl.Program{
			{Slice: 0, Form: dsl.InsideGroup, Op: collective.ReduceScatter},
			{Slice: 0, Form: dsl.InsideGroup, Op: collective.AllGather},
		})
	sys := topology.A100System(4)
	sim := &Simulator{Sys: sys, Algo: cost.Ring, Bytes: cost.PayloadBytes(4)}
	fixed := sim.Measure(lp)
	uniform := sim.MeasureSteps(lp, []cost.Algorithm{cost.Ring, cost.Ring})
	if uniform != fixed {
		t.Errorf("uniform Ring assignment = %v, want fixed-Ring %v (byte-identical)", uniform, fixed)
	}
	treeSim := &Simulator{Sys: sys, Algo: cost.Tree, Bytes: cost.PayloadBytes(4)}
	uniformTree := sim.MeasureSteps(lp, []cost.Algorithm{cost.Tree, cost.Tree})
	if want := treeSim.Measure(lp); uniformTree != want {
		t.Errorf("uniform Tree assignment = %v, want fixed-Tree %v", uniformTree, want)
	}
	mixed := sim.MeasureSteps(lp, []cost.Algorithm{cost.Ring, cost.Tree})
	if mixed <= 0 {
		t.Fatalf("mixed assignment measured %v", mixed)
	}
	if again := sim.MeasureSteps(lp, []cost.Algorithm{cost.Ring, cost.Tree}); again != mixed {
		t.Errorf("mixed assignment nondeterministic: %v vs %v", again, mixed)
	}
}

// TestFusionRespectsStepAlgos: consecutive AllReduces fuse only when
// their assigned algorithms agree.
func TestFusionRespectsStepAlgos(t *testing.T) {
	steps := []lower.Step{
		{Op: collective.AllReduce, Groups: [][]int{{0, 1}, {2, 3}}, Rows: 1, RowsOut: 1, K: 1},
		{Op: collective.AllReduce, Groups: [][]int{{0, 2}, {1, 3}}, Rows: 1, RowsOut: 1, K: 1},
	}
	same, sameAlgos := fuseStepsAlgos(steps, []cost.Algorithm{cost.Ring, cost.Ring})
	if len(same) != 1 || len(sameAlgos) != 1 {
		t.Errorf("same-algo AllReduces should fuse: got %d steps", len(same))
	}
	diff, diffAlgos := fuseStepsAlgos(steps, []cost.Algorithm{cost.Ring, cost.Tree})
	if len(diff) != 2 || len(diffAlgos) != 2 {
		t.Errorf("different-algo AllReduces must not fuse: got %d steps", len(diff))
	}
	plain, nilAlgos := fuseStepsAlgos(steps, nil)
	if len(plain) != 1 || nilAlgos != nil {
		t.Errorf("nil assignment should fuse as before: got %d steps", len(plain))
	}
}
