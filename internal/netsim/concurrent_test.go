package netsim

import (
	"math"
	"testing"

	"p2/internal/cost"
	"p2/internal/dsl"
	"p2/internal/lower"
	"p2/internal/synth"
	"p2/internal/topology"
)

func TestConcurrentSingleMatchesMeasure(t *testing.T) {
	lp := lowerFor(t, []int{4, 16}, []int{4, 16}, [][]int{{2, 2}, {2, 8}}, []int{0},
		synth.BaselineAllReduce())
	sim := &Simulator{Sys: topology.A100System(4), Algo: cost.Ring, Bytes: cost.PayloadBytes(4)}
	want := sim.Measure(lp)
	got := sim.MeasureConcurrent([]*lower.Program{lp})
	if len(got) != 1 {
		t.Fatalf("results = %d", len(got))
	}
	if math.Abs(got[0]-want)/want > 1e-9 {
		t.Errorf("MeasureConcurrent single = %v, Measure = %v", got[0], want)
	}
}

func TestConcurrentContention(t *testing.T) {
	// Two cross-node reductions sharing the NICs must each take longer
	// than in isolation, and at most about the sum.
	lpA := lowerFor(t, []int{4, 16}, []int{4, 16}, [][]int{{2, 2}, {2, 8}}, []int{0},
		synth.BaselineAllReduce())
	lpB := lowerFor(t, []int{4, 16}, []int{4, 16}, [][]int{{2, 2}, {2, 8}}, []int{0},
		dsl.Program{
			{Slice: 1, Form: dsl.InsideGroup, Op: 1 /* ReduceScatter */},
			{Slice: 1, Form: dsl.Parallel, Arg: 0, Op: 0 /* AllReduce */},
			{Slice: 1, Form: dsl.InsideGroup, Op: 2 /* AllGather */},
		})
	sim := &Simulator{Sys: topology.A100System(4), Algo: cost.Ring, Bytes: cost.PayloadBytes(4),
		Opts: Options{DisableNoise: true}}
	soloA := sim.Measure(lpA)
	soloB := sim.Measure(lpB)
	both := sim.MeasureConcurrent([]*lower.Program{lpA, lpB})
	for i, v := range both {
		if v <= 0 {
			t.Fatalf("lane %d time %v", i, v)
		}
	}
	if both[0] <= soloA || both[1] <= soloB {
		t.Errorf("no contention: both=%v solo=(%v, %v)", both, soloA, soloB)
	}
	if both[0] > soloA+soloB+1 || both[1] > soloA+soloB+1 {
		t.Errorf("over-serialized: both=%v solo=(%v, %v)", both, soloA, soloB)
	}
}

func TestConcurrentWorkConserving(t *testing.T) {
	// Fair sharing is work-conserving: two identical single-step
	// reductions sharing every link finish in about twice the solo time.
	lp := lowerFor(t, []int{4, 16}, []int{4, 16}, [][]int{{4, 1}, {1, 16}}, []int{0},
		synth.BaselineAllReduce())
	sim := &Simulator{Sys: topology.A100System(4), Algo: cost.Ring, Bytes: cost.PayloadBytes(4),
		Opts: Options{DisableNoise: true}}
	solo := sim.Measure(lp)
	both := sim.MeasureConcurrent([]*lower.Program{lp, lp})
	for _, v := range both {
		if v < 1.8*solo || v > 2.2*solo {
			t.Errorf("shared run %v, want ≈ 2×%v", v, solo)
		}
	}
}

func TestConcurrentEmpty(t *testing.T) {
	sim := &Simulator{Sys: topology.A100System(2), Algo: cost.Ring, Bytes: 1e9}
	if got := sim.MeasureConcurrent(nil); got != nil {
		t.Errorf("MeasureConcurrent(nil) = %v", got)
	}
}

// TestConcurrentMixedLiveDownLanes: when lanes share a fabric with a down
// NIC, only the lanes whose traffic crosses it stall to +Inf — a lane
// confined to live links must still finish in finite time, in either
// spec order (stalled transfers hold rate zero and never block the event
// loop or hog a live link's share).
func TestConcurrentMixedLiveDownLanes(t *testing.T) {
	// crossNode reduces over an axis spanning 2 nodes, so its ring crosses
	// the NICs; intraNode reduces over 4 GPUs of a single node and never
	// leaves the NVSwitch level.
	crossNode := lowerFor(t, []int{4, 16}, []int{4, 16}, [][]int{{2, 2}, {2, 8}}, []int{0},
		synth.BaselineAllReduce())
	intraNode := lowerFor(t, []int{4, 16}, []int{4, 16}, [][]int{{1, 4}, {4, 4}}, []int{0},
		synth.BaselineAllReduce())
	down := topology.A100System(4).MustWithOverrides(topology.Down(0, 2))
	sim := &Simulator{Sys: down, Algo: cost.Ring, Bytes: cost.PayloadBytes(4),
		Opts: Options{DisableNoise: true}}
	solo := sim.MeasureConcurrentSpecs([]ConcurrentSpec{{Program: intraNode}})[0]
	if math.IsInf(solo, 1) || solo <= 0 {
		t.Fatalf("intra-node lane alone = %v, want finite and positive", solo)
	}
	a := sim.MeasureConcurrentSpecs([]ConcurrentSpec{{Program: crossNode}, {Program: intraNode}})
	b := sim.MeasureConcurrentSpecs([]ConcurrentSpec{{Program: intraNode}, {Program: crossNode}})
	for _, tc := range []struct {
		name       string
		down, live float64
	}{
		{"down-first", a[0], a[1]},
		{"live-first", b[1], b[0]},
	} {
		if !math.IsInf(tc.down, 1) {
			t.Errorf("%s: cross-node lane over a down NIC = %v, want +Inf", tc.name, tc.down)
		}
		if math.IsInf(tc.live, 1) || tc.live <= 0 {
			t.Errorf("%s: intra-node lane = %v, want finite and positive", tc.name, tc.live)
		}
		if tc.live < solo {
			t.Errorf("%s: intra-node lane finished in %v, faster than its solo run %v", tc.name, tc.live, solo)
		}
	}
	// With noise disabled the outcome cannot depend on lane order.
	if a[0] != b[1] || a[1] != b[0] {
		t.Errorf("lane order changed the result: %v vs swapped %v", a, b)
	}
}

func TestConcurrentDeterministic(t *testing.T) {
	lp := lowerFor(t, []int{4, 16}, []int{4, 16}, [][]int{{2, 2}, {2, 8}}, []int{0},
		synth.BaselineAllReduce())
	sim := &Simulator{Sys: topology.A100System(4), Algo: cost.Ring, Bytes: cost.PayloadBytes(4)}
	a := sim.MeasureConcurrent([]*lower.Program{lp, lp})
	b := sim.MeasureConcurrent([]*lower.Program{lp, lp})
	if a[0] != b[0] || a[1] != b[1] {
		t.Errorf("nondeterministic: %v vs %v", a, b)
	}
}
