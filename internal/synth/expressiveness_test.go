package synth

import (
	"testing"

	"p2/internal/hierarchy"
	"p2/internal/lower"
	"p2/internal/placement"
)

// loweredSet synthesizes with the given hierarchy kind and returns the set
// of lowered-program fingerprints (the (G1,C1)...(Gn,Cn) form of §3.4).
func loweredSet(t *testing.T, kind hierarchy.Kind, m *placement.Matrix, red []int, maxSize int) map[string]bool {
	t.Helper()
	h, err := hierarchy.Build(kind, m, red, hierarchy.Options{})
	if err != nil {
		t.Fatal(err)
	}
	res := Synthesize(h, Options{MaxSize: maxSize})
	out := map[string]bool{}
	for _, p := range res.Programs {
		lp, err := lower.Lower(p, h)
		if err != nil {
			t.Fatalf("%v: lowering synthesized program %v: %v", kind, p, err)
		}
		out[lp.Key()] = true
	}
	return out
}

func subset(a, b map[string]bool) (missing string, ok bool) {
	for k := range a {
		if !b[k] {
			return k, false
		}
	}
	return "", true
}

// TestTheorem32Expressiveness verifies Theorem 3.2 empirically: the sets of
// valid lowered programs satisfy (a) ⊆ (b) ⊆ (c) ⊆ (d) on a collection of
// small placements.
func TestTheorem32Expressiveness(t *testing.T) {
	type cfg struct {
		hier, axes []int
		rows       [][]int
		red        []int
	}
	cfgs := []cfg{
		{[]int{2, 2}, []int{2, 2}, [][]int{{1, 2}, {2, 1}}, []int{0}},
		{[]int{2, 2}, []int{2, 2}, [][]int{{1, 2}, {2, 1}}, []int{1}},
		{[]int{2, 2}, []int{2, 2}, [][]int{{2, 1}, {1, 2}}, []int{0}},
		{[]int{2, 2}, []int{4}, [][]int{{2, 2}}, []int{0}},
		{[]int{2, 4}, []int{4, 2}, [][]int{{2, 2}, {1, 2}}, []int{0}},
		{[]int{2, 4}, []int{4, 2}, [][]int{{1, 4}, {2, 1}}, []int{0}},
		{[]int{2, 4}, []int{4, 2}, [][]int{{1, 4}, {2, 1}}, []int{1}},
		{[]int{2, 4}, []int{2, 2, 2}, [][]int{{2, 1}, {1, 2}, {1, 2}}, []int{0, 2}},
	}
	const maxSize = 4 // keeps the full-universe searches fast
	for _, c := range cfgs {
		m, err := placement.NewMatrix(c.hier, c.axes, c.rows)
		if err != nil {
			t.Fatal(err)
		}
		sets := map[hierarchy.Kind]map[string]bool{}
		for _, kind := range hierarchy.Kinds {
			sets[kind] = loweredSet(t, kind, m, c.red, maxSize)
		}
		order := hierarchy.Kinds
		for i := 1; i < len(order); i++ {
			lo, hi := order[i-1], order[i]
			if missing, ok := subset(sets[lo], sets[hi]); !ok {
				t.Errorf("matrix %v red %v: program of %v missing from %v:\n%s",
					m, c.red, lo, hi, missing)
			}
		}
		if len(sets[hierarchy.KindReductionAxes]) == 0 {
			t.Errorf("matrix %v red %v: reduction hierarchy synthesized nothing", m, c.red)
		}
	}
}

// TestReductionHierarchyStrictlyMoreExpressive reproduces the paper's
// observation that the containments can be strict: for the Fig. 2d
// placement the system hierarchy (a) cannot express any valid reduction
// (its levels always mix reduction groups), while (d) expresses many.
func TestReductionHierarchyStrictlyMoreExpressive(t *testing.T) {
	m, err := placement.NewMatrix([]int{1, 2, 2, 4}, []int{4, 4},
		[][]int{{1, 1, 2, 2}, {1, 2, 1, 2}})
	if err != nil {
		t.Fatal(err)
	}
	sysSet := loweredSet(t, hierarchy.KindSystem, m, []int{1}, 3)
	redSet := loweredSet(t, hierarchy.KindReductionAxes, m, []int{1}, 3)
	if len(sysSet) != 0 {
		t.Errorf("system hierarchy unexpectedly synthesized %d programs", len(sysSet))
	}
	if len(redSet) == 0 {
		t.Error("reduction hierarchy synthesized nothing")
	}
}
