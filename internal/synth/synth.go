// Package synth implements the syntax-guided program synthesis of §3.5 of
// the P² paper: enumerating reduction programs over a synthesis hierarchy
// in increasing order of program size, using the Hoare-rule semantics of
// the collectives to prune semantically invalid prefixes.
//
// Two prunings keep the search tractable:
//
//   - Semantic preconditions: a step whose collective preconditions fail on
//     the current state context is discarded (this rejects the Fig. 4
//     programs immediately).
//   - Target bounding: a step that pushes any device's state beyond its
//     goal state can never reach the goal (information never shrinks), so
//     the whole subtree is discarded. This is the operational form of the
//     "only partitioned over reduction axes" requirement (Lemma B.3).
//
// Contexts reached by different prefixes are memoized, so the enumeration
// is a DAG walk rather than a tree walk.
package synth

import (
	"sort"
	"time"

	"p2/internal/collective"
	"p2/internal/dsl"
	"p2/internal/hierarchy"
)

// Options tune the synthesizer.
type Options struct {
	// MaxSize is the program-size limit. The paper uses 5; 0 means 5.
	MaxSize int
	// NoMemo disables context memoization (for ablation benchmarks).
	NoMemo bool
}

// DefaultMaxSize is the program-size limit used when Options.MaxSize is
// zero (the paper uses 5).
const DefaultMaxSize = 5

// Result is the outcome of a synthesis run.
type Result struct {
	// Programs are all distinct valid programs implementing the requested
	// reduction, sorted by size then lexicographically by instruction.
	Programs []dsl.Program
	// Explored counts instruction applications attempted (search effort).
	Explored int
	// MemoHits counts contexts served from the memo table.
	MemoHits int
	// Elapsed is the wall-clock synthesis time.
	Elapsed time.Duration
}

// candidate is an instruction with its precomputed device groups.
type candidate struct {
	in     dsl.Instruction
	groups [][]int
}

// Candidates enumerates the deduplicated instruction space for h: every
// (slice, form, arg, op) combination that passes validation, keeping one
// representative per distinct (device grouping, op) effect. The order is
// canonical: slice, form, arg, then op.
func Candidates(h *hierarchy.Hierarchy) []dsl.Instruction {
	cands := enumerate(h)
	out := make([]dsl.Instruction, len(cands))
	for i, c := range cands {
		out[i] = c.in
	}
	return out
}

func enumerate(h *hierarchy.Hierarchy) []candidate {
	var out []candidate
	seen := map[string]bool{}
	L := h.NumLevels()
	add := func(in dsl.Instruction) {
		if in.Validate(h) != nil || !in.Admissible(h) {
			return
		}
		groups := in.Groups(h)
		key := groupsKey(groups, in.Op)
		if seen[key] {
			return
		}
		seen[key] = true
		out = append(out, candidate{in: in, groups: groups})
	}
	for slice := 0; slice < L; slice++ {
		for _, op := range collective.Ops {
			add(dsl.Instruction{Slice: slice, Form: dsl.InsideGroup, Op: op})
		}
		for arg := 0; arg < slice; arg++ {
			for _, op := range collective.Ops {
				add(dsl.Instruction{Slice: slice, Form: dsl.Parallel, Arg: arg, Op: op})
			}
			for _, op := range collective.Ops {
				add(dsl.Instruction{Slice: slice, Form: dsl.Master, Arg: arg, Op: op})
			}
		}
	}
	return out
}

func groupsKey(groups [][]int, op collective.Op) string {
	// Compact textual signature; groups are canonical so this is stable.
	buf := make([]byte, 0, 64)
	buf = append(buf, byte(op))
	for _, g := range groups {
		for _, u := range g {
			buf = append(buf, byte(u), byte(u>>8))
		}
		buf = append(buf, 0xff, 0xff)
	}
	return string(buf)
}

type synthesizer struct {
	h       *hierarchy.Hierarchy
	cands   []candidate
	targets []*collective.State
	opts    Options
	memo    map[memoKey][]dsl.Program
	res     *Result
}

type memoKey struct {
	h1, h2 uint64
	budget int
}

// Synthesize enumerates every valid reduction program for h of size at
// most opts.MaxSize.
func Synthesize(h *hierarchy.Hierarchy, opts Options) *Result {
	start := time.Now() //p2:timing-ok synthesis wall time is reported in Result.Elapsed, never ranked
	if opts.MaxSize <= 0 {
		opts.MaxSize = DefaultMaxSize
	}
	s := &synthesizer{
		h:     h,
		cands: enumerate(h),
		opts:  opts,
		memo:  map[memoKey][]dsl.Program{},
		res:   &Result{},
	}
	s.targets = make([]*collective.State, h.K())
	for u := 0; u < h.K(); u++ {
		s.targets[u] = dsl.TargetState(h, u)
	}
	progs := s.suffixes(dsl.NewContext(h), opts.MaxSize)
	// The DFS returns suffix order; sort by size then lexicographic.
	// Rendering both programs inside the comparator dominated large
	// syntheses, so the keys are computed once up front (String is
	// injective over programs, so the order is unchanged).
	keys := make([]string, len(progs))
	for i, p := range progs {
		keys[i] = p.String()
	}
	sort.Sort(&bySizeThenKey{progs: progs, keys: keys})
	s.res.Programs = progs
	s.res.Elapsed = time.Since(start) //p2:timing-ok synthesis wall time is reported in Result.Elapsed, never ranked
	return s.res
}

// bySizeThenKey sorts programs by size then by their precomputed
// rendering, keeping the two slices aligned.
type bySizeThenKey struct {
	progs []dsl.Program
	keys  []string
}

func (b *bySizeThenKey) Len() int { return len(b.progs) }
func (b *bySizeThenKey) Less(i, j int) bool {
	if len(b.progs[i]) != len(b.progs[j]) {
		return len(b.progs[i]) < len(b.progs[j])
	}
	return b.keys[i] < b.keys[j]
}
func (b *bySizeThenKey) Swap(i, j int) {
	b.progs[i], b.progs[j] = b.progs[j], b.progs[i]
	b.keys[i], b.keys[j] = b.keys[j], b.keys[i]
}

func (s *synthesizer) atGoal(ctx dsl.Context) bool {
	for u, st := range ctx {
		if !st.Equal(s.targets[u]) {
			return false
		}
	}
	return true
}

// withinTargets reports whether every device state is still a subset of its
// goal; once exceeded, the goal is unreachable.
func (s *synthesizer) withinTargets(ctx dsl.Context) bool {
	for u, st := range ctx {
		if !st.SubsetOf(s.targets[u]) {
			return false
		}
	}
	return true
}

func (s *synthesizer) suffixes(ctx dsl.Context, budget int) []dsl.Program {
	if s.atGoal(ctx) {
		// No valid instruction can apply at the goal without exceeding a
		// target, so the empty program is the only suffix.
		return []dsl.Program{nil}
	}
	if budget == 0 {
		return nil
	}
	key := hashContext(ctx, budget)
	if !s.opts.NoMemo {
		if v, ok := s.memo[key]; ok {
			s.res.MemoHits++
			return v
		}
	}
	var out []dsl.Program
	for _, cand := range s.cands {
		s.res.Explored++
		next, err := s.applyCandidate(ctx, cand)
		if err != nil {
			continue
		}
		if !s.withinTargets(next) {
			continue
		}
		for _, suf := range s.suffixes(next, budget-1) {
			prog := make(dsl.Program, 0, len(suf)+1)
			prog = append(prog, cand.in)
			prog = append(prog, suf...)
			out = append(out, prog)
		}
	}
	if !s.opts.NoMemo {
		s.memo[key] = out
	}
	return out
}

// applyCandidate is dsl.Context.Apply specialized to reuse the candidate's
// precomputed groups.
func (s *synthesizer) applyCandidate(ctx dsl.Context, cand candidate) (dsl.Context, error) {
	out := ctx.Clone()
	for _, g := range cand.groups {
		states := make([]*collective.State, len(g))
		for i, u := range g {
			states[i] = ctx[u]
		}
		res, err := collective.Apply(cand.in.Op, states)
		if err != nil {
			return nil, err
		}
		for i, u := range g {
			out[u] = res[i]
		}
	}
	return out, nil
}

// hashContext computes a 128-bit FNV-1a hash of the packed context plus the
// remaining budget.
func hashContext(ctx dsl.Context, budget int) memoKey {
	const (
		off1   = 14695981039346656037
		prime1 = 1099511628211
		off2   = 0x9e3779b97f4a7c15
	)
	var h1 uint64 = off1
	var h2 uint64 = off2
	var words []uint64
	for _, st := range ctx {
		words = st.AppendWords(words[:0])
		for _, w := range words {
			for sh := 0; sh < 64; sh += 8 {
				b := uint64(byte(w >> sh))
				h1 = (h1 ^ b) * prime1
				h2 = (h2 ^ (b + 0xabcdef)) * prime1
			}
		}
	}
	return memoKey{h1: h1, h2: h2, budget: budget}
}

// BaselineAllReduce is the default implementation the paper compares
// against: a single AllReduce over each full reduction group (one global
// InsideGroup step at the root).
func BaselineAllReduce() dsl.Program {
	return dsl.Program{{Slice: 0, Form: dsl.InsideGroup, Op: collective.AllReduce}}
}
