package synth

import (
	"reflect"
	"testing"

	"p2/internal/collective"
	"p2/internal/dsl"
	"p2/internal/hierarchy"
	"p2/internal/placement"
)

// fig2d builds the running example: [1 2 2 4] hierarchy, axes [4 4],
// matrix [[1 1 2 2] [1 2 1 2]], reducing axis 1 → synthesis hierarchy
// [2 2] over a 4-leaf universe.
func fig2d(t *testing.T) *hierarchy.Hierarchy {
	t.Helper()
	m, err := placement.NewMatrix([]int{1, 2, 2, 4}, []int{4, 4},
		[][]int{{1, 1, 2, 2}, {1, 2, 1, 2}})
	if err != nil {
		t.Fatal(err)
	}
	h, err := hierarchy.Build(hierarchy.KindReductionAxes, m, []int{1}, hierarchy.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return h
}

func TestAllSynthesizedProgramsAreValid(t *testing.T) {
	h := fig2d(t)
	res := Synthesize(h, Options{})
	if len(res.Programs) == 0 {
		t.Fatal("no programs synthesized")
	}
	for _, p := range res.Programs {
		if !p.Implements(h) {
			t.Errorf("synthesized program %v does not implement the reduction", p)
		}
		if len(p) > DefaultMaxSize {
			t.Errorf("program %v exceeds size limit", p)
		}
	}
}

func TestProgramsAreDistinct(t *testing.T) {
	h := fig2d(t)
	res := Synthesize(h, Options{})
	seen := map[string]bool{}
	for _, p := range res.Programs {
		s := p.String()
		if seen[s] {
			t.Errorf("duplicate program %s", s)
		}
		seen[s] = true
	}
}

func TestProgramsSortedBySize(t *testing.T) {
	h := fig2d(t)
	res := Synthesize(h, Options{})
	for i := 1; i < len(res.Programs); i++ {
		if len(res.Programs[i-1]) > len(res.Programs[i]) {
			t.Fatal("programs not sorted by size")
		}
	}
	if len(res.Programs[0]) != 1 {
		t.Error("smallest program should be the single-step AllReduce")
	}
}

func TestBaselinePresent(t *testing.T) {
	h := fig2d(t)
	res := Synthesize(h, Options{})
	base := BaselineAllReduce().String()
	found := false
	for _, p := range res.Programs {
		if p.String() == base {
			found = true
		}
	}
	if !found {
		t.Errorf("baseline AllReduce %s not among synthesized programs", base)
	}
}

func TestPaperProgramsPresent(t *testing.T) {
	// The Fig. 3 strategies must be synthesized for the running example.
	h := fig2d(t)
	res := Synthesize(h, Options{})
	wants := []dsl.Program{
		// Fig. 3a: single AllReduce within reduction groups.
		{{Slice: 0, Form: dsl.InsideGroup, Op: collective.AllReduce}},
		// Fig. 3b: AllReduce over S0 pairs then across.
		{
			{Slice: 1, Form: dsl.InsideGroup, Op: collective.AllReduce},
			{Slice: 1, Form: dsl.Parallel, Arg: 0, Op: collective.AllReduce},
		},
		// Fig. 3c / Fig. 10i: Reduce, AllReduce between roots, Broadcast.
		{
			{Slice: 1, Form: dsl.InsideGroup, Op: collective.Reduce},
			{Slice: 1, Form: dsl.Master, Arg: 0, Op: collective.AllReduce},
			{Slice: 1, Form: dsl.InsideGroup, Op: collective.Broadcast},
		},
		// Fig. 10ii: ReduceScatter, AllReduce, AllGather.
		{
			{Slice: 1, Form: dsl.InsideGroup, Op: collective.ReduceScatter},
			{Slice: 1, Form: dsl.Parallel, Arg: 0, Op: collective.AllReduce},
			{Slice: 1, Form: dsl.InsideGroup, Op: collective.AllGather},
		},
	}
	have := map[string]bool{}
	for _, p := range res.Programs {
		have[p.String()] = true
	}
	for _, w := range wants {
		if !have[w.String()] {
			t.Errorf("paper program %v not synthesized", w)
		}
	}
}

func TestSingleLevelUniverse(t *testing.T) {
	// When the reduction axis fits in one level, only three strategies
	// exist: AllReduce; Reduce+Broadcast; ReduceScatter+AllGather.
	m, err := placement.NewMatrix([]int{4, 16}, []int{4, 16},
		[][]int{{1, 4}, {4, 4}})
	if err != nil {
		t.Fatal(err)
	}
	h, err := hierarchy.Build(hierarchy.KindReductionAxes, m, []int{0}, hierarchy.Options{})
	if err != nil {
		t.Fatal(err)
	}
	res := Synthesize(h, Options{})
	if len(res.Programs) != 3 {
		t.Fatalf("got %d programs, want 3: %v", len(res.Programs), res.Programs)
	}
}

func TestMemoizationDoesNotChangeResults(t *testing.T) {
	h := fig2d(t)
	with := Synthesize(h, Options{})
	without := Synthesize(h, Options{NoMemo: true})
	if len(with.Programs) != len(without.Programs) {
		t.Fatalf("memoization changed program count: %d vs %d",
			len(with.Programs), len(without.Programs))
	}
	for i := range with.Programs {
		if with.Programs[i].String() != without.Programs[i].String() {
			t.Fatalf("program %d differs: %v vs %v", i, with.Programs[i], without.Programs[i])
		}
	}
	if with.MemoHits == 0 {
		t.Error("memoization never hit")
	}
}

func TestSizeLimitMonotone(t *testing.T) {
	h := fig2d(t)
	prev := 0
	for size := 1; size <= 5; size++ {
		res := Synthesize(h, Options{MaxSize: size})
		if len(res.Programs) < prev {
			t.Fatalf("size %d yields fewer programs (%d) than size %d (%d)",
				size, len(res.Programs), size-1, prev)
		}
		prev = len(res.Programs)
	}
}

func TestDeterminism(t *testing.T) {
	h := fig2d(t)
	a := Synthesize(h, Options{})
	b := Synthesize(h, Options{})
	if len(a.Programs) != len(b.Programs) {
		t.Fatal("nondeterministic program count")
	}
	for i := range a.Programs {
		if !reflect.DeepEqual(a.Programs[i], b.Programs[i]) {
			t.Fatal("nondeterministic program order")
		}
	}
}

func TestCandidatesDeduplicated(t *testing.T) {
	h := fig2d(t)
	cands := Candidates(h)
	seen := map[string]bool{}
	for _, in := range cands {
		key := groupsKey(in.Groups(h), in.Op)
		if seen[key] {
			t.Errorf("candidate %v duplicates an earlier grouping", in)
		}
		seen[key] = true
	}
}

func TestCandidatesIncludeMasterForms(t *testing.T) {
	h := fig2d(t)
	foundMaster := false
	for _, in := range Candidates(h) {
		if in.Form == dsl.Master {
			foundMaster = true
		}
	}
	if !foundMaster {
		t.Error("no Master-form candidates")
	}
}

func TestCollapsedEquivalentSearch(t *testing.T) {
	// For a multi-axis reduction whose factors share hardware levels,
	// collapsing must preserve at least the three canonical strategies.
	m, err := placement.NewMatrix([]int{4, 16}, []int{16, 2, 2},
		[][]int{{2, 8}, {2, 1}, {1, 2}})
	if err != nil {
		t.Fatal(err)
	}
	h, err := hierarchy.Build(hierarchy.KindReductionAxes, m, []int{0, 2},
		hierarchy.Options{Collapse: true})
	if err != nil {
		t.Fatal(err)
	}
	res := Synthesize(h, Options{})
	if len(res.Programs) < 3 {
		t.Fatalf("only %d programs for collapsed multi-axis case", len(res.Programs))
	}
	for _, p := range res.Programs {
		if !p.Implements(h) {
			t.Errorf("invalid program %v", p)
		}
	}
}
