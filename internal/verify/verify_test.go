package verify

import (
	"strings"
	"testing"

	"p2/internal/collective"
	"p2/internal/dsl"
	"p2/internal/hierarchy"
	"p2/internal/lower"
	"p2/internal/placement"
	"p2/internal/synth"
)

func build(t *testing.T, hier, axes []int, rows [][]int, red []int) (*placement.Matrix, *hierarchy.Hierarchy) {
	t.Helper()
	m, err := placement.NewMatrix(hier, axes, rows)
	if err != nil {
		t.Fatal(err)
	}
	h, err := hierarchy.Build(hierarchy.KindReductionAxes, m, red, hierarchy.Options{Collapse: len(red) > 1})
	if err != nil {
		t.Fatal(err)
	}
	return m, h
}

func TestBaselineAllReduceComputesSums(t *testing.T) {
	m, h := build(t, []int{1, 2, 2, 4}, []int{4, 4}, [][]int{{1, 1, 2, 2}, {1, 2, 1, 2}}, []int{1})
	lp, err := lower.Lower(synth.BaselineAllReduce(), h)
	if err != nil {
		t.Fatal(err)
	}
	if err := Check(lp, m, []int{1}, 3); err != nil {
		t.Error(err)
	}
}

// TestEverySynthesizedProgramComputesSums is the pipeline's strongest
// end-to-end guarantee: every program the synthesizer emits, for several
// placements and reduction requests, moves concrete numbers to exactly the
// all-reduce result.
func TestEverySynthesizedProgramComputesSums(t *testing.T) {
	cases := []struct {
		hier, axes []int
		rows       [][]int
		red        []int
	}{
		{[]int{1, 2, 2, 4}, []int{4, 4}, [][]int{{1, 1, 2, 2}, {1, 2, 1, 2}}, []int{1}},
		{[]int{1, 2, 2, 4}, []int{4, 4}, [][]int{{1, 2, 2, 1}, {1, 1, 1, 4}}, []int{1}},
		{[]int{4, 16}, []int{4, 16}, [][]int{{2, 2}, {2, 8}}, []int{0}},
		{[]int{4, 16}, []int{4, 16}, [][]int{{1, 4}, {4, 4}}, []int{0}},
		{[]int{2, 8}, []int{4, 4}, [][]int{{2, 2}, {1, 4}}, []int{1}},
		{[]int{4, 16}, []int{16, 2, 2}, [][]int{{2, 8}, {2, 1}, {1, 2}}, []int{0, 2}},
	}
	for _, c := range cases {
		m, h := build(t, c.hier, c.axes, c.rows, c.red)
		res := synth.Synthesize(h, synth.Options{})
		if len(res.Programs) == 0 {
			t.Fatalf("%v: no programs", m)
		}
		for _, p := range res.Programs {
			lp, err := lower.Lower(p, h)
			if err != nil {
				t.Fatalf("%v: %v", p, err)
			}
			if err := Check(lp, m, c.red, 2); err != nil {
				t.Errorf("matrix %v program %v: %v", m, p, err)
			}
		}
	}
}

func TestCheckRejectsWrongReduction(t *testing.T) {
	// A program implementing reduction over axis 1 must fail verification
	// against axis 0.
	m, h := build(t, []int{1, 2, 2, 4}, []int{4, 4}, [][]int{{1, 1, 2, 2}, {1, 2, 1, 2}}, []int{1})
	lp, err := lower.Lower(synth.BaselineAllReduce(), h)
	if err != nil {
		t.Fatal(err)
	}
	if err := Check(lp, m, []int{0}, 2); err == nil {
		t.Error("verification against the wrong axis passed")
	}
}

func TestCheckRejectsTruncatedProgram(t *testing.T) {
	m, h := build(t, []int{4, 16}, []int{4, 16}, [][]int{{2, 2}, {2, 8}}, []int{0})
	full := dsl.Program{
		{Slice: 1, Form: dsl.InsideGroup, Op: collective.ReduceScatter},
		{Slice: 1, Form: dsl.Parallel, Arg: 0, Op: collective.AllReduce},
		{Slice: 1, Form: dsl.InsideGroup, Op: collective.AllGather},
	}
	lp, err := lower.Lower(full, h)
	if err != nil {
		t.Fatal(err)
	}
	truncated := *lp
	truncated.Steps = truncated.Steps[:2]
	if err := Check(&truncated, m, []int{0}, 2); err == nil {
		t.Error("truncated program verified")
	}
}

func TestMachineStepMismatchedChunking(t *testing.T) {
	m := NewMachine(4, 4, 2)
	err := m.Step(lower.Step{Op: collective.AllReduce, Groups: [][]int{{0, 1}}, Rows: 8, RowsOut: 8, K: 8})
	if err == nil || !strings.Contains(err.Error(), "chunking") {
		t.Errorf("got %v", err)
	}
}

func TestMachineReduceScatterIndivisible(t *testing.T) {
	m := NewMachine(3, 4, 1)
	for d := 0; d < 3; d++ {
		d := d
		m.Fill(d, func(c, i int) float64 { return float64(d + 1) })
	}
	err := m.Step(lower.Step{Op: collective.ReduceScatter, Groups: [][]int{{0, 1, 2}}, Rows: 4, RowsOut: 1, K: 4})
	if err == nil {
		t.Error("indivisible scatter accepted")
	}
}

func TestMachineFillAndValue(t *testing.T) {
	m := NewMachine(2, 3, 4)
	m.Fill(1, func(c, i int) float64 { return float64(c*10 + i) })
	if got := m.Value(1, 2, 3); got != 23 {
		t.Errorf("Value = %v", got)
	}
	if got := m.Value(0, 2, 3); got != 0 {
		t.Errorf("unfilled device value = %v", got)
	}
	if m.NumDevices() != 2 {
		t.Errorf("NumDevices = %d", m.NumDevices())
	}
}

func TestNewMachinePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewMachine(0,0,0) did not panic")
		}
	}()
	NewMachine(0, 0, 0)
}

func TestReduceThenBroadcastRoundTrip(t *testing.T) {
	// Reduce to root then Broadcast restores equality with AllReduce.
	m := NewMachine(4, 4, 2)
	for d := 0; d < 4; d++ {
		d := d
		m.Fill(d, func(c, i int) float64 { return float64(d + 1) })
	}
	g := [][]int{{0, 1, 2, 3}}
	if err := m.Step(lower.Step{Op: collective.Reduce, Groups: g, Rows: 4, RowsOut: 4, K: 4}); err != nil {
		t.Fatal(err)
	}
	// Non-roots are cleared.
	if m.Value(1, 0, 0) != 0 {
		t.Error("non-root not cleared by Reduce")
	}
	if m.Value(0, 0, 0) != 10 {
		t.Errorf("root sum = %v, want 10", m.Value(0, 0, 0))
	}
	if err := m.Step(lower.Step{Op: collective.Broadcast, Groups: g, Rows: 4, RowsOut: 4, K: 4}); err != nil {
		t.Fatal(err)
	}
	for d := 0; d < 4; d++ {
		if m.Value(d, 3, 1) != 10 {
			t.Errorf("device %d = %v after broadcast", d, m.Value(d, 3, 1))
		}
	}
}
