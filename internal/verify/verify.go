// Package verify executes lowered reduction programs on concrete data.
//
// The synthesizer reasons about reductions abstractly (boolean state
// matrices); this package provides the independent ground truth: every
// device gets a real float64 vector, each collective step actually moves
// and adds numbers between per-device buffers, and the final buffers are
// compared against the mathematically expected all-reduce result. A
// program passing Check is correct not just by the Hoare semantics but by
// construction on data.
//
// The executor implements the five collectives with the same chunk
// conventions as the rest of the system: a payload is split into K chunks
// (K = the synthesis-universe size); ReduceScatter hands chunk blocks to
// members in group order; Reduce and Broadcast use the first group member
// as root.
package verify

import (
	"fmt"
	"math"

	"p2/internal/collective"
	"p2/internal/lower"
	"p2/internal/placement"
)

// Machine holds the per-device buffers of a concrete execution.
type Machine struct {
	// K is the chunk granularity; every buffer has K chunks of ChunkLen
	// values.
	K        int
	ChunkLen int
	// bufs[d][c][i] is value i of chunk c on device d.
	bufs [][][]float64
}

// NewMachine creates a machine for n devices with K chunks of chunkLen
// values each, all zero.
func NewMachine(n, k, chunkLen int) *Machine {
	if n <= 0 || k <= 0 || chunkLen <= 0 {
		panic(fmt.Sprintf("verify: NewMachine(%d, %d, %d)", n, k, chunkLen))
	}
	m := &Machine{K: k, ChunkLen: chunkLen, bufs: make([][][]float64, n)}
	for d := range m.bufs {
		m.bufs[d] = make([][]float64, k)
		for c := range m.bufs[d] {
			m.bufs[d][c] = make([]float64, chunkLen)
		}
	}
	return m
}

// NumDevices returns the device count.
func (m *Machine) NumDevices() int { return len(m.bufs) }

// Fill initializes device d's payload with fn(chunk, index).
func (m *Machine) Fill(d int, fn func(chunk, i int) float64) {
	for c := range m.bufs[d] {
		for i := range m.bufs[d][c] {
			m.bufs[d][c][i] = fn(c, i)
		}
	}
}

// Value returns value i of chunk c on device d.
func (m *Machine) Value(d, c, i int) float64 { return m.bufs[d][c][i] }

// Step executes one lowered collective step on the machine.
func (m *Machine) Step(st lower.Step) error {
	if st.K != m.K {
		return fmt.Errorf("verify: step chunking %d != machine %d", st.K, m.K)
	}
	for _, g := range st.Groups {
		if err := m.applyGroup(st.Op, g); err != nil {
			return err
		}
	}
	return nil
}

func (m *Machine) applyGroup(op collective.Op, g []int) error {
	switch op {
	case collective.AllReduce:
		for c := 0; c < m.K; c++ {
			sum := make([]float64, m.ChunkLen)
			for _, d := range g {
				for i, v := range m.bufs[d][c] {
					sum[i] += v
				}
			}
			for _, d := range g {
				copy(m.bufs[d][c], sum)
			}
		}
	case collective.Reduce:
		root := g[0]
		for c := 0; c < m.K; c++ {
			sum := make([]float64, m.ChunkLen)
			for _, d := range g {
				for i, v := range m.bufs[d][c] {
					sum[i] += v
				}
			}
			copy(m.bufs[root][c], sum)
			for _, d := range g[1:] {
				for i := range m.bufs[d][c] {
					m.bufs[d][c][i] = 0
				}
			}
		}
	case collective.Broadcast:
		root := g[0]
		for c := 0; c < m.K; c++ {
			for _, d := range g[1:] {
				copy(m.bufs[d][c], m.bufs[root][c])
			}
		}
	case collective.ReduceScatter:
		// Determine the non-empty chunks (those any member holds); they
		// are summed and scattered in blocks over the group in order.
		held := m.heldChunks(g)
		if len(held)%len(g) != 0 {
			return fmt.Errorf("verify: ReduceScatter of %d chunks over %d devices", len(held), len(g))
		}
		per := len(held) / len(g)
		sums := make([][]float64, len(held))
		for ci, c := range held {
			sums[ci] = make([]float64, m.ChunkLen)
			for _, d := range g {
				for i, v := range m.bufs[d][c] {
					sums[ci][i] += v
				}
			}
		}
		for gi, d := range g {
			for ci, c := range held {
				if ci/per == gi {
					copy(m.bufs[d][c], sums[ci])
				} else {
					for i := range m.bufs[d][c] {
						m.bufs[d][c][i] = 0
					}
				}
			}
		}
	case collective.AllGather:
		// Each chunk is held by (at most) one member; everyone ends with
		// the union.
		for c := 0; c < m.K; c++ {
			var src []float64
			for _, d := range g {
				if !chunkZero(m.bufs[d][c]) {
					if src != nil {
						return fmt.Errorf("verify: AllGather chunk %d held twice", c)
					}
					src = m.bufs[d][c]
				}
			}
			if src == nil {
				continue
			}
			tmp := make([]float64, m.ChunkLen)
			copy(tmp, src)
			for _, d := range g {
				copy(m.bufs[d][c], tmp)
			}
		}
	default:
		return fmt.Errorf("verify: unknown op %v", op)
	}
	return nil
}

// heldChunks returns the chunk indices any group member holds (non-zero).
func (m *Machine) heldChunks(g []int) []int {
	var out []int
	for c := 0; c < m.K; c++ {
		for _, d := range g {
			if !chunkZero(m.bufs[d][c]) {
				out = append(out, c)
				break
			}
		}
	}
	return out
}

func chunkZero(xs []float64) bool {
	for _, x := range xs {
		//p2:nan-ok concrete verification data; a NaN element correctly reports the chunk nonzero
		if x != 0 {
			return false
		}
	}
	return true
}

// Run executes all steps of a lowered program.
func (m *Machine) Run(p *lower.Program) error {
	for i, st := range p.Steps {
		if err := m.Step(st); err != nil {
			return fmt.Errorf("verify: step %d: %w", i, err)
		}
	}
	return nil
}

// Check executes the lowered program on concrete data and verifies that it
// implements the requested reduction: after the run, every device holds,
// in every chunk, the exact sum of its reduction group's original values.
//
// Initial data is synthetic but adversarial to aliasing mistakes: device
// d's chunk c value i is (d+1)·1e6 + c·1e3 + i, so every (device, chunk)
// pair contributes a distinguishable quantity.
func Check(p *lower.Program, m *placement.Matrix, reduceAxes []int, chunkLen int) error {
	n := m.NumDevices()
	if p.NumDevices != n {
		return fmt.Errorf("verify: program devices %d != placement devices %d", p.NumDevices, n)
	}
	mach := NewMachine(n, p.K, chunkLen)
	val := func(d, c, i int) float64 {
		return float64(d+1)*1e6 + float64(c)*1e3 + float64(i)
	}
	for d := 0; d < n; d++ {
		d := d
		mach.Fill(d, func(c, i int) float64 { return val(d, c, i) })
	}
	if err := mach.Run(p); err != nil {
		return err
	}
	const tol = 1e-9
	for d := 0; d < n; d++ {
		group := m.ReductionGroup(d, reduceAxes)
		for c := 0; c < p.K; c++ {
			for i := 0; i < chunkLen; i++ {
				want := 0.0
				for _, gd := range group {
					want += val(gd, c, i)
				}
				got := mach.Value(d, c, i)
				if math.Abs(got-want) > tol*math.Abs(want) {
					return fmt.Errorf("verify: device %d chunk %d[%d] = %v, want %v (group %v)",
						d, c, i, got, want, group)
				}
			}
		}
	}
	return nil
}
