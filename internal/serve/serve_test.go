package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"p2"
)

// postPlan sends one /plan request and decodes the response body.
func postPlan(t *testing.T, url, body string) (int, []byte) {
	t.Helper()
	resp, err := http.Post(url+"/plan", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("POST /plan: %v", err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("reading /plan response: %v", err)
	}
	return resp.StatusCode, data
}

// decodePlan parses a 200 /plan body.
func decodePlan(t *testing.T, data []byte) *PlanResponse {
	t.Helper()
	var pr PlanResponse
	if err := json.Unmarshal(data, &pr); err != nil {
		t.Fatalf("decoding /plan response: %v\nbody: %s", err, data)
	}
	return &pr
}

const fig2aBody = `{"system": "fig2a", "axes": [16], "reduce": [0], "topk": 5}`

// TestPlanEndpoint checks that an undeadlined /plan response is exactly
// the library's ranking: same strategies, same order, same predictions.
func TestPlanEndpoint(t *testing.T) {
	ts := httptest.NewServer(NewServer(Config{}).Handler())
	defer ts.Close()

	code, data := postPlan(t, ts.URL, fig2aBody)
	if code != http.StatusOK {
		t.Fatalf("POST /plan = %d, want 200\nbody: %s", code, data)
	}
	got := decodePlan(t, data)
	if got.Partial || got.Cached {
		t.Fatalf("fresh undeadlined response: partial=%v cached=%v, want false/false", got.Partial, got.Cached)
	}

	want, err := p2.Plan(p2.Fig2aSystem(), p2.Request{Axes: []int{16}, ReduceAxes: []int{0}, TopK: 5})
	if err != nil {
		t.Fatalf("library Plan: %v", err)
	}
	if len(got.Strategies) != len(want.Strategies) {
		t.Fatalf("served %d strategies, library ranked %d", len(got.Strategies), len(want.Strategies))
	}
	for i, st := range want.Strategies {
		g := got.Strategies[i]
		if g.Matrix != st.Matrix.String() || g.Program != st.Program.String() || g.PredictedSec != st.Predicted {
			t.Errorf("rank %d: served (%s, %s, %g), library (%s, %s, %g)",
				i, g.Matrix, g.Program, g.PredictedSec, st.Matrix, st.Program, st.Predicted)
		}
	}
	if got.Stats != want.Stats {
		t.Errorf("served stats %+v, library stats %+v", got.Stats, want.Stats)
	}
}

// TestCacheHit checks that a repeated request is served from the cache,
// marked as such, and identical to the fresh response.
func TestCacheHit(t *testing.T) {
	s := NewServer(Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	_, first := postPlan(t, ts.URL, fig2aBody)
	fresh := decodePlan(t, first)
	code, second := postPlan(t, ts.URL, fig2aBody)
	if code != http.StatusOK {
		t.Fatalf("repeat POST /plan = %d, want 200", code)
	}
	hit := decodePlan(t, second)
	if !hit.Cached {
		t.Fatal("repeat request not served from cache")
	}
	if fmt.Sprint(hit.Strategies) != fmt.Sprint(fresh.Strategies) {
		t.Fatalf("cached strategies differ from fresh:\nfresh: %v\ncached: %v", fresh.Strategies, hit.Strategies)
	}
	if s.hits.Load() != 1 || s.misses.Load() != 1 {
		t.Fatalf("cache counters hits=%d misses=%d, want 1/1", s.hits.Load(), s.misses.Load())
	}
}

// TestPanicIsolation checks the acceptance scenario: an injected worker
// panic turns into a 500 on that request alone, and the daemon keeps
// serving — the next request (same body) succeeds.
func TestPanicIsolation(t *testing.T) {
	s := NewServer(Config{})
	realPlan := s.planFn
	var inject atomic.Bool
	s.planFn = func(ctx context.Context, sys *p2.System, req p2.Request) (*p2.PlanResult, error) {
		if inject.Load() {
			panic("injected worker crash")
		}
		return realPlan(ctx, sys, req)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	inject.Store(true)
	code, data := postPlan(t, ts.URL, fig2aBody)
	if code != http.StatusInternalServerError {
		t.Fatalf("panicking request = %d, want 500\nbody: %s", code, data)
	}
	if !strings.Contains(string(data), "injected worker crash") {
		t.Fatalf("500 body does not name the panic: %s", data)
	}

	inject.Store(false)
	code, data = postPlan(t, ts.URL, fig2aBody)
	if code != http.StatusOK {
		t.Fatalf("request after panic = %d, want 200 (daemon should keep serving)\nbody: %s", code, data)
	}
	if resp := decodePlan(t, data); len(resp.Strategies) == 0 {
		t.Fatal("request after panic returned no strategies")
	}
	if s.panics.Load() != 1 {
		t.Fatalf("panic counter = %d, want 1", s.panics.Load())
	}
}

// TestPartialNotCached checks that a partial (anytime) result is served
// with Partial set but never enters the cache: the repeat request
// recomputes.
func TestPartialNotCached(t *testing.T) {
	full, err := p2.Plan(p2.Fig2aSystem(), p2.Request{Axes: []int{16}, ReduceAxes: []int{0}, TopK: 5})
	if err != nil {
		t.Fatalf("library Plan: %v", err)
	}
	s := NewServer(Config{})
	var calls atomic.Int64
	s.planFn = func(ctx context.Context, sys *p2.System, req p2.Request) (*p2.PlanResult, error) {
		calls.Add(1)
		partial := *full
		partial.Partial = true
		return &partial, nil
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	for i := 0; i < 2; i++ {
		code, data := postPlan(t, ts.URL, fig2aBody)
		if code != http.StatusOK {
			t.Fatalf("request %d = %d, want 200\nbody: %s", i, code, data)
		}
		resp := decodePlan(t, data)
		if !resp.Partial || resp.Cached {
			t.Fatalf("request %d: partial=%v cached=%v, want true/false", i, resp.Partial, resp.Cached)
		}
	}
	if calls.Load() != 2 {
		t.Fatalf("planFn ran %d times, want 2 (partial results must not be cached)", calls.Load())
	}
	if s.partials.Load() != 2 {
		t.Fatalf("partial counter = %d, want 2", s.partials.Load())
	}
}

// TestDeadlineBeforeFirstCandidate checks the 504 path: a deadline that
// expires before anything is scored surfaces the context error.
func TestDeadlineBeforeFirstCandidate(t *testing.T) {
	s := NewServer(Config{})
	s.planFn = func(ctx context.Context, sys *p2.System, req p2.Request) (*p2.PlanResult, error) {
		<-ctx.Done()
		return nil, ctx.Err()
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	body := `{"system": "fig2a", "axes": [16], "timeout_ms": 30}`
	code, data := postPlan(t, ts.URL, body)
	if code != http.StatusGatewayTimeout {
		t.Fatalf("deadlined request = %d, want 504\nbody: %s", code, data)
	}
}

// TestLoadShedding checks that requests beyond MaxInFlight are shed with
// 429 + Retry-After instead of queueing.
func TestLoadShedding(t *testing.T) {
	s := NewServer(Config{MaxInFlight: 1})
	block, entered := make(chan struct{}), make(chan struct{})
	s.planFn = func(ctx context.Context, sys *p2.System, req p2.Request) (*p2.PlanResult, error) {
		close(entered)
		<-block
		return nil, context.Canceled
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	done := make(chan struct{})
	go func() {
		defer close(done)
		postPlan(t, ts.URL, fig2aBody)
	}()
	<-entered

	// A different request (distinct cache key, so it cannot coalesce)
	// finds the only slot taken.
	resp, err := http.Post(ts.URL+"/plan", "application/json",
		strings.NewReader(`{"system": "fig2a", "axes": [16], "topk": 1}`))
	if err != nil {
		t.Fatalf("POST /plan: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("request over capacity = %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 response missing Retry-After")
	}
	close(block)
	<-done
	if s.shed.Load() != 1 {
		t.Fatalf("shed counter = %d, want 1", s.shed.Load())
	}
}

// TestSingleFlight checks that concurrent identical requests coalesce
// onto one computation and all receive its result.
func TestSingleFlight(t *testing.T) {
	s := NewServer(Config{CacheSize: -1}) // no cache: coalescing must do the sharing
	realPlan := s.planFn
	var calls atomic.Int64
	block, entered := make(chan struct{}), make(chan struct{})
	s.planFn = func(ctx context.Context, sys *p2.System, req p2.Request) (*p2.PlanResult, error) {
		calls.Add(1)
		close(entered)
		<-block
		return realPlan(ctx, sys, req)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	codes := make(chan int, 2)
	go func() {
		code, _ := postPlan(t, ts.URL, fig2aBody)
		codes <- code
	}()
	<-entered // the leader holds the flight; the follower must join it
	go func() {
		code, _ := postPlan(t, ts.URL, fig2aBody)
		codes <- code
	}()
	// Give the follower time to reach the flight map before releasing.
	time.Sleep(50 * time.Millisecond)
	close(block)
	for i := 0; i < 2; i++ {
		if code := <-codes; code != http.StatusOK {
			t.Fatalf("coalesced request = %d, want 200", code)
		}
	}
	if calls.Load() != 1 {
		t.Fatalf("planFn ran %d times for identical concurrent requests, want 1", calls.Load())
	}
}

// TestNeverCompletesSanitized checks the wire encoding of +Inf times: a
// down link makes every cross-node strategy infinite, which JSON cannot
// carry — the response must use -1 + never_completes instead.
func TestNeverCompletesSanitized(t *testing.T) {
	ts := httptest.NewServer(NewServer(Config{}).Handler())
	defer ts.Close()

	body := `{"system": "a100", "nodes": 2, "faults": "node:1:down", "axes": [32], "topk": 3}`
	code, data := postPlan(t, ts.URL, body)
	if code != http.StatusOK {
		t.Fatalf("POST /plan = %d, want 200\nbody: %s", code, data)
	}
	resp := decodePlan(t, data)
	sanitized := 0
	for _, st := range resp.Strategies {
		if st.NeverCompletes {
			if st.PredictedSec != -1 {
				t.Fatalf("never_completes strategy has predicted_s %g, want -1", st.PredictedSec)
			}
			sanitized++
		}
	}
	if sanitized == 0 {
		t.Fatal("no never_completes strategies: a 32-device reduction with node 1 down must cross the down link")
	}
}

// TestBadRequests table-drives the client-error paths.
func TestBadRequests(t *testing.T) {
	ts := httptest.NewServer(NewServer(Config{}).Handler())
	defer ts.Close()

	cases := []struct {
		name, body string
		want       int
	}{
		{"malformed JSON", `{"system": `, http.StatusBadRequest},
		{"missing system", `{"axes": [16]}`, http.StatusBadRequest},
		{"unknown system", `{"system": "tpu", "axes": [16]}`, http.StatusBadRequest},
		{"missing axes", `{"system": "fig2a"}`, http.StatusBadRequest},
		{"unknown algo", `{"system": "fig2a", "axes": [16], "algo": "warp"}`, http.StatusBadRequest},
		{"unknown measure", `{"system": "fig2a", "axes": [16], "measure": "always"}`, http.StatusBadRequest},
		{"bad faults", `{"system": "fig2a", "axes": [16], "faults": "gpu:99"}`, http.StatusBadRequest},
		{"axes do not cover devices", `{"system": "fig2a", "axes": [3]}`, http.StatusBadRequest},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			code, data := postPlan(t, ts.URL, tc.body)
			if code != tc.want {
				t.Fatalf("POST /plan = %d, want %d\nbody: %s", code, tc.want, data)
			}
			var ae apiError
			if err := json.Unmarshal(data, &ae); err != nil || ae.Error == "" {
				t.Fatalf("error response is not {\"error\": ...}: %s", data)
			}
		})
	}

	resp, err := http.Get(ts.URL + "/plan")
	if err != nil {
		t.Fatalf("GET /plan: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /plan = %d, want 405", resp.StatusCode)
	}
}

// TestHealthzAndStatz checks the probes: liveness text and the counter
// payload after a hit/miss pair.
func TestHealthzAndStatz(t *testing.T) {
	ts := httptest.NewServer(NewServer(Config{}).Handler())
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatalf("GET /healthz: %v", err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(body), "ok") {
		t.Fatalf("GET /healthz = %d %q, want 200 ok", resp.StatusCode, body)
	}

	postPlan(t, ts.URL, fig2aBody)
	postPlan(t, ts.URL, fig2aBody)
	resp, err = http.Get(ts.URL + "/statz")
	if err != nil {
		t.Fatalf("GET /statz: %v", err)
	}
	defer resp.Body.Close()
	var st Statz
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatalf("decoding /statz: %v", err)
	}
	if st.Requests != 2 || st.CacheHits != 1 || st.CacheMisses != 1 {
		t.Fatalf("statz requests=%d hits=%d misses=%d, want 2/1/1", st.Requests, st.CacheHits, st.CacheMisses)
	}
	if st.CacheHitRate != 0.5 {
		t.Fatalf("statz cache_hit_rate = %g, want 0.5", st.CacheHitRate)
	}
	if st.Latency.Count != 2 || st.Latency.P50 < 0 {
		t.Fatalf("statz latency %+v, want count 2 and non-negative percentiles", st.Latency)
	}
}

// TestCacheEviction checks FIFO eviction at CacheSize.
func TestCacheEviction(t *testing.T) {
	s := NewServer(Config{CacheSize: 2})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	bodies := []string{
		`{"system": "fig2a", "axes": [16], "topk": 1}`,
		`{"system": "fig2a", "axes": [16], "topk": 2}`,
		`{"system": "fig2a", "axes": [16], "topk": 3}`,
	}
	for _, b := range bodies {
		postPlan(t, ts.URL, b)
	}
	s.mu.Lock()
	entries := len(s.cache)
	s.mu.Unlock()
	if entries != 2 {
		t.Fatalf("cache holds %d entries after 3 distinct requests with CacheSize 2, want 2", entries)
	}
	// The oldest request was evicted: repeating it misses.
	misses := s.misses.Load()
	code, _ := postPlan(t, ts.URL, bodies[0])
	if code != http.StatusOK {
		t.Fatalf("repeat of evicted request = %d, want 200", code)
	}
	if s.misses.Load() != misses+1 {
		t.Fatal("repeat of evicted request did not miss the cache")
	}
}

// syncBuffer is a mutex-guarded bytes.Buffer for the drain log.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

// TestGracefulDrain runs the real listener: requests succeed while
// serving, cancelling the context drains and ListenAndServe returns nil
// having logged the drain progression.
func TestGracefulDrain(t *testing.T) {
	s := NewServer(Config{DrainTimeout: 2 * time.Second})
	logw := &syncBuffer{}
	ctx, cancel := context.WithCancel(context.Background())
	served := make(chan error, 1)
	go func() { served <- s.ListenAndServe(ctx, "127.0.0.1:0", logw) }()

	// The listening line carries the resolved address.
	var addr string
	for deadline := time.Now().Add(5 * time.Second); time.Now().Before(deadline); {
		if out := logw.String(); strings.Contains(out, "listening on ") {
			line := out[strings.Index(out, "listening on ")+len("listening on "):]
			addr = strings.TrimSpace(strings.SplitN(line, "\n", 2)[0])
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if addr == "" {
		t.Fatalf("no listening line in log: %q", logw.String())
	}

	code, _ := postPlan(t, "http://"+addr, fig2aBody)
	if code != http.StatusOK {
		t.Fatalf("POST /plan on live listener = %d, want 200", code)
	}

	cancel()
	select {
	case err := <-served:
		if err != nil {
			t.Fatalf("ListenAndServe after drain: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("ListenAndServe did not return within the drain timeout")
	}
	out := logw.String()
	if !strings.Contains(out, "draining") || !strings.Contains(out, "drained") {
		t.Fatalf("drain log missing progression lines: %q", out)
	}
}
