package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"p2"
)

// postPlan sends one /plan request and decodes the response body.
func postPlan(t *testing.T, url, body string) (int, []byte) {
	t.Helper()
	resp, err := http.Post(url+"/plan", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("POST /plan: %v", err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("reading /plan response: %v", err)
	}
	return resp.StatusCode, data
}

// decodePlan parses a 200 /plan body.
func decodePlan(t *testing.T, data []byte) *PlanResponse {
	t.Helper()
	var pr PlanResponse
	if err := json.Unmarshal(data, &pr); err != nil {
		t.Fatalf("decoding /plan response: %v\nbody: %s", err, data)
	}
	return &pr
}

const fig2aBody = `{"system": "fig2a", "axes": [16], "reduce": [0], "topk": 5}`

// TestPlanEndpoint checks that an undeadlined /plan response is exactly
// the library's ranking: same strategies, same order, same predictions.
func TestPlanEndpoint(t *testing.T) {
	ts := httptest.NewServer(NewServer(Config{}).Handler())
	defer ts.Close()

	code, data := postPlan(t, ts.URL, fig2aBody)
	if code != http.StatusOK {
		t.Fatalf("POST /plan = %d, want 200\nbody: %s", code, data)
	}
	got := decodePlan(t, data)
	if got.Partial || got.Cached {
		t.Fatalf("fresh undeadlined response: partial=%v cached=%v, want false/false", got.Partial, got.Cached)
	}

	want, err := p2.Plan(p2.Fig2aSystem(), p2.Request{Axes: []int{16}, ReduceAxes: []int{0}, TopK: 5})
	if err != nil {
		t.Fatalf("library Plan: %v", err)
	}
	if len(got.Strategies) != len(want.Strategies) {
		t.Fatalf("served %d strategies, library ranked %d", len(got.Strategies), len(want.Strategies))
	}
	for i, st := range want.Strategies {
		g := got.Strategies[i]
		if g.Matrix != st.Matrix.String() || g.Program != st.Program.String() || g.PredictedSec != st.Predicted {
			t.Errorf("rank %d: served (%s, %s, %g), library (%s, %s, %g)",
				i, g.Matrix, g.Program, g.PredictedSec, st.Matrix, st.Program, st.Predicted)
		}
	}
	if got.Stats != want.Stats {
		t.Errorf("served stats %+v, library stats %+v", got.Stats, want.Stats)
	}
}

// TestCacheHit checks that a repeated request is served from the cache,
// marked as such, and identical to the fresh response.
func TestCacheHit(t *testing.T) {
	s := NewServer(Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	_, first := postPlan(t, ts.URL, fig2aBody)
	fresh := decodePlan(t, first)
	code, second := postPlan(t, ts.URL, fig2aBody)
	if code != http.StatusOK {
		t.Fatalf("repeat POST /plan = %d, want 200", code)
	}
	hit := decodePlan(t, second)
	if !hit.Cached {
		t.Fatal("repeat request not served from cache")
	}
	if fmt.Sprint(hit.Strategies) != fmt.Sprint(fresh.Strategies) {
		t.Fatalf("cached strategies differ from fresh:\nfresh: %v\ncached: %v", fresh.Strategies, hit.Strategies)
	}
	if s.hits.Load() != 1 || s.misses.Load() != 1 {
		t.Fatalf("cache counters hits=%d misses=%d, want 1/1", s.hits.Load(), s.misses.Load())
	}
}

// TestPanicIsolation checks the acceptance scenario: an injected worker
// panic turns into a 500 on that request alone, and the daemon keeps
// serving — the next request (same body) succeeds.
func TestPanicIsolation(t *testing.T) {
	s := NewServer(Config{})
	realPlan := s.planFn
	var inject atomic.Bool
	s.planFn = func(ctx context.Context, sys *p2.System, req p2.Request) (*p2.PlanResult, error) {
		if inject.Load() {
			panic("injected worker crash")
		}
		return realPlan(ctx, sys, req)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	inject.Store(true)
	code, data := postPlan(t, ts.URL, fig2aBody)
	if code != http.StatusInternalServerError {
		t.Fatalf("panicking request = %d, want 500\nbody: %s", code, data)
	}
	if !strings.Contains(string(data), "injected worker crash") {
		t.Fatalf("500 body does not name the panic: %s", data)
	}

	inject.Store(false)
	code, data = postPlan(t, ts.URL, fig2aBody)
	if code != http.StatusOK {
		t.Fatalf("request after panic = %d, want 200 (daemon should keep serving)\nbody: %s", code, data)
	}
	if resp := decodePlan(t, data); len(resp.Strategies) == 0 {
		t.Fatal("request after panic returned no strategies")
	}
	if s.panics.Load() != 1 {
		t.Fatalf("panic counter = %d, want 1", s.panics.Load())
	}
}

// TestPartialNotCached checks that a partial (anytime) result is served
// with Partial set but never enters the cache: the repeat request
// recomputes.
func TestPartialNotCached(t *testing.T) {
	full, err := p2.Plan(p2.Fig2aSystem(), p2.Request{Axes: []int{16}, ReduceAxes: []int{0}, TopK: 5})
	if err != nil {
		t.Fatalf("library Plan: %v", err)
	}
	s := NewServer(Config{})
	var calls atomic.Int64
	s.planFn = func(ctx context.Context, sys *p2.System, req p2.Request) (*p2.PlanResult, error) {
		calls.Add(1)
		partial := *full
		partial.Partial = true
		return &partial, nil
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	for i := 0; i < 2; i++ {
		code, data := postPlan(t, ts.URL, fig2aBody)
		if code != http.StatusOK {
			t.Fatalf("request %d = %d, want 200\nbody: %s", i, code, data)
		}
		resp := decodePlan(t, data)
		if !resp.Partial || resp.Cached {
			t.Fatalf("request %d: partial=%v cached=%v, want true/false", i, resp.Partial, resp.Cached)
		}
	}
	if calls.Load() != 2 {
		t.Fatalf("planFn ran %d times, want 2 (partial results must not be cached)", calls.Load())
	}
	if s.partials.Load() != 2 {
		t.Fatalf("partial counter = %d, want 2", s.partials.Load())
	}
}

// TestDeadlineBeforeFirstCandidate checks the 504 path: a deadline that
// expires before anything is scored surfaces the context error.
func TestDeadlineBeforeFirstCandidate(t *testing.T) {
	s := NewServer(Config{})
	s.planFn = func(ctx context.Context, sys *p2.System, req p2.Request) (*p2.PlanResult, error) {
		<-ctx.Done()
		return nil, ctx.Err()
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	body := `{"system": "fig2a", "axes": [16], "timeout_ms": 30}`
	code, data := postPlan(t, ts.URL, body)
	if code != http.StatusGatewayTimeout {
		t.Fatalf("deadlined request = %d, want 504\nbody: %s", code, data)
	}
}

// TestLoadShedding checks that requests beyond MaxInFlight are shed with
// 429 + Retry-After instead of queueing.
func TestLoadShedding(t *testing.T) {
	s := NewServer(Config{MaxInFlight: 1})
	block, entered := make(chan struct{}), make(chan struct{})
	s.planFn = func(ctx context.Context, sys *p2.System, req p2.Request) (*p2.PlanResult, error) {
		close(entered)
		<-block
		return nil, context.Canceled
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	done := make(chan struct{})
	go func() {
		defer close(done)
		postPlan(t, ts.URL, fig2aBody)
	}()
	<-entered

	// A different request (distinct cache key, so it cannot coalesce)
	// finds the only slot taken.
	resp, err := http.Post(ts.URL+"/plan", "application/json",
		strings.NewReader(`{"system": "fig2a", "axes": [16], "topk": 1}`))
	if err != nil {
		t.Fatalf("POST /plan: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("request over capacity = %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 response missing Retry-After")
	}
	close(block)
	<-done
	if s.shed.Load() != 1 {
		t.Fatalf("shed counter = %d, want 1", s.shed.Load())
	}
}

// TestSingleFlight checks that concurrent identical requests coalesce
// onto one computation and all receive its result.
func TestSingleFlight(t *testing.T) {
	s := NewServer(Config{CacheSize: -1}) // no cache: coalescing must do the sharing
	realPlan := s.planFn
	var calls atomic.Int64
	block, entered := make(chan struct{}), make(chan struct{})
	s.planFn = func(ctx context.Context, sys *p2.System, req p2.Request) (*p2.PlanResult, error) {
		calls.Add(1)
		close(entered)
		<-block
		return realPlan(ctx, sys, req)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	codes := make(chan int, 2)
	go func() {
		code, _ := postPlan(t, ts.URL, fig2aBody)
		codes <- code
	}()
	<-entered // the leader holds the flight; the follower must join it
	go func() {
		code, _ := postPlan(t, ts.URL, fig2aBody)
		codes <- code
	}()
	// Give the follower time to reach the flight map before releasing.
	time.Sleep(50 * time.Millisecond)
	close(block)
	for i := 0; i < 2; i++ {
		if code := <-codes; code != http.StatusOK {
			t.Fatalf("coalesced request = %d, want 200", code)
		}
	}
	if calls.Load() != 1 {
		t.Fatalf("planFn ran %d times for identical concurrent requests, want 1", calls.Load())
	}
}

// TestNeverCompletesSanitized checks the wire encoding of +Inf times: a
// down link makes every cross-node strategy infinite, which JSON cannot
// carry — the response must use -1 + never_completes instead.
func TestNeverCompletesSanitized(t *testing.T) {
	ts := httptest.NewServer(NewServer(Config{}).Handler())
	defer ts.Close()

	body := `{"system": "a100", "nodes": 2, "faults": "node:1:down", "axes": [32], "topk": 3}`
	code, data := postPlan(t, ts.URL, body)
	if code != http.StatusOK {
		t.Fatalf("POST /plan = %d, want 200\nbody: %s", code, data)
	}
	resp := decodePlan(t, data)
	sanitized := 0
	for _, st := range resp.Strategies {
		if st.NeverCompletes {
			if st.PredictedSec != -1 {
				t.Fatalf("never_completes strategy has predicted_s %g, want -1", st.PredictedSec)
			}
			sanitized++
		}
	}
	if sanitized == 0 {
		t.Fatal("no never_completes strategies: a 32-device reduction with node 1 down must cross the down link")
	}
}

// TestBadRequests table-drives the client-error paths.
func TestBadRequests(t *testing.T) {
	ts := httptest.NewServer(NewServer(Config{}).Handler())
	defer ts.Close()

	cases := []struct {
		name, body string
		want       int
	}{
		{"malformed JSON", `{"system": `, http.StatusBadRequest},
		{"missing system", `{"axes": [16]}`, http.StatusBadRequest},
		{"unknown system", `{"system": "tpu", "axes": [16]}`, http.StatusBadRequest},
		{"missing axes", `{"system": "fig2a"}`, http.StatusBadRequest},
		{"unknown algo", `{"system": "fig2a", "axes": [16], "algo": "warp"}`, http.StatusBadRequest},
		{"unknown measure", `{"system": "fig2a", "axes": [16], "measure": "always"}`, http.StatusBadRequest},
		{"bad faults", `{"system": "fig2a", "axes": [16], "faults": "gpu:99"}`, http.StatusBadRequest},
		{"axes do not cover devices", `{"system": "fig2a", "axes": [3]}`, http.StatusBadRequest},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			code, data := postPlan(t, ts.URL, tc.body)
			if code != tc.want {
				t.Fatalf("POST /plan = %d, want %d\nbody: %s", code, tc.want, data)
			}
			var ae apiError
			if err := json.Unmarshal(data, &ae); err != nil || ae.Error == "" {
				t.Fatalf("error response is not {\"error\": ...}: %s", data)
			}
		})
	}

	resp, err := http.Get(ts.URL + "/plan")
	if err != nil {
		t.Fatalf("GET /plan: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /plan = %d, want 405", resp.StatusCode)
	}
}

// TestHealthzAndStatz checks the probes: liveness text and the counter
// payload after a hit/miss pair.
func TestHealthzAndStatz(t *testing.T) {
	ts := httptest.NewServer(NewServer(Config{}).Handler())
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatalf("GET /healthz: %v", err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(body), "ok") {
		t.Fatalf("GET /healthz = %d %q, want 200 ok", resp.StatusCode, body)
	}

	postPlan(t, ts.URL, fig2aBody)
	postPlan(t, ts.URL, fig2aBody)
	resp, err = http.Get(ts.URL + "/statz")
	if err != nil {
		t.Fatalf("GET /statz: %v", err)
	}
	defer resp.Body.Close()
	var st Statz
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatalf("decoding /statz: %v", err)
	}
	if st.Requests != 2 || st.CacheHits != 1 || st.CacheMisses != 1 {
		t.Fatalf("statz requests=%d hits=%d misses=%d, want 2/1/1", st.Requests, st.CacheHits, st.CacheMisses)
	}
	if st.CacheHitRate != 0.5 {
		t.Fatalf("statz cache_hit_rate = %g, want 0.5", st.CacheHitRate)
	}
	if st.Latency.Count != 2 || st.Latency.P50 < 0 {
		t.Fatalf("statz latency %+v, want count 2 and non-negative percentiles", st.Latency)
	}
}

// TestCacheEviction checks FIFO eviction at CacheSize.
func TestCacheEviction(t *testing.T) {
	s := NewServer(Config{CacheSize: 2})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	bodies := []string{
		`{"system": "fig2a", "axes": [16], "topk": 1}`,
		`{"system": "fig2a", "axes": [16], "topk": 2}`,
		`{"system": "fig2a", "axes": [16], "topk": 3}`,
	}
	for _, b := range bodies {
		postPlan(t, ts.URL, b)
	}
	s.mu.Lock()
	entries := len(s.cache)
	s.mu.Unlock()
	if entries != 2 {
		t.Fatalf("cache holds %d entries after 3 distinct requests with CacheSize 2, want 2", entries)
	}
	// The oldest request was evicted: repeating it misses.
	misses := s.misses.Load()
	code, _ := postPlan(t, ts.URL, bodies[0])
	if code != http.StatusOK {
		t.Fatalf("repeat of evicted request = %d, want 200", code)
	}
	if s.misses.Load() != misses+1 {
		t.Fatal("repeat of evicted request did not miss the cache")
	}
}

// syncBuffer is a mutex-guarded bytes.Buffer for the drain log.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

// TestGracefulDrain runs the real listener: requests succeed while
// serving, cancelling the context drains and ListenAndServe returns nil
// having logged the drain progression.
func TestGracefulDrain(t *testing.T) {
	s := NewServer(Config{DrainTimeout: 2 * time.Second})
	logw := &syncBuffer{}
	ctx, cancel := context.WithCancel(context.Background())
	served := make(chan error, 1)
	go func() { served <- s.ListenAndServe(ctx, "127.0.0.1:0", logw) }()

	// The listening line carries the resolved address.
	var addr string
	for deadline := time.Now().Add(5 * time.Second); time.Now().Before(deadline); {
		if out := logw.String(); strings.Contains(out, "listening on ") {
			line := out[strings.Index(out, "listening on ")+len("listening on "):]
			addr = strings.TrimSpace(strings.SplitN(line, "\n", 2)[0])
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if addr == "" {
		t.Fatalf("no listening line in log: %q", logw.String())
	}

	code, _ := postPlan(t, "http://"+addr, fig2aBody)
	if code != http.StatusOK {
		t.Fatalf("POST /plan on live listener = %d, want 200", code)
	}

	cancel()
	select {
	case err := <-served:
		if err != nil {
			t.Fatalf("ListenAndServe after drain: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("ListenAndServe did not return within the drain timeout")
	}
	out := logw.String()
	if !strings.Contains(out, "draining") || !strings.Contains(out, "drained") {
		t.Fatalf("drain log missing progression lines: %q", out)
	}
}

// TestCacheKeyNormalization table-drives the cache-key contract of
// resolve(): requests that differ only in fields the key excludes
// (timeout_ms) or in defaulted-vs-explicit spellings (nodes, reduce,
// algo, system case) must map to one key, while every field that changes
// the answer must split the key.
func TestCacheKeyNormalization(t *testing.T) {
	key := func(t *testing.T, pr PlanRequest) string {
		t.Helper()
		_, _, k, err := resolve(&pr)
		if err != nil {
			t.Fatalf("resolve(%+v): %v", pr, err)
		}
		return k
	}
	base := PlanRequest{System: "a100", Nodes: 4, Axes: []int{4, 16}, Reduce: []int{0}, TopK: 5}
	cases := []struct {
		name string
		a, b PlanRequest
		same bool
	}{
		{"timeout_ms excluded",
			base,
			PlanRequest{System: "a100", Nodes: 4, Axes: []int{4, 16}, Reduce: []int{0}, TopK: 5, TimeoutMs: 5000},
			true},
		{"nodes defaulted vs explicit",
			PlanRequest{System: "a100", Axes: []int{4, 16}, Reduce: []int{0}, TopK: 5},
			base,
			true},
		{"reduce defaulted vs explicit",
			PlanRequest{System: "a100", Nodes: 4, Axes: []int{4, 16}, TopK: 5},
			base,
			true},
		{"algo defaulted vs explicit ring, case-insensitive",
			base,
			PlanRequest{System: "a100", Nodes: 4, Axes: []int{4, 16}, Reduce: []int{0}, TopK: 5, Algo: "ring"},
			true},
		{"system name case-insensitive",
			base,
			PlanRequest{System: "A100", Nodes: 4, Axes: []int{4, 16}, Reduce: []int{0}, TopK: 5},
			true},
		{"auto is a distinct algo key",
			base,
			PlanRequest{System: "a100", Nodes: 4, Axes: []int{4, 16}, Reduce: []int{0}, TopK: 5, Algo: "auto"},
			false},
		{"bytes split the key",
			base,
			PlanRequest{System: "a100", Nodes: 4, Axes: []int{4, 16}, Reduce: []int{0}, TopK: 5, Bytes: 1e9},
			false},
		{"measure mode splits the key",
			base,
			PlanRequest{System: "a100", Nodes: 4, Axes: []int{4, 16}, Reduce: []int{0}, TopK: 5, Measure: "rerank"},
			false},
		{"reduce axis splits the key",
			base,
			PlanRequest{System: "a100", Nodes: 4, Axes: []int{4, 16}, Reduce: []int{1}, TopK: 5},
			false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			ka, kb := key(t, tc.a), key(t, tc.b)
			if tc.same && ka != kb {
				t.Errorf("keys differ:\n%q\n%q", ka, kb)
			}
			if !tc.same && ka == kb {
				t.Errorf("keys collide: %q", ka)
			}
		})
	}

	// Wire-level confirmation: a defaulted request primes the cache for
	// its explicit spelling, timeout_ms notwithstanding.
	ts := httptest.NewServer(NewServer(Config{}).Handler())
	defer ts.Close()
	code, _ := postPlan(t, ts.URL, `{"system": "fig2a", "axes": [16], "topk": 5}`)
	if code != http.StatusOK {
		t.Fatalf("priming request = %d, want 200", code)
	}
	code, data := postPlan(t, ts.URL,
		`{"system": "FIG2A", "axes": [16], "reduce": [0], "algo": "ring", "topk": 5, "timeout_ms": 5000}`)
	if code != http.StatusOK {
		t.Fatalf("equivalent request = %d, want 200", code)
	}
	if !decodePlan(t, data).Cached {
		t.Fatal("equivalent spelling of a cached request was not served from the cache")
	}
}

// TestCacheEvictionOrder pins the eviction policy as FIFO, not LRU: a
// cache hit must not refresh an entry's position, so insertion order
// alone decides the victim.
func TestCacheEvictionOrder(t *testing.T) {
	s := NewServer(Config{CacheSize: 3})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	body := func(topk int) string {
		return fmt.Sprintf(`{"system": "fig2a", "axes": [16], "topk": %d}`, topk)
	}
	for k := 1; k <= 3; k++ {
		if code, _ := postPlan(t, ts.URL, body(k)); code != http.StatusOK {
			t.Fatalf("insert topk=%d = %d, want 200", k, code)
		}
	}
	// Touch the oldest entry: under LRU this would save it; under FIFO
	// it must still be the next victim.
	code, data := postPlan(t, ts.URL, body(1))
	if code != http.StatusOK || !decodePlan(t, data).Cached {
		t.Fatalf("touch of oldest entry: code %d, cached %v, want 200 cached", code, decodePlan(t, data).Cached)
	}
	if code, _ = postPlan(t, ts.URL, body(4)); code != http.StatusOK {
		t.Fatalf("overflow insert = %d, want 200", code)
	}
	// topk=1 (inserted first) is gone despite the recent hit...
	code, data = postPlan(t, ts.URL, body(1))
	if code != http.StatusOK || decodePlan(t, data).Cached {
		t.Fatal("oldest entry survived overflow: eviction is not FIFO")
	}
	// ...while a later insert survived. The re-request above re-inserted
	// topk=1 and thereby evicted topk=2, so topk=3 is the probe.
	code, data = postPlan(t, ts.URL, body(3))
	if code != http.StatusOK || !decodePlan(t, data).Cached {
		t.Fatal("entry inserted after the FIFO victim was evicted early")
	}
}

// TestSingleFlightRace drives N identical concurrent requests through a
// planner stub that refuses to return until all N−1 followers have
// joined the flight: exactly one plan execution, N identical responses
// (modulo each request's own elapsed_ms), and the coalesced counter
// equal to N−1. Run under -race with -shuffle=on in CI, this is the
// coalescing race test.
func TestSingleFlightRace(t *testing.T) {
	const n = 8
	s := NewServer(Config{CacheSize: -1}) // no cache: coalescing must do the sharing
	realPlan := s.planFn
	var calls atomic.Int64
	entered := make(chan struct{})
	s.planFn = func(ctx context.Context, sys *p2.System, req p2.Request) (*p2.PlanResult, error) {
		calls.Add(1)
		close(entered) // second execution would close twice and panic
		for s.coalesced.Load() < n-1 {
			select {
			case <-ctx.Done():
				return nil, ctx.Err()
			case <-time.After(time.Millisecond):
			}
		}
		return realPlan(ctx, sys, req)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	type reply struct {
		code int
		body []byte
	}
	replies := make(chan reply, n)
	post := func() {
		code, data := postPlan(t, ts.URL, fig2aBody)
		replies <- reply{code, data}
	}
	go post()
	<-entered // the leader owns the flight; everyone else must follow
	var wg sync.WaitGroup
	for i := 0; i < n-1; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			post()
		}()
	}
	wg.Wait()

	var canon []byte
	for i := 0; i < n; i++ {
		r := <-replies
		if r.code != http.StatusOK {
			t.Fatalf("coalesced request = %d, want 200", r.code)
		}
		resp := decodePlan(t, r.body)
		resp.ElapsedMs = 0 // each response carries its own served latency
		norm, err := json.Marshal(resp)
		if err != nil {
			t.Fatal(err)
		}
		if canon == nil {
			canon = norm
		} else if !bytes.Equal(canon, norm) {
			t.Fatalf("coalesced responses differ:\n%s\nvs\n%s", canon, norm)
		}
	}
	if got := calls.Load(); got != 1 {
		t.Fatalf("planFn ran %d times for %d identical concurrent requests, want 1", got, n)
	}
	if got := s.coalesced.Load(); got != n-1 {
		t.Fatalf("coalesced counter = %d, want %d", got, n-1)
	}
}

// TestLatencyPercentilePin pins the /statz percentile math on known
// injected sequences: nearest-rank (sorted[⌈p/100·n⌉−1]) on a partial
// window, a full ring, and a wrapped ring that must have dropped the
// oldest sample. The full-ring p95/p99 values are exactly the ones the
// pre-fix lower-interpolation formula got wrong (972/1013).
func TestLatencyPercentilePin(t *testing.T) {
	t.Run("partial window", func(t *testing.T) {
		s := NewServer(Config{})
		for i := 1; i <= 10; i++ {
			s.observe(float64(10 * i)) // 10, 20, ..., 100
		}
		got := s.latency()
		want := LatencyStatz{Count: 10, P50: 50, P90: 90, P95: 100, P99: 100, P999: 100}
		if got != want {
			t.Fatalf("latency() = %+v, want %+v", got, want)
		}
	})
	t.Run("full ring", func(t *testing.T) {
		s := NewServer(Config{})
		for i := 1; i <= latRingSize; i++ {
			s.observe(float64(i)) // 1..1024
		}
		got := s.latency()
		want := LatencyStatz{Count: 1024, P50: 512, P90: 922, P95: 973, P99: 1014, P999: 1023}
		if got != want {
			t.Fatalf("latency() = %+v, want %+v", got, want)
		}
	})
	t.Run("wrapped ring drops oldest", func(t *testing.T) {
		s := NewServer(Config{})
		for i := 1; i <= latRingSize; i++ {
			s.observe(float64(i))
		}
		s.observe(2048) // overwrites sample 1; window is now {2..1024, 2048}
		got := s.latency()
		want := LatencyStatz{Count: 1024, P50: 513, P90: 923, P95: 974, P99: 1015, P999: 1024}
		if got != want {
			t.Fatalf("latency() = %+v, want %+v", got, want)
		}
	})
}

// TestWarm checks the warm-start hook: Warm plans each request into the
// strategy cache exactly once, skips already-cached keys, and the next
// wire request for a warmed key is a cache hit with zero misses.
func TestWarm(t *testing.T) {
	s := NewServer(Config{})
	reqs := []PlanRequest{
		{System: "fig2a", Axes: []int{16}, TopK: 5},
		{System: "fig2a", Axes: []int{4, 4}, TopK: 5},
		// Same key as the first (defaulted vs explicit spelling).
		{System: "FIG2A", Axes: []int{16}, Reduce: []int{0}, Algo: "ring", TopK: 5},
	}
	warmed, err := s.Warm(context.Background(), reqs)
	if err != nil {
		t.Fatalf("Warm: %v", err)
	}
	if warmed != 2 {
		t.Fatalf("Warm planned %d entries, want 2 (third is a duplicate key)", warmed)
	}

	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	code, data := postPlan(t, ts.URL, fig2aBody)
	if code != http.StatusOK {
		t.Fatalf("POST /plan after warm = %d, want 200", code)
	}
	if !decodePlan(t, data).Cached {
		t.Fatal("first request for a warmed key was not served from the cache")
	}
	if s.misses.Load() != 0 {
		t.Fatalf("warm-started server took %d misses on a warmed key, want 0", s.misses.Load())
	}

	// A canceled context stops the sweep with partial progress reported.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := NewServer(Config{}).Warm(ctx, reqs); err == nil {
		t.Fatal("Warm with canceled context returned nil error")
	}

	// A malformed warm request fails the sweep rather than starting a
	// daemon whose cache silently misses what the operator asked for.
	if _, err := NewServer(Config{}).Warm(context.Background(), []PlanRequest{{System: "nonesuch", Axes: []int{4}}}); err == nil {
		t.Fatal("Warm with an unresolvable request returned nil error")
	}
}
