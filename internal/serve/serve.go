// Package serve implements planning-as-a-service: an HTTP/JSON daemon
// over the p2 planning engine, with per-request deadlines, anytime
// (best-so-far) rankings, panic isolation, a single-flight strategy
// cache, bounded in-flight concurrency with load shedding, and graceful
// drain. DESIGN.md §11 states the full service and cancellation
// contract; `p2 serve` is the CLI front end.
//
// Endpoints:
//
//	POST /plan    — plan one request (JSON body, see PlanRequest)
//	GET  /healthz — liveness probe ("ok")
//	GET  /statz   — service counters and latency percentiles (JSON)
//
// The daemon is a transport wrapper around p2.Planner.PlanCtx and adds
// no nondeterminism to planning itself: an undeadlined /plan request
// returns exactly what PlanCtx returns, and the cache only ever stores
// complete (non-partial) results, so a cache hit is identical to
// recomputing. All requests share one Planner, so repeat traffic also
// hits a warm synthesis memo even on a cache miss.
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"net"
	"net/http"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"p2"
	"p2/internal/cost"
	"p2/internal/plan"
)

// Config tunes the daemon; the zero value serves with sensible defaults.
type Config struct {
	// MaxInFlight bounds concurrent /plan computations; requests beyond
	// it are shed with 429 + Retry-After rather than queued, keeping the
	// daemon responsive under overload. 0 means 2 × GOMAXPROCS.
	MaxInFlight int
	// CacheSize bounds the strategy cache (complete responses, evicted
	// FIFO). 0 means 256; negative disables caching.
	CacheSize int
	// MemoCap bounds the shared planner's synthesis memo (see
	// p2.NewPlanner). 0 means 4096; negative means unbounded.
	MemoCap int
	// DefaultTimeout is the per-request planning deadline applied when a
	// request carries no timeout_ms. 0 means no deadline.
	DefaultTimeout time.Duration
	// DrainTimeout bounds graceful shutdown: in-flight requests get this
	// long to finish once the serve context is cancelled. 0 means 5s.
	DrainTimeout time.Duration
}

// PlanRequest is the JSON body of POST /plan. System/Axes are required;
// everything else defaults exactly like the CLI planning flags (reduce
// [0], algorithm Ring, paper payload, measure off).
type PlanRequest struct {
	// System is a preset name as understood by p2.ParseSystem: "a100",
	// "v100", "fig2a" or "superpod[:PxN]"; Nodes scales the a100/v100
	// presets (0 means 4).
	System string `json:"system"`
	Nodes  int    `json:"nodes,omitempty"`
	// Faults optionally degrades the system's fabric, in the
	// topology.ParseFaults grammar (e.g. "node:0/1:bw/10").
	Faults string `json:"faults,omitempty"`
	// Axes are the parallelism axis sizes; Reduce the reduction axis
	// indices (default [0]).
	Axes   []int `json:"axes"`
	Reduce []int `json:"reduce,omitempty"`
	// Algo pins the modelled algorithm ("Ring", "Tree",
	// "HalvingDoubling", case-insensitive), or "auto" searches the
	// per-step assignment. Empty means Ring.
	Algo string `json:"algo,omitempty"`
	// Bytes, TopK and MaxProgramSize map to the p2.Request fields of the
	// same names (0 means the engine default).
	Bytes          float64 `json:"bytes,omitempty"`
	TopK           int     `json:"topk,omitempty"`
	MaxProgramSize int     `json:"max_program_size,omitempty"`
	// Measure selects measured-in-the-loop planning: "off", "rerank" or
	// "rank-all" (empty means off).
	Measure string `json:"measure,omitempty"`
	// TimeoutMs is the per-request planning deadline in milliseconds;
	// past it the response is the best-so-far ranking with "partial"
	// set. 0 falls back to the server's DefaultTimeout.
	TimeoutMs int `json:"timeout_ms,omitempty"`
}

// PlanStrategy is one ranked candidate of a /plan response.
type PlanStrategy struct {
	Matrix  string `json:"matrix"`
	Program string `json:"program"`
	Algo    string `json:"algo"`
	// PredictedSec (and MeasuredSec in measured modes) are seconds. A
	// strategy routing traffic over a down link never completes: its
	// time is -1 with NeverCompletes set, since JSON has no +Inf.
	PredictedSec   float64 `json:"predicted_s"`
	MeasuredSec    float64 `json:"measured_s,omitempty"`
	NeverCompletes bool    `json:"never_completes,omitempty"`
}

// PlanResponse is the JSON body of a successful /plan response.
type PlanResponse struct {
	// Partial marks an anytime result: the request's deadline expired
	// mid-plan and Strategies is the best-so-far ranking (every entry
	// fully scored and correctly ordered among those present, but not
	// necessarily a prefix of the complete ranking). Partial results are
	// never cached; repeating the request recomputes it.
	Partial bool `json:"partial"`
	// Cached reports that the response was served from the strategy
	// cache (always a complete result, identical to recomputing).
	Cached bool `json:"cached"`
	// ElapsedMs is this request's wall-clock service time.
	ElapsedMs  float64        `json:"elapsed_ms"`
	Strategies []PlanStrategy `json:"strategies"`
	Stats      plan.Stats     `json:"stats"`
}

// Statz is the JSON body of /statz. Every counter is cumulative since
// startup, so a load harness can difference two snapshots to account for
// exactly its own traffic (internal/load cross-checks its client-side
// counts against these deltas).
type Statz struct {
	Requests     int64   `json:"requests"`
	CacheHits    int64   `json:"cache_hits"`
	CacheMisses  int64   `json:"cache_misses"`
	CacheHitRate float64 `json:"cache_hit_rate"`
	CacheEntries int     `json:"cache_entries"`
	// Coalesced counts followers: requests that joined an identical
	// in-flight computation (single-flight) instead of planning
	// themselves. Each coalesced request is also a cache miss.
	Coalesced int64        `json:"coalesced"`
	Shed      int64        `json:"shed"`
	Panics    int64        `json:"panics"`
	Partials  int64        `json:"partials"`
	InFlight  int          `json:"in_flight"`
	Latency   LatencyStatz `json:"latency_ms"`
}

// LatencyStatz reports percentiles over the last latRingSize served
// /plan responses, in milliseconds. Percentiles are nearest-rank: p is
// the smallest window value ≥ p percent of the window (index
// ⌈p/100·n⌉−1 of the sorted window), pinned by TestLatencyPercentilePin.
type LatencyStatz struct {
	Count int     `json:"count"`
	P50   float64 `json:"p50"`
	P90   float64 `json:"p90"`
	P95   float64 `json:"p95"`
	P99   float64 `json:"p99"`
	P999  float64 `json:"p999"`
}

// latRingSize is the served-latency window /statz percentiles cover.
const latRingSize = 1024

// flight is one in-flight /plan computation: concurrent identical
// requests coalesce onto it (single-flight) and share the leader's
// outcome — including a partial or failed one; a follower that wants a
// fresh computation retries after the flight lands.
type flight struct {
	done   chan struct{}
	resp   *PlanResponse // nil unless status == 200
	status int
	errMsg string
}

// Server is the planning daemon. Construct with NewServer; serve via
// Handler (any http.Server) or ListenAndServe (graceful drain included).
type Server struct {
	cfg Config
	// planFn computes one request; it is p2.Planner.PlanCtx on the
	// shared planner, overridable by tests to inject panics and stalls.
	planFn func(ctx context.Context, sys *p2.System, req p2.Request) (*p2.PlanResult, error)
	// sem bounds in-flight computations (acquire non-blocking: full
	// means shed).
	sem chan struct{}

	mu      sync.Mutex
	cache   map[string]*PlanResponse
	order   []string // cache keys in insertion order, for FIFO eviction
	flights map[string]*flight

	requests  atomic.Int64
	hits      atomic.Int64
	misses    atomic.Int64
	coalesced atomic.Int64
	shed      atomic.Int64
	panics    atomic.Int64
	partials  atomic.Int64

	latMu sync.Mutex
	lat   [latRingSize]float64
	latN  int
}

// NewServer builds a daemon with its shared planner and normalized
// configuration.
func NewServer(cfg Config) *Server {
	if cfg.MaxInFlight <= 0 {
		cfg.MaxInFlight = 2 * runtime.GOMAXPROCS(0)
	}
	if cfg.CacheSize == 0 {
		cfg.CacheSize = 256
	}
	if cfg.MemoCap == 0 {
		cfg.MemoCap = 4096
	}
	if cfg.DrainTimeout <= 0 {
		cfg.DrainTimeout = 5 * time.Second
	}
	planner := p2.NewPlanner(cfg.MemoCap)
	return &Server{
		cfg:     cfg,
		planFn:  planner.PlanCtx,
		sem:     make(chan struct{}, cfg.MaxInFlight),
		cache:   map[string]*PlanResponse{},
		flights: map[string]*flight{},
	}
}

// Handler returns the daemon's route mux.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/plan", s.handlePlan)
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/statz", s.handleStatz)
	return mux
}

// ListenAndServe serves on addr until ctx is cancelled, then drains
// gracefully: no new connections, in-flight requests get up to
// DrainTimeout to finish. The listening line (with the resolved address,
// so ":0" callers learn their port) and the drain progress go to logw.
func (s *Server) ListenAndServe(ctx context.Context, addr string, logw io.Writer) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	fmt.Fprintf(logw, "p2 serve listening on %s\n", ln.Addr())
	hs := &http.Server{Handler: s.Handler()}
	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	fmt.Fprintf(logw, "p2 serve draining (in-flight requests get up to %s)\n", s.cfg.DrainTimeout)
	sctx, cancel := context.WithTimeout(context.Background(), s.cfg.DrainTimeout) //p2:ctx-ok drain runs after the serve ctx is already cancelled; the fresh root gives in-flight requests their bounded grace
	defer cancel()
	if err := hs.Shutdown(sctx); err != nil {
		return fmt.Errorf("serve: drain: %w", err)
	}
	fmt.Fprintf(logw, "p2 serve drained\n")
	return nil
}

// Warm plans each request on the shared planner and stores the complete
// results in the strategy cache, so the first client to ask gets a cache
// hit instead of paying a cold plan — call it before the listener
// accepts traffic (`p2 serve -warm` does, with the paper-suite catalog).
// Warming also fills the planner's synthesis memo, so even warm-set
// misses plan against shared synthesis runs. Warm responses do not touch
// the /statz request counters: the daemon's accounting covers served
// traffic only. Partial results (ctx deadline mid-warm) are not cached;
// a cancelled context stops the sweep with its error. The count of
// entries actually cached is returned either way. An invalid warm
// request is a configuration bug and fails the sweep immediately.
func (s *Server) Warm(ctx context.Context, reqs []PlanRequest) (int, error) {
	warmed := 0
	for i := range reqs {
		pr := reqs[i]
		sys, req, key, err := resolve(&pr)
		if err != nil {
			return warmed, fmt.Errorf("serve: warm request %d: %w", i, err)
		}
		if _, ok := s.cacheGet(key); ok {
			continue
		}
		res, err := s.runPlan(ctx, sys, req)
		if err != nil {
			return warmed, fmt.Errorf("serve: warm request %d: %w", i, err)
		}
		if res.Partial {
			continue
		}
		s.mu.Lock()
		s.cacheAdd(key, buildResponse(res))
		s.mu.Unlock()
		warmed++
		if err := ctx.Err(); err != nil {
			return warmed, fmt.Errorf("serve: warm: %w", err)
		}
	}
	return warmed, nil
}

// handlePlan serves POST /plan: decode → cache → coalesce/shed → plan
// under the request deadline → respond.
func (s *Server) handlePlan(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		httpError(w, http.StatusMethodNotAllowed, "POST required")
		return
	}
	s.requests.Add(1)
	start := time.Now() //p2:timing-ok served-latency reporting for /statz and elapsed_ms, never ranked
	var pr PlanRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20)).Decode(&pr); err != nil {
		httpError(w, http.StatusBadRequest, fmt.Sprintf("decoding request: %v", err))
		return
	}
	sys, req, key, err := resolve(&pr)
	if err != nil {
		httpError(w, http.StatusBadRequest, err.Error())
		return
	}

	if resp, ok := s.cacheGet(key); ok {
		s.hits.Add(1)
		resp.ElapsedMs = s.sinceMs(start)
		writeJSON(w, http.StatusOK, resp)
		s.observe(resp.ElapsedMs)
		return
	}
	s.misses.Add(1)

	ctx := r.Context()
	timeout := s.cfg.DefaultTimeout
	if pr.TimeoutMs > 0 {
		timeout = time.Duration(pr.TimeoutMs) * time.Millisecond
	}
	if timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, timeout)
		defer cancel()
	}

	s.mu.Lock()
	if f, ok := s.flights[key]; ok {
		// Follower: an identical request is already computing; share its
		// outcome rather than burn a second worker on the same answer.
		s.mu.Unlock()
		s.coalesced.Add(1)
		select {
		case <-f.done:
			s.respondFlight(w, f, start)
		case <-ctx.Done():
			w.Header().Set("Retry-After", "1")
			httpError(w, http.StatusServiceUnavailable,
				"deadline expired waiting for an identical in-flight request; retry for a fresh computation")
		}
		return
	}
	select {
	case s.sem <- struct{}{}:
	default:
		// At capacity: shed instead of queueing, so latency stays honest
		// and the client knows to back off.
		s.mu.Unlock()
		s.shed.Add(1)
		w.Header().Set("Retry-After", "1")
		httpError(w, http.StatusTooManyRequests, "server at planning capacity")
		return
	}
	f := &flight{done: make(chan struct{})}
	s.flights[key] = f
	s.mu.Unlock()

	res, perr := s.runPlan(ctx, sys, req)
	f.status, f.resp, f.errMsg = s.outcome(res, perr)

	s.mu.Lock()
	delete(s.flights, key)
	if f.status == http.StatusOK && !f.resp.Partial {
		s.cacheAdd(key, f.resp)
	}
	s.mu.Unlock()
	<-s.sem
	close(f.done)
	s.respondFlight(w, f, start)
}

// runPlan executes one planning computation with panic isolation: a
// panicking worker (surfaced by the engine as *plan.PanicError, or by a
// panic crossing planFn itself) fails this request alone instead of
// taking the daemon down.
func (s *Server) runPlan(ctx context.Context, sys *p2.System, req p2.Request) (res *p2.PlanResult, err error) {
	defer func() {
		if r := recover(); r != nil {
			s.panics.Add(1)
			err = &panicFailure{val: r}
		}
	}()
	res, err = s.planFn(ctx, sys, req)
	var pe *plan.PanicError
	if errors.As(err, &pe) {
		s.panics.Add(1)
		err = &panicFailure{val: pe.Value}
	}
	return res, err
}

// panicFailure marks a request that died to a recovered panic (mapped to
// 500, unlike client errors).
type panicFailure struct{ val any }

func (e *panicFailure) Error() string {
	return fmt.Sprintf("internal error: planning panicked: %v", e.val)
}

// outcome maps a planning result to the flight's HTTP outcome. PlanCtx
// already folds deadline expiry into the anytime contract: a partial
// ranking arrives as a normal result with Partial set; only a deadline
// that beat the first scored candidate surfaces as a context error.
func (s *Server) outcome(res *p2.PlanResult, err error) (int, *PlanResponse, string) {
	switch {
	case err == nil:
		if res.Partial {
			s.partials.Add(1)
		}
		return http.StatusOK, buildResponse(res), ""
	case errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded):
		return http.StatusGatewayTimeout, nil,
			"deadline expired before any candidate was scored; raise timeout_ms"
	default:
		var pf *panicFailure
		if errors.As(err, &pf) {
			return http.StatusInternalServerError, nil, err.Error()
		}
		return http.StatusBadRequest, nil, err.Error()
	}
}

// respondFlight writes a flight's outcome with this request's own
// elapsed time.
func (s *Server) respondFlight(w http.ResponseWriter, f *flight, start time.Time) {
	if f.status != http.StatusOK {
		httpError(w, f.status, f.errMsg)
		return
	}
	resp := *f.resp // shallow copy: Strategies/Stats are shared read-only
	resp.ElapsedMs = s.sinceMs(start)
	writeJSON(w, http.StatusOK, &resp)
	s.observe(resp.ElapsedMs)
}

// buildResponse projects a plan result to the wire shape, folding +Inf
// times (down-link routes that never complete) into -1 + never_completes
// since JSON cannot carry infinities.
func buildResponse(res *p2.PlanResult) *PlanResponse {
	resp := &PlanResponse{
		Partial:    res.Partial,
		Stats:      res.Stats,
		Strategies: make([]PlanStrategy, len(res.Strategies)),
	}
	for i, st := range res.Strategies {
		ps := PlanStrategy{
			Matrix:       st.Matrix.String(),
			Program:      st.Program.String(),
			Algo:         st.AlgoString(),
			PredictedSec: st.Predicted,
			MeasuredSec:  st.Measured,
		}
		if math.IsInf(ps.PredictedSec, 1) {
			ps.PredictedSec, ps.NeverCompletes = -1, true
		}
		if math.IsInf(ps.MeasuredSec, 1) {
			ps.MeasuredSec, ps.NeverCompletes = -1, true
		}
		resp.Strategies[i] = ps
	}
	return resp
}

// resolve validates a wire request against the shared CLI vocabulary
// (p2.ParseSystem, topology.ParseFaults, cost.ParseAlgorithm,
// p2.ParseMeasureMode) and derives the cache key from the normalized
// fields. The key deliberately excludes timeout_ms: a cached complete
// result satisfies any deadline.
func resolve(pr *PlanRequest) (*p2.System, p2.Request, string, error) {
	if pr.System == "" {
		return nil, p2.Request{}, "", fmt.Errorf(`missing "system"`)
	}
	sys, err := p2.ParseSystem(pr.System, pr.Nodes)
	if err != nil {
		return nil, p2.Request{}, "", err
	}
	if pr.Faults != "" {
		ov, err := p2.ParseFaults(sys, pr.Faults)
		if err != nil {
			return nil, p2.Request{}, "", err
		}
		if sys, err = sys.WithOverrides(ov...); err != nil {
			return nil, p2.Request{}, "", err
		}
	}
	if len(pr.Axes) == 0 {
		return nil, p2.Request{}, "", fmt.Errorf(`missing "axes"`)
	}
	reduce := pr.Reduce
	if len(reduce) == 0 {
		reduce = []int{0}
	}
	req := p2.Request{
		Axes:           pr.Axes,
		ReduceAxes:     reduce,
		Bytes:          pr.Bytes,
		TopK:           pr.TopK,
		MaxProgramSize: pr.MaxProgramSize,
	}
	algoKey := "Ring"
	switch {
	case pr.Algo == "" || strings.EqualFold(pr.Algo, "Ring"):
		req.Algo = p2.Ring
	case strings.EqualFold(pr.Algo, "auto"):
		req.Algo, req.Algos, algoKey = p2.Ring, p2.ExtendedAlgorithms, "auto"
	default:
		if req.Algo, err = cost.ParseAlgorithm(pr.Algo); err != nil {
			return nil, p2.Request{}, "", fmt.Errorf(`%w (or "auto" to search the per-step assignment)`, err)
		}
		algoKey = req.Algo.String()
	}
	if pr.Measure != "" {
		if req.Measure, err = p2.ParseMeasureMode(pr.Measure); err != nil {
			return nil, p2.Request{}, "", err
		}
	}
	nodes := pr.Nodes
	if nodes <= 0 {
		nodes = 4
	}
	key := fmt.Sprintf("%s|%d|%s|%v|%v|%s|%g|%d|%d|%s",
		strings.ToLower(pr.System), nodes, pr.Faults, pr.Axes, reduce,
		algoKey, pr.Bytes, pr.TopK, pr.MaxProgramSize, req.Measure)
	return sys, req, key, nil
}

// cacheGet returns a per-request copy of the cached response for key.
func (s *Server) cacheGet(key string) (*PlanResponse, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	c, ok := s.cache[key]
	if !ok {
		return nil, false
	}
	resp := *c // shallow copy: Strategies/Stats are shared read-only
	resp.Cached = true
	return &resp, true
}

// cacheAdd stores a complete response, evicting the oldest entry past
// CacheSize. Caller holds s.mu.
func (s *Server) cacheAdd(key string, resp *PlanResponse) {
	if s.cfg.CacheSize < 0 {
		return
	}
	if _, ok := s.cache[key]; ok {
		return
	}
	s.cache[key] = resp
	s.order = append(s.order, key)
	for len(s.order) > s.cfg.CacheSize {
		delete(s.cache, s.order[0])
		s.order = s.order[1:]
	}
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	io.WriteString(w, "ok\n")
}

func (s *Server) handleStatz(w http.ResponseWriter, r *http.Request) {
	hits, misses := s.hits.Load(), s.misses.Load()
	st := Statz{
		Requests:    s.requests.Load(),
		CacheHits:   hits,
		CacheMisses: misses,
		Coalesced:   s.coalesced.Load(),
		Shed:        s.shed.Load(),
		Panics:      s.panics.Load(),
		Partials:    s.partials.Load(),
		InFlight:    len(s.sem),
	}
	if hits+misses > 0 {
		st.CacheHitRate = float64(hits) / float64(hits+misses)
	}
	s.mu.Lock()
	st.CacheEntries = len(s.cache)
	s.mu.Unlock()
	st.Latency = s.latency()
	writeJSON(w, http.StatusOK, &st)
}

// sinceMs converts a served request's start time to elapsed
// milliseconds.
func (s *Server) sinceMs(start time.Time) float64 {
	return float64(time.Since(start)) / float64(time.Millisecond) //p2:timing-ok served-latency reporting for /statz and elapsed_ms, never ranked
}

// observe records one served latency into the /statz percentile window.
func (s *Server) observe(ms float64) {
	s.latMu.Lock()
	s.lat[s.latN%latRingSize] = ms
	s.latN++
	s.latMu.Unlock()
}

// latency snapshots the served-latency window and computes percentiles.
func (s *Server) latency() LatencyStatz {
	s.latMu.Lock()
	n := s.latN
	if n > latRingSize {
		n = latRingSize
	}
	win := make([]float64, n)
	copy(win, s.lat[:n])
	s.latMu.Unlock()
	if n == 0 {
		return LatencyStatz{}
	}
	sort.Float64s(win)
	pct := func(p float64) float64 { return Percentile(win, p) }
	return LatencyStatz{Count: n, P50: pct(50), P90: pct(90), P95: pct(95), P99: pct(99), P999: pct(99.9)}
}

// Percentile returns the nearest-rank p-th percentile of a sorted,
// non-empty sample: the smallest value v such that at least p percent of
// the sample is ≤ v, i.e. sorted[⌈p/100·n⌉−1]. The previous
// lower-interpolation form ((n−1)·p/100, truncated) sat one rank low on
// a full window — p99 of 1..1024 read 1013 instead of 1014 — which
// TestLatencyPercentilePin now pins closed. Shared with the load harness
// so client- and server-side percentiles agree by construction.
func Percentile(sorted []float64, p float64) float64 {
	idx := int(math.Ceil(p/100*float64(len(sorted)))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}

// apiError is the JSON body of every non-200 response.
type apiError struct {
	Error string `json:"error"`
}

func httpError(w http.ResponseWriter, status int, msg string) {
	writeJSON(w, status, apiError{Error: msg})
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}
