package eval

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"sync"

	"p2/internal/cost"
	"p2/internal/placement"
	"p2/internal/topology"
)

// Table is a rendered experiment artifact: a caption, a header row, and
// data rows, serializable as markdown or TSV.
type Table struct {
	Caption string
	Header  []string
	Rows    [][]string
}

// Markdown renders the table as GitHub-flavored markdown.
func (t *Table) Markdown() string {
	var b strings.Builder
	if t.Caption != "" {
		fmt.Fprintf(&b, "**%s**\n\n", t.Caption)
	}
	b.WriteString("| " + strings.Join(t.Header, " | ") + " |\n")
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = "---"
	}
	b.WriteString("| " + strings.Join(sep, " | ") + " |\n")
	for _, r := range t.Rows {
		b.WriteString("| " + strings.Join(r, " | ") + " |\n")
	}
	return b.String()
}

// TSV renders the table as tab-separated values (no caption).
func (t *Table) TSV() string {
	var b strings.Builder
	b.WriteString(strings.Join(t.Header, "\t") + "\n")
	for _, r := range t.Rows {
		b.WriteString(strings.Join(r, "\t") + "\n")
	}
	return b.String()
}

func secs(v float64) string {
	switch {
	case v >= 10:
		return fmt.Sprintf("%.2f", v)
	case v >= 0.095:
		return fmt.Sprintf("%.2f", v)
	default:
		return fmt.Sprintf("%.3f", v)
	}
}

// BuildTable3 reproduces Table 3: AllReduce time per parallelism matrix
// for ring and tree, reducing on each axis of two-axis configurations.
func BuildTable3(sys *topology.System, axesList [][]int) (*Table, error) {
	t := &Table{
		Caption: fmt.Sprintf("Table 3 — AllReduce reduction time in seconds on %s (%s)",
			sys.Name, sys),
		Header: []string{"Parallelism axes", "Parallelism matrix",
			"Reduce axis 0 / Ring", "Reduce axis 0 / Tree",
			"Reduce axis 1 / Ring", "Reduce axis 1 / Tree"},
	}
	for _, axes := range axesList {
		matrices, err := placement.Enumerate(sys.Hierarchy(), axes)
		if err != nil {
			return nil, err
		}
		for _, m := range matrices {
			row := []string{fmt.Sprintf("%v", axes), m.String()}
			for _, red := range [][]int{{0}, {1}} {
				if red[0] >= len(axes) {
					row = append(row, "-", "-")
					continue
				}
				for _, algo := range []cost.Algorithm{cost.Ring, cost.Tree} {
					cfg := Config{Sys: sys, Axes: axes, ReduceAxes: red, Algo: algo}
					_, meas, err := MeasureBaseline(cfg, m)
					if err != nil {
						return nil, err
					}
					row = append(row, secs(meas))
				}
			}
			t.Rows = append(t.Rows, row)
		}
	}
	return t, nil
}

// BuildTable4 reproduces Table 4: for every sweep, the synthesis time,
// outperforming/total counts, and per matrix the AllReduce time, the
// optimal synthesized program's time and the speedup.
func BuildTable4(results []*Result) *Table {
	t := &Table{
		Caption: "Table 4 — AllReduce vs. synthesized optimal reduction strategy (measured seconds)",
		Header: []string{"System", "Algo", "Axes", "Reduce", "Synthesis (s)",
			"Outperform/Total", "Matrix", "AllReduce", "Optimal", "Speedup",
			"Optimal program", "Optimal algo"},
	}
	for _, r := range results {
		first := true
		for _, mr := range r.Matrices {
			best := mr.Programs[mr.BestMeasured()]
			lead := []string{"", "", "", "", "", ""}
			if first {
				lead = []string{
					r.Config.Sys.Name,
					r.Config.algoLabel(),
					fmt.Sprintf("%v", r.Config.Axes),
					fmt.Sprintf("%v", r.Config.ReduceAxes),
					fmt.Sprintf("%.3f", r.SynthesisTime.Seconds()),
					fmt.Sprintf("%d/%d", r.TotalOutperforming(), r.TotalPrograms()),
				}
				first = false
			}
			t.Rows = append(t.Rows, append(lead,
				mr.Matrix.String(),
				secs(mr.Baseline().Measured),
				secs(best.Measured),
				fmt.Sprintf("%.2f×", mr.Speedup()),
				best.Program.String(),
				best.AlgoString(),
			))
		}
	}
	return t
}

// RunAutoComparison executes the fixed-Ring, fixed-Tree and auto
// (cfg.Algos, default ExtendedAlgorithms) sweeps of one config, for
// comparing the searched per-step algorithm assignment against the
// paper's pinned NCCL_ALGO settings.
func RunAutoComparison(cfg Config) (ring, tree, auto *Result, err error) {
	return RunAutoComparisonCtx(context.Background(), cfg) //p2:ctx-ok documented no-deadline compatibility shim wrapping RunAutoComparisonCtx
}

// RunAutoComparisonCtx is RunAutoComparison under a context; cancellation
// aborts all three sweeps with ctx.Err().
func RunAutoComparisonCtx(ctx context.Context, cfg Config) (ring, tree, auto *Result, err error) {
	fixedRing, fixedTree := cfg, cfg
	fixedRing.Algos, fixedRing.Algo = nil, cost.Ring
	fixedTree.Algos, fixedTree.Algo = nil, cost.Tree
	if len(cfg.Algos) < 2 {
		cfg.Algos = cost.ExtendedAlgorithms
	}
	// The three sweeps redo the same synthesis and lowering, differing
	// only in scoring; run them concurrently so the shared portion costs
	// wall-clock once.
	results := make([]*Result, 3)
	errs := make([]error, 3)
	var wg sync.WaitGroup
	for i, c := range []Config{fixedRing, fixedTree, cfg} {
		wg.Add(1)
		go func(i int, c Config) {
			defer wg.Done()
			results[i], errs[i] = RunCtx(ctx, c)
		}(i, c)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, nil, nil, err
		}
	}
	return results[0], results[1], results[2], nil
}

// BuildAutoComparison tabulates the three sweeps of RunAutoComparison per
// matrix: the measured-best strategy under pinned Ring, pinned Tree and
// the auto search, the auto winner's assignment, and its measured speedup
// over the fixed-Ring best. Rows where auto strictly beats both pinned
// algorithms are marked "auto".
func BuildAutoComparison(ring, tree, auto *Result) *Table {
	t := &Table{
		Caption: fmt.Sprintf("Algorithm search — fixed NCCL_ALGO vs. per-step auto on %s (best measured seconds per matrix)",
			auto.Config),
		Header: []string{"Matrix", "Ring", "Tree", "Auto", "Auto assignment",
			"vs Ring", "Winner"},
	}
	for mi, amr := range auto.Matrices {
		rBest := ring.Matrices[mi].Programs[ring.Matrices[mi].BestMeasured()].Measured
		tBest := tree.Matrices[mi].Programs[tree.Matrices[mi].BestMeasured()].Measured
		aProg := amr.Programs[amr.BestMeasured()]
		winner := "Ring"
		switch {
		case aProg.Measured < rBest && aProg.Measured < tBest:
			winner = "auto"
		case tBest < rBest:
			winner = "Tree"
		}
		t.Rows = append(t.Rows, []string{
			amr.Matrix.String(),
			secs(rBest),
			secs(tBest),
			secs(aProg.Measured),
			aProg.AlgoString(),
			fmt.Sprintf("%.2f×", rBest/aProg.Measured),
			winner,
		})
	}
	return t
}

// BuildTable5 reproduces (and extends) Table 5: top-k accuracy of the
// analytic simulator against emulator measurements, grouped by system and
// algorithm mode — pinned rows as in the paper, plus an "auto" row per
// system when auto-mode sweeps (RunSuiteAuto) are included — with the
// mean predicted and measured best times and the analytic-vs-measured
// disagreement rate (the fraction of sweeps whose predicted argmin is not
// the measured argmin, i.e. 100% − Top-1), followed by one Total row per
// algorithm mode.
func BuildTable5(results []*Result) *Table {
	ks := []int{1, 2, 3, 5, 6, 10}
	t := &Table{
		Caption: "Table 5 — analytic-simulator prediction accuracy (fraction of sweeps whose measured-best program is in the top-k predictions), with mean best-candidate times and the analytic-vs-measured disagreement rate",
		Header: []string{"System", "Algo", "Top-1", "Top-2", "Top-3", "Top-5", "Top-6", "Top-10",
			"Pred best (s)", "Meas best (s)", "Disagree", "Sweeps"},
	}
	type key struct{ sys, algo string }
	groups := map[key][]*Result{}
	var keys []key
	algoSeen := map[string]bool{}
	var algos []string
	for _, r := range results {
		k := key{r.Config.Sys.Name, r.Config.algoLabel()}
		if _, ok := groups[k]; !ok {
			keys = append(keys, k)
		}
		groups[k] = append(groups[k], r)
		if !algoSeen[k.algo] {
			algoSeen[k.algo] = true
			algos = append(algos, k.algo)
		}
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].sys != keys[j].sys {
			return keys[i].sys < keys[j].sys
		}
		return keys[i].algo < keys[j].algo
	})
	addRow := func(sys, algo string, rs []*Result) {
		acc := Accuracy(rs, ks)
		row := []string{sys, algo}
		for _, k := range ks {
			row = append(row, fmt.Sprintf("%.1f%%", 100*acc[k]))
		}
		pred, meas := 0.0, 0.0
		for _, r := range rs {
			pred += r.PredictedBest().Predicted
			meas += r.MeasuredBest().Measured
		}
		n := float64(len(rs))
		row = append(row,
			secs(pred/n),
			secs(meas/n),
			fmt.Sprintf("%.1f%%", 100*DisagreementRate(rs)),
			fmt.Sprintf("%d", len(rs)))
		t.Rows = append(t.Rows, row)
	}
	for _, k := range keys {
		addRow(k.sys, k.algo, groups[k])
	}
	sort.Strings(algos)
	for _, algo := range algos {
		var rs []*Result
		for _, r := range results {
			if r.Config.algoLabel() == algo {
				rs = append(rs, r)
			}
		}
		addRow("Total", algo, rs)
	}
	return t
}

// BuildFigure11 reproduces one panel of Figure 11: every (matrix, program)
// pair of a sweep in increasing order of measured time, with the analytic
// prediction alongside.
func BuildFigure11(r *Result) *Table {
	t := &Table{
		Caption: fmt.Sprintf("Figure 11 — simulation vs. measurement for %s (sorted by measured time)", r.Config),
		Header:  []string{"Rank", "Matrix", "Program", "Measured (s)", "Predicted (s)"},
	}
	pairs := r.Pairs()
	sort.SliceStable(pairs, func(a, b int) bool { return pairs[a].Measured < pairs[b].Measured })
	for i, p := range pairs {
		mr := r.Matrices[p.MatrixIdx]
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", i+1),
			mr.Matrix.String(),
			mr.Programs[p.ProgramIdx].Program.String(),
			secs(p.Measured),
			secs(p.Predicted),
		})
	}
	return t
}

// BuildAppendix reproduces the appendix table: for every sweep, synthesis
// and simulation wall-clock, program counts, and per matrix the AllReduce
// time, optimal time and speedup — the full-results form of Table 4.
func BuildAppendix(results []*Result) *Table {
	t := &Table{
		Caption: "Appendix A — full experiment results",
		Header: []string{"System", "Axes", "Reduce", "Algo", "Synthesis (s)",
			"Sim (s)", "Outperform/Total", "Matrix", "AllReduce", "Optimal", "Speedup"},
	}
	for _, r := range results {
		for _, mr := range r.Matrices {
			best := mr.Programs[mr.BestMeasured()]
			t.Rows = append(t.Rows, []string{
				r.Config.Sys.Name,
				fmt.Sprintf("%v", r.Config.Axes),
				fmt.Sprintf("%v", r.Config.ReduceAxes),
				r.Config.Algo.String(),
				fmt.Sprintf("%.3f", r.SynthesisTime.Seconds()),
				fmt.Sprintf("%.3f", r.SimulationTime.Seconds()),
				fmt.Sprintf("%d/%d", mr.Outperforming(), len(mr.Programs)),
				mr.Matrix.String(),
				secs(mr.Baseline().Measured),
				secs(best.Measured),
				fmt.Sprintf("%.2f×", mr.Speedup()),
			})
		}
	}
	return t
}
