package eval

import (
	"context"
	"fmt"
	"math"

	"p2/internal/cost"
	"p2/internal/placement"
	"p2/internal/plan"
	"p2/internal/topology"
)

// DegradeConfig describes one degraded-fabric comparison: the same planning
// request run twice, once on the pristine system and once with the given
// link overrides applied, to answer "how much does the fault reshuffle the
// ranking, and what does re-planning buy?".
type DegradeConfig struct {
	// Sys is the pristine system; Overrides the faults applied to its copy
	// (see topology.LinkOverride / topology.ParseFaults).
	Sys       *topology.System
	Overrides []topology.LinkOverride
	// Axes / ReduceAxes define the parallelism request as in Config.
	Axes       []int
	ReduceAxes []int
	// Algos is the planner's algorithm set (single entry pins it).
	Algos []cost.Algorithm
	// Bytes is the per-device payload; 0 means the paper default.
	Bytes float64
	// Parallelism is the planner worker count (0 = GOMAXPROCS).
	Parallelism int
}

// DegradeResult compares the pristine and degraded rankings of one request.
type DegradeResult struct {
	// Pristine and Degraded are the two systems compared.
	Pristine, Degraded *topology.System
	// Algo is the fixed algorithm of candidates without a per-step
	// assignment, for rendering.
	Algo cost.Algorithm
	// PristineRank is the full pristine ranking; DegradedAt[i] is the
	// degraded predicted time of PristineRank[i] (matched by candidate
	// identity, not rank), and DegradedRank the degraded ranking.
	PristineRank []*plan.Candidate
	DegradedAt   []float64
	DegradedRank []*plan.Candidate

	// Inversions is the Kendall-tau distance between the two rankings:
	// candidate pairs the fault reorders. MaxPairs = n(n-1)/2 is its
	// ceiling, Tau the normalized distance Inversions/MaxPairs in [0, 1].
	Inversions int
	MaxPairs   int
	Tau        float64

	// BestShifted reports whether the degraded fabric changes the winning
	// (matrix, program) candidate. StaleTime is the degraded time of the
	// pristine winner — what a plan chosen while ignoring the fault would
	// actually cost — and ReplanTime the degraded winner's time.
	// ReplanSpeedup = StaleTime/ReplanTime ≥ 1 is the payoff of
	// re-planning; +Inf when the stale plan routes traffic over a down
	// link (it would never finish) while re-planning finds a finite route.
	BestShifted   bool
	StaleTime     float64
	ReplanTime    float64
	ReplanSpeedup float64
}

// candKey identifies one candidate across the two runs: both rankings
// enumerate the same matrices in the same order and synthesize the same
// programs per matrix (pruning is disabled), so (MatrixIdx, ProgIdx) is a
// stable identity.
type candKey struct{ mi, pi int }

// RunDegrade plans the request on the pristine and the degraded system
// (full rankings, no top-K pruning, analytic mode — the comparison is about
// the cost model's ranking) and compares the outcomes.
func RunDegrade(cfg DegradeConfig) (*DegradeResult, error) {
	return RunDegradeCtx(context.Background(), cfg) //p2:ctx-ok documented no-deadline compatibility shim wrapping RunDegradeCtx
}

// RunDegradeCtx is RunDegrade under a context. Cancellation aborts the
// comparison with ctx.Err(): a ranking-shift report over a partial
// ranking would be meaningless, so there is no anytime mode here — the
// planner's best-so-far results are discarded.
func RunDegradeCtx(ctx context.Context, cfg DegradeConfig) (*DegradeResult, error) {
	if len(cfg.Overrides) == 0 {
		return nil, fmt.Errorf("eval: degrade run with no link overrides")
	}
	degraded, err := cfg.Sys.WithOverrides(cfg.Overrides...)
	if err != nil {
		return nil, err
	}
	matrices, err := placement.Enumerate(cfg.Sys.Hierarchy(), cfg.Axes)
	if err != nil {
		return nil, err
	}
	bytes := cfg.Bytes
	if bytes <= 0 {
		bytes = cost.DefaultPayload(cfg.Sys)
	}
	algo := cost.Ring
	if len(cfg.Algos) > 0 {
		algo = cfg.Algos[0]
	}
	opts := plan.Options{
		Parallelism: cfg.Parallelism,
		TopK:        0, // full ranking: ranking shift needs every candidate
		Algos:       cfg.Algos,
	}
	runOn := func(sys *topology.System) ([]*plan.Candidate, error) {
		model := &cost.Model{Sys: sys, Algo: algo, Bytes: bytes}
		cands, _, err := plan.New().RunCtx(ctx, matrices, cfg.ReduceAxes, model, opts)
		if err != nil {
			// Anytime partial rankings are useless for a shift comparison:
			// treat cancellation like any other failure.
			return nil, err
		}
		return cands, nil
	}
	pristine, err := runOn(cfg.Sys)
	if err != nil {
		return nil, err
	}
	degradedRank, err := runOn(degraded)
	if err != nil {
		return nil, err
	}
	if len(pristine) != len(degradedRank) {
		return nil, fmt.Errorf("eval: pristine run has %d candidates, degraded %d",
			len(pristine), len(degradedRank))
	}
	if len(pristine) == 0 {
		return nil, fmt.Errorf("eval: no candidates for axes %v", cfg.Axes)
	}

	byKey := make(map[candKey]*plan.Candidate, len(degradedRank))
	for _, c := range degradedRank {
		byKey[candKey{c.MatrixIdx, c.ProgIdx}] = c
	}
	res := &DegradeResult{
		Pristine:     cfg.Sys,
		Degraded:     degraded,
		Algo:         algo,
		PristineRank: pristine,
		DegradedRank: degradedRank,
		DegradedAt:   make([]float64, len(pristine)),
	}
	for i, c := range pristine {
		d, ok := byKey[candKey{c.MatrixIdx, c.ProgIdx}]
		if !ok {
			return nil, fmt.Errorf("eval: candidate (matrix %d, program %d) missing from degraded run",
				c.MatrixIdx, c.ProgIdx)
		}
		res.DegradedAt[i] = d.Predicted
	}
	// Degraded scores walked in pristine rank order: sorted means the
	// fault preserves the ranking, every out-of-order pair is a flip.
	res.Inversions = plan.CountInversions(res.DegradedAt)
	n := len(pristine)
	res.MaxPairs = n * (n - 1) / 2
	if res.MaxPairs > 0 {
		res.Tau = float64(res.Inversions) / float64(res.MaxPairs)
	}

	pb, db := pristine[0], degradedRank[0]
	res.BestShifted = pb.MatrixIdx != db.MatrixIdx || pb.ProgIdx != db.ProgIdx
	res.StaleTime = res.DegradedAt[0]
	res.ReplanTime = db.Predicted
	if res.ReplanTime > 0 {
		res.ReplanSpeedup = res.StaleTime / res.ReplanTime
	} else {
		res.ReplanSpeedup = 1
	}
	return res, nil
}

// BuildDegradeTable renders the comparison: one row per rank of the
// degraded top-k, showing where the candidate sat in the pristine ranking
// and both predicted times — the movement is the visible ranking shift.
func BuildDegradeTable(r *DegradeResult, k int) *Table {
	if k <= 0 || k > len(r.DegradedRank) {
		k = len(r.DegradedRank)
	}
	pristineRankOf := make(map[candKey]int, len(r.PristineRank))
	for i, c := range r.PristineRank {
		pristineRankOf[candKey{c.MatrixIdx, c.ProgIdx}] = i
	}
	t := &Table{
		Caption: fmt.Sprintf("Degraded ranking on %s (τ-distance %.3f, %d/%d pairs flipped)",
			r.Degraded.Name, r.Tau, r.Inversions, r.MaxPairs),
		Header: []string{"Rank", "Pristine rank", "Matrix", "Program", "Algo", "Degraded (s)", "Pristine (s)"},
	}
	for i := 0; i < k; i++ {
		c := r.DegradedRank[i]
		pr := pristineRankOf[candKey{c.MatrixIdx, c.ProgIdx}]
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", i+1),
			fmt.Sprintf("%d", pr+1),
			c.Matrix.String(),
			c.Program.String(),
			cost.FormatAlgos(r.Algo, c.StepAlgos),
			degradeSecs(c.Predicted),
			degradeSecs(r.PristineRank[pr].Predicted),
		})
	}
	return t
}

// degradeSecs renders a predicted time, spelling out the never-completes
// case a down link produces.
func degradeSecs(v float64) string {
	if math.IsInf(v, 1) {
		return "∞ (down link)"
	}
	return secs(v)
}
