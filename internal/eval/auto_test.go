package eval

import (
	"strings"
	"testing"

	"p2/internal/cost"
	"p2/internal/topology"
)

// TestAutoComparisonBeatsFixedRing is the acceptance check for the
// algorithm search: on the paper's A100 4-node [4 16] sweep, at least one
// matrix's auto (per-step searched) best strictly beats the fixed-Ring
// best on the emulator.
func TestAutoComparisonBeatsFixedRing(t *testing.T) {
	cfg := Config{Sys: topology.A100System(4), Axes: []int{4, 16}, ReduceAxes: []int{0}}
	ring, tree, auto, err := RunAutoComparison(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(auto.Matrices) != len(ring.Matrices) || len(auto.Matrices) != len(tree.Matrices) {
		t.Fatalf("sweeps disagree on matrix count: %d/%d/%d",
			len(ring.Matrices), len(tree.Matrices), len(auto.Matrices))
	}
	wins := 0
	for mi, amr := range auto.Matrices {
		rmr := ring.Matrices[mi]
		aBest := amr.Programs[amr.BestMeasured()].Measured
		rBest := rmr.Programs[rmr.BestMeasured()].Measured
		if aBest < rBest {
			wins++
		}
	}
	if wins == 0 {
		t.Error("auto search never beat fixed Ring on a100-4 [4 16]; expected ≥ 1 matrix")
	}
	table := BuildAutoComparison(ring, tree, auto)
	if len(table.Rows) != len(auto.Matrices) {
		t.Errorf("comparison table has %d rows for %d matrices", len(table.Rows), len(auto.Matrices))
	}
}

// TestAutoPredictionNeverWorseThanFixed: the per-step minimum includes
// every pinned algorithm, so the auto predicted time is a lower bound of
// each fixed sweep's prediction, program by program.
func TestAutoPredictionNeverWorseThanFixed(t *testing.T) {
	base := Config{Sys: topology.A100System(2), Axes: []int{2, 16}, ReduceAxes: []int{0}}
	autoCfg := base
	autoCfg.Algos = cost.ExtendedAlgorithms
	auto, err := Run(autoCfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, algo := range cost.ExtendedAlgorithms {
		fixedCfg := base
		fixedCfg.Algo = algo
		fixed, err := Run(fixedCfg)
		if err != nil {
			t.Fatal(err)
		}
		for mi, amr := range auto.Matrices {
			for pi, ap := range amr.Programs {
				if fp := fixed.Matrices[mi].Programs[pi]; ap.Predicted > fp.Predicted {
					t.Fatalf("auto predicted %v > fixed-%v %v for %v / %v",
						ap.Predicted, algo, fp.Predicted, amr.Matrix, ap.Program)
				}
			}
		}
	}
}

// TestAutoLabelsAndJSON: auto configs label themselves "auto" and carry
// per-program algorithm assignments through the JSON projection.
func TestAutoLabelsAndJSON(t *testing.T) {
	cfg := Config{Sys: topology.A100System(2), Axes: []int{2, 16}, ReduceAxes: []int{0},
		Algos: cost.ExtendedAlgorithms}
	if got := cfg.String(); !strings.HasSuffix(got, "/auto") {
		t.Errorf("auto config String = %q, want /auto suffix", got)
	}
	r, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	data, err := ToJSON([]*Result{r})
	if err != nil {
		t.Fatal(err)
	}
	parsed, err := FromJSON(data)
	if err != nil {
		t.Fatal(err)
	}
	if parsed[0].Algorithm != "auto" {
		t.Errorf("JSON algorithm = %q, want auto", parsed[0].Algorithm)
	}
	for _, mj := range parsed[0].Matrices {
		for _, pj := range mj.Programs {
			if pj.Algorithm == "" {
				t.Fatalf("program %q missing algorithm assignment in JSON", pj.Program)
			}
		}
	}
}
