package eval

import (
	"context"
	"encoding/json"
	"fmt"

	"p2/internal/cost"
)

// The auto-mode suite runner: the paper's evaluation grid swept with the
// per-step NCCL_ALGO search instead of a pinned algorithm, plus the
// analytic-vs-measured agreement quantities the measured-in-the-loop
// planning mode is motivated by (how often the cost model's argmin and
// the emulator's argmin disagree, and by how much).

// RunSuiteAuto executes every (case × reduction axes) sweep of a suite in
// auto mode — the per-step algorithm search over cost.ExtendedAlgorithms
// (CLI `-algo auto`) — returning per-config results in deterministic
// order. Together with RunSuite it completes the accuracy tables: pinned
// Ring/Tree rows from the paper plus an auto row per system.
func RunSuiteAuto(s Suite) ([]*Result, error) {
	return RunSuiteAutoCtx(context.Background(), s) //p2:ctx-ok documented no-deadline compatibility shim wrapping RunSuiteAutoCtx
}

// RunSuiteAutoCtx is RunSuiteAuto under a context; cancellation aborts
// the suite with ctx.Err().
func RunSuiteAutoCtx(ctx context.Context, s Suite) ([]*Result, error) {
	var out []*Result
	for _, c := range s.Cases {
		for _, red := range c.ReduceAxes {
			cfg := Config{Sys: s.Sys, Axes: c.Axes, ReduceAxes: red, Algos: cost.ExtendedAlgorithms}
			r, err := RunCtx(ctx, cfg)
			if err != nil {
				return nil, fmt.Errorf("eval: %s: %w", cfg, err)
			}
			out = append(out, r)
		}
	}
	return out, nil
}

// PredictedBest returns the sweep's predicted-best (matrix, program)
// pair — ties broken toward the earliest enumeration position, matching
// the planner's deterministic order.
func (r *Result) PredictedBest() Pair {
	pairs := r.Pairs()
	best := 0
	for i, p := range pairs {
		if p.Predicted < pairs[best].Predicted {
			best = i
		}
	}
	return pairs[best]
}

// MeasuredBest returns the sweep's measured-best (matrix, program) pair,
// ties broken toward the earliest enumeration position.
func (r *Result) MeasuredBest() Pair {
	pairs := r.Pairs()
	best := 0
	for i, p := range pairs {
		if p.Measured < pairs[best].Measured {
			best = i
		}
	}
	return pairs[best]
}

// Disagreement reports whether the analytic and measured rankings of the
// sweep disagree on the best candidate — the quantity the ROADMAP's
// measured-in-the-loop mode exists to correct (equivalently, !TopKHit(1)).
func (r *Result) Disagreement() bool {
	p, m := r.PredictedBest(), r.MeasuredBest()
	return p.MatrixIdx != m.MatrixIdx || p.ProgramIdx != m.ProgramIdx
}

// DisagreementRate is the fraction of sweeps whose analytic argmin
// differs from the measured argmin.
func DisagreementRate(results []*Result) float64 {
	if len(results) == 0 {
		return 0
	}
	n := 0
	for _, r := range results {
		if r.Disagreement() {
			n++
		}
	}
	return float64(n) / float64(len(results))
}

// PairJSON is the serialized form of one ranked (matrix, program) pair in
// the auto-suite export.
type PairJSON struct {
	Matrix    string  `json:"matrix"`
	Program   string  `json:"program"`
	Algorithm string  `json:"algorithm"`
	Predicted float64 `json:"predicted_secs"`
	Measured  float64 `json:"measured_secs"`
}

// SweepJSON summarizes one sweep of the auto-suite export: its
// predicted-best and measured-best candidates and whether they disagree.
type SweepJSON struct {
	Config        string   `json:"config"`
	Axes          []int    `json:"axes"`
	ReduceAxes    []int    `json:"reduce_axes"`
	Programs      int      `json:"programs"`
	PredictedBest PairJSON `json:"predicted_best"`
	MeasuredBest  PairJSON `json:"measured_best"`
	Disagree      bool     `json:"disagree"`
}

// AutoSuiteJSON is the per-system envelope of the auto-suite export: the
// sweeps plus the aggregate accuracy and disagreement-rate quantities of
// the accuracy table's auto row.
type AutoSuiteJSON struct {
	System           string          `json:"system"`
	Sweeps           []SweepJSON     `json:"sweeps"`
	TopKAccuracy     map[int]float64 `json:"top_k_accuracy"`
	DisagreementRate float64         `json:"disagreement_rate"`
}

// pairJSON projects a Pair through its owning Result.
func pairJSON(r *Result, p Pair) PairJSON {
	pr := r.Matrices[p.MatrixIdx].Programs[p.ProgramIdx]
	return PairJSON{
		Matrix:    r.Matrices[p.MatrixIdx].Matrix.String(),
		Program:   pr.Program.String(),
		Algorithm: pr.AlgoString(),
		Predicted: p.Predicted,
		Measured:  p.Measured,
	}
}

// BuildAutoSuite aggregates sweep results into the per-system export
// envelopes, grouping in first-appearance order (deterministic for the
// deterministic suite runners).
func BuildAutoSuite(results []*Result) []AutoSuiteJSON {
	ks := []int{1, 2, 3, 5, 6, 10}
	bySys := map[string]int{}
	var out []AutoSuiteJSON
	grouped := map[string][]*Result{}
	for _, r := range results {
		name := r.Config.Sys.Name
		if _, ok := bySys[name]; !ok {
			bySys[name] = len(out)
			out = append(out, AutoSuiteJSON{System: name})
		}
		grouped[name] = append(grouped[name], r)
		env := &out[bySys[name]]
		env.Sweeps = append(env.Sweeps, SweepJSON{
			Config:        r.Config.String(),
			Axes:          r.Config.Axes,
			ReduceAxes:    r.Config.ReduceAxes,
			Programs:      r.TotalPrograms(),
			PredictedBest: pairJSON(r, r.PredictedBest()),
			MeasuredBest:  pairJSON(r, r.MeasuredBest()),
			Disagree:      r.Disagreement(),
		})
	}
	for i := range out {
		rs := grouped[out[i].System]
		out[i].TopKAccuracy = Accuracy(rs, ks)
		out[i].DisagreementRate = DisagreementRate(rs)
	}
	return out
}

// AutoSuiteToJSON serializes auto-suite sweeps as indented JSON (the
// tooling-friendly counterpart of the accuracy table's auto rows).
func AutoSuiteToJSON(results []*Result) ([]byte, error) {
	return json.MarshalIndent(BuildAutoSuite(results), "", "  ")
}

// AutoSuiteFromJSON parses the export back (for downstream tools and
// tests).
func AutoSuiteFromJSON(data []byte) ([]AutoSuiteJSON, error) {
	var out []AutoSuiteJSON
	if err := json.Unmarshal(data, &out); err != nil {
		return nil, fmt.Errorf("eval: decoding auto-suite results: %w", err)
	}
	return out, nil
}
