package eval

import (
	"math"
	"strings"
	"testing"

	"p2/internal/topology"
)

func TestRunDegradeRequiresOverrides(t *testing.T) {
	_, err := RunDegrade(DegradeConfig{
		Sys:        topology.A100System(2),
		Axes:       []int{2, 16},
		ReduceAxes: []int{0},
	})
	if err == nil || !strings.Contains(err.Error(), "no link overrides") {
		t.Errorf("RunDegrade without overrides: err = %v", err)
	}
}

func TestRunDegradeThrottledLinkShiftsRanking(t *testing.T) {
	r, err := RunDegrade(DegradeConfig{
		Sys:        topology.A100System(4),
		Overrides:  []topology.LinkOverride{topology.Throttle(1, 0, 10)},
		Axes:       []int{4, 16},
		ReduceAxes: []int{0},
	})
	if err != nil {
		t.Fatal(err)
	}
	if r.Inversions <= 0 {
		t.Error("a 10x throttled NVSwitch uplink produced zero ranking inversions")
	}
	if r.Tau <= 0 || r.Tau > 1 {
		t.Errorf("Tau = %v outside (0, 1]", r.Tau)
	}
	n := len(r.PristineRank)
	if want := n * (n - 1) / 2; r.MaxPairs != want {
		t.Errorf("MaxPairs = %d, want %d", r.MaxPairs, want)
	}
	if len(r.DegradedAt) != n || len(r.DegradedRank) != n {
		t.Fatalf("rank lengths: pristine %d, degradedAt %d, degraded %d",
			n, len(r.DegradedAt), len(r.DegradedRank))
	}
	// The degraded winner is the minimum over all candidates, so a stale
	// pristine plan can never beat it.
	if r.StaleTime < r.ReplanTime {
		t.Errorf("StaleTime %v < ReplanTime %v", r.StaleTime, r.ReplanTime)
	}
	if r.ReplanSpeedup < 1 {
		t.Errorf("ReplanSpeedup = %v < 1", r.ReplanSpeedup)
	}
	// The throttle only ever slows candidates down.
	for i, c := range r.PristineRank {
		if r.DegradedAt[i] < c.Predicted {
			t.Errorf("candidate %d sped up under a throttle: %v -> %v",
				i, c.Predicted, r.DegradedAt[i])
		}
	}
	tab := BuildDegradeTable(r, 5)
	if len(tab.Rows) != 5 {
		t.Errorf("table rows = %d, want 5", len(tab.Rows))
	}
	if got := len(tab.Header); got != 7 {
		t.Errorf("table header has %d columns", got)
	}
}

func TestRunDegradeDownLink(t *testing.T) {
	r, err := RunDegrade(DegradeConfig{
		Sys:        topology.A100System(4),
		Overrides:  []topology.LinkOverride{topology.Down(0, 2)},
		Axes:       []int{4, 16},
		ReduceAxes: []int{0},
	})
	if err != nil {
		t.Fatal(err)
	}
	// Every candidate crossing node 2's NIC never finishes; intra-node
	// candidates don't exist for a full reduction over axis 0 spanning all
	// nodes... unless the placement keeps the reduction inside one node.
	// Either way the degraded ranking must put every finite candidate ahead
	// of every infinite one, and the table must spell the outage out.
	sawInf := false
	lastFinite := -1
	for i, c := range r.DegradedRank {
		if math.IsInf(c.Predicted, 1) {
			sawInf = true
		} else {
			if sawInf {
				t.Fatalf("finite candidate at rank %d after an infinite one", i)
			}
			lastFinite = i
		}
	}
	if !sawInf {
		t.Error("no candidate routed over the down NIC")
	}
	if lastFinite < 0 {
		// All-infinite is a legal outcome (axis spans every node); the
		// rendering must still say so.
		if !math.IsInf(r.ReplanTime, 1) {
			t.Errorf("all candidates down but ReplanTime = %v", r.ReplanTime)
		}
	}
	tab := BuildDegradeTable(r, 0)
	found := false
	for _, row := range tab.Rows {
		if strings.Contains(row[5], "down link") {
			found = true
		}
	}
	if !found {
		t.Error("table does not mark any candidate as blocked by the down link")
	}
}

func TestRunDegradePristineScalesKeepRanking(t *testing.T) {
	// All-1.0x overrides are a fault spec that degrades nothing: the two
	// rankings must agree bitwise, so the shift metrics all read zero.
	r, err := RunDegrade(DegradeConfig{
		Sys: topology.A100System(2),
		Overrides: []topology.LinkOverride{
			{Level: 0, Entity: 1, BandwidthScale: 1, LatencyScale: 1},
		},
		Axes:       []int{2, 16},
		ReduceAxes: []int{0},
	})
	if err != nil {
		t.Fatal(err)
	}
	if r.Inversions != 0 || r.Tau != 0 || r.BestShifted {
		t.Errorf("pristine overrides shifted the ranking: %d inversions, tau %v, bestShifted %v",
			r.Inversions, r.Tau, r.BestShifted)
	}
	if r.ReplanSpeedup != 1 {
		t.Errorf("ReplanSpeedup = %v, want exactly 1", r.ReplanSpeedup)
	}
	for i, c := range r.PristineRank {
		if r.DegradedAt[i] != c.Predicted {
			t.Errorf("candidate %d: degraded %v != pristine %v under all-1.0x overrides",
				i, r.DegradedAt[i], c.Predicted)
		}
	}
}
