package eval

import (
	"encoding/json"
	"fmt"
)

// The JSON export is a stable, tooling-friendly projection of sweep
// results: program texts instead of internal structures, seconds instead
// of durations.

// ResultJSON is the serialized form of a Result.
type ResultJSON struct {
	System         string       `json:"system"`
	Hierarchy      []int        `json:"hierarchy"`
	Axes           []int        `json:"axes"`
	ReduceAxes     []int        `json:"reduce_axes"`
	Algorithm      string       `json:"algorithm"`
	PayloadBytes   float64      `json:"payload_bytes"`
	SynthesisSecs  float64      `json:"synthesis_secs"`
	SimulationSecs float64      `json:"simulation_secs"`
	MeasureSecs    float64      `json:"measure_secs"`
	Matrices       []MatrixJSON `json:"matrices"`
}

// MatrixJSON is the serialized form of a MatrixResult.
type MatrixJSON struct {
	Matrix        string        `json:"matrix"`
	SynthesisSecs float64       `json:"synthesis_secs"`
	BaselineIdx   int           `json:"baseline_idx"`
	Programs      []ProgramJSON `json:"programs"`
}

// ProgramJSON is the serialized form of a ProgramResult.
type ProgramJSON struct {
	Program   string  `json:"program"`
	Steps     int     `json:"steps"`
	Predicted float64 `json:"predicted_secs"`
	Measured  float64 `json:"measured_secs"`
	// Algorithm is the per-program algorithm choice: one name when every
	// step agrees, a "/"-joined per-step sequence when the auto search
	// mixed algorithms.
	Algorithm string `json:"algorithm"`
}

// ToJSON serializes sweep results as indented JSON.
func ToJSON(results []*Result) ([]byte, error) {
	out := make([]ResultJSON, 0, len(results))
	for _, r := range results {
		rj := ResultJSON{
			System:         r.Config.Sys.Name,
			Hierarchy:      r.Config.Sys.Hierarchy(),
			Axes:           r.Config.Axes,
			ReduceAxes:     r.Config.ReduceAxes,
			Algorithm:      r.Config.algoLabel(),
			PayloadBytes:   r.Config.payload(),
			SynthesisSecs:  r.SynthesisTime.Seconds(),
			SimulationSecs: r.SimulationTime.Seconds(),
			MeasureSecs:    r.MeasureTime.Seconds(),
		}
		for _, mr := range r.Matrices {
			mj := MatrixJSON{
				Matrix:        mr.Matrix.String(),
				SynthesisSecs: mr.SynthesisTime.Seconds(),
				BaselineIdx:   mr.BaselineIdx,
			}
			for _, p := range mr.Programs {
				mj.Programs = append(mj.Programs, ProgramJSON{
					Program:   p.Program.String(),
					Steps:     len(p.Lowered.Steps),
					Predicted: p.Predicted,
					Measured:  p.Measured,
					Algorithm: p.AlgoString(),
				})
			}
			rj.Matrices = append(rj.Matrices, mj)
		}
		out = append(out, rj)
	}
	return json.MarshalIndent(out, "", "  ")
}

// FromJSON parses the projection back (for downstream tools and tests).
func FromJSON(data []byte) ([]ResultJSON, error) {
	var out []ResultJSON
	if err := json.Unmarshal(data, &out); err != nil {
		return nil, fmt.Errorf("eval: decoding results: %w", err)
	}
	return out, nil
}
