package eval

import (
	"context"
	"fmt"

	"p2/internal/cost"
	"p2/internal/factor"
	"p2/internal/topology"
)

// Case is one axis configuration of the paper's evaluation: parallelism
// axis sizes plus the reduction-axes requests evaluated for it.
type Case struct {
	Axes       []int
	ReduceAxes [][]int
}

// PaperCases generates the §4 experiment grid for a device count n:
//
//   - a single parallelism axis [n], reduced on axis 0;
//   - every two-axis combination [a, n/a], reduced on axis 0 and on axis 1;
//   - if threeAxis, the [a, 2, n/(2a)] three-axis combinations, reduced on
//     axes 0 and 2 jointly (the paper's three-axis setting).
func PaperCases(n int, threeAxis bool) []Case {
	var out []Case
	out = append(out, Case{Axes: []int{n}, ReduceAxes: [][]int{{0}}})
	for _, a := range factor.Divisors(n) {
		if a == 1 || a == n {
			continue
		}
		out = append(out, Case{Axes: []int{a, n / a}, ReduceAxes: [][]int{{0}, {1}}})
	}
	if threeAxis {
		for _, a := range factor.Divisors(n / 2) {
			if a == 1 || a == n/2 {
				continue
			}
			out = append(out, Case{Axes: []int{a, 2, n / 2 / a}, ReduceAxes: [][]int{{0, 2}}})
		}
	}
	return out
}

// Suite bundles a system with its experiment cases.
type Suite struct {
	Sys   *topology.System
	Cases []Case
}

// PaperSuites returns the four systems of the paper's evaluation (2- and
// 4-node A100 and V100) with their §4 axis grids. Three-axis cases are run
// on the 4-node systems, matching the appendix.
func PaperSuites() []Suite {
	return []Suite{
		{Sys: topology.A100System(2), Cases: PaperCases(32, false)},
		{Sys: topology.A100System(4), Cases: PaperCases(64, true)},
		{Sys: topology.V100System(2), Cases: PaperCases(16, false)},
		{Sys: topology.V100System(4), Cases: PaperCases(32, true)},
	}
}

// RunSuite executes every (case × reduction axes × algorithm) sweep for a
// system and returns the per-config results in deterministic order.
func RunSuite(s Suite, algos []cost.Algorithm) ([]*Result, error) {
	return RunSuiteCtx(context.Background(), s, algos) //p2:ctx-ok documented no-deadline compatibility shim wrapping RunSuiteCtx
}

// RunSuiteCtx is RunSuite under a context; the first cancellation
// observed between (or inside) sweeps aborts the suite with ctx.Err().
func RunSuiteCtx(ctx context.Context, s Suite, algos []cost.Algorithm) ([]*Result, error) {
	var out []*Result
	for _, c := range s.Cases {
		for _, red := range c.ReduceAxes {
			for _, algo := range algos {
				cfg := Config{Sys: s.Sys, Axes: c.Axes, ReduceAxes: red, Algo: algo}
				r, err := RunCtx(ctx, cfg)
				if err != nil {
					return nil, fmt.Errorf("eval: %s: %w", cfg, err)
				}
				out = append(out, r)
			}
		}
	}
	return out, nil
}
