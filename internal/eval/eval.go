// Package eval is the experiment harness reproducing the paper's
// evaluation (§4–§5): it sweeps every parallelism matrix for a requested
// axis configuration, synthesizes every reduction program per matrix,
// predicts each program's runtime with the analytic model (internal/cost)
// and "measures" it on the event-level emulator (internal/netsim), then
// derives the quantities the paper reports — optimal programs, speedups
// over AllReduce, outperforming counts, and simulator top-k accuracy —
// plus, beyond the paper, the auto-mode (per-step NCCL_ALGO search)
// suites and their analytic-vs-measured disagreement rate (autosuite.go).
package eval

import (
	"context"
	"fmt"
	"sort"
	"time"

	"p2/internal/cost"
	"p2/internal/dsl"
	"p2/internal/hierarchy"
	"p2/internal/lower"
	"p2/internal/netsim"
	"p2/internal/placement"
	"p2/internal/synth"
	"p2/internal/topology"
)

// Config is one experiment cell: a system, an axis configuration, the
// reduction axes, and the NCCL algorithm.
type Config struct {
	// Sys is the system swept.
	Sys *topology.System
	// Axes are the parallelism axis sizes (their product must equal the
	// device count) and ReduceAxes the axis indices reduced over.
	Axes       []int
	ReduceAxes []int
	// Algo is the pinned NCCL algorithm (ignored when Algos sweeps a set).
	Algo cost.Algorithm
	// Algos, when it has two or more entries, sweeps the per-step
	// algorithm assignment of every program over the set ("auto" mode,
	// NCCL_ALGO as a searched dimension): each step is predicted and
	// measured under the algorithm the cost model picks for it. Empty or
	// single-entry slices pin every step to Algo (resp. the entry).
	Algos []cost.Algorithm
	// Bytes is the per-device payload; 0 means the paper's default
	// (2^29 × machines float32, machines = product of all non-leaf level
	// counts).
	Bytes float64
	// Synth carries synthesizer options (zero value = paper defaults).
	Synth synth.Options
	// Hier carries hierarchy options; Collapse is forced on for
	// multi-axis reductions as in §2.5 unless explicitly configured via
	// RawHier.
	RawHier bool
	Hier    hierarchy.Options
	// NetsimOpts tunes the emulator (zero value = defaults).
	NetsimOpts netsim.Options
}

func (c Config) payload() float64 {
	if c.Bytes > 0 {
		return c.Bytes
	}
	return cost.DefaultPayload(c.Sys)
}

// algoLabel names the config's algorithm dimension: the pinned algorithm,
// or "auto" when a set is searched.
func (c Config) algoLabel() string {
	if len(c.Algos) > 1 {
		return "auto"
	}
	if len(c.Algos) == 1 {
		return c.Algos[0].String()
	}
	return c.Algo.String()
}

func (c Config) hierOpts() hierarchy.Options {
	if c.RawHier {
		return c.Hier
	}
	o := c.Hier
	if len(c.ReduceAxes) > 1 {
		o.Collapse = true
	}
	return o
}

// String identifies the config, e.g. "a100-4node/[16 2 2]/red[0 2]/Ring"
// (or ".../auto" when an algorithm set is swept).
func (c Config) String() string {
	return fmt.Sprintf("%s/%v/red%v/%s", c.Sys.Name, c.Axes, c.ReduceAxes, c.algoLabel())
}

// ProgramResult is one synthesized program with its predicted and measured
// runtimes.
type ProgramResult struct {
	Program   dsl.Program
	Lowered   *lower.Program
	Predicted float64 // analytic model, seconds
	Measured  float64 // event-level emulator, seconds
	// StepAlgos is the winning per-step algorithm assignment in auto
	// mode; nil when the sweep pinned one algorithm or the winner was
	// uniform (AlgoString names it either way).
	StepAlgos []cost.Algorithm
	// Algo is the fixed algorithm of every step not overridden by
	// StepAlgos (the config's pinned algorithm, or the uniform winner of
	// an auto sweep).
	Algo cost.Algorithm
}

// AlgoString names the program's algorithm assignment compactly: one name
// when uniform, a "/"-joined per-step sequence otherwise.
func (p ProgramResult) AlgoString() string {
	return cost.FormatAlgos(p.Algo, p.StepAlgos)
}

// MatrixResult groups the programs synthesized for one parallelism matrix.
type MatrixResult struct {
	Matrix        *placement.Matrix
	Hierarchy     *hierarchy.Hierarchy
	SynthesisTime time.Duration
	// Programs in synthesis order; Programs[BaselineIdx] is the
	// single-step AllReduce.
	Programs    []ProgramResult
	BaselineIdx int
}

// Baseline returns the single-AllReduce result.
func (mr *MatrixResult) Baseline() ProgramResult { return mr.Programs[mr.BaselineIdx] }

// BestMeasured returns the index of the measured-fastest program.
func (mr *MatrixResult) BestMeasured() int {
	best := 0
	for i, p := range mr.Programs {
		if p.Measured < mr.Programs[best].Measured {
			best = i
		}
	}
	return best
}

// BestPredicted returns the index of the predicted-fastest program.
func (mr *MatrixResult) BestPredicted() int {
	best := 0
	for i, p := range mr.Programs {
		if p.Predicted < mr.Programs[best].Predicted {
			best = i
		}
	}
	return best
}

// Speedup is the baseline-over-optimal measured ratio (≥ ~1).
func (mr *MatrixResult) Speedup() float64 {
	return mr.Baseline().Measured / mr.Programs[mr.BestMeasured()].Measured
}

// Outperforming counts programs measured strictly faster than the baseline
// AllReduce.
func (mr *MatrixResult) Outperforming() int {
	base := mr.Baseline().Measured
	n := 0
	for _, p := range mr.Programs {
		if p.Measured < base {
			n++
		}
	}
	return n
}

// Result is a full sweep for one config.
type Result struct {
	// Config echoes the swept cell; Matrices holds one entry per
	// enumerated placement, in enumeration order.
	Config   Config
	Matrices []*MatrixResult
	// SynthesisTime is the summed synthesis wall-clock across matrices.
	SynthesisTime time.Duration
	// SimulationTime is the wall-clock spent in the analytic model.
	SimulationTime time.Duration
	// MeasureTime is the wall-clock spent in the emulator.
	MeasureTime time.Duration
}

// TotalPrograms sums program counts over all matrices.
func (r *Result) TotalPrograms() int {
	n := 0
	for _, mr := range r.Matrices {
		n += len(mr.Programs)
	}
	return n
}

// TotalOutperforming sums Outperforming over all matrices.
func (r *Result) TotalOutperforming() int {
	n := 0
	for _, mr := range r.Matrices {
		n += mr.Outperforming()
	}
	return n
}

// Pair is a flattened (matrix, program) entry used for ranking.
type Pair struct {
	// MatrixIdx / ProgramIdx index into Result.Matrices and its Programs.
	MatrixIdx  int
	ProgramIdx int
	// Predicted and Measured are the candidate's analytic and emulated
	// runtimes in seconds.
	Predicted float64
	Measured  float64
}

// Pairs flattens the sweep into ranking entries.
func (r *Result) Pairs() []Pair {
	var out []Pair
	for mi, mr := range r.Matrices {
		for pi, p := range mr.Programs {
			out = append(out, Pair{mi, pi, p.Predicted, p.Measured})
		}
	}
	return out
}

// TopKHit reports whether the measured-best pair of the sweep is among the
// k best-predicted pairs (the paper's top-k accuracy criterion, §5).
func (r *Result) TopKHit(k int) bool {
	pairs := r.Pairs()
	if len(pairs) == 0 {
		return false
	}
	best := 0
	for i, p := range pairs {
		if p.Measured < pairs[best].Measured {
			best = i
		}
	}
	byPred := make([]int, len(pairs))
	for i := range byPred {
		byPred[i] = i
	}
	sort.SliceStable(byPred, func(a, b int) bool {
		return pairs[byPred[a]].Predicted < pairs[byPred[b]].Predicted
	})
	for rank := 0; rank < k && rank < len(byPred); rank++ {
		if byPred[rank] == best {
			return true
		}
	}
	return false
}

// Accuracy summarizes top-k accuracy over many sweeps (Table 5).
func Accuracy(results []*Result, ks []int) map[int]float64 {
	out := map[int]float64{}
	if len(results) == 0 {
		return out
	}
	for _, k := range ks {
		hits := 0
		for _, r := range results {
			if r.TopKHit(k) {
				hits++
			}
		}
		out[k] = float64(hits) / float64(len(results))
	}
	return out
}

// Run executes the full sweep for a config: enumerate matrices, synthesize
// per matrix, lower, predict, measure.
func Run(cfg Config) (*Result, error) {
	return RunCtx(context.Background(), cfg) //p2:ctx-ok documented no-deadline compatibility shim wrapping RunCtx
}

// RunCtx is Run under a context: cancellation is checked between matrices
// and between programs, and the first observation aborts the sweep with
// ctx.Err() (an eval sweep is all-or-nothing — there is no partial-result
// mode, unlike planning's anytime contract).
func RunCtx(ctx context.Context, cfg Config) (*Result, error) {
	matrices, err := placement.Enumerate(cfg.Sys.Hierarchy(), cfg.Axes)
	if err != nil {
		return nil, err
	}
	res := &Result{Config: cfg}
	algo := cfg.Algo
	if len(cfg.Algos) == 1 {
		algo = cfg.Algos[0]
	}
	model := &cost.Model{Sys: cfg.Sys, Algo: algo, Bytes: cfg.payload()}
	sim := &netsim.Simulator{Sys: cfg.Sys, Algo: algo, Bytes: cfg.payload(), Opts: cfg.NetsimOpts}
	baselineStr := synth.BaselineAllReduce().String()
	for _, m := range matrices {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		h, err := hierarchy.Build(hierarchy.KindReductionAxes, m, cfg.ReduceAxes, cfg.hierOpts())
		if err != nil {
			return nil, err
		}
		sres := synth.Synthesize(h, cfg.Synth)
		mr := &MatrixResult{
			Matrix:        m,
			Hierarchy:     h,
			SynthesisTime: sres.Elapsed,
			BaselineIdx:   -1,
		}
		res.SynthesisTime += sres.Elapsed
		for _, p := range sres.Programs {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			lp, err := lower.Lower(p, h)
			if err != nil {
				return nil, fmt.Errorf("eval: lowering %v for %v: %w", p, m, err)
			}
			pr := ProgramResult{Program: p, Lowered: lp, Algo: algo}
			t0 := time.Now() //p2:timing-ok SimulationTime is a reported wall-clock total, never ranked
			if len(cfg.Algos) > 1 {
				stepAlgos, pred := model.BestStepAlgos(lp, cfg.Algos)
				pr.Predicted = pred
				if a, ok := cost.UniformAlgo(stepAlgos); ok {
					pr.Algo = a
				} else {
					pr.StepAlgos = stepAlgos
				}
			} else {
				pr.Predicted = model.ProgramTime(lp)
			}
			res.SimulationTime += time.Since(t0) //p2:timing-ok SimulationTime is a reported wall-clock total, never ranked
			t1 := time.Now()                     //p2:timing-ok MeasureTime is a reported wall-clock total, never ranked
			simAlgo := *sim
			simAlgo.Algo = pr.Algo
			pr.Measured = simAlgo.MeasureSteps(lp, pr.StepAlgos)
			res.MeasureTime += time.Since(t1) //p2:timing-ok MeasureTime is a reported wall-clock total, never ranked
			if p.String() == baselineStr {
				mr.BaselineIdx = len(mr.Programs)
			}
			mr.Programs = append(mr.Programs, pr)
		}
		if mr.BaselineIdx < 0 {
			return nil, fmt.Errorf("eval: baseline AllReduce not synthesized for %v", m)
		}
		res.Matrices = append(res.Matrices, mr)
	}
	return res, nil
}

// MeasureBaseline runs only the single-AllReduce program for one matrix —
// the Table 3 quantity — returning (predicted, measured) seconds.
func MeasureBaseline(cfg Config, m *placement.Matrix) (float64, float64, error) {
	h, err := hierarchy.Build(hierarchy.KindReductionAxes, m, cfg.ReduceAxes, cfg.hierOpts())
	if err != nil {
		return 0, 0, err
	}
	lp, err := lower.Lower(synth.BaselineAllReduce(), h)
	if err != nil {
		return 0, 0, err
	}
	algo := cfg.Algo
	if len(cfg.Algos) == 1 {
		algo = cfg.Algos[0]
	}
	model := &cost.Model{Sys: cfg.Sys, Algo: algo, Bytes: cfg.payload()}
	sim := &netsim.Simulator{Sys: cfg.Sys, Algo: algo, Bytes: cfg.payload(), Opts: cfg.NetsimOpts}
	if len(cfg.Algos) > 1 {
		stepAlgos, pred := model.BestStepAlgos(lp, cfg.Algos)
		if a, ok := cost.UniformAlgo(stepAlgos); ok {
			sim.Algo = a
			stepAlgos = nil
		}
		return pred, sim.MeasureSteps(lp, stepAlgos), nil
	}
	return model.ProgramTime(lp), sim.Measure(lp), nil
}
