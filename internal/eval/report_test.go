package eval

import (
	"strings"
	"testing"

	"p2/internal/cost"
	"p2/internal/topology"
)

func TestFigure11Chart(t *testing.T) {
	r := run416(t, cost.Ring)
	chart := Figure11Chart(r)
	if !strings.Contains(chart, "measured") || !strings.Contains(chart, "simulated") {
		t.Error("chart legend missing")
	}
	if !strings.Contains(chart, "*") || !strings.Contains(chart, "x") {
		t.Error("chart markers missing")
	}
	if !strings.Contains(chart, "Figure 11") {
		t.Error("chart title missing")
	}
	lines := strings.Split(chart, "\n")
	if len(lines) < 20 {
		t.Errorf("chart too short: %d lines", len(lines))
	}
}

func TestJSONRoundTrip(t *testing.T) {
	r := run416(t, cost.Ring)
	data, err := ToJSON([]*Result{r})
	if err != nil {
		t.Fatal(err)
	}
	back, err := FromJSON(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != 1 {
		t.Fatalf("decoded %d results", len(back))
	}
	rj := back[0]
	if rj.System != "a100-4node" || rj.Algorithm != "Ring" {
		t.Errorf("metadata mismatch: %+v", rj)
	}
	if len(rj.Matrices) != len(r.Matrices) {
		t.Fatalf("matrices = %d, want %d", len(rj.Matrices), len(r.Matrices))
	}
	for mi, mj := range rj.Matrices {
		if len(mj.Programs) != len(r.Matrices[mi].Programs) {
			t.Errorf("matrix %d: programs %d != %d", mi, len(mj.Programs), len(r.Matrices[mi].Programs))
		}
		if mj.Matrix != r.Matrices[mi].Matrix.String() {
			t.Errorf("matrix %d name mismatch", mi)
		}
		for pi, pj := range mj.Programs {
			if pj.Measured != r.Matrices[mi].Programs[pi].Measured {
				t.Errorf("matrix %d program %d measured mismatch", mi, pi)
			}
			if pj.Steps <= 0 {
				t.Errorf("matrix %d program %d has %d steps", mi, pi, pj.Steps)
			}
		}
	}
}

func TestFromJSONError(t *testing.T) {
	if _, err := FromJSON([]byte("{nonsense")); err == nil {
		t.Error("malformed JSON accepted")
	}
}

func TestConfigString(t *testing.T) {
	cfg := Config{Sys: topology.A100System(4), Axes: []int{4, 16}, ReduceAxes: []int{0}, Algo: cost.Tree}
	s := cfg.String()
	for _, want := range []string{"a100-4node", "[4 16]", "red[0]", "Tree"} {
		if !strings.Contains(s, want) {
			t.Errorf("Config.String() = %q missing %q", s, want)
		}
	}
}
