package eval

import (
	"fmt"
	"sort"

	"p2/internal/plot"
)

// Figure11Chart renders one sweep as the paper's Figure 11: every
// (matrix, program) pair in increasing order of measured time, with
// measurements drawn as '*' (the paper's solid dots) and analytic
// predictions as 'x' (the paper's translucent crosses), on a log y axis.
func Figure11Chart(r *Result) string {
	pairs := r.Pairs()
	sort.SliceStable(pairs, func(a, b int) bool { return pairs[a].Measured < pairs[b].Measured })
	measured := make([]float64, len(pairs))
	predicted := make([]float64, len(pairs))
	for i, p := range pairs {
		measured[i] = p.Measured
		predicted[i] = p.Predicted
	}
	title := fmt.Sprintf("Figure 11 — %s: %d programs, synthesis %.2fs, simulation %.2fs",
		r.Config, len(pairs), r.SynthesisTime.Seconds(), r.SimulationTime.Seconds())
	return plot.Chart(title, []plot.Series{
		{Name: "measured", Marker: '*', Values: measured},
		{Name: "simulated", Marker: 'x', Values: predicted},
	}, plot.Options{
		Width:  96,
		Height: 20,
		LogY:   true,
		YLabel: "seconds (log)",
		XLabel: "programs in increasing order of measured time",
	})
}
