package eval

import (
	"reflect"
	"strconv"
	"strings"
	"testing"

	"p2/internal/cost"
	"p2/internal/netsim"
	"p2/internal/placement"
	"p2/internal/topology"
)

// run416 sweeps the Table 4 G configuration: 4-node A100, axes [4 16],
// reduce axis 0.
func run416(t *testing.T, algo cost.Algorithm) *Result {
	t.Helper()
	r, err := Run(Config{
		Sys:        topology.A100System(4),
		Axes:       []int{4, 16},
		ReduceAxes: []int{0},
		Algo:       algo,
	})
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestRunProducesAllMatrices(t *testing.T) {
	r := run416(t, cost.Ring)
	if len(r.Matrices) != 3 {
		t.Fatalf("matrices = %d, want 3", len(r.Matrices))
	}
	for _, mr := range r.Matrices {
		if len(mr.Programs) == 0 {
			t.Errorf("%v: no programs", mr.Matrix)
		}
		if mr.BaselineIdx < 0 || mr.BaselineIdx >= len(mr.Programs) {
			t.Errorf("%v: bad baseline index %d", mr.Matrix, mr.BaselineIdx)
		}
		for _, p := range mr.Programs {
			if p.Measured <= 0 || p.Predicted <= 0 {
				t.Errorf("%v %v: non-positive times %v/%v",
					mr.Matrix, p.Program, p.Measured, p.Predicted)
			}
		}
	}
}

func TestResult1PlacementImpact(t *testing.T) {
	// Paper Result 1: AllReduce differs enormously across matrices.
	r := run416(t, cost.Ring)
	minBase, maxBase := r.Matrices[0].Baseline().Measured, r.Matrices[0].Baseline().Measured
	for _, mr := range r.Matrices {
		b := mr.Baseline().Measured
		if b < minBase {
			minBase = b
		}
		if b > maxBase {
			maxBase = b
		}
	}
	if maxBase/minBase < 100 {
		t.Errorf("placement impact = %.1f×, want > 100×", maxBase/minBase)
	}
}

func TestResult3WithinNodeAllReduceOptimal(t *testing.T) {
	// Paper Result 3: when the reduction axis fits in one node, the
	// single AllReduce is optimal (speedup 1).
	r := run416(t, cost.Ring)
	for _, mr := range r.Matrices {
		if mr.Matrix.String() == "[[1 4] [4 4]]" {
			if mr.BestMeasured() != mr.BaselineIdx {
				t.Errorf("expected AllReduce optimal for %v, got %v",
					mr.Matrix, mr.Programs[mr.BestMeasured()].Program)
			}
			if mr.Outperforming() != 0 {
				t.Errorf("programs outperform AllReduce within node: %d", mr.Outperforming())
			}
		}
	}
}

func TestResult5CrossNodeSynthesisWins(t *testing.T) {
	// Paper Result 5: cross-node placements admit synthesized programs
	// beating AllReduce (G2-style speedups in the 1.2–2.2 range).
	r := run416(t, cost.Ring)
	won := false
	for _, mr := range r.Matrices {
		if mr.Matrix.String() == "[[2 2] [2 8]]" {
			if s := mr.Speedup(); s < 1.2 || s > 2.5 {
				t.Errorf("speedup for %v = %.2f, want 1.2–2.5", mr.Matrix, s)
			} else {
				won = true
			}
			if mr.Outperforming() == 0 {
				t.Error("no outperforming programs for the cross-node matrix")
			}
		}
	}
	if !won {
		t.Error("cross-node matrix missing from sweep")
	}
}

func TestTopKHitSanity(t *testing.T) {
	r := run416(t, cost.Ring)
	// Top-K with K = total pairs is always a hit.
	if !r.TopKHit(len(r.Pairs())) {
		t.Error("TopKHit(all) = false")
	}
	// Monotonicity: a hit at k implies a hit at k+1.
	prev := false
	for k := 1; k <= 10; k++ {
		hit := r.TopKHit(k)
		if prev && !hit {
			t.Errorf("TopKHit not monotone at k=%d", k)
		}
		prev = hit
	}
}

func TestAccuracy(t *testing.T) {
	r1 := run416(t, cost.Ring)
	r2 := run416(t, cost.Tree)
	acc := Accuracy([]*Result{r1, r2}, []int{1, 10})
	for _, k := range []int{1, 10} {
		if acc[k] < 0 || acc[k] > 1 {
			t.Errorf("accuracy[%d] = %v out of range", k, acc[k])
		}
	}
	if acc[10] < acc[1] {
		t.Error("top-10 accuracy below top-1")
	}
	if len(Accuracy(nil, []int{1})) != 0 {
		t.Error("Accuracy(nil) should be empty")
	}
}

func TestMeasureBaseline(t *testing.T) {
	cfg := Config{Sys: topology.A100System(4), Axes: []int{4, 16}, ReduceAxes: []int{0}, Algo: cost.Ring}
	m := placement.MustMatrix([]int{4, 16}, []int{4, 16}, [][]int{{1, 4}, {4, 4}})
	pred, meas, err := MeasureBaseline(cfg, m)
	if err != nil {
		t.Fatal(err)
	}
	if pred <= 0 || meas <= 0 {
		t.Errorf("non-positive baseline: %v / %v", pred, meas)
	}
	if meas > 1 {
		t.Errorf("within-node baseline too slow: %v s", meas)
	}
}

func TestRunErrors(t *testing.T) {
	_, err := Run(Config{Sys: topology.A100System(4), Axes: []int{3, 7}, ReduceAxes: []int{0}, Algo: cost.Ring})
	if err == nil {
		t.Error("invalid axes accepted")
	}
}

func TestPaperCases(t *testing.T) {
	cases := PaperCases(64, true)
	var oneAxis, twoAxis, threeAxis int
	for _, c := range cases {
		switch len(c.Axes) {
		case 1:
			oneAxis++
			if len(c.ReduceAxes) != 1 {
				t.Errorf("single-axis case has %d reductions", len(c.ReduceAxes))
			}
		case 2:
			twoAxis++
			if len(c.ReduceAxes) != 2 {
				t.Errorf("two-axis case has %d reductions", len(c.ReduceAxes))
			}
		case 3:
			threeAxis++
			if len(c.ReduceAxes) != 1 || len(c.ReduceAxes[0]) != 2 {
				t.Errorf("three-axis case reductions = %v", c.ReduceAxes)
			}
		}
	}
	if oneAxis != 1 || twoAxis != 5 || threeAxis != 4 {
		t.Errorf("case mix = %d/%d/%d, want 1/5/4", oneAxis, twoAxis, threeAxis)
	}
	if n := len(PaperCases(16, false)); n != 4 {
		t.Errorf("PaperCases(16) = %d cases, want 4", n)
	}
}

func TestPaperSuites(t *testing.T) {
	suites := PaperSuites()
	if len(suites) != 4 {
		t.Fatalf("suites = %d", len(suites))
	}
	names := map[string]bool{}
	for _, s := range suites {
		names[s.Sys.Name] = true
		if len(s.Cases) == 0 {
			t.Errorf("%s has no cases", s.Sys.Name)
		}
	}
	for _, want := range []string{"a100-2node", "a100-4node", "v100-2node", "v100-4node"} {
		if !names[want] {
			t.Errorf("missing suite %s", want)
		}
	}
}

func TestRunSuiteSmall(t *testing.T) {
	s := Suite{Sys: topology.V100System(2), Cases: []Case{
		{Axes: []int{4, 4}, ReduceAxes: [][]int{{0}, {1}}},
	}}
	rs, err := RunSuite(s, []cost.Algorithm{cost.Ring})
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 2 {
		t.Fatalf("results = %d, want 2 (one per reduce axis)", len(rs))
	}
}

func TestBuildTable3(t *testing.T) {
	tb, err := BuildTable3(topology.V100System(2), [][]int{{4, 4}})
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) == 0 {
		t.Fatal("empty table")
	}
	md := tb.Markdown()
	if !strings.Contains(md, "Ring") || !strings.Contains(md, "[[") {
		t.Errorf("markdown missing expected content:\n%s", md)
	}
	tsv := tb.TSV()
	if !strings.Contains(tsv, "\t") {
		t.Error("TSV has no tabs")
	}
}

func TestBuildTable4And5(t *testing.T) {
	r := run416(t, cost.Ring)
	t4 := BuildTable4([]*Result{r})
	if len(t4.Rows) != 3 {
		t.Errorf("Table 4 rows = %d, want 3", len(t4.Rows))
	}
	if !strings.Contains(t4.Markdown(), "Speedup") {
		t.Error("Table 4 missing speedup column")
	}
	t5 := BuildTable5([]*Result{r})
	if len(t5.Rows) != 2 { // one system + total
		t.Errorf("Table 5 rows = %d, want 2", len(t5.Rows))
	}
}

func TestBuildFigure11(t *testing.T) {
	r := run416(t, cost.Ring)
	f := BuildFigure11(r)
	if len(f.Rows) != r.TotalPrograms() {
		t.Errorf("figure rows = %d, want %d", len(f.Rows), r.TotalPrograms())
	}
	// Rows must be sorted by measured time.
	prev := -1.0
	for _, row := range f.Rows {
		v, err := strconv.ParseFloat(row[3], 64)
		if err != nil {
			t.Fatalf("bad measured cell %q", row[3])
		}
		if v < prev-1e-9 {
			t.Error("figure rows not sorted by measured time")
		}
		prev = v
	}
}

func TestBuildAppendix(t *testing.T) {
	r := run416(t, cost.Ring)
	a := BuildAppendix([]*Result{r})
	if len(a.Rows) != 3 {
		t.Errorf("appendix rows = %d", len(a.Rows))
	}
}

func TestRunDeterministic(t *testing.T) {
	// The whole sweep — synthesis order, predictions, measurements — must
	// be bit-for-bit reproducible (noise is seeded from fingerprints).
	a := run416(t, cost.Ring)
	b := run416(t, cost.Ring)
	da, err := ToJSON([]*Result{a})
	if err != nil {
		t.Fatal(err)
	}
	db, err := ToJSON([]*Result{b})
	if err != nil {
		t.Fatal(err)
	}
	// Strip the wall-clock fields, which legitimately differ.
	ra, _ := FromJSON(da)
	rb, _ := FromJSON(db)
	for i := range ra {
		ra[i].SynthesisSecs, rb[i].SynthesisSecs = 0, 0
		ra[i].SimulationSecs, rb[i].SimulationSecs = 0, 0
		ra[i].MeasureSecs, rb[i].MeasureSecs = 0, 0
		for j := range ra[i].Matrices {
			ra[i].Matrices[j].SynthesisSecs = 0
			rb[i].Matrices[j].SynthesisSecs = 0
		}
	}
	if !reflect.DeepEqual(ra, rb) {
		t.Error("sweep results are not deterministic")
	}
}

func TestNetsimOptionsPropagate(t *testing.T) {
	// A different emulator seed must change measurements but not
	// predictions.
	base, err := Run(Config{Sys: topology.V100System(2), Axes: []int{4, 4},
		ReduceAxes: []int{1}, Algo: cost.Ring})
	if err != nil {
		t.Fatal(err)
	}
	seeded, err := Run(Config{Sys: topology.V100System(2), Axes: []int{4, 4},
		ReduceAxes: []int{1}, Algo: cost.Ring,
		NetsimOpts: netsim.Options{Seed: 99}})
	if err != nil {
		t.Fatal(err)
	}
	diff := false
	for mi := range base.Matrices {
		for pi := range base.Matrices[mi].Programs {
			a := base.Matrices[mi].Programs[pi]
			b := seeded.Matrices[mi].Programs[pi]
			if a.Predicted != b.Predicted {
				t.Fatal("seed changed predictions")
			}
			if a.Measured != b.Measured {
				diff = true
			}
		}
	}
	if !diff {
		t.Error("seed did not change any measurement")
	}
}
