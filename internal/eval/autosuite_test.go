package eval

import (
	"flag"
	"os"
	"path/filepath"
	"testing"

	"p2/internal/topology"
)

var update = flag.Bool("update", false, "rewrite golden files")

// v100AutoSuite is the small deterministic suite the golden test pins:
// the 2-node V100 system (whose cross-PCIe-domain throttling the analytic
// model deliberately ignores, so the analytic and measured argmins
// genuinely disagree on one of the two sweeps), both reduction axes of
// [4 4].
func v100AutoSuite(t *testing.T) []*Result {
	t.Helper()
	s := Suite{Sys: topology.V100System(2), Cases: []Case{
		{Axes: []int{4, 4}, ReduceAxes: [][]int{{0}, {1}}},
	}}
	rs, err := RunSuiteAuto(s)
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 2 {
		t.Fatalf("auto suite ran %d sweeps, want 2", len(rs))
	}
	return rs
}

// TestAutoSuiteGoldenTable pins the rendered accuracy table — including
// the new Algo, Pred best, Meas best and Disagree columns — for the
// 2-node V100 auto suite. Everything in the pipeline is deterministic, so the
// table is byte-stable; regenerate with `go test -run AutoSuiteGolden
// -update ./internal/eval/`.
func TestAutoSuiteGoldenTable(t *testing.T) {
	rs := v100AutoSuite(t)
	got := BuildTable5(rs).Markdown()
	golden := filepath.Join("testdata", "autosuite_v100.golden")
	if *update {
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with -update to create it)", err)
	}
	if got != string(want) {
		t.Errorf("auto-suite table drifted from golden:\ngot:\n%s\nwant:\n%s", got, want)
	}
}

// TestAutoSuiteJSONRoundTrip: the export round-trips, covers every sweep,
// and its aggregate quantities agree with the per-sweep entries.
func TestAutoSuiteJSONRoundTrip(t *testing.T) {
	rs := v100AutoSuite(t)
	data, err := AutoSuiteToJSON(rs)
	if err != nil {
		t.Fatal(err)
	}
	back, err := AutoSuiteFromJSON(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != 1 {
		t.Fatalf("decoded %d systems, want 1", len(back))
	}
	env := back[0]
	if env.System != "v100-2node" {
		t.Errorf("system = %q, want v100-2node", env.System)
	}
	if env.DisagreementRate == 0 {
		t.Error("golden suite lost its disagreement (rate = 0); the Disagree column is no longer exercised")
	}
	if len(env.Sweeps) != len(rs) {
		t.Fatalf("sweeps = %d, want %d", len(env.Sweeps), len(rs))
	}
	disagree := 0
	for i, sw := range env.Sweeps {
		if sw.Config == "" || sw.Programs <= 0 {
			t.Errorf("sweep %d missing metadata: %+v", i, sw)
		}
		if sw.PredictedBest.Program == "" || sw.MeasuredBest.Program == "" {
			t.Errorf("sweep %d missing best candidates: %+v", i, sw)
		}
		samePair := sw.PredictedBest.Matrix == sw.MeasuredBest.Matrix &&
			sw.PredictedBest.Program == sw.MeasuredBest.Program &&
			sw.PredictedBest.Algorithm == sw.MeasuredBest.Algorithm
		if sw.Disagree == samePair {
			// Disagree must reflect the exported pair identity. (Distinct
			// pairs can share a rendering only if matrix+program+algo all
			// collide, which the enumeration forbids.)
			t.Errorf("sweep %d: disagree=%v but predicted/measured pairs render %v", i, sw.Disagree, samePair)
		}
		if sw.Disagree {
			disagree++
		}
		if sw.MeasuredBest.Measured > sw.PredictedBest.Measured {
			t.Errorf("sweep %d: measured best (%g s) slower than predicted pick (%g s)",
				i, sw.MeasuredBest.Measured, sw.PredictedBest.Measured)
		}
	}
	wantRate := float64(disagree) / float64(len(env.Sweeps))
	if env.DisagreementRate != wantRate {
		t.Errorf("disagreement rate %g, want %g", env.DisagreementRate, wantRate)
	}
	if top1, ok := env.TopKAccuracy[1]; !ok {
		t.Error("top-1 accuracy missing from export")
	} else if got := 1 - env.DisagreementRate; top1 != got {
		t.Errorf("top-1 accuracy %g inconsistent with disagreement rate (want %g)", top1, got)
	}
}

// TestDisagreementAgainstTopKHit: Disagreement is exactly the complement
// of the paper's top-1 accuracy criterion.
func TestDisagreementAgainstTopKHit(t *testing.T) {
	for _, r := range v100AutoSuite(t) {
		if r.Disagreement() != r.TopKHit(1) {
			continue
		}
		t.Errorf("%s: Disagreement()=%v but TopKHit(1)=%v", r.Config, r.Disagreement(), r.TopKHit(1))
	}
}
