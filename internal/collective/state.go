// Package collective formalizes the five collective operations of the P²
// paper (§3.2): AllReduce, ReduceScatter, AllGather, Reduce and Broadcast,
// with their Hoare-triple semantics over per-device state matrices.
//
// A device state is a k×k boolean matrix where k is the number of devices
// in the reduction universe. The data is conceptually split into k chunks;
// row r of the matrix describes chunk r, and bit (r, j) means device j has
// contributed its original chunk r to the reduction result this device
// holds. Initially device i holds its own full data: column i is all ones.
// The goal state of an all-reduce is the all-ones matrix on every device.
package collective

import (
	"fmt"
	"math/bits"
	"strings"
)

// State is a k×k boolean matrix stored as k rows of packed 64-bit words.
type State struct {
	k     int
	words int      // words per row
	bits  []uint64 // k * words, row-major
}

// NewState returns the empty (all zero) k×k state.
func NewState(k int) *State {
	if k <= 0 {
		panic(fmt.Sprintf("collective: NewState(%d)", k))
	}
	w := (k + 63) / 64
	return &State{k: k, words: w, bits: make([]uint64, k*w)}
}

// InitialState returns the state of device i before any reduction: every
// chunk present, contributed only by device i (column i all ones).
func InitialState(k, i int) *State {
	s := NewState(k)
	for r := 0; r < k; r++ {
		s.Set(r, i)
	}
	return s
}

// FullState returns the all-ones goal state.
func FullState(k int) *State {
	s := NewState(k)
	for r := 0; r < k; r++ {
		for c := 0; c < k; c++ {
			s.Set(r, c)
		}
	}
	return s
}

// K returns the universe size.
func (s *State) K() int { return s.k }

// Set sets bit (row, col).
func (s *State) Set(row, col int) {
	s.checkIdx(row, col)
	s.bits[row*s.words+col/64] |= 1 << (uint(col) % 64)
}

// Get reports bit (row, col).
func (s *State) Get(row, col int) bool {
	s.checkIdx(row, col)
	return s.bits[row*s.words+col/64]&(1<<(uint(col)%64)) != 0
}

func (s *State) checkIdx(row, col int) {
	if row < 0 || row >= s.k || col < 0 || col >= s.k {
		panic(fmt.Sprintf("collective: index (%d,%d) out of range for k=%d", row, col, s.k))
	}
}

// row returns the packed words of one row.
func (s *State) row(r int) []uint64 { return s.bits[r*s.words : (r+1)*s.words] }

// RowEmpty reports whether row r has no bits set.
func (s *State) RowEmpty(r int) bool {
	for _, w := range s.row(r) {
		if w != 0 {
			return false
		}
	}
	return true
}

// RowPopCount returns the number of set bits in row r.
func (s *State) RowPopCount(r int) int {
	n := 0
	for _, w := range s.row(r) {
		n += bits.OnesCount64(w)
	}
	return n
}

// Rows returns the indices of non-empty rows in increasing order — the
// "rows" operator of Fig. 8 (the data chunks this device holds).
func (s *State) Rows() []int {
	var out []int
	for r := 0; r < s.k; r++ {
		if !s.RowEmpty(r) {
			out = append(out, r)
		}
	}
	return out
}

// NumRows returns the number of non-empty rows.
func (s *State) NumRows() int {
	n := 0
	for r := 0; r < s.k; r++ {
		if !s.RowEmpty(r) {
			n++
		}
	}
	return n
}

// PopCount returns the total number of set bits — the information content.
func (s *State) PopCount() int {
	n := 0
	for _, w := range s.bits {
		n += bits.OnesCount64(w)
	}
	return n
}

// Clone returns a deep copy.
func (s *State) Clone() *State {
	c := &State{k: s.k, words: s.words, bits: make([]uint64, len(s.bits))}
	copy(c.bits, s.bits)
	return c
}

// Clear zeroes the state in place.
func (s *State) Clear() {
	for i := range s.bits {
		s.bits[i] = 0
	}
}

// Equal reports exact equality.
func (s *State) Equal(o *State) bool {
	if s.k != o.k {
		return false
	}
	for i, w := range s.bits {
		if w != o.bits[i] {
			return false
		}
	}
	return true
}

// SubsetOf reports s ≤ o: every bit of s is set in o.
func (s *State) SubsetOf(o *State) bool {
	if s.k != o.k {
		return false
	}
	for i, w := range s.bits {
		if w&^o.bits[i] != 0 {
			return false
		}
	}
	return true
}

// StrictSubsetOf reports s < o.
func (s *State) StrictSubsetOf(o *State) bool {
	return s.SubsetOf(o) && !s.Equal(o)
}

// IsFull reports whether the state is the all-ones goal.
func (s *State) IsFull() bool {
	return s.PopCount() == s.k*s.k
}

// unionInto ORs o into s (s must have the same k).
func (s *State) unionInto(o *State) {
	for i, w := range o.bits {
		s.bits[i] |= w
	}
}

// sameRowSet reports whether s and o have identical non-empty-row sets.
func (s *State) sameRowSet(o *State) bool {
	for r := 0; r < s.k; r++ {
		if s.RowEmpty(r) != o.RowEmpty(r) {
			return false
		}
	}
	return true
}

// rowsDisjoint reports whether, for every row index, the rows of s and o
// share no set bit (the per-chunk ⃝⋆ check of rules R-AllReduce etc.).
func (s *State) rowsDisjoint(o *State) bool {
	for i, w := range s.bits {
		if w&o.bits[i] != 0 {
			return false
		}
	}
	return true
}

// rowSetsDisjoint reports whether s and o have no common non-empty row
// index (the rows ⃝⋆ check of rule R-AllGather).
func (s *State) rowSetsDisjoint(o *State) bool {
	for r := 0; r < s.k; r++ {
		if !s.RowEmpty(r) && !o.RowEmpty(r) {
			return false
		}
	}
	return true
}

// AppendWords appends the packed representation to dst; used for hashing
// state contexts during synthesis memoization.
func (s *State) AppendWords(dst []uint64) []uint64 {
	return append(dst, s.bits...)
}

// String renders the matrix with '#' for set bits and '.' for clear ones,
// one row per line — useful in tests and error messages.
func (s *State) String() string {
	var b strings.Builder
	for r := 0; r < s.k; r++ {
		for c := 0; c < s.k; c++ {
			if s.Get(r, c) {
				b.WriteByte('#')
			} else {
				b.WriteByte('.')
			}
		}
		if r != s.k-1 {
			b.WriteByte('\n')
		}
	}
	return b.String()
}
