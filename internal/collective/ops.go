package collective

import (
	"errors"
	"fmt"
)

// Op is one of the five collective operations the paper formalizes.
type Op int

const (
	AllReduce Op = iota
	ReduceScatter
	AllGather
	Reduce
	Broadcast
	numOps
)

// Ops lists every operation in canonical order, used by the synthesizer's
// enumeration.
var Ops = []Op{AllReduce, ReduceScatter, AllGather, Reduce, Broadcast}

// String returns the operation name as used in the paper.
func (op Op) String() string {
	switch op {
	case AllReduce:
		return "AllReduce"
	case ReduceScatter:
		return "ReduceScatter"
	case AllGather:
		return "AllGather"
	case Reduce:
		return "Reduce"
	case Broadcast:
		return "Broadcast"
	default:
		return fmt.Sprintf("Op(%d)", int(op))
	}
}

// ParseOp parses an operation name (case-sensitive, as printed by String).
func ParseOp(s string) (Op, error) {
	for _, op := range Ops {
		if op.String() == s {
			return op, nil
		}
	}
	return 0, fmt.Errorf("collective: unknown op %q", s)
}

// Semantic-precondition violations. Programs triggering these are the
// "semantically invalid" reductions of §2.3 (e.g. Fig. 4) and are pruned by
// the synthesizer.
var (
	// ErrRowMismatch: devices in a reducing group hold different chunk
	// sets (violates the rows-equality premise of R-AllReduce /
	// R-ReduceScatter / R-Reduce).
	ErrRowMismatch = errors.New("collective: devices hold different chunk sets")
	// ErrOverlap: two devices would reduce overlapping contributions —
	// the same original data twice (violates the ⃝⋆ disjointness premise).
	ErrOverlap = errors.New("collective: overlapping contributions would be reduced twice")
	// ErrRowSetsOverlap: AllGather inputs share a chunk row.
	ErrRowSetsOverlap = errors.New("collective: gathered chunk sets overlap")
	// ErrRowCountMismatch: AllGather inputs differ in chunk count.
	ErrRowCountMismatch = errors.New("collective: gathered chunk counts differ")
	// ErrNotDivisible: ReduceScatter chunk count not divisible by the
	// group size.
	ErrNotDivisible = errors.New("collective: chunk count not divisible by group size")
	// ErrNoGain: Broadcast would not strictly increase any device's
	// information (the information-increase optimization of R-Broadcast).
	ErrNoGain = errors.New("collective: broadcast adds no information")
	// ErrNotPrefix: Broadcast source is not a superset of every receiver.
	ErrNotPrefix = errors.New("collective: broadcast source missing receiver data")
	// ErrGroupTooSmall: the group has fewer than two devices, so no
	// reduction happens.
	ErrGroupTooSmall = errors.New("collective: group smaller than two devices")
	// ErrNoData: every device in the group is empty, so the operation
	// would be a no-op (this also guarantees every applied operation
	// changes the state, bounding program length as §4.2 observes).
	ErrNoData = errors.New("collective: no data to operate on")
)

// Check verifies the Hoare-rule precondition of op for the given group
// states without modifying them. A nil return means Apply will succeed.
func Check(op Op, states []*State) error {
	if len(states) < 2 {
		return ErrGroupTooSmall
	}
	switch op {
	case AllReduce, Reduce:
		return checkReduceLike(states)
	case ReduceScatter:
		if err := checkReduceLike(states); err != nil {
			return err
		}
		if states[0].NumRows()%len(states) != 0 {
			return ErrNotDivisible
		}
		return nil
	case AllGather:
		if states[0].NumRows() == 0 {
			return ErrNoData
		}
		for i := 0; i < len(states); i++ {
			for j := i + 1; j < len(states); j++ {
				if !states[i].rowSetsDisjoint(states[j]) {
					return ErrRowSetsOverlap
				}
			}
			if states[i].NumRows() != states[0].NumRows() {
				return ErrRowCountMismatch
			}
		}
		return nil
	case Broadcast:
		gain := false
		for _, st := range states[1:] {
			if !st.SubsetOf(states[0]) {
				return ErrNotPrefix
			}
			if st.StrictSubsetOf(states[0]) {
				gain = true
			}
		}
		if !gain {
			return ErrNoGain
		}
		return nil
	default:
		return fmt.Errorf("collective: unknown op %v", op)
	}
}

func checkReduceLike(states []*State) error {
	if states[0].NumRows() == 0 && states[1].NumRows() == 0 {
		return ErrNoData
	}
	for i := 1; i < len(states); i++ {
		if !states[0].sameRowSet(states[i]) {
			return ErrRowMismatch
		}
	}
	for i := 0; i < len(states); i++ {
		for j := i + 1; j < len(states); j++ {
			if !states[i].rowsDisjoint(states[j]) {
				return ErrOverlap
			}
		}
	}
	return nil
}

// Apply executes op over the group (states in group order; states[0] is the
// root for Reduce/Broadcast, matching the paper's convention of using the
// first device of a hierarchical group as root). On success it returns the
// post-condition states, leaving the inputs untouched. On a precondition
// violation it returns one of the Err* sentinels.
func Apply(op Op, states []*State) ([]*State, error) {
	if err := Check(op, states); err != nil {
		return nil, err
	}
	k := states[0].k
	g := len(states)
	switch op {
	case AllReduce:
		sum := unionAll(states)
		out := make([]*State, g)
		for i := range out {
			out[i] = sum.Clone()
		}
		return out, nil
	case Reduce:
		sum := unionAll(states)
		out := make([]*State, g)
		out[0] = sum
		for i := 1; i < g; i++ {
			out[i] = NewState(k)
		}
		return out, nil
	case ReduceScatter:
		sum := unionAll(states)
		rows := sum.Rows()
		per := len(rows) / g
		out := make([]*State, g)
		for i := range out {
			out[i] = NewState(k)
			for _, r := range rows[i*per : (i+1)*per] {
				copy(out[i].row(r), sum.row(r))
			}
		}
		return out, nil
	case AllGather:
		sum := unionAll(states)
		out := make([]*State, g)
		for i := range out {
			out[i] = sum.Clone()
		}
		return out, nil
	case Broadcast:
		out := make([]*State, g)
		for i := range out {
			out[i] = states[0].Clone()
		}
		return out, nil
	default:
		return nil, fmt.Errorf("collective: unknown op %v", op)
	}
}

func unionAll(states []*State) *State {
	sum := states[0].Clone()
	for _, st := range states[1:] {
		sum.unionInto(st)
	}
	return sum
}
