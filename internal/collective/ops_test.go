package collective

import (
	"errors"
	"testing"
	"testing/quick"
)

// initialPair returns the Fig. 8 setup: 4 devices total, reduction between
// devices 0 and 1 only.
func initialPair() []*State {
	return []*State{InitialState(4, 0), InitialState(4, 1)}
}

func TestAllReduceFig8(t *testing.T) {
	out, err := Apply(AllReduce, initialPair())
	if err != nil {
		t.Fatal(err)
	}
	for i, s := range out {
		for r := 0; r < 4; r++ {
			if !s.Get(r, 0) || !s.Get(r, 1) || s.Get(r, 2) || s.Get(r, 3) {
				t.Errorf("device %d row %d wrong: %v", i, r, s)
			}
		}
	}
}

func TestReduceScatterFig8(t *testing.T) {
	out, err := Apply(ReduceScatter, initialPair())
	if err != nil {
		t.Fatal(err)
	}
	// 4 chunks over 2 devices: device 0 gets rows 0-1, device 1 rows 2-3,
	// each reduced from columns {0,1}.
	for r := 0; r < 4; r++ {
		holder := 0
		if r >= 2 {
			holder = 1
		}
		for i, s := range out {
			if i == holder {
				if !s.Get(r, 0) || !s.Get(r, 1) {
					t.Errorf("device %d should hold reduced row %d", i, r)
				}
			} else if !s.RowEmpty(r) {
				t.Errorf("device %d should not hold row %d", i, r)
			}
		}
	}
}

func TestReduceFig8(t *testing.T) {
	out, err := Apply(Reduce, initialPair())
	if err != nil {
		t.Fatal(err)
	}
	if out[0].PopCount() != 8 {
		t.Errorf("root popcount = %d, want 8", out[0].PopCount())
	}
	if out[1].PopCount() != 0 {
		t.Errorf("non-root popcount = %d, want 0", out[1].PopCount())
	}
}

func TestAllGatherAfterReduceScatter(t *testing.T) {
	rs, err := Apply(ReduceScatter, initialPair())
	if err != nil {
		t.Fatal(err)
	}
	out, err := Apply(AllGather, rs)
	if err != nil {
		t.Fatal(err)
	}
	for i, s := range out {
		if s.NumRows() != 4 {
			t.Errorf("device %d has %d rows after gather, want 4", i, s.NumRows())
		}
		for r := 0; r < 4; r++ {
			if !s.Get(r, 0) || !s.Get(r, 1) {
				t.Errorf("device %d row %d missing contributions", i, r)
			}
		}
	}
}

func TestBroadcastAfterReduce(t *testing.T) {
	rd, err := Apply(Reduce, initialPair())
	if err != nil {
		t.Fatal(err)
	}
	out, err := Apply(Broadcast, rd)
	if err != nil {
		t.Fatal(err)
	}
	if !out[0].Equal(out[1]) {
		t.Error("broadcast left devices unequal")
	}
	if out[1].PopCount() != 8 {
		t.Errorf("receiver popcount = %d", out[1].PopCount())
	}
}

func TestFigure4aInvalid(t *testing.T) {
	// Fig. 4a: ReduceScatter over {A0,A1} then AllReduce over {A0,A1}
	// reduces the two halves together — must be rejected (rows differ).
	rs, err := Apply(ReduceScatter, initialPair())
	if err != nil {
		t.Fatal(err)
	}
	_, err = Apply(AllReduce, rs)
	if !errors.Is(err, ErrRowMismatch) {
		t.Errorf("got %v, want ErrRowMismatch", err)
	}
}

func TestFigure4bInvalid(t *testing.T) {
	// Fig. 4b: AllReduce twice over the same pair reduces the same data
	// twice — must be rejected (overlap).
	ar, err := Apply(AllReduce, initialPair())
	if err != nil {
		t.Fatal(err)
	}
	_, err = Apply(AllReduce, ar)
	if !errors.Is(err, ErrOverlap) {
		t.Errorf("got %v, want ErrOverlap", err)
	}
}

func TestBroadcastRequiresGain(t *testing.T) {
	ar, err := Apply(AllReduce, initialPair())
	if err != nil {
		t.Fatal(err)
	}
	_, err = Apply(Broadcast, ar)
	if !errors.Is(err, ErrNoGain) {
		t.Errorf("got %v, want ErrNoGain", err)
	}
}

func TestBroadcastRequiresSuperset(t *testing.T) {
	// Receiver holds data the source lacks.
	src := InitialState(4, 0)
	dst := InitialState(4, 1)
	_, err := Apply(Broadcast, []*State{src, dst})
	if !errors.Is(err, ErrNotPrefix) {
		t.Errorf("got %v, want ErrNotPrefix", err)
	}
}

func TestReduceScatterDivisibility(t *testing.T) {
	// 4 chunks over a 3-device group: not divisible.
	states := []*State{InitialState(4, 0), InitialState(4, 1), InitialState(4, 2)}
	_, err := Apply(ReduceScatter, states)
	if !errors.Is(err, ErrNotDivisible) {
		t.Errorf("got %v, want ErrNotDivisible", err)
	}
}

func TestAllGatherChecks(t *testing.T) {
	// Same row sets: overlap.
	_, err := Apply(AllGather, initialPair())
	if !errors.Is(err, ErrRowSetsOverlap) {
		t.Errorf("got %v, want ErrRowSetsOverlap", err)
	}
	// Different row counts.
	a := NewState(4)
	a.Set(0, 0)
	a.Set(1, 0)
	b := NewState(4)
	b.Set(2, 1)
	_, err = Apply(AllGather, []*State{a, b})
	if !errors.Is(err, ErrRowCountMismatch) {
		t.Errorf("got %v, want ErrRowCountMismatch", err)
	}
}

func TestEmptyGroupsRejected(t *testing.T) {
	if _, err := Apply(AllReduce, []*State{InitialState(4, 0)}); !errors.Is(err, ErrGroupTooSmall) {
		t.Error("singleton group accepted")
	}
	empty := []*State{NewState(4), NewState(4)}
	for _, op := range []Op{AllReduce, Reduce, ReduceScatter, AllGather} {
		if _, err := Apply(op, empty); !errors.Is(err, ErrNoData) {
			t.Errorf("%v over empty states: got %v, want ErrNoData", op, err)
		}
	}
}

func TestApplyDoesNotMutateInputs(t *testing.T) {
	in := initialPair()
	before0, before1 := in[0].Clone(), in[1].Clone()
	if _, err := Apply(AllReduce, in); err != nil {
		t.Fatal(err)
	}
	if !in[0].Equal(before0) || !in[1].Equal(before1) {
		t.Error("Apply mutated its inputs")
	}
}

func TestFourWayAllReduceReachesGoal(t *testing.T) {
	states := make([]*State, 4)
	for i := range states {
		states[i] = InitialState(4, i)
	}
	out, err := Apply(AllReduce, states)
	if err != nil {
		t.Fatal(err)
	}
	for i, s := range out {
		if !s.IsFull() {
			t.Errorf("device %d not full after 4-way AllReduce", i)
		}
	}
}

func TestReduceScatterAllReduceAllGatherPipeline(t *testing.T) {
	// The paper's program (ii) shape on a 4-universe split 2 (local) × 2
	// (remote): RS within {0,1} and {2,3}, AR across {0,2} and {1,3},
	// AG within {0,1} and {2,3} reaches the goal.
	st := make([]*State, 4)
	for i := range st {
		st[i] = InitialState(4, i)
	}
	apply2 := func(op Op, a, b int) {
		t.Helper()
		out, err := Apply(op, []*State{st[a], st[b]})
		if err != nil {
			t.Fatalf("%v over {%d,%d}: %v", op, a, b, err)
		}
		st[a], st[b] = out[0], out[1]
	}
	apply2(ReduceScatter, 0, 1)
	apply2(ReduceScatter, 2, 3)
	apply2(AllReduce, 0, 2)
	apply2(AllReduce, 1, 3)
	apply2(AllGather, 0, 1)
	apply2(AllGather, 2, 3)
	for i, s := range st {
		if !s.IsFull() {
			t.Errorf("device %d not full:\n%v", i, s)
		}
	}
}

func TestReduceAllReduceBroadcastPipeline(t *testing.T) {
	// The paper's program (i): Reduce locally to roots, AllReduce across
	// roots, Broadcast locally.
	st := make([]*State, 4)
	for i := range st {
		st[i] = InitialState(4, i)
	}
	apply2 := func(op Op, a, b int) {
		t.Helper()
		out, err := Apply(op, []*State{st[a], st[b]})
		if err != nil {
			t.Fatalf("%v over {%d,%d}: %v", op, a, b, err)
		}
		st[a], st[b] = out[0], out[1]
	}
	apply2(Reduce, 0, 1)
	apply2(Reduce, 2, 3)
	apply2(AllReduce, 0, 2)
	apply2(Broadcast, 0, 1)
	apply2(Broadcast, 2, 3)
	for i, s := range st {
		if !s.IsFull() {
			t.Errorf("device %d not full:\n%v", i, s)
		}
	}
}

func TestOpStringAndParse(t *testing.T) {
	for _, op := range Ops {
		back, err := ParseOp(op.String())
		if err != nil || back != op {
			t.Errorf("ParseOp(%v.String()) = %v, %v", op, back, err)
		}
	}
	if _, err := ParseOp("allreduce"); err == nil {
		t.Error("lowercase op name accepted")
	}
	if got := Op(99).String(); got != "Op(99)" {
		t.Errorf("unknown op String = %q", got)
	}
}

func TestInformationNeverLostQuick(t *testing.T) {
	// Property: for any op that succeeds on random same-shape states, the
	// union of all output states contains the union of all input states.
	f := func(seed uint64, opRaw uint8) bool {
		op := Ops[int(opRaw)%len(Ops)]
		in := []*State{randomState(8, seed), randomState(8, seed*3+1)}
		out, err := Apply(op, in)
		if err != nil {
			return true // precondition failed; nothing to check
		}
		uin := in[0].Clone()
		uin.unionInto(in[1])
		uout := out[0].Clone()
		uout.unionInto(out[1])
		return uin.SubsetOf(uout)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestAllReduceSymmetricQuick(t *testing.T) {
	// Property: AllReduce output is identical for every group member and
	// equals the union of inputs.
	f := func(seedA, seedB uint64) bool {
		a := InitialState(6, int(seedA%6))
		b := InitialState(6, int(seedB%6))
		if int(seedA%6) == int(seedB%6) {
			return true
		}
		out, err := Apply(AllReduce, []*State{a, b})
		if err != nil {
			return false
		}
		u := a.Clone()
		u.unionInto(b)
		return out[0].Equal(out[1]) && out[0].Equal(u)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCheckMatchesApply(t *testing.T) {
	// Property: Check errs exactly when Apply errs, with the same error.
	f := func(seedA, seedB uint64, opRaw uint8) bool {
		op := Ops[int(opRaw)%len(Ops)]
		in := []*State{randomState(6, seedA), randomState(6, seedB)}
		errC := Check(op, in)
		_, errA := Apply(op, in)
		return errors.Is(errA, errC) || (errA == nil && errC == nil)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}
