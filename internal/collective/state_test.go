package collective

import (
	"reflect"
	"testing"
	"testing/quick"
)

func TestInitialState(t *testing.T) {
	s := InitialState(4, 2)
	for r := 0; r < 4; r++ {
		for c := 0; c < 4; c++ {
			want := c == 2
			if s.Get(r, c) != want {
				t.Errorf("InitialState(4,2).Get(%d,%d) = %v, want %v", r, c, s.Get(r, c), want)
			}
		}
	}
	if got := s.Rows(); !reflect.DeepEqual(got, []int{0, 1, 2, 3}) {
		t.Errorf("Rows = %v", got)
	}
	if s.PopCount() != 4 {
		t.Errorf("PopCount = %d", s.PopCount())
	}
}

func TestFullState(t *testing.T) {
	s := FullState(5)
	if !s.IsFull() {
		t.Error("FullState not full")
	}
	if s.PopCount() != 25 {
		t.Errorf("PopCount = %d", s.PopCount())
	}
	if InitialState(5, 0).IsFull() {
		t.Error("initial state reported full")
	}
}

func TestSetGetLargeK(t *testing.T) {
	// k > 64 exercises multi-word rows.
	s := NewState(100)
	s.Set(99, 99)
	s.Set(0, 64)
	s.Set(50, 63)
	if !s.Get(99, 99) || !s.Get(0, 64) || !s.Get(50, 63) {
		t.Error("set bits not readable")
	}
	if s.Get(99, 98) || s.Get(1, 64) {
		t.Error("unset bits readable")
	}
	if s.PopCount() != 3 {
		t.Errorf("PopCount = %d", s.PopCount())
	}
}

func TestRowsAndNumRows(t *testing.T) {
	s := NewState(6)
	s.Set(1, 3)
	s.Set(4, 0)
	s.Set(4, 5)
	if got := s.Rows(); !reflect.DeepEqual(got, []int{1, 4}) {
		t.Errorf("Rows = %v", got)
	}
	if s.NumRows() != 2 {
		t.Errorf("NumRows = %d", s.NumRows())
	}
	if s.RowPopCount(4) != 2 {
		t.Errorf("RowPopCount(4) = %d", s.RowPopCount(4))
	}
}

func TestCloneIndependence(t *testing.T) {
	s := InitialState(4, 1)
	c := s.Clone()
	c.Set(0, 0)
	if s.Get(0, 0) {
		t.Error("Clone shares storage")
	}
	if !c.Get(0, 1) {
		t.Error("Clone lost bits")
	}
}

func TestSubsetRelations(t *testing.T) {
	a := InitialState(4, 0)
	b := a.Clone()
	b.Set(0, 1)
	if !a.SubsetOf(b) || !a.StrictSubsetOf(b) {
		t.Error("a should be strict subset of b")
	}
	if b.SubsetOf(a) {
		t.Error("b is not subset of a")
	}
	if !a.SubsetOf(a) || a.StrictSubsetOf(a) {
		t.Error("reflexivity broken")
	}
}

func TestEqualDifferentK(t *testing.T) {
	if NewState(4).Equal(NewState(5)) {
		t.Error("states of different k reported equal")
	}
	if NewState(4).SubsetOf(NewState(5)) {
		t.Error("subset across different k")
	}
}

func TestClear(t *testing.T) {
	s := FullState(4)
	s.Clear()
	if s.PopCount() != 0 {
		t.Error("Clear left bits")
	}
}

func TestStringRendering(t *testing.T) {
	s := NewState(2)
	s.Set(0, 1)
	if got := s.String(); got != ".#\n.." {
		t.Errorf("String = %q", got)
	}
}

func TestAppendWordsDeterministic(t *testing.T) {
	s := InitialState(4, 2)
	w1 := s.AppendWords(nil)
	w2 := s.AppendWords(nil)
	if !reflect.DeepEqual(w1, w2) {
		t.Error("AppendWords not deterministic")
	}
	if len(w1) != 4 {
		t.Errorf("want 4 words for k=4, got %d", len(w1))
	}
}

func TestSubsetTransitivityQuick(t *testing.T) {
	// Property: union is an upper bound — s ⊆ s∪o for random states.
	f := func(seedA, seedB uint64) bool {
		a, b := randomState(8, seedA), randomState(8, seedB)
		u := a.Clone()
		u.unionInto(b)
		return a.SubsetOf(u) && b.SubsetOf(u)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// randomState builds a deterministic pseudo-random state from a seed.
func randomState(k int, seed uint64) *State {
	s := NewState(k)
	x := seed | 1
	for r := 0; r < k; r++ {
		for c := 0; c < k; c++ {
			x ^= x << 13
			x ^= x >> 7
			x ^= x << 17
			if x&3 == 0 {
				s.Set(r, c)
			}
		}
	}
	return s
}

func TestStatePanicsOutOfRange(t *testing.T) {
	s := NewState(4)
	for _, fn := range []func(){
		func() { s.Set(4, 0) },
		func() { s.Set(0, -1) },
		func() { s.Get(-1, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("out-of-range access did not panic")
				}
			}()
			fn()
		}()
	}
}
