package lower

import (
	"reflect"
	"strings"
	"testing"

	"p2/internal/collective"
	"p2/internal/dsl"
	"p2/internal/hierarchy"
	"p2/internal/placement"
	"p2/internal/synth"
)

func fig2dHierarchy(t *testing.T) *hierarchy.Hierarchy {
	t.Helper()
	m, err := placement.NewMatrix([]int{1, 2, 2, 4}, []int{4, 4},
		[][]int{{1, 1, 2, 2}, {1, 2, 1, 2}})
	if err != nil {
		t.Fatal(err)
	}
	h, err := hierarchy.Build(hierarchy.KindReductionAxes, m, []int{1}, hierarchy.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return h
}

func TestLowerBaselineAllReduce(t *testing.T) {
	h := fig2dHierarchy(t)
	lp, err := Lower(synth.BaselineAllReduce(), h)
	if err != nil {
		t.Fatal(err)
	}
	if len(lp.Steps) != 1 {
		t.Fatalf("steps = %d", len(lp.Steps))
	}
	st := lp.Steps[0]
	if st.Op != collective.AllReduce {
		t.Errorf("op = %v", st.Op)
	}
	if len(st.Groups) != 4 || st.GroupSize() != 4 {
		t.Errorf("groups = %v", st.Groups)
	}
	if st.Rows != 4 || st.RowsOut != 4 || st.K != 4 {
		t.Errorf("chunks: rows=%d rowsOut=%d k=%d", st.Rows, st.RowsOut, st.K)
	}
	if err := lp.Validate(); err != nil {
		t.Errorf("Validate: %v", err)
	}
	// Groups must be the physical reduction groups of the placement.
	m, _ := placement.NewMatrix([]int{1, 2, 2, 4}, []int{4, 4},
		[][]int{{1, 1, 2, 2}, {1, 2, 1, 2}})
	want := m.ReductionGroups([]int{1})
	got := append([][]int(nil), st.Groups...)
	sortByFirst := func(gs [][]int) {
		for i := 1; i < len(gs); i++ {
			for j := i; j > 0 && gs[j-1][0] > gs[j][0]; j-- {
				gs[j-1], gs[j] = gs[j], gs[j-1]
			}
		}
	}
	sortByFirst(want)
	sortByFirst(got)
	if !reflect.DeepEqual(got, want) {
		t.Errorf("lowered groups %v, want reduction groups %v", got, want)
	}
}

func TestLowerChunkAccounting(t *testing.T) {
	// RS-AR-AG over the [2 2] universe: fractions 1 → 1/2 → 1/2 → 1.
	h := fig2dHierarchy(t)
	p := dsl.Program{
		{Slice: 1, Form: dsl.InsideGroup, Op: collective.ReduceScatter},
		{Slice: 1, Form: dsl.Parallel, Arg: 0, Op: collective.AllReduce},
		{Slice: 1, Form: dsl.InsideGroup, Op: collective.AllGather},
	}
	lp, err := Lower(p, h)
	if err != nil {
		t.Fatal(err)
	}
	wantRows := [][2]int{{4, 2}, {2, 2}, {2, 4}}
	for i, st := range lp.Steps {
		if st.Rows != wantRows[i][0] || st.RowsOut != wantRows[i][1] {
			t.Errorf("step %d: rows %d→%d, want %d→%d",
				i, st.Rows, st.RowsOut, wantRows[i][0], wantRows[i][1])
		}
	}
	if lp.Steps[0].FracIn() != 1.0 || lp.Steps[1].FracIn() != 0.5 {
		t.Error("FracIn wrong")
	}
	if lp.Steps[2].FracOut() != 1.0 {
		t.Error("final FracOut wrong")
	}
}

func TestLowerReduceKeepsRootRows(t *testing.T) {
	h := fig2dHierarchy(t)
	p := dsl.Program{
		{Slice: 1, Form: dsl.InsideGroup, Op: collective.Reduce},
		{Slice: 1, Form: dsl.Master, Arg: 0, Op: collective.AllReduce},
		{Slice: 1, Form: dsl.InsideGroup, Op: collective.Broadcast},
	}
	lp, err := Lower(p, h)
	if err != nil {
		t.Fatal(err)
	}
	if lp.Steps[0].RowsOut != 4 {
		t.Errorf("Reduce RowsOut = %d, want root's 4", lp.Steps[0].RowsOut)
	}
	// Master step: only half the groups (one per ancestor per replica).
	if len(lp.Steps[1].Groups) != 4 {
		t.Errorf("master step groups = %d, want 4 (one per replica)", len(lp.Steps[1].Groups))
	}
	if len(lp.Steps[0].Groups) != 8 {
		t.Errorf("reduce step groups = %d, want 8", len(lp.Steps[0].Groups))
	}
}

func TestLowerInvalidProgramFails(t *testing.T) {
	h := fig2dHierarchy(t)
	p := dsl.Program{
		{Slice: 1, Form: dsl.InsideGroup, Op: collective.ReduceScatter},
		{Slice: 1, Form: dsl.InsideGroup, Op: collective.AllReduce},
	}
	if _, err := Lower(p, h); err == nil {
		t.Error("semantically invalid program lowered successfully")
	}
}

func TestLowerAllSynthesizedValidate(t *testing.T) {
	h := fig2dHierarchy(t)
	res := synth.Synthesize(h, synth.Options{})
	for _, p := range res.Programs {
		lp, err := Lower(p, h)
		if err != nil {
			t.Fatalf("Lower(%v): %v", p, err)
		}
		if err := lp.Validate(); err != nil {
			t.Errorf("%v: %v", p, err)
		}
		if lp.NumDevices != 16 {
			t.Errorf("%v: NumDevices = %d", p, lp.NumDevices)
		}
	}
}

func TestKeyDistinguishesPrograms(t *testing.T) {
	h := fig2dHierarchy(t)
	res := synth.Synthesize(h, synth.Options{})
	keys := map[string]string{}
	for _, p := range res.Programs {
		lp, err := Lower(p, h)
		if err != nil {
			t.Fatal(err)
		}
		k := lp.Key()
		if prev, ok := keys[k]; ok {
			t.Logf("programs %v and %v share key (may be genuinely equivalent)", prev, p)
		}
		keys[k] = p.String()
	}
	if len(keys) < 3 {
		t.Errorf("only %d distinct lowered keys", len(keys))
	}
}

func TestStringRendering(t *testing.T) {
	h := fig2dHierarchy(t)
	lp, err := Lower(synth.BaselineAllReduce(), h)
	if err != nil {
		t.Fatal(err)
	}
	s := lp.String()
	if !strings.Contains(s, "AllReduce") || !strings.Contains(s, "g=4") {
		t.Errorf("String = %q", s)
	}
}

func TestValidateCatchesCorruption(t *testing.T) {
	h := fig2dHierarchy(t)
	lp, err := Lower(synth.BaselineAllReduce(), h)
	if err != nil {
		t.Fatal(err)
	}
	bad := *lp
	bad.Steps = nil
	if bad.Validate() == nil {
		t.Error("empty program validated")
	}
	lp2, _ := Lower(synth.BaselineAllReduce(), h)
	lp2.Steps[0].Groups[0][0] = 99
	if lp2.Validate() == nil {
		t.Error("out-of-range device validated")
	}
	lp3, _ := Lower(synth.BaselineAllReduce(), h)
	lp3.Steps[0].Groups[0] = lp3.Steps[0].Groups[1]
	if lp3.Validate() == nil {
		t.Error("duplicated group validated")
	}
	lp4, _ := Lower(synth.BaselineAllReduce(), h)
	lp4.Steps[0].Rows = 0
	if lp4.Validate() == nil {
		t.Error("zero rows validated")
	}
}

func TestLowerMultiAxisReplication(t *testing.T) {
	// [4 16] axes [16 2 2], reduce {0,2}: universe 32, replicas 2. Every
	// lowered step must have group count divisible by the replica count.
	m, err := placement.NewMatrix([]int{4, 16}, []int{16, 2, 2},
		[][]int{{2, 8}, {2, 1}, {1, 2}})
	if err != nil {
		t.Fatal(err)
	}
	h, err := hierarchy.Build(hierarchy.KindReductionAxes, m, []int{0, 2},
		hierarchy.Options{Collapse: true})
	if err != nil {
		t.Fatal(err)
	}
	res := synth.Synthesize(h, synth.Options{MaxSize: 3})
	if len(res.Programs) == 0 {
		t.Fatal("no programs")
	}
	for _, p := range res.Programs {
		lp, err := Lower(p, h)
		if err != nil {
			t.Fatal(err)
		}
		if err := lp.Validate(); err != nil {
			t.Errorf("%v: %v", p, err)
		}
		for i, st := range lp.Steps {
			if len(st.Groups)%h.Replicas() != 0 {
				t.Errorf("%v step %d: %d groups not divisible by %d replicas",
					p, i, len(st.Groups), h.Replicas())
			}
		}
	}
}
