// Package lower translates synthesized reduction programs from the
// synthesis-hierarchy universe to sequences of physical collective steps
// (§3.4 of the P² paper: "lowering ... applies the generated grouping
// patterns to non-reduction axes when forming device groups").
//
// A lowered program is the common IR consumed by both the analytic cost
// model (internal/cost, the paper's simulator) and the event-level network
// emulator (internal/netsim, our testbed substitute): a list of steps, each
// a collective performed simultaneously by disjoint physical device groups,
// annotated with the fraction of the payload each participant holds.
package lower

import (
	"fmt"
	"sort"
	"strings"

	"p2/internal/collective"
	"p2/internal/dsl"
	"p2/internal/hierarchy"
)

// Step is one lowered reduction step: every group performs Op concurrently.
type Step struct {
	// Op is the collective operation.
	Op collective.Op
	// Groups are the participating physical device groups. Member order
	// is significant: the first device is the root for Reduce/Broadcast
	// and chunk blocks are assigned in order for ReduceScatter.
	Groups [][]int
	// Rows is the number of payload chunks (universe rows) each
	// participant holds entering the step (for Broadcast: the source's).
	Rows int
	// RowsOut is the chunk count a participant holds after the step (for
	// Reduce: the root's; non-roots drop to zero).
	RowsOut int
	// K is the chunk granularity: a full per-device payload is K chunks.
	K int
}

// FracIn returns the input payload fraction (Rows/K).
func (s Step) FracIn() float64 { return float64(s.Rows) / float64(s.K) }

// FracOut returns the output payload fraction (RowsOut/K).
func (s Step) FracOut() float64 { return float64(s.RowsOut) / float64(s.K) }

// GroupSize returns the (uniform) group size of the step.
func (s Step) GroupSize() int { return len(s.Groups[0]) }

// Program is a lowered reduction program.
type Program struct {
	// Steps in execution order.
	Steps []Step
	// NumDevices is the physical device count of the placement.
	NumDevices int
	// K is the synthesis-universe size (chunks per payload).
	K int
	// Source is the DSL program this was lowered from.
	Source dsl.Program
}

// Lower lowers a DSL program against its synthesis hierarchy. It re-runs
// the universe semantics to annotate every step with its chunk counts, so
// it fails with the same error a semantic check would.
func Lower(p dsl.Program, h *hierarchy.Hierarchy) (*Program, error) {
	s := Start(p, h)
	for !s.Done() {
		if _, err := s.Next(); err != nil {
			return nil, err
		}
	}
	return s.Program(), nil
}

// Stepper lowers a program one step at a time, so a consumer scoring the
// steps as they appear can abandon the program — and the remaining
// universe-semantics work — as soon as its partial cost disqualifies it
// (the planning engine's early-exit pruning). Lower is Start + draining
// Next, so a drained Stepper is byte-identical to Lower.
type Stepper struct {
	h   *hierarchy.Hierarchy
	src dsl.Program
	ctx dsl.Context
	out *Program
	i   int
}

// Start begins lowering p against h.
func Start(p dsl.Program, h *hierarchy.Hierarchy) *Stepper {
	return &Stepper{
		h:   h,
		src: p,
		ctx: dsl.NewContext(h),
		out: &Program{
			NumDevices: h.K() * h.Replicas(),
			K:          h.K(),
			Source:     p.Clone(),
		},
	}
}

// Done reports whether every step has been lowered.
func (s *Stepper) Done() bool { return s.i >= len(s.src) }

// Next lowers the next step, failing with the same error a full Lower
// would. Calling Next past the end panics.
func (s *Stepper) Next() (Step, error) {
	h, in, i := s.h, s.src[s.i], s.i
	reps := h.Replicas()
	leafGroups := in.Groups(h)
	rows := s.ctx[leafGroups[0][0]].NumRows()
	next, err := s.ctx.Apply(in, h)
	if err != nil {
		return Step{}, fmt.Errorf("lower: step %d: %w", i, err)
	}
	var rowsOut int
	switch in.Op {
	case collective.Reduce:
		rowsOut = next[leafGroups[0][0]].NumRows() // root keeps the rows
	default:
		rowsOut = next[leafGroups[0][len(leafGroups[0])-1]].NumRows()
	}
	phys := make([][]int, 0, len(leafGroups)*reps)
	for r := 0; r < reps; r++ {
		for _, g := range leafGroups {
			pg := make([]int, len(g))
			for gi, u := range g {
				pg[gi] = h.Leaves[u][r]
			}
			phys = append(phys, pg)
		}
	}
	sortGroupsByFirst(phys)
	st := Step{
		Op:      in.Op,
		Groups:  phys,
		Rows:    rows,
		RowsOut: rowsOut,
		K:       h.K(),
	}
	s.out.Steps = append(s.out.Steps, st)
	s.ctx = next
	s.i++
	return st, nil
}

// Program returns the lowered program accumulated so far; it is complete
// once Done reports true.
func (s *Stepper) Program() *Program { return s.out }

// Key returns a canonical fingerprint of the lowered step sequence — the
// (G1,C1)...(Gn,Cn) form used to compare expressiveness of synthesis
// hierarchies (Definition 3.1). Chunk annotations are excluded: two
// hierarchies chunk the same payload differently without changing the
// communication structure.
func (p *Program) Key() string {
	var b strings.Builder
	for _, st := range p.Steps {
		fmt.Fprintf(&b, "%s:", st.Op)
		for _, g := range st.Groups {
			b.WriteByte('{')
			for i, d := range g {
				if i > 0 {
					b.WriteByte(',')
				}
				fmt.Fprintf(&b, "%d", d)
			}
			b.WriteByte('}')
		}
		b.WriteByte(';')
	}
	return b.String()
}

// String renders the lowered program compactly, e.g.
// "ReduceScatter×8(g=2, 1/1); AllReduce×8(g=2, 1/2); AllGather×8(g=2, 1/2)".
func (p *Program) String() string {
	parts := make([]string, len(p.Steps))
	for i, st := range p.Steps {
		parts[i] = fmt.Sprintf("%s×%d(g=%d, %d/%d)",
			st.Op, len(st.Groups), st.GroupSize(), st.Rows, st.K)
	}
	return strings.Join(parts, "; ")
}

// Validate checks structural invariants of a lowered program: groups within
// a step are disjoint, device ids are in range, and chunk counts are
// positive. It is used by property tests and by consumers that accept
// externally built programs.
func (p *Program) Validate() error {
	if len(p.Steps) == 0 {
		return fmt.Errorf("lower: empty program")
	}
	for i, st := range p.Steps {
		if st.Rows <= 0 || st.K <= 0 {
			return fmt.Errorf("lower: step %d has non-positive chunk counts", i)
		}
		if len(st.Groups) == 0 {
			return fmt.Errorf("lower: step %d has no groups", i)
		}
		seen := map[int]bool{}
		size := len(st.Groups[0])
		for _, g := range st.Groups {
			if len(g) != size {
				return fmt.Errorf("lower: step %d has ragged groups", i)
			}
			if len(g) < 2 {
				return fmt.Errorf("lower: step %d has a singleton group", i)
			}
			for _, d := range g {
				if d < 0 || d >= p.NumDevices {
					return fmt.Errorf("lower: step %d device %d out of range", i, d)
				}
				if seen[d] {
					return fmt.Errorf("lower: step %d device %d in two groups", i, d)
				}
				seen[d] = true
			}
		}
	}
	return nil
}

// sortGroupsByFirst orders a step's groups by their first device. Groups
// are disjoint, so first devices are distinct and the order is unique —
// insertion sort, sort.Slice and a stable sort all agree. Large steps
// (hundreds of two-device groups on deep systems) made the quadratic
// insertion sort the planning profile's hottest frame, so they take the
// O(n log n) path.
func sortGroupsByFirst(groups [][]int) {
	if len(groups) > 16 {
		sort.Slice(groups, func(i, j int) bool { return groups[i][0] < groups[j][0] })
		return
	}
	for i := 1; i < len(groups); i++ {
		for j := i; j > 0 && groups[j-1][0] > groups[j][0]; j-- {
			groups[j-1], groups[j] = groups[j], groups[j-1]
		}
	}
}
