package placement

import "testing"

// TestIterateMatchesEnumerate: the streaming producer must yield exactly
// the matrices Enumerate materializes, in the same canonical order.
func TestIterateMatchesEnumerate(t *testing.T) {
	cases := []struct{ hier, axes []int }{
		{[]int{4, 16}, []int{4, 16}},
		{[]int{4, 16}, []int{16, 2, 2}},
		{[]int{1, 2, 2, 4}, []int{4, 4}},
		{[]int{4, 8, 8}, []int{16, 16}},
	}
	for _, tc := range cases {
		want, err := Enumerate(tc.hier, tc.axes)
		if err != nil {
			t.Fatal(err)
		}
		var got []*Matrix
		if err := Iterate(tc.hier, tc.axes, func(m *Matrix) bool {
			got = append(got, m)
			return true
		}); err != nil {
			t.Fatal(err)
		}
		if len(got) != len(want) {
			t.Fatalf("hier %v axes %v: Iterate yielded %d matrices, Enumerate %d",
				tc.hier, tc.axes, len(got), len(want))
		}
		for i := range got {
			if !got[i].Equal(want[i]) {
				t.Errorf("hier %v axes %v: matrix %d differs: %v vs %v",
					tc.hier, tc.axes, i, got[i], want[i])
			}
		}
	}
}

// TestIterateEarlyStop: yield returning false aborts the DFS immediately.
func TestIterateEarlyStop(t *testing.T) {
	full, err := Enumerate([]int{4, 16}, []int{16, 2, 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(full) < 3 {
		t.Fatalf("need at least 3 matrices, got %d", len(full))
	}
	seen := 0
	if err := Iterate([]int{4, 16}, []int{16, 2, 2}, func(m *Matrix) bool {
		seen++
		return seen < 2
	}); err != nil {
		t.Fatal(err)
	}
	if seen != 2 {
		t.Errorf("early stop after 2 yields saw %d", seen)
	}
}

// TestIterateError: validation failures surface before any yield.
func TestIterateError(t *testing.T) {
	called := false
	err := Iterate([]int{4, 4}, []int{3, 5}, func(*Matrix) bool {
		called = true
		return true
	})
	if err == nil {
		t.Fatal("expected product-mismatch error")
	}
	if called {
		t.Error("yield called despite invalid axes")
	}
}
