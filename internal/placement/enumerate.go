package placement

import (
	"fmt"
	"math/big"

	"p2/internal/factor"
)

// Iterate streams every parallelism matrix for the given hierarchy and
// axes to yield, in the same canonical order Enumerate returns them
// (lexicographic over the column-major factor sequence). Matrices are
// produced one at a time as the enumeration DFS reaches them, so a
// consumer that stops early — yield returning false aborts the walk —
// or one that feeds a worker pool never holds the whole placement set in
// memory. It returns an error if the axis product does not equal the
// device count, in which case no placement exists.
func Iterate(hier, axes []int, yield func(*Matrix) bool) error {
	if factor.Product(hier) != factor.Product(axes) {
		return fmt.Errorf("placement: axes product %d != device count %d",
			factor.Product(axes), factor.Product(hier))
	}
	m, n := len(axes), len(hier)
	if m == 0 || n == 0 {
		return fmt.Errorf("placement: empty axes or hierarchy")
	}

	// DFS column by column. rem[i] is the part of axis i not yet assigned
	// to any column; a column assignment (f[0..m-1]) with ∏f = h[j] is
	// feasible only if f[i] divides rem[i].
	rem := append([]int(nil), axes...)
	cols := make([][]int, n) // cols[j] = chosen factors for column j

	// Precompute the suffix products of the hierarchy for pruning: after
	// assigning columns [0..j), axis i must satisfy rem[i] | suffix[j]
	// (it has to fit in the remaining levels).
	suffix := make([]int, n+1)
	suffix[n] = 1
	for j := n - 1; j >= 0; j-- {
		suffix[j] = suffix[j+1] * hier[j]
	}

	var colChoices func(j int) [][]int
	colChoices = func(j int) [][]int {
		return factor.OrderedFactorizations(hier[j], m)
	}

	var rec func(j int) bool
	rec = func(j int) bool {
		if j == n {
			for i := range rem {
				if rem[i] != 1 {
					return true
				}
			}
			x := make([][]int, m)
			for i := 0; i < m; i++ {
				x[i] = make([]int, n)
				for jj := 0; jj < n; jj++ {
					x[i][jj] = cols[jj][i]
				}
			}
			mat, err := NewMatrix(hier, axes, x)
			if err != nil {
				panic(err) // construction invariant violated
			}
			return yield(mat)
		}
		for _, f := range colChoices(j) {
			ok := true
			for i := 0; i < m; i++ {
				if rem[i]%f[i] != 0 {
					ok = false
					break
				}
			}
			if !ok {
				continue
			}
			for i := 0; i < m; i++ {
				rem[i] /= f[i]
			}
			feasible := true
			for i := 0; i < m; i++ {
				if suffix[j+1]%rem[i] != 0 {
					feasible = false
					break
				}
			}
			more := true
			if feasible {
				cols[j] = f
				more = rec(j + 1)
			}
			for i := 0; i < m; i++ {
				rem[i] *= f[i]
			}
			if !more {
				return false
			}
		}
		return true
	}
	rec(0)
	return nil
}

// Enumerate returns every parallelism matrix for the given hierarchy and
// axes, in a canonical order (lexicographic over the column-major factor
// sequence). It materializes the full set; use Iterate to stream matrices
// instead. It returns an error if the axis product does not equal the
// device count, in which case no placement exists.
func Enumerate(hier, axes []int) ([]*Matrix, error) {
	var out []*Matrix
	if err := Iterate(hier, axes, func(m *Matrix) bool {
		out = append(out, m)
		return true
	}); err != nil {
		return nil, err
	}
	return out, nil
}

// Count returns the number of parallelism matrices without materializing
// them.
func Count(hier, axes []int) int {
	n := 0
	if err := Iterate(hier, axes, func(*Matrix) bool {
		n++
		return true
	}); err != nil {
		return 0
	}
	return n
}

// NaivePlacementCount returns the number of arbitrary device assignments
// the naive search space contains: (∏ axes)! — the quantity the paper
// contrasts against (e.g. (4·4)! > 2^44 for Fig. 2). The result is exact.
func NaivePlacementCount(axes []int) *big.Int {
	n := factor.Product(axes)
	return new(big.Int).MulRange(1, int64(n))
}
