package placement

import (
	"testing"
)

// FuzzParseMatrix checks the ParseMatrix ∘ Matrix.String round trip: for
// any rows ParseRows accepts (against the hierarchy and axes implied by
// their products), the rendered matrix must parse back to an equal
// matrix with an identical rendering.
func FuzzParseMatrix(f *testing.F) {
	f.Add("[[1 4] [4 4]]")
	f.Add("[[2 2] [2 8]]")
	f.Add("[[1,2,8],[4,4,1]]")
	f.Add("[[1 1 2 2] [1 2 1 2]]")
	f.Add("[ [16] ]")
	f.Add("[[0 3]]")
	f.Fuzz(func(t *testing.T, s string) {
		rows, err := ParseRows(s)
		if err != nil {
			return
		}
		// Derive the hierarchy and axes the rows imply; cap the factors so
		// radix products stay far from overflow.
		total := 1
		for _, row := range rows {
			for _, v := range row {
				if v <= 0 || v > 1<<10 {
					return
				}
				total *= v
				if total > 1<<20 {
					return
				}
			}
		}
		hier := make([]int, len(rows[0]))
		for j := range hier {
			hier[j] = 1
			for i := range rows {
				hier[j] *= rows[i][j]
			}
		}
		axes := make([]int, len(rows))
		for i, row := range rows {
			axes[i] = 1
			for _, v := range row {
				axes[i] *= v
			}
		}
		m, err := NewMatrix(hier, axes, rows)
		if err != nil {
			t.Fatalf("NewMatrix rejects rows %v with their own products: %v", rows, err)
		}
		canon := m.String()
		again, err := ParseMatrix(canon, hier, axes)
		if err != nil {
			t.Fatalf("ParseMatrix rejects its own rendering %q: %v", canon, err)
		}
		if !m.Equal(again) {
			t.Fatalf("round trip changed the matrix: %v -> %v", m, again)
		}
		if got := again.String(); got != canon {
			t.Fatalf("round trip not idempotent: %q -> %q", canon, got)
		}
	})
}
