package placement

import (
	"testing"

	"p2/internal/factor"
)

// bruteForceMatrices enumerates all integer matrices with the required row
// and column products directly (no pruning), as an independent oracle for
// Enumerate.
func bruteForceMatrices(hier, axes []int) int {
	m, n := len(axes), len(hier)
	// Enumerate every cell over the divisors of the max axis size and
	// filter. Exponential — keep inputs small.
	cells := m * n
	limits := make([][]int, cells)
	for i := range limits {
		limits[i] = factor.Divisors(axes[i/n])
	}
	count := 0
	cur := make([]int, cells)
	var rec func(i int)
	rec = func(i int) {
		if i == cells {
			for r := 0; r < m; r++ {
				p := 1
				for c := 0; c < n; c++ {
					p *= cur[r*n+c]
				}
				if p != axes[r] {
					return
				}
			}
			for c := 0; c < n; c++ {
				p := 1
				for r := 0; r < m; r++ {
					p *= cur[r*n+c]
				}
				if p != hier[c] {
					return
				}
			}
			count++
			return
		}
		for _, d := range limits[i] {
			cur[i] = d
			rec(i + 1)
		}
	}
	rec(0)
	return count
}

func TestEnumerateMatchesBruteForce(t *testing.T) {
	cases := []struct{ hier, axes []int }{
		{[]int{2, 2}, []int{2, 2}},
		{[]int{2, 4}, []int{4, 2}},
		{[]int{2, 4}, []int{2, 2, 2}},
		{[]int{4, 4}, []int{4, 4}},
		{[]int{2, 2, 4}, []int{4, 4}},
		{[]int{4, 8}, []int{8, 4}},
		{[]int{2, 8}, []int{16}},
		{[]int{3, 6}, []int{2, 9}},
		{[]int{6, 6}, []int{4, 9}},
	}
	for _, c := range cases {
		ms, err := Enumerate(c.hier, c.axes)
		if err != nil {
			t.Fatal(err)
		}
		want := bruteForceMatrices(c.hier, c.axes)
		if len(ms) != want {
			t.Errorf("Enumerate(%v, %v) = %d matrices, brute force = %d",
				c.hier, c.axes, len(ms), want)
		}
	}
}

func TestEnumerateNonPowerOfTwo(t *testing.T) {
	// Factorizations with primes other than 2 must work throughout.
	ms, err := Enumerate([]int{3, 6}, []int{2, 9})
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) == 0 {
		t.Fatal("no matrices for [3 6] × [2 9]")
	}
	for _, m := range ms {
		for dev := 0; dev < m.NumDevices(); dev++ {
			if back := m.Device(m.AxisCoords(dev)); back != dev {
				t.Fatalf("%v: bijection broken at %d", m, dev)
			}
		}
		for _, axes := range [][]int{{0}, {1}} {
			groups := m.ReductionGroups(axes)
			seen := map[int]bool{}
			for _, g := range groups {
				for _, d := range g {
					if seen[d] {
						t.Fatalf("%v: device %d duplicated", m, d)
					}
					seen[d] = true
				}
			}
			if len(seen) != 18 {
				t.Fatalf("%v: groups cover %d devices", m, len(seen))
			}
		}
	}
}

func TestEnumerateCanonicalOrder(t *testing.T) {
	// The enumeration order must be deterministic across calls.
	a, _ := Enumerate([]int{4, 16}, []int{8, 8})
	b, _ := Enumerate([]int{4, 16}, []int{8, 8})
	for i := range a {
		if !a[i].Equal(b[i]) {
			t.Fatal("nondeterministic enumeration order")
		}
	}
}

func TestAllEnumeratedSatisfyConstraints(t *testing.T) {
	ms, err := Enumerate([]int{2, 2, 4}, []int{4, 4})
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range ms {
		for i, p := range m.Axes {
			if factor.Product(m.Row(i)) != p {
				t.Errorf("%v: row %d product wrong", m, i)
			}
		}
		for j, hsz := range m.Hier {
			col := 1
			for i := range m.Axes {
				col *= m.X[i][j]
			}
			if col != hsz {
				t.Errorf("%v: column %d product wrong", m, j)
			}
		}
	}
}
