// Package placement implements parallelism placement synthesis (§3.1 of the
// P² paper): enumerating parallelism matrices and interpreting a matrix as
// a bijection between physical devices and parallelism-axis coordinates.
//
// A parallelism matrix X has one row per parallelism axis and one column
// per hardware level. Entry x[i][j] is the parallelism factor: the number
// of level-j entities a level-(j-1) entity splits axis i across. The
// constraints (paper Eq. 1 and 2) are
//
//	∏_i x[i][j] = h[j]   (column products match the hierarchy)
//	∏_j x[i][j] = p[i]   (row products match the axis sizes)
package placement

import (
	"fmt"
	"strings"

	"p2/internal/factor"
	"p2/internal/topology"
)

// Matrix is a parallelism matrix together with the hierarchy and axes it
// was synthesized for.
type Matrix struct {
	// Hier is the hardware hierarchy [h0 ... hn] (root-most first).
	Hier []int
	// Axes are the parallelism axis sizes [p0 ... pm].
	Axes []int
	// X[i][j] is the parallelism factor of axis i at hardware level j.
	X [][]int

	// devRadix encodes the fully expanded physical address: for each
	// hardware level j the digits (y[0][j] ... y[m][j]) in axis order —
	// i.e. the column-based expansion (hierarchy (b) of §3.4).
	devRadix *factor.Radix
	// axisRadix[i] encodes axis i's coordinate from its per-level digits
	// (y[i][0] ... y[i][n]) — one row of the matrix.
	axisRadix []*factor.Radix
}

// NewMatrix validates and finalizes a matrix. The entries of x are copied.
func NewMatrix(hier, axes []int, x [][]int) (*Matrix, error) {
	m := &Matrix{
		Hier: append([]int(nil), hier...),
		Axes: append([]int(nil), axes...),
		X:    make([][]int, len(x)),
	}
	for i := range x {
		m.X[i] = append([]int(nil), x[i]...)
	}
	if err := m.init(); err != nil {
		return nil, err
	}
	return m, nil
}

// MustMatrix is NewMatrix panicking on error.
func MustMatrix(hier, axes []int, x [][]int) *Matrix {
	m, err := NewMatrix(hier, axes, x)
	if err != nil {
		panic(err)
	}
	return m
}

func (m *Matrix) init() error {
	if len(m.Axes) == 0 || len(m.Hier) == 0 {
		return fmt.Errorf("placement: empty axes or hierarchy")
	}
	if len(m.X) != len(m.Axes) {
		return fmt.Errorf("placement: %d rows for %d axes", len(m.X), len(m.Axes))
	}
	for i, row := range m.X {
		if len(row) != len(m.Hier) {
			return fmt.Errorf("placement: row %d has %d entries for %d levels", i, len(row), len(m.Hier))
		}
		if got := factor.Product(row); got != m.Axes[i] {
			return fmt.Errorf("placement: row %d product %d != axis size %d", i, got, m.Axes[i])
		}
		for j, v := range row {
			if v <= 0 {
				return fmt.Errorf("placement: non-positive factor %d at (%d,%d)", v, i, j)
			}
		}
	}
	for j := range m.Hier {
		col := 1
		for i := range m.X {
			col *= m.X[i][j]
		}
		if col != m.Hier[j] {
			return fmt.Errorf("placement: column %d product %d != level size %d", j, col, m.Hier[j])
		}
	}
	// Fully expanded physical radix: level-major, axis within level.
	sizes := make([]int, 0, len(m.Hier)*len(m.Axes))
	for j := range m.Hier {
		for i := range m.Axes {
			sizes = append(sizes, m.X[i][j])
		}
	}
	m.devRadix = factor.NewRadix(sizes)
	m.axisRadix = make([]*factor.Radix, len(m.Axes))
	for i := range m.Axes {
		m.axisRadix[i] = factor.NewRadix(m.X[i])
	}
	return nil
}

// NumAxes returns the number of parallelism axes (rows).
func (m *Matrix) NumAxes() int { return len(m.Axes) }

// NumLevels returns the number of hardware levels (columns).
func (m *Matrix) NumLevels() int { return len(m.Hier) }

// NumDevices returns the total device count (= product of the hierarchy =
// product of the axes).
func (m *Matrix) NumDevices() int { return m.devRadix.Total() }

// digitPos is the expanded-digit position of (axis i, level j).
func (m *Matrix) digitPos(i, j int) int { return j*len(m.Axes) + i }

// AxisCoord returns the axis-i coordinate of physical device dev: the
// mixed-radix combination of dev's per-level digits belonging to row i.
func (m *Matrix) AxisCoord(dev, i int) int {
	v := 0
	for j := range m.Hier {
		v = v*m.X[i][j] + m.devRadix.Digit(dev, m.digitPos(i, j))
	}
	return v
}

// AxisCoords returns all axis coordinates of dev.
func (m *Matrix) AxisCoords(dev int) []int {
	out := make([]int, len(m.Axes))
	for i := range m.Axes {
		out[i] = m.AxisCoord(dev, i)
	}
	return out
}

// Device returns the physical device holding the given axis coordinates.
// It is the inverse of AxisCoords.
func (m *Matrix) Device(axisCoords []int) int {
	if len(axisCoords) != len(m.Axes) {
		panic(fmt.Sprintf("placement: %d axis coords for %d axes", len(axisCoords), len(m.Axes)))
	}
	digits := make([]int, m.devRadix.Len())
	for i, a := range axisCoords {
		row := m.axisRadix[i].Decode(a)
		for j := range m.Hier {
			digits[m.digitPos(i, j)] = row[j]
		}
	}
	return m.devRadix.Encode(digits)
}

// FactorDigit returns the expanded-address digit of device dev belonging
// to axis i at hardware level j — the coordinate within the parallelism
// factor x[i][j]. The full set of factor digits uniquely addresses a
// device.
func (m *Matrix) FactorDigit(dev, i, j int) int {
	return m.devRadix.Digit(dev, m.digitPos(i, j))
}

// LevelCoord returns dev's hardware coordinate at level j (in [0, h[j])),
// combining the level's per-axis digits in axis order.
func (m *Matrix) LevelCoord(dev, j int) int {
	v := 0
	for i := range m.Axes {
		v = v*m.X[i][j] + m.devRadix.Digit(dev, m.digitPos(i, j))
	}
	return v
}

// PhysicalDevice converts dev (the matrix's expanded addressing) into the
// device id used by the given system, which must have the same hierarchy.
func (m *Matrix) PhysicalDevice(dev int, sys *topology.System) int {
	coords := make([]int, len(m.Hier))
	for j := range m.Hier {
		coords[j] = m.LevelCoord(dev, j)
	}
	return sys.Device(coords)
}

// ReductionGroup returns the devices that must be reduced with dev for the
// given reduction axes: all devices sharing dev's coordinates on every
// non-reduction axis. The result is sorted by the varying axes' coordinates
// (row-major over reduceAxes) and always includes dev.
func (m *Matrix) ReductionGroup(dev int, reduceAxes []int) []int {
	isRed := make([]bool, len(m.Axes))
	for _, r := range reduceAxes {
		isRed[r] = true
	}
	coords := m.AxisCoords(dev)
	sizes := make([]int, 0, len(reduceAxes))
	for _, r := range reduceAxes {
		sizes = append(sizes, m.Axes[r])
	}
	rad := factor.NewRadix(sizes)
	out := make([]int, 0, rad.Total())
	cur := append([]int(nil), coords...)
	digits := make([]int, rad.Len())
	for v := 0; v < rad.Total(); v++ {
		rad.DecodeInto(v, digits)
		for k, r := range reduceAxes {
			cur[r] = digits[k]
		}
		out = append(out, m.Device(cur))
	}
	return out
}

// ReductionGroups returns every reduction group for the given axes, one per
// combination of non-reduction coordinates, in canonical order.
func (m *Matrix) ReductionGroups(reduceAxes []int) [][]int {
	isRed := make([]bool, len(m.Axes))
	for _, r := range reduceAxes {
		isRed[r] = true
	}
	var freeSizes []int
	var freeAxes []int
	for i, p := range m.Axes {
		if !isRed[i] {
			freeSizes = append(freeSizes, p)
			freeAxes = append(freeAxes, i)
		}
	}
	freeRad := factor.NewRadix(freeSizes)
	groups := make([][]int, 0, freeRad.Total())
	coords := make([]int, len(m.Axes))
	digits := make([]int, freeRad.Len())
	for v := 0; v < freeRad.Total(); v++ {
		freeRad.DecodeInto(v, digits)
		for k, i := range freeAxes {
			coords[i] = digits[k]
		}
		for _, r := range reduceAxes {
			coords[r] = 0
		}
		groups = append(groups, m.ReductionGroup(m.Device(coords), reduceAxes))
	}
	return groups
}

// Row returns a copy of row i.
func (m *Matrix) Row(i int) []int { return append([]int(nil), m.X[i]...) }

// String renders the matrix in the paper's compact form, e.g.
// "[[1 4] [4 4]]".
func (m *Matrix) String() string {
	var b strings.Builder
	b.WriteByte('[')
	for i, row := range m.X {
		if i > 0 {
			b.WriteByte(' ')
		}
		b.WriteByte('[')
		for j, v := range row {
			if j > 0 {
				b.WriteByte(' ')
			}
			fmt.Fprintf(&b, "%d", v)
		}
		b.WriteByte(']')
	}
	b.WriteByte(']')
	return b.String()
}

// Equal reports whether two matrices have identical shape and entries.
func (m *Matrix) Equal(o *Matrix) bool {
	if len(m.X) != len(o.X) || len(m.Hier) != len(o.Hier) {
		return false
	}
	for j := range m.Hier {
		if m.Hier[j] != o.Hier[j] {
			return false
		}
	}
	for i := range m.X {
		for j := range m.X[i] {
			if m.X[i][j] != o.X[i][j] {
				return false
			}
		}
	}
	return true
}
