package placement

import (
	"math/big"
	"reflect"
	"testing"
	"testing/quick"
)

var (
	fig2Hier = []int{1, 2, 2, 4}
	fig2Axes = []int{4, 4} // data parallelism 4, parameter shards 4
)

func TestFigure2MatricesAreValid(t *testing.T) {
	// The three placements shown in Fig. 2b/2c/2d.
	for _, rows := range [][][]int{
		{{1, 2, 2, 1}, {1, 1, 1, 4}},
		{{1, 2, 1, 2}, {1, 1, 2, 2}},
		{{1, 1, 2, 2}, {1, 2, 1, 2}},
	} {
		if _, err := NewMatrix(fig2Hier, fig2Axes, rows); err != nil {
			t.Errorf("Fig.2 matrix %v rejected: %v", rows, err)
		}
	}
}

func TestFigure2bInterpretation(t *testing.T) {
	// In Fig. 2b each CPU is one data-parallel replica and each GPU under
	// it holds one parameter shard: batch = server*2+cpu, shard = gpu.
	m := MustMatrix(fig2Hier, fig2Axes, [][]int{{1, 2, 2, 1}, {1, 1, 1, 4}})
	for dev := 0; dev < 16; dev++ {
		s, c, g := (dev/8)%2, (dev/4)%2, dev%4
		wantBatch := s*2 + c
		wantShard := g
		got := m.AxisCoords(dev)
		if got[0] != wantBatch || got[1] != wantShard {
			t.Errorf("dev %d: coords %v, want [%d %d]", dev, got, wantBatch, wantShard)
		}
	}
}

func TestFigure2dInterpretation(t *testing.T) {
	// Fig. 2d: [[1 1 2 2] [1 2 1 2]]. batch = cpu*2 + gpu/2,
	// shard = server*2 + gpu%2.
	m := MustMatrix(fig2Hier, fig2Axes, [][]int{{1, 1, 2, 2}, {1, 2, 1, 2}})
	for dev := 0; dev < 16; dev++ {
		s, c, g := (dev/8)%2, (dev/4)%2, dev%4
		got := m.AxisCoords(dev)
		if want := c*2 + g/2; got[0] != want {
			t.Errorf("dev %d: batch %d, want %d", dev, got[0], want)
		}
		if want := s*2 + g%2; got[1] != want {
			t.Errorf("dev %d: shard %d, want %d", dev, got[1], want)
		}
	}
}

func TestDeviceAxisBijection(t *testing.T) {
	ms, err := Enumerate(fig2Hier, fig2Axes)
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range ms {
		seen := map[int]bool{}
		for dev := 0; dev < m.NumDevices(); dev++ {
			coords := m.AxisCoords(dev)
			back := m.Device(coords)
			if back != dev {
				t.Fatalf("%v: Device(AxisCoords(%d)) = %d", m, dev, back)
			}
			key := coords[0]*100 + coords[1]
			if seen[key] {
				t.Fatalf("%v: duplicate axis coords %v", m, coords)
			}
			seen[key] = true
		}
	}
}

func TestDeviceAxisBijectionQuick(t *testing.T) {
	m := MustMatrix([]int{4, 16}, []int{8, 8}, [][]int{{2, 4}, {2, 4}})
	f := func(raw uint16) bool {
		dev := int(raw) % m.NumDevices()
		return m.Device(m.AxisCoords(dev)) == dev
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestReductionGroupFig2b(t *testing.T) {
	// Fig. 2b: reduction along parameter sharding = the 4 GPUs under each
	// CPU (communication over S0 only).
	m := MustMatrix(fig2Hier, fig2Axes, [][]int{{1, 2, 2, 1}, {1, 1, 1, 4}})
	got := m.ReductionGroup(0, []int{1})
	if !reflect.DeepEqual(got, []int{0, 1, 2, 3}) {
		t.Errorf("group of dev0 = %v, want [0 1 2 3]", got)
	}
	got = m.ReductionGroup(5, []int{1})
	if !reflect.DeepEqual(got, []int{4, 5, 6, 7}) {
		t.Errorf("group of dev5 = %v, want [4 5 6 7]", got)
	}
}

func TestReductionGroupsPartition(t *testing.T) {
	ms, err := Enumerate([]int{4, 16}, []int{4, 16})
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range ms {
		for _, axes := range [][]int{{0}, {1}, {0, 1}} {
			groups := m.ReductionGroups(axes)
			seen := map[int]bool{}
			total := 0
			for _, g := range groups {
				wantSize := 1
				for _, a := range axes {
					wantSize *= m.Axes[a]
				}
				if len(g) != wantSize {
					t.Fatalf("%v axes %v: group size %d, want %d", m, axes, len(g), wantSize)
				}
				for _, d := range g {
					if seen[d] {
						t.Fatalf("%v axes %v: device %d in two groups", m, axes, d)
					}
					seen[d] = true
					total++
				}
			}
			if total != m.NumDevices() {
				t.Fatalf("%v axes %v: groups cover %d of %d devices", m, axes, total, m.NumDevices())
			}
		}
	}
}

func TestEnumerateMatchesPaperCounts(t *testing.T) {
	// From the appendix table for 4 nodes × 16 A100 (hierarchy [4 16]):
	// axes [2 32] has 2 matrices, [4 16] has 3, [8 8] has 3, [16 4] has 3,
	// [32 2] has 2.
	cases := []struct {
		axes []int
		want int
	}{
		{[]int{2, 32}, 2},
		{[]int{4, 16}, 3},
		{[]int{8, 8}, 3},
		{[]int{16, 4}, 3},
		{[]int{32, 2}, 2},
		{[]int{64}, 1},
	}
	for _, c := range cases {
		ms, err := Enumerate([]int{4, 16}, c.axes)
		if err != nil {
			t.Fatal(err)
		}
		if len(ms) != c.want {
			t.Errorf("Enumerate([4 16], %v): %d matrices, want %d", c.axes, len(ms), c.want)
		}
	}
}

func TestEnumeratePaperMatricesPresent(t *testing.T) {
	ms, err := Enumerate([]int{4, 16}, []int{4, 16})
	if err != nil {
		t.Fatal(err)
	}
	wants := []string{"[[1 4] [4 4]]", "[[2 2] [2 8]]", "[[4 1] [1 16]]"}
	for _, w := range wants {
		found := false
		for _, m := range ms {
			if m.String() == w {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("matrix %s not enumerated; got %v", w, ms)
		}
	}
}

func TestEnumerateThreeAxes(t *testing.T) {
	// Appendix: [16 2 2] on [4 16] lists 4 representative matrices; ensure
	// they are all enumerated, with valid products.
	ms, err := Enumerate([]int{4, 16}, []int{16, 2, 2})
	if err != nil {
		t.Fatal(err)
	}
	wants := []string{
		"[[1 16] [2 1] [2 1]]",
		"[[2 8] [2 1] [1 2]]",
		"[[2 8] [1 2] [2 1]]",
		"[[4 4] [1 2] [1 2]]",
	}
	have := map[string]bool{}
	for _, m := range ms {
		have[m.String()] = true
	}
	for _, w := range wants {
		if !have[w] {
			t.Errorf("matrix %s not enumerated", w)
		}
	}
}

func TestEnumerateErrors(t *testing.T) {
	if _, err := Enumerate([]int{4, 16}, []int{3, 3}); err == nil {
		t.Error("mismatched product accepted")
	}
	if _, err := Enumerate(nil, nil); err == nil {
		t.Error("empty inputs accepted")
	}
}

func TestNewMatrixValidation(t *testing.T) {
	if _, err := NewMatrix([]int{2, 2}, []int{4}, [][]int{{2, 4}}); err == nil {
		t.Error("bad row product accepted")
	}
	if _, err := NewMatrix([]int{2, 2}, []int{2, 2}, [][]int{{2, 1}, {2, 1}}); err == nil {
		t.Error("bad column product accepted")
	}
	if _, err := NewMatrix([]int{2}, []int{2, 1}, [][]int{{2}}); err == nil {
		t.Error("row count mismatch accepted")
	}
}

func TestNaivePlacementCount(t *testing.T) {
	got := NaivePlacementCount([]int{4, 4})
	// 16! = 20922789888000 > 2^44, the paper's intro claim.
	want, _ := new(big.Int).SetString("20922789888000", 10)
	if got.Cmp(want) != 0 {
		t.Errorf("NaivePlacementCount = %v, want %v", got, want)
	}
	two44 := new(big.Int).Lsh(big.NewInt(1), 44)
	if got.Cmp(two44) <= 0 {
		t.Error("16! should exceed 2^44")
	}
}

func TestMatrixString(t *testing.T) {
	m := MustMatrix([]int{4, 16}, []int{2, 32}, [][]int{{1, 2}, {4, 8}})
	if got := m.String(); got != "[[1 2] [4 8]]" {
		t.Errorf("String = %q", got)
	}
}

func TestMatrixEqual(t *testing.T) {
	a := MustMatrix([]int{4, 16}, []int{4, 16}, [][]int{{1, 4}, {4, 4}})
	b := MustMatrix([]int{4, 16}, []int{4, 16}, [][]int{{1, 4}, {4, 4}})
	c := MustMatrix([]int{4, 16}, []int{4, 16}, [][]int{{2, 2}, {2, 8}})
	if !a.Equal(b) {
		t.Error("identical matrices not Equal")
	}
	if a.Equal(c) {
		t.Error("distinct matrices Equal")
	}
}

func TestParseRows(t *testing.T) {
	rows, err := ParseRows("[[1 4] [4 4]]")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(rows, [][]int{{1, 4}, {4, 4}}) {
		t.Errorf("ParseRows = %v", rows)
	}
	rows, err = ParseRows("[[1,4],[4,4]]")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(rows, [][]int{{1, 4}, {4, 4}}) {
		t.Errorf("ParseRows with commas = %v", rows)
	}
}

func TestParseRowsErrors(t *testing.T) {
	for _, s := range []string{"", "[]", "[[1 2] [3]]", "[[1 2]", "[[a b]]", "[[1 2] junk]"} {
		if _, err := ParseRows(s); err == nil {
			t.Errorf("ParseRows(%q) succeeded", s)
		}
	}
}

func TestParseVector(t *testing.T) {
	v, err := ParseVector("[4 16]")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(v, []int{4, 16}) {
		t.Errorf("ParseVector = %v", v)
	}
	if _, err := ParseVector("4 16"); err == nil {
		t.Error("unbracketed vector accepted")
	}
}

func TestParseMatrixRoundTrip(t *testing.T) {
	ms, err := Enumerate([]int{4, 16}, []int{8, 8})
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range ms {
		back, err := ParseMatrix(m.String(), []int{4, 16}, []int{8, 8})
		if err != nil {
			t.Fatalf("ParseMatrix(%s): %v", m, err)
		}
		if !m.Equal(back) {
			t.Errorf("round trip changed %s to %s", m, back)
		}
	}
}

func TestLevelCoord(t *testing.T) {
	m := MustMatrix(fig2Hier, fig2Axes, [][]int{{1, 1, 2, 2}, {1, 2, 1, 2}})
	for dev := 0; dev < 16; dev++ {
		want := []int{0, (dev / 8) % 2, (dev / 4) % 2, dev % 4}
		for j := 0; j < 4; j++ {
			if got := m.LevelCoord(dev, j); got != want[j] {
				t.Errorf("LevelCoord(%d,%d) = %d, want %d", dev, j, got, want[j])
			}
		}
	}
}
