package placement

import (
	"fmt"
	"strconv"
	"strings"
)

// ParseRows parses the paper's compact matrix notation, e.g.
// "[[1 4] [4 4]]" or "[[1,4],[4,4]]", into rows of integers. Whitespace and
// commas between elements and rows are interchangeable.
func ParseRows(s string) ([][]int, error) {
	s = strings.TrimSpace(s)
	if !strings.HasPrefix(s, "[") || !strings.HasSuffix(s, "]") {
		return nil, fmt.Errorf("placement: matrix %q must be bracketed", s)
	}
	inner := s[1 : len(s)-1]
	var rows [][]int
	for {
		start := strings.IndexByte(inner, '[')
		if start < 0 {
			if strings.Trim(inner, " ,\t") != "" {
				return nil, fmt.Errorf("placement: trailing garbage %q", inner)
			}
			break
		}
		end := strings.IndexByte(inner[start:], ']')
		if end < 0 {
			return nil, fmt.Errorf("placement: unterminated row in %q", s)
		}
		row, err := parseIntList(inner[start+1 : start+end])
		if err != nil {
			return nil, err
		}
		rows = append(rows, row)
		inner = inner[start+end+1:]
	}
	if len(rows) == 0 {
		return nil, fmt.Errorf("placement: no rows in %q", s)
	}
	width := len(rows[0])
	for _, r := range rows {
		if len(r) != width {
			return nil, fmt.Errorf("placement: ragged rows in %q", s)
		}
	}
	return rows, nil
}

// ParseMatrix parses rows and validates them against a hierarchy and axes.
func ParseMatrix(s string, hier, axes []int) (*Matrix, error) {
	rows, err := ParseRows(s)
	if err != nil {
		return nil, err
	}
	return NewMatrix(hier, axes, rows)
}

// ParseVector parses a flat bracketed vector such as "[4 16]".
func ParseVector(s string) ([]int, error) {
	s = strings.TrimSpace(s)
	if !strings.HasPrefix(s, "[") || !strings.HasSuffix(s, "]") {
		return nil, fmt.Errorf("placement: vector %q must be bracketed", s)
	}
	return parseIntList(s[1 : len(s)-1])
}

func parseIntList(s string) ([]int, error) {
	fields := strings.FieldsFunc(s, func(r rune) bool {
		return r == ' ' || r == ',' || r == '\t'
	})
	if len(fields) == 0 {
		return nil, fmt.Errorf("placement: empty int list")
	}
	out := make([]int, len(fields))
	for i, f := range fields {
		v, err := strconv.Atoi(f)
		if err != nil {
			return nil, fmt.Errorf("placement: bad integer %q: %w", f, err)
		}
		out[i] = v
	}
	return out, nil
}
