// Package topology models hierarchical accelerator systems as described in
// §2 of the P² paper: a hardware hierarchy where each level has a name and a
// cardinality, plus a set of interconnects with bandwidth and latency
// characteristics.
//
// Levels are ordered from root-most (index 0) to leaf-most (index n). A
// device is a leaf; its physical address is the mixed-radix tuple of per
// level coordinates. Communication between two devices enters the network
// at the leaf, climbs the uplinks to the lowest common level, crosses that
// level's switch, and descends on the other side. The level at which two
// device addresses first differ therefore determines which interconnects a
// transfer traverses, which is exactly the structure the paper's cost model
// (§5) exploits.
package topology

import (
	"fmt"
	"math"
	"strings"

	"p2/internal/factor"
)

// Level is one tier of the hardware hierarchy: Count entities of this level
// exist under each entity of the level above.
type Level struct {
	Name  string
	Count int
}

// Link describes the uplink connecting an entity at some level to the
// switch of its parent level (for the root-most level, to the data-center
// network).
type Link struct {
	// Name identifies the interconnect technology, e.g. "NVSwitch",
	// "NVLinkRing", "NIC".
	Name string
	// Bandwidth is the effective uni-directional bandwidth in bytes/second.
	Bandwidth float64
	// Latency is the per-message latency in seconds.
	Latency float64
}

// CrossDomainModel captures intra-node structure that the analytic cost
// model deliberately ignores (a modelling simplification the paper calls
// out for V100, Fig. 9b): devices within one node are split into
// PCIe/shared-memory domains, and transfers crossing domains are throttled.
type CrossDomainModel struct {
	// DomainsPerNode is how many equally sized domains each node's devices
	// split into. Must divide the leaf-level count.
	DomainsPerNode int
	// Bandwidth is the effective bandwidth in bytes/second of the
	// cross-domain path (e.g. PCIe + shared memory staging).
	Bandwidth float64
	// Latency is the additional per-message latency in seconds.
	Latency float64
}

// System is a hierarchical accelerator system.
type System struct {
	// Name identifies the configuration, e.g. "a100-4node".
	Name string
	// Levels from root-most to leaf-most. The total device count is the
	// product of all level counts.
	Levels []Level
	// Uplinks[l] is the link from a level-l entity up toward level l-1
	// (or to the data-center network when l == 0). len(Uplinks) ==
	// len(Levels).
	Uplinks []Link
	// CrossDomain optionally refines the leaf level for the event-level
	// emulator. The analytic model ignores it.
	CrossDomain *CrossDomainModel
	// Overrides degrades individual entity uplinks, making the fabric
	// heterogeneous; see LinkOverride and WithOverrides. Empty for the
	// pristine uniform-link systems of §5.
	Overrides []LinkOverride

	radix *factor.Radix
	// entOffsets[l] is the cumulative entity count of levels above l; see
	// EntityOffsets.
	entOffsets []int
	// effBW/effLat are dense per-entity effective link characteristics
	// (indexed entOffsets[l]+e) and minLat the per-level minimum effective
	// latency; all nil unless some override actually degrades a link, so
	// pristine systems keep the uniform fast paths.
	effBW, effLat, minLat []float64
}

// New constructs and validates a System.
func New(name string, levels []Level, uplinks []Link) (*System, error) {
	s := &System{
		Name:    name,
		Levels:  append([]Level(nil), levels...),
		Uplinks: append([]Link(nil), uplinks...),
	}
	if err := s.init(); err != nil {
		return nil, err
	}
	return s, nil
}

// MustNew is New panicking on error; intended for preset construction.
func MustNew(name string, levels []Level, uplinks []Link) *System {
	s, err := New(name, levels, uplinks)
	if err != nil {
		panic(err)
	}
	return s
}

func (s *System) init() error {
	if len(s.Levels) == 0 {
		return fmt.Errorf("topology: system %q has no levels", s.Name)
	}
	if len(s.Uplinks) != len(s.Levels) {
		return fmt.Errorf("topology: system %q has %d levels but %d uplinks",
			s.Name, len(s.Levels), len(s.Uplinks))
	}
	sizes := make([]int, len(s.Levels))
	for i, l := range s.Levels {
		if l.Count <= 0 {
			return fmt.Errorf("topology: level %q has non-positive count %d", l.Name, l.Count)
		}
		if l.Name == "" {
			return fmt.Errorf("topology: level %d has empty name", i)
		}
		sizes[i] = l.Count
	}
	for i, u := range s.Uplinks {
		if err := validLink(u.Bandwidth, u.Latency); err != nil {
			return fmt.Errorf("topology: uplink %d (%s): %w", i, u.Name, err)
		}
	}
	if cd := s.CrossDomain; cd != nil {
		leaf := s.Levels[len(s.Levels)-1].Count
		if cd.DomainsPerNode <= 0 || leaf%cd.DomainsPerNode != 0 {
			return fmt.Errorf("topology: cross-domain count %d does not divide leaf count %d",
				cd.DomainsPerNode, leaf)
		}
		if err := validLink(cd.Bandwidth, cd.Latency); err != nil {
			return fmt.Errorf("topology: cross-domain link: %w", err)
		}
	}
	s.radix = factor.NewRadix(sizes)
	s.entOffsets = make([]int, len(s.Levels)+1)
	prod := 1
	for l, lv := range s.Levels {
		prod *= lv.Count
		s.entOffsets[l+1] = s.entOffsets[l] + prod
	}
	return s.initOverrides()
}

// validLink rejects link characteristics that would silently corrupt the
// cost model: a non-positive, NaN or +Inf bandwidth yields ±Inf/NaN step
// times, and a negative or non-finite latency likewise. Note NaN fails
// every ordered comparison, so the conditions are written to catch it
// explicitly rather than relying on `<= 0`.
func validLink(bandwidth, latency float64) error {
	if !(bandwidth > 0) || math.IsInf(bandwidth, 1) {
		return fmt.Errorf("bandwidth %v must be positive and finite", bandwidth)
	}
	if !(latency >= 0) || math.IsInf(latency, 1) {
		return fmt.Errorf("latency %v must be non-negative and finite", latency)
	}
	return nil
}

// EntityOffsets returns cumulative entity counts per level:
// EntityOffsets()[l] is the number of entities strictly above level l, so
// a dense per-entity array over all levels has EntityOffsets()[NumLevels()]
// slots and entity e of level l lives at EntityOffsets()[l]+e. The slice
// is shared and must not be mutated.
func (s *System) EntityOffsets() []int { return s.entOffsets }

// WithCrossDomain returns a copy of s carrying the given cross-domain model.
func (s *System) WithCrossDomain(cd CrossDomainModel) *System {
	c := *s
	c.CrossDomain = &cd
	if err := c.init(); err != nil {
		panic(err)
	}
	return &c
}

// NumLevels returns the number of hierarchy levels.
func (s *System) NumLevels() int { return len(s.Levels) }

// NumDevices returns the total number of leaf devices.
func (s *System) NumDevices() int { return s.radix.Total() }

// NumMachines returns the number of machines in the system: the product of
// all non-leaf level counts (every entity that owns devices, e.g. 8 for
// SuperPodSystem(2, 4): 2 pods × 4 nodes). For the paper's two-level
// systems this equals the root level count.
func (s *System) NumMachines() int {
	n := 1
	for _, l := range s.Levels[:len(s.Levels)-1] {
		n *= l.Count
	}
	return n
}

// Hierarchy returns the level cardinalities [h0 ... hn].
func (s *System) Hierarchy() []int { return s.radix.Sizes() }

// Radix exposes the device-address codec (levels root-most first).
func (s *System) Radix() *factor.Radix { return s.radix }

// Coords decodes a device id into its per-level coordinates.
func (s *System) Coords(dev int) []int { return s.radix.Decode(dev) }

// Device encodes per-level coordinates into a device id.
func (s *System) Device(coords []int) int { return s.radix.Encode(coords) }

// DivergenceLevel returns the root-most level at which the addresses of a
// and b differ, or -1 if a == b. Smaller return values mean communication
// crosses a higher (typically slower) interconnect.
func (s *System) DivergenceLevel(a, b int) int {
	if a == b {
		return -1
	}
	for l := 0; l < len(s.Levels); l++ {
		if s.radix.Digit(a, l) != s.radix.Digit(b, l) {
			return l
		}
	}
	return -1
}

// GroupSpanLevel returns the root-most level at which any pair of devices
// in the group differs: the level of the slowest interconnect the group's
// collective traffic must cross. It returns -1 for groups of size < 2.
func (s *System) GroupSpanLevel(group []int) int {
	span := len(s.Levels)
	found := false
	for i := 1; i < len(group); i++ {
		if d := s.DivergenceLevel(group[0], group[i]); d >= 0 {
			found = true
			if d < span {
				span = d
			}
		}
	}
	if !found {
		return -1
	}
	return span
}

// EntityID identifies the level-l entity (subtree) containing device dev:
// the mixed-radix prefix of its address truncated at level l, encoded as a
// single integer unique among level-l entities.
func (s *System) EntityID(dev, l int) int {
	id := 0
	for i := 0; i <= l; i++ {
		id = id*s.Levels[i].Count + s.radix.Digit(dev, i)
	}
	return id
}

// EntitiesAt returns the number of level-l entities in the whole system.
func (s *System) EntitiesAt(l int) int {
	n := 1
	for i := 0; i <= l; i++ {
		n *= s.Levels[i].Count
	}
	return n
}

// DeviceName renders a short human-readable device name. For systems whose
// second-to-leaf level has <= 26 entities it uses the paper's Fig. 2a
// convention (letter = parent entity, digit = leaf index), otherwise a
// slash-separated coordinate path.
func (s *System) DeviceName(dev int) string {
	coords := s.Coords(dev)
	n := len(coords)
	if n >= 2 {
		parents := s.EntitiesAt(n - 2)
		if parents <= 26 {
			return fmt.Sprintf("%c%d", 'A'+s.EntityID(dev, n-2), coords[n-1])
		}
	}
	parts := make([]string, n)
	for i, c := range coords {
		parts[i] = fmt.Sprintf("%s%d", strings.ToLower(s.Levels[i].Name[:1]), c)
	}
	return strings.Join(parts, "/")
}

// String renders the hierarchy in the paper's bracket form, e.g.
// "[(rack, 1), (server, 2), (CPU, 2), (GPU, 4)]".
func (s *System) String() string {
	var b strings.Builder
	b.WriteByte('[')
	for i, l := range s.Levels {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "(%s, %d)", l.Name, l.Count)
	}
	b.WriteByte(']')
	return b.String()
}

// Clone returns a deep copy of the system.
func (s *System) Clone() *System {
	c := *s
	c.Levels = append([]Level(nil), s.Levels...)
	c.Uplinks = append([]Link(nil), s.Uplinks...)
	if s.CrossDomain != nil {
		cd := *s.CrossDomain
		c.CrossDomain = &cd
	}
	c.Overrides = append([]LinkOverride(nil), s.Overrides...)
	if err := c.init(); err != nil {
		panic(err)
	}
	return &c
}

// Loopback is the pseudo-link returned by BottleneckLink for groups that
// never leave a single device (span level -1): device-local data movement,
// modelled as effectively free relative to any interconnect. The bandwidth
// is a petabyte/second — far above any real link but finite, so
// bytes/Loopback.Bandwidth stays a well-defined (tiny) float instead of
// collapsing to 0 or NaN in downstream ratios.
var Loopback = Link{Name: "loopback", Bandwidth: 1e15, Latency: 0}

// BottleneckLink returns the uplink traversed at the given span level: a
// group spanning level l is bottlenecked by the uplink of level-l entities
// (e.g. a cross-node group by the per-node NIC). For a within-entity group
// at the leaf level this is the leaf uplink. Span level -1 (a single-device
// group, see GroupSpanLevel) yields Loopback; any other out-of-range level
// is a programming error and panics.
func (s *System) BottleneckLink(spanLevel int) Link {
	if spanLevel == -1 {
		return Loopback
	}
	if spanLevel < -1 || spanLevel >= len(s.Uplinks) {
		panic(fmt.Sprintf("topology: BottleneckLink span level %d out of range [-1, %d)",
			spanLevel, len(s.Uplinks)))
	}
	// A group that first diverges at level l sends traffic through the
	// uplinks of level >= l entities; the slowest of those dominates.
	best := s.Uplinks[spanLevel]
	for l := spanLevel; l < len(s.Uplinks); l++ {
		if s.Uplinks[l].Bandwidth < best.Bandwidth {
			best = s.Uplinks[l]
		}
	}
	return best
}
