package topology

import (
	"math"
	"reflect"
	"strings"
	"testing"
)

func TestWithOverridesEffectiveLinks(t *testing.T) {
	s := A100System(2) // [node 2][gpu 16]
	d := s.MustWithOverrides(
		Throttle(1, 5, 10), // GPU entity 5's NVSwitch uplink at a tenth
		Slow(0, 1, 4),      // node 1's NIC at 4x latency
		Lossy(1, 5, 0.5),   // composes with the throttle: x0.1 x0.5
		Down(0, 0),         // node 0's NIC out of service
		LinkOverride{Level: 1, Entity: 2, BandwidthScale: 1, LatencyScale: 1}, // pristine no-op
	)
	if !d.HasOverrides() {
		t.Fatal("HasOverrides = false after degrading overrides")
	}
	if got, want := d.LinkBandwidth(1, 5), A100SwitchBandwidth*0.1*0.5; math.Abs(got-want) > 1e-3 {
		t.Errorf("LinkBandwidth(1,5) = %v, want %v", got, want)
	}
	if got := d.LinkBandwidth(1, 4); got != A100SwitchBandwidth {
		t.Errorf("LinkBandwidth(1,4) = %v, want base %v", got, A100SwitchBandwidth)
	}
	if got := d.LinkLatency(0, 1); got != 4*NICLatency {
		t.Errorf("LinkLatency(0,1) = %v, want %v", got, 4*NICLatency)
	}
	if got := d.LinkBandwidth(0, 0); got != 0 {
		t.Errorf("down link bandwidth = %v, want 0", got)
	}
	// MinLinkLatency: level 0 has latencies {base, 4x base} -> base.
	if got := d.MinLinkLatency(0); got != NICLatency {
		t.Errorf("MinLinkLatency(0) = %v, want %v", got, NICLatency)
	}
	// The original system is untouched.
	if s.HasOverrides() || s.LinkBandwidth(0, 0) != NICBandwidth {
		t.Error("WithOverrides mutated the receiver")
	}
}

func TestPristineOverridesKeepFastPath(t *testing.T) {
	s := SuperPodSystem(2, 2)
	d := s.MustWithOverrides(
		LinkOverride{Level: 0, Entity: 1, BandwidthScale: 1, LatencyScale: 1},
		LinkOverride{Level: 2, Entity: 7, BandwidthScale: 1, LatencyScale: 1},
	)
	if d.HasOverrides() {
		t.Error("all-pristine override set reported HasOverrides")
	}
	for l := 0; l < d.NumLevels(); l++ {
		for e := 0; e < d.EntitiesAt(l); e++ {
			if d.LinkBandwidth(l, e) != s.Uplinks[l].Bandwidth || d.LinkLatency(l, e) != s.Uplinks[l].Latency {
				t.Fatalf("pristine override changed link (%d,%d)", l, e)
			}
		}
		if d.MinLinkLatency(l) != s.Uplinks[l].Latency {
			t.Fatalf("pristine override changed MinLinkLatency(%d)", l)
		}
	}
}

func TestOverrideValidation(t *testing.T) {
	s := A100System(2)
	bad := []LinkOverride{
		{Level: -1, Entity: 0, BandwidthScale: 1, LatencyScale: 1},
		{Level: 2, Entity: 0, BandwidthScale: 1, LatencyScale: 1},
		{Level: 1, Entity: 32, BandwidthScale: 1, LatencyScale: 1},
		{Level: 0, Entity: -1, BandwidthScale: 1, LatencyScale: 1},
		{Level: 0, Entity: 0, BandwidthScale: -0.5, LatencyScale: 1},
		{Level: 0, Entity: 0, BandwidthScale: math.NaN(), LatencyScale: 1},
		{Level: 0, Entity: 0, BandwidthScale: math.Inf(1), LatencyScale: 1},
		{Level: 0, Entity: 0, BandwidthScale: 1, LatencyScale: -1},
		{Level: 0, Entity: 0, BandwidthScale: 1, LatencyScale: math.NaN()},
		{Level: 0, Entity: 0, BandwidthScale: 1, LatencyScale: 1, LossFrac: 1},
		{Level: 0, Entity: 0, BandwidthScale: 1, LatencyScale: 1, LossFrac: -0.1},
		{Level: 0, Entity: 0, BandwidthScale: 1, LatencyScale: 1, LossFrac: math.NaN()},
	}
	for i, o := range bad {
		if _, err := s.WithOverrides(o); err == nil {
			t.Errorf("override %d (%+v) accepted, want error", i, o)
		}
	}
}

func TestCloneCopiesOverrides(t *testing.T) {
	s := A100System(2).MustWithOverrides(Throttle(1, 3, 10))
	c := s.Clone()
	if !c.HasOverrides() || c.LinkBandwidth(1, 3) != s.LinkBandwidth(1, 3) {
		t.Fatal("Clone dropped overrides")
	}
	c.Overrides[0].BandwidthScale = 1
	if s.Overrides[0].BandwidthScale == 1 {
		t.Error("Clone shares the override slice")
	}
}

func TestParseFaults(t *testing.T) {
	sp := SuperPodSystem(3, 4) // [pod 3][node 4][gpu 8]
	cases := []struct {
		spec string
		want []LinkOverride
	}{
		{"gpu:2/3/5:bw/10", []LinkOverride{{Level: 2, Entity: (2*4+3)*8 + 5, BandwidthScale: 0.1, LatencyScale: 1}}},
		{"node:0/1:down", []LinkOverride{{Level: 1, Entity: 1, BandwidthScale: 0, LatencyScale: 1}}},
		{"NVSwitch:7:lat*4", []LinkOverride{{Level: 2, Entity: 7, BandwidthScale: 1, LatencyScale: 4}}},
		{"1:5:bw*0.5", []LinkOverride{{Level: 1, Entity: 5, BandwidthScale: 0.5, LatencyScale: 1}}},
		{"pod:1:loss=0.25", []LinkOverride{{Level: 0, Entity: 1, BandwidthScale: 1, LatencyScale: 1, LossFrac: 0.25}}},
		{"spine:*:bw/2", []LinkOverride{
			{Level: 0, Entity: 0, BandwidthScale: 0.5, LatencyScale: 1},
			{Level: 0, Entity: 1, BandwidthScale: 0.5, LatencyScale: 1},
			{Level: 0, Entity: 2, BandwidthScale: 0.5, LatencyScale: 1},
		}},
		{"gpu:0/0/0:bw/10,lat*2; node:1/2:down", []LinkOverride{
			{Level: 2, Entity: 0, BandwidthScale: 0.1, LatencyScale: 2},
			{Level: 1, Entity: 1*4 + 2, BandwidthScale: 0, LatencyScale: 1},
		}},
	}
	for _, tc := range cases {
		got, err := ParseFaults(sp, tc.spec)
		if err != nil {
			t.Errorf("ParseFaults(%q): %v", tc.spec, err)
			continue
		}
		if !reflect.DeepEqual(got, tc.want) {
			t.Errorf("ParseFaults(%q) = %+v, want %+v", tc.spec, got, tc.want)
		}
	}
}

func TestParseFaultsErrors(t *testing.T) {
	sp := SuperPodSystem(3, 4)
	// wantTok is the offending token the error must name, so a failure in
	// a long multi-clause spec is findable; empty when there is no token
	// to report (the empty spec).
	cases := []struct {
		spec    string
		wantSub string
		wantTok string
	}{
		{"", "empty fault spec", ""},
		{"gpu:0/0/0", "malformed fault", "gpu:0/0/0"},
		{"rack:0:down", "unknown fault level", `"rack"`},
		{"gpu:0/0:down", "needs 3", `"0/0"`}, // too few coords for the gpu level
		{"gpu:0/0/9:down", "out of range", `"0/0/9"`},
		{"gpu:999:down", "out of range", `"999"`},
		{"gpu:0/0/0:warp*9", "unknown effect", `"warp*9"`},
		{"gpu:0/0/0:bw/0", "malformed effect", `"bw/0"`},
		{"gpu:0/0/0:loss=1.5", "loss fraction", `"gpu:0/0/0:loss=1.5"`},
		{"gpu:0/0/0:bw*-2", "bandwidth scale", `"gpu:0/0/0:bw*-2"`},
		// The failing clause must be named even when it is not the first.
		{"node:0/1:down; spine:*:lat*-3", "latency scale", `"spine:*:lat*-3"`},
	}
	for _, tc := range cases {
		_, err := ParseFaults(sp, tc.spec)
		if err == nil {
			t.Errorf("ParseFaults(%q) succeeded, want error containing %q", tc.spec, tc.wantSub)
			continue
		}
		if !strings.Contains(err.Error(), tc.wantSub) {
			t.Errorf("ParseFaults(%q) error = %q, want substring %q", tc.spec, err, tc.wantSub)
		}
		if tc.wantTok != "" && !strings.Contains(err.Error(), tc.wantTok) {
			t.Errorf("ParseFaults(%q) error = %q, does not name the offending token %s",
				tc.spec, err, tc.wantTok)
		}
	}
}

func TestValidationRejectsNonFiniteLinks(t *testing.T) {
	mk := func(bw, lat float64) error {
		_, err := New("t", []Level{{Name: "n", Count: 2}}, []Link{{Name: "l", Bandwidth: bw, Latency: lat}})
		return err
	}
	for _, tc := range []struct {
		bw, lat float64
	}{
		{math.NaN(), 0},
		{math.Inf(1), 0},
		{0, 0},
		{-1, 0},
		{1e9, math.NaN()},
		{1e9, math.Inf(1)},
		{1e9, -1},
	} {
		if mk(tc.bw, tc.lat) == nil {
			t.Errorf("New accepted bandwidth %v latency %v", tc.bw, tc.lat)
		}
	}
	if err := mk(1e9, 0); err != nil {
		t.Errorf("New rejected a valid link: %v", err)
	}
}

func TestValidationRejectsBadCrossDomain(t *testing.T) {
	base := func() *System {
		return MustNew("t",
			[]Level{{Name: "n", Count: 2}, {Name: "g", Count: 4}},
			[]Link{{Name: "NIC", Bandwidth: 1e9}, {Name: "NVL", Bandwidth: 1e10}})
	}
	for _, cd := range []CrossDomainModel{
		{DomainsPerNode: 2, Bandwidth: 0},
		{DomainsPerNode: 2, Bandwidth: math.NaN()},
		{DomainsPerNode: 2, Bandwidth: math.Inf(1)},
		{DomainsPerNode: 2, Bandwidth: 1e9, Latency: math.NaN()},
		{DomainsPerNode: 2, Bandwidth: 1e9, Latency: -1},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("WithCrossDomain(%+v) did not panic", cd)
				}
			}()
			base().WithCrossDomain(cd)
		}()
	}
}

func TestLoopbackAndBottleneckRange(t *testing.T) {
	s := A100System(2)
	if got := s.BottleneckLink(-1); got != Loopback {
		t.Errorf("BottleneckLink(-1) = %+v, want Loopback", got)
	}
	if Loopback.Bandwidth < 1e14 || Loopback.Latency != 0 {
		t.Errorf("Loopback = %+v outside its documented shape", Loopback)
	}
	for _, lvl := range []int{-2, 2, 99} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("BottleneckLink(%d) did not panic", lvl)
				}
			}()
			s.BottleneckLink(lvl)
		}()
	}
}
