package topology

import "fmt"

// Bandwidth assumptions from §5 of the paper ("Assumptions"), converted to
// bytes/second.
const (
	GB = 1e9

	// NICBandwidth is the effective data-center NIC bandwidth: 100 Gbps
	// assumed utilized at 60%, yielding 8 GB/s.
	NICBandwidth = 8 * GB
	// PCIeBandwidth is the assumed PCIe switch bandwidth.
	PCIeBandwidth = 32 * GB
	// V100RingBandwidth is the per-direction V100 NVLink ring bandwidth:
	// 90% of the nominal 150 GB/s.
	V100RingBandwidth = 135 * GB
	// A100SwitchBandwidth is the A100 NVSwitch uni-directional bandwidth:
	// 90% of the nominal 300 GB/s.
	A100SwitchBandwidth = 270 * GB

	// Latency assumptions (not stated in the paper; chosen at realistic
	// NCCL magnitudes so that bandwidth dominates for the paper's large
	// 2 GiB-per-GPU payloads).
	NVLinkLatency = 2e-6
	PCIeLatency   = 5e-6
	NICLatency    = 20e-6
)

// A100System models the GCP A100 configuration of Fig. 9a: `nodes` nodes,
// each with 16 GPUs sharing one NVSwitch and one NIC to the data-center
// network. The paper uses the hierarchy [nodes 16].
func A100System(nodes int) *System {
	if nodes <= 0 {
		panic(fmt.Sprintf("topology: A100System(%d)", nodes))
	}
	return MustNew(
		fmt.Sprintf("a100-%dnode", nodes),
		[]Level{{Name: "node", Count: nodes}, {Name: "gpu", Count: 16}},
		[]Link{
			{Name: "NIC", Bandwidth: NICBandwidth, Latency: NICLatency},
			{Name: "NVSwitch", Bandwidth: A100SwitchBandwidth, Latency: NVLinkLatency},
		},
	)
}

// V100System models the GCP V100 configuration of Fig. 9b: `nodes` nodes,
// each with 8 V100 GPUs forming an NVLink ring, two PCIe domains of 4 GPUs
// each, and (as the paper's modelling simplification) one shared NIC per
// node. The paper uses the hierarchy [nodes 8], treating the 8-GPU ring as
// one layer because the ring bandwidth dwarfs the PCIe bridges.
//
// The returned system carries a CrossDomainModel so that the event-level
// emulator can reproduce the cross-domain traffic the analytic model
// ignores — the paper's stated source of reduced V100 accuracy (§5).
func V100System(nodes int) *System {
	if nodes <= 0 {
		panic(fmt.Sprintf("topology: V100System(%d)", nodes))
	}
	s := MustNew(
		fmt.Sprintf("v100-%dnode", nodes),
		[]Level{{Name: "node", Count: nodes}, {Name: "gpu", Count: 8}},
		[]Link{
			{Name: "NIC", Bandwidth: NICBandwidth, Latency: NICLatency},
			{Name: "NVLinkRing", Bandwidth: V100RingBandwidth, Latency: NVLinkLatency},
		},
	)
	return s.WithCrossDomain(CrossDomainModel{
		DomainsPerNode: 2,
		Bandwidth:      PCIeBandwidth,
		Latency:        PCIeLatency,
	})
}

// SuperPodSystem models a three-level DGX-style cluster beyond the paper's
// two-level testbeds: `pods` scalable units, each with `nodesPerPod` nodes
// of 8 GPUs behind an NVSwitch. Nodes reach their pod's leaf switches at
// InfiniBand-rail bandwidth; pods reach the cluster spine through an
// oversubscribed uplink. Useful for projecting the paper's techniques onto
// deeper hierarchies (§7's "projections about communication costs when
// investigating new system hierarchies").
func SuperPodSystem(pods, nodesPerPod int) *System {
	if pods <= 0 || nodesPerPod <= 0 {
		panic(fmt.Sprintf("topology: SuperPodSystem(%d, %d)", pods, nodesPerPod))
	}
	return MustNew(
		fmt.Sprintf("superpod-%dx%d", pods, nodesPerPod),
		[]Level{
			{Name: "pod", Count: pods},
			{Name: "node", Count: nodesPerPod},
			{Name: "gpu", Count: 8},
		},
		[]Link{
			{Name: "Spine", Bandwidth: 50 * GB, Latency: 2 * NICLatency},
			{Name: "IBRail", Bandwidth: 100 * GB, Latency: NICLatency / 2},
			{Name: "NVSwitch", Bandwidth: A100SwitchBandwidth, Latency: NVLinkLatency},
		},
	)
}

// Fig2aSystem is the running example of Fig. 2a: one rack with 2 servers,
// each with 2 CPUs connecting 4 GPUs — 16 GPUs named A0..D3. Interconnect
// S0 joins GPUs under a CPU, S1 joins CPUs in a server, S2 joins servers in
// the rack.
func Fig2aSystem() *System {
	return MustNew(
		"fig2a",
		[]Level{
			{Name: "rack", Count: 1},
			{Name: "server", Count: 2},
			{Name: "CPU", Count: 2},
			{Name: "GPU", Count: 4},
		},
		[]Link{
			{Name: "DCN", Bandwidth: NICBandwidth, Latency: NICLatency},
			{Name: "S2", Bandwidth: NICBandwidth, Latency: NICLatency},
			{Name: "S1", Bandwidth: PCIeBandwidth, Latency: PCIeLatency},
			{Name: "S0", Bandwidth: A100SwitchBandwidth, Latency: NVLinkLatency},
		},
	)
}
