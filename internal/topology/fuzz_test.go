package topology

import (
	"testing"
)

// FuzzParseFaults checks the fault-spec parser's acceptance invariant:
// it never panics, and any spec it accepts yields a non-empty override
// set the target system actually admits — parse success implies
// WithOverrides succeeds. Rejections must come back as errors (the CLI
// and the serve daemon map them to diagnostics), including specs whose
// effects parse but whose composed scales fail validation (bw/NaN,
// loss=2): the parser validates every override against the system
// before returning it.
func FuzzParseFaults(f *testing.F) {
	f.Add("gpu:2/3/5:bw/10")
	f.Add("node:0/1:down")
	f.Add("NVSwitch:7:lat*4")
	f.Add("spine:*:bw/2,loss=0.01")
	f.Add("gpu:0/0/0:bw/10,lat*2; node:1/2:down")
	f.Add("1:5:bw*0.5")
	f.Add("pod:1:loss=0.25")
	f.Add("gpu:*:down")
	f.Add("gpu:0/0/0:bw/0.125,bw*8")
	f.Add(" ; ;")
	f.Add("gpu:0/0/0:loss=nan")
	f.Fuzz(func(t *testing.T, spec string) {
		sys := SuperPodSystem(3, 4)
		ovs, err := ParseFaults(sys, spec)
		if err != nil {
			if ovs != nil {
				t.Fatalf("ParseFaults(%q) returned overrides alongside error %v", spec, err)
			}
			return
		}
		if len(ovs) == 0 {
			t.Fatalf("ParseFaults(%q) accepted the spec but produced no overrides", spec)
		}
		if _, err := sys.WithOverrides(ovs...); err != nil {
			t.Fatalf("ParseFaults(%q) produced overrides the system rejects: %v", spec, err)
		}
	})
}
