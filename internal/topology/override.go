package topology

import (
	"fmt"
	"math"
	"strconv"
	"strings"
)

// LinkOverride degrades (or, rarely, upgrades) the uplink of one specific
// entity, turning the uniform per-level links of §5's "Assumptions" into a
// heterogeneous fabric: a straggling NIC, a flaky optic running at a
// fraction of nominal bandwidth, a fully down link. Overrides compose —
// several overrides naming the same (Level, Entity) multiply together —
// and the zero-degradation override (scales 1, loss 0) is exactly the
// pristine link: every predicted float is bit-identical to a system
// carrying no overrides at all.
type LinkOverride struct {
	// Level selects which level's uplink is overridden and Entity the
	// entity at that level (as numbered by System.EntityID), i.e. the
	// specific physical link.
	Level  int
	Entity int
	// BandwidthScale multiplies the base bandwidth: 0.1 models a link
	// degraded 10×, 0 a fully down link (transfers across it never
	// complete; predictions become +Inf). Negative, NaN or +Inf scales are
	// rejected by validation.
	BandwidthScale float64
	// LatencyScale multiplies the base latency (a congested or
	// long-detour path). Must be finite and non-negative.
	LatencyScale float64
	// LossFrac is the fraction of traffic lost and retransmitted on the
	// link, in [0, 1): effective bandwidth is scaled by (1 − LossFrac),
	// the goodput under retransmission. Model a total loss as a down link
	// (BandwidthScale 0), not LossFrac 1.
	LossFrac float64
}

// Pristine reports whether the override leaves the link unchanged.
func (o LinkOverride) Pristine() bool {
	//p2:nan-ok NaN fields are rejected by validate before any Pristine-gated fast path is taken
	return o.BandwidthScale == 1 && o.LatencyScale == 1 && o.LossFrac == 0
}

// validate checks the override against the system it is attached to.
func (o LinkOverride) validate(s *System) error {
	if o.Level < 0 || o.Level >= len(s.Levels) {
		return fmt.Errorf("topology: override level %d out of range [0, %d)", o.Level, len(s.Levels))
	}
	if n := s.EntitiesAt(o.Level); o.Entity < 0 || o.Entity >= n {
		return fmt.Errorf("topology: override entity %d out of range [0, %d) at level %q",
			o.Entity, n, s.Levels[o.Level].Name)
	}
	if !(o.BandwidthScale >= 0) || math.IsInf(o.BandwidthScale, 0) {
		return fmt.Errorf("topology: override bandwidth scale %v must be finite and >= 0", o.BandwidthScale)
	}
	if !(o.LatencyScale >= 0) || math.IsInf(o.LatencyScale, 0) {
		return fmt.Errorf("topology: override latency scale %v must be finite and >= 0", o.LatencyScale)
	}
	if !(o.LossFrac >= 0 && o.LossFrac < 1) {
		return fmt.Errorf("topology: override loss fraction %v must be in [0, 1) (model total loss as a down link)", o.LossFrac)
	}
	return nil
}

// Throttle returns an override dividing the bandwidth of the given
// entity's uplink by factor (the "one NVLink degraded 10×" scenario).
func Throttle(level, entity int, factor float64) LinkOverride {
	return LinkOverride{Level: level, Entity: entity, BandwidthScale: 1 / factor, LatencyScale: 1}
}

// Slow returns an override multiplying the latency of the given entity's
// uplink by factor.
func Slow(level, entity int, factor float64) LinkOverride {
	return LinkOverride{Level: level, Entity: entity, BandwidthScale: 1, LatencyScale: factor}
}

// Lossy returns an override making the given entity's uplink drop (and
// retransmit) the given fraction of its traffic.
func Lossy(level, entity int, frac float64) LinkOverride {
	return LinkOverride{Level: level, Entity: entity, BandwidthScale: 1, LatencyScale: 1, LossFrac: frac}
}

// Down returns an override taking the given entity's uplink fully out of
// service: transfers that must cross it never complete, so programs
// routing traffic over it predict and measure +Inf — which is what lets
// the planner re-plan around the failure.
func Down(level, entity int) LinkOverride {
	return LinkOverride{Level: level, Entity: entity, BandwidthScale: 0, LatencyScale: 1}
}

// WithOverrides returns a copy of s carrying the given per-link overrides
// (replacing any it already had), or an error when an override names a
// link outside the system or carries non-finite scales. Overrides naming
// the same link compose multiplicatively.
func (s *System) WithOverrides(ovs ...LinkOverride) (*System, error) {
	c := *s
	c.Levels = append([]Level(nil), s.Levels...)
	c.Uplinks = append([]Link(nil), s.Uplinks...)
	if s.CrossDomain != nil {
		cd := *s.CrossDomain
		c.CrossDomain = &cd
	}
	c.Overrides = append([]LinkOverride(nil), ovs...)
	if err := c.init(); err != nil {
		return nil, err
	}
	return &c, nil
}

// MustWithOverrides is WithOverrides panicking on error; intended for
// tests and example construction, mirroring MustNew.
func (s *System) MustWithOverrides(ovs ...LinkOverride) *System {
	c, err := s.WithOverrides(ovs...)
	if err != nil {
		panic(err)
	}
	return c
}

// HasOverrides reports whether any attached override actually degrades a
// link (all-pristine override sets keep the uniform fast paths).
func (s *System) HasOverrides() bool { return s.effBW != nil }

// LinkBandwidth returns the effective bandwidth in bytes/second of the
// uplink of entity e at level l: the base per-level bandwidth times the
// composed BandwidthScale × (1 − LossFrac) of every override naming that
// link. 0 means the link is down. Without overrides this is exactly
// Uplinks[l].Bandwidth.
func (s *System) LinkBandwidth(l, e int) float64 {
	if s.effBW == nil {
		return s.Uplinks[l].Bandwidth
	}
	return s.effBW[s.entOffsets[l]+e]
}

// LinkLatency returns the effective per-message latency in seconds of the
// uplink of entity e at level l. Without overrides this is exactly
// Uplinks[l].Latency.
func (s *System) LinkLatency(l, e int) float64 {
	if s.effBW == nil {
		return s.Uplinks[l].Latency
	}
	return s.effLat[s.entOffsets[l]+e]
}

// MinLinkLatency returns the minimum effective uplink latency over all
// entities of level l — the admissible per-level latency for lower bounds
// (overrides can only be proven to slow a specific link; a bound must
// assume traffic crossed the fastest one). Without overrides every entity
// shares Uplinks[l].Latency.
func (s *System) MinLinkLatency(l int) float64 {
	if s.effBW == nil {
		return s.Uplinks[l].Latency
	}
	return s.minLat[l]
}

// initOverrides validates the override set and precomputes the dense
// effective-link arrays. All-pristine sets (including the empty set) leave
// the arrays nil so every consumer keeps the uniform-link fast path and
// bit-identical arithmetic.
func (s *System) initOverrides() error {
	s.effBW, s.effLat, s.minLat = nil, nil, nil
	degraded := false
	for _, o := range s.Overrides {
		if err := o.validate(s); err != nil {
			return err
		}
		if !o.Pristine() {
			degraded = true
		}
	}
	if !degraded {
		return nil
	}
	L := len(s.Levels)
	total := s.entOffsets[L]
	s.effBW = make([]float64, total)
	s.effLat = make([]float64, total)
	for l := 0; l < L; l++ {
		for i := s.entOffsets[l]; i < s.entOffsets[l+1]; i++ {
			s.effBW[i] = s.Uplinks[l].Bandwidth
			s.effLat[i] = s.Uplinks[l].Latency
		}
	}
	for _, o := range s.Overrides {
		i := s.entOffsets[o.Level] + o.Entity
		s.effBW[i] *= o.BandwidthScale * (1 - o.LossFrac)
		s.effLat[i] *= o.LatencyScale
	}
	s.minLat = make([]float64, L)
	for l := 0; l < L; l++ {
		min := s.effLat[s.entOffsets[l]]
		for i := s.entOffsets[l] + 1; i < s.entOffsets[l+1]; i++ {
			if s.effLat[i] < min {
				min = s.effLat[i]
			}
		}
		s.minLat[l] = min
	}
	return nil
}

// ParseFaults parses a fault-spec string into link overrides against a
// concrete system. The grammar, one fault per ';'-separated clause:
//
//	FAULT  := LEVEL ":" ENTITY ":" EFFECT {"," EFFECT}
//	LEVEL  := level name | uplink name | level index      (case-insensitive)
//	ENTITY := coords root→level, "/"-separated | entity id | "*" (every entity)
//	EFFECT := "down" | "bw" ("*"|"/") FLOAT | "lat" ("*"|"/") FLOAT | "loss=" FLOAT
//
// Examples on superpod:3x4 ([pod 3] [node 4] [gpu 8]):
//
//	"gpu:2/3/5:bw/10"        the NVSwitch uplink of GPU 5 on pod 2, node 3, at a tenth of nominal
//	"node:0/1:down"          the IB rail of pod 0's node 1 is out
//	"nvswitch:7:lat*4"       GPU entity 7 (id form), addressed by uplink name
//	"spine:*:bw/2,loss=0.01" every pod uplink halved and 1% lossy
func ParseFaults(sys *System, spec string) ([]LinkOverride, error) {
	var out []LinkOverride
	for _, clause := range strings.Split(spec, ";") {
		clause = strings.TrimSpace(clause)
		if clause == "" {
			continue
		}
		ovs, err := parseFaultClause(sys, clause)
		if err != nil {
			return nil, err
		}
		out = append(out, ovs...)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("topology: empty fault spec %q", spec)
	}
	return out, nil
}

func parseFaultClause(sys *System, clause string) ([]LinkOverride, error) {
	parts := strings.SplitN(clause, ":", 3)
	if len(parts) != 3 {
		return nil, fmt.Errorf("topology: malformed fault %q (want LEVEL:ENTITY:EFFECT[,EFFECT...])", clause)
	}
	level, err := parseFaultLevel(sys, parts[0])
	if err != nil {
		return nil, err
	}
	entities, err := parseFaultEntities(sys, level, parts[1])
	if err != nil {
		return nil, err
	}
	base := LinkOverride{BandwidthScale: 1, LatencyScale: 1}
	for _, eff := range strings.Split(parts[2], ",") {
		if err := applyFaultEffect(&base, strings.TrimSpace(eff)); err != nil {
			return nil, fmt.Errorf("topology: fault %q: %w", clause, err)
		}
	}
	out := make([]LinkOverride, 0, len(entities))
	for _, e := range entities {
		o := base
		o.Level, o.Entity = level, e
		if err := o.validate(sys); err != nil {
			// Validation speaks in override fields; name the clause that
			// produced them so the user can find the offending token in a
			// multi-clause spec.
			return nil, fmt.Errorf("topology: fault %q: %s",
				clause, strings.TrimPrefix(err.Error(), "topology: "))
		}
		out = append(out, o)
	}
	return out, nil
}

// parseFaultLevel resolves a level by name, by its uplink's name, or by
// numeric index.
func parseFaultLevel(sys *System, s string) (int, error) {
	for l, lv := range sys.Levels {
		if strings.EqualFold(s, lv.Name) || strings.EqualFold(s, sys.Uplinks[l].Name) {
			return l, nil
		}
	}
	if l, err := strconv.Atoi(s); err == nil && l >= 0 && l < len(sys.Levels) {
		return l, nil
	}
	var names []string
	for l, lv := range sys.Levels {
		names = append(names, fmt.Sprintf("%s/%s", lv.Name, sys.Uplinks[l].Name))
	}
	return 0, fmt.Errorf("topology: unknown fault level %q (want one of %s, or a level index)",
		s, strings.Join(names, ", "))
}

// parseFaultEntities resolves the entity field: "*" for every entity at
// the level, a "/"-separated coordinate path from the root, or a bare
// entity id.
func parseFaultEntities(sys *System, level int, s string) ([]int, error) {
	n := sys.EntitiesAt(level)
	if s == "*" {
		out := make([]int, n)
		for i := range out {
			out[i] = i
		}
		return out, nil
	}
	if strings.Contains(s, "/") {
		digits := strings.Split(s, "/")
		if len(digits) != level+1 {
			return nil, fmt.Errorf("topology: entity path %q has %d coordinates, level %q needs %d",
				s, len(digits), sys.Levels[level].Name, level+1)
		}
		id := 0
		for l, d := range digits {
			v, err := strconv.Atoi(d)
			if err != nil || v < 0 || v >= sys.Levels[l].Count {
				return nil, fmt.Errorf("topology: entity path %q: coordinate %q out of range [0, %d)",
					s, d, sys.Levels[l].Count)
			}
			id = id*sys.Levels[l].Count + v
		}
		return []int{id}, nil
	}
	id, err := strconv.Atoi(s)
	if err != nil || id < 0 || id >= n {
		return nil, fmt.Errorf("topology: entity %q out of range [0, %d) at level %q (or use coords like 0/1, or *)",
			s, n, sys.Levels[level].Name)
	}
	return []int{id}, nil
}

// applyFaultEffect folds one EFFECT token into the override under
// construction.
func applyFaultEffect(o *LinkOverride, eff string) error {
	low := strings.ToLower(eff)
	switch {
	case low == "down":
		o.BandwidthScale = 0
		return nil
	case strings.HasPrefix(low, "loss="):
		v, err := strconv.ParseFloat(low[len("loss="):], 64)
		if err != nil {
			return fmt.Errorf("malformed loss effect %q", eff)
		}
		o.LossFrac = v
		return nil
	case strings.HasPrefix(low, "bw"), strings.HasPrefix(low, "lat"):
		field, rest := &o.BandwidthScale, low[2:]
		if strings.HasPrefix(low, "lat") {
			field, rest = &o.LatencyScale, low[3:]
		}
		if len(rest) < 2 || (rest[0] != '*' && rest[0] != '/') {
			return fmt.Errorf("malformed effect %q (want e.g. bw/10, bw*0.5, lat*4)", eff)
		}
		v, err := strconv.ParseFloat(rest[1:], 64)
		//p2:nan-ok a NaN factor (bw/NaN) yields a NaN scale, rejected downstream by LinkOverride.validate
		if err != nil || v == 0 && rest[0] == '/' {
			return fmt.Errorf("malformed effect %q (want e.g. bw/10, bw*0.5, lat*4)", eff)
		}
		if rest[0] == '/' {
			v = 1 / v
		}
		*field *= v
		return nil
	}
	return fmt.Errorf("unknown effect %q (want down, bw*F, bw/F, lat*F, lat/F or loss=F)", eff)
}
