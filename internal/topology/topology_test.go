package topology

import (
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

func TestFig2aBasics(t *testing.T) {
	s := Fig2aSystem()
	if got := s.NumDevices(); got != 16 {
		t.Fatalf("NumDevices = %d, want 16", got)
	}
	if got := s.NumLevels(); got != 4 {
		t.Fatalf("NumLevels = %d, want 4", got)
	}
	if got := s.Hierarchy(); !reflect.DeepEqual(got, []int{1, 2, 2, 4}) {
		t.Fatalf("Hierarchy = %v", got)
	}
	want := "[(rack, 1), (server, 2), (CPU, 2), (GPU, 4)]"
	if got := s.String(); got != want {
		t.Fatalf("String = %q, want %q", got, want)
	}
}

func TestFig2aDeviceNames(t *testing.T) {
	s := Fig2aSystem()
	// Fig. 2a names the 16 GPUs A0..A3 (CPU A), B0..B3, C0..C3, D0..D3.
	wants := map[int]string{
		0:  "A0",
		3:  "A3",
		4:  "B0",
		7:  "B3",
		8:  "C0",
		12: "D0",
		15: "D3",
	}
	for dev, want := range wants {
		if got := s.DeviceName(dev); got != want {
			t.Errorf("DeviceName(%d) = %q, want %q", dev, got, want)
		}
	}
}

func TestCoordsRoundTrip(t *testing.T) {
	s := Fig2aSystem()
	for d := 0; d < s.NumDevices(); d++ {
		if got := s.Device(s.Coords(d)); got != d {
			t.Errorf("Device(Coords(%d)) = %d", d, got)
		}
	}
}

func TestDivergenceLevel(t *testing.T) {
	s := Fig2aSystem()
	cases := []struct {
		a, b, want int
	}{
		{0, 0, -1},
		{0, 1, 3},  // A0 vs A1: same CPU, differ at GPU level
		{0, 4, 2},  // A0 vs B0: differ at CPU level
		{0, 8, 1},  // A0 vs C0: differ at server level
		{3, 15, 1}, // A3 vs D3
		{4, 6, 3},  // B0 vs B2
	}
	for _, c := range cases {
		if got := s.DivergenceLevel(c.a, c.b); got != c.want {
			t.Errorf("DivergenceLevel(%d,%d) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestDivergenceLevelSymmetric(t *testing.T) {
	s := A100System(4)
	f := func(x, y uint8) bool {
		a := int(x) % s.NumDevices()
		b := int(y) % s.NumDevices()
		return s.DivergenceLevel(a, b) == s.DivergenceLevel(b, a)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestGroupSpanLevel(t *testing.T) {
	s := Fig2aSystem()
	cases := []struct {
		group []int
		want  int
	}{
		{[]int{0}, -1},
		{[]int{0, 1, 2, 3}, 3},
		{[]int{0, 4}, 2},
		{[]int{0, 1, 4, 5}, 2},
		{[]int{0, 8}, 1},
		{[]int{0, 4, 8, 12}, 1},
	}
	for _, c := range cases {
		if got := s.GroupSpanLevel(c.group); got != c.want {
			t.Errorf("GroupSpanLevel(%v) = %d, want %d", c.group, got, c.want)
		}
	}
}

func TestEntityID(t *testing.T) {
	s := Fig2aSystem()
	// Devices 0..3 share CPU entity; 4..7 the next.
	for d := 0; d < 16; d++ {
		if got, want := s.EntityID(d, 2), d/4; got != want {
			t.Errorf("EntityID(%d, cpu) = %d, want %d", d, got, want)
		}
		if got, want := s.EntityID(d, 1), d/8; got != want {
			t.Errorf("EntityID(%d, server) = %d, want %d", d, got, want)
		}
	}
	if got := s.EntitiesAt(2); got != 4 {
		t.Errorf("EntitiesAt(cpu) = %d, want 4", got)
	}
}

func TestA100Preset(t *testing.T) {
	for _, nodes := range []int{2, 4} {
		s := A100System(nodes)
		if got := s.NumDevices(); got != nodes*16 {
			t.Errorf("A100System(%d).NumDevices = %d", nodes, got)
		}
		if !reflect.DeepEqual(s.Hierarchy(), []int{nodes, 16}) {
			t.Errorf("A100System(%d).Hierarchy = %v", nodes, s.Hierarchy())
		}
		if s.Uplinks[0].Bandwidth != NICBandwidth {
			t.Errorf("node uplink bandwidth = %v", s.Uplinks[0].Bandwidth)
		}
		if s.Uplinks[1].Bandwidth != A100SwitchBandwidth {
			t.Errorf("gpu uplink bandwidth = %v", s.Uplinks[1].Bandwidth)
		}
		if s.CrossDomain != nil {
			t.Error("A100 should have no cross-domain model")
		}
	}
}

func TestV100Preset(t *testing.T) {
	s := V100System(4)
	if got := s.NumDevices(); got != 32 {
		t.Errorf("NumDevices = %d", got)
	}
	if s.CrossDomain == nil {
		t.Fatal("V100 must carry a cross-domain model")
	}
	if s.CrossDomain.DomainsPerNode != 2 {
		t.Errorf("DomainsPerNode = %d", s.CrossDomain.DomainsPerNode)
	}
	if s.Uplinks[1].Bandwidth != V100RingBandwidth {
		t.Errorf("ring bandwidth = %v", s.Uplinks[1].Bandwidth)
	}
}

func TestBottleneckLink(t *testing.T) {
	s := A100System(4)
	if got := s.BottleneckLink(1).Name; got != "NVSwitch" {
		t.Errorf("within-node bottleneck = %s", got)
	}
	if got := s.BottleneckLink(0).Name; got != "NIC" {
		t.Errorf("cross-node bottleneck = %s", got)
	}
	if got := s.BottleneckLink(-1); got.Bandwidth < 1e14 {
		t.Errorf("loopback bandwidth too small: %v", got.Bandwidth)
	}
}

func TestNewValidation(t *testing.T) {
	cases := []struct {
		name    string
		levels  []Level
		uplinks []Link
	}{
		{"no levels", nil, nil},
		{"mismatched uplinks", []Level{{"n", 2}}, nil},
		{"zero count", []Level{{"n", 0}}, []Link{{"l", 1, 0}}},
		{"empty name", []Level{{"", 2}}, []Link{{"l", 1, 0}}},
		{"zero bandwidth", []Level{{"n", 2}}, []Link{{"l", 0, 0}}},
		{"negative latency", []Level{{"n", 2}}, []Link{{"l", 1, -1}}},
	}
	for _, c := range cases {
		if _, err := New(c.name, c.levels, c.uplinks); err == nil {
			t.Errorf("New(%s) succeeded, want error", c.name)
		}
	}
}

func TestCloneIsDeep(t *testing.T) {
	s := V100System(2)
	c := s.Clone()
	c.Levels[0].Count = 99
	c.Uplinks[0].Bandwidth = 1
	c.CrossDomain.DomainsPerNode = 4
	if s.Levels[0].Count == 99 || s.Uplinks[0].Bandwidth == 1 || s.CrossDomain.DomainsPerNode == 4 {
		t.Error("Clone shares state with original")
	}
}

func TestDeviceNameFallbackPath(t *testing.T) {
	// 64 parents > 26 letters: falls back to coordinate path.
	s := MustNew("big",
		[]Level{{Name: "node", Count: 64}, {Name: "gpu", Count: 2}},
		[]Link{{Name: "NIC", Bandwidth: 1e9}, {Name: "NVL", Bandwidth: 1e9}})
	name := s.DeviceName(3)
	if !strings.Contains(name, "/") {
		t.Errorf("expected path-style name, got %q", name)
	}
}

func TestWithCrossDomainValidation(t *testing.T) {
	s := A100System(2)
	defer func() {
		if recover() == nil {
			t.Error("invalid cross-domain model did not panic")
		}
	}()
	s.WithCrossDomain(CrossDomainModel{DomainsPerNode: 3, Bandwidth: 1e9})
}

func TestSuperPodPreset(t *testing.T) {
	s := SuperPodSystem(2, 4)
	if got := s.NumDevices(); got != 64 {
		t.Errorf("NumDevices = %d, want 64", got)
	}
	if got := s.NumLevels(); got != 3 {
		t.Errorf("NumLevels = %d, want 3", got)
	}
	// Bandwidth must decrease going up the hierarchy.
	if !(s.Uplinks[2].Bandwidth > s.Uplinks[1].Bandwidth &&
		s.Uplinks[1].Bandwidth > s.Uplinks[0].Bandwidth) {
		t.Error("uplink bandwidths not decreasing toward the root")
	}
	// Cross-pod traffic is bottlenecked by the spine uplink.
	if got := s.BottleneckLink(0).Name; got != "Spine" {
		t.Errorf("cross-pod bottleneck = %s", got)
	}
	if got := s.BottleneckLink(1).Name; got != "IBRail" {
		t.Errorf("cross-node bottleneck = %s", got)
	}
}

func TestNumMachines(t *testing.T) {
	cases := []struct {
		sys  *System
		want int
	}{
		{A100System(4), 4},
		{V100System(2), 2},
		{SuperPodSystem(2, 4), 8},  // 2 pods × 4 nodes
		{SuperPodSystem(4, 8), 32}, // 4 pods × 8 nodes
		{Fig2aSystem(), 4},         // 1 rack × 2 servers × 2 CPUs
	}
	for _, tc := range cases {
		if got := tc.sys.NumMachines(); got != tc.want {
			t.Errorf("%s: NumMachines = %d, want %d", tc.sys.Name, got, tc.want)
		}
	}
}

func TestSuperPodPanicsOnBadArgs(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("SuperPodSystem(0,0) did not panic")
		}
	}()
	SuperPodSystem(0, 0)
}
