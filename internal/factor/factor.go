// Package factor provides the integer-combinatorics substrate used by the
// placement and synthesis layers: divisor enumeration, ordered
// factorizations, and mixed-radix coordinate codecs.
//
// Every routine in this package is deterministic and returns results in a
// canonical (lexicographically sorted) order so that higher layers produce
// reproducible enumerations.
package factor

import (
	"fmt"
	"sort"
)

// Divisors returns all positive divisors of n in increasing order.
// It panics if n <= 0.
func Divisors(n int) []int {
	if n <= 0 {
		panic(fmt.Sprintf("factor: Divisors of non-positive %d", n))
	}
	var small, large []int
	for d := 1; d*d <= n; d++ {
		if n%d == 0 {
			small = append(small, d)
			if q := n / d; q != d {
				large = append(large, q)
			}
		}
	}
	for i := len(large) - 1; i >= 0; i-- {
		small = append(small, large[i])
	}
	return small
}

// OrderedFactorizations returns every way to write n as an ordered product
// of exactly k positive factors. Factors of 1 are allowed, so the result
// always contains at least one entry for n >= 1, k >= 1 (and exactly one
// when n == 1). Results are in lexicographic order.
//
// For example OrderedFactorizations(4, 2) = [[1 4] [2 2] [4 1]].
func OrderedFactorizations(n, k int) [][]int {
	if n <= 0 || k <= 0 {
		panic(fmt.Sprintf("factor: OrderedFactorizations(%d, %d)", n, k))
	}
	var out [][]int
	cur := make([]int, k)
	var rec func(pos, rem int)
	rec = func(pos, rem int) {
		if pos == k-1 {
			cur[pos] = rem
			out = append(out, append([]int(nil), cur...))
			return
		}
		for _, d := range Divisors(rem) {
			cur[pos] = d
			rec(pos+1, rem/d)
		}
	}
	rec(0, n)
	return out
}

// CountOrderedFactorizations returns len(OrderedFactorizations(n, k))
// without materializing the slice.
func CountOrderedFactorizations(n, k int) int {
	if k == 1 {
		return 1
	}
	total := 0
	for _, d := range Divisors(n) {
		_ = d
	}
	for _, d := range Divisors(n) {
		total += CountOrderedFactorizations(n/d, k-1)
	}
	return total
}

// Product returns the product of xs, which is 1 for an empty slice.
func Product(xs []int) int {
	p := 1
	for _, x := range xs {
		p *= x
	}
	return p
}

// Radix is a mixed-radix positional codec. Digit 0 is the most significant
// position; radix sizes of 1 contribute nothing but are preserved so that
// digit positions stay aligned with hierarchy levels.
type Radix struct {
	sizes   []int
	weights []int // weights[i] = product of sizes[i+1:]
	total   int
}

// NewRadix builds a codec for the given per-position sizes. It panics if
// any size is non-positive.
func NewRadix(sizes []int) *Radix {
	r := &Radix{
		sizes:   append([]int(nil), sizes...),
		weights: make([]int, len(sizes)),
		total:   1,
	}
	for i := len(sizes) - 1; i >= 0; i-- {
		if sizes[i] <= 0 {
			panic(fmt.Sprintf("factor: NewRadix with non-positive size %d at %d", sizes[i], i))
		}
		r.weights[i] = r.total
		r.total *= sizes[i]
	}
	return r
}

// Len returns the number of digit positions.
func (r *Radix) Len() int { return len(r.sizes) }

// Size returns the radix of digit position i.
func (r *Radix) Size(i int) int { return r.sizes[i] }

// Sizes returns a copy of the per-position radix sizes.
func (r *Radix) Sizes() []int { return append([]int(nil), r.sizes...) }

// Total returns the number of representable values (product of all sizes).
func (r *Radix) Total() int { return r.total }

// Weight returns the positional weight of digit i (the product of all less
// significant radix sizes).
func (r *Radix) Weight(i int) int { return r.weights[i] }

// Encode packs digits into a single index. It panics if a digit is out of
// range or the digit count mismatches.
func (r *Radix) Encode(digits []int) int {
	if len(digits) != len(r.sizes) {
		panic(fmt.Sprintf("factor: Encode got %d digits, want %d", len(digits), len(r.sizes)))
	}
	v := 0
	for i, d := range digits {
		if d < 0 || d >= r.sizes[i] {
			panic(fmt.Sprintf("factor: digit %d out of range [0,%d) at position %d", d, r.sizes[i], i))
		}
		v += d * r.weights[i]
	}
	return v
}

// Decode unpacks index v into digits. It panics if v is out of range.
func (r *Radix) Decode(v int) []int {
	digits := make([]int, len(r.sizes))
	r.DecodeInto(v, digits)
	return digits
}

// DecodeInto unpacks index v into the provided digit slice, avoiding an
// allocation. It panics if v is out of range or dst has the wrong length.
func (r *Radix) DecodeInto(v int, dst []int) {
	if v < 0 || v >= r.total {
		panic(fmt.Sprintf("factor: value %d out of range [0,%d)", v, r.total))
	}
	if len(dst) != len(r.sizes) {
		panic(fmt.Sprintf("factor: DecodeInto got %d digits, want %d", len(dst), len(r.sizes)))
	}
	for i := range r.sizes {
		dst[i] = v / r.weights[i]
		v %= r.weights[i]
	}
}

// Digit extracts digit position i of index v without a full decode.
func (r *Radix) Digit(v, i int) int {
	return (v / r.weights[i]) % r.sizes[i]
}

// Compose returns the index obtained from v by replacing digit i with d.
func (r *Radix) Compose(v, i, d int) int {
	old := r.Digit(v, i)
	return v + (d-old)*r.weights[i]
}

// PrimeFactors returns the prime factorization of n as a sorted slice with
// multiplicity, e.g. PrimeFactors(12) = [2 2 3].
func PrimeFactors(n int) []int {
	if n <= 0 {
		panic(fmt.Sprintf("factor: PrimeFactors of non-positive %d", n))
	}
	var out []int
	for p := 2; p*p <= n; p++ {
		for n%p == 0 {
			out = append(out, p)
			n /= p
		}
	}
	if n > 1 {
		out = append(out, n)
	}
	return out
}

// GCD returns the greatest common divisor of a and b.
func GCD(a, b int) int {
	for b != 0 {
		a, b = b, a%b
	}
	if a < 0 {
		return -a
	}
	return a
}

// UniqueSortedInts returns xs deduplicated and sorted ascending, without
// modifying the input.
func UniqueSortedInts(xs []int) []int {
	out := append([]int(nil), xs...)
	sort.Ints(out)
	w := 0
	for i, x := range out {
		if i == 0 || x != out[w-1] {
			out[w] = x
			w++
		}
	}
	return out[:w]
}
