package factor

import (
	"reflect"
	"testing"
	"testing/quick"
)

func TestDivisors(t *testing.T) {
	cases := []struct {
		n    int
		want []int
	}{
		{1, []int{1}},
		{2, []int{1, 2}},
		{4, []int{1, 2, 4}},
		{12, []int{1, 2, 3, 4, 6, 12}},
		{16, []int{1, 2, 4, 8, 16}},
		{17, []int{1, 17}},
		{36, []int{1, 2, 3, 4, 6, 9, 12, 18, 36}},
	}
	for _, c := range cases {
		if got := Divisors(c.n); !reflect.DeepEqual(got, c.want) {
			t.Errorf("Divisors(%d) = %v, want %v", c.n, got, c.want)
		}
	}
}

func TestDivisorsPanicsOnNonPositive(t *testing.T) {
	for _, n := range []int{0, -1, -12} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Divisors(%d) did not panic", n)
				}
			}()
			Divisors(n)
		}()
	}
}

func TestOrderedFactorizationsSmall(t *testing.T) {
	got := OrderedFactorizations(4, 2)
	want := [][]int{{1, 4}, {2, 2}, {4, 1}}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("OrderedFactorizations(4,2) = %v, want %v", got, want)
	}
}

func TestOrderedFactorizationsOne(t *testing.T) {
	got := OrderedFactorizations(1, 3)
	want := [][]int{{1, 1, 1}}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("OrderedFactorizations(1,3) = %v, want %v", got, want)
	}
}

func TestOrderedFactorizationsK1(t *testing.T) {
	got := OrderedFactorizations(12, 1)
	want := [][]int{{12}}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("OrderedFactorizations(12,1) = %v, want %v", got, want)
	}
}

func TestOrderedFactorizationsProductsAndUnique(t *testing.T) {
	for _, n := range []int{2, 6, 8, 12, 16, 30, 64} {
		for k := 1; k <= 4; k++ {
			fs := OrderedFactorizations(n, k)
			seen := map[string]bool{}
			for _, f := range fs {
				if len(f) != k {
					t.Fatalf("n=%d k=%d: factorization %v has wrong length", n, k, f)
				}
				if Product(f) != n {
					t.Fatalf("n=%d k=%d: factorization %v product != n", n, k, f)
				}
				key := ""
				for _, x := range f {
					key += string(rune(x)) + ","
				}
				if seen[key] {
					t.Fatalf("n=%d k=%d: duplicate factorization %v", n, k, f)
				}
				seen[key] = true
			}
			if got := CountOrderedFactorizations(n, k); got != len(fs) {
				t.Errorf("CountOrderedFactorizations(%d,%d) = %d, want %d", n, k, got, len(fs))
			}
		}
	}
}

func TestOrderedFactorizationsCountKnown(t *testing.T) {
	// The number of ordered factorizations of 2^a into k factors is the
	// number of weak compositions of a into k parts: C(a+k-1, k-1).
	if got := len(OrderedFactorizations(16, 2)); got != 5 {
		t.Errorf("16 into 2 factors: got %d, want 5", got)
	}
	if got := len(OrderedFactorizations(16, 3)); got != 15 {
		t.Errorf("16 into 3 factors: got %d, want 15", got)
	}
}

func TestProduct(t *testing.T) {
	if Product(nil) != 1 {
		t.Error("Product(nil) != 1")
	}
	if Product([]int{2, 3, 4}) != 24 {
		t.Error("Product([2 3 4]) != 24")
	}
}

func TestRadixRoundTrip(t *testing.T) {
	r := NewRadix([]int{1, 2, 2, 4})
	if r.Total() != 16 {
		t.Fatalf("Total = %d, want 16", r.Total())
	}
	for v := 0; v < r.Total(); v++ {
		d := r.Decode(v)
		if got := r.Encode(d); got != v {
			t.Errorf("Encode(Decode(%d)) = %d", v, got)
		}
	}
}

func TestRadixDigitAndCompose(t *testing.T) {
	r := NewRadix([]int{2, 3, 4})
	for v := 0; v < r.Total(); v++ {
		d := r.Decode(v)
		for i := range d {
			if got := r.Digit(v, i); got != d[i] {
				t.Errorf("Digit(%d,%d) = %d, want %d", v, i, got, d[i])
			}
			for nd := 0; nd < r.Size(i); nd++ {
				nv := r.Compose(v, i, nd)
				want := append([]int(nil), d...)
				want[i] = nd
				if nv != r.Encode(want) {
					t.Errorf("Compose(%d,%d,%d) = %d, want %d", v, i, nd, nv, r.Encode(want))
				}
			}
		}
	}
}

func TestRadixQuickRoundTrip(t *testing.T) {
	r := NewRadix([]int{3, 1, 5, 2, 4})
	f := func(raw uint32) bool {
		v := int(raw) % r.Total()
		return r.Encode(r.Decode(v)) == v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRadixWeights(t *testing.T) {
	r := NewRadix([]int{2, 2, 4})
	wants := []int{8, 4, 1}
	for i, w := range wants {
		if r.Weight(i) != w {
			t.Errorf("Weight(%d) = %d, want %d", i, r.Weight(i), w)
		}
	}
}

func TestRadixPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewRadix with zero size did not panic")
		}
	}()
	NewRadix([]int{2, 0})
}

func TestRadixEncodePanicsOnBadDigit(t *testing.T) {
	r := NewRadix([]int{2, 2})
	defer func() {
		if recover() == nil {
			t.Error("Encode with out-of-range digit did not panic")
		}
	}()
	r.Encode([]int{1, 2})
}

func TestPrimeFactors(t *testing.T) {
	cases := []struct {
		n    int
		want []int
	}{
		{1, nil},
		{2, []int{2}},
		{12, []int{2, 2, 3}},
		{64, []int{2, 2, 2, 2, 2, 2}},
		{97, []int{97}},
		{90, []int{2, 3, 3, 5}},
	}
	for _, c := range cases {
		if got := PrimeFactors(c.n); !reflect.DeepEqual(got, c.want) {
			t.Errorf("PrimeFactors(%d) = %v, want %v", c.n, got, c.want)
		}
	}
}

func TestGCD(t *testing.T) {
	cases := []struct{ a, b, want int }{
		{12, 8, 4}, {8, 12, 4}, {7, 13, 1}, {0, 5, 5}, {5, 0, 5}, {16, 64, 16},
	}
	for _, c := range cases {
		if got := GCD(c.a, c.b); got != c.want {
			t.Errorf("GCD(%d,%d) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestUniqueSortedInts(t *testing.T) {
	in := []int{3, 1, 2, 3, 1, 1}
	got := UniqueSortedInts(in)
	if !reflect.DeepEqual(got, []int{1, 2, 3}) {
		t.Errorf("UniqueSortedInts = %v", got)
	}
	if !reflect.DeepEqual(in, []int{3, 1, 2, 3, 1, 1}) {
		t.Error("input was modified")
	}
}

func TestDecodeIntoMatchesDecode(t *testing.T) {
	r := NewRadix([]int{4, 2, 8})
	buf := make([]int, 3)
	for v := 0; v < r.Total(); v += 7 {
		r.DecodeInto(v, buf)
		if !reflect.DeepEqual(buf, r.Decode(v)) {
			t.Errorf("DecodeInto(%d) = %v, Decode = %v", v, buf, r.Decode(v))
		}
	}
}
