package dsl

import (
	"testing"
)

// FuzzParseProgram checks the Parse ∘ String round trip: any string Parse
// accepts must re-render to a canonical form that Parse maps back to the
// identical program (Parse ∘ String = identity on Parse's image).
func FuzzParseProgram(f *testing.F) {
	f.Add("(0, InsideGroup, AllReduce)")
	f.Add("(1, InsideGroup, ReduceScatter); (1, Parallel(0), AllReduce); (1, InsideGroup, AllGather)")
	f.Add("(2, Master(0), Reduce); (2, Master(0), Broadcast)")
	f.Add("( 3 , Parallel( 1 ) , AllGather )")
	f.Add("(0, InsideGroup, AllReduce);")
	f.Add("(-1, Parallel(-2), Broadcast)")
	f.Fuzz(func(t *testing.T, s string) {
		prog, err := Parse(s)
		if err != nil {
			return // invalid input: nothing to round-trip
		}
		canon := prog.String()
		again, err := Parse(canon)
		if err != nil {
			t.Fatalf("Parse rejects its own rendering %q of %q: %v", canon, s, err)
		}
		if got := again.String(); got != canon {
			t.Fatalf("round trip not idempotent: %q -> %q -> %q", s, canon, got)
		}
		if len(again) != len(prog) {
			t.Fatalf("round trip changed length: %d -> %d", len(prog), len(again))
		}
		for i := range prog {
			if prog[i] != again[i] {
				t.Fatalf("instruction %d changed: %+v -> %+v", i, prog[i], again[i])
			}
		}
	})
}
