// Package dsl implements the reduction language of §3.3 of the P² paper.
//
// A reduction program is a list of instructions; each instruction is a
// (slice, form, collective) triple interpreted against a synthesis
// hierarchy. The slice picks a hierarchy level and divides the leaves into
// slice groups (all leaves under one level entity). The form then decides
// the device groups that actually perform the collective:
//
//	InsideGroup  — each slice group reduces internally.
//	Parallel(e)  — the i-th members of the slice groups under the same
//	               level-e ancestor reduce together, for every i.
//	Master(e)    — like Parallel(e), but only the first (i = 0) group per
//	               ancestor reduces.
//
// The e carried by Parallel/Master must be a strict ancestor of the slice
// level.
package dsl

import (
	"fmt"
	"strconv"
	"strings"

	"p2/internal/collective"
	"p2/internal/hierarchy"
)

// FormKind is the shape of a reduction form.
type FormKind int

const (
	// InsideGroup reduces within each slice group.
	InsideGroup FormKind = iota
	// Parallel reduces corresponding members of sibling slice groups
	// under a common ancestor, all positions in parallel.
	Parallel
	// Master is Parallel restricted to the first position per ancestor.
	Master
)

// String names the form kind as in the paper.
func (f FormKind) String() string {
	switch f {
	case InsideGroup:
		return "InsideGroup"
	case Parallel:
		return "Parallel"
	case Master:
		return "Master"
	default:
		return fmt.Sprintf("FormKind(%d)", int(f))
	}
}

// Instruction is one reduction step: a slice level, a form (with its
// ancestor argument when applicable), and a collective operation.
type Instruction struct {
	// Slice is the hierarchy level index (0 = root).
	Slice int
	// Form is the reduction form.
	Form FormKind
	// Arg is the ancestor level for Parallel/Master; ignored for
	// InsideGroup.
	Arg int
	// Op is the collective to perform on each derived device group.
	Op collective.Op
}

// String renders the instruction like "(2, Parallel(1), AllReduce)".
func (in Instruction) String() string {
	form := in.Form.String()
	if in.Form != InsideGroup {
		form = fmt.Sprintf("%s(%d)", form, in.Arg)
	}
	return fmt.Sprintf("(%d, %s, %s)", in.Slice, form, in.Op)
}

// Program is a sequence of reduction instructions.
type Program []Instruction

// String renders the program as a semicolon-separated instruction list.
func (p Program) String() string {
	parts := make([]string, len(p))
	for i, in := range p {
		parts[i] = in.String()
	}
	return strings.Join(parts, "; ")
}

// Ops returns the sequence of collective operations, e.g. for recognizing
// the Reduce-AllReduce-Broadcast pattern.
func (p Program) Ops() []collective.Op {
	out := make([]collective.Op, len(p))
	for i, in := range p {
		out[i] = in.Op
	}
	return out
}

// Clone returns a copy of the program.
func (p Program) Clone() Program { return append(Program(nil), p...) }

// Validate checks that the instruction's levels are meaningful for h: the
// slice must exist, Parallel/Master arguments must be strict ancestors, and
// the derived groups must have at least two members.
func (in Instruction) Validate(h *hierarchy.Hierarchy) error {
	L := h.NumLevels()
	if in.Slice < 0 || in.Slice >= L {
		return fmt.Errorf("dsl: slice level %d out of range [0,%d)", in.Slice, L)
	}
	switch in.Form {
	case InsideGroup:
		if h.Radix().Weight(in.Slice) < 2 {
			return fmt.Errorf("dsl: InsideGroup at leaf slice %d has singleton groups", in.Slice)
		}
	case Parallel, Master:
		if in.Arg < 0 || in.Arg >= in.Slice {
			return fmt.Errorf("dsl: form ancestor %d is not a strict ancestor of slice %d", in.Arg, in.Slice)
		}
		if h.Radix().Weight(in.Arg)/h.Radix().Weight(in.Slice) < 2 {
			return fmt.Errorf("dsl: Parallel/Master(%d) at slice %d has singleton groups", in.Arg, in.Slice)
		}
	default:
		return fmt.Errorf("dsl: unknown form %v", in.Form)
	}
	return nil
}

// Admissible implements the syntactic validity conditions the paper
// derives from the semantics (Corollary B.4, Lemmas B.5 and B.6): every
// non-root hierarchy level an instruction varies — or, for Master, merely
// lies below the form's ancestor — must be a reduction-axis level.
// Instructions violating these conditions either fail semantically or lead
// to states from which the goal is unreachable, except for degenerate
// information-duplicating Broadcasts, which the paper's synthesizer also
// excludes. For KindReductionAxes hierarchies every level is a reduction
// level, so Admissible is always true there.
func (in Instruction) Admissible(h *hierarchy.Hierarchy) bool {
	L := h.NumLevels()
	switch in.Form {
	case InsideGroup:
		// Varies levels slice+1 .. L-1 (Lemma B.5).
		for l := in.Slice + 1; l < L; l++ {
			if !h.ReductionLevel[l] {
				return false
			}
		}
	case Parallel:
		// Varies levels arg+1 .. slice (Corollary B.4).
		for l := in.Arg + 1; l <= in.Slice; l++ {
			if !h.ReductionLevel[l] {
				return false
			}
		}
	case Master:
		// Requires everything below the ancestor to be reduction-axis
		// levels (Lemma B.6).
		for l := in.Arg + 1; l < L; l++ {
			if !h.ReductionLevel[l] {
				return false
			}
		}
	}
	return true
}

// Groups derives the leaf-index device groups of the instruction under h,
// in canonical order (ascending smallest member). Each group is sorted
// ascending; the first member is the root for Reduce/Broadcast. Groups are
// disjoint by construction. It panics if the instruction fails Validate.
func (in Instruction) Groups(h *hierarchy.Hierarchy) [][]int {
	if err := in.Validate(h); err != nil {
		panic(err)
	}
	rad := h.Radix()
	k := h.K()
	switch in.Form {
	case InsideGroup:
		w := rad.Weight(in.Slice)
		groups := make([][]int, k/w)
		for u := 0; u < k; u++ {
			g := u / w
			groups[g] = append(groups[g], u)
		}
		return groups
	case Parallel, Master:
		wa := rad.Weight(in.Arg)   // span of one ancestor subtree
		ws := rad.Weight(in.Slice) // span of one slice subtree
		// Leaf u belongs to ancestor u/wa, middle position
		// (u%wa)/ws, and within-slice position u%ws. A device group
		// fixes (ancestor, within-slice position) and varies the middle.
		mid := wa / ws
		var groups [][]int
		if in.Form == Parallel {
			groups = make([][]int, k/mid)
		} else {
			groups = make([][]int, (k / wa)) // one (position-0) group per ancestor
		}
		for u := 0; u < k; u++ {
			anc := u / wa
			pos := u % ws
			if in.Form == Master {
				if pos != 0 {
					continue
				}
				groups[anc] = append(groups[anc], u)
				continue
			}
			g := anc*ws + pos
			groups[g] = append(groups[g], u)
		}
		return groups
	}
	panic("unreachable")
}

// Context is the per-leaf device state of a synthesis universe.
type Context []*collective.State

// NewContext returns the initial context for hierarchy h: leaf u holds only
// its own data (column u all ones).
func NewContext(h *hierarchy.Hierarchy) Context {
	k := h.K()
	ctx := make(Context, k)
	for u := 0; u < k; u++ {
		ctx[u] = collective.InitialState(k, u)
	}
	return ctx
}

// Clone deep-copies the context.
func (c Context) Clone() Context {
	out := make(Context, len(c))
	for i, s := range c {
		out[i] = s.Clone()
	}
	return out
}

// Apply executes one instruction over the context, returning the new
// context. Devices not participating in any derived group keep their state.
// It returns the first semantic error encountered (the instruction is then
// invalid in this state, per the Hoare rules of §3.2).
func (c Context) Apply(in Instruction, h *hierarchy.Hierarchy) (Context, error) {
	groups := in.Groups(h)
	out := c.Clone()
	for _, g := range groups {
		states := make([]*collective.State, len(g))
		for i, u := range g {
			states[i] = c[u]
		}
		res, err := collective.Apply(in.Op, states)
		if err != nil {
			return nil, fmt.Errorf("dsl: %s on group %v: %w", in, g, err)
		}
		for i, u := range g {
			out[u] = res[i]
		}
	}
	return out, nil
}

// Run executes the whole program from the initial context of h.
func (p Program) Run(h *hierarchy.Hierarchy) (Context, error) {
	ctx := NewContext(h)
	for i, in := range p {
		next, err := ctx.Apply(in, h)
		if err != nil {
			return nil, fmt.Errorf("dsl: step %d: %w", i, err)
		}
		ctx = next
	}
	return ctx, nil
}

// TargetState returns the desired final state of leaf u: every row set in
// exactly the columns of u's reduction group.
func TargetState(h *hierarchy.Hierarchy, u int) *collective.State {
	k := h.K()
	s := collective.NewState(k)
	for r := 0; r < k; r++ {
		for _, c := range h.Groups[u] {
			s.Set(r, c)
		}
	}
	return s
}

// AtGoal reports whether the context has reached the target state of every
// leaf.
func (c Context) AtGoal(h *hierarchy.Hierarchy) bool {
	for u, s := range c {
		if !s.Equal(TargetState(h, u)) {
			return false
		}
	}
	return true
}

// Implements reports whether p is a semantically valid implementation of
// the requested reduction over h: it runs without semantic errors and ends
// at the goal.
func (p Program) Implements(h *hierarchy.Hierarchy) bool {
	ctx, err := p.Run(h)
	return err == nil && ctx.AtGoal(h)
}

// Parse parses a program printed by Program.String, e.g.
// "(1, InsideGroup, ReduceScatter); (1, Parallel(0), AllReduce)".
func Parse(s string) (Program, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return nil, fmt.Errorf("dsl: empty program")
	}
	var prog Program
	for _, part := range strings.Split(s, ";") {
		in, err := parseInstruction(strings.TrimSpace(part))
		if err != nil {
			return nil, err
		}
		prog = append(prog, in)
	}
	return prog, nil
}

func parseInstruction(s string) (Instruction, error) {
	var in Instruction
	if !strings.HasPrefix(s, "(") || !strings.HasSuffix(s, ")") {
		return in, fmt.Errorf("dsl: instruction %q must be parenthesized", s)
	}
	fields := strings.Split(s[1:len(s)-1], ",")
	if len(fields) != 3 {
		return in, fmt.Errorf("dsl: instruction %q must have three fields", s)
	}
	slice, err := strconv.Atoi(strings.TrimSpace(fields[0]))
	if err != nil {
		return in, fmt.Errorf("dsl: bad slice in %q: %w", s, err)
	}
	in.Slice = slice
	form := strings.TrimSpace(fields[1])
	switch {
	case form == "InsideGroup":
		in.Form = InsideGroup
	case strings.HasPrefix(form, "Parallel(") && strings.HasSuffix(form, ")"):
		in.Form = Parallel
		if in.Arg, err = strconv.Atoi(form[len("Parallel(") : len(form)-1]); err != nil {
			return in, fmt.Errorf("dsl: bad Parallel arg in %q: %w", s, err)
		}
	case strings.HasPrefix(form, "Master(") && strings.HasSuffix(form, ")"):
		in.Form = Master
		if in.Arg, err = strconv.Atoi(form[len("Master(") : len(form)-1]); err != nil {
			return in, fmt.Errorf("dsl: bad Master arg in %q: %w", s, err)
		}
	default:
		return in, fmt.Errorf("dsl: unknown form %q", form)
	}
	op, err := collective.ParseOp(strings.TrimSpace(fields[2]))
	if err != nil {
		return in, err
	}
	in.Op = op
	return in, nil
}
