package dsl

import (
	"reflect"
	"testing"

	"p2/internal/collective"
	"p2/internal/hierarchy"
	"p2/internal/placement"
)

// fig2aHierarchy builds the system hierarchy of Fig. 2a ([1 2 2 4]) as a
// synthesis hierarchy where every leaf is its own device, so device ids
// match the paper's A0..D3 naming (A=0-3, B=4-7, C=8-11, D=12-15).
func fig2aHierarchy(t *testing.T) *hierarchy.Hierarchy {
	t.Helper()
	m, err := placement.NewMatrix([]int{1, 2, 2, 4}, []int{16}, [][]int{{1, 2, 2, 4}})
	if err != nil {
		t.Fatal(err)
	}
	h, err := hierarchy.Build(hierarchy.KindSystem, m, []int{0}, hierarchy.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return h
}

func TestTable2Groups(t *testing.T) {
	h := fig2aHierarchy(t)
	// Level indices after dropping the unit rack level: 0=root(rack),
	// 1=server, 2=CPU, 3=GPU.
	cases := []struct {
		name string
		in   Instruction
		want [][]int
	}{
		{
			"CPU/InsideGroup",
			Instruction{Slice: 2, Form: InsideGroup, Op: collective.AllReduce},
			[][]int{{0, 1, 2, 3}, {4, 5, 6, 7}, {8, 9, 10, 11}, {12, 13, 14, 15}},
		},
		{
			"CPU/Parallel(server)",
			Instruction{Slice: 2, Form: Parallel, Arg: 1, Op: collective.AllReduce},
			[][]int{{0, 4}, {1, 5}, {2, 6}, {3, 7}, {8, 12}, {9, 13}, {10, 14}, {11, 15}},
		},
		{
			"CPU/Parallel(rack)",
			Instruction{Slice: 2, Form: Parallel, Arg: 0, Op: collective.AllReduce},
			[][]int{{0, 4, 8, 12}, {1, 5, 9, 13}, {2, 6, 10, 14}, {3, 7, 11, 15}},
		},
		{
			"CPU/Master(rack)",
			Instruction{Slice: 2, Form: Master, Arg: 0, Op: collective.AllReduce},
			[][]int{{0, 4, 8, 12}},
		},
		{
			"server/InsideGroup",
			Instruction{Slice: 1, Form: InsideGroup, Op: collective.AllReduce},
			[][]int{{0, 1, 2, 3, 4, 5, 6, 7}, {8, 9, 10, 11, 12, 13, 14, 15}},
		},
		{
			"server/Parallel(rack)",
			Instruction{Slice: 1, Form: Parallel, Arg: 0, Op: collective.AllReduce},
			[][]int{{0, 8}, {1, 9}, {2, 10}, {3, 11}, {4, 12}, {5, 13}, {6, 14}, {7, 15}},
		},
		{
			"rack/InsideGroup",
			Instruction{Slice: 0, Form: InsideGroup, Op: collective.AllReduce},
			[][]int{{0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15}},
		},
	}
	for _, c := range cases {
		got := c.in.Groups(h)
		if !reflect.DeepEqual(got, c.want) {
			t.Errorf("%s: groups = %v, want %v", c.name, got, c.want)
		}
	}
}

func TestGroupsDisjointAndCovering(t *testing.T) {
	h := fig2aHierarchy(t)
	for slice := 0; slice < h.NumLevels(); slice++ {
		for _, form := range []FormKind{InsideGroup, Parallel, Master} {
			for arg := 0; arg < slice; arg++ {
				in := Instruction{Slice: slice, Form: form, Arg: arg, Op: collective.AllReduce}
				if form == InsideGroup && arg > 0 {
					continue
				}
				if in.Validate(h) != nil {
					continue
				}
				groups := in.Groups(h)
				seen := map[int]bool{}
				for _, g := range groups {
					for _, u := range g {
						if seen[u] {
							t.Fatalf("%v: leaf %d in two groups", in, u)
						}
						seen[u] = true
					}
					if len(g) < 2 {
						t.Fatalf("%v: singleton group %v", in, g)
					}
				}
				if form != Master && len(seen) != h.K() {
					t.Errorf("%v: covers %d of %d leaves", in, len(seen), h.K())
				}
			}
			if form == InsideGroup {
				in := Instruction{Slice: slice, Form: InsideGroup, Op: collective.AllReduce}
				if in.Validate(h) != nil {
					continue
				}
				groups := in.Groups(h)
				total := 0
				for _, g := range groups {
					total += len(g)
				}
				if total != h.K() {
					t.Errorf("%v: covers %d of %d leaves", in, total, h.K())
				}
			}
		}
	}
}

func TestValidate(t *testing.T) {
	h := fig2aHierarchy(t)
	bad := []Instruction{
		{Slice: -1, Form: InsideGroup},
		{Slice: 4, Form: InsideGroup},
		{Slice: 3, Form: InsideGroup},         // leaf slice: singleton groups
		{Slice: 2, Form: Parallel, Arg: 2},    // not a strict ancestor
		{Slice: 2, Form: Parallel, Arg: 3},    // descendant
		{Slice: 1, Form: Master, Arg: -1},     // negative
		{Slice: 1, Form: FormKind(9), Arg: 0}, // unknown form
	}
	for _, in := range bad {
		if err := in.Validate(h); err == nil {
			t.Errorf("Validate(%+v) accepted", in)
		}
	}
	good := []Instruction{
		{Slice: 0, Form: InsideGroup},
		{Slice: 2, Form: Parallel, Arg: 0},
		{Slice: 3, Form: Master, Arg: 2},
	}
	for _, in := range good {
		if err := in.Validate(h); err != nil {
			t.Errorf("Validate(%+v) = %v", in, err)
		}
	}
}

// reductionHierarchy builds the Fig. 2d reduction hierarchy: matrix
// [[1 1 2 2] [1 2 1 2]], reducing axis 1 → synthesis hierarchy [2 2] over
// a 4-leaf universe.
func reductionHierarchy(t *testing.T) *hierarchy.Hierarchy {
	t.Helper()
	m, err := placement.NewMatrix([]int{1, 2, 2, 4}, []int{4, 4},
		[][]int{{1, 1, 2, 2}, {1, 2, 1, 2}})
	if err != nil {
		t.Fatal(err)
	}
	h, err := hierarchy.Build(hierarchy.KindReductionAxes, m, []int{1}, hierarchy.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return h
}

func TestSingleAllReduceImplementsGoal(t *testing.T) {
	h := reductionHierarchy(t)
	p := Program{{Slice: 0, Form: InsideGroup, Op: collective.AllReduce}}
	if !p.Implements(h) {
		t.Error("global AllReduce does not implement the reduction")
	}
}

func TestFigure3bTwoStepAllReduce(t *testing.T) {
	// Fig. 3b: AllReduce over S0 pairs, then AllReduce across.
	// In the [2 2] synthesis hierarchy (levels root=0, e1=1, e2=2):
	// step 1 = InsideGroup at level 1 (pairs), step 2 = Parallel(0) at
	// slice 1 (cross pairs).
	h := reductionHierarchy(t)
	p := Program{
		{Slice: 1, Form: InsideGroup, Op: collective.AllReduce},
		{Slice: 1, Form: Parallel, Arg: 0, Op: collective.AllReduce},
	}
	if !p.Implements(h) {
		ctx, err := p.Run(h)
		t.Fatalf("AllReduce-AllReduce rejected: err=%v ctx=%v", err, ctx)
	}
}

func TestFigure3cReduceAllReduceBroadcast(t *testing.T) {
	h := reductionHierarchy(t)
	p := Program{
		{Slice: 1, Form: InsideGroup, Op: collective.Reduce},
		{Slice: 1, Form: Master, Arg: 0, Op: collective.AllReduce},
		{Slice: 1, Form: InsideGroup, Op: collective.Broadcast},
	}
	if !p.Implements(h) {
		ctx, err := p.Run(h)
		t.Fatalf("Reduce-AllReduce-Broadcast rejected: err=%v ctx=%v", err, ctx)
	}
}

func TestFigure10iiReduceScatterAllReduceAllGather(t *testing.T) {
	h := reductionHierarchy(t)
	p := Program{
		{Slice: 1, Form: InsideGroup, Op: collective.ReduceScatter},
		{Slice: 1, Form: Parallel, Arg: 0, Op: collective.AllReduce},
		{Slice: 1, Form: InsideGroup, Op: collective.AllGather},
	}
	if !p.Implements(h) {
		ctx, err := p.Run(h)
		t.Fatalf("RS-AR-AG rejected: err=%v ctx=%v", err, ctx)
	}
}

func TestFigure4InvalidPrograms(t *testing.T) {
	h := reductionHierarchy(t)
	// Fig. 4a: ReduceScatter inside pairs then AllReduce inside pairs.
	p := Program{
		{Slice: 1, Form: InsideGroup, Op: collective.ReduceScatter},
		{Slice: 1, Form: InsideGroup, Op: collective.AllReduce},
	}
	if _, err := p.Run(h); err == nil {
		t.Error("Fig. 4a program accepted")
	}
	// Fig. 4b: AllReduce across pairs twice.
	p = Program{
		{Slice: 1, Form: Parallel, Arg: 0, Op: collective.AllReduce},
		{Slice: 1, Form: Parallel, Arg: 0, Op: collective.AllReduce},
	}
	if _, err := p.Run(h); err == nil {
		t.Error("Fig. 4b program accepted")
	}
}

func TestIncompleteProgramNotAtGoal(t *testing.T) {
	h := reductionHierarchy(t)
	p := Program{{Slice: 1, Form: InsideGroup, Op: collective.AllReduce}}
	ctx, err := p.Run(h)
	if err != nil {
		t.Fatal(err)
	}
	if ctx.AtGoal(h) {
		t.Error("partial reduction reported at goal")
	}
	if p.Implements(h) {
		t.Error("partial program reported as implementation")
	}
}

func TestMasterOnlyLeavesOthersUnchanged(t *testing.T) {
	h := reductionHierarchy(t)
	p := Program{
		{Slice: 1, Form: InsideGroup, Op: collective.Reduce},
		{Slice: 1, Form: Master, Arg: 0, Op: collective.AllReduce},
	}
	ctx, err := p.Run(h)
	if err != nil {
		t.Fatal(err)
	}
	// Leaves 1 and 3 were cleared by Reduce and not touched by Master.
	if ctx[1].PopCount() != 0 || ctx[3].PopCount() != 0 {
		t.Error("non-master leaves changed")
	}
	if !ctx[0].IsFull() || !ctx[2].IsFull() {
		t.Error("master group did not reach full state")
	}
}

func TestApplyDoesNotMutateContext(t *testing.T) {
	h := reductionHierarchy(t)
	ctx := NewContext(h)
	saved := ctx.Clone()
	in := Instruction{Slice: 0, Form: InsideGroup, Op: collective.AllReduce}
	if _, err := ctx.Apply(in, h); err != nil {
		t.Fatal(err)
	}
	for u := range ctx {
		if !ctx[u].Equal(saved[u]) {
			t.Errorf("Apply mutated leaf %d", u)
		}
	}
}

func TestTargetStateFullHierarchy(t *testing.T) {
	// For a full hierarchy on Fig. 2d (reduce axis 1), the target of a
	// leaf covers only its reduction group's columns.
	m, err := placement.NewMatrix([]int{1, 2, 2, 4}, []int{4, 4},
		[][]int{{1, 1, 2, 2}, {1, 2, 1, 2}})
	if err != nil {
		t.Fatal(err)
	}
	h, err := hierarchy.Build(hierarchy.KindRowBased, m, []int{1}, hierarchy.Options{})
	if err != nil {
		t.Fatal(err)
	}
	for u := 0; u < h.K(); u++ {
		tgt := TargetState(h, u)
		if tgt.PopCount() != h.K()*len(h.Groups[u]) {
			t.Errorf("leaf %d target popcount %d", u, tgt.PopCount())
		}
	}
}

func TestProgramStringRoundTrip(t *testing.T) {
	p := Program{
		{Slice: 1, Form: InsideGroup, Op: collective.ReduceScatter},
		{Slice: 2, Form: Parallel, Arg: 0, Op: collective.AllReduce},
		{Slice: 1, Form: Master, Arg: 0, Op: collective.Broadcast},
	}
	s := p.String()
	back, err := Parse(s)
	if err != nil {
		t.Fatalf("Parse(%q): %v", s, err)
	}
	if !reflect.DeepEqual(back, p) {
		t.Errorf("round trip: %v != %v", back, p)
	}
}

func TestParseErrors(t *testing.T) {
	for _, s := range []string{
		"",
		"(1, InsideGroup)",
		"(x, InsideGroup, AllReduce)",
		"(1, Sideways, AllReduce)",
		"(1, Parallel(x), AllReduce)",
		"(1, InsideGroup, Nonsense)",
		"1, InsideGroup, AllReduce",
	} {
		if _, err := Parse(s); err == nil {
			t.Errorf("Parse(%q) succeeded", s)
		}
	}
}

func TestProgramOps(t *testing.T) {
	p := Program{
		{Slice: 1, Form: InsideGroup, Op: collective.Reduce},
		{Slice: 1, Form: Master, Arg: 0, Op: collective.AllReduce},
		{Slice: 1, Form: InsideGroup, Op: collective.Broadcast},
	}
	want := []collective.Op{collective.Reduce, collective.AllReduce, collective.Broadcast}
	if !reflect.DeepEqual(p.Ops(), want) {
		t.Errorf("Ops = %v", p.Ops())
	}
}
