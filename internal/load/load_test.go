package load

import (
	"net/http"
	"reflect"
	"strings"
	"testing"

	"p2/internal/serve"
)

// TestGenerateDeterministic locks the seeded-determinism contract of the
// acceptance criteria: same config ⇒ byte-identical request stream,
// different seed ⇒ a different stream.
func TestGenerateDeterministic(t *testing.T) {
	cfg := WorkloadConfig{Seed: 42, HotFrac: 0.5, TimeoutFrac: 0.1, MalformedFrac: 0.1}
	a, err := Generate(cfg, 300)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(cfg, 300)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same config produced different request streams")
	}
	cfg.Seed = 43
	c, err := Generate(cfg, 300)
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(a, c) {
		t.Fatal("different seeds produced identical request streams")
	}
}

// TestGenerateMix checks the fraction accounting: every kind the config
// asks for appears, hot requests repeat keys (that is their job), fresh
// and deadlined bodies are unique, and a zero fraction generates none of
// that kind.
func TestGenerateMix(t *testing.T) {
	const n = 1000
	stream, err := Generate(WorkloadConfig{Seed: 7, HotFrac: 0.4, TimeoutFrac: 0.1, MalformedFrac: 0.1}, n)
	if err != nil {
		t.Fatal(err)
	}
	counts := map[Kind]int{}
	uniq := map[string]int{}
	for _, r := range stream {
		counts[r.Kind]++
		uniq[r.Body]++
	}
	if len(stream) != n {
		t.Fatalf("stream length %d, want %d", len(stream), n)
	}
	for kind, frac := range map[Kind]float64{KindHot: 0.4, KindDeadlined: 0.1, KindMalformed: 0.1} {
		got := float64(counts[kind]) / n
		if got < frac/2 || got > frac*2 {
			t.Errorf("%s fraction %.3f, want near %.2f", kind, got, frac)
		}
	}
	if counts[KindFresh] == 0 {
		t.Error("no fresh requests in a 0.6-fresh mix")
	}
	for _, r := range stream {
		switch r.Kind {
		case KindFresh, KindDeadlined:
			if uniq[r.Body] != 1 {
				t.Fatalf("%s body repeats %d times, want unique: %s", r.Kind, uniq[r.Body], r.Body)
			}
		case KindHot:
			// The hot set has HotSetSize members, so with hundreds of hot
			// draws each body must repeat.
			if uniq[r.Body] < 2 {
				t.Fatalf("hot body occurs once, cannot hit the cache: %s", r.Body)
			}
		case KindMalformed:
			// covered below
		}
	}

	pure, err := Generate(WorkloadConfig{Seed: 7}, 200)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range pure {
		if r.Kind != KindFresh {
			t.Fatalf("zero-fraction config generated a %s request", r.Kind)
		}
	}

	if _, err := Generate(WorkloadConfig{HotFrac: 0.7, TimeoutFrac: 0.4}, 1); err == nil {
		t.Fatal("fractions summing past 1 were accepted")
	}
	if _, err := Generate(WorkloadConfig{HotFrac: -0.1}, 1); err == nil {
		t.Fatal("negative fraction was accepted")
	}
}

// TestMalformedBodiesRejectedPreCache posts each malformed body to a
// live server and checks it gets a 400 without touching the hit/miss
// counters — the property the cross-check equation
// hits+misses == sent−malformed depends on.
func TestMalformedBodiesRejectedPreCache(t *testing.T) {
	baseURL, _, shutdown, err := InProcess(serve.Config{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer shutdown()
	client := &http.Client{}
	for _, body := range malformedBodies {
		resp, err := client.Post(baseURL+"/plan", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("malformed body got %d, want 400: %s", resp.StatusCode, body)
		}
	}
	st, err := FetchStatz(client, baseURL)
	if err != nil {
		t.Fatal(err)
	}
	if st.CacheHits != 0 || st.CacheMisses != 0 {
		t.Fatalf("malformed bodies moved the cache counters (hits %d, misses %d): they must be rejected before the cache lookup",
			st.CacheHits, st.CacheMisses)
	}
	if st.Requests != int64(len(malformedBodies)) {
		t.Fatalf("requests counter %d, want %d", st.Requests, len(malformedBodies))
	}
}

// TestRunInProcessWarm is the harness exercising its own acceptance
// criteria in miniature: a closed-loop run against a warm in-process
// server reports nonzero throughput, zero unexpected errors, a clean
// /statz cross-check, and a cache hit on the first hot request.
func TestRunInProcessWarm(t *testing.T) {
	stream, err := Generate(WorkloadConfig{Seed: 1, HotFrac: 0.5, TimeoutFrac: 0.05, MalformedFrac: 0.05}, 80)
	if err != nil {
		t.Fatal(err)
	}
	baseURL, warmed, shutdown, err := InProcess(serve.Config{}, Catalog())
	if err != nil {
		t.Fatal(err)
	}
	defer shutdown()
	if warmed != len(Catalog()) {
		t.Fatalf("warmed %d entries, want %d", warmed, len(Catalog()))
	}
	rep, err := Run(NewClient(4), baseURL, stream, Options{Clients: 4, Window: 20, CrossCheck: true})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Failed() {
		t.Fatalf("run failed: errors %d, crosscheck %v, samples %v",
			rep.Counts.Errors, rep.CrossCheck, rep.ErrorSamples)
	}
	if rep.Throughput <= 0 {
		t.Fatalf("throughput %.1f, want > 0", rep.Throughput)
	}
	if rep.Latency.P99 <= 0 {
		t.Fatalf("p99 %.2f, want > 0", rep.Latency.P99)
	}
	if !rep.FirstHotCached {
		t.Fatal("first hot request missed the cache on a warm-started server")
	}
	if rep.Counts.CacheHits == 0 {
		t.Fatal("no cache hits in a 0.5-hot warm run")
	}
	if rep.Statz.Requests != int64(len(stream)) {
		t.Fatalf("statz requests delta %d, want %d", rep.Statz.Requests, len(stream))
	}
}

// TestRunOpenLoop drives the open-loop mode at a rate the in-process
// server easily sustains and checks the same contracts hold.
func TestRunOpenLoop(t *testing.T) {
	stream, err := Generate(WorkloadConfig{Seed: 2, HotFrac: 0.6}, 40)
	if err != nil {
		t.Fatal(err)
	}
	baseURL, _, shutdown, err := InProcess(serve.Config{}, Catalog())
	if err != nil {
		t.Fatal(err)
	}
	defer shutdown()
	rep, err := Run(NewClient(8), baseURL, stream, Options{Mode: OpenLoop, RPS: 400, CrossCheck: true})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Failed() {
		t.Fatalf("open-loop run failed: errors %d, crosscheck %v, samples %v",
			rep.Counts.Errors, rep.CrossCheck, rep.ErrorSamples)
	}
	if rep.Mode != "open" || rep.TargetRPS != 400 {
		t.Fatalf("report mode %q rps %.0f, want open/400", rep.Mode, rep.TargetRPS)
	}
}

// TestParseMode pins the flag vocabulary.
func TestParseMode(t *testing.T) {
	for s, want := range map[string]Mode{"closed": ClosedLoop, "open": OpenLoop, "OPEN": OpenLoop} {
		got, err := ParseMode(s)
		if err != nil || got != want {
			t.Errorf("ParseMode(%q) = %v, %v", s, got, err)
		}
	}
	if _, err := ParseMode("sideways"); err == nil {
		t.Error("ParseMode accepted an unknown mode")
	}
	if ClosedLoop.String() != "closed" || OpenLoop.String() != "open" {
		t.Error("Mode.String does not round-trip the flag vocabulary")
	}
}

// TestCatalogResolves checks every catalog entry is a valid warm/load
// request: warming the full catalog must never fail at runtime.
func TestCatalogResolves(t *testing.T) {
	cat := Catalog()
	if len(cat) < HotSetSize {
		t.Fatalf("catalog has %d entries, fewer than the hot set size %d", len(cat), HotSetSize)
	}
	s := serve.NewServer(serve.Config{})
	warmed, err := s.Warm(t.Context(), cat)
	if err != nil {
		t.Fatalf("warming the catalog: %v", err)
	}
	if warmed != len(cat) {
		t.Fatalf("warmed %d of %d catalog entries: duplicate cache keys in the catalog", warmed, len(cat))
	}
}
