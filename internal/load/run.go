package load

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"p2/internal/serve"
)

// Mode selects how the runner offers load.
type Mode int

const (
	// ClosedLoop runs Clients concurrent clients with zero think time:
	// each sends its next request the moment the previous response
	// lands, so offered load adapts to service rate and concurrency is
	// bounded by construction.
	ClosedLoop Mode = iota
	// OpenLoop fires requests at a fixed arrival rate (RPS) regardless
	// of outstanding responses — the "millions of independent users"
	// shape, where a slow server accumulates concurrency and must shed.
	OpenLoop
)

// String names the mode as ParseMode accepts it.
func (m Mode) String() string {
	if m == OpenLoop {
		return "open"
	}
	return "closed"
}

// ParseMode parses a -mode flag value ("closed" or "open").
func ParseMode(s string) (Mode, error) {
	switch strings.ToLower(s) {
	case "closed":
		return ClosedLoop, nil
	case "open":
		return OpenLoop, nil
	default:
		return 0, fmt.Errorf(`load: unknown mode %q (want "closed" or "open")`, s)
	}
}

// Options tunes a Run.
type Options struct {
	Mode Mode
	// Clients is the closed-loop concurrency (default 8).
	Clients int
	// RPS is the open-loop target arrival rate (default 50).
	RPS float64
	// Window is the first-window size for warm-vs-cold comparison: the
	// FirstWindow percentiles cover the 200-responses among the first
	// Window stream entries (default 50, capped at the stream length).
	Window int
	// CrossCheck verifies the client-side counts against /statz deltas
	// (see Report.CrossCheck). Enable it only when the target serves no
	// other traffic during the run — deltas must belong to this harness.
	CrossCheck bool
}

// Percentiles are nearest-rank latency percentiles in milliseconds
// (serve.Percentile — the same formula /statz uses, so client- and
// server-side numbers are comparable).
type Percentiles struct {
	P50  float64 `json:"p50"`
	P95  float64 `json:"p95"`
	P99  float64 `json:"p99"`
	P999 float64 `json:"p999"`
}

// Counts are the per-class response counts of a run. The 200 classes
// are disjoint: a response counts as a cache hit, else a partial, else
// complete.
type Counts struct {
	Sent            int64 `json:"sent"`
	Complete        int64 `json:"complete"`
	CacheHits       int64 `json:"cache_hits"`
	Partials        int64 `json:"partials"`
	Malformed       int64 `json:"malformed_400"`
	Shed            int64 `json:"shed_429"`
	DeadlineExpired int64 `json:"deadline_504"`
	CoalesceExpired int64 `json:"coalesce_wait_503"`
	// Errors counts everything outside the sender's Kind contract:
	// transport failures, 500s, a 400 on a well-formed request, a shed
	// on a deadline-free closed-loop request — anything the workload did
	// not entitle the server to answer with.
	Errors int64 `json:"unexpected_errors"`
}

// StatzDelta is the change in the daemon's own counters across the run.
type StatzDelta struct {
	Requests    int64 `json:"requests"`
	CacheHits   int64 `json:"cache_hits"`
	CacheMisses int64 `json:"cache_misses"`
	Coalesced   int64 `json:"coalesced"`
	Shed        int64 `json:"shed"`
	Partials    int64 `json:"partials"`
	Panics      int64 `json:"panics"`
}

// Report is the outcome of one Run.
type Report struct {
	Mode      string  `json:"mode"`
	Seed      int64   `json:"seed"`
	Clients   int     `json:"clients,omitempty"`
	TargetRPS float64 `json:"target_rps,omitempty"`
	Requests  int     `json:"requests"`
	// DurationSec is the wall-clock span from first send to last
	// response; Throughput is responses (all classes) per second over it.
	DurationSec float64 `json:"duration_s"`
	Throughput  float64 `json:"throughput_rps"`
	Counts      Counts  `json:"counts"`
	// Latency covers every 200 response of the run; FirstWindow only the
	// 200s among the first Window stream entries — the cold-start
	// signal warm-starting is supposed to remove.
	Latency     Percentiles `json:"latency_ms"`
	FirstWindow Percentiles `json:"first_window_latency_ms"`
	Window      int         `json:"window"`
	// FirstHotCached reports whether the response to the stream's first
	// hot-set request was served from the strategy cache — true on a
	// warm-started server, the loadsmoke assertion.
	FirstHotCached bool       `json:"first_hot_cached"`
	Statz          StatzDelta `json:"statz_delta"`
	// CrossCheck lists client-vs-/statz accounting inconsistencies
	// (empty and CrossChecked=true means the daemon's own counters
	// survived the audit; see crossCheck for the invariants).
	CrossChecked bool     `json:"crosschecked"`
	CrossCheck   []string `json:"crosscheck_failures,omitempty"`
	// ErrorSamples carries up to five unexpected-error descriptions for
	// diagnosis.
	ErrorSamples []string `json:"error_samples,omitempty"`
}

// Failed reports whether the run violated its contract: any unexpected
// error, or (when cross-checking) any accounting inconsistency.
func (r *Report) Failed() bool {
	return r.Counts.Errors > 0 || len(r.CrossCheck) > 0
}

// result is one response as the sender observed it; results land by
// stream index.
type result struct {
	status    int
	cached    bool
	partial   bool
	latencyMs float64
	err       error
}

// Run drives one generated stream against a /plan endpoint and reports.
// The stream (not the timing) is deterministic; see the package comment.
func Run(client *http.Client, baseURL string, stream []Request, opts Options) (*Report, error) {
	if len(stream) == 0 {
		return nil, fmt.Errorf("load: empty request stream")
	}
	if opts.Clients <= 0 {
		opts.Clients = 8
	}
	if opts.RPS <= 0 {
		opts.RPS = 50
	}
	if opts.Window <= 0 {
		opts.Window = 50
	}
	if opts.Window > len(stream) {
		opts.Window = len(stream)
	}

	before, err := FetchStatz(client, baseURL)
	if err != nil {
		if opts.CrossCheck {
			return nil, fmt.Errorf("load: /statz before run: %w", err)
		}
		before = &serve.Statz{}
	}

	results := make([]result, len(stream))
	start := time.Now()
	switch opts.Mode {
	case OpenLoop:
		runOpen(client, baseURL, stream, results, opts.RPS)
	default:
		runClosed(client, baseURL, stream, results, opts.Clients)
	}
	duration := time.Since(start)

	after, err := FetchStatz(client, baseURL)
	if err != nil {
		if opts.CrossCheck {
			return nil, fmt.Errorf("load: /statz after run: %w", err)
		}
		after = before
	}

	return buildReport(stream, results, duration, opts, before, after), nil
}

// runClosed is the closed-loop driver: Clients workers pull the next
// stream index from a shared counter, think time zero. Results land by
// index, so the report is independent of completion interleaving.
func runClosed(client *http.Client, baseURL string, stream []Request, results []result, clients int) {
	var next atomic.Int64
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(stream) {
					return
				}
				results[i] = send(client, baseURL, stream[i].Body)
			}
		}()
	}
	wg.Wait()
}

// runOpen is the open-loop driver: requests depart on a fixed-interval
// ticker regardless of outstanding responses, one goroutine each.
func runOpen(client *http.Client, baseURL string, stream []Request, results []result, rps float64) {
	interval := time.Duration(float64(time.Second) / rps)
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	var wg sync.WaitGroup
	for i := range stream {
		if i > 0 {
			<-ticker.C
		}
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i] = send(client, baseURL, stream[i].Body)
		}(i)
	}
	wg.Wait()
}

// send posts one body and observes status, response flags and latency.
func send(client *http.Client, baseURL, body string) result {
	start := time.Now()
	resp, err := client.Post(baseURL+"/plan", "application/json", strings.NewReader(body))
	if err != nil {
		return result{err: err}
	}
	defer resp.Body.Close()
	var flags struct {
		Partial bool `json:"partial"`
		Cached  bool `json:"cached"`
	}
	if resp.StatusCode == http.StatusOK {
		if derr := json.NewDecoder(resp.Body).Decode(&flags); derr != nil {
			return result{err: fmt.Errorf("decoding 200 body: %w", derr)}
		}
	} else {
		io.Copy(io.Discard, resp.Body)
	}
	return result{
		status:    resp.StatusCode,
		cached:    flags.Cached,
		partial:   flags.Partial,
		latencyMs: float64(time.Since(start)) / float64(time.Millisecond),
	}
}

// buildReport classifies results against their kinds, computes
// percentiles and audits the /statz deltas.
func buildReport(stream []Request, results []result, duration time.Duration, opts Options, before, after *serve.Statz) *Report {
	r := &Report{
		Mode:        opts.Mode.String(),
		Requests:    len(stream),
		Window:      opts.Window,
		DurationSec: duration.Seconds(),
		Statz: StatzDelta{
			Requests:    after.Requests - before.Requests,
			CacheHits:   after.CacheHits - before.CacheHits,
			CacheMisses: after.CacheMisses - before.CacheMisses,
			Coalesced:   after.Coalesced - before.Coalesced,
			Shed:        after.Shed - before.Shed,
			Partials:    after.Partials - before.Partials,
			Panics:      after.Panics - before.Panics,
		},
	}
	if opts.Mode == OpenLoop {
		r.TargetRPS = opts.RPS
	} else {
		r.Clients = opts.Clients
	}

	var all, window []float64
	firstHotSeen := false
	for i, res := range results {
		req := stream[i]
		r.Counts.Sent++
		if req.Kind == KindHot && !firstHotSeen {
			firstHotSeen = true
			r.FirstHotCached = res.cached
		}
		if res.status == http.StatusOK {
			all = append(all, res.latencyMs)
			if i < opts.Window {
				window = append(window, res.latencyMs)
			}
		}
		if msg := classify(req.Kind, res, &r.Counts); msg != "" {
			r.Counts.Errors++
			if len(r.ErrorSamples) < 5 {
				r.ErrorSamples = append(r.ErrorSamples, fmt.Sprintf("request %d (%s): %s", i, req.Kind, msg))
			}
		}
	}
	if r.DurationSec > 0 {
		r.Throughput = float64(len(results)) / r.DurationSec
	}
	r.Latency = percentiles(all)
	r.FirstWindow = percentiles(window)
	if opts.CrossCheck {
		r.CrossChecked = true
		r.CrossCheck = crossCheck(&r.Counts, &r.Statz)
	}
	return r
}

// classify folds one result into the counts; a non-empty return is the
// contract violation it represents.
func classify(kind Kind, res result, c *Counts) string {
	if res.err != nil {
		return res.err.Error()
	}
	switch res.status {
	case http.StatusOK:
		switch {
		case res.cached:
			c.CacheHits++
		case res.partial:
			c.Partials++
			if kind != KindDeadlined {
				return "partial result on a deadline-free request"
			}
		default:
			c.Complete++
		}
		if kind == KindMalformed {
			return "200 on a malformed body"
		}
		return ""
	case http.StatusBadRequest:
		if kind != KindMalformed {
			return "400 on a well-formed request"
		}
		c.Malformed++
		return ""
	case http.StatusTooManyRequests:
		c.Shed++
		if kind == KindMalformed {
			return "429 on a malformed body (shed before decode?)"
		}
		return ""
	case http.StatusGatewayTimeout:
		c.DeadlineExpired++
		if kind != KindDeadlined {
			return "504 on a deadline-free request"
		}
		return ""
	case http.StatusServiceUnavailable:
		c.CoalesceExpired++
		if kind != KindDeadlined {
			return "503 on a deadline-free request"
		}
		return ""
	default:
		return fmt.Sprintf("unexpected status %d", res.status)
	}
}

// crossCheck audits the daemon's /statz accounting against what the
// clients observed. Exact where the protocol is 1:1 (every cache-hit
// response increments hits exactly once), bounded where coalescing
// legitimately decouples computations from responses (one partial
// computation can answer 1+followers partial responses).
func crossCheck(c *Counts, d *StatzDelta) []string {
	var bad []string
	checkf := func(ok bool, format string, args ...any) {
		if !ok {
			bad = append(bad, fmt.Sprintf(format, args...))
		}
	}
	checkf(d.Requests == c.Sent,
		"statz requests delta %d != %d requests sent", d.Requests, c.Sent)
	checkf(d.CacheHits == c.CacheHits,
		"statz cache_hits delta %d != %d cached responses observed", d.CacheHits, c.CacheHits)
	checkf(d.Shed == c.Shed,
		"statz shed delta %d != %d 429s observed", d.Shed, c.Shed)
	// Every well-formed request is exactly one hit or one miss; 400s are
	// neither. This catches a resolve-vs-counter drift on either side.
	checkf(d.CacheHits+d.CacheMisses == c.Sent-c.Malformed,
		"statz hits+misses delta %d != %d well-formed requests", d.CacheHits+d.CacheMisses, c.Sent-c.Malformed)
	// The server counts partial computations; clients count partial
	// responses. Followers coalesced onto a partial flight see
	// partial=true without a second counter increment, so responses may
	// exceed computations by at most the coalesced count.
	checkf(d.Partials <= c.Partials,
		"statz partials delta %d > %d partial responses observed", d.Partials, c.Partials)
	checkf(c.Partials-d.Partials <= d.Coalesced,
		"%d partial responses vs %d partial computations: excess exceeds %d coalesced",
		c.Partials, d.Partials, d.Coalesced)
	// A follower is by definition also a miss.
	checkf(d.Coalesced <= d.CacheMisses,
		"statz coalesced delta %d > misses delta %d", d.Coalesced, d.CacheMisses)
	checkf(d.Panics == 0, "statz panics delta %d != 0", d.Panics)
	return bad
}

// percentiles sorts a latency sample and extracts the report's
// nearest-rank percentiles; an empty sample reports zeros.
func percentiles(ms []float64) Percentiles {
	if len(ms) == 0 {
		return Percentiles{}
	}
	sorted := make([]float64, len(ms))
	copy(sorted, ms)
	sort.Float64s(sorted)
	return Percentiles{
		P50:  serve.Percentile(sorted, 50),
		P95:  serve.Percentile(sorted, 95),
		P99:  serve.Percentile(sorted, 99),
		P999: serve.Percentile(sorted, 99.9),
	}
}

// FetchStatz snapshots the daemon's /statz counters.
func FetchStatz(client *http.Client, baseURL string) (*serve.Statz, error) {
	resp, err := client.Get(baseURL + "/statz")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("GET /statz: status %d", resp.StatusCode)
	}
	var st serve.Statz
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return nil, fmt.Errorf("decoding /statz: %w", err)
	}
	return &st, nil
}

// InProcess boots a serve.Server on an httptest listener — the CI shape:
// the whole stack (daemon included) runs inside one process, under the
// race detector when tests are. With warm non-nil the strategy cache is
// warm-started from it before the listener is returned, exactly like
// `p2 serve -warm` (warmed reports how many entries the sweep cached).
// Call shutdown when done.
func InProcess(cfg serve.Config, warm []serve.PlanRequest) (baseURL string, warmed int, shutdown func(), err error) {
	s := serve.NewServer(cfg)
	if len(warm) > 0 {
		warmed, err = s.Warm(context.Background(), warm)
		if err != nil {
			return "", warmed, nil, err
		}
	}
	ts := httptest.NewServer(s.Handler())
	return ts.URL, warmed, ts.Close, nil
}

// NewClient returns an http.Client sized for a load run: enough idle
// connections per host that closed-loop clients (or an open-loop burst)
// reuse sockets instead of exhausting ephemeral ports.
func NewClient(concurrency int) *http.Client {
	if concurrency < 8 {
		concurrency = 8
	}
	transport := http.DefaultTransport.(*http.Transport).Clone()
	transport.MaxIdleConns = concurrency * 2
	transport.MaxIdleConnsPerHost = concurrency * 2
	return &http.Client{Transport: transport}
}
