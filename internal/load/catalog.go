package load

import "p2/internal/serve"

// HotSetSize is the default number of leading Catalog entries the
// workload generator treats as the hot set: the population KindHot
// requests draw from verbatim, so their cache keys repeat and — once the
// first of each has been planned or the server was warm-started — they
// hit the strategy cache.
const HotSetSize = 4

// Catalog returns the canonical valid request population of the load
// harness: a mixed sweep over the paper-suite systems (fig2a, 2-node
// A100/V100, a small SuperPod) varying axes, reduction axes, payload,
// algorithm (pinned and auto-searched) and measure mode. The same list
// backs `p2 serve -warm` — warming it is exactly what makes the
// generator's hot set hit on first touch — so catalog and warm set can
// never drift apart. Entries are deliberately small enough that a full
// cold sweep plans in seconds: the harness measures the service, not the
// SuperPod 16x32 frontier.
//
// The first HotSetSize entries are the hot set; keep the cheapest
// requests there.
func Catalog() []serve.PlanRequest {
	return []serve.PlanRequest{
		// Hot set: the paper's fig2a running example, cheapest to plan.
		{System: "fig2a", Axes: []int{16}, Reduce: []int{0}, TopK: 5},
		{System: "fig2a", Axes: []int{4, 4}, Reduce: []int{0}, TopK: 5},
		{System: "fig2a", Axes: []int{4, 4}, Reduce: []int{1}, TopK: 5},
		{System: "fig2a", Axes: []int{2, 8}, Reduce: []int{0}, Algo: "auto", TopK: 5},
		// 2-node A100 (32 GPUs): single-axis, two-axis, pinned and auto.
		{System: "a100", Nodes: 2, Axes: []int{32}, Reduce: []int{0}, TopK: 5},
		{System: "a100", Nodes: 2, Axes: []int{4, 8}, Reduce: []int{0}, TopK: 5},
		{System: "a100", Nodes: 2, Axes: []int{4, 8}, Reduce: []int{1}, Algo: "Tree", TopK: 5},
		{System: "a100", Nodes: 2, Axes: []int{2, 16}, Reduce: []int{0}, Algo: "auto", TopK: 5},
		// 2-node V100 (16 GPUs): the PCIe-ring shape of the paper's Fig 9b.
		{System: "v100", Nodes: 2, Axes: []int{16}, Reduce: []int{0}, TopK: 5},
		{System: "v100", Nodes: 2, Axes: []int{4, 4}, Reduce: []int{1}, TopK: 5},
		{System: "v100", Nodes: 2, Axes: []int{2, 8}, Reduce: []int{0}, Algo: "HalvingDoubling", TopK: 5},
		// Measured-in-the-loop: emulator re-ranked top-K.
		{System: "fig2a", Axes: []int{16}, Reduce: []int{0}, TopK: 3, Measure: "rerank"},
		{System: "v100", Nodes: 2, Axes: []int{4, 4}, Reduce: []int{0}, TopK: 5, Measure: "rerank"},
		// A small SuperPod: three hierarchy levels, bound pruning armed.
		{System: "superpod:2x2", Axes: []int{4, 8}, Reduce: []int{0}, TopK: 5},
		{System: "superpod:2x2", Axes: []int{32}, Reduce: []int{0}, Algo: "auto", TopK: 5},
		// Non-default payload on an otherwise-hot shape: distinct cache key.
		{System: "a100", Nodes: 2, Axes: []int{4, 8}, Reduce: []int{0}, TopK: 5, Bytes: 1e8},
	}
}
