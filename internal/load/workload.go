// Package load is the deterministic load-test harness of the planning
// service (`p2 loadtest`): a seeded synthetic workload generator over
// the paper-suite request catalog, closed- and open-loop drivers against
// an in-process serve.Server or a remote daemon, and a report of
// throughput, tail latency and per-class counts cross-checked against
// /statz deltas (DESIGN.md §12).
//
// Determinism contract: the request *stream* is a pure function of
// (WorkloadConfig, n) — same seed, same bytes, locked by
// TestGenerateDeterministic — so a cold and a warm run, or two runs on
// different machines, face byte-identical traffic. The *timings* the
// harness then measures are real wall-clock service latencies, which is
// the point of a load test; for that reason internal/load sits outside
// the engine scope of the wallclock/nanfloat analyzers (the one
// `internal/` package that does, alongside the analyzer suite itself —
// see DESIGN.md §10) and must never be imported by engine packages.
package load

import (
	"encoding/json"
	"fmt"
	"math/rand"

	"p2/internal/serve"
)

// Kind classifies a generated request by the response class it is
// entitled to; the runner counts anything outside its kind's contract as
// an unexpected error.
type Kind int

const (
	// KindFresh is a unique-payload request (its cache key occurs once
	// in the stream): always a full plan. Expect 200 complete, or 429
	// under open-loop overload.
	KindFresh Kind = iota
	// KindHot draws verbatim from the catalog's hot set, so its key
	// repeats across the stream: after the first plan (or a warm start)
	// it is a cache hit or a coalesced follower. Same contract as fresh.
	KindHot
	// KindDeadlined carries timeout_ms 1 on a unique payload: expect an
	// anytime outcome — 200 partial, 504 if nothing was scored in time,
	// 503 if the wait for a coalesced flight expired, 200 complete if
	// planning beat the deadline, or 429.
	KindDeadlined
	// KindMalformed is a deliberately broken body: expect 400.
	KindMalformed
)

// String names the kind for reports.
func (k Kind) String() string {
	switch k {
	case KindFresh:
		return "fresh"
	case KindHot:
		return "hot"
	case KindDeadlined:
		return "deadlined"
	case KindMalformed:
		return "malformed"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Request is one generated wire request: the JSON body to POST /plan and
// the response contract it was generated under.
type Request struct {
	Kind Kind
	Body string
}

// WorkloadConfig parameterizes Generate. Fractions are per-request
// probabilities drawn from the seeded stream; the remainder
// (1 − hot − timeout − malformed) is fresh unique-payload traffic.
type WorkloadConfig struct {
	// Seed seeds the generator's PRNG; the stream is a pure function of
	// (Seed, fractions, n).
	Seed int64
	// HotFrac is the fraction of requests drawn verbatim from the hot
	// set (the first HotSetSize catalog entries) — the knob that sets
	// the steady-state cache-hit ratio.
	HotFrac float64
	// TimeoutFrac is the fraction of requests carrying timeout_ms 1.
	TimeoutFrac float64
	// MalformedFrac is the fraction of deliberately broken bodies.
	MalformedFrac float64
	// HotSetSize overrides the hot-set size (0 = HotSetSize, capped at
	// the catalog length).
	HotSetSize int
}

// malformedBodies rotate through the pre-planning 400 paths:
// syntactically broken JSON (rejected at decode), a body naming no known
// system, and an unknown algorithm (both rejected at resolve). All three
// fail before the daemon's cache lookup, which is what keeps the
// cross-check equation hits+misses == sent − malformed exact; a body
// that only fails inside planning (e.g. axes that cannot cover the
// system) would count a cache miss first and belongs to a different
// contract.
var malformedBodies = []string{
	`{"system": "fig2a", "axes": [16`,
	`{"system": "nonesuch", "axes": [16]}`,
	`{"system": "fig2a", "axes": [16], "algo": "Warp"}`,
}

// freshBytes returns the k-th unique per-device payload. Distinct values
// make each fresh request's cache key unique within a stream (the key
// includes bytes), so fresh traffic always plans; the base is large
// enough to be a realistic gradient payload and never collides with a
// catalog entry's explicit Bytes.
func freshBytes(k int) float64 {
	return float64(1<<26 + 512*k)
}

// Generate produces a deterministic stream of n requests. Same config,
// same stream, byte for byte — the property that makes cold-vs-warm
// comparisons and cross-machine baselines face identical traffic.
func Generate(cfg WorkloadConfig, n int) ([]Request, error) {
	if cfg.HotFrac < 0 || cfg.TimeoutFrac < 0 || cfg.MalformedFrac < 0 {
		return nil, fmt.Errorf("load: negative workload fraction (hot %g, timeout %g, malformed %g)",
			cfg.HotFrac, cfg.TimeoutFrac, cfg.MalformedFrac)
	}
	if sum := cfg.HotFrac + cfg.TimeoutFrac + cfg.MalformedFrac; sum > 1 {
		return nil, fmt.Errorf("load: workload fractions sum to %g > 1", sum)
	}
	cat := Catalog()
	hot := cfg.HotSetSize
	if hot <= 0 {
		hot = HotSetSize
	}
	if hot > len(cat) {
		hot = len(cat)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	out := make([]Request, n)
	fresh := 0
	for i := range out {
		u := rng.Float64()
		switch {
		case u < cfg.MalformedFrac:
			out[i] = Request{Kind: KindMalformed, Body: malformedBodies[rng.Intn(len(malformedBodies))]}
		case u < cfg.MalformedFrac+cfg.TimeoutFrac:
			pr := cat[rng.Intn(len(cat))]
			pr.Bytes = freshBytes(fresh)
			fresh++
			pr.TimeoutMs = 1
			body, err := marshalBody(pr)
			if err != nil {
				return nil, err
			}
			out[i] = Request{Kind: KindDeadlined, Body: body}
		case u < cfg.MalformedFrac+cfg.TimeoutFrac+cfg.HotFrac:
			body, err := marshalBody(cat[rng.Intn(hot)])
			if err != nil {
				return nil, err
			}
			out[i] = Request{Kind: KindHot, Body: body}
		default:
			pr := cat[rng.Intn(len(cat))]
			pr.Bytes = freshBytes(fresh)
			fresh++
			body, err := marshalBody(pr)
			if err != nil {
				return nil, err
			}
			out[i] = Request{Kind: KindFresh, Body: body}
		}
	}
	return out, nil
}

// marshalBody encodes a catalog request as a wire body. Struct field
// order makes the encoding deterministic.
func marshalBody(pr serve.PlanRequest) (string, error) {
	b, err := json.Marshal(pr)
	if err != nil {
		return "", fmt.Errorf("load: encoding request: %w", err)
	}
	return string(b), nil
}
