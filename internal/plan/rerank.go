package plan

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"p2/internal/cost"
	"p2/internal/netsim"
)

// RerankMode selects measured-in-the-loop planning: whether — and over how
// much of the candidate space — the analytic ranking is re-ordered by
// emulated (netsim) runtimes. The analytic stage is untouched by the
// choice except that RerankAll disables top-K pruning (see below), so
// every §6.1 pruning invariant continues to hold for the candidates the
// analytic stage keeps.
type RerankMode int

const (
	// RerankOff ranks purely analytically (the default; exactly the
	// pre-measured-mode behavior).
	RerankOff RerankMode = iota
	// RerankTopK measures the analytic top-K survivors on the emulator
	// and re-sorts those K candidates by measured time. Cost: K extra
	// emulations on top of an unchanged (still bound-pruned) analytic
	// stage. With TopK = 0 the "survivors" are the full ranking, so the
	// mode degenerates to RerankAll.
	RerankTopK
	// RerankAll measures every candidate and orders the whole space by
	// measured time, truncating to TopK afterwards. The analytic bounds
	// say nothing about measured order, so this mode disables top-K
	// pruning in the analytic stage and pays one emulation per candidate
	// — the exhaustive reference against which RerankTopK is validated.
	RerankAll
)

// String names the mode the way the CLI spells it.
func (m RerankMode) String() string {
	switch m {
	case RerankTopK:
		return "rerank"
	case RerankAll:
		return "rank-all"
	default:
		return "off"
	}
}

// ParseRerankMode parses a mode name as spelled by String —
// case-insensitively, so CLI surfaces accept "Rerank" like
// cost.ParseAlgorithm accepts "ring". The single shared parser keeps
// every -measure flag (cmd/p2, examples) agreeing on the vocabulary.
func ParseRerankMode(s string) (RerankMode, error) {
	switch strings.ToLower(s) {
	case "off":
		return RerankOff, nil
	case "rerank":
		return RerankTopK, nil
	case "rank-all":
		return RerankAll, nil
	}
	return RerankOff, fmt.Errorf("unknown -measure mode %q (want off, rerank or rank-all)", s)
}

// measuredLess is the total order of a measured re-rank: emulated time
// first, analytic order — (Predicted, MatrixIdx, ProgIdx), the order the
// candidates already arrive in — as the tie-break. Re-sorting the
// analytic ranking stably by Measured produces exactly this order, which
// is what makes the re-ranked output byte-identical at every parallelism
// level: both the measured values (netsim is deterministic) and the
// tie-break are pure functions of the request.
func measuredLess(a, b *Candidate) bool {
	//p2:nan-ok emulated times are never NaN: netsim returns finite times or +Inf (stalled down links)
	if a.Measured != b.Measured {
		return a.Measured < b.Measured
	}
	return Less(a, b)
}

// fixedAlgo resolves the algorithm every step of a candidate runs when its
// StepAlgos is nil: the single pinned entry of Options.Algos, or the
// model's algorithm — mirroring matrixScorer so that measurement and
// scoring agree on what was planned.
func fixedAlgo(model *cost.Model, opts Options) cost.Algorithm {
	if len(opts.Algos) == 1 {
		return opts.Algos[0]
	}
	return model.Algo
}

// parallelEach runs fn(i) for i in [0, n) over at most `workers`
// goroutines, pulling indices from a shared atomic counter. Results must
// land by index (no cross-item state), which is what keeps every
// measured re-rank independent of the worker count. Cancellation skips
// the remaining indices (each goroutine re-checks ctx before pulling the
// next one); indices already claimed still run to completion.
func parallelEach(ctx context.Context, n, workers int, fn func(i int)) {
	if workers > n {
		workers = n
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for ctx.Err() == nil {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
}

// measureCandidates emulates every candidate, filling Candidate.Measured.
// Measurements are independent and deterministic (netsim's jitter is a
// pure function of system, algorithm, program and seed), so they fan out
// over the worker pool and land by index — the result does not depend on
// Parallelism. Per-step algorithm assignments ride along via MeasureSteps;
// a uniform assignment is canonicalized inside netsim, so a searched
// candidate that settled on all-Ring measures byte-identically to a
// pinned-Ring run. On cancellation some Measured fields are left
// unfilled or +Inf (the emulator's cancelled sentinel) — the caller must
// treat the whole batch as unusable and discard it.
func measureCandidates(ctx context.Context, cands []*Candidate, model *cost.Model, opts Options) error {
	// One shared read-only Simulator: MeasureSteps never mutates it.
	sim := netsim.Simulator{Sys: model.Sys, Algo: fixedAlgo(model, opts), Bytes: model.Bytes, Opts: opts.SimOpts, Ctx: ctx}
	parallelEach(ctx, len(cands), opts.workers(), func(i int) {
		cands[i].Measured = sim.MeasureSteps(cands[i].Lowered, cands[i].StepAlgos)
	})
	return ctx.Err()
}

// rerank measures the merged analytic ranking and re-sorts it by measured
// time (stable, so analytic order breaks measured ties), recording how
// many candidates were emulated and how far the two rankings disagree.
// On cancellation the half-measured values are zeroed, the analytic order
// is left untouched and ctx.Err() is returned — a partial result never
// mixes measured and unmeasured sort keys.
func rerank(ctx context.Context, cands []*Candidate, model *cost.Model, opts Options, stats *Stats) error {
	if err := measureCandidates(ctx, cands, model, opts); err != nil {
		for _, c := range cands {
			c.Measured = 0
		}
		return err
	}
	stats.MeasuredCandidates += len(cands)
	measured := make([]float64, len(cands))
	for i, c := range cands {
		measured[i] = c.Measured
	}
	stats.RankInversions += CountInversions(measured)
	sort.Slice(cands, func(i, j int) bool { return measuredLess(cands[i], cands[j]) })
	return nil
}

// rerankJoint measures every kept placement's per-reduction winners and
// re-sorts the placements by summed weighted measured time (stable, so
// the analytic (Total, MatrixIdx) order breaks ties). Candidate.Measured
// carries the raw per-reduction emulated seconds; JointCandidate.Measured
// the weighted entries, mirroring Costs. Cancellation mirrors rerank:
// every partially-filled Measured field is reset and the analytic
// placement order survives.
func rerankJoint(ctx context.Context, jcs []*JointCandidate, reds []JointSpec, opts Options, stats *Stats) error {
	parallelEach(ctx, len(jcs), opts.workers(), func(i int) {
		jc := jcs[i]
		jc.Measured = make([]float64, len(reds))
		jc.MeasuredTotal = 0
		for ri, red := range reds {
			c := jc.PerReduction[ri]
			sim := netsim.Simulator{Sys: red.Model.Sys, Algo: fixedAlgo(red.Model, red.options(opts)),
				Bytes: red.Model.Bytes, Opts: opts.SimOpts, Ctx: ctx}
			c.Measured = sim.MeasureSteps(c.Lowered, c.StepAlgos)
			jc.Measured[ri] = red.weight() * c.Measured
			jc.MeasuredTotal += jc.Measured[ri]
		}
	})
	if err := ctx.Err(); err != nil {
		for _, jc := range jcs {
			jc.Measured, jc.MeasuredTotal = nil, 0
			for _, c := range jc.PerReduction {
				c.Measured = 0
			}
		}
		return err
	}
	stats.MeasuredCandidates += len(jcs) * len(reds)
	totals := make([]float64, len(jcs))
	for i, jc := range jcs {
		totals[i] = jc.MeasuredTotal
	}
	stats.RankInversions += CountInversions(totals)
	sort.Slice(jcs, func(i, j int) bool {
		//p2:nan-ok measured totals are weighted sums of never-NaN emulated times (finite or +Inf)
		if jcs[i].MeasuredTotal != jcs[j].MeasuredTotal {
			return jcs[i].MeasuredTotal < jcs[j].MeasuredTotal
		}
		return jointLess(jcs[i], jcs[j])
	})
	return nil
}

// CountInversions counts the pairs i < j with vals[i] > vals[j] — the
// Kendall-tau distance between the order the values arrive in and their
// sorted order, i.e. how many pairwise comparisons a second ranking
// settles differently from the first when vals holds the second ranking's
// scores walked in first-ranking order. Measured re-ranking uses it for
// analytic-vs-emulated disagreement; the degraded-scenario eval for
// pristine-vs-degraded ranking shift. O(n log n) merge count, since
// rank-all runs it over the full cross-product.
func CountInversions(vals []float64) int {
	if len(vals) < 2 {
		return 0
	}
	work := make([]float64, len(vals))
	buf := make([]float64, len(vals))
	copy(work, vals)
	return mergeCount(work, buf, 0, len(work))
}

// mergeCount sorts work[lo:hi] ascending and returns its inversion count.
func mergeCount(work, buf []float64, lo, hi int) int {
	if hi-lo < 2 {
		return 0
	}
	mid := (lo + hi) / 2
	inv := mergeCount(work, buf, lo, mid) + mergeCount(work, buf, mid, hi)
	i, j, k := lo, mid, lo
	for i < mid && j < hi {
		if work[j] < work[i] {
			// Everything left in the first half is > work[j]: mid-i inversions.
			inv += mid - i
			buf[k] = work[j]
			j++
		} else {
			buf[k] = work[i]
			i++
		}
		k++
	}
	copy(buf[k:hi], work[i:mid])
	copy(buf[k+mid-i:hi], work[j:hi])
	copy(work[lo:hi], buf[lo:hi])
	return inv
}
