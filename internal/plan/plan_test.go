package plan

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sort"
	"sync"
	"testing"

	"p2/internal/cost"
	"p2/internal/hierarchy"
	"p2/internal/lower"
	"p2/internal/placement"
	"p2/internal/synth"
	"p2/internal/topology"
)

// serialRank is the reference ranking the engine must reproduce: matrices
// in order, synthesis per matrix, stable sort by predicted time.
func serialRank(t *testing.T, matrices []*placement.Matrix, reduceAxes []int, model *cost.Model, collapse bool) []*Candidate {
	t.Helper()
	var all []*Candidate
	for mi, m := range matrices {
		h, err := hierarchy.Build(hierarchy.KindReductionAxes, m, reduceAxes,
			hierarchy.Options{Collapse: collapse})
		if err != nil {
			t.Fatal(err)
		}
		res := synth.Synthesize(h, synth.Options{})
		for pi, prog := range res.Programs {
			lp, err := lower.Lower(prog, h)
			if err != nil {
				t.Fatal(err)
			}
			all = append(all, &Candidate{MatrixIdx: mi, ProgIdx: pi, Matrix: m,
				Program: prog, Lowered: lp, Predicted: model.ProgramTime(lp)})
		}
	}
	sort.SliceStable(all, func(i, j int) bool { return all[i].Predicted < all[j].Predicted })
	return all
}

func rankString(cands []*Candidate) string {
	s := ""
	for _, c := range cands {
		s += fmt.Sprintf("%v|%v|%016x\n", c.Matrix, c.Program, math.Float64bits(c.Predicted))
	}
	return s
}

func testSetup(t *testing.T) ([]*placement.Matrix, []int, *cost.Model) {
	t.Helper()
	sys := topology.A100System(4)
	axes := []int{4, 16}
	matrices, err := placement.Enumerate(sys.Hierarchy(), axes)
	if err != nil {
		t.Fatal(err)
	}
	model := &cost.Model{Sys: sys, Algo: cost.Ring, Bytes: cost.PayloadBytes(4)}
	return matrices, []int{0}, model
}

func TestRunMatchesSerial(t *testing.T) {
	matrices, red, model := testSetup(t)
	want := rankString(serialRank(t, matrices, red, model, false))
	for _, par := range []int{1, 2, 4, 16} {
		got, _, err := New().Run(matrices, red, model, Options{Parallelism: par})
		if err != nil {
			t.Fatal(err)
		}
		if g := rankString(got); g != want {
			t.Errorf("parallelism %d ranking differs from serial:\ngot:\n%swant:\n%s", par, g, want)
		}
	}
}

func TestTopKIsPrefixOfFullRanking(t *testing.T) {
	matrices, red, model := testSetup(t)
	full, _, err := New().Run(matrices, red, model, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range []int{1, 3, 10, len(full), len(full) + 50} {
		got, _, err := New().Run(matrices, red, model, Options{TopK: k, Parallelism: 4})
		if err != nil {
			t.Fatal(err)
		}
		wantLen := k
		if wantLen > len(full) {
			wantLen = len(full)
		}
		if len(got) != wantLen {
			t.Fatalf("TopK=%d returned %d candidates, want %d", k, len(got), wantLen)
		}
		if rankString(got) != rankString(full[:wantLen]) {
			t.Errorf("TopK=%d is not the prefix of the full ranking", k)
		}
	}
}

func TestMemoizationSharesSynthesis(t *testing.T) {
	// SuperPod(4,8) with axes [16 16]: several of the 10 placements share
	// a reduction hierarchy (e.g. rows [1 2 8] and [2 1 8] both collapse
	// to sizes [2 8]), so synthesis must run strictly fewer times than
	// there are placements.
	sys := topology.SuperPodSystem(4, 8)
	axes := []int{16, 16}
	matrices, err := placement.Enumerate(sys.Hierarchy(), axes)
	if err != nil {
		t.Fatal(err)
	}
	model := &cost.Model{Sys: sys, Algo: cost.Ring, Bytes: cost.PayloadBytes(32)}
	_, stats, err := New().Run(matrices, []int{0}, model, Options{Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Placements != len(matrices) {
		t.Errorf("Placements = %d, want %d", stats.Placements, len(matrices))
	}
	if stats.SynthRuns >= stats.Placements {
		t.Errorf("SynthRuns = %d, want < %d placements (memo should share)",
			stats.SynthRuns, stats.Placements)
	}
	if stats.SynthRuns+stats.MemoHits != stats.Placements {
		t.Errorf("SynthRuns %d + MemoHits %d != Placements %d",
			stats.SynthRuns, stats.MemoHits, stats.Placements)
	}
}

func TestSignatureMemoIsCorrect(t *testing.T) {
	// Placements sharing a signature must get identical program sets; the
	// memoized run must equal a memo-free serial reference on every matrix.
	matrices, red, model := testSetup(t)
	p := New()
	for mi, m := range matrices {
		got, err := p.PlanMatrix(mi, m, red, model, Options{})
		if err != nil {
			t.Fatal(err)
		}
		h, err := hierarchy.Build(hierarchy.KindReductionAxes, m, red, hierarchy.Options{})
		if err != nil {
			t.Fatal(err)
		}
		want := synth.Synthesize(h, synth.Options{}).Programs
		if len(got) != len(want) {
			t.Fatalf("matrix %v: %d programs, want %d", m, len(got), len(want))
		}
		for i := range got {
			if got[i].Program.String() != want[i].String() {
				t.Errorf("matrix %v program %d: %v, want %v", m, i, got[i].Program, want[i])
			}
		}
	}
}

// TestPlannerConcurrentUse exercises the shared signature memo from many
// goroutines (meaningful under -race).
func TestPlannerConcurrentUse(t *testing.T) {
	matrices, red, model := testSetup(t)
	p := New()
	want := ""
	var mu sync.Mutex
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			got, _, err := p.Run(matrices, red, model, Options{Parallelism: 4})
			if err != nil {
				t.Error(err)
				return
			}
			s := rankString(got)
			mu.Lock()
			defer mu.Unlock()
			if want == "" {
				want = s
			} else if s != want {
				t.Error("concurrent runs disagree")
			}
		}()
	}
	wg.Wait()
}

// TestRunErrorDeterministic: failures must surface the lowest-indexed
// matrix's error at every worker count (here every matrix fails the
// same way, so the message must be stable across parallelism).
func TestRunErrorDeterministic(t *testing.T) {
	matrices, _, model := testSetup(t)
	want := ""
	for _, par := range []int{1, 4, 16} {
		_, _, err := New().Run(matrices, []int{9}, model, Options{Parallelism: par})
		if err == nil {
			t.Fatalf("parallelism %d: expected error for out-of-range axis", par)
		}
		if want == "" {
			want = err.Error()
		} else if err.Error() != want {
			t.Errorf("parallelism %d: error %q, want %q", par, err, want)
		}
	}
}

// TestFanOutPanicBecomesError: a panic inside one worker item must not
// unwind the process — fanOut recovers it into a *PanicError carrying
// the item's enumeration index, the panic value and the worker's stack,
// and (like any item failure) reports it as the lowest-indexed error at
// every worker count. Items below the crashing index still run.
func TestFanOutPanicBecomesError(t *testing.T) {
	matrices, _, _ := testSetup(t)
	if len(matrices) < 3 {
		t.Fatalf("need at least 3 placements, have %d", len(matrices))
	}
	for _, par := range []int{1, 4, 16} {
		var mu sync.Mutex
		ran := map[int]bool{}
		_, produced, err := fanOut[int](context.Background(), Options{Parallelism: par},
			sliceStream(matrices),
			func(ws *workerState, i int, m *placement.Matrix, emit func(int)) error {
				mu.Lock()
				ran[i] = true
				mu.Unlock()
				if i == 2 {
					panic("injected worker crash")
				}
				emit(i)
				return nil
			},
			func(a, b int) bool { return a < b },
			func(x int) float64 { return float64(x) },
			newThreshold())
		var pe *PanicError
		if !errors.As(err, &pe) {
			t.Fatalf("parallelism %d: err = %v, want *PanicError", par, err)
		}
		if pe.Index != 2 || fmt.Sprint(pe.Value) != "injected worker crash" {
			t.Errorf("parallelism %d: PanicError{Index: %d, Value: %v}, want index 2, injected value",
				par, pe.Index, pe.Value)
		}
		if len(pe.Stack) == 0 {
			t.Errorf("parallelism %d: PanicError.Stack is empty", par)
		}
		if want := "plan: panic while planning placement 2: injected worker crash"; err.Error() != want {
			t.Errorf("parallelism %d: error %q, want %q (deterministic across worker counts)",
				par, err, want)
		}
		mu.Lock()
		if !ran[0] || !ran[1] {
			t.Errorf("parallelism %d: items below the crash did not all run: %v", par, ran)
		}
		mu.Unlock()
		if produced < 3 {
			t.Errorf("parallelism %d: produced %d items, want at least 3", par, produced)
		}
	}
}

func TestTopKHeapProperty(t *testing.T) {
	less := func(a, b int) bool { return a < b }
	// Deterministic pseudo-random insertion order.
	x := uint64(12345)
	var vals []int
	for i := 0; i < 500; i++ {
		x = x*6364136223846793005 + 1442695040888963407
		vals = append(vals, int(x%1000))
	}
	for _, k := range []int{1, 7, 100, 500, 1000, 0} {
		h := newTopK(k, less)
		for _, v := range vals {
			h.push(v)
		}
		got := append([]int(nil), h.items()...)
		sort.Ints(got)
		want := append([]int(nil), vals...)
		sort.Ints(want)
		if k > 0 && k < len(want) {
			want = want[:k]
		}
		if len(got) != len(want) {
			t.Fatalf("k=%d kept %d items, want %d", k, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("k=%d kept %v, want %v", k, got, want)
			}
		}
	}
}

func TestRunJointMatchesSerial(t *testing.T) {
	sys := topology.A100System(2)
	axes := []int{4, 8}
	matrices, err := placement.Enumerate(sys.Hierarchy(), axes)
	if err != nil {
		t.Fatal(err)
	}
	specs := []JointSpec{
		{ReduceAxes: []int{0}, Model: &cost.Model{Sys: sys, Algo: cost.Ring, Bytes: 1 << 30}, Weight: 1},
		{ReduceAxes: []int{1}, Model: &cost.Model{Sys: sys, Algo: cost.Ring, Bytes: 1 << 26}, Weight: 48},
	}
	// Serial reference: per matrix, best per reduction, weighted total,
	// stable sort by total.
	type ref struct {
		mi    int
		total float64
	}
	var want []ref
	for mi, m := range matrices {
		total := 0.0
		for _, spec := range specs {
			cands, err := New().PlanMatrix(mi, m, spec.ReduceAxes, spec.Model, Options{Collapse: spec.Collapse})
			if err != nil {
				t.Fatal(err)
			}
			best := cands[0]
			for _, c := range cands[1:] {
				if Less(c, best) {
					best = c
				}
			}
			total += spec.Weight * best.Predicted
		}
		want = append(want, ref{mi: mi, total: total})
	}
	sort.SliceStable(want, func(i, j int) bool { return want[i].total < want[j].total })

	for _, par := range []int{1, 4, 16} {
		got, _, err := New().RunJoint(matrices, specs, Options{Parallelism: par})
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(want) {
			t.Fatalf("parallelism %d: %d choices, want %d", par, len(got), len(want))
		}
		for i := range got {
			if got[i].MatrixIdx != want[i].mi || got[i].Total != want[i].total {
				t.Errorf("parallelism %d choice %d: matrix %d total %v, want matrix %d total %v",
					par, i, got[i].MatrixIdx, got[i].Total, want[i].mi, want[i].total)
			}
		}
	}
}
