package plan

import (
	"p2/internal/hierarchy"
	"p2/internal/topology"
)

// boundSafety scales the analytic lower bound down by one part in 10⁹.
// The bound is mathematically admissible (see below), but it is computed
// as a closed-form product while the cost model accumulates the same
// traffic as a float sum in schedule order; the margin absorbs the ulp
// rounding differences so that bound ≤ predicted holds bitwise, not just
// in exact arithmetic. It costs a vanishing amount of pruning power.
const boundSafety = 1 - 1e-9

// placementBound returns an admissible lower bound on Model.ProgramTime of
// EVERY valid reduction program for the placement inducing hierarchy h,
// under every algorithm (Ring, Tree and HalvingDoubling schedules alike):
// the cheapest conceivable step schedule for the hierarchy's reduction
// structure on this system. Placements whose bound already exceeds the
// shared top-K threshold are skipped before synthesis or lowering runs.
//
// The bound has a bandwidth and a latency component, each a simultaneous
// lower bound on the corresponding summand of every step's predicted time
// (StepTime = worst-link transfer + rounds × latency), so their sum lower
// bounds the program total.
//
// Bandwidth: fix a hardware entity E at level l. Every physical reduction
// group (a universe group replicated per non-reduction coordinate) that
// has members both inside and outside E must move, over the whole program,
// at least 2 bytes-per-device across E's uplink — each of the K chunk rows
// carries Bytes/K, the combined outside contribution of a row must enter E
// at least once (inside members end with the full sum) and the combined
// inside contribution must leave at least once (outside members do too),
// and intra-E transfers are never charged to E's uplink by the model. The
// model's per-step worst-link time is ≥ that step's traffic through E's
// uplink / bandwidth, so summing over steps:
//
//	Σ_steps worst_s ≥ 2·Bytes·splitGroups(E) / bandwidth(l)
//
// for every entity E; the bound takes the best (max) entity.
//
// Latency: let l* be the root-most level any reduction group spans. Data
// of a group spanning l* must cross between two level-l* entities, so some
// step contains an edge diverging at a level ≤ l*; that step pays at least
// one round of that uplink's latency, so Σ_steps rounds_s·lat_s ≥ the
// minimum uplink latency over levels ≤ l*.
//
// The bound is exactly tight (up to rounding) for the hierarchical
// ReduceScatter/AllReduce/AllGather strategy on two-level systems, which
// is what makes it useful: placements whose best program is far from the
// incumbent top-K are provably outside it without synthesizing anything.
//
// placementBound is the scratch-free convenience wrapper used by tests
// and one-shot callers; the engine's workers call boundScratch's method
// so the per-entity split counters and the entity-id scratch are reused
// across the thousands of placements of one run instead of reallocated
// per bound.
func placementBound(sys *topology.System, h *hierarchy.Hierarchy, bytes float64) float64 {
	var bs boundScratch
	return bs.placementBound(sys, h, bytes)
}

// boundScratch is per-worker reusable scratch for placementBound: splits
// holds the per-entity split-group counters (zeroed again by the final
// max-scan before every return), ents the distinct entity ids of one
// group at one level. The zero value is ready to use.
type boundScratch struct {
	splits []int
	ents   []int
}

// placementBound computes the admissible bound documented above with zero
// steady-state allocations: scratch grows to the largest system seen and
// is reused, and every splits entry the computation dirties is re-zeroed
// by the final scan, so the scratch is clean for the next placement.
//
//p2:zeroalloc
func (bs *boundScratch) placementBound(sys *topology.System, h *hierarchy.Hierarchy, bytes float64) float64 {
	// NaN-proof form: a NaN payload must take the degenerate branch (bound
	// 0 prunes nothing) instead of poisoning the bound arithmetic.
	if !(bytes > 0) {
		return 0
	}
	L := sys.NumLevels()
	offsets := sys.EntityOffsets()
	if cap(bs.splits) < offsets[L] {
		bs.splits = make([]int, offsets[L]) //p2:alloc-ok scratch growth to the largest system seen, amortized across a run's placements
	}
	splits := bs.splits[:offsets[L]]
	crossed := L // root-most level any group spans (L = none)

	reps := h.Replicas()
	ents := bs.ents[:0] // scratch: distinct entity ids of one group at one level
	for u, grp := range h.Groups {
		if len(grp) < 2 || grp[0] != u {
			// Singleton groups need no communication; non-minimal members
			// repeat their group's minimal leaf.
			continue
		}
		for r := 0; r < reps; r++ {
			for l := 0; l < L; l++ {
				ents = ents[:0]
				for _, v := range grp {
					e := sys.EntityID(h.Leaves[v][r], l)
					known := false
					for _, x := range ents {
						if x == e {
							known = true
							break
						}
					}
					if !known {
						ents = append(ents, e) //p2:alloc-ok scratch growth is amortized; capacity is persisted to bs.ents and reused
					}
				}
				if len(ents) < 2 {
					continue
				}
				if l < crossed {
					crossed = l
				}
				for _, e := range ents {
					splits[offsets[l]+e]++
				}
			}
		}
	}
	// Persist any append growth so the capacity is reused next placement.
	bs.ents = ents[:0]

	worst := 0.0
	for l := 0; l < L; l++ {
		sub := splits[offsets[l]:offsets[l+1]]
		for e, n := range sub {
			if n == 0 {
				// Skip untouched entities: besides the scan cost, a down
				// link (effective bandwidth 0) would make 0/0 a NaN here.
				continue
			}
			// Re-zero the dirtied counter so the scratch is clean for the
			// next placement; untouched entries are already zero.
			sub[e] = 0
			// Per-entity effective bandwidth keeps the bound admissible —
			// and tighter than a worst-case-per-level bandwidth would —
			// because the flow argument above is already per-entity: entity
			// E's 2·Bytes·splitGroups(E) crosses E's own uplink. A down
			// uplink (bandwidth 0) with splits yields +Inf: every program
			// for this placement must cross it, so every prediction is +Inf
			// too and the bound remains a true lower bound.
			if t := 2 * bytes * float64(n) / sys.LinkBandwidth(l, e); t > worst {
				worst = t
			}
		}
	}
	lat := 0.0
	if crossed < L {
		// Minimum effective uplink latency over levels ≤ crossed and over
		// each level's entities: some step pays a round of latency on an
		// uplink at one of these levels, but overrides mean we cannot know
		// which entity's, so the bound assumes the fastest.
		lat = sys.MinLinkLatency(crossed)
		for l := 0; l < crossed; l++ {
			if m := sys.MinLinkLatency(l); m < lat {
				lat = m
			}
		}
	}
	return (worst + lat) * boundSafety
}
