// Package plan is the parallel, memoized, bound-pruned planning engine
// behind p2.Plan and p2.PlanJoint. Placement matrices stream from the
// enumeration DFS straight into a bounded worker pool (no materialized
// placement set), program synthesis is memoized by the canonical hierarchy
// signature (placements inducing the same reduction hierarchy share one
// synthesis run), and with TopK set the engine prunes provably hopeless
// work: an admissible per-placement lower bound (bounds.go) skips
// synthesis and lowering for placements that cannot enter the incumbent
// top-K, and per-program scoring aborts — mid-lowering — once a partial
// step-cost sum exceeds the shared threshold.
//
// The engine is deterministic: its output is byte-identical to the serial
// reference path (enumerate placements in order, synthesize, rank with a
// stable sort). Candidates are totally ordered by (Predicted, MatrixIdx,
// ProgIdx), which coincides with what a stable sort by Predicted produces
// over the serial append order, so parallel execution — with any worker
// count — and top-K truncation cannot reorder ties. Pruning preserves the
// guarantee because it only ever discards candidates that are strictly
// dominated: a candidate (or whole placement) is dropped only when its
// lower bound exceeds — strictly — a threshold that K already-scored
// candidates are at or below, so the dropped candidate loses every Less
// comparison that matters regardless of tie-breaking. With TopK=0 no
// threshold exists and the engine scores the full cross-product, exactly
// like the serial path.
package plan

import (
	"context"
	"errors"
	"fmt"
	"math"
	"runtime"
	"runtime/debug"
	"sort"
	"sync"
	"sync/atomic"

	"p2/internal/cost"
	"p2/internal/dsl"
	"p2/internal/hierarchy"
	"p2/internal/lower"
	"p2/internal/netsim"
	"p2/internal/placement"
	"p2/internal/synth"
	"p2/internal/topology"
)

// Options tune one planning run.
type Options struct {
	// Parallelism bounds the worker pool. 0 means GOMAXPROCS; 1 runs the
	// matrices sequentially (still memoized).
	Parallelism int
	// TopK, when positive, keeps only the K cheapest candidates. The
	// result is exactly the first K entries of the full ranking. TopK also
	// arms the pruning machinery (placement lower bounds, early-exit
	// scoring); 0 keeps the serial-identical full materialization.
	TopK int
	// MaxProgramSize limits synthesized program length (0 = synth default).
	MaxProgramSize int
	// Collapse is the hierarchy same-level factor collapsing option.
	Collapse bool
	// Algos, when it has two or more entries, makes scoring search over
	// the set per step: every lowered step independently runs the
	// algorithm minimizing its predicted time (ties go to the earliest
	// entry), and candidates carry the winning assignment in StepAlgos.
	// Empty or single-entry slices pin every step to the model's (resp.
	// the single) algorithm, exactly as before the search existed.
	Algos []cost.Algorithm
	// Rerank selects measured-in-the-loop planning: with RerankTopK the
	// analytic top-K survivors are measured on the netsim emulator and
	// re-sorted by measured time; with RerankAll every candidate is
	// measured (which disables top-K pruning in the analytic stage, since
	// analytic bounds cannot cut a measured ranking). RerankOff keeps the
	// purely analytic ranking. See rerank.go for the determinism contract.
	Rerank RerankMode
	// SimOpts tunes the emulator used by the re-rank stage (noise, launch
	// overhead, fusion and cross-domain toggles); the zero value is the
	// emulator's defaults. Ignored with Rerank == RerankOff.
	SimOpts netsim.Options
}

// workers resolves the worker-pool size.
func (o Options) workers() int {
	if o.Parallelism > 0 {
		return o.Parallelism
	}
	return runtime.GOMAXPROCS(0)
}

// Candidate is one (placement, program) pair with its predicted runtime
// and its provenance in the enumeration order (for deterministic
// tie-breaking).
type Candidate struct {
	MatrixIdx int
	ProgIdx   int
	Matrix    *placement.Matrix
	Program   dsl.Program
	Lowered   *lower.Program
	Predicted float64
	// Measured is the emulated runtime in seconds, filled by the re-rank
	// stage of a measured-in-the-loop run (Options.Rerank); 0 in purely
	// analytic runs.
	Measured float64
	// StepAlgos is the winning per-step algorithm assignment (one entry
	// per lowered step) when Options.Algos enabled the search; nil when
	// the run was pinned to a single algorithm.
	StepAlgos []cost.Algorithm
}

// Less is the total candidate order: predicted time, then placement
// enumeration order, then program enumeration order. It refines the
// serial path's stable sort by Predicted, so ranking by Less reproduces
// the serial ranking exactly.
func Less(a, b *Candidate) bool {
	//p2:nan-ok predictions are never NaN: validated links yield finite times, down links +Inf
	if a.Predicted != b.Predicted {
		return a.Predicted < b.Predicted
	}
	if a.MatrixIdx != b.MatrixIdx {
		return a.MatrixIdx < b.MatrixIdx
	}
	return a.ProgIdx < b.ProgIdx
}

// Stats reports how much work a run performed, how much the signature
// memo saved, and how much the bound pruning skipped.
type Stats struct {
	// Placements is the number of matrices streamed into the run.
	Placements int
	// SynthRuns counts actual synthesis executions.
	SynthRuns int
	// MemoHits counts placements served from the signature memo.
	MemoHits int
	// Candidates counts (placement, program) pairs scored to completion —
	// the planning effort, before any top-K truncation.
	Candidates int
	// PrunedPlacements counts placements cut by the admissible bounds: in
	// single-reduction runs always before any synthesis, lowering or
	// scoring; in joint runs either up front (summed per-reduction bounds
	// above the threshold) or partway through the reductions, once the
	// finished reductions' exact totals plus the remaining reductions'
	// bounds already exceed it.
	PrunedPlacements int
	// PrunedPrograms counts programs whose scoring aborted early: the
	// partial step-cost sum (or, for joint runs, the incumbent
	// per-reduction best) proved the program cannot be kept.
	PrunedPrograms int
	// BoundTightenings counts successful tightenings of the shared
	// threshold (each one makes subsequent pruning more aggressive).
	BoundTightenings int
	// MeasuredCandidates counts emulator runs performed by the re-rank
	// stage of a measured-in-the-loop run (Options.Rerank): the analytic
	// survivors for RerankTopK, the full candidate space for RerankAll —
	// and, in joint runs, one per (kept placement, reduction). 0 in
	// purely analytic runs.
	MeasuredCandidates int
	// RankInversions counts the candidate pairs the analytic and measured
	// rankings order differently (the Kendall-tau distance over the
	// measured candidates) — the run's analytic-vs-measured disagreement.
	// Unlike the pruning counters, it is deterministic: both rankings are
	// pure functions of the request.
	RankInversions int
}

// Planner runs planning requests, sharing a synthesis memo across the
// placements and reductions of each run. Reusing one Planner also shares
// the memo across successive runs (p2.Plan constructs a fresh Planner per
// call, so its memo spans exactly one request). The memo is unbounded by
// default — every distinct (hierarchy signature, program-size limit) pair
// stays resident forever, which a long-lived Planner serving many
// differently-shaped requests may not want; cap it with WithMemoCap. A
// Planner is safe for concurrent use.
type Planner struct {
	mu      sync.Mutex
	memo    map[memoKey]*memoEntry
	memoCap int
}

// Option configures a Planner.
type Option func(*Planner)

// WithMemoCap bounds the synthesis memo to at most n entries. Once full,
// further signatures synthesize without being recorded (correct, just not
// shared), so memory stays bounded while results are unchanged. n <= 0
// means unbounded (the default).
func WithMemoCap(n int) Option {
	return func(p *Planner) { p.memoCap = n }
}

// runCounters tallies one run's memo effectiveness, scoring effort and
// pruning wins.
type runCounters struct {
	synthRuns        atomic.Int64
	memoHits         atomic.Int64
	scored           atomic.Int64
	prunedPlacements atomic.Int64
	prunedPrograms   atomic.Int64
}

func (rc *runCounters) stats(placements int, thr *threshold) Stats {
	return Stats{
		Placements:       placements,
		SynthRuns:        int(rc.synthRuns.Load()),
		MemoHits:         int(rc.memoHits.Load()),
		Candidates:       int(rc.scored.Load()),
		PrunedPlacements: int(rc.prunedPlacements.Load()),
		PrunedPrograms:   int(rc.prunedPrograms.Load()),
		BoundTightenings: int(thr.tightenings.Load()),
	}
}

type memoKey struct {
	sig     string
	maxSize int
}

type memoEntry struct {
	once sync.Once
	res  *synth.Result
}

// New returns an empty Planner.
func New(opts ...Option) *Planner {
	p := &Planner{memo: map[memoKey]*memoEntry{}}
	for _, o := range opts {
		o(p)
	}
	return p
}

// synthesize returns the program set for h, running synthesis at most
// once per (hierarchy signature, maxSize) and serving repeats from the
// memo, reporting whether the result came from the memo. Concurrent
// callers with the same signature block on the single synthesis instead
// of duplicating it. When the memo cap is reached, unseen signatures
// synthesize without being recorded.
func (p *Planner) synthesize(h *hierarchy.Hierarchy, maxSize int) (*synth.Result, bool) {
	key := memoKey{sig: h.Signature(), maxSize: maxSize}
	p.mu.Lock()
	ent, hit := p.memo[key]
	if !hit && p.memoCap > 0 && len(p.memo) >= p.memoCap {
		p.mu.Unlock()
		return synth.Synthesize(h, synth.Options{MaxSize: maxSize}), false
	}
	if !hit {
		ent = &memoEntry{}
		p.memo[key] = ent
	}
	p.mu.Unlock()
	ent.once.Do(func() {
		ent.res = synth.Synthesize(h, synth.Options{MaxSize: maxSize})
	})
	return ent.res, hit
}

// threshold is the shared, atomically tightening upper bound on the K-th
// best predicted value kept anywhere in the run. Every worker whose local
// top-K heap is full publishes its worst kept value; since those K kept
// candidates exist globally, the global K-th best is at most the
// published value, so anything provably above the threshold — strictly —
// cannot reach the final top-K no matter how ties break. It starts at
// +Inf (prune nothing) until some worker has K candidates.
type threshold struct {
	bits        atomic.Uint64
	tightenings atomic.Int64
}

func newThreshold() *threshold {
	t := &threshold{}
	t.bits.Store(math.Float64bits(math.Inf(1)))
	return t
}

func (t *threshold) load() float64 { return math.Float64frombits(t.bits.Load()) }

// tighten lowers the threshold to v if v is smaller (atomic min).
func (t *threshold) tighten(v float64) {
	nb := math.Float64bits(v)
	for {
		old := t.bits.Load()
		if math.Float64frombits(old) <= v {
			return
		}
		if t.bits.CompareAndSwap(old, nb) {
			t.tightenings.Add(1)
			return
		}
	}
}

// workerState is per-worker scratch: reusable zero-alloc scorers, one per
// distinct system seen (a run almost always has exactly one), and the
// placement-bound scratch reused across every placement the worker prunes.
type workerState struct {
	scorers map[*topology.System]*cost.Scorer
	bounds  boundScratch
}

func (ws *workerState) scorer(sys *topology.System) *cost.Scorer {
	if sc, ok := ws.scorers[sys]; ok {
		return sc
	}
	if ws.scorers == nil {
		ws.scorers = map[*topology.System]*cost.Scorer{}
	}
	sc := cost.NewScorer(sys)
	ws.scorers[sys] = sc
	return sc
}

// stepKey identifies a lowered step up to cost equivalence within one
// placement: the instruction determines Op and the device groups, Rows
// the payload fraction, and algo the schedule expansion. RowsOut and K
// are not read by StepTime (K is constant per hierarchy anyway).
type stepKey struct {
	in   dsl.Instruction
	rows int
	algo cost.Algorithm
}

// stepChoice is one memoized per-step search outcome: the winning
// algorithm and its predicted time.
type stepChoice struct {
	algo cost.Algorithm
	time float64
}

// matrixScorer scores the programs of one placement, memoizing step costs
// by (instruction, rows, algo) so that programs sharing a prefix — or
// merely an instruction at the same payload fraction — share the StepTime
// evaluations, which dominate serial planning at scale.
type matrixScorer struct {
	sc        *cost.Scorer
	model     *cost.Model
	fixedAlgo cost.Algorithm
	algos     []cost.Algorithm // nil unless searching
	stepCost  map[stepKey]float64
	choices   map[stepKey]stepChoice
}

func newMatrixScorer(ws *workerState, model *cost.Model, opts Options) *matrixScorer {
	ms := &matrixScorer{
		sc:        ws.scorer(model.Sys),
		model:     model,
		fixedAlgo: model.Algo,
		stepCost:  map[stepKey]float64{},
	}
	if len(opts.Algos) == 1 {
		ms.fixedAlgo = opts.Algos[0]
	}
	if len(opts.Algos) > 1 {
		ms.algos = opts.Algos
		ms.choices = map[stepKey]stepChoice{}
	}
	return ms
}

func (ms *matrixScorer) costOf(in dsl.Instruction, st lower.Step, a cost.Algorithm) float64 {
	key := stepKey{in: in, rows: st.Rows, algo: a}
	c, ok := ms.stepCost[key]
	if !ok {
		c = ms.sc.StepTimeAlgo(ms.model, st, a)
		ms.stepCost[key] = c
	}
	return c
}

// stepTime returns one step's predicted time — the fixed algorithm's, or
// the memoized per-step argmin over the searched set (ties to the
// earliest entry, matching cost.Model.BestStepAlgos).
func (ms *matrixScorer) stepTime(in dsl.Instruction, st lower.Step) stepChoice {
	if ms.algos == nil {
		return stepChoice{algo: ms.fixedAlgo, time: ms.costOf(in, st, ms.fixedAlgo)}
	}
	ck := stepKey{in: in, rows: st.Rows}
	ch, ok := ms.choices[ck]
	if !ok {
		ch = stepChoice{algo: ms.algos[0], time: ms.costOf(in, st, ms.algos[0])}
		for _, a := range ms.algos[1:] {
			if t := ms.costOf(in, st, a); t < ch.time {
				ch = stepChoice{algo: a, time: t}
			}
		}
		ms.choices[ck] = ch
	}
	return ch
}

// PlanMatrix synthesizes, lowers and scores every program for one
// placement. Programs appear in synthesis order (size, then lexicographic
// — the same order the serial path appends them in). The per-program sum
// runs over the same values in the same order as cost.Model.BestStepAlgos
// (resp. ProgramTime), so predictions are bit-identical to the serial
// brute-force path.
func (p *Planner) PlanMatrix(mi int, m *placement.Matrix, reduceAxes []int, model *cost.Model, opts Options) ([]*Candidate, error) {
	var out []*Candidate
	//p2:ctx-ok PlanMatrix is the documented uncancellable single-matrix entry point; PlanMatrixCtx does not exist by design
	err := p.planMatrix(context.Background(), &workerState{}, mi, m, reduceAxes, model, opts, &runCounters{}, newThreshold(),
		func(c *Candidate) { out = append(out, c) })
	if err != nil {
		return nil, err
	}
	return out, nil
}

// planMatrix is PlanMatrix against shared worker scratch, counters and the
// run's pruning threshold, emitting each completed candidate as soon as it
// is scored (the caller's sink pushes it into the worker heap, which can
// tighten the shared threshold mid-placement). With TopK armed it may skip
// the placement entirely (admissible bound above the threshold) and
// abandons individual programs mid-lowering once their partial cost sum
// exceeds the threshold. Neither cut can remove a final top-K member: the
// bound never exceeds any program's true cost, partial sums never exceed
// the total (step costs are non-negative), and both cuts require strictly
// exceeding a value that K scored candidates already meet.
//
// Cancellation is cooperative at program granularity: ctx is consulted
// between programs and the first observed cancellation returns ctx.Err()
// with the placement partially scored (every candidate already emitted is
// valid and ranked). ctx is deliberately NOT threaded into synthesize —
// memo entries complete under sync.Once exactly once, so a cancelled
// request can never leave a poisoned half-built entry for later requests.
func (p *Planner) planMatrix(ctx context.Context, ws *workerState, mi int, m *placement.Matrix, reduceAxes []int, model *cost.Model, opts Options, rc *runCounters, thr *threshold, emit func(*Candidate)) error {
	h, err := hierarchy.Build(hierarchy.KindReductionAxes, m, reduceAxes, hierarchy.Options{Collapse: opts.Collapse})
	if err != nil {
		return err
	}
	prune := opts.TopK > 0
	if prune && ws.bounds.placementBound(model.Sys, h, model.Bytes) > thr.load() {
		rc.prunedPlacements.Add(1)
		return nil
	}
	res, hit := p.synthesize(h, opts.MaxProgramSize)
	if hit {
		rc.memoHits.Add(1)
	} else {
		rc.synthRuns.Add(1)
	}
	ms := newMatrixScorer(ws, model, opts)
	scored := 0
	for pi, prog := range res.Programs {
		if err := ctx.Err(); err != nil {
			rc.scored.Add(int64(scored))
			return err
		}
		// Early exit: the remaining steps can only add cost, so a partial
		// sum strictly above the threshold already loses to K kept
		// candidates — stop lowering and scoring this program.
		c, err := ms.scoreProgram(mi, pi, m, h, prog, func(partial float64) bool {
			return prune && partial > thr.load()
		})
		if err != nil {
			return err
		}
		if c == nil {
			rc.prunedPrograms.Add(1)
			continue
		}
		scored++
		emit(c)
	}
	rc.scored.Add(int64(scored))
	return nil
}

// scoreProgram lowers one program step by step, accumulating its
// predicted time (and per-step algorithm assignment when searching) in
// exactly the serial order, and abandons it — skipping the remaining
// lowering work — as soon as cutoff reports the partial sum disqualifies
// it (nil, nil is returned). The caller's cutoff must only ever cut
// programs whose final value provably cannot matter: partial sums never
// exceed the final value because step costs are non-negative.
func (ms *matrixScorer) scoreProgram(mi, pi int, m *placement.Matrix, h *hierarchy.Hierarchy, prog dsl.Program, cutoff func(partial float64) bool) (*Candidate, error) {
	low := lower.Start(prog, h)
	predicted := 0.0
	var stepAlgos []cost.Algorithm
	if ms.algos != nil {
		stepAlgos = make([]cost.Algorithm, len(prog))
	}
	for si := 0; !low.Done(); si++ {
		st, err := low.Next()
		if err != nil {
			return nil, err
		}
		ch := ms.stepTime(prog[si], st)
		if stepAlgos != nil {
			stepAlgos[si] = ch.algo
		}
		predicted += ch.time
		if cutoff(predicted) {
			return nil, nil
		}
	}
	return &Candidate{
		MatrixIdx: mi,
		ProgIdx:   pi,
		Matrix:    m,
		Program:   prog,
		Lowered:   low.Program(),
		Predicted: predicted,
		StepAlgos: stepAlgos,
	}, nil
}

// Run ranks every (matrix, program) candidate for one reduction request,
// fanning the matrices out over the worker pool. The returned slice is
// sorted by Less and truncated to TopK when set.
func (p *Planner) Run(matrices []*placement.Matrix, reduceAxes []int, model *cost.Model, opts Options) ([]*Candidate, Stats, error) {
	return p.RunStream(sliceStream(matrices), reduceAxes, model, opts)
}

// RunCtx is Run under a context: see RunStreamCtx for the cancellation
// and anytime-result contract.
func (p *Planner) RunCtx(ctx context.Context, matrices []*placement.Matrix, reduceAxes []int, model *cost.Model, opts Options) ([]*Candidate, Stats, error) {
	return p.RunStreamCtx(ctx, sliceStream(matrices), reduceAxes, model, opts)
}

// sliceStream adapts a materialized placement set to the streaming
// producer interface.
func sliceStream(matrices []*placement.Matrix) func(func(*placement.Matrix) bool) error {
	return func(yield func(*placement.Matrix) bool) error {
		for _, m := range matrices {
			if !yield(m) {
				return nil
			}
		}
		return nil
	}
}

// RunStream is Run over a placement producer instead of a materialized
// slice: stream (typically placement.Iterate) yields matrices in canonical
// enumeration order and the engine feeds them to the worker pool as they
// appear, so the full placement set never resides in memory. The ranking
// is identical to Run over the materialized equivalent.
//
// With Options.Rerank set, the analytic ranking is then measured on the
// emulator and re-sorted by measured time (rerank.go); RerankAll runs the
// analytic stage unpruned so that every candidate exists to be measured,
// and truncates to TopK only after the measured sort.
func (p *Planner) RunStream(stream func(func(*placement.Matrix) bool) error, reduceAxes []int, model *cost.Model, opts Options) ([]*Candidate, Stats, error) {
	return p.RunStreamCtx(context.Background(), stream, reduceAxes, model, opts) //p2:ctx-ok documented no-deadline compatibility shim wrapping RunStreamCtx
}

// RunStreamCtx is RunStream under a context. With an uncancelled context
// the ranking is byte-identical to RunStream (the checks observe nil and
// change nothing). On cancellation or deadline expiry the run stops
// cooperatively — between programs, between measured candidates, and
// every few emulator event-loop iterations — and returns an *anytime*
// result alongside ctx.Err(): the merged per-worker top-K heaps, sorted
// by Less and truncated to TopK. Every returned candidate is fully
// scored and correctly ordered among those returned; the set is the best
// of what was scored before the cut, not necessarily a prefix of the
// full ranking. If cancellation lands during the re-rank measurement
// stage, partially-filled Measured values are zeroed and the analytic
// order is returned, so a partial result never mixes measured and
// unmeasured sort keys. Non-context errors return (nil, stats, err)
// exactly as before.
func (p *Planner) RunStreamCtx(ctx context.Context, stream func(func(*placement.Matrix) bool) error, reduceAxes []int, model *cost.Model, opts Options) ([]*Candidate, Stats, error) {
	runOpts := opts
	if opts.Rerank == RerankAll {
		runOpts.TopK = 0
	}
	var rc runCounters
	thr := newThreshold()
	perWorker, produced, err := fanOut(ctx, runOpts, stream, func(ws *workerState, mi int, m *placement.Matrix, emit func(*Candidate)) error {
		return p.planMatrix(ctx, ws, mi, m, reduceAxes, model, runOpts, &rc, thr, emit)
	}, Less, func(c *Candidate) float64 { return c.Predicted }, thr)
	stats := rc.stats(produced, thr)
	if err != nil {
		return nil, stats, err
	}
	if cerr := ctx.Err(); cerr != nil {
		// Anytime result: the workers' heaps hold the best of everything
		// scored before the cut; truncate to the user-facing K (runOpts.TopK
		// is zeroed under RerankAll, which no longer applies — a cancelled
		// run never reaches the measurement stage).
		return mergeRanked(perWorker, opts.TopK, Less), stats, cerr
	}
	cands := mergeRanked(perWorker, runOpts.TopK, Less)
	if opts.Rerank != RerankOff {
		rerr := rerank(ctx, cands, model, opts, &stats)
		if opts.TopK > 0 && len(cands) > opts.TopK {
			cands = cands[:opts.TopK]
		}
		if rerr != nil {
			return cands, stats, rerr
		}
	}
	return cands, stats, nil
}

// JointSpec describes one recurring reduction of a joint request.
type JointSpec struct {
	// ReduceAxes are the axis indices reduced over.
	ReduceAxes []int
	// Model is the per-reduction cost model (its Algo and Bytes may
	// differ between reductions of one joint request).
	Model *cost.Model
	// Weight scales the reduction's predicted time in the joint total
	// (the per-step occurrence count; <= 0 means 1).
	Weight float64
	// Collapse and MaxProgramSize mirror Options per reduction.
	Collapse       bool
	MaxProgramSize int
	// Algos enables the per-step algorithm search for this reduction
	// (see Options.Algos); each reduction of a joint request may search
	// its own set.
	Algos []cost.Algorithm
}

// weight resolves the defaulted occurrence count.
func (s JointSpec) weight() float64 {
	// NaN-proof form: NaN (like zero and negatives) defaults to 1 instead
	// of poisoning every weighted total.
	if !(s.Weight > 0) {
		return 1
	}
	return s.Weight
}

// options projects the run options onto one reduction.
func (s JointSpec) options(opts Options) Options {
	ropts := opts
	ropts.Collapse = s.Collapse
	ropts.Algos = s.Algos
	if s.MaxProgramSize > 0 {
		ropts.MaxProgramSize = s.MaxProgramSize
	}
	return ropts
}

// JointCandidate is the joint outcome for one placement: the best
// program per reduction and the weighted total.
type JointCandidate struct {
	MatrixIdx    int
	Matrix       *placement.Matrix
	PerReduction []*Candidate
	Costs        []float64
	Total        float64
	// Measured mirrors Costs with emulated seconds — Measured[i] is
	// weight_i × the emulated time of PerReduction[i] — and MeasuredTotal
	// their sum, filled by the re-rank stage of a measured-in-the-loop
	// run (Options.Rerank); nil/0 in purely analytic runs.
	Measured      []float64
	MeasuredTotal float64
}

// jointLess orders joint candidates by total, breaking ties by placement
// enumeration order (matching the serial stable sort).
func jointLess(a, b *JointCandidate) bool {
	//p2:nan-ok totals are weighted sums of never-NaN predictions (finite or +Inf)
	if a.Total != b.Total {
		return a.Total < b.Total
	}
	return a.MatrixIdx < b.MatrixIdx
}

// ErrNoPrograms reports that a reduction admits no valid program under a
// placement, mirroring the serial path's failure.
type ErrNoPrograms struct {
	ReduceAxes []int
	Matrix     *placement.Matrix
}

// Error formats the failure with its reduction axes and placement.
func (e *ErrNoPrograms) Error() string {
	return fmt.Sprintf("plan: no valid programs for reduction axes %v on matrix %v", e.ReduceAxes, e.Matrix)
}

// bestForReduction returns the Less-minimal candidate of one reduction
// under one placement without materializing the rest. Scoring a program
// aborts — mid-lowering — as soon as its partial cost reaches the
// incumbent best's total: the abandoned program's final cost can only be
// ≥ the partial, and at equality it still loses the (MatrixIdx, ProgIdx)
// tie-break to the earlier incumbent, so the argmin is exact. This cut
// needs no threshold and is always on.
func (p *Planner) bestForReduction(ctx context.Context, ws *workerState, mi int, m *placement.Matrix, h *hierarchy.Hierarchy, spec JointSpec, opts Options, rc *runCounters) (*Candidate, error) {
	res, hit := p.synthesize(h, opts.MaxProgramSize)
	if hit {
		rc.memoHits.Add(1)
	} else {
		rc.synthRuns.Add(1)
	}
	ms := newMatrixScorer(ws, spec.Model, opts)
	var best *Candidate
	scored := 0
	for pi, prog := range res.Programs {
		if err := ctx.Err(); err != nil {
			rc.scored.Add(int64(scored))
			return nil, err
		}
		c, err := ms.scoreProgram(mi, pi, m, h, prog, func(partial float64) bool {
			return best != nil && partial >= best.Predicted
		})
		if err != nil {
			return nil, err
		}
		if c == nil {
			rc.prunedPrograms.Add(1)
			continue
		}
		scored++
		if best == nil || Less(c, best) {
			best = c
		}
	}
	rc.scored.Add(int64(scored))
	if best == nil && len(res.Programs) > 0 {
		// Unreachable: the first program is never pruned (no incumbent).
		return nil, &ErrNoPrograms{ReduceAxes: spec.ReduceAxes, Matrix: m}
	}
	return best, nil
}

// RunJoint scores every placement against all reductions jointly,
// fanning placements out over the worker pool. Synthesis is memoized
// across both placements and reductions; with TopK set, placements whose
// summed per-reduction lower bounds exceed the shared total threshold are
// skipped before any synthesis. The result is sorted by (Total,
// MatrixIdx) and truncated to TopK placements when set.
//
// With Options.Rerank set, the kept placements' per-reduction winners are
// measured on the emulator and the placements re-sorted by summed
// weighted measured time (rerank.go); RerankAll disables the placement
// top-K during the analytic stage and truncates after the measured sort.
func (p *Planner) RunJoint(matrices []*placement.Matrix, reds []JointSpec, opts Options) ([]*JointCandidate, Stats, error) {
	return p.RunJointCtx(context.Background(), matrices, reds, opts) //p2:ctx-ok documented no-deadline compatibility shim wrapping RunJointCtx
}

// RunJointCtx is RunJoint under a context, with the same anytime contract
// as RunStreamCtx: an uncancelled context is byte-identical to RunJoint;
// on cancellation the merged per-worker heaps of *completed* placements
// (a joint candidate only exists once every reduction scored) are
// returned sorted and truncated alongside ctx.Err(); cancellation during
// the measured re-rank zeroes the partially-filled Measured fields and
// returns the analytic placement order.
func (p *Planner) RunJointCtx(ctx context.Context, matrices []*placement.Matrix, reds []JointSpec, opts Options) ([]*JointCandidate, Stats, error) {
	mode, finalTopK := opts.Rerank, opts.TopK
	if mode == RerankAll {
		opts.TopK = 0 // measured rank-all needs every placement materialized
	}
	var rc runCounters
	thr := newThreshold()
	prune := opts.TopK > 0
	perWorker, produced, err := fanOut(ctx, opts, sliceStream(matrices), func(ws *workerState, mi int, m *placement.Matrix, emit func(*JointCandidate)) error {
		hs := make([]*hierarchy.Hierarchy, len(reds))
		bounds := make([]float64, len(reds))
		for ri, red := range reds {
			ropts := red.options(opts)
			h, err := hierarchy.Build(hierarchy.KindReductionAxes, m, red.ReduceAxes, hierarchy.Options{Collapse: ropts.Collapse})
			if err != nil {
				return err
			}
			hs[ri] = h
			if prune {
				bounds[ri] = red.weight() * ws.bounds.placementBound(red.Model.Sys, h, red.Model.Bytes)
			}
		}
		if prune {
			bound := 0.0
			for _, b := range bounds {
				bound += b
			}
			if bound > thr.load() {
				rc.prunedPlacements.Add(1)
				return nil
			}
		}
		jc := &JointCandidate{MatrixIdx: mi, Matrix: m}
		for ri, red := range reds {
			best, err := p.bestForReduction(ctx, ws, mi, m, hs[ri], red, red.options(opts), &rc)
			if err != nil {
				return err
			}
			if best == nil {
				return &ErrNoPrograms{ReduceAxes: red.ReduceAxes, Matrix: m}
			}
			w := red.weight()
			jc.PerReduction = append(jc.PerReduction, best)
			jc.Costs = append(jc.Costs, w*best.Predicted)
			jc.Total += w * best.Predicted
			if prune && ri+1 < len(reds) {
				// The remaining reductions cost at least their bounds; a
				// placement already provably above the threshold cannot
				// enter the top-K placements.
				rest := 0.0
				for _, b := range bounds[ri+1:] {
					rest += b
				}
				if jc.Total+rest > thr.load() {
					rc.prunedPlacements.Add(1)
					return nil
				}
			}
		}
		emit(jc)
		return nil
	}, jointLess, func(jc *JointCandidate) float64 { return jc.Total }, thr)
	stats := rc.stats(produced, thr)
	if err != nil {
		return nil, stats, err
	}
	if cerr := ctx.Err(); cerr != nil {
		return mergeRanked(perWorker, finalTopK, jointLess), stats, cerr
	}
	jcs := mergeRanked(perWorker, opts.TopK, jointLess)
	if mode != RerankOff {
		rerr := rerankJoint(ctx, jcs, reds, opts, &stats)
		if finalTopK > 0 && len(jcs) > finalTopK {
			jcs = jcs[:finalTopK]
		}
		if rerr != nil {
			return jcs, stats, rerr
		}
	}
	return jcs, stats, nil
}

// errRecorder tracks the lowest-indexed failure of a run. Once any item
// fails, the producer stops streaming new items and workers discard
// in-flight items with a higher index than the recorded failure — items
// with a lower index still run, because one of them could fail and the
// serial path would have reported that earlier error. Items are streamed
// in index order, so every index below the final winner was dispatched
// (and therefore processed) before the run drains: the reported error is
// the lowest-indexed failure at every worker count, with no wasted work
// past it.
type errRecorder struct {
	failed atomic.Bool
	mu     sync.Mutex
	idx    int
	err    error
}

func (r *errRecorder) record(i int, err error) {
	r.mu.Lock()
	if r.err == nil || i < r.idx {
		r.idx, r.err = i, err
	}
	r.mu.Unlock()
	r.failed.Store(true)
}

// discard reports whether item i cannot influence the reported error.
func (r *errRecorder) discard(i int) bool {
	if !r.failed.Load() {
		return false
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.err != nil && i > r.idx
}

func (r *errRecorder) get() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.err
}

// PanicError is a panic recovered inside a planning worker: the crashing
// placement fails its own request with a diagnosable error — carrying the
// worker's stack — instead of unwinding through whatever process shares
// the engine (notably the p2 serve daemon, which maps it to one 500).
type PanicError struct {
	// Index is the enumeration index of the placement being planned.
	Index int
	// Value is the recovered panic value.
	Value any
	// Stack is the worker goroutine's stack captured at recovery.
	Stack []byte
}

// Error formats the panic without the stack (callers wanting the stack
// unwrap the concrete type).
func (e *PanicError) Error() string {
	return fmt.Sprintf("plan: panic while planning placement %d: %v", e.Index, e.Value)
}

// isCtxErr reports whether err is a context cancellation or deadline
// expiry — the errors that mean "the caller gave up", not "the request
// is bad" — possibly wrapped.
func isCtxErr(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}

// fanOut streams placements from the producer through the option-bounded
// worker pool. Each worker folds emitted items into its top-K bounded
// heap the moment they are scored and publishes its full heap's worst
// value to the shared threshold, so pruning tightens mid-placement, not
// just between placements. It returns each worker's kept items
// (unsorted), the number of placements streamed, and — deterministically
// — the lowest-indexed error.
//
// Cancellation stops the producer and makes workers drain the channel
// without planning; context errors bubbling out of produce are *not*
// recorded (they carry no index-determinism obligation — the caller
// re-derives ctx.Err() itself), so the kept heaps survive as the anytime
// result. A panic inside produce is recovered per item into a
// *PanicError and recorded like any other failure, keeping the other
// workers — and the process — alive.
func fanOut[T any](ctx context.Context, opts Options, stream func(func(*placement.Matrix) bool) error,
	produce func(ws *workerState, i int, m *placement.Matrix, emit func(T)) error,
	less func(a, b T) bool, pred func(T) float64, thr *threshold) ([][]T, int, error) {

	workers := opts.workers()
	type item struct {
		idx int
		m   *placement.Matrix
	}
	buf := 2 * workers
	if buf > 256 {
		buf = 256
	}
	ch := make(chan item, buf)
	var rec errRecorder

	runItem := func(ws *workerState, i int, m *placement.Matrix, emit func(T)) (err error) {
		defer func() {
			if r := recover(); r != nil {
				err = &PanicError{Index: i, Value: r, Stack: debug.Stack()}
			}
		}()
		return produce(ws, i, m, emit)
	}

	var mu sync.Mutex
	var perWorker [][]T
	var wg sync.WaitGroup
	worker := func() {
		defer wg.Done()
		ws := &workerState{}
		keep := newTopK(opts.TopK, less)
		emit := func(x T) {
			keep.push(x)
			if opts.TopK > 0 {
				if worst, ok := keep.worst(); ok {
					thr.tighten(pred(worst))
				}
			}
		}
		for it := range ch {
			if rec.discard(it.idx) || ctx.Err() != nil {
				continue
			}
			if err := runItem(ws, it.idx, it.m, emit); err != nil && !isCtxErr(err) {
				rec.record(it.idx, err)
			}
		}
		mu.Lock()
		//p2:order-independent per-worker keeps are merged by a full deterministic sort in mergeRanked
		perWorker = append(perWorker, keep.items())
		mu.Unlock()
	}

	// The producer spawns workers lazily, one per streamed item up to the
	// pool bound, so the goroutine count is min(workers, placements) — an
	// absurd Parallelism costs nothing on a small request, and a
	// single-matrix request uses one worker.
	produced := 0
	var streamErr error
	prodDone := make(chan struct{})
	go func() {
		defer close(prodDone)
		defer close(ch)
		streamErr = stream(func(m *placement.Matrix) bool {
			if rec.failed.Load() || ctx.Err() != nil {
				return false
			}
			if produced < workers {
				wg.Add(1) //p2:lock-ok Add happens before close(prodDone); Wait runs only after <-prodDone, so the count is always ahead of Wait
				go worker()
			}
			ch <- item{produced, m} //p2:ctx-ok workers drain ch to close even after cancellation (the stream callback stops producing via ctx.Err), so this send always completes
			produced++
			return true
		})
	}()

	<-prodDone
	wg.Wait()
	if err := rec.get(); err != nil {
		return nil, produced, err
	}
	if streamErr != nil && !isCtxErr(streamErr) {
		return nil, produced, streamErr
	}
	return perWorker, produced, nil
}

// mergeRanked merges the per-worker keeps into the final ranking.
func mergeRanked[T any](perWorker [][]T, topK int, less func(a, b T) bool) []T {
	var all []T
	for _, cs := range perWorker {
		all = append(all, cs...)
	}
	sort.Slice(all, func(i, j int) bool { return less(all[i], all[j]) })
	if topK > 0 && len(all) > topK {
		all = all[:topK]
	}
	return all
}
