// Package plan is the parallel, memoized planning engine behind p2.Plan
// and p2.PlanJoint. It fans placement matrices out over a bounded worker
// pool, memoizes program synthesis by the canonical hierarchy signature
// (placements inducing the same reduction hierarchy share one synthesis
// run), and optionally keeps only the top-K cheapest candidates per
// worker in a bounded heap instead of materializing the full
// (placement × program) cross-product.
//
// The engine is deterministic: its output is byte-identical to the serial
// reference path (enumerate placements in order, synthesize, rank with a
// stable sort). Candidates are totally ordered by (Predicted, MatrixIdx,
// ProgIdx), which coincides with what a stable sort by Predicted produces
// over the serial append order, so parallel execution — with any worker
// count — and top-K truncation cannot reorder ties.
package plan

import (
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"p2/internal/cost"
	"p2/internal/dsl"
	"p2/internal/hierarchy"
	"p2/internal/lower"
	"p2/internal/placement"
	"p2/internal/synth"
)

// Options tune one planning run.
type Options struct {
	// Parallelism bounds the worker pool. 0 means GOMAXPROCS; 1 runs the
	// matrices sequentially (still memoized).
	Parallelism int
	// TopK, when positive, keeps only the K cheapest candidates. The
	// result is exactly the first K entries of the full ranking.
	TopK int
	// MaxProgramSize limits synthesized program length (0 = synth default).
	MaxProgramSize int
	// Collapse is the hierarchy same-level factor collapsing option.
	Collapse bool
	// Algos, when it has two or more entries, makes scoring search over
	// the set per step: every lowered step independently runs the
	// algorithm minimizing its predicted time (ties go to the earliest
	// entry), and candidates carry the winning assignment in StepAlgos.
	// Empty or single-entry slices pin every step to the model's (resp.
	// the single) algorithm, exactly as before the search existed.
	Algos []cost.Algorithm
}

func (o Options) workers(n int) int {
	w := o.Parallelism
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w > n {
		w = n
	}
	if w < 1 {
		w = 1
	}
	return w
}

// Candidate is one (placement, program) pair with its predicted runtime
// and its provenance in the enumeration order (for deterministic
// tie-breaking).
type Candidate struct {
	MatrixIdx int
	ProgIdx   int
	Matrix    *placement.Matrix
	Program   dsl.Program
	Lowered   *lower.Program
	Predicted float64
	// StepAlgos is the winning per-step algorithm assignment (one entry
	// per lowered step) when Options.Algos enabled the search; nil when
	// the run was pinned to a single algorithm.
	StepAlgos []cost.Algorithm
}

// Less is the total candidate order: predicted time, then placement
// enumeration order, then program enumeration order. It refines the
// serial path's stable sort by Predicted, so ranking by Less reproduces
// the serial ranking exactly.
func Less(a, b *Candidate) bool {
	if a.Predicted != b.Predicted {
		return a.Predicted < b.Predicted
	}
	if a.MatrixIdx != b.MatrixIdx {
		return a.MatrixIdx < b.MatrixIdx
	}
	return a.ProgIdx < b.ProgIdx
}

// Stats reports how much work a run performed and how much the signature
// memo saved.
type Stats struct {
	// Placements is the number of matrices planned.
	Placements int
	// SynthRuns counts actual synthesis executions.
	SynthRuns int
	// MemoHits counts placements served from the signature memo.
	MemoHits int
	// Candidates counts (placement, program) pairs scored — the planning
	// effort, before any top-K truncation.
	Candidates int
}

// Planner runs planning requests, sharing a synthesis memo across the
// placements and reductions of each run. Reusing one Planner also shares
// the memo across successive runs (p2.Plan constructs a fresh Planner
// per call, so its memo spans exactly one request; the memo is unbounded,
// so long-lived reuse trades memory for synthesis time). A Planner is
// safe for concurrent use.
type Planner struct {
	mu   sync.Mutex
	memo map[memoKey]*memoEntry
}

// runCounters tallies one run's memo effectiveness and scoring effort.
type runCounters struct {
	synthRuns atomic.Int64
	memoHits  atomic.Int64
	scored    atomic.Int64
}

type memoKey struct {
	sig     string
	maxSize int
}

type memoEntry struct {
	once sync.Once
	res  *synth.Result
}

// New returns an empty Planner.
func New() *Planner {
	return &Planner{memo: map[memoKey]*memoEntry{}}
}

// synthesize returns the program set for h, running synthesis at most
// once per (hierarchy signature, maxSize) and serving repeats from the
// memo, reporting whether the result came from the memo. Concurrent
// callers with the same signature block on the single synthesis instead
// of duplicating it.
func (p *Planner) synthesize(h *hierarchy.Hierarchy, maxSize int) (*synth.Result, bool) {
	key := memoKey{sig: h.Signature(), maxSize: maxSize}
	p.mu.Lock()
	ent, hit := p.memo[key]
	if !hit {
		ent = &memoEntry{}
		p.memo[key] = ent
	}
	p.mu.Unlock()
	ent.once.Do(func() {
		ent.res = synth.Synthesize(h, synth.Options{MaxSize: maxSize})
	})
	return ent.res, hit
}

// stepKey identifies a lowered step up to cost equivalence within one
// placement: the instruction determines Op and the device groups, Rows
// the payload fraction, and algo the schedule expansion. RowsOut and K
// are not read by StepTime (K is constant per hierarchy anyway).
type stepKey struct {
	in   dsl.Instruction
	rows int
	algo cost.Algorithm
}

// stepChoice is one memoized per-step search outcome: the winning
// algorithm and its predicted time.
type stepChoice struct {
	algo cost.Algorithm
	time float64
}

// PlanMatrix synthesizes, lowers and scores every program for one
// placement. Programs appear in synthesis order (size, then lexicographic
// — the same order the serial path appends them in).
//
// Scoring memoizes step costs by (instruction, rows, algo): programs
// sharing a prefix — or merely an instruction at the same payload
// fraction — share the StepTime evaluations, which dominate serial
// planning at scale. With Options.Algos enabling the per-step search, the
// per-step choice additionally shares the scan over the algorithm set.
// The per-program sum runs over the same values in the same order as
// cost.Model.BestStepAlgos (resp. ProgramTime), so predictions are
// bit-identical to the serial brute-force path.
func (p *Planner) PlanMatrix(mi int, m *placement.Matrix, reduceAxes []int, model *cost.Model, opts Options) ([]*Candidate, error) {
	return p.planMatrix(mi, m, reduceAxes, model, opts, &runCounters{})
}

func (p *Planner) planMatrix(mi int, m *placement.Matrix, reduceAxes []int, model *cost.Model, opts Options, rc *runCounters) ([]*Candidate, error) {
	h, err := hierarchy.Build(hierarchy.KindReductionAxes, m, reduceAxes, hierarchy.Options{Collapse: opts.Collapse})
	if err != nil {
		return nil, err
	}
	res, hit := p.synthesize(h, opts.MaxProgramSize)
	if hit {
		rc.memoHits.Add(1)
	} else {
		rc.synthRuns.Add(1)
	}
	fixedAlgo := model.Algo
	if len(opts.Algos) == 1 {
		fixedAlgo = opts.Algos[0]
	}
	search := len(opts.Algos) > 1
	stepCost := map[stepKey]float64{}
	costOf := func(in dsl.Instruction, st lower.Step, a cost.Algorithm) float64 {
		key := stepKey{in: in, rows: st.Rows, algo: a}
		c, ok := stepCost[key]
		if !ok {
			c = model.StepTimeAlgo(st, a)
			stepCost[key] = c
		}
		return c
	}
	// choices memoizes the per-step search winner so programs sharing an
	// instruction at the same payload fraction also share the argmin scan.
	choices := map[stepKey]stepChoice{}
	out := make([]*Candidate, 0, len(res.Programs))
	for pi, prog := range res.Programs {
		lp, err := lower.Lower(prog, h)
		if err != nil {
			return nil, err
		}
		predicted := 0.0
		var stepAlgos []cost.Algorithm
		if search {
			stepAlgos = make([]cost.Algorithm, len(lp.Steps))
		}
		for si, st := range lp.Steps {
			if !search {
				predicted += costOf(prog[si], st, fixedAlgo)
				continue
			}
			ck := stepKey{in: prog[si], rows: st.Rows}
			ch, ok := choices[ck]
			if !ok {
				ch = stepChoice{algo: opts.Algos[0], time: costOf(prog[si], st, opts.Algos[0])}
				for _, a := range opts.Algos[1:] {
					if t := costOf(prog[si], st, a); t < ch.time {
						ch = stepChoice{algo: a, time: t}
					}
				}
				choices[ck] = ch
			}
			stepAlgos[si] = ch.algo
			predicted += ch.time
		}
		out = append(out, &Candidate{
			MatrixIdx: mi,
			ProgIdx:   pi,
			Matrix:    m,
			Program:   prog,
			Lowered:   lp,
			Predicted: predicted,
			StepAlgos: stepAlgos,
		})
	}
	rc.scored.Add(int64(len(out)))
	return out, nil
}

// Run ranks every (matrix, program) candidate for one reduction request,
// fanning the matrices out over the worker pool. The returned slice is
// sorted by Less and truncated to TopK when set.
func (p *Planner) Run(matrices []*placement.Matrix, reduceAxes []int, model *cost.Model, opts Options) ([]*Candidate, Stats, error) {
	var rc runCounters
	perWorker, err := fanOut(opts, len(matrices), func(mi int) ([]*Candidate, error) {
		return p.planMatrix(mi, matrices[mi], reduceAxes, model, opts, &rc)
	}, Less)
	stats := Stats{
		Placements: len(matrices),
		SynthRuns:  int(rc.synthRuns.Load()),
		MemoHits:   int(rc.memoHits.Load()),
		Candidates: int(rc.scored.Load()),
	}
	if err != nil {
		return nil, stats, err
	}
	return mergeRanked(perWorker, opts.TopK, Less), stats, nil
}

// JointSpec describes one recurring reduction of a joint request.
type JointSpec struct {
	// ReduceAxes are the axis indices reduced over.
	ReduceAxes []int
	// Model is the per-reduction cost model (its Algo and Bytes may
	// differ between reductions of one joint request).
	Model *cost.Model
	// Weight scales the reduction's predicted time in the joint total
	// (the per-step occurrence count; <= 0 means 1).
	Weight float64
	// Collapse and MaxProgramSize mirror Options per reduction.
	Collapse       bool
	MaxProgramSize int
	// Algos enables the per-step algorithm search for this reduction
	// (see Options.Algos); each reduction of a joint request may search
	// its own set.
	Algos []cost.Algorithm
}

// JointCandidate is the joint outcome for one placement: the best
// program per reduction and the weighted total.
type JointCandidate struct {
	MatrixIdx    int
	Matrix       *placement.Matrix
	PerReduction []*Candidate
	Costs        []float64
	Total        float64
}

// jointLess orders joint candidates by total, breaking ties by placement
// enumeration order (matching the serial stable sort).
func jointLess(a, b *JointCandidate) bool {
	if a.Total != b.Total {
		return a.Total < b.Total
	}
	return a.MatrixIdx < b.MatrixIdx
}

// ErrNoPrograms reports that a reduction admits no valid program under a
// placement, mirroring the serial path's failure.
type ErrNoPrograms struct {
	ReduceAxes []int
	Matrix     *placement.Matrix
}

func (e *ErrNoPrograms) Error() string {
	return fmt.Sprintf("plan: no valid programs for reduction axes %v on matrix %v", e.ReduceAxes, e.Matrix)
}

// RunJoint scores every placement against all reductions jointly,
// fanning placements out over the worker pool. Synthesis is memoized
// across both placements and reductions. The result is sorted by
// (Total, MatrixIdx) and truncated to TopK placements when set.
func (p *Planner) RunJoint(matrices []*placement.Matrix, reds []JointSpec, opts Options) ([]*JointCandidate, Stats, error) {
	var rc runCounters
	perWorker, err := fanOut(opts, len(matrices), func(mi int) ([]*JointCandidate, error) {
		m := matrices[mi]
		jc := &JointCandidate{MatrixIdx: mi, Matrix: m}
		for _, red := range reds {
			ropts := opts
			ropts.Collapse = red.Collapse
			ropts.Algos = red.Algos
			if red.MaxProgramSize > 0 {
				ropts.MaxProgramSize = red.MaxProgramSize
			}
			cands, err := p.planMatrix(mi, m, red.ReduceAxes, red.Model, ropts, &rc)
			if err != nil {
				return nil, err
			}
			if len(cands) == 0 {
				return nil, &ErrNoPrograms{ReduceAxes: red.ReduceAxes, Matrix: m}
			}
			best := cands[0]
			for _, c := range cands[1:] {
				if Less(c, best) {
					best = c
				}
			}
			w := red.Weight
			if w <= 0 {
				w = 1
			}
			jc.PerReduction = append(jc.PerReduction, best)
			jc.Costs = append(jc.Costs, w*best.Predicted)
			jc.Total += w * best.Predicted
		}
		return []*JointCandidate{jc}, nil
	}, jointLess)
	stats := Stats{
		Placements: len(matrices),
		SynthRuns:  int(rc.synthRuns.Load()),
		MemoHits:   int(rc.memoHits.Load()),
		Candidates: int(rc.scored.Load()),
	}
	if err != nil {
		return nil, stats, err
	}
	return mergeRanked(perWorker, opts.TopK, jointLess), stats, nil
}

// fanOut runs produce(0..n-1) over the option-bounded worker pool, each
// worker folding its results into a top-K bounded heap. It returns each
// worker's kept items (unsorted) and, deterministically, the error of
// the lowest-indexed failing item: every item is produced even after a
// failure (errors are configuration mistakes, not a hot path, so the
// wasted work does not matter and the serial path's error is reproduced
// at every worker count).
func fanOut[T any](opts Options, n int, produce func(i int) ([]T, error), less func(a, b T) bool) ([][]T, error) {
	workers := opts.workers(n)
	perWorker := make([][]T, workers)
	errs := make([]error, n)
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			keep := newTopK(opts.TopK, less)
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					break
				}
				items, err := produce(i)
				if err != nil {
					errs[i] = err
					continue
				}
				for _, it := range items {
					keep.push(it)
				}
			}
			perWorker[w] = keep.items()
		}(w)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return perWorker, nil
}

// mergeRanked merges the per-worker keeps into the final ranking.
func mergeRanked[T any](perWorker [][]T, topK int, less func(a, b T) bool) []T {
	var all []T
	for _, cs := range perWorker {
		all = append(all, cs...)
	}
	sort.Slice(all, func(i, j int) bool { return less(all[i], all[j]) })
	if topK > 0 && len(all) > topK {
		all = all[:topK]
	}
	return all
}
