package plan

// topK keeps the k smallest items under less. With k <= 0 it keeps
// everything. Internally it is a max-heap of the kept items (worst kept
// at the root), so each push against a full heap is O(log k) and the
// full cross-product is never materialized.
type topK[T any] struct {
	k    int
	less func(a, b T) bool
	heap []T
}

func newTopK[T any](k int, less func(a, b T) bool) *topK[T] {
	return &topK[T]{k: k, less: less}
}

func (t *topK[T]) push(x T) {
	if t.k <= 0 {
		t.heap = append(t.heap, x)
		return
	}
	if len(t.heap) < t.k {
		t.heap = append(t.heap, x)
		t.up(len(t.heap) - 1)
		return
	}
	// Full: replace the worst kept item if x beats it.
	if t.less(x, t.heap[0]) {
		t.heap[0] = x
		t.down(0)
	}
}

// items returns the kept items in unspecified order.
func (t *topK[T]) items() []T { return t.heap }

// worst returns the worst kept item, but only once the heap holds its full
// k items — before that, the worst kept value says nothing about the k-th
// best overall.
func (t *topK[T]) worst() (T, bool) {
	if t.k <= 0 || len(t.heap) < t.k {
		var zero T
		return zero, false
	}
	return t.heap[0], true
}

// worse is the max-heap order: a sinks below b when a ranks after b.
func (t *topK[T]) worse(a, b T) bool { return t.less(b, a) }

func (t *topK[T]) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !t.worse(t.heap[i], t.heap[parent]) {
			return
		}
		t.heap[i], t.heap[parent] = t.heap[parent], t.heap[i]
		i = parent
	}
}

func (t *topK[T]) down(i int) {
	n := len(t.heap)
	for {
		worst := i
		if l := 2*i + 1; l < n && t.worse(t.heap[l], t.heap[worst]) {
			worst = l
		}
		if r := 2*i + 2; r < n && t.worse(t.heap[r], t.heap[worst]) {
			worst = r
		}
		if worst == i {
			return
		}
		t.heap[i], t.heap[worst] = t.heap[worst], t.heap[i]
		i = worst
	}
}
