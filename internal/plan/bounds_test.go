package plan

import (
	"testing"

	"p2/internal/cost"
	"p2/internal/hierarchy"
	"p2/internal/lower"
	"p2/internal/placement"
	"p2/internal/synth"
	"p2/internal/topology"
)

// TestPlacementBoundAdmissible is the property the pruning correctness
// proof rests on: for every placement, the lower bound must never exceed
// the true predicted cost of ANY valid program under ANY algorithm in the
// extended set. A violation could silently evict a legitimate top-K
// candidate.
func TestPlacementBoundAdmissible(t *testing.T) {
	cases := []struct {
		sys  *topology.System
		axes []int
		red  []int
	}{
		{topology.Fig2aSystem(), []int{4, 4}, []int{0}},
		{topology.Fig2aSystem(), []int{2, 2, 4}, []int{0, 2}},
		{topology.A100System(2), []int{4, 8}, []int{0}},
		{topology.A100System(4), []int{16, 2, 2}, []int{0, 2}},
		{topology.V100System(2), []int{4, 4}, []int{1}},
		{topology.SuperPodSystem(2, 4), []int{8, 8}, []int{0}},
		// Non-power-of-two group sizes: HalvingDoubling now runs the
		// residual fold/unfold schedule here instead of falling back to
		// ring, and the bound must stay below it (the fold pre-round and
		// unfold post-round move 2·Bytes per split boundary — exactly the
		// flow the bound charges, see DESIGN.md §6.1).
		{topology.A100System(3), []int{3, 16}, []int{0}},
		{topology.SuperPodSystem(3, 2), []int{6, 8}, []int{0}},
		{topology.SuperPodSystem(3, 2), []int{4, 2, 6}, []int{0, 2}},
	}
	for _, tc := range cases {
		matrices, err := placement.Enumerate(tc.sys.Hierarchy(), tc.axes)
		if err != nil {
			t.Fatal(err)
		}
		bytes := cost.DefaultPayload(tc.sys)
		for _, m := range matrices {
			h, err := hierarchy.Build(hierarchy.KindReductionAxes, m, tc.red,
				hierarchy.Options{Collapse: len(tc.red) > 1})
			if err != nil {
				t.Fatal(err)
			}
			bound := placementBound(tc.sys, h, bytes)
			if bound < 0 {
				t.Fatalf("%s %v: negative bound %v", tc.sys.Name, m, bound)
			}
			for _, prog := range synth.Synthesize(h, synth.Options{}).Programs {
				lp, err := lower.Lower(prog, h)
				if err != nil {
					t.Fatal(err)
				}
				for _, algo := range cost.ExtendedAlgorithms {
					model := &cost.Model{Sys: tc.sys, Algo: algo, Bytes: bytes}
					if predicted := model.ProgramTime(lp); bound > predicted {
						t.Errorf("%s matrix %v program %v algo %v: bound %v exceeds predicted %v",
							tc.sys.Name, m, prog, algo, bound, predicted)
					}
				}
			}
		}
	}
}

// TestPlacementBoundTightOnHierarchicalStrategy pins the bound's teeth:
// on the canonical two-level A100 placement the bound must reach a good
// fraction of the best program's cost — a vacuous bound (say, 0) would
// pass admissibility while pruning nothing.
func TestPlacementBoundTightOnHierarchicalStrategy(t *testing.T) {
	sys := topology.A100System(2)
	matrices, err := placement.Enumerate(sys.Hierarchy(), []int{4, 8})
	if err != nil {
		t.Fatal(err)
	}
	bytes := cost.DefaultPayload(sys)
	model := &cost.Model{Sys: sys, Algo: cost.Ring, Bytes: bytes}
	for _, m := range matrices {
		h, err := hierarchy.Build(hierarchy.KindReductionAxes, m, []int{0}, hierarchy.Options{})
		if err != nil {
			t.Fatal(err)
		}
		bound := placementBound(sys, h, bytes)
		best := 0.0
		for _, prog := range synth.Synthesize(h, synth.Options{}).Programs {
			lp, err := lower.Lower(prog, h)
			if err != nil {
				t.Fatal(err)
			}
			if pt := model.ProgramTime(lp); best == 0 || pt < best {
				best = pt
			}
		}
		if bound < best/4 {
			t.Errorf("matrix %v: bound %v is <25%% of best program %v — too loose to prune", m, bound, best)
		}
	}
}

// TestMemoCap: a capped planner must return identical results while
// keeping the memo bounded (extra signatures synthesize uncached).
func TestMemoCap(t *testing.T) {
	sys := topology.SuperPodSystem(2, 4)
	matrices, err := placement.Enumerate(sys.Hierarchy(), []int{8, 8})
	if err != nil {
		t.Fatal(err)
	}
	model := &cost.Model{Sys: sys, Algo: cost.Ring, Bytes: cost.DefaultPayload(sys)}
	free, freeStats, err := New().Run(matrices, []int{0}, model, Options{Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	capped := New(WithMemoCap(1))
	got, cappedStats, err := capped.Run(matrices, []int{0}, model, Options{Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	if rankString(got) != rankString(free) {
		t.Error("memo cap changed the ranking")
	}
	if n := len(capped.memo); n > 1 {
		t.Errorf("memo holds %d entries, cap was 1", n)
	}
	if cappedStats.SynthRuns <= freeStats.SynthRuns {
		t.Errorf("capped planner synthesized %d times, uncapped %d — cap had no effect",
			cappedStats.SynthRuns, freeStats.SynthRuns)
	}
}
