package plan

import (
	"math/rand"
	"testing"

	"p2/internal/cost"
	"p2/internal/hierarchy"
	"p2/internal/lower"
	"p2/internal/placement"
	"p2/internal/synth"
	"p2/internal/topology"
)

// TestPlacementBoundAdmissible is the property the pruning correctness
// proof rests on: for every placement, the lower bound must never exceed
// the true predicted cost of ANY valid program under ANY algorithm in the
// extended set. A violation could silently evict a legitimate top-K
// candidate.
func TestPlacementBoundAdmissible(t *testing.T) {
	cases := []struct {
		sys  *topology.System
		axes []int
		red  []int
	}{
		{topology.Fig2aSystem(), []int{4, 4}, []int{0}},
		{topology.Fig2aSystem(), []int{2, 2, 4}, []int{0, 2}},
		{topology.A100System(2), []int{4, 8}, []int{0}},
		{topology.A100System(4), []int{16, 2, 2}, []int{0, 2}},
		{topology.V100System(2), []int{4, 4}, []int{1}},
		{topology.SuperPodSystem(2, 4), []int{8, 8}, []int{0}},
		// Non-power-of-two group sizes: HalvingDoubling now runs the
		// residual fold/unfold schedule here instead of falling back to
		// ring, and the bound must stay below it (the fold pre-round and
		// unfold post-round move 2·Bytes per split boundary — exactly the
		// flow the bound charges, see DESIGN.md §6.1).
		{topology.A100System(3), []int{3, 16}, []int{0}},
		{topology.SuperPodSystem(3, 2), []int{6, 8}, []int{0}},
		{topology.SuperPodSystem(3, 2), []int{4, 2, 6}, []int{0, 2}},
		// Override-carrying systems: the per-entity flow argument must keep
		// the bound admissible when links are throttled, slowed, lossy or
		// down (down ⇒ bound +Inf and predicted +Inf; Inf > Inf is false).
		{topology.A100System(2).MustWithOverrides(
			topology.Throttle(1, 3, 10)), []int{4, 8}, []int{0}},
		{topology.SuperPodSystem(2, 4).MustWithOverrides(
			topology.Down(1, 5), topology.Slow(0, 0, 8)), []int{8, 8}, []int{0}},
		{topology.Fig2aSystem().MustWithOverrides(
			topology.Lossy(3, 7, 0.5), topology.Throttle(0, 0, 4),
			topology.Slow(2, 1, 16)), []int{4, 4}, []int{0}},
	}
	for _, tc := range cases {
		matrices, err := placement.Enumerate(tc.sys.Hierarchy(), tc.axes)
		if err != nil {
			t.Fatal(err)
		}
		bytes := cost.DefaultPayload(tc.sys)
		for _, m := range matrices {
			h, err := hierarchy.Build(hierarchy.KindReductionAxes, m, tc.red,
				hierarchy.Options{Collapse: len(tc.red) > 1})
			if err != nil {
				t.Fatal(err)
			}
			bound := placementBound(tc.sys, h, bytes)
			if bound < 0 {
				t.Fatalf("%s %v: negative bound %v", tc.sys.Name, m, bound)
			}
			for _, prog := range synth.Synthesize(h, synth.Options{}).Programs {
				lp, err := lower.Lower(prog, h)
				if err != nil {
					t.Fatal(err)
				}
				for _, algo := range cost.ExtendedAlgorithms {
					model := &cost.Model{Sys: tc.sys, Algo: algo, Bytes: bytes}
					if predicted := model.ProgramTime(lp); bound > predicted {
						t.Errorf("%s matrix %v program %v algo %v: bound %v exceeds predicted %v",
							tc.sys.Name, m, prog, algo, bound, predicted)
					}
				}
			}
		}
	}
}

// TestPlacementBoundAdmissibleRandomOverrides fuzzes the admissibility
// property over randomized override sets: arbitrary throttle/slow/loss
// combinations (including full outages) on arbitrary links must never push
// the bound above any program's predicted cost. Seeded for reproducibility.
func TestPlacementBoundAdmissibleRandomOverrides(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	base := topology.SuperPodSystem(2, 2) // [pod 2][node 4][gpu 8]: 3 levels
	axes, red := []int{4, 8}, []int{0}
	for trial := 0; trial < 20; trial++ {
		var ovs []topology.LinkOverride
		for n := 1 + rng.Intn(4); n > 0; n-- {
			l := rng.Intn(base.NumLevels())
			o := topology.LinkOverride{
				Level:          l,
				Entity:         rng.Intn(base.EntitiesAt(l)),
				BandwidthScale: 1,
				LatencyScale:   1,
			}
			switch rng.Intn(4) {
			case 0:
				o.BandwidthScale = 0 // down
			case 1:
				o.BandwidthScale = 0.05 + 0.95*rng.Float64()
			case 2:
				o.LatencyScale = 1 + 31*rng.Float64()
			case 3:
				o.LossFrac = 0.9 * rng.Float64()
			}
			ovs = append(ovs, o)
		}
		sys, err := base.WithOverrides(ovs...)
		if err != nil {
			t.Fatalf("trial %d overrides %+v: %v", trial, ovs, err)
		}
		matrices, err := placement.Enumerate(sys.Hierarchy(), axes)
		if err != nil {
			t.Fatal(err)
		}
		bytes := cost.DefaultPayload(sys)
		for _, m := range matrices {
			h, err := hierarchy.Build(hierarchy.KindReductionAxes, m, red, hierarchy.Options{})
			if err != nil {
				t.Fatal(err)
			}
			bound := placementBound(sys, h, bytes)
			for _, prog := range synth.Synthesize(h, synth.Options{}).Programs {
				lp, err := lower.Lower(prog, h)
				if err != nil {
					t.Fatal(err)
				}
				for _, algo := range cost.ExtendedAlgorithms {
					model := &cost.Model{Sys: sys, Algo: algo, Bytes: bytes}
					if predicted := model.ProgramTime(lp); bound > predicted {
						t.Errorf("trial %d overrides %+v matrix %v program %v algo %v: bound %v exceeds predicted %v",
							trial, ovs, m, prog, algo, bound, predicted)
					}
				}
			}
		}
	}
}

// TestPlacementBoundTightOnHierarchicalStrategy pins the bound's teeth:
// on the canonical two-level A100 placement the bound must reach a good
// fraction of the best program's cost — a vacuous bound (say, 0) would
// pass admissibility while pruning nothing.
func TestPlacementBoundTightOnHierarchicalStrategy(t *testing.T) {
	sys := topology.A100System(2)
	matrices, err := placement.Enumerate(sys.Hierarchy(), []int{4, 8})
	if err != nil {
		t.Fatal(err)
	}
	bytes := cost.DefaultPayload(sys)
	model := &cost.Model{Sys: sys, Algo: cost.Ring, Bytes: bytes}
	for _, m := range matrices {
		h, err := hierarchy.Build(hierarchy.KindReductionAxes, m, []int{0}, hierarchy.Options{})
		if err != nil {
			t.Fatal(err)
		}
		bound := placementBound(sys, h, bytes)
		best := 0.0
		for _, prog := range synth.Synthesize(h, synth.Options{}).Programs {
			lp, err := lower.Lower(prog, h)
			if err != nil {
				t.Fatal(err)
			}
			if pt := model.ProgramTime(lp); best == 0 || pt < best {
				best = pt
			}
		}
		if bound < best/4 {
			t.Errorf("matrix %v: bound %v is <25%% of best program %v — too loose to prune", m, bound, best)
		}
	}
}

// TestPlacementBoundZeroAlloc locks the boundScratch refactor: after the
// first call grows the scratch to the system's size, every further bound
// — including on different placements, which exercise different splits
// entries — must allocate nothing and agree exactly with a fresh-scratch
// evaluation (i.e. the zero-on-exit discipline leaves no stale counters).
func TestPlacementBoundZeroAlloc(t *testing.T) {
	sys := topology.SuperPodSystem(2, 2)
	matrices, err := placement.Enumerate(sys.Hierarchy(), []int{4, 8})
	if err != nil {
		t.Fatal(err)
	}
	bytes := cost.DefaultPayload(sys)
	hs := make([]*hierarchy.Hierarchy, len(matrices))
	for i, m := range matrices {
		h, err := hierarchy.Build(hierarchy.KindReductionAxes, m, []int{0}, hierarchy.Options{})
		if err != nil {
			t.Fatal(err)
		}
		hs[i] = h
	}
	want := make([]float64, len(hs))
	for i, h := range hs {
		want[i] = placementBound(sys, h, bytes) // fresh scratch each call
	}
	var bs boundScratch
	bs.placementBound(sys, hs[0], bytes) // warm-up: grow scratch once
	i := 0
	allocs := testing.AllocsPerRun(len(hs)*2, func() {
		j := i % len(hs)
		i++
		if got := bs.placementBound(sys, hs[j], bytes); got != want[j] {
			t.Fatalf("reused scratch bound %v != fresh scratch bound %v (stale state?)", got, want[j])
		}
	})
	if allocs != 0 {
		t.Errorf("placementBound allocates %v times per call on warm scratch, want 0", allocs)
	}
}

// TestMemoCap: a capped planner must return identical results while
// keeping the memo bounded (extra signatures synthesize uncached).
func TestMemoCap(t *testing.T) {
	sys := topology.SuperPodSystem(2, 4)
	matrices, err := placement.Enumerate(sys.Hierarchy(), []int{8, 8})
	if err != nil {
		t.Fatal(err)
	}
	model := &cost.Model{Sys: sys, Algo: cost.Ring, Bytes: cost.DefaultPayload(sys)}
	free, freeStats, err := New().Run(matrices, []int{0}, model, Options{Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	capped := New(WithMemoCap(1))
	got, cappedStats, err := capped.Run(matrices, []int{0}, model, Options{Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	if rankString(got) != rankString(free) {
		t.Error("memo cap changed the ranking")
	}
	if n := len(capped.memo); n > 1 {
		t.Errorf("memo holds %d entries, cap was 1", n)
	}
	if cappedStats.SynthRuns <= freeStats.SynthRuns {
		t.Errorf("capped planner synthesized %d times, uncapped %d — cap had no effect",
			cappedStats.SynthRuns, freeStats.SynthRuns)
	}
}
