// Package xla renders lowered reduction programs as XLA-HLO-style module
// text, mirroring how the paper's implementation emits its synthesized
// strategies as sequences of XLA collective operations (which XLA's GPU
// backend turns into NCCL calls).
//
// The emitted dialect is a faithful, self-contained subset of HLO:
//
//	HloModule p2_reduction
//
//	add {
//	  x = f32[] parameter(0)
//	  y = f32[] parameter(1)
//	  ROOT sum = f32[] add(x, y)
//	}
//
//	ENTRY reduction {
//	  p = f32[4096] parameter(0)
//	  t0 = f32[2048] reduce-scatter(p), replica_groups={{0,1},{2,3}}, to_apply=add
//	  ...
//	}
//
// AllReduce, ReduceScatter and AllGather map onto their native HLO
// collectives; Reduce and Broadcast (which HLO lacks as cross-replica
// primitives) are emitted as custom-calls with the same replica_groups
// attribute. A parser for exactly this subset supports round-trip tests
// and external tooling.
package xla

import (
	"fmt"
	"strconv"
	"strings"

	"p2/internal/collective"
	"p2/internal/lower"
)

// Instruction is one collective of an emitted module.
type Instruction struct {
	// Name is the SSA name, e.g. "t0".
	Name string
	// Op is the collective performed.
	Op collective.Op
	// Elems is the per-replica f32 element count of the result shape.
	Elems int
	// Groups are the replica groups.
	Groups [][]int
	// Operand is the SSA name of the input.
	Operand string
}

// Module is a parsed or emitted reduction module.
type Module struct {
	// Name is the module name.
	Name string
	// ParamElems is the entry parameter's element count.
	ParamElems int
	// Instructions are the collectives in execution order.
	Instructions []Instruction
}

// opName maps collectives to HLO mnemonics.
func opName(op collective.Op) (mnemonic string, custom bool) {
	switch op {
	case collective.AllReduce:
		return "all-reduce", false
	case collective.ReduceScatter:
		return "reduce-scatter", false
	case collective.AllGather:
		return "all-gather", false
	case collective.Reduce:
		return "custom-call", true
	case collective.Broadcast:
		return "custom-call", true
	default:
		panic(fmt.Sprintf("xla: unknown op %v", op))
	}
}

func customTarget(op collective.Op) string {
	switch op {
	case collective.Reduce:
		return "p2.reduce"
	case collective.Broadcast:
		return "p2.broadcast"
	default:
		panic(fmt.Sprintf("xla: op %v has no custom-call target", op))
	}
}

// Emit renders a lowered program over a per-device payload of `elems` f32
// values. elems must be divisible by the program's chunk count.
func Emit(p *lower.Program, elems int) (string, error) {
	if elems <= 0 || elems%p.K != 0 {
		return "", fmt.Errorf("xla: payload of %d elems not divisible into %d chunks", elems, p.K)
	}
	var b strings.Builder
	b.WriteString("HloModule p2_reduction\n\n")
	b.WriteString("add {\n")
	b.WriteString("  x = f32[] parameter(0)\n")
	b.WriteString("  y = f32[] parameter(1)\n")
	b.WriteString("  ROOT sum = f32[] add(x, y)\n")
	b.WriteString("}\n\n")
	b.WriteString("ENTRY reduction {\n")
	fmt.Fprintf(&b, "  p = f32[%d] parameter(0)\n", elems)
	operand := "p"
	chunk := elems / p.K
	for i, st := range p.Steps {
		outElems := st.RowsOut * chunk
		if st.Op == collective.Reduce {
			// Non-roots lose their buffer; shape stays the root's.
			outElems = st.RowsOut * chunk
		}
		name := fmt.Sprintf("t%d", i)
		mnemonic, custom := opName(st.Op)
		fmt.Fprintf(&b, "  %s = f32[%d] %s(%s), replica_groups=%s",
			name, outElems, mnemonic, operand, formatGroups(st.Groups))
		if custom {
			fmt.Fprintf(&b, ", custom_call_target=\"%s\"", customTarget(st.Op))
		} else {
			b.WriteString(", to_apply=add")
		}
		b.WriteByte('\n')
		operand = name
	}
	fmt.Fprintf(&b, "  ROOT out = f32[%d] copy(%s)\n", elems, operand)
	b.WriteString("}\n")
	return b.String(), nil
}

func formatGroups(groups [][]int) string {
	var b strings.Builder
	b.WriteByte('{')
	for gi, g := range groups {
		if gi > 0 {
			b.WriteByte(',')
		}
		b.WriteByte('{')
		for i, d := range g {
			if i > 0 {
				b.WriteByte(',')
			}
			b.WriteString(strconv.Itoa(d))
		}
		b.WriteByte('}')
	}
	b.WriteByte('}')
	return b.String()
}

// Parse reads a module emitted by Emit back into structured form.
func Parse(src string) (*Module, error) {
	mod := &Module{}
	lines := strings.Split(src, "\n")
	inEntry := false
	for ln, raw := range lines {
		line := strings.TrimSpace(raw)
		switch {
		case strings.HasPrefix(line, "HloModule "):
			mod.Name = strings.TrimSpace(strings.TrimPrefix(line, "HloModule"))
		case strings.HasPrefix(line, "ENTRY "):
			inEntry = true
		case line == "}":
			inEntry = false
		case inEntry && strings.Contains(line, "parameter(0)"):
			elems, err := shapeElems(line)
			if err != nil {
				return nil, fmt.Errorf("xla: line %d: %w", ln+1, err)
			}
			mod.ParamElems = elems
		case inEntry && strings.Contains(line, "replica_groups="):
			inst, err := parseCollective(line)
			if err != nil {
				return nil, fmt.Errorf("xla: line %d: %w", ln+1, err)
			}
			mod.Instructions = append(mod.Instructions, inst)
		}
	}
	if mod.Name == "" {
		return nil, fmt.Errorf("xla: missing HloModule header")
	}
	if mod.ParamElems == 0 {
		return nil, fmt.Errorf("xla: missing entry parameter")
	}
	return mod, nil
}

func shapeElems(line string) (int, error) {
	start := strings.Index(line, "f32[")
	if start < 0 {
		return 0, fmt.Errorf("no f32 shape in %q", line)
	}
	rest := line[start+len("f32["):]
	end := strings.IndexByte(rest, ']')
	if end < 0 {
		return 0, fmt.Errorf("unterminated shape in %q", line)
	}
	return strconv.Atoi(rest[:end])
}

func parseCollective(line string) (Instruction, error) {
	var inst Instruction
	eq := strings.Index(line, " = ")
	if eq < 0 {
		return inst, fmt.Errorf("no assignment in %q", line)
	}
	inst.Name = strings.TrimSpace(line[:eq])
	elems, err := shapeElems(line[eq:])
	if err != nil {
		return inst, err
	}
	inst.Elems = elems

	// Mnemonic and operand: "<shape> <mnemonic>(<operand>),".
	body := line[eq+3:]
	shapeEnd := strings.IndexByte(body, ']')
	rest := strings.TrimSpace(body[shapeEnd+1:])
	paren := strings.IndexByte(rest, '(')
	if paren < 0 {
		return inst, fmt.Errorf("no operand in %q", line)
	}
	mnemonic := rest[:paren]
	closeParen := strings.IndexByte(rest, ')')
	if closeParen < 0 {
		return inst, fmt.Errorf("unterminated operand in %q", line)
	}
	inst.Operand = rest[paren+1 : closeParen]

	switch mnemonic {
	case "all-reduce":
		inst.Op = collective.AllReduce
	case "reduce-scatter":
		inst.Op = collective.ReduceScatter
	case "all-gather":
		inst.Op = collective.AllGather
	case "custom-call":
		switch {
		case strings.Contains(line, `custom_call_target="p2.reduce"`):
			inst.Op = collective.Reduce
		case strings.Contains(line, `custom_call_target="p2.broadcast"`):
			inst.Op = collective.Broadcast
		default:
			return inst, fmt.Errorf("unknown custom-call in %q", line)
		}
	default:
		return inst, fmt.Errorf("unknown collective %q", mnemonic)
	}

	groups, err := parseGroups(line)
	if err != nil {
		return inst, err
	}
	inst.Groups = groups
	return inst, nil
}

func parseGroups(line string) ([][]int, error) {
	start := strings.Index(line, "replica_groups={")
	if start < 0 {
		return nil, fmt.Errorf("no replica_groups in %q", line)
	}
	rest := line[start+len("replica_groups={"):]
	var groups [][]int
	for {
		open := strings.IndexByte(rest, '{')
		closing := strings.IndexByte(rest, '}')
		if closing >= 0 && (open < 0 || closing < open) {
			// End of the outer group list.
			break
		}
		if open < 0 {
			return nil, fmt.Errorf("unterminated replica_groups in %q", line)
		}
		end := strings.IndexByte(rest[open:], '}')
		if end < 0 {
			return nil, fmt.Errorf("unterminated group in %q", line)
		}
		var g []int
		for _, f := range strings.Split(rest[open+1:open+end], ",") {
			v, err := strconv.Atoi(strings.TrimSpace(f))
			if err != nil {
				return nil, fmt.Errorf("bad replica id in %q: %w", line, err)
			}
			g = append(g, v)
		}
		groups = append(groups, g)
		rest = rest[open+end+1:]
	}
	if len(groups) == 0 {
		return nil, fmt.Errorf("empty replica_groups in %q", line)
	}
	return groups, nil
}
