package xla

import (
	"reflect"
	"strings"
	"testing"

	"p2/internal/collective"
	"p2/internal/dsl"
	"p2/internal/hierarchy"
	"p2/internal/lower"
	"p2/internal/placement"
	"p2/internal/synth"
)

func loweredRSARAG(t *testing.T) *lower.Program {
	t.Helper()
	m, err := placement.NewMatrix([]int{4, 16}, []int{4, 16}, [][]int{{2, 2}, {2, 8}})
	if err != nil {
		t.Fatal(err)
	}
	h, err := hierarchy.Build(hierarchy.KindReductionAxes, m, []int{0}, hierarchy.Options{})
	if err != nil {
		t.Fatal(err)
	}
	lp, err := lower.Lower(dsl.Program{
		{Slice: 1, Form: dsl.InsideGroup, Op: collective.ReduceScatter},
		{Slice: 1, Form: dsl.Parallel, Arg: 0, Op: collective.AllReduce},
		{Slice: 1, Form: dsl.InsideGroup, Op: collective.AllGather},
	}, h)
	if err != nil {
		t.Fatal(err)
	}
	return lp
}

func TestEmitShape(t *testing.T) {
	lp := loweredRSARAG(t)
	src, err := Emit(lp, 4096)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"HloModule p2_reduction",
		"p = f32[4096] parameter(0)",
		"reduce-scatter(p)",
		"all-reduce(t0)",
		"all-gather(t1)",
		"to_apply=add",
		"ROOT out = f32[4096] copy(t2)",
	} {
		if !strings.Contains(src, want) {
			t.Errorf("emitted module missing %q:\n%s", want, src)
		}
	}
	// ReduceScatter over groups of 2 halves the shape: 4096 → 2048.
	if !strings.Contains(src, "t0 = f32[2048]") {
		t.Errorf("reduce-scatter output shape wrong:\n%s", src)
	}
	if !strings.Contains(src, "t2 = f32[4096]") {
		t.Errorf("all-gather output shape wrong:\n%s", src)
	}
}

func TestEmitCustomCalls(t *testing.T) {
	m, err := placement.NewMatrix([]int{4, 16}, []int{4, 16}, [][]int{{2, 2}, {2, 8}})
	if err != nil {
		t.Fatal(err)
	}
	h, err := hierarchy.Build(hierarchy.KindReductionAxes, m, []int{0}, hierarchy.Options{})
	if err != nil {
		t.Fatal(err)
	}
	lp, err := lower.Lower(dsl.Program{
		{Slice: 1, Form: dsl.InsideGroup, Op: collective.Reduce},
		{Slice: 1, Form: dsl.Master, Arg: 0, Op: collective.AllReduce},
		{Slice: 1, Form: dsl.InsideGroup, Op: collective.Broadcast},
	}, h)
	if err != nil {
		t.Fatal(err)
	}
	src, err := Emit(lp, 1024)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(src, `custom_call_target="p2.reduce"`) {
		t.Error("Reduce custom-call missing")
	}
	if !strings.Contains(src, `custom_call_target="p2.broadcast"`) {
		t.Error("Broadcast custom-call missing")
	}
}

func TestEmitRejectsIndivisiblePayload(t *testing.T) {
	lp := loweredRSARAG(t)
	if _, err := Emit(lp, 3); err == nil {
		t.Error("payload indivisible by chunk count accepted")
	}
	if _, err := Emit(lp, 0); err == nil {
		t.Error("zero payload accepted")
	}
}

func TestRoundTrip(t *testing.T) {
	lp := loweredRSARAG(t)
	src, err := Emit(lp, 4096)
	if err != nil {
		t.Fatal(err)
	}
	mod, err := Parse(src)
	if err != nil {
		t.Fatalf("Parse failed:\n%s\n%v", src, err)
	}
	if mod.Name != "p2_reduction" {
		t.Errorf("module name = %q", mod.Name)
	}
	if mod.ParamElems != 4096 {
		t.Errorf("param elems = %d", mod.ParamElems)
	}
	if len(mod.Instructions) != len(lp.Steps) {
		t.Fatalf("instructions = %d, want %d", len(mod.Instructions), len(lp.Steps))
	}
	for i, inst := range mod.Instructions {
		st := lp.Steps[i]
		if inst.Op != st.Op {
			t.Errorf("step %d: op %v, want %v", i, inst.Op, st.Op)
		}
		if !reflect.DeepEqual(inst.Groups, st.Groups) {
			t.Errorf("step %d: groups differ:\n%v\n%v", i, inst.Groups, st.Groups)
		}
	}
	// Operand chaining.
	if mod.Instructions[0].Operand != "p" {
		t.Errorf("first operand = %q", mod.Instructions[0].Operand)
	}
	if mod.Instructions[1].Operand != "t0" || mod.Instructions[2].Operand != "t1" {
		t.Error("operand chain broken")
	}
}

func TestRoundTripAllSynthesized(t *testing.T) {
	m, err := placement.NewMatrix([]int{4, 16}, []int{4, 16}, [][]int{{2, 2}, {2, 8}})
	if err != nil {
		t.Fatal(err)
	}
	h, err := hierarchy.Build(hierarchy.KindReductionAxes, m, []int{0}, hierarchy.Options{})
	if err != nil {
		t.Fatal(err)
	}
	res := synth.Synthesize(h, synth.Options{MaxSize: 3})
	for _, p := range res.Programs {
		lp, err := lower.Lower(p, h)
		if err != nil {
			t.Fatal(err)
		}
		src, err := Emit(lp, 64)
		if err != nil {
			t.Fatalf("%v: %v", p, err)
		}
		mod, err := Parse(src)
		if err != nil {
			t.Fatalf("%v: parse: %v", p, err)
		}
		if len(mod.Instructions) != len(lp.Steps) {
			t.Errorf("%v: %d instructions for %d steps", p, len(mod.Instructions), len(lp.Steps))
		}
		for i, inst := range mod.Instructions {
			if inst.Op != lp.Steps[i].Op || !reflect.DeepEqual(inst.Groups, lp.Steps[i].Groups) {
				t.Errorf("%v: step %d mismatch", p, i)
			}
		}
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		"",
		"ENTRY reduction {\n}\n",
		"HloModule m\nENTRY e {\n}\n",
		"HloModule m\nENTRY e {\n  p = f32[8] parameter(0)\n  t0 = f32[8] warp(p), replica_groups={{0,1}}\n}\n",
		"HloModule m\nENTRY e {\n  p = f32[8] parameter(0)\n  t0 = f32[8] all-reduce(p), replica_groups={{a}}\n}\n",
	}
	for _, src := range cases {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse accepted %q", src)
		}
	}
}
