package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// fieldindex.go builds the module-wide field-access index behind the
// atomichygiene analyzer: for every struct field declared in the module,
// every place any module package touches it, classified as atomic (the
// field's address passed to a sync/atomic function) or plain, and as read
// or write. The index is keyed by the field's *types.Var — object identity
// holds module-wide because the Loader shares one typechecked package
// cache — so "written with atomic.AddInt64 in serve.go, read plainly in
// stats.go" is a single map lookup.
//
// Fields whose type is itself a typed atomic (sync/atomic.Int64 and
// friends) are excluded: the type system already makes every access
// atomic, which is exactly why the engine prefers them.

// FieldAccess is one source-level touch of a struct field.
type FieldAccess struct {
	Pos token.Pos
	// PkgPath is the accessing (not declaring) package.
	PkgPath string
	// Atomic marks an access through a sync/atomic call (&x.f as the
	// address argument).
	Atomic bool
	// Write marks assignments, ++/--, and address-taking (a taken address
	// may be written through; the index stays conservative).
	Write bool
}

// AccessesFact is published on every module-declared struct field that is
// accessed anywhere in the module: all its accesses, in load order.
type AccessesFact struct {
	Accesses []FieldAccess
}

// AFact marks AccessesFact as a fact.
func (*AccessesFact) AFact() {}

// FieldIndex is the module-wide field-access table.
type FieldIndex struct {
	m *Module
	// fields is every indexed field in first-seen order — the
	// deterministic iteration surface.
	fields []*types.Var
	seen   map[*types.Var]*AccessesFact
}

// Accesses returns every recorded access of field, or nil.
func (ix *FieldIndex) Accesses(field *types.Var) []FieldAccess {
	if f := ix.seen[field]; f != nil {
		return f.Accesses
	}
	return nil
}

// Fields returns every indexed field in deterministic first-seen order.
func (ix *FieldIndex) Fields() []*types.Var { return ix.fields }

// buildFieldIndex walks every module file once per classification pass:
// first the special shapes (atomic call arguments, assignment targets,
// ++/--, address-taking), then every remaining field selector as a plain
// read.
func buildFieldIndex(m *Module) *FieldIndex {
	ix := &FieldIndex{m: m, seen: map[*types.Var]*AccessesFact{}}
	for _, pkg := range m.Packages {
		for _, f := range pkg.Files {
			indexFile(ix, pkg, f)
		}
	}
	for _, field := range ix.fields {
		m.ExportObjectFact(field, ix.seen[field])
	}
	return ix
}

// indexFile records every field access in f.
func indexFile(ix *FieldIndex, pkg *LoadedPackage, f *ast.File) {
	// classified remembers selectors already recorded by a special shape so
	// the generic read pass does not double-count them.
	classified := map[*ast.SelectorExpr]bool{}

	record := func(sel *ast.SelectorExpr, atomic, write bool) {
		field := fieldOf(pkg.TypesInfo, sel)
		if field == nil || isTypedAtomic(field.Type()) || !ix.m.DefinedInModule(field) {
			return
		}
		classified[sel] = true
		fact := ix.seen[field]
		if fact == nil {
			fact = &AccessesFact{}
			ix.seen[field] = fact
			ix.fields = append(ix.fields, field)
		}
		fact.Accesses = append(fact.Accesses, FieldAccess{
			Pos: sel.Sel.Pos(), PkgPath: pkg.Path, Atomic: atomic, Write: write,
		})
	}

	ast.Inspect(f, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if !isAtomicCall(pkg.TypesInfo, n) {
				return true
			}
			for _, arg := range n.Args {
				if sel := addrOfField(arg); sel != nil {
					record(sel, true, true)
				}
			}
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				if sel, ok := ast.Unparen(lhs).(*ast.SelectorExpr); ok {
					record(sel, false, true)
				}
			}
		case *ast.IncDecStmt:
			if sel, ok := ast.Unparen(n.X).(*ast.SelectorExpr); ok {
				record(sel, false, true)
			}
		case *ast.UnaryExpr:
			// A plain &x.f (not under an atomic call, handled above with
			// precedence by the classified set below) may be written through.
			if n.Op == token.AND {
				if sel, ok := ast.Unparen(n.X).(*ast.SelectorExpr); ok && !classified[sel] {
					record(sel, false, true)
				}
			}
		}
		return true
	})

	ast.Inspect(f, func(n ast.Node) bool {
		if sel, ok := n.(*ast.SelectorExpr); ok && !classified[sel] {
			record(sel, false, false)
		}
		return true
	})
}

// fieldOf resolves sel to the struct field it selects, or nil.
func fieldOf(info *types.Info, sel *ast.SelectorExpr) *types.Var {
	s, ok := info.Selections[sel]
	if !ok || s.Kind() != types.FieldVal {
		return nil
	}
	v, _ := s.Obj().(*types.Var)
	return v
}

// addrOfField unwraps &x.f to the field selector, or nil.
func addrOfField(e ast.Expr) *ast.SelectorExpr {
	u, ok := ast.Unparen(e).(*ast.UnaryExpr)
	if !ok || u.Op != token.AND {
		return nil
	}
	sel, _ := ast.Unparen(u.X).(*ast.SelectorExpr)
	return sel
}

// isAtomicCall reports whether call invokes a sync/atomic package function.
func isAtomicCall(info *types.Info, call *ast.CallExpr) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	fn, ok := info.Uses[sel.Sel].(*types.Func)
	return ok && fn.Pkg() != nil && fn.Pkg().Path() == "sync/atomic"
}

// isTypedAtomic reports whether t is one of sync/atomic's typed values
// (atomic.Int64, atomic.Bool, ...), whose every access is atomic by
// construction.
func isTypedAtomic(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "sync/atomic"
}
