package analysis

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// load_test.go covers the loader's error paths: packages that do not
// parse, packages that do not typecheck (strict vs Lenient), missing
// export data, and bad patterns. Each writes a throwaway module so the
// failures are hermetic and deliberate.

// writeModule lays out a one-package module under a temp dir and returns
// its root.
func writeModule(t *testing.T, files map[string]string) string {
	t.Helper()
	root := t.TempDir()
	files["go.mod"] = "module broken\n\ngo 1.24.0\n"
	for name, src := range files {
		path := filepath.Join(root, name)
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return root
}

func TestLoadSyntaxError(t *testing.T) {
	root := writeModule(t, map[string]string{
		"bad/bad.go": "package bad\n\nfunc oops( {\n",
	})
	// go list -e still reports the package; the parse failure must surface
	// from typecheck with the import path in the message.
	_, err := NewLoader(root).Load("./bad")
	if err == nil {
		t.Fatal("Load succeeded on a package that does not parse")
	}
	if !strings.Contains(err.Error(), "broken/bad") {
		t.Errorf("error does not name the failing package: %v", err)
	}
}

func TestLoadTypeErrorStrictVsLenient(t *testing.T) {
	files := map[string]string{
		"bad/bad.go": "package bad\n\nvar x int = \"not an int\"\n",
	}
	t.Run("strict", func(t *testing.T) {
		// go list -export may report the compile failure itself before
		// go/types runs; either surface must fail and name the package.
		_, err := NewLoader(writeModule(t, files)).Load("./bad")
		if err == nil || !strings.Contains(err.Error(), "broken/bad") {
			t.Errorf("strict mode must fail with the package named, got: %v", err)
		}
	})
	t.Run("lenient", func(t *testing.T) {
		l := NewLoader(writeModule(t, files))
		l.Lenient = true
		pkgs, err := l.Load("./bad")
		if err != nil {
			t.Fatalf("lenient mode must tolerate type errors, got: %v", err)
		}
		if len(pkgs) != 1 || len(pkgs[0].TypeErrors) == 0 {
			t.Errorf("lenient load must record the soft type errors, got %+v", pkgs)
		}
	})
}

func TestLoadBrokenImport(t *testing.T) {
	root := writeModule(t, map[string]string{
		"bad/bad.go": "package bad\n\nimport \"no/such/dependency\"\n\nvar _ = dependency.X\n",
	})
	_, err := NewLoader(root).Load("./bad")
	if err == nil {
		t.Fatal("Load succeeded despite an unresolvable import")
	}
}

func TestImportMissingExportData(t *testing.T) {
	// Importing a path go list never materialized export data for must
	// fail cleanly, not panic.
	if _, err := NewLoader("").Import("no/such/dependency"); err == nil {
		t.Error("Import succeeded for a package with no export data")
	}
}

func TestLoadBadPattern(t *testing.T) {
	_, err := NewLoader("").Load("./does/not/exist")
	if err == nil || !strings.Contains(err.Error(), "does/not/exist") {
		t.Errorf("bad pattern must fail with the pattern named, got: %v", err)
	}
}

func TestLoadNoPatterns(t *testing.T) {
	// Zero patterns means `go list` defaults to the current directory; from
	// this package's own dir that loads internal/analysis itself.
	pkgs, err := NewLoader("").Load()
	if err != nil {
		t.Fatalf("Load() with no patterns: %v", err)
	}
	if len(pkgs) != 1 || pkgs[0].Path != "p2/internal/analysis" {
		t.Errorf("expected the current package back, got %+v", pkgs)
	}
}
