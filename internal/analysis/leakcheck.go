package analysis

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
)

// LeakCheck guards the cancellation contract's goroutine side: in the
// cancellable packages, a goroutine spawned by a ctx-holding function that
// blocks on a bare channel send or receive can outlive the request forever
// once the consumer gives up — the classic goroutine leak. Every blocking
// channel operation in such goroutines must sit in a select with a
// ctx.Done() (or other done-channel) arm. Three shapes are recognized as
// safe and skipped:
//
//   - selects containing a Done() receive arm (the blessed shape);
//   - sends on channels created in the same function with a non-zero
//     constant buffer (`errc := make(chan error, 1)`, serve's
//     one-shot result shape — the send cannot block);
//   - range-over-channel drains (they terminate on close, the fan-out
//     barrier pattern).
//
// A send proven to unblock regardless of cancellation (the planner
// producer whose workers always drain to close) carries //p2:ctx-ok <why>.
var LeakCheck = &Analyzer{
	Name: "leakcheck",
	Doc: "in cancellable packages, goroutines spawned by ctx-holding functions must not block on " +
		"bare channel sends/receives — use a select with a ctx.Done() arm; proven-safe sends carry //p2:ctx-ok",
	AppliesTo: inCancellable,
	Run:       runLeakCheck,
}

func runLeakCheck(pass *Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func)
			if !ok || !takesContext(fn.Type()) {
				continue // no ctx in scope: the function owns its lifetime
			}
			buffered := bufferedChans(pass, fd.Body)
			// Local closures later launched via `go name()` count as spawned
			// goroutines too.
			localFns := map[types.Object]*ast.FuncLit{}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				as, ok := n.(*ast.AssignStmt)
				if !ok || len(as.Lhs) != len(as.Rhs) {
					return true
				}
				for i := range as.Lhs {
					id, ok := as.Lhs[i].(*ast.Ident)
					if !ok {
						continue
					}
					lit, ok := as.Rhs[i].(*ast.FuncLit)
					if !ok {
						continue
					}
					if obj := pass.TypesInfo.Defs[id]; obj != nil {
						localFns[obj] = lit
					} else if obj := pass.TypesInfo.Uses[id]; obj != nil {
						localFns[obj] = lit
					}
				}
				return true
			})
			seen := map[*ast.FuncLit]bool{}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				g, ok := n.(*ast.GoStmt)
				if !ok {
					return true
				}
				var lit *ast.FuncLit
				switch fun := ast.Unparen(g.Call.Fun).(type) {
				case *ast.FuncLit:
					lit = fun
				case *ast.Ident:
					lit = localFns[pass.TypesInfo.Uses[fun]]
				}
				if lit != nil && !seen[lit] {
					seen[lit] = true
					checkGoroutineBlocks(pass, lit.Body, buffered)
				}
				return true
			})
		}
	}
	return nil
}

// bufferedChans collects the channel objects body creates with a non-zero
// constant buffer: sends on them cannot block while the buffer lasts, and
// the one-shot `make(chan error, 1)` result shape relies on exactly that.
func bufferedChans(pass *Pass, body *ast.BlockStmt) map[types.Object]bool {
	out := map[types.Object]bool{}
	record := func(lhs, rhs ast.Expr) {
		id, ok := ast.Unparen(lhs).(*ast.Ident)
		if !ok {
			return
		}
		call, ok := ast.Unparen(rhs).(*ast.CallExpr)
		if !ok || len(call.Args) != 2 {
			return
		}
		fun, ok := ast.Unparen(call.Fun).(*ast.Ident)
		if !ok || fun.Name != "make" || !isBuiltin(pass, fun) {
			return
		}
		tv, ok := pass.TypesInfo.Types[call.Args[1]]
		if !ok || tv.Value == nil {
			return
		}
		if v, ok := constant.Int64Val(tv.Value); !ok || v <= 0 {
			return
		}
		if obj := pass.TypesInfo.Defs[id]; obj != nil {
			out[obj] = true
		} else if obj := pass.TypesInfo.Uses[id]; obj != nil {
			out[obj] = true
		}
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if len(n.Lhs) == len(n.Rhs) {
				for i := range n.Lhs {
					record(n.Lhs[i], n.Rhs[i])
				}
			}
		case *ast.ValueSpec:
			if len(n.Names) == len(n.Values) {
				for i := range n.Names {
					record(n.Names[i], n.Values[i])
				}
			}
		}
		return true
	})
	return out
}

// checkGoroutineBlocks walks a goroutine body flagging bare blocking
// channel operations. Subtrees under a select with a Done arm are safe and
// skipped wholesale; range-over-channel bodies are entered (the drain
// terminates, but an inner bare send still blocks).
func checkGoroutineBlocks(pass *Pass, body *ast.BlockStmt, buffered map[types.Object]bool) {
	var walk func(n ast.Node)
	walk = func(n ast.Node) {
		ast.Inspect(n, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.SelectStmt:
				if selectHasDoneArm(n) {
					return false // every arm here can be abandoned via Done
				}
				// A select without a Done arm blocks like its arms do:
				// descend and let the arms be flagged individually.
				return true
			case *ast.SendStmt:
				if buffered[rootObject(pass, n.Chan)] {
					return true
				}
				if pass.Annot.Covers(n.Pos(), MarkerCtxOk) {
					return true
				}
				pass.Reportf(n.Pos(),
					"select { case ch <- v: case <-ctx.Done(): return }, or a sufficiently buffered channel, or annotate //p2:ctx-ok <why>",
					"goroutine blocks on channel send without a ctx.Done() select arm: it leaks when the consumer is cancelled")
			case *ast.UnaryExpr:
				if n.Op != token.ARROW {
					return true
				}
				if isDoneRecv(n) || buffered[rootObject(pass, n.X)] {
					return true
				}
				if pass.Annot.Covers(n.Pos(), MarkerCtxOk) {
					return true
				}
				pass.Reportf(n.Pos(),
					"select { case v := <-ch: case <-ctx.Done(): return }, or annotate //p2:ctx-ok <why>",
					"goroutine blocks on channel receive without a ctx.Done() select arm: it leaks when the sender is cancelled")
			case *ast.RangeStmt:
				if tv, ok := pass.TypesInfo.Types[n.X]; ok {
					if _, isChan := tv.Type.Underlying().(*types.Chan); isChan {
						// The drain itself terminates on close; only check the body.
						walk(n.Body)
						return false
					}
				}
			}
			return true
		})
	}
	walk(body)
}

// selectHasDoneArm reports whether sel contains a receive arm on a Done()
// call — ctx.Done() or any compatible done-channel accessor.
func selectHasDoneArm(sel *ast.SelectStmt) bool {
	for _, clause := range sel.Body.List {
		cc, ok := clause.(*ast.CommClause)
		if !ok || cc.Comm == nil {
			continue
		}
		var recv ast.Expr
		switch s := cc.Comm.(type) {
		case *ast.ExprStmt:
			recv = s.X
		case *ast.AssignStmt:
			if len(s.Rhs) == 1 {
				recv = s.Rhs[0]
			}
		}
		if u, ok := ast.Unparen(recv).(*ast.UnaryExpr); ok && u.Op == token.ARROW && isDoneCall(u.X) {
			return true
		}
	}
	return false
}

// isDoneRecv reports whether u is a direct `<-x.Done()` receive — waiting
// for cancellation is itself cancellation-aware.
func isDoneRecv(u *ast.UnaryExpr) bool {
	return isDoneCall(u.X)
}

// isDoneCall reports whether e is a call of a method named Done.
func isDoneCall(e ast.Expr) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return false
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	return ok && sel.Sel.Name == "Done"
}
