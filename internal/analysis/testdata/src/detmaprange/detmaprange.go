// Package detmaprange is the analysistest fixture for the detmaprange
// analyzer: map iteration order is randomized per run, so a bare range
// over a map inside a determinism-critical package can silently break the
// byte-identical-rankings contract.
package detmaprange

import "sort"

// sumValues ranges a map directly: flagged even though the sum happens to
// be order-independent — the analyzer demands the justification say so.
func sumValues(m map[string]int) int {
	total := 0
	for _, v := range m { // want "range over map map.string.int iterates in randomized order"
		total += v
	}
	return total
}

// sortedKeys is the blessed shape: collect, sort, range the slice.
func sortedKeys(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	//p2:order-independent keys are fully sorted below before any consumption
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// trailingStyle carries the marker on the range line itself.
func trailingStyle(m map[int]bool) int {
	n := 0
	for range m { //p2:order-independent pure count, no per-key effects
		n++
	}
	return n
}

// sliceRange is not a map range and is never flagged.
func sliceRange(xs []int) int {
	total := 0
	for _, v := range xs {
		total += v
	}
	return total
}
