// Package atomichygiene is the fixture for the atomichygiene analyzer: a
// field touched through sync/atomic anywhere must be atomic everywhere.
// The atomic touches live in this file; the plain accesses that must be
// flagged live in report.go — the index that connects them is module-wide,
// so the reasoning is necessarily cross-file.
package atomichygiene

import "sync/atomic"

// gauge mixes atomic writes (here) with plain accesses (report.go).
type gauge struct {
	hits  int64
	level int64
	// name is never touched atomically: plain accesses are the norm.
	name string
	// safe is a typed atomic: immune by construction, never indexed.
	safe atomic.Int64
}

func (g *gauge) bump() {
	atomic.AddInt64(&g.hits, 1)
	atomic.StoreInt64(&g.level, 3)
	g.safe.Add(1)
}

func (g *gauge) loaded() int64 {
	return atomic.LoadInt64(&g.hits)
}
