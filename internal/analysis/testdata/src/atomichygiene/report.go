package atomichygiene

import "sync/atomic"

// snapshot reads hits plainly although counters.go writes it atomically:
// the data race the field index exists to catch.
func (g *gauge) snapshot() int64 {
	return g.hits // want "field hits is accessed via sync/atomic \(counters.go:21\) but read plainly here"
}

// reset writes level plainly although counters.go stores it atomically.
func (g *gauge) reset() {
	g.level = 0 // want "field level is accessed via sync/atomic \(counters.go:22\) but written plainly here"
}

// consistent reads through sync/atomic: the blessed shape.
func (g *gauge) consistent() int64 {
	return atomic.LoadInt64(&g.hits) + g.safe.Load()
}

// label touches the never-atomic field: plain access is the norm there.
func (g *gauge) label() string {
	return g.name
}

// initial is a provably single-threaded plain write: the constructor runs
// before any goroutine shares the gauge.
func newGauge() *gauge {
	g := &gauge{}
	g.hits = 0 //p2:lock-ok constructor-local write before the gauge is shared with any goroutine
	return g
}
