// Package fanout is the analysistest fixture for the fanout analyzer:
// goroutine fan-outs must land results by index into a preallocated slice;
// append-under-mutex and channel-drain collection orders depend on
// scheduling, not input order.
package fanout

import "sync"

// gatherBad collects by append under a mutex: the lock serializes the
// appends but not their order.
func gatherBad(inputs []int) []int {
	var (
		mu      sync.Mutex
		results []int
		wg      sync.WaitGroup
	)
	for _, in := range inputs {
		wg.Add(1)
		go func() {
			defer wg.Done()
			v := in * in
			mu.Lock()
			results = append(results, v) // want "goroutine appends to captured slice results"
			mu.Unlock()
		}()
	}
	wg.Wait()
	return results
}

// gatherNamed launches a named local closure: the analyzer resolves the
// identifier back to the literal.
func gatherNamed(inputs []int) []int {
	var (
		mu      sync.Mutex
		results []int
		wg      sync.WaitGroup
	)
	worker := func(v int) {
		defer wg.Done()
		mu.Lock()
		results = append(results, v*v) // want "goroutine appends to captured slice results"
		mu.Unlock()
	}
	for _, in := range inputs {
		wg.Add(1)
		go worker(in)
	}
	wg.Wait()
	return results
}

// drainBad collects from a channel in receive order: scheduling-dependent
// with multiple senders.
func drainBad(ch chan int) []int {
	var out []int
	for v := range ch {
		out = append(out, v) // want "channel drain collects results in receive order"
	}
	return out
}

// gatherByIndex is the blessed shape: preallocate and land by index.
func gatherByIndex(inputs []int) []int {
	results := make([]int, len(inputs))
	var wg sync.WaitGroup
	for i, in := range inputs {
		wg.Add(1)
		go func() {
			defer wg.Done()
			results[i] = in * in
		}()
	}
	wg.Wait()
	return results
}

// gatherBlessed is an order-independent collection (merged by a full sort
// downstream, like the planner's per-worker heaps) with the justification
// on the append.
func gatherBlessed(inputs []int) []int {
	var (
		mu      sync.Mutex
		results []int
		wg      sync.WaitGroup
	)
	for _, in := range inputs {
		wg.Add(1)
		go func() {
			defer wg.Done()
			mu.Lock()
			results = append(results, in) //p2:order-independent results are fully sorted by the caller before use
			mu.Unlock()
		}()
	}
	wg.Wait()
	return results
}

// localAppend appends to a slice declared inside the goroutine itself:
// not captured, never flagged.
func localAppend(inputs []int, emit func([]int)) {
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		var local []int
		for _, in := range inputs {
			local = append(local, in*in)
		}
		emit(local)
	}()
	wg.Wait()
}
