// Package locksafe is the fixture for the locksafe analyzer: locks copied
// by value, Lock calls with no matching Unlock anywhere in the function,
// and WaitGroup.Add inside the spawned goroutine.
package locksafe

import "sync"

type pool struct {
	mu sync.Mutex
	n  int
}

// byValue receives its own copy of the mutex: callers exclude nothing.
func byValue(mu sync.Mutex) { // want "parameter passes sync.Mutex by value"
	mu.Lock()
	defer mu.Unlock()
}

// valueReceiver locks a copy of the whole pool.
func (p pool) valueReceiver() int { // want "receiver passes sync.Mutex by value"
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.n
}

// copyOut copies the lock-bearing struct out of the pointer.
func copyOut(p *pool) int {
	c := *p // want "assignment copies sync.Mutex"
	return c.n
}

// copyRange copies a lock-bearing element per iteration.
func copyRange(ps []pool) int {
	total := 0
	for _, p := range ps { // want "range value copies sync.Mutex"
		total += p.n
	}
	return total
}

// pointers move locks correctly: no copies anywhere.
func pointers(p *pool, ps []*pool) *pool {
	q := p
	for _, e := range ps {
		q = e
	}
	return q
}

// leak locks without any unlock in the function: the next caller blocks
// forever.
func leak(p *pool) int {
	p.mu.Lock() // want "Lock with no matching Unlock anywhere in leak"
	return p.n
}

// deferred is the blessed shape.
func deferred(p *pool) int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.n
}

// readLeak leaks the read lock: RLock pairs with RUnlock, and the Unlock
// of the write side does not discharge it.
func readLeak(p *pool, mu *sync.RWMutex) int {
	mu.RLock() // want "Lock with no matching Unlock anywhere in readLeak"
	return p.n
}

// addInside races Add against Wait: Wait may pass before the scheduler
// ever starts the goroutine.
func addInside(n int) {
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		go func() {
			wg.Add(1) // want "WaitGroup.Add inside the spawned goroutine races Wait"
			defer wg.Done()
		}()
	}
	wg.Wait()
}

// addOutside is the blessed shape: the count is ahead of Wait by
// program order.
func addOutside(n int) {
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() { defer wg.Done() }()
	}
	wg.Wait()
}

// addBlessed is the annotated producer shape: a happens-before edge
// outside the analyzer's view orders the Add before Wait.
func addBlessed(done chan struct{}) {
	var wg sync.WaitGroup
	go func() {
		defer close(done)
		wg.Add(1) //p2:lock-ok Add happens before close(done), and Wait runs only after <-done
		go func() { defer wg.Done() }()
	}()
	<-done
	wg.Wait()
}
