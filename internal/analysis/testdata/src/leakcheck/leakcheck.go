// Package leakcheck is the fixture for the leakcheck analyzer: goroutines
// spawned by ctx-holding functions must not block on bare channel
// operations — every send/receive needs a ctx.Done() select arm, a
// sufficient buffer, or a //p2:ctx-ok proof.
package leakcheck

import "context"

// produce pushes into an unbuffered channel with no way out: when the
// consumer is cancelled and stops receiving, the goroutine leaks forever.
func produce(ctx context.Context, xs []int) <-chan int {
	ch := make(chan int)
	go func() {
		defer close(ch)
		for _, x := range xs {
			ch <- x // want "goroutine blocks on channel send without a ctx.Done\(\) select arm"
		}
	}()
	return ch
}

// produceSelect is the blessed shape: every send can be abandoned.
func produceSelect(ctx context.Context, xs []int) <-chan int {
	ch := make(chan int)
	go func() {
		defer close(ch)
		for _, x := range xs {
			select {
			case ch <- x:
			case <-ctx.Done():
				return
			}
		}
	}()
	return ch
}

// oneShot sends into capacity: the buffered one-result shape cannot block.
func oneShot(ctx context.Context) <-chan error {
	errc := make(chan error, 1)
	go func() { errc <- ctx.Err() }()
	return errc
}

// namedWorker launches a local closure: the analyzer resolves it like a
// literal.
func namedWorker(ctx context.Context, in chan int) {
	worker := func() {
		<-in // want "goroutine blocks on channel receive without a ctx.Done\(\) select arm"
	}
	go worker()
}

// waitDone blocks on cancellation itself: cancellation-aware by
// definition.
func waitDone(ctx context.Context, cleanup func()) {
	go func() {
		<-ctx.Done()
		cleanup()
	}()
}

// drain ranges over the channel: the loop ends when the producer closes
// it, the fan-out barrier pattern.
func drain(ctx context.Context, in chan int, out chan int) {
	go func() {
		total := 0
		for v := range in {
			total += v
		}
		out <- total //p2:ctx-ok the producer side always closes in even when cancelled, so the drain terminates and out is buffered by the caller
	}()
}

// noCtx holds no context: the function owns its goroutine's lifetime and
// is out of the contract's scope.
func noCtx(a, b chan int) chan int {
	out := make(chan int)
	go func() { out <- <-a + <-b }()
	return out
}
