// Package nanfloat is the analysistest fixture for the nanfloat analyzer:
// float equality, NaN-unsafe validation guards, and NaN-propagating
// math.Max/Min inside the engine.
package nanfloat

import "math"

// validateBad uses the `<= 0` rejection form: a NaN payload fails the
// comparison and slips past the early exit — the bug PR 6 fixed in
// plan/bounds.go.
func validateBad(bytes float64) float64 {
	if bytes <= 0 { // want "NaN-unsafe validation guard: NaN fails <= and slips past the early exit"
		return 0
	}
	return bytes
}

// validateStrict is the strict-inequality variant of the same bug.
func validateStrict(w float64) float64 {
	if w < 1 { // want "NaN-unsafe validation guard: NaN fails < and slips past the early exit"
		return 1
	}
	return w
}

// validateGood is the blessed NaN-proof convention: NaN fails the inner
// comparison, so the negation routes it into the rejecting branch.
func validateGood(bytes float64) float64 {
	if !(bytes > 0) {
		return 0
	}
	return bytes
}

// validateRange is the compound blessed form from topology's override
// validation: the whole accepting condition is negated.
func validateRange(frac float64) bool {
	if !(frac >= 0 && frac < 1) {
		return false
	}
	return true
}

// equal compares floats with ==: NaN compares unequal to everything.
func equal(a, b float64) bool {
	return a == b // want "float == comparison is NaN-unsafe"
}

// isNaNManual is the self-comparison idiom; the fix suggests math.IsNaN.
func isNaNManual(x float64) bool {
	return x != x // want "float != comparison is NaN-unsafe"
}

// isInfManual compares against math.Inf; the fix suggests math.IsInf —
// the down-link +Inf-vs-+Inf comparison shape from plan/bounds.go.
func isInfManual(x float64) bool {
	return x == math.Inf(1) // want "float == comparison is NaN-unsafe"
}

// worst propagates NaN through math.Max: the winner is undefined.
func worst(a, b float64) float64 {
	return math.Max(a, b) // want "math.Max propagates NaN"
}

// blessedEqual documents why its operands are never NaN.
func blessedEqual(a, b float64) bool {
	//p2:nan-ok operands are validated finite by the caller
	return a == b
}

// blessedMax documents why its operands are never NaN.
func blessedMax(a, b float64) float64 {
	return math.Max(a, b) //p2:nan-ok both operands are sums of validated finite link times
}

// intGuard is integer validation: never flagged, ints have no NaN.
func intGuard(n int) int {
	if n <= 0 {
		return 0
	}
	return n
}

// constFold compares two constants: decided at compile time, not flagged.
func constFold() bool {
	return 1.0 == 2.0
}
