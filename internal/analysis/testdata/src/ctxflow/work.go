package ctxflow

import "context"

// plan is the context-blind variant; planCtx is its threading twin. The
// pair is declared here, in a different file from every caller, so the
// analyzer's variant resolution is necessarily cross-file.
func plan(n int) int { return n * 2 }

func planCtx(ctx context.Context, n int) int {
	if ctx.Err() != nil {
		return 0
	}
	return n * 2
}

// engine carries the method-pair equivalent.
type engine struct{ bias int }

func (e *engine) run(n int) int { return n + e.bias }

func (e *engine) runCtx(ctx context.Context, n int) int {
	if ctx.Err() != nil {
		return 0
	}
	return n + e.bias
}
