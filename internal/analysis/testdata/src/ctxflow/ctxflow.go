// Package ctxflow is the fixture for the ctxflow analyzer: fresh context
// roots are banned outside annotated shims, and a function holding a ctx
// must call the FooCtx variant of any callee that has one. The callee
// pair lives in work.go — the variant lookup and the flagged call resolve
// cross-file through the call graph.
package ctxflow

import "context"

// search holds a ctx but calls the context-blind plan variant declared in
// work.go even though planCtx exists there.
func search(ctx context.Context, n int) int {
	total := plan(n) // want "search holds a ctx but calls plan, whose context-threading variant planCtx exists"
	total += planCtx(ctx, n)
	return total
}

// searchEngine does the same through a method pair.
func searchEngine(ctx context.Context, e *engine, n int) int {
	return e.run(n) + e.runCtx(ctx, n) // want "searchEngine holds a ctx but calls run, whose context-threading variant runCtx exists"
}

// freshRoots creates unthreaded context roots.
func freshRoots() {
	_ = context.Background() // want "context.Background creates a fresh context root"
	_ = context.TODO()       // want "context.TODO creates a fresh context root"
}

// plainCaller holds no ctx: calling the blind variant is its only option,
// and the boundary shim below owns the fresh root.
func plainCaller(n int) int {
	return plan(n)
}

// boundary is the blessed compatibility-shim shape.
func boundary(n int) int {
	return planCtx(context.Background(), n) //p2:ctx-ok documented no-deadline compatibility shim wrapping planCtx
}
