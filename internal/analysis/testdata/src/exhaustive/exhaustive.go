// Package exhaustive is the fixture for the exhaustive analyzer: switches
// over module-defined enum types (named basic type plus declared
// constants) must cover every accessible constant or carry a default.
package exhaustive

type mode int

const (
	modeOff mode = iota
	modeRerank
	modeAll
)

// name misses a constant and has no default: a grown enum silently falls
// through.
func name(m mode) string {
	switch m { // want "switch over mode misses modeAll"
	case modeOff:
		return "off"
	case modeRerank:
		return "rerank"
	}
	return "?"
}

// full covers every constant: no default needed.
func full(m mode) string {
	switch m {
	case modeOff:
		return "off"
	case modeRerank, modeAll:
		return "measured"
	}
	return "?"
}

// defaulted handles growth explicitly.
func defaulted(m mode) string {
	switch m {
	case modeOff:
		return "off"
	default:
		return "on"
	}
}

// flag has a single constant: one constant is a flag, not an enum space.
type flag int

const flagOn flag = 1

func flagged(f flag) bool {
	switch f {
	case flagOn:
		return true
	}
	return false
}

// plain switches over non-enum types are out of scope.
func plain(n int) bool {
	switch n {
	case 0:
		return false
	}
	return true
}
