// Package annot is the analysistest fixture for the annot hygiene
// analyzer: unknown //p2: markers and escape hatches missing their
// justification are rejected, so a typoed annotation can never silently
// disable a real analyzer.
package annot

import "sort"

// typoed carries a marker that is not in the closed set — a typo of
// order-independent that would otherwise silently fail to bless anything.
func typoed(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	//p2:order-indep keys sorted below // want "unknown annotation marker //p2:order-indep"
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// bare carries a justification-requiring marker with no justification.
func bare(a, b float64) bool {
	//p2:nan-ok // want "//p2:nan-ok requires a justification"
	return a == b
}

// fine is a well-formed escape hatch: known marker, justification present.
func fine(a, b float64) bool {
	//p2:nan-ok operands are validated finite by the caller
	return a == b
}

// zeroallocNeedsNoWhy: the opt-in marker is the claim itself.
//
//p2:zeroalloc
func zeroallocNeedsNoWhy(a, b int) int {
	if a > b {
		return a
	}
	return b
}
