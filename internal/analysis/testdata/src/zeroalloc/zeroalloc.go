// Package zeroalloc is the analysistest fixture for the zeroalloc
// analyzer: every allocating construct inside a //p2:zeroalloc function is
// flagged; amortized scratch growth escapes with //p2:alloc-ok; cold
// branches move into unannotated helpers.
package zeroalloc

import "fmt"

type point struct{ x, y int }

type scratch struct {
	buf []int
}

func release()     {}
func take(v any)   {}
func name() string { return "n" }

// hot is the annotated function every construct below violates.
//
//p2:zeroalloc
func hot(xs []int, n int) int {
	buf := make([]int, 4)        // want "make allocates inside"
	p := new(point)              // want "new allocates inside"
	q := point{x: 1}             // want "composite literal allocates inside"
	xs = append(xs, n)           // want "append allocates inside"
	f := func() int { return n } // want "function literal"
	defer release()              // want "defer allocates inside"
	go release()                 // want "go statement"
	return len(buf) + p.x + q.x + len(xs) + f()
}

// format shows the fmt and string-building violations.
//
//p2:zeroalloc
func format(label string, n int) string {
	msg := fmt.Sprintf("%s=%d", label, n) // want "fmt.Sprintf allocates inside"
	msg = msg + name()                    // want "string concatenation"
	msg += label                          // want "string .. concatenation"
	return msg
}

// box shows the three interface-boxing shapes.
//
//p2:zeroalloc
func box(n int) any {
	take(n) // want "interface argument"
	var v any
	v = n // want "interface assignment"
	_ = v
	return any(n) // want "conversion to interface"
}

// convert shows the allocating string<->[]byte conversion.
//
//p2:zeroalloc
func convert(bs []byte) string {
	return string(bs) // want "string conversion"
}

// grow is the blessed amortized-scratch shape: append growth escapes with
// a justified //p2:alloc-ok on the line.
//
//p2:zeroalloc
func grow(s *scratch, v int) {
	s.buf = append(s.buf, v) //p2:alloc-ok growth is amortized; capacity is reused across calls
}

// trusted calls an unannotated helper: calls are trusted (the helper must
// carry its own annotation if it is on the hot path), so nothing is
// flagged here.
//
//p2:zeroalloc
func trusted() {
	cold()
}

// cold is unannotated: it may allocate freely (the cold-branch pattern —
// panics and formatting move here, out of the annotated hot functions).
func cold() string {
	return fmt.Sprintf("cold %d", 42)
}
