// Package errflow is the fixture for the errflow analyzer: identity
// comparisons against non-nil errors and fmt.Errorf calls that stringify
// an error without %w.
package errflow

import (
	"errors"
	"fmt"
	"io"
)

var errStale = errors.New("stale")

func compare(err error) int {
	if err == io.EOF { // want "error compared with ==: identity comparison misses wrapped errors"
		return 1
	}
	if err != errStale { // want "error compared with !=: identity comparison misses wrapped errors"
		return 2
	}
	// nil comparisons are the idiom and stay untouched.
	if err == nil {
		return 3
	}
	if err != nil {
		return 4
	}
	return 0
}

// compareIs is the blessed shape.
func compareIs(err error) bool {
	return errors.Is(err, io.EOF) || errors.Is(err, errStale)
}

// wrapFlat cuts the chain: %v renders the error to dead text.
func wrapFlat(err error) error {
	return fmt.Errorf("plan failed: %v", err) // want "fmt.Errorf stringifies an error argument without %w"
}

// wrapImplicit cuts the chain with %s just the same.
func wrapImplicit(name string, err error) error {
	return fmt.Errorf("plan %s failed: %s", name, err) // want "fmt.Errorf stringifies an error argument without %w"
}

// wrapKept is the blessed shape: the cause stays inspectable.
func wrapKept(err error) error {
	return fmt.Errorf("plan failed: %w", err)
}

// noError formats only plain values: nothing to wrap.
func noError(name string, n int) error {
	return fmt.Errorf("plan %s failed after %d steps", name, n)
}
