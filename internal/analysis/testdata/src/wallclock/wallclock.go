// Package wallclock is the analysistest fixture for the wallclock
// analyzer: wall-clock reads and nondeterministic randomness are forbidden
// inside the engine; reporting-only sites escape with //p2:timing-ok.
package wallclock

import (
	"math/rand"
	"time"
)

func work() {}

// elapsed times work with the wall clock: both reads are flagged.
func elapsed() time.Duration {
	start := time.Now() // want "time.Now reads the wall clock inside the engine"
	work()
	return time.Since(start) // want "time.Since reads the wall clock inside the engine"
}

// sleepy blocks on the wall clock.
func sleepy() {
	time.Sleep(time.Millisecond) // want "time.Sleep reads the wall clock inside the engine"
}

// jitter draws from the unseeded global source: nondeterministic.
func jitter() float64 {
	return rand.Float64() // want "math/rand.Float64 is nondeterministic randomness inside the engine"
}

// shuffle is flagged even seeded via the global source helpers.
func shuffle(xs []int) {
	rand.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] }) // want "math/rand.Shuffle is nondeterministic randomness inside the engine"
}

// reported is the blessed shape: wall time flows into a report field,
// never into a ranking.
func reported() time.Duration {
	start := time.Now() //p2:timing-ok wall time is reported to the caller, never ranked
	work()
	return time.Since(start) //p2:timing-ok wall time is reported to the caller, never ranked
}

// duration arithmetic without a clock read is never flagged.
func budget(d time.Duration) time.Duration {
	return d * 2
}
