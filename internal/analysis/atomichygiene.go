package analysis

import (
	"fmt"
	"path/filepath"
)

// AtomicHygiene enforces all-or-nothing atomicity per field: a struct
// field whose address is passed to a sync/atomic function anywhere in the
// module must be accessed through sync/atomic everywhere — one plain read
// of an atomically-written counter is a data race the happens-before graph
// cannot excuse, and exactly the kind the race detector only catches when
// a test happens to interleave it. The module-wide field-access index
// (fieldindex.go) makes the check cross-function and cross-file: the
// diagnostic names the atomic site that put the field in the atomic set.
// Typed atomics (atomic.Int64 and friends) are immune by construction and
// therefore the preferred fix. A plain access proven single-threaded (a
// constructor before any goroutine exists) carries //p2:lock-ok <why>.
var AtomicHygiene = &Analyzer{
	Name: "atomichygiene",
	Doc: "a field touched via sync/atomic anywhere must be atomic everywhere; prefer typed " +
		"atomics (atomic.Int64), provably single-threaded accesses carry //p2:lock-ok",
	Run: runAtomicHygiene,
}

func runAtomicHygiene(pass *Pass) error {
	pkgPath := ""
	if pass.Pkg != nil {
		pkgPath = pass.Pkg.Path()
	}
	for _, field := range pass.Module.Fields.Fields() {
		accesses := pass.Module.Fields.Accesses(field)
		var atomicAt *FieldAccess
		for i := range accesses {
			if accesses[i].Atomic {
				atomicAt = &accesses[i]
				break
			}
		}
		if atomicAt == nil {
			continue // never atomic: plain accesses are the norm
		}
		where := pass.Fset.Position(atomicAt.Pos)
		site := fmt.Sprintf("%s:%d", filepath.Base(where.Filename), where.Line)
		for _, acc := range accesses {
			// Each pass reports only its own package's plain accesses, so a
			// module-wide field is diagnosed exactly once per site.
			if acc.Atomic || acc.PkgPath != pkgPath {
				continue
			}
			if pass.Annot.Covers(acc.Pos, MarkerLockOk) {
				continue
			}
			verb := "read"
			if acc.Write {
				verb = "written"
			}
			pass.Reportf(acc.Pos,
				"use sync/atomic here too, or make the field a typed atomic (atomic.Int64), or annotate a provably single-threaded access //p2:lock-ok <why>",
				"field %s is accessed via sync/atomic (%s) but %s plainly here — a data race under concurrent use",
				field.Name(), site, verb)
		}
	}
	return nil
}
