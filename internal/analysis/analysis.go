// Package analysis is p2's static-analysis suite: a set of single-purpose
// analyzers that turn the planning engine's documented invariants —
// deterministic iteration, NaN-proof validation comparisons, zero-alloc
// hot paths, no wall-clock or randomness inside the engine, index-landed
// parallel fan-outs — into compile-time checks. The cmd/p2lint binary runs
// every analyzer over ./... in CI, so a refactor that silently breaks an
// invariant the example-based test matrix happens not to exercise is
// rejected at review time, not discovered as a flaky ranking later.
//
// The framework deliberately mirrors the golang.org/x/tools go/analysis
// vocabulary (Analyzer, Pass, Diagnostic, testdata fixtures with `want`
// comments) so the suite reads like any other multichecker, but it is
// self-contained: this module has no dependencies outside the standard
// library, so the loader (load.go) drives `go list -export` plus go/types
// directly instead of importing x/tools.
//
// # Escape hatches
//
// Every analyzer has exactly one escape hatch, a `//p2:` marker comment
// with a mandatory one-line justification (except //p2:zeroalloc, which is
// the opt-in marker itself). The markers are documented in DESIGN.md §10
// and cross-checked by scripts/docscheck.sh; the annot analyzer rejects
// unknown markers and missing justifications so an escape hatch can never
// be a typo.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Analyzer is one single-purpose static check, mirroring the shape of
// golang.org/x/tools/go/analysis.Analyzer.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and fixture paths.
	Name string
	// Doc is the one-paragraph description printed by `p2lint -help`.
	Doc string
	// AppliesTo, when non-nil, restricts the analyzer to packages whose
	// import path it accepts; nil means every loaded package. Analyzer
	// fixtures under internal/analysis/testdata are always accepted so the
	// analysistest harness exercises the real driver path.
	AppliesTo func(pkgPath string) bool
	// Collect, when non-nil, runs once per module before any Run,
	// publishing per-object facts (Module.ExportObjectFact) that this
	// analyzer's Run — or another analyzer's — consumes. The cross-function
	// analyzers use it to see callees and fields outside the current pass.
	Collect func(m *Module)
	// Run reports the package's violations through pass.Report.
	Run func(pass *Pass) error
}

// Pass carries one analyzed package to an Analyzer.Run.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info
	// Annot holds the package's parsed //p2: markers.
	Annot *Annotations
	// Module is the whole-run view (facts, call graph, field index) for
	// the cross-function analyzers; single-package analyzers ignore it.
	Module *Module

	diags *[]Diagnostic
}

// Reportf records one violation at pos. The message should state the
// broken invariant; fix, when non-empty, is a concrete suggested rewrite
// appended as "fix: ...".
func (p *Pass) Reportf(pos token.Pos, fix, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      p.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
		Fix:      fix,
	})
}

// Diagnostic is one reported violation.
type Diagnostic struct {
	Analyzer string
	Pos      token.Position
	Message  string
	// Fix is the suggested rewrite or escape hatch.
	Fix string
}

// String renders the diagnostic the way p2lint prints it.
func (d Diagnostic) String() string {
	s := fmt.Sprintf("%s: [%s] %s", d.Pos, d.Analyzer, d.Message)
	if d.Fix != "" {
		s += " (fix: " + d.Fix + ")"
	}
	return s
}

// sortDiagnostics orders diagnostics by file, line, column, analyzer —
// the deterministic output order of a run.
func sortDiagnostics(diags []Diagnostic) {
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
}

// Marker is one //p2: annotation kind.
type Marker string

// The recognized annotation markers. Each is an analyzer's escape hatch
// (or, for zeroalloc, its opt-in); the set is documented in DESIGN.md §10
// and scripts/docscheck.sh cross-checks that table against this source
// and against the tree.
const (
	// MarkerOrderIndependent blesses a range over a map (detmaprange) or an
	// unordered fan-out collection (fanout) whose downstream consumption is
	// provably order-independent. Requires a justification.
	MarkerOrderIndependent Marker = "order-independent"
	// MarkerTimingOk blesses a wall-clock read inside the engine
	// (wallclock) whose value is reported, never ranked. Requires a
	// justification.
	MarkerTimingOk Marker = "timing-ok"
	// MarkerZeroalloc opts a function into the zeroalloc analyzer: its
	// body must contain no allocating constructs. Placed in the function's
	// doc comment; needs no justification (the marker is the claim).
	MarkerZeroalloc Marker = "zeroalloc"
	// MarkerAllocOk blesses one allocating line inside a //p2:zeroalloc
	// function — amortized scratch growth or a provably cold branch.
	// Requires a justification.
	MarkerAllocOk Marker = "alloc-ok"
	// MarkerNanOk blesses a NaN-unsafe float comparison (nanfloat) whose
	// operands are validated finite upstream. Requires a justification.
	MarkerNanOk Marker = "nan-ok"
	// MarkerCtxOk blesses a context.Background()/TODO() root or an
	// unthreaded blocking channel operation (ctxflow, leakcheck) — the
	// boundary shims where a fresh context is the documented contract, or
	// a send proven to unblock without cancellation. Requires a
	// justification.
	MarkerCtxOk Marker = "ctx-ok"
	// MarkerLockOk blesses a locking shape locksafe or atomichygiene would
	// reject — a WaitGroup.Add inside a goroutine ordered before Wait by a
	// happens-before edge, or a plain access to an atomic field proven
	// single-threaded at that point. Requires a justification.
	MarkerLockOk Marker = "lock-ok"
)

// markerNeedsWhy reports whether the marker requires a justification text.
func markerNeedsWhy(m Marker) bool { return m != MarkerZeroalloc }

// knownMarkers is the closed set of valid marker names.
var knownMarkers = map[Marker]bool{
	MarkerOrderIndependent: true,
	MarkerTimingOk:         true,
	MarkerZeroalloc:        true,
	MarkerAllocOk:          true,
	MarkerNanOk:            true,
	MarkerCtxOk:            true,
	MarkerLockOk:           true,
}

// annotation is one parsed //p2: comment.
type annotation struct {
	marker Marker
	why    string
	pos    token.Pos
}

// Annotations indexes a package's //p2: markers for line-level lookups.
// A marker covers the source line it sits on and, when it is the only
// thing on its line (a comment-above annotation), the line below it.
type Annotations struct {
	fset *token.FileSet
	// byLine maps file -> line -> annotations effective on that line.
	byLine map[string]map[int][]annotation
	// problems are malformed markers (unknown kind, missing justification),
	// reported by the annot analyzer.
	problems []Diagnostic
}

// parseAnnotations scans every comment of files for //p2: markers.
func parseAnnotations(fset *token.FileSet, files []*ast.File) *Annotations {
	a := &Annotations{fset: fset, byLine: map[string]map[int][]annotation{}}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				a.scanComment(c)
			}
		}
	}
	return a
}

// scanComment parses one comment for a //p2: marker and records it.
func (a *Annotations) scanComment(c *ast.Comment) {
	text, ok := strings.CutPrefix(c.Text, "//p2:")
	if !ok {
		return
	}
	name, why, _ := strings.Cut(text, " ")
	m := Marker(name)
	pos := a.fset.Position(c.Pos())
	if !knownMarkers[m] {
		a.problems = append(a.problems, Diagnostic{
			Analyzer: "annot",
			Pos:      pos,
			Message:  fmt.Sprintf("unknown annotation marker //p2:%s", name),
			Fix:      "use one of: order-independent, timing-ok, zeroalloc, alloc-ok, nan-ok, ctx-ok, lock-ok (see DESIGN.md §10)",
		})
		return
	}
	// A fixture's trailing `// want "..."` expectation (analysistest places
	// wants on the flagged line) is not part of the justification.
	if i := strings.Index(why, "// want "); i >= 0 {
		why = why[:i]
	}
	why = strings.TrimSpace(why)
	if markerNeedsWhy(m) && why == "" {
		a.problems = append(a.problems, Diagnostic{
			Analyzer: "annot",
			Pos:      pos,
			Message:  fmt.Sprintf("//p2:%s requires a justification", name),
			Fix:      fmt.Sprintf("write //p2:%s <one-line reason the invariant holds anyway>", name),
		})
		return
	}
	// A marker covers its own line (trailing style) and the line below
	// (comment-above style). The one-line over-coverage of a trailing
	// marker is deliberate: distinguishing the styles needs the raw
	// source, and the extra line is the statement the marker already
	// blesses or a closing brace in every gofmt'd layout.
	ann := annotation{marker: m, why: why, pos: c.Pos()}
	lines := a.byLine[pos.Filename]
	if lines == nil {
		lines = map[int][]annotation{}
		a.byLine[pos.Filename] = lines
	}
	lines[pos.Line] = append(lines[pos.Line], ann)
	lines[pos.Line+1] = append(lines[pos.Line+1], ann)
}

// Covers reports whether a marker of kind m is in effect at pos: on the
// same source line, or on the line directly above (comment-above style).
func (a *Annotations) Covers(pos token.Pos, m Marker) bool {
	p := a.fset.Position(pos)
	for _, ann := range a.byLine[p.Filename][p.Line] {
		if ann.marker == m {
			return true
		}
	}
	return false
}

// FuncMarked reports whether fn's doc comment carries marker m.
func FuncMarked(fn *ast.FuncDecl, m Marker) bool {
	if fn.Doc == nil {
		return false
	}
	for _, c := range fn.Doc.List {
		if text, ok := strings.CutPrefix(c.Text, "//p2:"); ok {
			name, _, _ := strings.Cut(text, " ")
			if Marker(name) == m {
				return true
			}
		}
	}
	return false
}

// Annot is the annotation-hygiene analyzer: it rejects unknown //p2:
// markers and escape hatches missing their justification, so a typoed
// annotation can never silently disable a real analyzer.
var Annot = &Analyzer{
	Name: "annot",
	Doc: "reject unknown //p2: markers and escape hatches without a justification; the valid set is " +
		"order-independent, timing-ok, zeroalloc, alloc-ok, nan-ok, ctx-ok, lock-ok (DESIGN.md §10)",
	Run: func(pass *Pass) error {
		*pass.diags = append(*pass.diags, pass.Annot.problems...)
		return nil
	},
}

// criticalPackages are the determinism-critical engine packages: a stray
// map-range or unordered fan-out in any of them can silently break the
// byte-identical-rankings contract (DESIGN.md §5).
var criticalPackages = map[string]bool{
	"p2/internal/plan":      true,
	"p2/internal/synth":     true,
	"p2/internal/lower":     true,
	"p2/internal/cost":      true,
	"p2/internal/placement": true,
	"p2/internal/netsim":    true,
	"p2/internal/eval":      true,
}

// inCritical gates an analyzer to the determinism-critical packages (and
// to its own fixtures, so analysistest exercises the gated path).
func inCritical(pkgPath string) bool {
	return criticalPackages[pkgPath] || isFixturePath(pkgPath)
}

// inEngine gates an analyzer to every engine package under p2/internal
// (and to fixtures). cmd/, examples/ and the repo-root CLI surface are
// free to print, time and randomize, and so are the two tooling
// packages excluded here: the analyzer suite itself and the load
// harness (internal/load), whose seeded workload PRNG and wall-clock
// latency measurement are its entire purpose — it measures the engine
// and is never imported by it (DESIGN.md §10, §12).
func inEngine(pkgPath string) bool {
	return strings.HasPrefix(pkgPath, "p2/internal/") &&
		!strings.Contains(pkgPath, "internal/analysis") &&
		pkgPath != "p2/internal/load" ||
		isFixturePath(pkgPath)
}

// inCancellable gates an analyzer to the packages bound by the PR 8
// cancellation contract (DESIGN.md §11): the engine packages plus the
// root p2 package whose PlanCtx/PlanJointCtx entry points anchor it.
// cmd/ and examples/ own their process lifetime and may block freely.
func inCancellable(pkgPath string) bool {
	return pkgPath == "p2" || inEngine(pkgPath)
}

// isFixturePath reports whether pkgPath is an analysistest fixture.
func isFixturePath(pkgPath string) bool {
	return strings.Contains(pkgPath, "analysis/testdata/")
}

// All is the full analyzer suite in the order p2lint runs it: the PR 7
// single-function analyzers first, then the cross-function concurrency
// and cancellation set built on the facts engine (facts.go).
var All = []*Analyzer{
	Annot, DetMapRange, NaNFloat, ZeroAlloc, WallClock, FanOut,
	CtxFlow, AtomicHygiene, LockSafe, ErrFlow, LeakCheck, Exhaustive,
}
