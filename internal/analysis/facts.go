package analysis

import (
	"go/token"
	"go/types"
	"reflect"
)

// facts.go is the cross-function layer of the suite: a Module view over
// every package a run loads, a per-object fact store analyzers publish and
// consume (mirroring golang.org/x/tools/go/analysis Facts, stdlib-only),
// and the module-wide call graph and field-access index built on top of
// it. The single-package analyzers of PR 7 see one package at a time; the
// concurrency analyzers (ctxflow, atomichygiene) need whole-module
// reasoning — a caller in plan.go threading a context into a callee in
// rerank.go, a field written atomically in serve.go and read plainly in
// stats.go — and this file is where that view lives.
//
// Fact identity rides on go/types object identity: the Loader typechecks
// every module package through one shared package cache, so the
// *types.Func for plan.Run is the same pointer whether it is seen from its
// declaring package or through an import. Facts are keyed by
// (types.Object, concrete fact type), exactly the x/tools contract.

// Fact is a datum one analyzer attaches to a types.Object for another
// (or a later phase of itself) to consume. Implementations are pointers
// to concrete types; AFact is the marker method.
type Fact interface {
	AFact()
}

// factKey addresses one fact: the object it decorates plus the concrete
// fact type, so different analyzers' facts on the same object coexist.
type factKey struct {
	obj types.Object
	typ reflect.Type
}

// Module is the whole-run view: every loaded package, the shared fact
// store, and the derived cross-function indexes.
type Module struct {
	Fset     *token.FileSet
	Packages []*LoadedPackage
	// CallGraph is the intra-module static call graph (callgraph.go).
	CallGraph *CallGraph
	// Fields is the module-wide field-access index (fieldindex.go).
	Fields *FieldIndex

	byPath map[string]*LoadedPackage
	// byFile maps a source filename to its package, for cross-package
	// position lookups (annotations, field accesses).
	byFile map[string]*LoadedPackage
	facts  map[factKey]Fact
}

// BuildModule assembles the module view over pkgs and derives the call
// graph and field index. Analyzer Collect hooks run afterwards, in the
// driver (load.go Run, fixtures_test.go RunFixture).
func BuildModule(fset *token.FileSet, pkgs []*LoadedPackage) *Module {
	m := &Module{
		Fset:     fset,
		Packages: pkgs,
		byPath:   map[string]*LoadedPackage{},
		byFile:   map[string]*LoadedPackage{},
		facts:    map[factKey]Fact{},
	}
	for _, pkg := range pkgs {
		m.byPath[pkg.Path] = pkg
		for _, f := range pkg.Files {
			m.byFile[fset.Position(f.Pos()).Filename] = pkg
		}
	}
	m.CallGraph = buildCallGraph(m)
	m.Fields = buildFieldIndex(m)
	return m
}

// ExportObjectFact publishes fact on obj. fact must be a pointer; the
// stored value is the pointer itself (facts are immutable by convention
// once published).
func (m *Module) ExportObjectFact(obj types.Object, fact Fact) {
	if obj == nil {
		return
	}
	m.facts[factKey{obj, reflect.TypeOf(fact)}] = fact
}

// ImportObjectFact copies the fact of fact's concrete type on obj into
// *fact and reports whether one was published. fact must be a non-nil
// pointer to the concrete type used at export.
func (m *Module) ImportObjectFact(obj types.Object, fact Fact) bool {
	if obj == nil {
		return false
	}
	stored, ok := m.facts[factKey{obj, reflect.TypeOf(fact)}]
	if !ok {
		return false
	}
	reflect.ValueOf(fact).Elem().Set(reflect.ValueOf(stored).Elem())
	return true
}

// Package returns the loaded package with the given import path, or nil.
func (m *Module) Package(path string) *LoadedPackage {
	return m.byPath[path]
}

// PackageAt returns the loaded package owning the file at pos, or nil for
// positions outside the module (export-data packages have no source here).
func (m *Module) PackageAt(pos token.Pos) *LoadedPackage {
	return m.byFile[m.Fset.Position(pos).Filename]
}

// Covers reports whether a //p2: marker of kind mk is in effect at pos,
// resolving the owning package by filename — the cross-package counterpart
// of Annotations.Covers for analyzers that report at positions outside the
// pass's own package.
func (m *Module) Covers(pos token.Pos, mk Marker) bool {
	pkg := m.PackageAt(pos)
	return pkg != nil && pkg.Annot.Covers(pos, mk)
}

// DefinedInModule reports whether obj is declared in one of the loaded
// module packages (as opposed to a dependency resolved from export data).
func (m *Module) DefinedInModule(obj types.Object) bool {
	if obj == nil || obj.Pkg() == nil {
		return false
	}
	return m.byPath[obj.Pkg().Path()] != nil
}
