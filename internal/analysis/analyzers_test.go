package analysis

import (
	"strings"
	"testing"
)

// The fixture tests lock every analyzer's behavior — each flagged line in
// testdata/src/<name>/ carries a `// want "regexp"` expectation, and
// RunFixture fails on unexpected diagnostics and unmatched wants alike.
// Together they pin the acceptance criteria: a deliberately injected
// violation of each invariant is rejected with a position and a concrete
// fix suggestion, and every blessed escape-hatch shape stays silent.

func TestAnnotFixture(t *testing.T)       { RunFixture(t, "annot", Annot) }
func TestDetMapRangeFixture(t *testing.T) { RunFixture(t, "detmaprange", DetMapRange) }
func TestNaNFloatFixture(t *testing.T)    { RunFixture(t, "nanfloat", NaNFloat) }
func TestZeroAllocFixture(t *testing.T)   { RunFixture(t, "zeroalloc", ZeroAlloc) }
func TestWallClockFixture(t *testing.T)   { RunFixture(t, "wallclock", WallClock) }
func TestFanOutFixture(t *testing.T)      { RunFixture(t, "fanout", FanOut) }

// The cross-function analyzers (facts.go): the ctxflow and atomichygiene
// fixtures put caller and callee (resp. atomic and plain access) in
// different files, so a pass exercises the call graph and field index
// across file boundaries, not just within one inspection.
func TestCtxFlowFixture(t *testing.T)       { RunFixture(t, "ctxflow", CtxFlow) }
func TestAtomicHygieneFixture(t *testing.T) { RunFixture(t, "atomichygiene", AtomicHygiene) }
func TestLockSafeFixture(t *testing.T)      { RunFixture(t, "locksafe", LockSafe) }
func TestErrFlowFixture(t *testing.T)       { RunFixture(t, "errflow", ErrFlow) }
func TestLeakCheckFixture(t *testing.T)     { RunFixture(t, "leakcheck", LeakCheck) }
func TestExhaustiveFixture(t *testing.T)    { RunFixture(t, "exhaustive", Exhaustive) }

// TestLintTree is the self-test p2lint's CI step relies on: the full suite
// over the whole module must be clean. A failure here reproduces exactly
// what `go run ./cmd/p2lint ./...` would print.
func TestLintTree(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and typechecks the whole module")
	}
	diags, err := Run("../..", []string{"./..."}, All)
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range diags {
		t.Errorf("%s", d)
	}
}

// BenchmarkLintTree tracks the wall time of a full-suite run over the
// whole module — the p2lint CI step's cost. The loader dominates (go list
// plus typechecking everything); a regression here slows every CI run,
// so the number is tracked alongside the engine benchmarks.
func BenchmarkLintTree(b *testing.B) {
	for i := 0; i < b.N; i++ {
		diags, err := Run("../..", []string{"./..."}, All)
		if err != nil {
			b.Fatal(err)
		}
		if len(diags) != 0 {
			b.Fatalf("lint tree not clean: %d diagnostics", len(diags))
		}
	}
}

// TestPackageGating pins which packages each gate accepts: detmaprange and
// fanout run only on the determinism-critical engine set, nanfloat and
// wallclock on all engine internals, and fixtures are always in scope so
// the harness exercises the gated path.
func TestPackageGating(t *testing.T) {
	cases := []struct {
		path                            string
		critical, inEngine, cancellable bool
	}{
		{"p2/internal/plan", true, true, true},
		{"p2/internal/synth", true, true, true},
		{"p2/internal/lower", true, true, true},
		{"p2/internal/cost", true, true, true},
		{"p2/internal/placement", true, true, true},
		{"p2/internal/netsim", true, true, true},
		{"p2/internal/eval", true, true, true},
		{"p2/internal/topology", false, true, true},
		{"p2/internal/verify", false, true, true},
		{"p2/internal/plot", false, true, true},
		// The root package anchors the cancellation contract (PlanCtx)
		// even though it is not an engine internal.
		{"p2", false, false, true},
		// The CLI surface and examples are free to print, time, randomize,
		// and block — they own their process lifetime.
		{"p2/cmd/p2", false, false, false},
		{"p2/examples/degraded", false, false, false},
		// The analyzer suite itself is exempt (it is not the engine)...
		{"p2/internal/analysis", false, false, false},
		// ...but its fixtures are always in scope.
		{"p2/internal/analysis/testdata/src/detmaprange", true, true, true},
		{"p2/internal/analysis/testdata/src/ctxflow", true, true, true},
	}
	for _, tc := range cases {
		if got := inCritical(tc.path); got != tc.critical {
			t.Errorf("inCritical(%q) = %v, want %v", tc.path, got, tc.critical)
		}
		if got := inEngine(tc.path); got != tc.inEngine {
			t.Errorf("inEngine(%q) = %v, want %v", tc.path, got, tc.inEngine)
		}
		if got := inCancellable(tc.path); got != tc.cancellable {
			t.Errorf("inCancellable(%q) = %v, want %v", tc.path, got, tc.cancellable)
		}
	}
}

// TestAnalyzerRegistry: every analyzer is registered exactly once, named,
// and documented — the p2lint -help listing depends on it.
func TestAnalyzerRegistry(t *testing.T) {
	seen := map[string]bool{}
	for _, a := range All {
		if a.Name == "" || a.Doc == "" {
			t.Errorf("analyzer %+v missing name or doc", a)
		}
		if seen[a.Name] {
			t.Errorf("analyzer %s registered twice", a.Name)
		}
		seen[a.Name] = true
		if a.Run == nil {
			t.Errorf("analyzer %s has no Run", a.Name)
		}
	}
	for _, want := range []string{
		"annot", "detmaprange", "nanfloat", "zeroalloc", "wallclock", "fanout",
		"ctxflow", "atomichygiene", "locksafe", "errflow", "leakcheck", "exhaustive",
	} {
		if !seen[want] {
			t.Errorf("analyzer %s not registered in All", want)
		}
	}
}

// TestMarkerRules pins the closed marker set and the justification rule:
// every marker except the zeroalloc opt-in requires a why.
func TestMarkerRules(t *testing.T) {
	for m := range knownMarkers {
		if want := m != MarkerZeroalloc; markerNeedsWhy(m) != want {
			t.Errorf("markerNeedsWhy(%s) = %v, want %v", m, markerNeedsWhy(m), want)
		}
	}
	if len(knownMarkers) != 7 {
		t.Errorf("known marker set has %d entries, want 7 — update DESIGN.md §10 and docscheck.sh for new markers", len(knownMarkers))
	}
}

// TestDiagnosticString pins the rendered diagnostic shape the acceptance
// criteria require: position, analyzer, message, and the fix suggestion.
func TestDiagnosticString(t *testing.T) {
	d := Diagnostic{Analyzer: "nanfloat", Message: "float == comparison is NaN-unsafe", Fix: "use math.IsNaN"}
	d.Pos.Filename, d.Pos.Line, d.Pos.Column = "x.go", 7, 9
	got := d.String()
	for _, part := range []string{"x.go:7:9", "[nanfloat]", "float == comparison", "fix: use math.IsNaN"} {
		if !strings.Contains(got, part) {
			t.Errorf("Diagnostic.String() = %q, missing %q", got, part)
		}
	}
}
