package analysis

import (
	"go/ast"
	"go/types"
)

// DetMapRange flags `range` statements over map-typed values inside the
// determinism-critical packages. Go randomizes map iteration order per
// run, so any map-range on the plan/synth/lower/cost/placement/netsim/eval
// path is a latent break of the byte-identical-rankings contract — even
// when every observed test happens to pass. The blessed patterns are (a)
// collect the keys, sort them, range over the sorted slice, or (b) prove
// the loop's effect commutes and annotate the statement with
// //p2:order-independent <why>.
var DetMapRange = &Analyzer{
	Name: "detmaprange",
	Doc: "flag range-over-map in determinism-critical packages; map iteration order is " +
		"randomized per run, so an unannotated map-range can silently break byte-identical rankings",
	AppliesTo: inCritical,
	Run:       runDetMapRange,
}

func runDetMapRange(pass *Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			rng, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			tv, ok := pass.TypesInfo.Types[rng.X]
			if !ok {
				return true
			}
			if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
				return true
			}
			if pass.Annot.Covers(rng.Pos(), MarkerOrderIndependent) {
				return true
			}
			pass.Reportf(rng.Pos(),
				"iterate sorted keys (collect, sort.Strings/Ints, range the slice) or annotate //p2:order-independent <why>",
				"range over map %s iterates in randomized order inside a determinism-critical package",
				types.TypeString(tv.Type, types.RelativeTo(pass.Pkg)))
			return true
		})
	}
	return nil
}
