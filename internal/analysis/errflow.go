package analysis

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"strings"
)

// ErrFlow enforces the wrapped-error discipline Go 1.13 made standard and
// PR 8's sentinel taxonomy (plan.ErrCancelled, the *PanicError unwrap
// chain) depends on:
//
//   - `err == sentinel` / `err != sentinel` identity comparisons miss
//     every wrapped error; errors.Is walks the chain. Comparisons against
//     nil stay untouched — they are the idiom.
//   - fmt.Errorf with an error argument but no %w verb flattens the chain
//     to a string: downstream errors.Is/As stop seeing the sentinel.
var ErrFlow = &Analyzer{
	Name: "errflow",
	Doc: "flag ==/!= comparisons against non-nil errors (use errors.Is/As) and fmt.Errorf calls " +
		"that stringify an error without %w",
	Run: runErrFlow,
}

var errorType = types.Universe.Lookup("error").Type()

// implementsError reports whether t (or *t) satisfies the error interface.
func implementsError(t types.Type) bool {
	if t == nil {
		return false
	}
	iface := errorType.Underlying().(*types.Interface)
	return types.Implements(t, iface) || types.Implements(types.NewPointer(t), iface)
}

func runErrFlow(pass *Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.BinaryExpr:
				checkErrCompare(pass, n)
			case *ast.CallExpr:
				checkErrorfWrap(pass, n)
			}
			return true
		})
	}
	return nil
}

// checkErrCompare flags ==/!= where either operand has the error
// interface type and neither is nil.
func checkErrCompare(pass *Pass, be *ast.BinaryExpr) {
	if be.Op != token.EQL && be.Op != token.NEQ {
		return
	}
	if isUntypedNil(pass, be.X) || isUntypedNil(pass, be.Y) {
		return
	}
	xt, yt := pass.TypesInfo.Types[be.X].Type, pass.TypesInfo.Types[be.Y].Type
	if xt == nil || yt == nil {
		return
	}
	// At least one side must be the error interface itself: comparing two
	// concrete typed values (e.g. syscall.Errno) is exact by construction.
	if !types.Identical(xt, errorType) && !types.Identical(yt, errorType) {
		return
	}
	helper := "errors.Is"
	if be.Op == token.NEQ {
		helper = "!errors.Is"
	}
	pass.Reportf(be.Pos(),
		"use "+helper+"(err, target) so wrapped errors match too",
		"error compared with %s: identity comparison misses wrapped errors", be.Op)
}

// checkErrorfWrap flags fmt.Errorf calls passing an error value without a
// %w verb in the format string.
func checkErrorfWrap(pass *Pass, call *ast.CallExpr) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Errorf" || selectorPkgPath(pass, sel) != "fmt" {
		return
	}
	if len(call.Args) < 2 {
		return
	}
	tv, ok := pass.TypesInfo.Types[call.Args[0]]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		return
	}
	if strings.Contains(constant.StringVal(tv.Value), "%w") {
		return
	}
	for _, arg := range call.Args[1:] {
		at := pass.TypesInfo.Types[arg].Type
		if at == nil || !implementsError(at) {
			continue
		}
		pass.Reportf(call.Pos(),
			"wrap with %w so the cause stays inspectable by errors.Is/As",
			"fmt.Errorf stringifies an error argument without %%w: the error chain is cut here")
		return
	}
}
