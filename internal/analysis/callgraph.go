package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// callgraph.go derives the intra-module static call graph from the
// already-typechecked ASTs: one node per declared function or method with
// a body, one CallSite per statically-resolved call expression inside it.
// Calls inside function literals are attributed to the enclosing declared
// function — for the analyzers built on top (ctxflow), a closure is part
// of its parent's control flow. Dynamic calls (function values, interface
// method dispatch through a nil-resolving selector) have no callee object
// and are simply absent; the analyzers this graph serves are
// convention-checkers, not soundness proofs, and false negatives on
// function values are acceptable where false positives are not.

// CallSite is one static call: caller and callee are the declared
// *types.Func objects, Pos the call expression's position.
type CallSite struct {
	Caller *types.Func
	Callee *types.Func
	Pos    token.Pos
}

// CalleesFact is published on every module function with a body: the
// call sites it contains, in source order. Analyzers consume it through
// Module.ImportObjectFact or the CallsFrom convenience.
type CalleesFact struct {
	Sites []CallSite
}

// AFact marks CalleesFact as a fact.
func (*CalleesFact) AFact() {}

// CallGraph indexes the module's static calls in both directions.
type CallGraph struct {
	m *Module
	// funcs is every module-declared function with a body, in load order —
	// the deterministic iteration surface for whole-module passes.
	funcs []*types.Func
	// callers maps a callee to every site calling it.
	callers map[*types.Func][]CallSite
}

// buildCallGraph walks every declared function body once, resolving each
// call expression to its static callee and publishing a CalleesFact.
func buildCallGraph(m *Module) *CallGraph {
	g := &CallGraph{m: m, callers: map[*types.Func][]CallSite{}}
	for _, pkg := range m.Packages {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				caller, ok := pkg.TypesInfo.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				g.funcs = append(g.funcs, caller)
				var sites []CallSite
				ast.Inspect(fd.Body, func(n ast.Node) bool {
					call, ok := n.(*ast.CallExpr)
					if !ok {
						return true
					}
					callee := StaticCallee(pkg.TypesInfo, call)
					if callee == nil {
						return true
					}
					sites = append(sites, CallSite{Caller: caller, Callee: callee, Pos: call.Pos()})
					return true
				})
				m.ExportObjectFact(caller, &CalleesFact{Sites: sites})
				for _, s := range sites {
					g.callers[s.Callee] = append(g.callers[s.Callee], s)
				}
			}
		}
	}
	return g
}

// StaticCallee resolves a call expression to the *types.Func it invokes,
// or nil for dynamic calls (function values, builtins, conversions).
func StaticCallee(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ := info.Uses[fun].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		fn, _ := info.Uses[fun.Sel].(*types.Func)
		return fn
	}
	return nil
}

// Functions returns every module-declared function with a body, in the
// deterministic load order.
func (g *CallGraph) Functions() []*types.Func { return g.funcs }

// CallsFrom returns fn's static call sites (the CalleesFact), or nil for
// functions outside the module.
func (g *CallGraph) CallsFrom(fn *types.Func) []CallSite {
	var f CalleesFact
	if g.m.ImportObjectFact(fn, &f) {
		return f.Sites
	}
	return nil
}

// CallersOf returns every module call site whose static callee is fn.
func (g *CallGraph) CallersOf(fn *types.Func) []CallSite { return g.callers[fn] }
