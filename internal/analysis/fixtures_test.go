package analysis

import (
	"go/token"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// analysistest.go is the fixture harness, mirroring the conventions of
// golang.org/x/tools/go/analysis/analysistest: a fixture package lives
// under testdata/src/<name>/, every line expecting a diagnostic carries a
// trailing `// want "regexp"` comment, and RunFixture fails the test on
// any mismatch in either direction. Fixtures are loaded through the real
// driver (loader, annotation scanner, AppliesTo gating — fixture paths are
// always accepted), so the harness exercises exactly the path p2lint runs
// in CI.

// wantRe matches `// want "..."` with an optional second expectation for
// lines two analyzers flag: `// want "a" "b"`.
var wantRe = regexp.MustCompile(`// want (".*")$`)

// RunFixture runs the analyzers over testdata/src/<dir> and checks the
// diagnostics against the fixture's `want` comments.
func RunFixture(t *testing.T, dir string, analyzers ...*Analyzer) {
	t.Helper()
	fixture := filepath.Join("testdata", "src", dir)
	l := NewLoader("")
	l.Lenient = true // fixtures may deliberately trip vet-grade checks
	pkgs, err := l.Load("./" + fixture)
	if err != nil {
		t.Fatalf("loading fixture %s: %v", fixture, err)
	}
	for _, pkg := range pkgs {
		for _, a := range analyzers {
			if a.AppliesTo != nil && !a.AppliesTo(pkg.Path) {
				t.Fatalf("analyzer %s rejected its own fixture package %s", a.Name, pkg.Path)
			}
		}
	}
	// The shared driver builds the fixture-scoped Module (facts, call
	// graph, field index) exactly as a real run does.
	var diags []Diagnostic
	if err := analyze(l.Fset, pkgs, analyzers, &diags); err != nil {
		t.Fatalf("analyzing fixture %s: %v", fixture, err)
	}
	sortDiagnostics(diags)
	checkWants(t, l.Fset, pkgs, diags)
}

// wantKey addresses one fixture line.
type wantKey struct {
	file string
	line int
}

// checkWants compares diagnostics against the fixture's want comments.
func checkWants(t *testing.T, fset *token.FileSet, pkgs []*LoadedPackage, diags []Diagnostic) {
	t.Helper()
	wants := map[wantKey][]*regexp.Regexp{}
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					m := wantRe.FindStringSubmatch(c.Text)
					if m == nil {
						continue
					}
					pos := fset.Position(c.Pos())
					key := wantKey{file: pos.Filename, line: pos.Line}
					for _, q := range splitQuoted(m[1]) {
						re, err := regexp.Compile(q)
						if err != nil {
							t.Fatalf("%s: bad want regexp %q: %v", pos, q, err)
						}
						wants[key] = append(wants[key], re)
					}
				}
			}
		}
	}
	for _, d := range diags {
		key := wantKey{file: d.Pos.Filename, line: d.Pos.Line}
		res := wants[key]
		matched := -1
		for i, re := range res {
			if re.MatchString(d.Message) {
				matched = i
				break
			}
		}
		if matched < 0 {
			t.Errorf("unexpected diagnostic %s", d)
			continue
		}
		wants[key] = append(res[:matched], res[matched+1:]...)
	}
	for key, res := range wants {
		for _, re := range res {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", key.file, key.line, re)
		}
	}
}

// splitQuoted parses the quoted sections of a want comment:
// `"a" "b"` -> ["a", "b"].
func splitQuoted(s string) []string {
	var out []string
	for {
		start := strings.IndexByte(s, '"')
		if start < 0 {
			return out
		}
		end := strings.IndexByte(s[start+1:], '"')
		if end < 0 {
			return out
		}
		out = append(out, s[start+1:start+1+end])
		s = s[start+1+end+1:]
	}
}
