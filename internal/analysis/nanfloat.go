package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// NaNFloat flags float comparisons written in NaN-unsafe form. The
// engine's convention (established by the PR 6 link validation) is that a
// guard rejecting or defaulting bad values must also catch NaN, which
// silently fails every ordered comparison: `if x <= 0 { reject }` lets
// NaN through, `if !(x > 0) { reject }` does not. Three patterns are
// flagged:
//
//   - float == / != — NaN never compares equal (and a NaN operand breaks
//     strict-weak ordering in comparators); comparisons against math.Inf
//     should use math.IsInf, self-comparisons math.IsNaN. Sites whose
//     operands are validated finite upstream annotate //p2:nan-ok <why>.
//   - `if x <= c` / `if x < c` guards (float x, constant c) whose body
//     exits early — the NaN-unsafe validation shape; rewrite the
//     condition as !(x > c) so NaN takes the rejecting branch.
//   - math.Max / math.Min — both propagate NaN asymmetrically (NaN wins
//     or loses depending on argument order); explicit comparisons or a
//     NaN-aware helper make the intent visible.
var NaNFloat = &Analyzer{
	Name: "nanfloat",
	Doc: "flag NaN-unsafe float comparisons: ==/!= on floats, `x <= c` early-exit guards that " +
		"should read !(x > c) so NaN is rejected, and math.Max/Min on possibly-NaN values",
	AppliesTo: inEngine,
	Run:       runNaNFloat,
}

func runNaNFloat(pass *Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.BinaryExpr:
				checkFloatEquality(pass, n)
			case *ast.IfStmt:
				checkGuardComparisons(pass, n)
			case *ast.CallExpr:
				checkMathMinMax(pass, n)
			}
			return true
		})
	}
	return nil
}

// isFloat reports whether e has floating-point type (and is not an
// untyped constant folded at compile time).
func isFloat(pass *Pass, e ast.Expr) bool {
	tv, ok := pass.TypesInfo.Types[e]
	if !ok {
		return false
	}
	b, ok := tv.Type.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}

// isConstExpr reports whether e is a compile-time constant.
func isConstExpr(pass *Pass, e ast.Expr) bool {
	tv, ok := pass.TypesInfo.Types[e]
	return ok && tv.Value != nil
}

// checkFloatEquality flags ==/!= between float operands.
func checkFloatEquality(pass *Pass, be *ast.BinaryExpr) {
	if be.Op != token.EQL && be.Op != token.NEQ {
		return
	}
	if !isFloat(pass, be.X) || !isFloat(pass, be.Y) {
		return
	}
	if isConstExpr(pass, be.X) && isConstExpr(pass, be.Y) {
		return
	}
	if pass.Annot.Covers(be.Pos(), MarkerNanOk) {
		return
	}
	fix := "compare with an epsilon, restructure around ordering, or annotate //p2:nan-ok <why operands are finite>"
	switch {
	case exprString(be.X) != "" && exprString(be.X) == exprString(be.Y):
		fix = "use math.IsNaN"
	case isInfExpr(pass, be.X) || isInfExpr(pass, be.Y):
		fix = "use math.IsInf"
	}
	pass.Reportf(be.Pos(), fix,
		"float %s comparison is NaN-unsafe (NaN compares unequal to everything, including itself)", be.Op)
}

// isInfExpr reports whether e is a math.Inf(...) call or an infinite
// constant.
func isInfExpr(pass *Pass, e ast.Expr) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return false
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	return ok && sel.Sel.Name == "Inf" && selectorPkgPath(pass, sel) == "math"
}

// exprString renders a small expression for identity comparison.
func exprString(e ast.Expr) string {
	switch e := e.(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		return exprString(e.X) + "." + e.Sel.Name
	default:
		return ""
	}
}

// checkGuardComparisons flags NaN-unsafe validation guards: a float
// comparison against a constant inside an if condition whose body exits
// early (return / panic / continue / break). NaN fails `x <= c`, so the
// "bad value" branch never runs for NaN; `!(x > c)` routes NaN into it.
func checkGuardComparisons(pass *Pass, ifs *ast.IfStmt) {
	if !terminates(ifs.Body) {
		return
	}
	ast.Inspect(ifs.Cond, func(n ast.Node) bool {
		if u, ok := n.(*ast.UnaryExpr); ok && u.Op == token.NOT {
			// !(x >= 0 && x < 1) is the blessed NaN-proof shape: NaN fails
			// the inner comparison and the negation routes it to the exit.
			return false
		}
		be, ok := n.(*ast.BinaryExpr)
		if !ok {
			return true
		}
		// Normalize to (variable OP constant): c >= x means x <= c.
		v, c, op := be.X, be.Y, be.Op
		if isConstExpr(pass, v) && !isConstExpr(pass, c) {
			v, c = c, v
			switch op {
			case token.GEQ:
				op = token.LEQ
			case token.GTR:
				op = token.LSS
			default:
				return true
			}
		}
		if op != token.LEQ && op != token.LSS {
			return true
		}
		if !isFloat(pass, v) || !isConstExpr(pass, c) || isConstExpr(pass, v) {
			return true
		}
		if pass.Annot.Covers(be.Pos(), MarkerNanOk) {
			return true
		}
		inverse := ">"
		if op == token.LSS {
			inverse = ">="
		}
		pass.Reportf(be.Pos(),
			fmt.Sprintf("write !(x %s c) so NaN takes the rejecting branch, or annotate //p2:nan-ok <why>", inverse),
			"NaN-unsafe validation guard: NaN fails %s and slips past the early exit", op)
		return true
	})
}

// terminates reports whether the block's last statement exits the
// surrounding flow: return, panic, continue, break or goto.
func terminates(b *ast.BlockStmt) bool {
	if len(b.List) == 0 {
		return false
	}
	switch last := b.List[len(b.List)-1].(type) {
	case *ast.ReturnStmt, *ast.BranchStmt:
		return true
	case *ast.ExprStmt:
		call, ok := last.X.(*ast.CallExpr)
		if !ok {
			return false
		}
		id, ok := call.Fun.(*ast.Ident)
		return ok && id.Name == "panic"
	}
	return false
}

// checkMathMinMax flags math.Max and math.Min calls.
func checkMathMinMax(pass *Pass, call *ast.CallExpr) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || (sel.Sel.Name != "Max" && sel.Sel.Name != "Min") {
		return
	}
	if selectorPkgPath(pass, sel) != "math" {
		return
	}
	if pass.Annot.Covers(call.Pos(), MarkerNanOk) {
		return
	}
	pass.Reportf(call.Pos(),
		"write the comparison explicitly with the NaN case decided, or annotate //p2:nan-ok <why operands are finite>",
		"math.%s propagates NaN (the result is NaN if either operand is); on possibly-NaN values the winner is undefined",
		sel.Sel.Name)
}
