package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// LockSafe flags the three lock-handling shapes that break mutual
// exclusion silently:
//
//   - a sync.Mutex/RWMutex/WaitGroup/Once/Cond (or a struct containing
//     one) copied by value — a by-value receiver or parameter, a plain
//     assignment, a range value — so two goroutines end up locking
//     different copies;
//   - a Lock/RLock in a function with no matching Unlock/RUnlock on the
//     same receiver anywhere in the function, the leak that deadlocks the
//     next caller (the engine convention is `mu.Lock(); defer mu.Unlock()`);
//   - WaitGroup.Add called inside the spawned goroutine, which races the
//     scheduler against Wait: Wait can pass before the goroutine ever runs.
//
// Shapes proven safe by a happens-before edge (planner fan-out's producer
// Adds before the workers' drain barrier is released) carry
// //p2:lock-ok <why>.
var LockSafe = &Analyzer{
	Name: "locksafe",
	Doc: "flag locks copied by value, Lock without any matching Unlock in the function, and " +
		"WaitGroup.Add inside the spawned goroutine; proven-safe shapes carry //p2:lock-ok",
	Run: runLockSafe,
}

func runLockSafe(pass *Pass) error {
	for _, f := range pass.Files {
		// Copies outside any function (package-level vars) and inside all
		// function bodies.
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.AssignStmt:
				checkLockCopyAssign(pass, n)
			case *ast.RangeStmt:
				checkLockCopyRange(pass, n)
			}
			return true
		})
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok {
				continue
			}
			checkLockByValueSig(pass, fd)
			if fd.Body != nil {
				checkLockPairing(pass, fd)
				checkAddInGoroutine(pass, fd.Body)
			}
		}
	}
	return nil
}

// lockTypeName returns the sync type t carries by value ("sync.Mutex",
// ...), recursing through struct fields and arrays, or "" when t is
// copy-safe. Pointers are copy-safe by definition.
func lockTypeName(t types.Type) string {
	seen := map[types.Type]bool{}
	var rec func(t types.Type) string
	rec = func(t types.Type) string {
		if t == nil || seen[t] {
			return ""
		}
		seen[t] = true
		if named, ok := t.(*types.Named); ok {
			obj := named.Obj()
			if obj.Pkg() != nil && obj.Pkg().Path() == "sync" {
				switch obj.Name() {
				case "Mutex", "RWMutex", "WaitGroup", "Once", "Cond":
					return "sync." + obj.Name()
				}
			}
		}
		switch u := t.Underlying().(type) {
		case *types.Struct:
			for i := 0; i < u.NumFields(); i++ {
				if s := rec(u.Field(i).Type()); s != "" {
					return s
				}
			}
		case *types.Array:
			return rec(u.Elem())
		}
		return ""
	}
	return rec(t)
}

// checkLockByValueSig flags by-value receivers and parameters carrying a
// lock: every caller hands the method its own copy.
func checkLockByValueSig(pass *Pass, fd *ast.FuncDecl) {
	check := func(fields *ast.FieldList, what string) {
		if fields == nil {
			return
		}
		for _, field := range fields.List {
			tv, ok := pass.TypesInfo.Types[field.Type]
			if !ok {
				continue
			}
			lock := lockTypeName(tv.Type)
			if lock == "" || pass.Annot.Covers(field.Pos(), MarkerLockOk) {
				continue
			}
			pass.Reportf(field.Pos(),
				"take a pointer (*"+strings.TrimPrefix(lock, "sync.")+" or the pointer to the containing struct)",
				"%s passes %s by value: callers lock a copy, not the shared lock", what, lock)
		}
	}
	check(fd.Recv, "receiver")
	check(fd.Type.Params, "parameter")
}

// checkLockCopyAssign flags assignments whose right-hand side copies a
// lock-carrying value out of an existing variable (x, x.f, *p, x[i]).
// Composite literals and calls construct fresh values and are fine.
func checkLockCopyAssign(pass *Pass, as *ast.AssignStmt) {
	for i, rhs := range as.Rhs {
		if i >= len(as.Lhs) {
			break
		}
		switch ast.Unparen(rhs).(type) {
		case *ast.Ident, *ast.SelectorExpr, *ast.StarExpr, *ast.IndexExpr:
		default:
			continue
		}
		tv, ok := pass.TypesInfo.Types[rhs]
		if !ok {
			continue
		}
		lock := lockTypeName(tv.Type)
		if lock == "" || pass.Annot.Covers(as.Pos(), MarkerLockOk) {
			continue
		}
		pass.Reportf(as.Pos(),
			"copy a pointer to the value instead",
			"assignment copies %s: goroutines holding the copy and the original exclude nothing", lock)
	}
}

// checkLockCopyRange flags range loops whose value variable copies a
// lock-carrying element.
func checkLockCopyRange(pass *Pass, rng *ast.RangeStmt) {
	if rng.Value == nil {
		return
	}
	// `for _, v := range` defines v (Defs); `for _, v = range` reuses it
	// (Types has the expression).
	var t types.Type
	if id, ok := ast.Unparen(rng.Value).(*ast.Ident); ok && pass.TypesInfo.Defs[id] != nil {
		t = pass.TypesInfo.Defs[id].Type()
	} else if tv, ok := pass.TypesInfo.Types[rng.Value]; ok {
		t = tv.Type
	}
	lock := lockTypeName(t)
	if lock == "" || pass.Annot.Covers(rng.Pos(), MarkerLockOk) {
		return
	}
	pass.Reportf(rng.Pos(),
		"range over indices and take pointers to the elements",
		"range value copies %s out of each element", lock)
}

// syncMethodCall resolves call to a method declared in package sync,
// returning the receiver expression and method name.
func syncMethodCall(pass *Pass, call *ast.CallExpr) (recv ast.Expr, name string, ok bool) {
	sel, isSel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !isSel {
		return nil, "", false
	}
	fn, isFn := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !isFn || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return nil, "", false
	}
	sig, isSig := fn.Type().(*types.Signature)
	if !isSig || sig.Recv() == nil {
		return nil, "", false
	}
	return sel.X, fn.Name(), true
}

// checkLockPairing flags Lock/RLock calls in functions containing no
// Unlock/RUnlock on the same receiver at all. This is deliberately a
// whole-function count, not path-sensitive flow analysis: the engine
// convention is `defer mu.Unlock()` right after the Lock, and a function
// with zero unlocks leaks on every path. Lock-wrapper methods (a name
// ending in "Lock") are exempt — their unlock twin lives elsewhere.
func checkLockPairing(pass *Pass, fd *ast.FuncDecl) {
	if strings.HasSuffix(fd.Name.Name, "Lock") {
		return
	}
	type lockUse struct {
		positions []ast.Node
		unlocked  bool
	}
	pairs := map[string]*lockUse{} // "recvExpr\x00kind" -> uses
	key := func(recv ast.Expr, read bool) string {
		k := types.ExprString(recv)
		if read {
			k += "\x00r"
		}
		return k
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		recv, name, ok := syncMethodCall(pass, call)
		if !ok {
			return true
		}
		get := func(read bool) *lockUse {
			k := key(recv, read)
			if pairs[k] == nil {
				pairs[k] = &lockUse{}
			}
			return pairs[k]
		}
		switch name {
		case "Lock":
			get(false).positions = append(get(false).positions, call)
		case "Unlock":
			get(false).unlocked = true
		case "RLock":
			get(true).positions = append(get(true).positions, call)
		case "RUnlock":
			get(true).unlocked = true
		}
		return true
	})
	for _, use := range pairs {
		if use.unlocked {
			continue
		}
		for _, call := range use.positions {
			if pass.Annot.Covers(call.Pos(), MarkerLockOk) {
				continue
			}
			pass.Reportf(call.Pos(),
				"add `defer mu.Unlock()` after the Lock, or annotate //p2:lock-ok <why>",
				"Lock with no matching Unlock anywhere in %s: the next caller deadlocks", fd.Name.Name)
		}
	}
}

// checkAddInGoroutine flags WaitGroup.Add inside a go-statement literal:
// Wait can run before the scheduler ever starts the goroutine, so the Add
// is not ordered before the Wait it is meant to gate.
func checkAddInGoroutine(pass *Pass, body *ast.BlockStmt) {
	flagged := map[*ast.CallExpr]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		g, ok := n.(*ast.GoStmt)
		if !ok {
			return true
		}
		lit, ok := ast.Unparen(g.Call.Fun).(*ast.FuncLit)
		if !ok {
			return true
		}
		ast.Inspect(lit.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || flagged[call] {
				return true
			}
			// Add is sync.WaitGroup's only method of that name, so the
			// sync-package filter alone identifies it.
			_, name, ok := syncMethodCall(pass, call)
			if !ok || name != "Add" {
				return true
			}
			flagged[call] = true
			if pass.Annot.Covers(call.Pos(), MarkerLockOk) {
				return true
			}
			pass.Reportf(call.Pos(),
				"move the Add before the go statement, or annotate a happens-before-proven site //p2:lock-ok <why>",
				"WaitGroup.Add inside the spawned goroutine races Wait: Wait may pass before the goroutine runs")
			return true
		})
		return true
	})
}
