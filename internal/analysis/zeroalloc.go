package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// ZeroAlloc checks functions whose doc comment carries //p2:zeroalloc for
// allocating constructs, turning benchmark claims like BenchmarkCostEstimate's
// 0 allocs/op into a compile-time guarantee that also covers the cold
// branches a benchmark never exercises. Flagged constructs:
//
//   - make, new, composite literals
//   - append (growth allocates; amortized scratch growth is the one
//     blessed case — annotate the line //p2:alloc-ok <why>)
//   - string concatenation and string<->[]byte/[]rune conversions
//   - any fmt.* call
//   - function literals (closures allocate their environment)
//   - conversions and assignments into interface types (boxing)
//   - defer and go statements
//
// The check is per-function and syntactic: calls into other functions are
// trusted, so every helper on an annotated hot path must itself carry the
// annotation (the cost.Scorer step path annotates its whole call chain).
// Genuinely-cold or amortized lines escape with //p2:alloc-ok <why>.
var ZeroAlloc = &Analyzer{
	Name: "zeroalloc",
	Doc: "forbid allocating constructs (make/new/literals/append/string concat/fmt/closures/" +
		"interface boxing/defer/go) in functions marked //p2:zeroalloc; escape single lines with //p2:alloc-ok",
	Run: runZeroAlloc,
}

func runZeroAlloc(pass *Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil || !FuncMarked(fn, MarkerZeroalloc) {
				continue
			}
			checkZeroAllocBody(pass, fn)
		}
	}
	return nil
}

// report flags pos unless an alloc-ok marker covers its line.
func reportAlloc(pass *Pass, pos token.Pos, what string) {
	if pass.Annot.Covers(pos, MarkerAllocOk) {
		return
	}
	pass.Reportf(pos,
		"hoist into reusable scratch, move the cold branch into an unannotated helper, or annotate //p2:alloc-ok <why>",
		"%s allocates inside a //p2:zeroalloc function", what)
}

func checkZeroAllocBody(pass *Pass, fn *ast.FuncDecl) {
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			checkZeroAllocCall(pass, n)
		case *ast.CompositeLit:
			reportAlloc(pass, n.Pos(), "composite literal")
			return false // inner literals are part of the same allocation
		case *ast.FuncLit:
			reportAlloc(pass, n.Pos(), "function literal (closure environment)")
			return false // the closure body allocates onto the closure, not the hot path
		case *ast.BinaryExpr:
			if n.Op == token.ADD && isString(pass, n.X) {
				reportAlloc(pass, n.Pos(), "string concatenation")
			}
		case *ast.AssignStmt:
			checkZeroAllocAssign(pass, n)
		case *ast.DeferStmt:
			reportAlloc(pass, n.Pos(), "defer")
		case *ast.GoStmt:
			reportAlloc(pass, n.Pos(), "go statement (goroutine + closure)")
		}
		return true
	})
}

// checkZeroAllocCall flags allocating builtins, fmt calls, allocating
// conversions, and concrete arguments boxed into interface parameters.
func checkZeroAllocCall(pass *Pass, call *ast.CallExpr) {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		switch fun.Name {
		case "make", "new", "append":
			if isBuiltin(pass, fun) {
				reportAlloc(pass, call.Pos(), fun.Name)
				return
			}
		}
	case *ast.SelectorExpr:
		if selectorPkgPath(pass, fun) == "fmt" {
			reportAlloc(pass, call.Pos(), "fmt."+fun.Sel.Name)
			return
		}
	}
	// Conversions: string(b), []byte(s), []rune(s) allocate; T -> interface boxes.
	if tv, ok := pass.TypesInfo.Types[call.Fun]; ok && tv.IsType() && len(call.Args) == 1 {
		to := tv.Type
		from := pass.TypesInfo.Types[call.Args[0]].Type
		switch {
		case isInterface(to) && from != nil && !isInterface(from):
			reportAlloc(pass, call.Pos(), "conversion to interface (boxing)")
		case allocatingStringConversion(to, from):
			reportAlloc(pass, call.Pos(), "string conversion")
		}
		return
	}
	// Concrete arguments passed to interface parameters box.
	sig, ok := pass.TypesInfo.Types[call.Fun].Type.(*types.Signature)
	if !ok {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		if call.Ellipsis.IsValid() && i == len(call.Args)-1 {
			break // f(xs...) passes the slice through, no boxing
		}
		pi := i
		if sig.Variadic() && pi >= params.Len()-1 {
			pi = params.Len() - 1
		}
		if pi >= params.Len() {
			break
		}
		pt := params.At(pi).Type()
		if sig.Variadic() && pi == params.Len()-1 {
			if sl, ok := pt.(*types.Slice); ok {
				pt = sl.Elem()
			}
		}
		at := pass.TypesInfo.Types[arg].Type
		if isInterface(pt) && at != nil && !isInterface(at) && !isUntypedNil(pass, arg) {
			reportAlloc(pass, arg.Pos(), "interface argument (boxing)")
		}
	}
}

// checkZeroAllocAssign flags interface boxing through assignment and
// string-building through +=.
func checkZeroAllocAssign(pass *Pass, as *ast.AssignStmt) {
	if as.Tok == token.ADD_ASSIGN && len(as.Lhs) == 1 && isString(pass, as.Lhs[0]) {
		reportAlloc(pass, as.Pos(), "string += concatenation")
		return
	}
	if as.Tok != token.ASSIGN && as.Tok != token.DEFINE {
		return
	}
	if len(as.Lhs) != len(as.Rhs) {
		return
	}
	for i := range as.Lhs {
		lt := pass.TypesInfo.Types[as.Lhs[i]].Type
		if lt == nil {
			if id, ok := as.Lhs[i].(*ast.Ident); ok {
				if obj := pass.TypesInfo.Defs[id]; obj != nil {
					lt = obj.Type()
				}
			}
		}
		rt := pass.TypesInfo.Types[as.Rhs[i]].Type
		if lt != nil && rt != nil && isInterface(lt) && !isInterface(rt) && !isUntypedNil(pass, as.Rhs[i]) {
			reportAlloc(pass, as.Rhs[i].Pos(), "interface assignment (boxing)")
		}
	}
}

func isBuiltin(pass *Pass, id *ast.Ident) bool {
	_, ok := pass.TypesInfo.Uses[id].(*types.Builtin)
	return ok
}

func isString(pass *Pass, e ast.Expr) bool {
	tv, ok := pass.TypesInfo.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	b, ok := tv.Type.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isInterface(t types.Type) bool {
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Interface)
	return ok
}

func isUntypedNil(pass *Pass, e ast.Expr) bool {
	tv, ok := pass.TypesInfo.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	b, ok := tv.Type.(*types.Basic)
	return ok && b.Kind() == types.UntypedNil
}

// allocatingStringConversion reports string <-> []byte/[]rune conversions.
func allocatingStringConversion(to, from types.Type) bool {
	if from == nil {
		return false
	}
	toStr := isStringType(to)
	fromStr := isStringType(from)
	toSlice := isByteOrRuneSlice(to)
	fromSlice := isByteOrRuneSlice(from)
	return (toStr && fromSlice) || (toSlice && fromStr)
}

func isStringType(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isByteOrRuneSlice(t types.Type) bool {
	sl, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := sl.Elem().Underlying().(*types.Basic)
	return ok && (b.Kind() == types.Byte || b.Kind() == types.Rune || b.Kind() == types.Uint8 || b.Kind() == types.Int32)
}
