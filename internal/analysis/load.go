package analysis

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
)

// load.go is the self-contained package loader behind p2lint: the module
// bakes in no golang.org/x/tools dependency, so instead of go/packages it
// drives `go list -export -json -deps` for the build graph and typechecks
// the module's own packages from source with go/types, resolving standard-
// library imports through the compiler export data `go list -export`
// places in the build cache. Only non-test GoFiles are analyzed — the
// invariants guard the engine, and tests legitimately time, print and
// shuffle.

// listedPackage is the subset of `go list -json` output the loader reads.
type listedPackage struct {
	Dir        string
	ImportPath string
	Standard   bool
	Export     string
	GoFiles    []string
	DepOnly    bool
	Error      *struct {
		Err string
	}
}

// LoadedPackage is one typechecked package ready for analysis.
type LoadedPackage struct {
	Path      string
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info
	Annot     *Annotations
	// TypeErrors holds soft typechecking failures (fixture packages may
	// deliberately not compile under vet-grade strictness).
	TypeErrors []error
}

// Loader typechecks build-graph packages on demand.
type Loader struct {
	Fset *token.FileSet
	// Dir is the working directory `go list` runs in ("" = current).
	Dir string
	// Lenient tolerates type errors in analyzed packages (fixture mode).
	Lenient bool

	pkgs    map[string]*types.Package // by import path, source or export
	exports map[string]string         // import path -> export data file
	gc      types.ImporterFrom
}

// NewLoader returns a Loader rooted at dir.
func NewLoader(dir string) *Loader {
	l := &Loader{Fset: token.NewFileSet(), Dir: dir, pkgs: map[string]*types.Package{}, exports: map[string]string{}}
	l.gc = importer.ForCompiler(l.Fset, "gc", func(path string) (io.ReadCloser, error) {
		exp, ok := l.exports[path]
		if !ok || exp == "" {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(exp)
	}).(types.ImporterFrom)
	return l
}

// Import resolves one import path for go/types: module packages come from
// the source-typechecked cache, everything else from compiler export data.
func (l *Loader) Import(path string) (*types.Package, error) {
	if pkg, ok := l.pkgs[path]; ok {
		return pkg, nil
	}
	pkg, err := l.gc.Import(path)
	if err != nil {
		return nil, err
	}
	l.pkgs[path] = pkg
	return pkg, nil
}

// Load lists patterns with their full dependency graph and typechecks
// every non-standard package from source in dependency order, returning
// the packages the patterns name (build-graph-only dependencies are
// typechecked but not returned).
func (l *Loader) Load(patterns ...string) ([]*LoadedPackage, error) {
	listed, err := l.goList(patterns)
	if err != nil {
		return nil, err
	}
	var out []*LoadedPackage
	for _, lp := range listed {
		if lp.Standard {
			if lp.Export != "" {
				l.exports[lp.ImportPath] = lp.Export
			}
			continue
		}
		if lp.Error != nil && !l.Lenient {
			return nil, fmt.Errorf("%s: %s", lp.ImportPath, lp.Error.Err)
		}
		loaded, err := l.typecheck(lp)
		if err != nil {
			return nil, err
		}
		if !lp.DepOnly {
			out = append(out, loaded)
		}
	}
	return out, nil
}

// goList runs `go list -e -export -json -deps` over the patterns. -deps
// lists dependencies before dependents, which is exactly the order
// typecheck needs; -export materializes compiler export data for the
// standard library in the build cache.
func (l *Loader) goList(patterns []string) ([]listedPackage, error) {
	args := append([]string{"list", "-e", "-export", "-json", "-deps", "--"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = l.Dir
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("go list %s: %w\n%s", strings.Join(patterns, " "), err, stderr.String())
	}
	var listed []listedPackage
	dec := json.NewDecoder(&stdout)
	for {
		var lp listedPackage
		if err := dec.Decode(&lp); errors.Is(err, io.EOF) {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list: decoding output: %w", err)
		}
		listed = append(listed, lp)
	}
	return listed, nil
}

// typecheck parses and typechecks one module package from source.
func (l *Loader) typecheck(lp listedPackage) (*LoadedPackage, error) {
	var files []*ast.File
	for _, name := range lp.GoFiles {
		f, err := parser.ParseFile(l.Fset, filepath.Join(lp.Dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", lp.ImportPath, err)
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	var typeErrs []error
	conf := types.Config{
		Importer: l,
		Error:    func(err error) { typeErrs = append(typeErrs, err) },
	}
	pkg, err := conf.Check(lp.ImportPath, l.Fset, files, info)
	if err != nil && !l.Lenient {
		return nil, fmt.Errorf("typecheck %s: %w", lp.ImportPath, err)
	}
	if pkg != nil {
		l.pkgs[lp.ImportPath] = pkg
	}
	return &LoadedPackage{
		Path:       lp.ImportPath,
		Files:      files,
		Pkg:        pkg,
		TypesInfo:  info,
		Annot:      parseAnnotations(l.Fset, files),
		TypeErrors: typeErrs,
	}, nil
}

// Run loads the patterns and applies every analyzer to each package it
// accepts, returning the position-sorted diagnostics. The whole-run Module
// (facts, call graph, field index) is built once, every analyzer's Collect
// hook runs before any Run, and each pass carries the shared Module.
func Run(dir string, patterns []string, analyzers []*Analyzer) ([]Diagnostic, error) {
	l := NewLoader(dir)
	pkgs, err := l.Load(patterns...)
	if err != nil {
		return nil, err
	}
	var diags []Diagnostic
	if err := analyze(l.Fset, pkgs, analyzers, &diags); err != nil {
		return nil, err
	}
	sortDiagnostics(diags)
	return diags, nil
}

// analyze is the shared driver body behind Run and the fixture harness:
// build the Module, run Collect hooks, then run each accepting analyzer
// over each package.
func analyze(fset *token.FileSet, pkgs []*LoadedPackage, analyzers []*Analyzer, diags *[]Diagnostic) error {
	m := BuildModule(fset, pkgs)
	for _, a := range analyzers {
		if a.Collect != nil {
			a.Collect(m)
		}
	}
	for _, pkg := range pkgs {
		for _, a := range analyzers {
			if a.AppliesTo != nil && !a.AppliesTo(pkg.Path) {
				continue
			}
			pass := &Pass{
				Analyzer:  a,
				Fset:      fset,
				Files:     pkg.Files,
				Pkg:       pkg.Pkg,
				TypesInfo: pkg.TypesInfo,
				Annot:     pkg.Annot,
				Module:    m,
				diags:     diags,
			}
			if err := a.Run(pass); err != nil {
				return fmt.Errorf("%s on %s: %w", a.Name, pkg.Path, err)
			}
		}
	}
	return nil
}
