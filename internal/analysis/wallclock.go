package analysis

import (
	"go/ast"
	"go/types"
)

// WallClock forbids wall-clock reads and nondeterministic randomness
// inside the engine: predictions, rankings and emulated timings must be
// pure functions of the request, so time.Now (and friends) or the global
// math/rand state anywhere under p2/internal is either a determinism bug
// or pure reporting — and reporting sites carry //p2:timing-ok <why>.
var WallClock = &Analyzer{
	Name: "wallclock",
	Doc: "forbid time.Now/time.Since/timers and math/rand inside the engine; rankings must be " +
		"pure functions of the request, reporting-only timing sites carry //p2:timing-ok",
	AppliesTo: inEngine,
	Run:       runWallClock,
}

// wallClockFuncs are the banned package-level functions of package time.
// time.Duration arithmetic and formatting stay allowed — only reading the
// clock (or scheduling against it) is nondeterministic.
var wallClockFuncs = map[string]bool{
	"Now": true, "Since": true, "Until": true, "Sleep": true,
	"After": true, "Tick": true, "NewTimer": true, "NewTicker": true, "AfterFunc": true,
}

func runWallClock(pass *Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			pkgPath := selectorPkgPath(pass, sel)
			switch {
			case pkgPath == "time" && wallClockFuncs[sel.Sel.Name]:
				if pass.Annot.Covers(sel.Pos(), MarkerTimingOk) {
					return true
				}
				pass.Reportf(sel.Pos(),
					"derive the value from the request (model/emulator time), or annotate a reporting-only site //p2:timing-ok <why>",
					"time.%s reads the wall clock inside the engine", sel.Sel.Name)
			case pkgPath == "math/rand" || pkgPath == "math/rand/v2":
				if pass.Annot.Covers(sel.Pos(), MarkerTimingOk) {
					return true
				}
				pass.Reportf(sel.Pos(),
					"use a deterministic seed derived from the request (as netsim's jitter does), or annotate //p2:timing-ok <why>",
					"%s.%s is nondeterministic randomness inside the engine", pkgPath, sel.Sel.Name)
			}
			return true
		})
	}
	return nil
}

// selectorPkgPath resolves sel's receiver to an imported package path, or
// "" when the selector is not a package-qualified reference.
func selectorPkgPath(pass *Pass, sel *ast.SelectorExpr) string {
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return ""
	}
	pn, ok := pass.TypesInfo.Uses[id].(*types.PkgName)
	if !ok {
		return ""
	}
	return pn.Imported().Path()
}
