package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// CtxFlow enforces the PR 8 cancellation contract statically: inside the
// cancellable packages (engine internals plus the root p2 package),
//
//   - context.Background() and context.TODO() are banned — a fresh root
//     context severs the caller's deadline from everything downstream.
//     The documented boundary shims (Plan wrapping PlanCtx, RunStream
//     wrapping RunStreamCtx, ...) carry //p2:ctx-ok <why>;
//   - a function that holds a ctx must thread it: calling the
//     context-blind variant of a function whose FooCtx twin exists (the
//     module's Plan/PlanCtx, Run/RunCtx naming convention) silently drops
//     the deadline mid-chain and is flagged, cross-package and cross-file,
//     via the call graph and the CtxVariantFact its Collect publishes.
var CtxFlow = &Analyzer{
	Name: "ctxflow",
	Doc: "ban context.Background/TODO in cancellable packages and flag ctx-holding functions that " +
		"call the context-blind variant of a FooCtx pair; boundary shims carry //p2:ctx-ok",
	AppliesTo: inCancellable,
	Collect:   collectCtxVariants,
	Run:       runCtxFlow,
}

// CtxVariantFact is published on every module function fn for which a
// sibling fn.Name()+"Ctx" taking a context.Context exists in the same
// scope (package scope for functions, method set for methods).
type CtxVariantFact struct {
	Variant *types.Func
}

// AFact marks CtxVariantFact as a fact.
func (*CtxVariantFact) AFact() {}

// collectCtxVariants publishes a CtxVariantFact for every module function
// with a context-threading twin.
func collectCtxVariants(m *Module) {
	for _, fn := range m.CallGraph.Functions() {
		if v := ctxVariantOf(fn); v != nil {
			m.ExportObjectFact(fn, &CtxVariantFact{Variant: v})
		}
	}
}

// ctxVariantOf resolves fn's FooCtx twin: same receiver (for methods) or
// same package scope (for functions), name+"Ctx", taking a context.
func ctxVariantOf(fn *types.Func) *types.Func {
	if strings.HasSuffix(fn.Name(), "Ctx") || fn.Pkg() == nil {
		return nil
	}
	name := fn.Name() + "Ctx"
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return nil
	}
	var obj types.Object
	if recv := sig.Recv(); recv != nil {
		obj, _, _ = types.LookupFieldOrMethod(recv.Type(), true, fn.Pkg(), name)
	} else {
		obj = fn.Pkg().Scope().Lookup(name)
	}
	v, ok := obj.(*types.Func)
	if ok && takesContext(v.Type()) {
		return v
	}
	return nil
}

// takesContext reports whether t is a signature with a context.Context
// parameter.
func takesContext(t types.Type) bool {
	sig, ok := t.Underlying().(*types.Signature)
	if !ok {
		return false
	}
	for i := 0; i < sig.Params().Len(); i++ {
		if isContextType(sig.Params().At(i).Type()) {
			return true
		}
	}
	return false
}

// isContextType reports whether t is context.Context.
func isContextType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Context" && obj.Pkg() != nil && obj.Pkg().Path() == "context"
}

func runCtxFlow(pass *Pass) error {
	for _, f := range pass.Files {
		// Rule 1: no fresh context roots outside annotated shims.
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			if selectorPkgPath(pass, sel) != "context" {
				return true
			}
			if name := sel.Sel.Name; name == "Background" || name == "TODO" {
				if pass.Annot.Covers(sel.Pos(), MarkerCtxOk) {
					return true
				}
				pass.Reportf(sel.Pos(),
					"thread the caller's ctx, or annotate a documented boundary shim //p2:ctx-ok <why>",
					"context.%s creates a fresh context root inside a cancellable package, severing the caller's deadline", name)
			}
			return true
		})
		// Rule 2: ctx holders must thread it to FooCtx twins.
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func)
			if !ok || !takesContext(fn.Type()) {
				continue
			}
			for _, site := range pass.Module.CallGraph.CallsFrom(fn) {
				if takesContext(site.Callee.Type()) {
					continue // already threading (or callee takes its own ctx)
				}
				var variant CtxVariantFact
				if !pass.Module.ImportObjectFact(site.Callee, &variant) {
					continue // no Ctx twin: callee is genuinely context-free
				}
				if pass.Annot.Covers(site.Pos, MarkerCtxOk) {
					continue
				}
				pass.Reportf(site.Pos,
					"call "+variant.Variant.Name()+" with the ctx in scope, or annotate //p2:ctx-ok <why>",
					"%s holds a ctx but calls %s, whose context-threading variant %s exists — the deadline is dropped mid-chain",
					fn.Name(), site.Callee.Name(), variant.Variant.Name())
			}
		}
	}
	return nil
}
