package analysis

import (
	"go/ast"
	"go/types"
)

// FanOut flags unordered result collection in goroutine fan-outs. The
// engine's convention (plan.parallelEach, the rerank measurement stage) is
// that parallel results land by index into a preallocated slice — the one
// collection shape that is independent of goroutine scheduling. Two
// nondeterministic shapes are flagged:
//
//   - a goroutine appending to a slice captured from the enclosing
//     function (with or without a mutex — the lock serializes the appends
//     but not their order);
//   - a range over a channel whose body appends the received values to a
//     slice (multi-sender receive order is scheduling-dependent).
//
// Collections that are provably order-insensitive downstream — e.g. the
// planner's per-worker heaps, merged by a full sort — annotate the append
// with //p2:order-independent <why>.
var FanOut = &Analyzer{
	Name: "fanout",
	Doc: "flag unordered fan-out collection (append to a captured slice inside a goroutine, " +
		"append inside a channel drain); parallel results must land by index",
	AppliesTo: inCritical,
	Run:       runFanOut,
}

func runFanOut(pass *Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			checkFanOut(pass, fn.Body)
		}
	}
	return nil
}

func checkFanOut(pass *Pass, body *ast.BlockStmt) {
	// Local closures assigned to variables: `worker := func() {...}` later
	// launched as `go worker()`.
	localFns := map[types.Object]*ast.FuncLit{}
	ast.Inspect(body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != len(as.Rhs) {
			return true
		}
		for i := range as.Lhs {
			id, ok := as.Lhs[i].(*ast.Ident)
			if !ok {
				continue
			}
			lit, ok := as.Rhs[i].(*ast.FuncLit)
			if !ok {
				continue
			}
			if obj := pass.TypesInfo.Defs[id]; obj != nil {
				localFns[obj] = lit
			} else if obj := pass.TypesInfo.Uses[id]; obj != nil {
				localFns[obj] = lit
			}
		}
		return true
	})

	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.GoStmt:
			var lit *ast.FuncLit
			switch fun := ast.Unparen(n.Call.Fun).(type) {
			case *ast.FuncLit:
				lit = fun
			case *ast.Ident:
				lit = localFns[pass.TypesInfo.Uses[fun]]
			}
			if lit != nil {
				checkGoroutineAppends(pass, lit)
			}
		case *ast.RangeStmt:
			if tv, ok := pass.TypesInfo.Types[n.X]; ok {
				if _, isChan := tv.Type.Underlying().(*types.Chan); isChan {
					checkDrainAppends(pass, n)
				}
			}
		}
		return true
	})
}

// checkGoroutineAppends flags appends inside lit whose target is captured
// from the enclosing function.
func checkGoroutineAppends(pass *Pass, lit *ast.FuncLit) {
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		for i := range as.Rhs {
			if i >= len(as.Lhs) {
				break
			}
			if !isAppendCall(pass, as.Rhs[i]) {
				continue
			}
			obj := rootObject(pass, as.Lhs[i])
			if obj == nil {
				continue
			}
			// Captured = declared outside the literal's extent.
			if obj.Pos() >= lit.Pos() && obj.Pos() < lit.End() {
				continue
			}
			if pass.Annot.Covers(as.Pos(), MarkerOrderIndependent) {
				continue
			}
			pass.Reportf(as.Pos(),
				"preallocate the results slice and land by index (results[i] = ...), or annotate //p2:order-independent <why>",
				"goroutine appends to captured slice %s: arrival order depends on scheduling, not input order", obj.Name())
		}
		return true
	})
}

// checkDrainAppends flags appends inside a range-over-channel body.
func checkDrainAppends(pass *Pass, rng *ast.RangeStmt) {
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		for i := range as.Rhs {
			if i >= len(as.Lhs) {
				break
			}
			if !isAppendCall(pass, as.Rhs[i]) {
				continue
			}
			if pass.Annot.Covers(as.Pos(), MarkerOrderIndependent) {
				continue
			}
			pass.Reportf(as.Pos(),
				"have senders tag results with their input index and land by index, or annotate //p2:order-independent <why>",
				"channel drain collects results in receive order, which is scheduling-dependent with multiple senders")
		}
		return true
	})
}

// isAppendCall reports whether e is a call to the append builtin.
func isAppendCall(pass *Pass, e ast.Expr) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return false
	}
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	return ok && id.Name == "append" && isBuiltin(pass, id)
}

// rootObject resolves the base identifier of an assignable expression
// (x, x.f, x[i]) to its declared object.
func rootObject(pass *Pass, e ast.Expr) types.Object {
	for {
		switch v := ast.Unparen(e).(type) {
		case *ast.Ident:
			return pass.TypesInfo.Uses[v]
		case *ast.SelectorExpr:
			e = v.X
		case *ast.IndexExpr:
			e = v.X
		case *ast.StarExpr:
			e = v.X
		default:
			return nil
		}
	}
}
