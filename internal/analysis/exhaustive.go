package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// Exhaustive enforces closed-enum switch coverage: the module's mode and
// kind types (cost.Algorithm, plan.RerankMode, hierarchy.Kind, dsl's
// FormKind, collective's Op) follow the named-basic-type-plus-constants
// idiom, and a switch over one that neither covers every declared constant
// nor carries a default clause silently does nothing when the enum grows —
// the bug class PR 4 hit when halving-doubling joined Algorithm. A switch
// is accepted when it covers every constant of the type accessible from
// the switch's package (an unexported sentinel like a trailing numOps
// doesn't count cross-package) or when it has a default.
var Exhaustive = &Analyzer{
	Name: "exhaustive",
	Doc: "switches over module-defined enum types (named basic type with declared constants) must " +
		"cover every accessible constant or carry a default clause",
	Run: runExhaustive,
}

func runExhaustive(pass *Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sw, ok := n.(*ast.SwitchStmt)
			if !ok || sw.Tag == nil {
				return true
			}
			checkSwitch(pass, sw)
			return true
		})
	}
	return nil
}

func checkSwitch(pass *Pass, sw *ast.SwitchStmt) {
	tv, ok := pass.TypesInfo.Types[sw.Tag]
	if !ok || tv.Type == nil {
		return
	}
	enum, consts := enumConstants(pass, tv.Type)
	if len(consts) < 2 {
		return // not a closed enum: one constant is a flag, not a space
	}
	covered := map[types.Object]bool{}
	for _, clause := range sw.Body.List {
		cc, ok := clause.(*ast.CaseClause)
		if !ok {
			continue
		}
		if cc.List == nil {
			return // default clause: the switch handles growth explicitly
		}
		for _, e := range cc.List {
			if obj := constObjOf(pass, e); obj != nil {
				covered[obj] = true
			}
		}
	}
	var missing []string
	for _, c := range consts {
		if !covered[c] {
			missing = append(missing, c.Name())
		}
	}
	if len(missing) == 0 {
		return
	}
	pass.Reportf(sw.Pos(),
		"add the missing cases or a default clause",
		"switch over %s misses %s: a grown enum silently falls through here",
		enum.Obj().Name(), strings.Join(missing, ", "))
}

// enumConstants resolves t to a module-defined enum — a named type with
// basic underlying type — and its declared package-level constants that
// are accessible from the analyzed package, in declaration order.
func enumConstants(pass *Pass, t types.Type) (*types.Named, []*types.Const) {
	named, ok := t.(*types.Named)
	if !ok {
		return nil, nil
	}
	obj := named.Obj()
	if obj.Pkg() == nil || !pass.Module.DefinedInModule(obj) {
		return nil, nil
	}
	if _, basic := named.Underlying().(*types.Basic); !basic {
		return nil, nil
	}
	scope := obj.Pkg().Scope()
	samePkg := pass.Pkg != nil && pass.Pkg.Path() == obj.Pkg().Path()
	var consts []*types.Const
	for _, name := range scope.Names() { // Names() is sorted: deterministic
		c, ok := scope.Lookup(name).(*types.Const)
		if !ok || !types.Identical(c.Type(), named) {
			continue
		}
		if !samePkg && !c.Exported() {
			continue // unexported sentinels are invisible to this switch
		}
		consts = append(consts, c)
	}
	return named, consts
}

// constObjOf resolves a case expression to the declared constant it names.
func constObjOf(pass *Pass, e ast.Expr) types.Object {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		return pass.TypesInfo.Uses[e]
	case *ast.SelectorExpr:
		return pass.TypesInfo.Uses[e.Sel]
	}
	return nil
}
