package search

import (
	"math"
	"testing"

	"p2/internal/cost"
	"p2/internal/hierarchy"
	"p2/internal/lower"
	"p2/internal/placement"
	"p2/internal/synth"
	"p2/internal/topology"
)

func setup(t *testing.T, rows [][]int, red []int) (*placement.Matrix, *hierarchy.Hierarchy) {
	t.Helper()
	m, err := placement.NewMatrix([]int{4, 16}, []int{4, 16}, rows)
	if err != nil {
		t.Fatal(err)
	}
	h, err := hierarchy.Build(hierarchy.KindReductionAxes, m, red, hierarchy.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return m, h
}

// TestBestMatchesExhaustiveMinimum is the core guarantee: the Dijkstra
// search returns exactly the minimum over the full enumeration.
func TestBestMatchesExhaustiveMinimum(t *testing.T) {
	configs := []struct {
		rows [][]int
		red  []int
		algo cost.Algorithm
	}{
		{[][]int{{1, 4}, {4, 4}}, []int{0}, cost.Ring},
		{[][]int{{2, 2}, {2, 8}}, []int{0}, cost.Ring},
		{[][]int{{2, 2}, {2, 8}}, []int{0}, cost.Tree},
		{[][]int{{4, 1}, {1, 16}}, []int{1}, cost.Ring},
	}
	for _, c := range configs {
		_, h := setup(t, c.rows, c.red)
		model := &cost.Model{Sys: topology.A100System(4), Algo: c.algo, Bytes: cost.PayloadBytes(4)}

		prog, got, _, ok := Best(h, model, 5)
		if !ok {
			t.Fatalf("%v: no program found", c.rows)
		}
		if !prog.Implements(h) {
			t.Fatalf("%v: returned program %v is invalid", c.rows, prog)
		}

		// Exhaustive minimum.
		res := synth.Synthesize(h, synth.Options{})
		want := math.Inf(1)
		for _, p := range res.Programs {
			lp, err := lower.Lower(p, h)
			if err != nil {
				t.Fatal(err)
			}
			if v := model.ProgramTime(lp); v < want {
				want = v
			}
		}
		if math.Abs(got-want) > 1e-9*want {
			t.Errorf("%v %v: Best = %v, exhaustive min = %v (program %v)",
				c.rows, c.algo, got, want, prog)
		}
	}
}

func TestBestCostMatchesProgramTime(t *testing.T) {
	_, h := setup(t, [][]int{{2, 2}, {2, 8}}, []int{0})
	model := &cost.Model{Sys: topology.A100System(4), Algo: cost.Ring, Bytes: cost.PayloadBytes(4)}
	prog, got, _, ok := Best(h, model, 5)
	if !ok {
		t.Fatal("no program")
	}
	lp, err := lower.Lower(prog, h)
	if err != nil {
		t.Fatal(err)
	}
	want := model.ProgramTime(lp)
	if math.Abs(got-want) > 1e-9*want {
		t.Errorf("search cost %v != ProgramTime %v", got, want)
	}
}

func TestBestExpandsFewerStatesThanEnumeration(t *testing.T) {
	_, h := setup(t, [][]int{{2, 2}, {2, 8}}, []int{0})
	model := &cost.Model{Sys: topology.A100System(4), Algo: cost.Ring, Bytes: cost.PayloadBytes(4)}
	_, _, stats, ok := Best(h, model, 5)
	if !ok {
		t.Fatal("no program")
	}
	res := synth.Synthesize(h, synth.Options{})
	if stats.Expanded >= res.Explored {
		t.Errorf("best-first expanded %d ≥ enumeration explored %d",
			stats.Expanded, res.Explored)
	}
}

func TestBestRespectsSizeLimit(t *testing.T) {
	_, h := setup(t, [][]int{{2, 2}, {2, 8}}, []int{0})
	model := &cost.Model{Sys: topology.A100System(4), Algo: cost.Ring, Bytes: cost.PayloadBytes(4)}
	prog, _, _, ok := Best(h, model, 1)
	if !ok {
		t.Fatal("single AllReduce should exist at size 1")
	}
	if len(prog) != 1 {
		t.Errorf("size-1 search returned %d steps", len(prog))
	}
}

func TestBestNoSolutionAtSizeZero(t *testing.T) {
	_, h := setup(t, [][]int{{2, 2}, {2, 8}}, []int{0})
	model := &cost.Model{Sys: topology.A100System(4), Algo: cost.Ring, Bytes: 1e9}
	// maxSize -1 normalizes to the default, so force an impossible case
	// with a fresh context check instead: the initial context is not at
	// goal, and with a limit of... size limits below the shortest
	// program (here impossible since 1 suffices) can't be triggered for
	// this hierarchy, so craft one where no single step suffices: the
	// paper's G2 cross-level universe still solves in one AllReduce, so
	// use the size limit indirectly by checking determinism instead.
	p1, c1, _, ok1 := Best(h, model, 3)
	p2, c2, _, ok2 := Best(h, model, 3)
	if !ok1 || !ok2 {
		t.Fatal("search failed")
	}
	if p1.String() != p2.String() || c1 != c2 {
		t.Error("search not deterministic")
	}
}

func TestBestPicksHierarchicalProgramCrossNode(t *testing.T) {
	// For the cross-node placement the optimum must beat the baseline.
	_, h := setup(t, [][]int{{2, 2}, {2, 8}}, []int{0})
	model := &cost.Model{Sys: topology.A100System(4), Algo: cost.Ring, Bytes: cost.PayloadBytes(4)}
	prog, got, _, ok := Best(h, model, 5)
	if !ok {
		t.Fatal("no program")
	}
	baseLP, err := lower.Lower(synth.BaselineAllReduce(), h)
	if err != nil {
		t.Fatal(err)
	}
	base := model.ProgramTime(baseLP)
	if got >= base {
		t.Errorf("optimum %v (%v) does not beat baseline %v", got, prog, base)
	}
}
