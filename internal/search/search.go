// Package search provides cost-guided program synthesis: instead of
// enumerating every valid reduction program and ranking afterwards (the
// paper's pipeline, package synth), it runs a uniform-cost (Dijkstra)
// search over the context graph and returns only the cheapest program
// under an analytic cost model. Step costs are non-negative, so the first
// goal expansion is model-optimal; memoization is keyed by (context,
// program length) so a cheap long prefix cannot shadow a costlier short
// one that still has budget to extend.
//
// This is an extension beyond the paper (which notes its enumerative
// search is already fast); it matters when program-size limits grow or
// when only the optimum is needed.
package search

import (
	"container/heap"

	"p2/internal/collective"
	"p2/internal/cost"
	"p2/internal/dsl"
	"p2/internal/hierarchy"
	"p2/internal/lower"
	"p2/internal/synth"
)

// Stats reports search effort.
type Stats struct {
	// Expanded counts contexts popped from the frontier.
	Expanded int
	// Generated counts successor contexts pushed.
	Generated int
}

// Best finds a minimum-predicted-cost program of at most maxSize steps
// (0 means the paper's limit of 5). It returns ok=false when no program
// within the limit implements the reduction.
func Best(h *hierarchy.Hierarchy, model *cost.Model, maxSize int) (prog dsl.Program, total float64, stats Stats, ok bool) {
	if maxSize <= 0 {
		maxSize = 5
	}
	cands := synth.Candidates(h)
	groups := make([][][]int, len(cands))
	lowered := make([][][]int, len(cands))
	for i, in := range cands {
		groups[i] = in.Groups(h)
		lowered[i] = lowerGroups(h, groups[i])
	}

	targets := make([]*collective.State, h.K())
	for u := 0; u < h.K(); u++ {
		targets[u] = dsl.TargetState(h, u)
	}
	atGoal := func(ctx dsl.Context) bool {
		for u, st := range ctx {
			if !st.Equal(targets[u]) {
				return false
			}
		}
		return true
	}
	within := func(ctx dsl.Context) bool {
		for u, st := range ctx {
			if !st.SubsetOf(targets[u]) {
				return false
			}
		}
		return true
	}

	type node struct {
		ctx  dsl.Context
		prog dsl.Program
		g    float64
	}
	pq := &nodeHeap{}
	heap.Push(pq, item{cost: 0, seq: 0, n: node{ctx: dsl.NewContext(h)}})
	bestG := map[string]float64{}
	seq := 1

	for pq.Len() > 0 {
		it := heap.Pop(pq).(item)
		n := it.n.(node)
		stats.Expanded++
		if atGoal(n.ctx) {
			return n.prog, n.g, stats, true
		}
		if len(n.prog) == maxSize {
			continue
		}
		if prev, seen := bestG[ctxKey(n.ctx, len(n.prog))]; seen && prev < n.g {
			continue // stale frontier entry
		}
		for ci, in := range cands {
			next, err := applyWithGroups(n.ctx, in, groups[ci])
			if err != nil {
				continue
			}
			if !within(next) {
				continue
			}
			rows := n.ctx[groups[ci][0][0]].NumRows()
			step := lower.Step{
				Op:      in.Op,
				Groups:  lowered[ci],
				Rows:    rows,
				RowsOut: rows, // unused by StepTime
				K:       h.K(),
			}
			g := n.g + model.StepTime(step)
			nk := ctxKey(next, len(n.prog)+1)
			if prev, seen := bestG[nk]; seen && prev <= g {
				continue
			}
			bestG[nk] = g
			np := make(dsl.Program, 0, len(n.prog)+1)
			np = append(np, n.prog...)
			np = append(np, in)
			heap.Push(pq, item{cost: g, seq: seq, n: node{ctx: next, prog: np, g: g}})
			seq++
			stats.Generated++
		}
	}
	return nil, 0, stats, false
}

// lowerGroups replicates universe groups over the hierarchy's replicas.
func lowerGroups(h *hierarchy.Hierarchy, gs [][]int) [][]int {
	reps := h.Replicas()
	out := make([][]int, 0, len(gs)*reps)
	for r := 0; r < reps; r++ {
		for _, g := range gs {
			pg := make([]int, len(g))
			for gi, u := range g {
				pg[gi] = h.Leaves[u][r]
			}
			out = append(out, pg)
		}
	}
	return out
}

// applyWithGroups applies an instruction using precomputed groups.
func applyWithGroups(ctx dsl.Context, in dsl.Instruction, groups [][]int) (dsl.Context, error) {
	out := ctx.Clone()
	for _, g := range groups {
		states := make([]*collective.State, len(g))
		for i, u := range g {
			states[i] = ctx[u]
		}
		res, err := collective.Apply(in.Op, states)
		if err != nil {
			return nil, err
		}
		for i, u := range g {
			out[u] = res[i]
		}
	}
	return out, nil
}

// ctxKey packs a context and depth into a map key.
func ctxKey(ctx dsl.Context, depth int) string {
	var words []uint64
	buf := make([]byte, 0, 64)
	buf = append(buf, byte(depth))
	for _, st := range ctx {
		words = st.AppendWords(words[:0])
		for _, w := range words {
			buf = append(buf,
				byte(w), byte(w>>8), byte(w>>16), byte(w>>24),
				byte(w>>32), byte(w>>40), byte(w>>48), byte(w>>56))
		}
	}
	return string(buf)
}

// item orders by cost with a sequence tiebreak for determinism.
type item struct {
	cost float64
	seq  int
	n    any
}

type nodeHeap []item

func (h nodeHeap) Len() int { return len(h) }
func (h nodeHeap) Less(i, j int) bool {
	//p2:nan-ok node costs are model predictions, never NaN (finite or +Inf on down links)
	if h[i].cost != h[j].cost {
		return h[i].cost < h[j].cost
	}
	return h[i].seq < h[j].seq
}
func (h nodeHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *nodeHeap) Push(x any)   { *h = append(*h, x.(item)) }
func (h *nodeHeap) Pop() any {
	old := *h
	n := len(old)
	it := old[n-1]
	*h = old[:n-1]
	return it
}
