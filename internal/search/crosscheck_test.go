package search

import (
	"math"
	"testing"

	"p2/internal/cost"
	"p2/internal/hierarchy"
	"p2/internal/lower"
	"p2/internal/placement"
	"p2/internal/synth"
	"p2/internal/topology"
)

// TestBestMatchesEnumeration cross-checks the cost-guided Dijkstra search
// against ground truth: for a grid of (system, axes, reduceAxes) and
// every placement, the search optimum must equal the minimum predicted
// cost over the full synth.Synthesize enumeration.
func TestBestMatchesEnumeration(t *testing.T) {
	grid := []struct {
		name string
		sys  *topology.System
		axes []int
		red  []int
		algo cost.Algorithm
	}{
		{"fig2a-ring", topology.Fig2aSystem(), []int{4, 4}, []int{0}, cost.Ring},
		{"fig2a-axis1", topology.Fig2aSystem(), []int{4, 4}, []int{1}, cost.Ring},
		{"fig2a-tree", topology.Fig2aSystem(), []int{4, 4}, []int{0}, cost.Tree},
		{"fig2a-multi", topology.Fig2aSystem(), []int{2, 2, 4}, []int{0, 2}, cost.Ring},
		{"a100-2-ring", topology.A100System(2), []int{8, 4}, []int{0}, cost.Ring},
		{"a100-2-multi", topology.A100System(2), []int{2, 2, 8}, []int{0, 2}, cost.Ring},
		{"v100-2-tree", topology.V100System(2), []int{4, 4}, []int{1}, cost.Tree},
	}
	const maxSize = 4
	for _, tc := range grid {
		t.Run(tc.name, func(t *testing.T) {
			matrices, err := placement.Enumerate(tc.sys.Hierarchy(), tc.axes)
			if err != nil {
				t.Fatal(err)
			}
			model := &cost.Model{Sys: tc.sys, Algo: tc.algo,
				Bytes: cost.PayloadBytes(tc.sys.Levels[0].Count)}
			for _, m := range matrices {
				h, err := hierarchy.Build(hierarchy.KindReductionAxes, m, tc.red,
					hierarchy.Options{Collapse: len(tc.red) > 1})
				if err != nil {
					t.Fatal(err)
				}
				prog, total, _, ok := Best(h, model, maxSize)
				res := synth.Synthesize(h, synth.Options{MaxSize: maxSize})
				if !ok {
					if len(res.Programs) != 0 {
						t.Errorf("matrix %v: search found nothing but enumeration found %d programs",
							m, len(res.Programs))
					}
					continue
				}
				// Ground truth: cheapest enumerated program.
				best := math.Inf(1)
				for _, p := range res.Programs {
					lp, err := lower.Lower(p, h)
					if err != nil {
						t.Fatal(err)
					}
					if c := model.ProgramTime(lp); c < best {
						best = c
					}
				}
				if math.IsInf(best, 1) {
					t.Errorf("matrix %v: search found %v but enumeration found no programs", m, prog)
					continue
				}
				if rel := math.Abs(total-best) / best; rel > 1e-12 {
					t.Errorf("matrix %v: search optimum %.15g != enumeration minimum %.15g (rel %g, program %v)",
						m, total, best, rel, prog)
				}
				// The search's claimed total must match re-scoring its own
				// program through the standard lowering pipeline.
				lp, err := lower.Lower(prog, h)
				if err != nil {
					t.Fatalf("matrix %v: search program %v fails to lower: %v", m, prog, err)
				}
				if re := model.ProgramTime(lp); math.Abs(re-total)/total > 1e-12 {
					t.Errorf("matrix %v: search total %.15g != re-scored %.15g for %v",
						m, total, re, prog)
				}
			}
		})
	}
}
