// Package plot renders simple ASCII charts for experiment figures — enough
// to reproduce the shape of the paper's Figure 11 (measurement vs.
// simulation series) in a terminal or a text report, with linear or
// logarithmic y axes.
package plot

import (
	"fmt"
	"math"
	"strings"
)

// Series is one plotted sequence; point i is drawn at x-position i.
type Series struct {
	// Name appears in the legend.
	Name string
	// Marker is the glyph used for the series' points.
	Marker byte
	// Values are the y values; NaN entries are skipped.
	Values []float64
}

// Options control chart geometry.
type Options struct {
	// Width and Height are the plot-area dimensions in characters
	// (defaults 64×16).
	Width, Height int
	// LogY switches the y axis to log10 scale (values must be > 0).
	LogY bool
	// YLabel annotates the y axis.
	YLabel string
	// XLabel annotates the x axis.
	XLabel string
}

const (
	defaultWidth  = 64
	defaultHeight = 16
)

// Chart renders the series into an ASCII chart. Later series overdraw
// earlier ones where points collide.
func Chart(title string, series []Series, opts Options) string {
	if opts.Width <= 0 {
		opts.Width = defaultWidth
	}
	if opts.Height <= 0 {
		opts.Height = defaultHeight
	}
	maxN := 0
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, s := range series {
		if len(s.Values) > maxN {
			maxN = len(s.Values)
		}
		for _, v := range s.Values {
			//p2:nan-ok the IsNaN arm already routes NaN to the skip branch
			if math.IsNaN(v) || (opts.LogY && v <= 0) {
				continue
			}
			if v < lo {
				lo = v
			}
			if v > hi {
				hi = v
			}
		}
	}
	if maxN == 0 || math.IsInf(lo, 1) {
		return title + "\n(no data)\n"
	}
	yf := func(v float64) float64 { return v }
	if opts.LogY {
		yf = math.Log10
		if lo <= 0 {
			lo = math.SmallestNonzeroFloat64
		}
	}
	ylo, yhi := yf(lo), yf(hi)
	//p2:nan-ok lo/hi are minima/maxima over IsNaN-filtered values
	if yhi == ylo {
		yhi = ylo + 1
	}

	grid := make([][]byte, opts.Height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", opts.Width))
	}
	for _, s := range series {
		for i, v := range s.Values {
			//p2:nan-ok the IsNaN arm already routes NaN to the skip branch
			if math.IsNaN(v) || (opts.LogY && v <= 0) {
				continue
			}
			x := 0
			if maxN > 1 {
				x = i * (opts.Width - 1) / (maxN - 1)
			}
			yFrac := (yf(v) - ylo) / (yhi - ylo)
			row := opts.Height - 1 - int(math.Round(yFrac*float64(opts.Height-1)))
			if row < 0 {
				row = 0
			}
			if row >= opts.Height {
				row = opts.Height - 1
			}
			grid[row][x] = s.Marker
		}
	}

	var b strings.Builder
	if title != "" {
		b.WriteString(title)
		b.WriteByte('\n')
	}
	axisLabel := func(frac float64) string {
		v := ylo + frac*(yhi-ylo)
		if opts.LogY {
			v = math.Pow(10, v)
		}
		return fmt.Sprintf("%9.3g", v)
	}
	for r := 0; r < opts.Height; r++ {
		switch r {
		case 0:
			b.WriteString(axisLabel(1))
		case opts.Height - 1:
			b.WriteString(axisLabel(0))
		case (opts.Height - 1) / 2:
			b.WriteString(axisLabel(0.5))
		default:
			b.WriteString(strings.Repeat(" ", 9))
		}
		b.WriteString(" |")
		b.Write(grid[r])
		b.WriteByte('\n')
	}
	b.WriteString(strings.Repeat(" ", 10) + "+" + strings.Repeat("-", opts.Width) + "\n")
	if opts.XLabel != "" {
		b.WriteString(strings.Repeat(" ", 11) + opts.XLabel + "\n")
	}
	legend := make([]string, 0, len(series))
	for _, s := range series {
		legend = append(legend, fmt.Sprintf("%c = %s", s.Marker, s.Name))
	}
	if opts.YLabel != "" {
		legend = append(legend, "y: "+opts.YLabel)
	}
	b.WriteString(strings.Repeat(" ", 11) + strings.Join(legend, "   ") + "\n")
	return b.String()
}
