package plot

import (
	"math"
	"strings"
	"testing"
)

func TestChartBasic(t *testing.T) {
	out := Chart("demo", []Series{
		{Name: "measured", Marker: '*', Values: []float64{1, 2, 3, 4, 5}},
		{Name: "predicted", Marker: 'x', Values: []float64{1.5, 2.5, 2.8, 4.2, 4.9}},
	}, Options{Width: 40, Height: 10, XLabel: "rank", YLabel: "seconds"})
	if !strings.Contains(out, "demo") {
		t.Error("title missing")
	}
	if !strings.Contains(out, "*") || !strings.Contains(out, "x") {
		t.Error("markers missing")
	}
	if !strings.Contains(out, "* = measured") || !strings.Contains(out, "x = predicted") {
		t.Error("legend missing")
	}
	if !strings.Contains(out, "rank") || !strings.Contains(out, "seconds") {
		t.Error("axis labels missing")
	}
	lines := strings.Split(out, "\n")
	// title + height rows + axis + xlabel + legend + trailing empty
	if len(lines) != 1+10+1+1+1+1 {
		t.Errorf("line count = %d", len(lines))
	}
}

func TestChartMonotoneSeriesTopBottom(t *testing.T) {
	out := Chart("", []Series{
		{Name: "s", Marker: '#', Values: []float64{0, 10}},
	}, Options{Width: 20, Height: 5})
	lines := strings.Split(out, "\n")
	// Max value is plotted on the first row (rightmost), min on the last
	// plot row (leftmost).
	if !strings.Contains(lines[0], "#") {
		t.Errorf("max not on top row: %q", lines[0])
	}
	if !strings.Contains(lines[4], "#") {
		t.Errorf("min not on bottom row: %q", lines[4])
	}
}

func TestChartLogScale(t *testing.T) {
	out := Chart("log", []Series{
		{Name: "s", Marker: 'o', Values: []float64{0.001, 1, 1000}},
	}, Options{Width: 30, Height: 9, LogY: true})
	// On a log axis the middle value (1) lands on the middle row.
	lines := strings.Split(out, "\n")
	if !strings.Contains(lines[1+4], "o") {
		t.Errorf("log midpoint misplaced:\n%s", out)
	}
}

func TestChartEmpty(t *testing.T) {
	out := Chart("empty", nil, Options{})
	if !strings.Contains(out, "no data") {
		t.Errorf("empty chart = %q", out)
	}
	out = Chart("nan", []Series{{Name: "s", Marker: '*', Values: []float64{math.NaN()}}}, Options{})
	if !strings.Contains(out, "no data") {
		t.Errorf("all-NaN chart = %q", out)
	}
}

func TestChartSinglePoint(t *testing.T) {
	out := Chart("one", []Series{{Name: "s", Marker: '*', Values: []float64{42}}}, Options{Width: 10, Height: 4})
	if !strings.Contains(out, "*") {
		t.Error("single point missing")
	}
}

func TestChartDefaultDimensions(t *testing.T) {
	out := Chart("", []Series{{Name: "s", Marker: '*', Values: []float64{1, 2}}}, Options{})
	lines := strings.Split(out, "\n")
	if len(lines) < defaultHeight {
		t.Errorf("default height not applied: %d lines", len(lines))
	}
	for _, l := range lines {
		if strings.Contains(l, "|") && len(l) < defaultWidth {
			t.Errorf("default width not applied: %q", l)
		}
	}
}

func TestChartSkipsNonPositiveOnLog(t *testing.T) {
	out := Chart("", []Series{
		{Name: "s", Marker: '*', Values: []float64{-5, 1, 10}},
	}, Options{Width: 12, Height: 4, LogY: true})
	grid := out[:strings.LastIndex(out, "+")] // strip axis footer and legend
	if strings.Count(grid, "*") != 2 {
		t.Errorf("expected 2 plotted points, chart:\n%s", out)
	}
}
