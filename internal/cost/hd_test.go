package cost

import (
	"testing"

	"p2/internal/dsl"
	"p2/internal/hierarchy"
	"p2/internal/lower"
	"p2/internal/placement"
	"p2/internal/synth"
	"p2/internal/topology"
)

// lowerForMatrix lowers a program for an already-built matrix.
func lowerForMatrix(t *testing.T, m *placement.Matrix, red []int, p dsl.Program) *lower.Program {
	t.Helper()
	h, err := hierarchy.Build(hierarchy.KindReductionAxes, m, red, hierarchy.Options{})
	if err != nil {
		t.Fatal(err)
	}
	lp, err := lower.Lower(p, h)
	if err != nil {
		t.Fatal(err)
	}
	return lp
}

func TestHalvingDoublingWithinNodeMatchesRingBandwidth(t *testing.T) {
	// HD and ring are both bandwidth-optimal: within one node (uniform
	// bandwidth), the total traffic per device uplink is identical —
	// 2·(g-1)/g·D in and out. Times should agree closely.
	lp := lowerFor(t, []int{4, 16}, []int{4, 16}, [][]int{{1, 4}, {4, 4}}, []int{0},
		synth.BaselineAllReduce())
	sys := topology.A100System(4)
	ring := &Model{Sys: sys, Algo: Ring, Bytes: PayloadBytes(4)}
	hd := &Model{Sys: sys, Algo: HalvingDoubling, Bytes: PayloadBytes(4)}
	r, h := ring.ProgramTime(lp), hd.ProgramTime(lp)
	if h < r*0.9 || h > r*1.1 {
		t.Errorf("HD within node = %v, ring = %v; want within 10%%", h, r)
	}
}

func TestHalvingDoublingAllRemoteMatchesRing(t *testing.T) {
	// For a group with one member per node, every HD exchange crosses the
	// NIC and the total bytes equal the ring's (both are
	// bandwidth-optimal), so large-payload times differ only by the
	// latency term (HD has fewer rounds).
	lp := lowerFor(t, []int{4, 16}, []int{4, 16}, [][]int{{4, 1}, {1, 16}}, []int{0},
		synth.BaselineAllReduce())
	sys := topology.A100System(4)
	ring := &Model{Sys: sys, Algo: Ring, Bytes: PayloadBytes(4)}
	hd := &Model{Sys: sys, Algo: HalvingDoubling, Bytes: PayloadBytes(4)}
	h, r := hd.ProgramTime(lp), ring.ProgramTime(lp)
	if h > r {
		t.Errorf("HD all-remote (%v) should not exceed ring (%v)", h, r)
	}
	if h < r*0.99 {
		t.Errorf("HD all-remote (%v) should be within 1%% of ring (%v)", h, r)
	}
}

func TestHalvingDoublingExploitsLocality(t *testing.T) {
	// For a mixed local/remote group ([[2 2] [2 8]]: 2 GPUs per node in
	// each group), HD's early small exchanges stay local and only D/4
	// halves cross the NIC — like the synthesized hierarchical programs,
	// it beats the hierarchy-oblivious ring.
	lp := lowerFor(t, []int{4, 16}, []int{4, 16}, [][]int{{2, 2}, {2, 8}}, []int{0},
		synth.BaselineAllReduce())
	sys := topology.A100System(4)
	ring := &Model{Sys: sys, Algo: Ring, Bytes: PayloadBytes(4)}
	hd := &Model{Sys: sys, Algo: HalvingDoubling, Bytes: PayloadBytes(4)}
	h, r := hd.ProgramTime(lp), ring.ProgramTime(lp)
	if h >= r*0.9 {
		t.Errorf("HD mixed-group (%v) should clearly beat ring (%v)", h, r)
	}
}

func TestHalvingDoublingWinsLatencyBound(t *testing.T) {
	// With a tiny payload the latency term dominates: HD has 2·log2(g)
	// rounds vs ring's 2(g-1).
	lp := lowerFor(t, []int{4, 16}, []int{4, 16}, [][]int{{4, 1}, {1, 16}}, []int{0},
		synth.BaselineAllReduce())
	sys := topology.A100System(4)
	ring := &Model{Sys: sys, Algo: Ring, Bytes: 64}
	hd := &Model{Sys: sys, Algo: HalvingDoubling, Bytes: 64}
	if h, r := hd.ProgramTime(lp), ring.ProgramTime(lp); h >= r {
		t.Errorf("HD latency-bound (%v) should beat ring (%v)", h, r)
	}
}

func TestHalvingDoublingFallsBackOnNonPow2(t *testing.T) {
	// A 3-wide group cannot run HD; the model must fall back to ring
	// rather than panic or miscount.
	m := placement.MustMatrix([]int{3, 4}, []int{3, 4}, [][]int{{3, 1}, {1, 4}})
	sys, err := topology.New("odd",
		[]topology.Level{{Name: "node", Count: 3}, {Name: "gpu", Count: 4}},
		[]topology.Link{
			{Name: "NIC", Bandwidth: 8e9, Latency: 2e-5},
			{Name: "NVL", Bandwidth: 200e9, Latency: 2e-6},
		})
	if err != nil {
		t.Fatal(err)
	}
	_ = sys
	lpFull := lowerForMatrix(t, m, []int{0}, synth.BaselineAllReduce())
	ring := &Model{Sys: sys, Algo: Ring, Bytes: 1e9}
	hd := &Model{Sys: sys, Algo: HalvingDoubling, Bytes: 1e9}
	if r, h := ring.ProgramTime(lpFull), hd.ProgramTime(lpFull); r != h {
		t.Errorf("non-pow2 HD (%v) should equal ring (%v)", h, r)
	}
}

func TestParseHalvingDoubling(t *testing.T) {
	a, err := ParseAlgorithm("HalvingDoubling")
	if err != nil || a != HalvingDoubling {
		t.Errorf("ParseAlgorithm = %v, %v", a, err)
	}
	if HalvingDoubling.String() != "HalvingDoubling" {
		t.Error("String mismatch")
	}
	if len(ExtendedAlgorithms) != 3 {
		t.Error("ExtendedAlgorithms should have 3 entries")
	}
}
