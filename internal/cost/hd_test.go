package cost

import (
	"fmt"
	"math"
	"testing"

	"p2/internal/collective"
	"p2/internal/dsl"
	"p2/internal/hierarchy"
	"p2/internal/lower"
	"p2/internal/placement"
	"p2/internal/synth"
	"p2/internal/topology"
)

// lowerForMatrix lowers a program for an already-built matrix.
func lowerForMatrix(t *testing.T, m *placement.Matrix, red []int, p dsl.Program) *lower.Program {
	t.Helper()
	h, err := hierarchy.Build(hierarchy.KindReductionAxes, m, red, hierarchy.Options{})
	if err != nil {
		t.Fatal(err)
	}
	lp, err := lower.Lower(p, h)
	if err != nil {
		t.Fatal(err)
	}
	return lp
}

func TestHalvingDoublingWithinNodeMatchesRingBandwidth(t *testing.T) {
	// HD and ring are both bandwidth-optimal: within one node (uniform
	// bandwidth), the total traffic per device uplink is identical —
	// 2·(g-1)/g·D in and out. Times should agree closely.
	lp := lowerFor(t, []int{4, 16}, []int{4, 16}, [][]int{{1, 4}, {4, 4}}, []int{0},
		synth.BaselineAllReduce())
	sys := topology.A100System(4)
	ring := &Model{Sys: sys, Algo: Ring, Bytes: PayloadBytes(4)}
	hd := &Model{Sys: sys, Algo: HalvingDoubling, Bytes: PayloadBytes(4)}
	r, h := ring.ProgramTime(lp), hd.ProgramTime(lp)
	if h < r*0.9 || h > r*1.1 {
		t.Errorf("HD within node = %v, ring = %v; want within 10%%", h, r)
	}
}

func TestHalvingDoublingAllRemoteMatchesRing(t *testing.T) {
	// For a group with one member per node, every HD exchange crosses the
	// NIC and the total bytes equal the ring's (both are
	// bandwidth-optimal), so large-payload times differ only by the
	// latency term (HD has fewer rounds).
	lp := lowerFor(t, []int{4, 16}, []int{4, 16}, [][]int{{4, 1}, {1, 16}}, []int{0},
		synth.BaselineAllReduce())
	sys := topology.A100System(4)
	ring := &Model{Sys: sys, Algo: Ring, Bytes: PayloadBytes(4)}
	hd := &Model{Sys: sys, Algo: HalvingDoubling, Bytes: PayloadBytes(4)}
	h, r := hd.ProgramTime(lp), ring.ProgramTime(lp)
	if h > r {
		t.Errorf("HD all-remote (%v) should not exceed ring (%v)", h, r)
	}
	if h < r*0.99 {
		t.Errorf("HD all-remote (%v) should be within 1%% of ring (%v)", h, r)
	}
}

func TestHalvingDoublingExploitsLocality(t *testing.T) {
	// For a mixed local/remote group ([[2 2] [2 8]]: 2 GPUs per node in
	// each group), HD's early small exchanges stay local and only D/4
	// halves cross the NIC — like the synthesized hierarchical programs,
	// it beats the hierarchy-oblivious ring.
	lp := lowerFor(t, []int{4, 16}, []int{4, 16}, [][]int{{2, 2}, {2, 8}}, []int{0},
		synth.BaselineAllReduce())
	sys := topology.A100System(4)
	ring := &Model{Sys: sys, Algo: Ring, Bytes: PayloadBytes(4)}
	hd := &Model{Sys: sys, Algo: HalvingDoubling, Bytes: PayloadBytes(4)}
	h, r := hd.ProgramTime(lp), ring.ProgramTime(lp)
	if h >= r*0.9 {
		t.Errorf("HD mixed-group (%v) should clearly beat ring (%v)", h, r)
	}
}

func TestHalvingDoublingWinsLatencyBound(t *testing.T) {
	// With a tiny payload the latency term dominates: HD has 2·log2(g)
	// rounds vs ring's 2(g-1).
	lp := lowerFor(t, []int{4, 16}, []int{4, 16}, [][]int{{4, 1}, {1, 16}}, []int{0},
		synth.BaselineAllReduce())
	sys := topology.A100System(4)
	ring := &Model{Sys: sys, Algo: Ring, Bytes: 64}
	hd := &Model{Sys: sys, Algo: HalvingDoubling, Bytes: 64}
	if h, r := hd.ProgramTime(lp), ring.ProgramTime(lp); h >= r {
		t.Errorf("HD latency-bound (%v) should beat ring (%v)", h, r)
	}
}

// oddSystem is an n-node × gpus-per-node two-level testbed for the
// residual (non-power-of-two) halving-doubling paths.
func oddSystem(t testing.TB, nodes, gpus int) *topology.System {
	t.Helper()
	sys, err := topology.New(fmt.Sprintf("odd-%dx%d", nodes, gpus),
		[]topology.Level{{Name: "node", Count: nodes}, {Name: "gpu", Count: gpus}},
		[]topology.Link{
			{Name: "NIC", Bandwidth: 8e9, Latency: 2e-5},
			{Name: "NVL", Bandwidth: 200e9, Latency: 2e-6},
		})
	if err != nil {
		t.Fatal(err)
	}
	return sys
}

// TestHalvingDoublingResidualSchedule pins the residual variant's exact
// analytic cost on a 3-wide all-remote group: the partner node's uplink
// carries the fold + unfold (2D) plus the 2-wide core exchange (2D) = 4D,
// and the step pays 2·⌈log2 3⌉ = 4 rounds of NIC latency. No ring
// arithmetic appears anywhere in the number.
func TestHalvingDoublingResidualSchedule(t *testing.T) {
	sys := oddSystem(t, 3, 4)
	m := placement.MustMatrix([]int{3, 4}, []int{3, 4}, [][]int{{3, 1}, {1, 4}})
	lp := lowerForMatrix(t, m, []int{0}, synth.BaselineAllReduce())
	d := 1e9
	hd := &Model{Sys: sys, Algo: HalvingDoubling, Bytes: d}
	got := hd.ProgramTime(lp)
	// 4 groups of 3 (one member per node): each node hosts the residual,
	// the partner or the other core member of 4 groups — the partner role
	// dominates with 4 × 4D through one 8 GB/s NIC.
	want := 4*4*d/8e9 + 4*2e-5
	if math.Abs(got-want)/want > 1e-9 {
		t.Errorf("residual HD on 3-wide groups = %v, want %v", got, want)
	}
	// The residual schedule is NOT the ring fallback anymore: ring moves
	// 2·(n-1)/n·D per edge and must differ.
	ring := &Model{Sys: sys, Algo: Ring, Bytes: d}
	if r := ring.ProgramTime(lp); r == got {
		t.Errorf("non-pow2 HD (%v) still equals ring (%v) — fallback not removed", got, r)
	}
}

// TestHalvingDoublingResidualReducesCorrectVolume checks hdEdges'
// bookkeeping for every residual size the acceptance criteria name: the
// total scheduled volume must be r·2D for the fold/unfold pairs plus
// p·2D·(p-1)/p for the core phases, and the round count schedule()
// reports for the latency term must cover the core rounds plus (for a
// residual) the fold and unfold rounds.
func TestHalvingDoublingResidualReducesCorrectVolume(t *testing.T) {
	const d = 1024.0
	for _, n := range []int{2, 3, 4, 5, 6, 7, 8, 12, 16} {
		g := make([]int, n)
		for i := range g {
			g[i] = i
		}
		p := CorePow2(n)
		edges := hdEdges(g, d)
		total := 0.0
		residual := 0.0
		for _, e := range edges {
			total += e.bytes
			if e.a >= p || e.b >= p {
				residual += e.bytes
			}
		}
		wantResidual := float64(n-p) * 2 * d
		wantCore := float64(p) * 2 * d * float64(p-1) / float64(p)
		if math.Abs(residual-wantResidual) > 1e-9 {
			t.Errorf("n=%d: residual volume %v, want %v", n, residual, wantResidual)
		}
		if math.Abs(total-(wantResidual+wantCore)) > 1e-9 {
			t.Errorf("n=%d: total volume %v, want %v", n, total, wantResidual+wantCore)
		}
		// The rounds value the model charges latency for, computed
		// independently: 2 per core halving level (halving + doubling
		// phases) plus the fold and unfold rounds when a residual exists.
		want := 0
		for q := 1; q < p; q *= 2 {
			want += 2
		}
		if p != n {
			want += 2
		}
		m := &Model{Algo: HalvingDoubling}
		if _, rounds := m.schedule(collective.AllReduce, g, d); rounds != want {
			t.Errorf("n=%d: schedule charges %d rounds, want %d", n, rounds, want)
		}
	}
}

// TestHalvingDoublingResidualBeatsRingLatencyBound: the point of the
// exact schedule — on latency-bound non-pow2 groups HD's 2⌈log2 n⌉
// rounds beat ring's 2(n-1), so the auto search can genuinely pick it.
func TestHalvingDoublingResidualBeatsRingLatencyBound(t *testing.T) {
	sys := oddSystem(t, 6, 4)
	m := placement.MustMatrix([]int{6, 4}, []int{6, 4}, [][]int{{6, 1}, {1, 4}})
	lp := lowerForMatrix(t, m, []int{0}, synth.BaselineAllReduce())
	ring := &Model{Sys: sys, Algo: Ring, Bytes: 64}
	hd := &Model{Sys: sys, Algo: HalvingDoubling, Bytes: 64}
	if h, r := hd.ProgramTime(lp), ring.ProgramTime(lp); h >= r {
		t.Errorf("latency-bound residual HD (%v) should beat ring (%v): 6 rounds vs 10", h, r)
	}
}

// TestAutoSearchPicksResidualHD: with the exact residual schedule in
// place, the per-step algorithm search genuinely selects HalvingDoubling
// on latency-bound non-pow2 groups (6 rounds vs ring's 10 on 6-wide
// all-remote groups) — under the old ring fallback HD could never beat
// ring there, so auto was blind to it.
func TestAutoSearchPicksResidualHD(t *testing.T) {
	sys := oddSystem(t, 6, 4)
	m := placement.MustMatrix([]int{6, 4}, []int{6, 4}, [][]int{{6, 1}, {1, 4}})
	lp := lowerForMatrix(t, m, []int{0}, synth.BaselineAllReduce())
	model := &Model{Sys: sys, Algo: Ring, Bytes: 64}
	assign, _ := model.BestStepAlgos(lp, ExtendedAlgorithms)
	for i, a := range assign {
		if a != HalvingDoubling {
			t.Errorf("step %d: auto chose %v, want HalvingDoubling on a latency-bound 6-wide group", i, a)
		}
	}
}

func TestParseHalvingDoubling(t *testing.T) {
	a, err := ParseAlgorithm("HalvingDoubling")
	if err != nil || a != HalvingDoubling {
		t.Errorf("ParseAlgorithm = %v, %v", a, err)
	}
	if HalvingDoubling.String() != "HalvingDoubling" {
		t.Error("String mismatch")
	}
	if len(ExtendedAlgorithms) != 3 {
		t.Error("ExtendedAlgorithms should have 3 entries")
	}
}
