// Package cost implements the analytic performance simulator of §5 of the
// P² paper. It predicts the runtime of a lowered reduction program on a
// hierarchical system from the topology's bandwidths and latencies alone.
//
// The model is traffic-based: every collective is expanded into the ring or
// tree schedule NCCL would use (selected by Algorithm, the paper's
// NCCL_ALGO), each schedule edge is routed through the uplinks it
// traverses, and per-uplink traffic is summed across all groups of a step
// so that shared links (e.g. the single NIC of a node) become contended
// resources. A step's time is the most-loaded link's transfer time plus a
// pipeline-rounds latency term; the program's time is the sum over its
// steps (steps are barriers, as XLA executes them).
package cost

import (
	"fmt"
	"math"
	"strings"

	"p2/internal/collective"
	"p2/internal/lower"
	"p2/internal/topology"
)

// Algorithm selects the NCCL collective algorithm being modelled.
type Algorithm int

const (
	// Ring is NCCL's ring schedule.
	Ring Algorithm = iota
	// Tree is NCCL's tree schedule (double binary tree approximated by a
	// single hierarchical tree per group: intra-node chains, inter-node
	// binary tree).
	Tree
	// HalvingDoubling is the recursive halving/doubling AllReduce — an
	// extension beyond the paper's Ring/Tree evaluation. It is
	// bandwidth-optimal with only 2·⌈log2(g)⌉ rounds, but its
	// long-distance exchanges cross slow links with large halves, so it
	// loses to ring on hierarchical networks for big payloads and wins on
	// latency-bound small ones. Groups whose size g is not a power of two
	// run NCCL's 2-proc-residual variant: the r = g − 2^⌊log2 g⌋ residual
	// members fold their full vector into power-of-two partners in a
	// pre-round, the 2^⌊log2 g⌋ core members run the standard recursive
	// halving/doubling, and a mirrored post-round unfolds the result back
	// to the residual members.
	HalvingDoubling
)

// Algorithms lists the paper's two evaluated algorithms in canonical
// order; ExtendedAlgorithms adds the halving-doubling extension.
var (
	Algorithms         = []Algorithm{Ring, Tree}
	ExtendedAlgorithms = []Algorithm{Ring, Tree, HalvingDoubling}
)

// String names the algorithm as in the paper's tables.
func (a Algorithm) String() string {
	switch a {
	case Ring:
		return "Ring"
	case Tree:
		return "Tree"
	case HalvingDoubling:
		return "HalvingDoubling"
	default:
		return fmt.Sprintf("Algorithm(%d)", int(a))
	}
}

// ParseAlgorithm parses an algorithm name ("Ring", "Tree" or
// "HalvingDoubling", case-insensitive); the error for an unknown name
// enumerates the valid ones.
func ParseAlgorithm(s string) (Algorithm, error) {
	for _, a := range ExtendedAlgorithms {
		if strings.EqualFold(s, a.String()) {
			return a, nil
		}
	}
	names := make([]string, len(ExtendedAlgorithms))
	for i, a := range ExtendedAlgorithms {
		names[i] = a.String()
	}
	return 0, fmt.Errorf("cost: unknown algorithm %q (valid: %s)", s, strings.Join(names, ", "))
}

// Model is an analytic cost model for one system, algorithm and payload.
type Model struct {
	// Sys is the hierarchical system; its device count must match the
	// programs evaluated.
	Sys *topology.System
	// Algo is the collective algorithm NCCL is pinned to.
	Algo Algorithm
	// Bytes is the per-device payload size in bytes (the gradient being
	// reduced). The paper uses 2^29 × nodes float32 values.
	Bytes float64
}

// edge is one point-to-point transfer of the expanded schedule.
type edge struct {
	a, b  int
	bytes float64
}

// StepTime predicts the duration of one lowered step. Per-uplink traffic
// is accumulated in dense slices indexed by (level offset + entity id)
// rather than a map — planning scores thousands of steps and the map
// dominated its profile; the arithmetic (and therefore every predicted
// float) is unchanged.
func (m *Model) StepTime(st lower.Step) float64 {
	perDevice := st.FracIn() * m.Bytes
	L := m.Sys.NumLevels()
	offsets := m.Sys.EntityOffsets()
	rad := m.Sys.Radix()
	traffic := make([]float64, offsets[L])
	maxRounds := 0
	maxLatency := 0.0
	for _, g := range st.Groups {
		edges, rounds := m.schedule(st.Op, g, perDevice)
		if rounds > maxRounds {
			maxRounds = rounds
		}
		for _, e := range edges {
			ldiv := m.Sys.DivergenceLevel(e.a, e.b)
			if ldiv < 0 {
				continue
			}
			// Accumulate entity ids incrementally down the levels
			// (id(l) = id(l-1)·count(l) + digit(l)) instead of re-folding
			// the address prefix per level.
			ida := m.Sys.EntityID(e.a, ldiv)
			idb := m.Sys.EntityID(e.b, ldiv)
			// The transfer's latency is that of the slower of the two
			// endpoints' uplinks at the divergence level; without overrides
			// both equal Uplinks[ldiv].Latency.
			lat := m.Sys.LinkLatency(ldiv, ida)
			if lb := m.Sys.LinkLatency(ldiv, idb); lb > lat {
				lat = lb
			}
			if lat > maxLatency {
				maxLatency = lat
			}
			for l := ldiv; ; {
				traffic[offsets[l]+ida] += e.bytes
				traffic[offsets[l]+idb] += e.bytes
				if l++; l >= L {
					break
				}
				ida = ida*m.Sys.Levels[l].Count + rad.Digit(e.a, l)
				idb = idb*m.Sys.Levels[l].Count + rad.Digit(e.b, l)
			}
		}
	}
	worst := 0.0
	if m.Sys.HasOverrides() {
		// Heterogeneous fabric: each entity's uplink has its own effective
		// bandwidth. A down link (bandwidth 0) carrying traffic yields +Inf;
		// with zero traffic the 0/0 NaN fails the > comparison and is
		// correctly ignored (no traffic, no cost).
		for l := 0; l < L; l++ {
			for e, bytes := range traffic[offsets[l]:offsets[l+1]] {
				if t := bytes / m.Sys.LinkBandwidth(l, e); t > worst {
					worst = t
				}
			}
		}
	} else {
		for l := 0; l < L; l++ {
			bw := m.Sys.Uplinks[l].Bandwidth
			for _, bytes := range traffic[offsets[l]:offsets[l+1]] {
				if t := bytes / bw; t > worst {
					worst = t
				}
			}
		}
	}
	return worst + float64(maxRounds)*maxLatency
}

// ProgramTime predicts the end-to-end duration of a lowered program: the
// sum of its step times (steps are global barriers).
func (m *Model) ProgramTime(p *lower.Program) float64 {
	total := 0.0
	for _, st := range p.Steps {
		total += m.StepTime(st)
	}
	return total
}

// StepTimeAlgo is StepTime under an explicit algorithm, overriding m.Algo.
// It is the evaluation primitive of the per-step algorithm search: a step
// is free to run a different NCCL_ALGO than its neighbors because steps
// are barriers.
func (m *Model) StepTimeAlgo(st lower.Step, algo Algorithm) float64 {
	mm := *m
	mm.Algo = algo
	return mm.StepTime(st)
}

// BestStepAlgos brute-forces the per-step algorithm sweep: for every step
// of p it evaluates every algorithm in algos and keeps the cheapest (ties
// go to the earliest algorithm in the slice), returning the assignment and
// the summed program time. Because steps are barriers, the per-step
// minimum is the exact program optimum over the |algos|^steps assignment
// space. The sum runs in step order over per-step minima, so the memoized
// planner (internal/plan) reproduces it bit for bit.
func (m *Model) BestStepAlgos(p *lower.Program, algos []Algorithm) ([]Algorithm, float64) {
	if len(algos) == 0 {
		panic("cost: BestStepAlgos with no algorithms")
	}
	assign := make([]Algorithm, len(p.Steps))
	total := 0.0
	for i, st := range p.Steps {
		best := m.StepTimeAlgo(st, algos[0])
		assign[i] = algos[0]
		for _, a := range algos[1:] {
			if t := m.StepTimeAlgo(st, a); t < best {
				best, assign[i] = t, a
			}
		}
		total += best
	}
	return assign, total
}

// UniformAlgo reports whether a per-step assignment uses one algorithm
// throughout, returning it. Uniform assignments are canonicalized to a
// fixed algorithm (nil assignment) by every consumer so that e.g. an
// all-Ring auto choice measures byte-identically to a fixed-Ring run.
func UniformAlgo(stepAlgos []Algorithm) (Algorithm, bool) {
	if len(stepAlgos) == 0 {
		return 0, false
	}
	for _, a := range stepAlgos[1:] {
		if a != stepAlgos[0] {
			return 0, false
		}
	}
	return stepAlgos[0], true
}

// FormatAlgos renders an algorithm choice compactly: the fixed
// algorithm's name when stepAlgos is nil, a "/"-joined per-step sequence
// otherwise (e.g. "Ring/HalvingDoubling/Ring"). Shared by the public
// Strategy and the eval harness so assignments render identically
// everywhere.
func FormatAlgos(fixed Algorithm, stepAlgos []Algorithm) string {
	if stepAlgos == nil {
		return fixed.String()
	}
	names := make([]string, len(stepAlgos))
	for i, a := range stepAlgos {
		names[i] = a.String()
	}
	return strings.Join(names, "/")
}

// schedule expands one group's collective into transfer edges plus the
// number of pipeline rounds (for the latency term). perDevice is the input
// payload bytes held by each participant.
func (m *Model) schedule(op collective.Op, g []int, perDevice float64) ([]edge, int) {
	n := len(g)
	switch op {
	case collective.AllReduce:
		if m.Algo == Tree {
			return m.treeEdges(g, 2*perDevice), 2 * logRounds(n)
		}
		if m.Algo == HalvingDoubling {
			// 2·⌈log2 n⌉ rounds: for a power of two, the halving plus
			// doubling phases; otherwise 2·⌊log2 n⌋ core rounds plus the
			// residual fold pre-round and unfold post-round.
			return hdEdges(g, perDevice), 2 * logRounds(n)
		}
		return ringEdges(g, 2*float64(n-1)/float64(n)*perDevice), 2 * (n - 1)
	case collective.ReduceScatter:
		// NCCL implements ReduceScatter with a ring regardless of algo.
		return ringEdges(g, float64(n-1)/float64(n)*perDevice), n - 1
	case collective.AllGather:
		// Each device holds perDevice and must collect n-1 more shards.
		return ringEdges(g, float64(n-1)*perDevice), n - 1
	case collective.Reduce:
		if m.Algo != Ring {
			return m.treeEdges(g, perDevice), logRounds(n)
		}
		return chainEdges(g, perDevice), n - 1
	case collective.Broadcast:
		if m.Algo != Ring {
			return m.treeEdges(g, perDevice), logRounds(n)
		}
		return chainEdges(g, perDevice), n - 1
	default:
		panic(fmt.Sprintf("cost: unknown op %v", op))
	}
}

// ringEdges returns the n directed neighbor links of a ring over g, each
// carrying `bytes`.
func ringEdges(g []int, bytes float64) []edge {
	edges := make([]edge, 0, len(g))
	for i := range g {
		edges = append(edges, edge{g[i], g[(i+1)%len(g)], bytes})
	}
	return edges
}

// chainEdges returns the n-1 links of the pipeline chain rooted at g[0].
func chainEdges(g []int, bytes float64) []edge {
	edges := make([]edge, 0, len(g)-1)
	for i := 1; i < len(g); i++ {
		edges = append(edges, edge{g[i-1], g[i], bytes})
	}
	return edges
}

// treeEdges returns the links of a hierarchical tree over the group, each
// carrying `bytes`: members are partitioned by their entity at the group's
// span level, each partition is connected by a chain (NCCL's intra-node
// tree is a chain), and the partition heads form a balanced binary tree
// (NCCL's inter-node double binary tree, approximated by a single tree).
// For groups with one member per entity this degenerates to a plain binary
// tree.
func (m *Model) treeEdges(g []int, bytes float64) []edge {
	edges := make([]edge, 0, len(g)-1)
	for _, pair := range TreeLinks(m.Sys, g) {
		edges = append(edges, edge{pair[0], pair[1], bytes})
	}
	return edges
}

// TreeLinks returns the (parent, child) pairs of the hierarchical tree the
// Tree algorithm uses over a device group; shared with the event-level
// emulator so both simulators model the same schedule.
func TreeLinks(sys *topology.System, g []int) [][2]int {
	span := sys.GroupSpanLevel(g)
	if span < 0 {
		return nil
	}
	// Partition members by their span-level entity, in group order.
	var parts [][]int
	idx := map[int]int{}
	for _, d := range g {
		e := sys.EntityID(d, span)
		if p, ok := idx[e]; ok {
			parts[p] = append(parts[p], d)
		} else {
			idx[e] = len(parts)
			parts = append(parts, []int{d})
		}
	}
	out := make([][2]int, 0, len(g)-1)
	// Binary tree across partition heads.
	for i := 1; i < len(parts); i++ {
		out = append(out, [2]int{parts[(i-1)/2][0], parts[i][0]})
	}
	// Chain within each partition.
	for _, p := range parts {
		for j := 1; j < len(p); j++ {
			out = append(out, [2]int{p[j-1], p[j]})
		}
	}
	return out
}

// hdEdges expands recursive halving (reduce-scatter phase) plus recursive
// doubling (all-gather phase) with NCCL's 2-proc-residual pre/post rounds
// for non-power-of-two groups. Let p = 2^⌊log2 n⌋ and r = n − p: residual
// member p+k first folds its full vector into partner k (pre-round), the p
// core members run the standard schedule — in round t, core index i
// exchanges D/2^(t+1) with i XOR 2^t, the doubling phase mirroring the
// halving phase so every exchanged quantity is counted twice — and partner
// k finally returns the full result to p+k (post-round). The fold and
// unfold transfers are the two directions of one edge pair, mirroring how
// each core exchange is counted for both phases. For power-of-two groups
// r = 0 and the schedule (and its edge order) is the pure core.
func hdEdges(g []int, perDevice float64) []edge {
	n := len(g)
	p := CorePow2(n)
	var edges []edge
	for k := p; k < n; k++ {
		// Pre-round fold g[k]→g[k-p] plus post-round unfold g[k-p]→g[k],
		// each carrying the full per-device vector.
		edges = append(edges,
			edge{g[k], g[k-p], perDevice},
			edge{g[k-p], g[k], perDevice})
	}
	for r := 0; 1<<r < p; r++ {
		bytes := 2 * perDevice / float64(int(2)<<r) // halving + doubling phases
		for i := 0; i < p; i++ {
			j := i ^ (1 << r)
			if j > i {
				// Both directions run concurrently in each phase.
				edges = append(edges,
					edge{g[i], g[j], bytes},
					edge{g[j], g[i], bytes})
			}
		}
	}
	return edges
}

// CorePow2 returns 2^⌊log2 n⌋, the size of the halving-doubling core (the
// largest power of two not exceeding n); the n − CorePow2(n) residual
// members fold into core partners around it. Shared with the event-level
// emulator (like TreeLinks) so both simulators split the group into the
// same core and residual.
func CorePow2(n int) int {
	p := 1
	for p*2 <= n {
		p *= 2
	}
	return p
}

func logRounds(n int) int {
	return int(math.Ceil(math.Log2(float64(n))))
}

// PayloadBytes returns the paper's experiment payload for a machine count:
// 2^29 × machines float32 values per GPU (§4). "Machines" is the number of
// NIC-owning entities — for multi-level systems the product of all
// non-leaf level counts (topology.System.NumMachines), NOT the root level
// count: SuperPodSystem(2, 4) has 8 machines (2 pods × 4 nodes), so its
// default payload is 2^29 × 8 × 4 bytes. For the paper's two-level
// testbeds the two conventions coincide.
func PayloadBytes(machines int) float64 {
	return float64(uint64(1)<<29) * float64(machines) * 4
}

// DefaultPayload returns the paper's default per-device payload for a
// system: PayloadBytes of its machine count. Every payload-defaulting call
// site (p2.Plan, p2.PlanSerial, p2.PlanJointOpts, eval.Config) uses this
// so that deep hierarchies scale by machines, not by the root level.
func DefaultPayload(sys *topology.System) float64 {
	return PayloadBytes(sys.NumMachines())
}
