package cost

import (
	"math"
	"testing"

	"p2/internal/hierarchy"
	"p2/internal/lower"
	"p2/internal/placement"
	"p2/internal/synth"
	"p2/internal/topology"
)

// scorerCases lowers every synthesized program of a few representative
// requests, covering all ops, replicas, collapse and deep hierarchies.
func scorerCases(t *testing.T) []struct {
	sys *topology.System
	lp  *lower.Program
} {
	t.Helper()
	var out []struct {
		sys *topology.System
		lp  *lower.Program
	}
	reqs := []struct {
		sys  *topology.System
		axes []int
		red  []int
	}{
		{topology.Fig2aSystem(), []int{4, 4}, []int{0}},
		{topology.A100System(2), []int{4, 8}, []int{0}},
		{topology.V100System(2), []int{4, 4}, []int{1}},
		{topology.SuperPodSystem(2, 4), []int{8, 8}, []int{0}},
		// Non-power-of-two hierarchies exercise the residual
		// halving-doubling schedule (groups of 3, 6 and 12).
		{topology.A100System(3), []int{3, 16}, []int{0}},
		{topology.SuperPodSystem(3, 2), []int{6, 8}, []int{0}},
	}
	for _, rq := range reqs {
		matrices, err := placement.Enumerate(rq.sys.Hierarchy(), rq.axes)
		if err != nil {
			t.Fatal(err)
		}
		for _, m := range matrices {
			h, err := hierarchy.Build(hierarchy.KindReductionAxes, m, rq.red, hierarchy.Options{})
			if err != nil {
				t.Fatal(err)
			}
			for _, prog := range synth.Synthesize(h, synth.Options{}).Programs {
				lp, err := lower.Lower(prog, h)
				if err != nil {
					t.Fatal(err)
				}
				out = append(out, struct {
					sys *topology.System
					lp  *lower.Program
				}{rq.sys, lp})
			}
		}
	}
	return out
}

// TestScorerMatchesModel: the scorer must reproduce Model.StepTimeAlgo bit
// for bit across every op, algorithm and system — including across calls,
// which exercises the dirty-entry scratch reset.
func TestScorerMatchesModel(t *testing.T) {
	scorers := map[*topology.System]*Scorer{}
	for _, tc := range scorerCases(t) {
		sc, ok := scorers[tc.sys]
		if !ok {
			sc = NewScorer(tc.sys)
			scorers[tc.sys] = sc
		}
		model := &Model{Sys: tc.sys, Algo: Ring, Bytes: DefaultPayload(tc.sys)}
		for _, algo := range ExtendedAlgorithms {
			for si, st := range tc.lp.Steps {
				want := model.StepTimeAlgo(st, algo)
				got := sc.StepTimeAlgo(model, st, algo)
				if math.Float64bits(got) != math.Float64bits(want) {
					t.Fatalf("%s %v step %d algo %v: scorer %v (%016x), model %v (%016x)",
						tc.sys.Name, tc.lp, si, algo,
						got, math.Float64bits(got), want, math.Float64bits(want))
				}
			}
			// Whole-program sums must agree too (same order of additions).
			mm := *model
			mm.Algo = algo
			want := mm.ProgramTime(tc.lp)
			if got := sc.ProgramTime(&mm, tc.lp); math.Float64bits(got) != math.Float64bits(want) {
				t.Fatalf("%s %v algo %v: ProgramTime %v != %v", tc.sys.Name, tc.lp, algo, got, want)
			}
		}
	}
}

// TestScorerZeroAlloc: after warm-up (schedule cache populated), scoring
// must not allocate.
func TestScorerZeroAlloc(t *testing.T) {
	t.Run("superpod-2x4", func(t *testing.T) {
		testScorerZeroAlloc(t, topology.SuperPodSystem(2, 4), "[[1 2 4] [2 2 2]]", []int{8, 8})
	})
	// Non-power-of-two groups must stay allocation-free too: the residual
	// halving-doubling expansion is cached like the pure-core one.
	t.Run("superpod-3x2", func(t *testing.T) {
		testScorerZeroAlloc(t, topology.SuperPodSystem(3, 2), "[[3 1 2] [1 2 4]]", []int{6, 8})
	})
}

func testScorerZeroAlloc(t *testing.T, sys *topology.System, matrix string, axes []int) {
	m, err := placement.ParseMatrix(matrix, sys.Hierarchy(), axes)
	if err != nil {
		t.Fatal(err)
	}
	h, err := hierarchy.Build(hierarchy.KindReductionAxes, m, []int{0}, hierarchy.Options{})
	if err != nil {
		t.Fatal(err)
	}
	lp, err := lower.Lower(synth.BaselineAllReduce(), h)
	if err != nil {
		t.Fatal(err)
	}
	model := &Model{Sys: sys, Algo: Ring, Bytes: DefaultPayload(sys)}
	sc := NewScorer(sys)
	for _, algo := range ExtendedAlgorithms {
		sc.ProgramTime(&Model{Sys: sys, Algo: algo, Bytes: model.Bytes}, lp) // warm the caches
	}
	for _, algo := range ExtendedAlgorithms {
		mm := &Model{Sys: sys, Algo: algo, Bytes: model.Bytes}
		if allocs := testing.AllocsPerRun(20, func() { sc.ProgramTime(mm, lp) }); allocs != 0 {
			t.Errorf("algo %v: %v allocs/op on the scoring path, want 0", algo, allocs)
		}
	}
}

// TestScorerRejectsForeignSystem: using a scorer with another system's
// model is a programming error and must panic rather than corrupt scratch.
func TestScorerRejectsForeignSystem(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("no panic for foreign system")
		}
	}()
	sc := NewScorer(topology.A100System(2))
	sc.StepTime(&Model{Sys: topology.V100System(2), Algo: Ring, Bytes: 1}, lower.Step{})
}
