package cost

import (
	"fmt"

	"p2/internal/collective"
	"p2/internal/lower"
	"p2/internal/topology"
)

// Scorer is a reusable step-cost evaluator producing bit-identical floats
// to Model.StepTime with zero allocations on the scoring path. It is the
// planning engine's per-worker workhorse: planning scores thousands of
// steps and the per-step `make([]float64, entities)` plus the schedule
// expansion slices dominated the allocation profile.
//
// Two mechanisms replace the allocations:
//
//   - The per-uplink traffic array is scratch owned by the Scorer. Instead
//     of reallocating (or zeroing the whole array) per step, the Scorer
//     records which entries a step touched and resets exactly those during
//     the final max-scan (dirty-entry reset).
//   - Schedule expansions are memoized. Ring, chain and halving-doubling
//     schedules depend only on (op, algorithm, group size, per-device
//     bytes) — their edges are cached in group-index space and mapped
//     through the concrete group on replay. Tree schedules depend on the
//     members' hardware entities, so they are expanded per group, but into
//     reusable partition scratch.
//
// The accumulation order — groups in step order, edges in schedule order,
// the same level-descent per edge — matches Model.StepTime exactly, so
// every float (and therefore every ranking) is unchanged.
//
// A Scorer is bound to one System and is not safe for concurrent use; give
// each worker its own.
type Scorer struct {
	sys *topology.System

	traffic []float64
	dirty   []int

	sched map[schedKey][]relEdge

	// Tree-expansion scratch: parts are reused member buckets, partOf maps
	// a span-level entity id to its bucket for the current expansion, and
	// partGen marks which entries of partOf are live (avoiding a clear per
	// expansion).
	parts   [][]int
	partOf  []int
	partGen []uint64
	gen     uint64

	// Per-step accumulators, reset by StepTimeAlgo.
	maxLat float64
}

// relEdge is one schedule edge in group-index space: endpoints are indices
// into the group slice, bytes the transfer size.
type relEdge struct {
	a, b  int
	bytes float64
}

// schedKind distinguishes the structural (group-independent) schedules.
type schedKind uint8

const (
	schedRing schedKind = iota
	schedChain
	schedHD
)

// schedKey identifies one cached structural schedule.
type schedKey struct {
	kind  schedKind
	n     int
	bytes float64
}

// NewScorer returns a Scorer for sys.
func NewScorer(sys *topology.System) *Scorer {
	offsets := sys.EntityOffsets()
	return &Scorer{
		sys:     sys,
		traffic: make([]float64, offsets[sys.NumLevels()]),
		sched:   map[schedKey][]relEdge{},
		partOf:  make([]int, sys.NumDevices()),
		partGen: make([]uint64, sys.NumDevices()),
	}
}

// Sys returns the system the scorer is bound to.
func (s *Scorer) Sys() *topology.System { return s.sys }

// StepTime predicts the duration of one lowered step under m, exactly as
// m.StepTime would. m.Sys must be the scorer's system.
//
//p2:zeroalloc
func (s *Scorer) StepTime(m *Model, st lower.Step) float64 {
	return s.StepTimeAlgo(m, st, m.Algo)
}

// panicModelMismatch is the cold failure path of StepTimeAlgo, kept out
// of the //p2:zeroalloc hot function so its formatting does not count
// against the zero-allocation guarantee.
func (s *Scorer) panicModelMismatch(m *Model) {
	panic(fmt.Sprintf("cost: Scorer for %q used with model for %q", s.sys.Name, m.Sys.Name))
}

// StepTimeAlgo is StepTime under an explicit algorithm, the allocation-free
// equivalent of Model.StepTimeAlgo.
//
//p2:zeroalloc
func (s *Scorer) StepTimeAlgo(m *Model, st lower.Step, algo Algorithm) float64 {
	if m.Sys != s.sys {
		s.panicModelMismatch(m)
	}
	perDevice := st.FracIn() * m.Bytes
	s.maxLat = 0
	s.dirty = s.dirty[:0]
	maxRounds := 0
	for _, g := range st.Groups {
		if rounds := s.addGroup(st.Op, algo, g, perDevice); rounds > maxRounds {
			maxRounds = rounds
		}
	}
	worst := 0.0
	offsets := s.sys.EntityOffsets()
	L := s.sys.NumLevels()
	for _, i := range s.dirty {
		l := 0
		for l+1 < L && i >= offsets[l+1] {
			l++
		}
		if t := s.traffic[i] / s.sys.LinkBandwidth(l, i-offsets[l]); t > worst {
			worst = t
		}
		s.traffic[i] = 0
	}
	return worst + float64(maxRounds)*s.maxLat
}

// ProgramTime sums the step times of a lowered program, exactly as
// m.ProgramTime would.
//
//p2:zeroalloc
func (s *Scorer) ProgramTime(m *Model, p *lower.Program) float64 {
	total := 0.0
	for _, st := range p.Steps {
		total += s.StepTime(m, st)
	}
	return total
}

// panicUnknownOp is addGroup's cold failure path, kept out of the
// //p2:zeroalloc hot function (see panicModelMismatch).
func panicUnknownOp(op collective.Op) {
	panic(fmt.Sprintf("cost: unknown op %v", op))
}

// addGroup accumulates one group's schedule into the traffic scratch and
// returns its pipeline round count. The dispatch mirrors Model.schedule,
// including the byte arithmetic, expression for expression. The structural
// schedule cache it consults allocates only on first sight of a (kind,
// size, bytes) shape — a miss is outside the steady-state scoring path.
//
//p2:zeroalloc
func (s *Scorer) addGroup(op collective.Op, algo Algorithm, g []int, perDevice float64) int {
	n := len(g)
	switch op {
	case collective.AllReduce:
		if algo == Tree {
			s.addTree(g, 2*perDevice)
			return 2 * logRounds(n)
		}
		if algo == HalvingDoubling {
			s.addRel(g, s.structural(schedHD, n, perDevice))
			return 2 * logRounds(n)
		}
		s.addRel(g, s.structural(schedRing, n, 2*float64(n-1)/float64(n)*perDevice))
		return 2 * (n - 1)
	case collective.ReduceScatter:
		s.addRel(g, s.structural(schedRing, n, float64(n-1)/float64(n)*perDevice))
		return n - 1
	case collective.AllGather:
		s.addRel(g, s.structural(schedRing, n, float64(n-1)*perDevice))
		return n - 1
	case collective.Reduce:
		if algo != Ring {
			s.addTree(g, perDevice)
			return logRounds(n)
		}
		s.addRel(g, s.structural(schedChain, n, perDevice))
		return n - 1
	case collective.Broadcast:
		if algo != Ring {
			s.addTree(g, perDevice)
			return logRounds(n)
		}
		s.addRel(g, s.structural(schedChain, n, perDevice))
		return n - 1
	default:
		panicUnknownOp(op)
		return 0
	}
}

// structural returns the cached group-index-space edges of a ring, chain
// or halving-doubling schedule, expanding and caching on first use. The
// edge order matches ringEdges/chainEdges/hdEdges.
func (s *Scorer) structural(kind schedKind, n int, bytes float64) []relEdge {
	key := schedKey{kind: kind, n: n, bytes: bytes}
	if edges, ok := s.sched[key]; ok {
		return edges
	}
	var edges []relEdge
	switch kind {
	case schedRing:
		edges = make([]relEdge, 0, n)
		for i := 0; i < n; i++ {
			edges = append(edges, relEdge{i, (i + 1) % n, bytes})
		}
	case schedChain:
		edges = make([]relEdge, 0, n-1)
		for i := 1; i < n; i++ {
			edges = append(edges, relEdge{i - 1, i, bytes})
		}
	case schedHD:
		// Mirrors hdEdges (bytes here is the per-device payload): residual
		// fold/unfold edge pairs first, then the power-of-two core rounds.
		p := CorePow2(n)
		for k := p; k < n; k++ {
			edges = append(edges, relEdge{k, k - p, bytes}, relEdge{k - p, k, bytes})
		}
		for r := 0; 1<<r < p; r++ {
			eb := 2 * bytes / float64(int(2)<<r)
			for i := 0; i < p; i++ {
				j := i ^ (1 << r)
				if j > i {
					edges = append(edges, relEdge{i, j, eb}, relEdge{j, i, eb})
				}
			}
		}
	}
	s.sched[key] = edges
	return edges
}

// addRel replays cached relative edges over the concrete group.
//
//p2:zeroalloc
func (s *Scorer) addRel(g []int, edges []relEdge) {
	for _, e := range edges {
		s.addEdge(g[e.a], g[e.b], e.bytes)
	}
}

// addTree accumulates the hierarchical tree schedule over g, reproducing
// TreeLinks' edge order (binary tree across partition heads in
// first-occurrence order, then chains within partitions) without its
// allocations.
//
//p2:zeroalloc
func (s *Scorer) addTree(g []int, bytes float64) {
	span := s.sys.GroupSpanLevel(g)
	if span < 0 {
		return
	}
	s.gen++
	np := 0
	for _, d := range g {
		e := s.sys.EntityID(d, span)
		if s.partGen[e] != s.gen {
			s.partGen[e] = s.gen
			if np == len(s.parts) {
				s.parts = append(s.parts, nil) //p2:alloc-ok bucket-list growth is amortized across steps; steady state reuses the buckets
			}
			s.parts[np] = s.parts[np][:0]
			s.partOf[e] = np
			np++
		}
		pi := s.partOf[e]
		s.parts[pi] = append(s.parts[pi], d) //p2:alloc-ok buckets are reset to [:0] and their capacity reused; growth is amortized
	}
	for i := 1; i < np; i++ {
		s.addEdge(s.parts[(i-1)/2][0], s.parts[i][0], bytes)
	}
	for i := 0; i < np; i++ {
		p := s.parts[i]
		for j := 1; j < len(p); j++ {
			s.addEdge(p[j-1], p[j], bytes)
		}
	}
}

// addEdge routes one transfer through the uplinks it traverses — the body
// of Model.StepTime's accumulation loop, accumulating into the dirty-
// tracked scratch instead of a fresh slice.
//
//p2:zeroalloc
func (s *Scorer) addEdge(a, b int, bytes float64) {
	ldiv := s.sys.DivergenceLevel(a, b)
	if ldiv < 0 {
		return
	}
	offsets := s.sys.EntityOffsets()
	rad := s.sys.Radix()
	L := s.sys.NumLevels()
	ida := s.sys.EntityID(a, ldiv)
	idb := s.sys.EntityID(b, ldiv)
	// Slower endpoint uplink at the divergence level, as in Model.StepTime.
	lat := s.sys.LinkLatency(ldiv, ida)
	if lb := s.sys.LinkLatency(ldiv, idb); lb > lat {
		lat = lb
	}
	if lat > s.maxLat {
		s.maxLat = lat
	}
	for l := ldiv; ; {
		s.bump(offsets[l]+ida, bytes)
		s.bump(offsets[l]+idb, bytes)
		if l++; l >= L {
			break
		}
		ida = ida*s.sys.Levels[l].Count + rad.Digit(a, l)
		idb = idb*s.sys.Levels[l].Count + rad.Digit(b, l)
	}
}

// bump adds bytes to one traffic entry, recording the first touch for the
// dirty-entry reset. Entries only ever accumulate non-negative transfer
// sizes, so a touched entry is nonzero unless every contribution was zero
// — in which case leaving it off the dirty list is harmless (it is already
// zero for the next step).
//
//p2:zeroalloc
func (s *Scorer) bump(i int, bytes float64) {
	//p2:nan-ok traffic accumulates validated finite transfer sizes; exact 0 marks an untouched entry
	if s.traffic[i] == 0 {
		s.dirty = append(s.dirty, i) //p2:alloc-ok dirty list is reset to [:0] per step and its capacity reused; growth is amortized
	}
	s.traffic[i] += bytes
}
