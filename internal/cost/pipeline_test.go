package cost

import (
	"math"
	"testing"

	"p2/internal/collective"
	"p2/internal/dsl"
	"p2/internal/synth"
	"p2/internal/topology"
)

func TestPipelinedTimeOneBucketEqualsProgramTime(t *testing.T) {
	lp := lowerFor(t, []int{4, 16}, []int{4, 16}, [][]int{{2, 2}, {2, 8}}, []int{0},
		dsl.Program{
			{Slice: 1, Form: dsl.InsideGroup, Op: collective.ReduceScatter},
			{Slice: 1, Form: dsl.Parallel, Arg: 0, Op: collective.AllReduce},
			{Slice: 1, Form: dsl.InsideGroup, Op: collective.AllGather},
		})
	m := &Model{Sys: topology.A100System(4), Algo: Ring, Bytes: PayloadBytes(4)}
	if got, want := m.PipelinedTime(lp, 1), m.ProgramTime(lp); math.Abs(got-want) > 1e-12*want {
		t.Errorf("PipelinedTime(1) = %v, ProgramTime = %v", got, want)
	}
}

func TestPipeliningHelpsMultiStepPrograms(t *testing.T) {
	// The RS-AR-AG pipeline has a dominant middle stage; overlapping
	// buckets hides the fast local stages behind it.
	lp := lowerFor(t, []int{4, 16}, []int{4, 16}, [][]int{{2, 2}, {2, 8}}, []int{0},
		dsl.Program{
			{Slice: 1, Form: dsl.InsideGroup, Op: collective.ReduceScatter},
			{Slice: 1, Form: dsl.Parallel, Arg: 0, Op: collective.AllReduce},
			{Slice: 1, Form: dsl.InsideGroup, Op: collective.AllGather},
		})
	m := &Model{Sys: topology.A100System(4), Algo: Ring, Bytes: PayloadBytes(4)}
	b, tBest := OptimalBuckets(m, lp, 64)
	if b <= 1 {
		t.Fatalf("OptimalBuckets picked %d", b)
	}
	if one := m.PipelinedTime(lp, 1); tBest >= one {
		t.Errorf("pipelined %v not better than unbucketed %v", tBest, one)
	}
}

func TestTooManyBucketsHurts(t *testing.T) {
	// Latency is paid per bucket: a huge bucket count must eventually be
	// worse than the optimum.
	lp := lowerFor(t, []int{4, 16}, []int{4, 16}, [][]int{{2, 2}, {2, 8}}, []int{0},
		synth.BaselineAllReduce())
	m := &Model{Sys: topology.A100System(4), Algo: Ring, Bytes: 1e8}
	_, best := OptimalBuckets(m, lp, 256)
	if worst := m.PipelinedTime(lp, 1<<20); worst <= best {
		t.Errorf("2^20 buckets (%v) should be worse than optimal (%v)", worst, best)
	}
}

func TestPipelinedSingleStepNoGain(t *testing.T) {
	// A one-step program cannot overlap anything: B buckets only add
	// latency, so B=1 is optimal.
	lp := lowerFor(t, []int{4, 16}, []int{4, 16}, [][]int{{1, 4}, {4, 4}}, []int{0},
		synth.BaselineAllReduce())
	m := &Model{Sys: topology.A100System(4), Algo: Ring, Bytes: PayloadBytes(4)}
	b, _ := OptimalBuckets(m, lp, 32)
	if b != 1 {
		t.Errorf("single-step optimal buckets = %d, want 1", b)
	}
}

func TestPipelinedTimePanicsOnZeroBuckets(t *testing.T) {
	lp := lowerFor(t, []int{4, 16}, []int{4, 16}, [][]int{{1, 4}, {4, 4}}, []int{0},
		synth.BaselineAllReduce())
	m := &Model{Sys: topology.A100System(4), Algo: Ring, Bytes: 1e9}
	defer func() {
		if recover() == nil {
			t.Error("zero buckets did not panic")
		}
	}()
	m.PipelinedTime(lp, 0)
}

func TestOptimalBucketsClampsMax(t *testing.T) {
	lp := lowerFor(t, []int{4, 16}, []int{4, 16}, [][]int{{1, 4}, {4, 4}}, []int{0},
		synth.BaselineAllReduce())
	m := &Model{Sys: topology.A100System(4), Algo: Ring, Bytes: 1e9}
	b, _ := OptimalBuckets(m, lp, 0)
	if b != 1 {
		t.Errorf("clamped max returned %d", b)
	}
}
