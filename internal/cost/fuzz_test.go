package cost

import (
	"strings"
	"testing"
)

// FuzzParseAlgorithm checks the ParseAlgorithm ∘ String round trip: any
// accepted input must name an algorithm whose canonical String parses back
// to the same value, and acceptance must be exactly case-insensitive
// matching of a canonical name.
func FuzzParseAlgorithm(f *testing.F) {
	for _, a := range ExtendedAlgorithms {
		f.Add(a.String())
		f.Add(strings.ToLower(a.String()))
		f.Add(strings.ToUpper(a.String()))
	}
	f.Add("auto")
	f.Add("")
	f.Fuzz(func(t *testing.T, s string) {
		a, err := ParseAlgorithm(s)
		if err != nil {
			// Rejected inputs must not case-fold to a valid name.
			for _, v := range ExtendedAlgorithms {
				if strings.EqualFold(s, v.String()) {
					t.Fatalf("rejected %q, which folds to %v", s, v)
				}
			}
			return
		}
		if !strings.EqualFold(s, a.String()) {
			t.Fatalf("accepted %q as %v without a case-fold match", s, a)
		}
		back, err := ParseAlgorithm(a.String())
		if err != nil || back != a {
			t.Fatalf("round trip of %v: got %v, %v", a, back, err)
		}
	})
}
