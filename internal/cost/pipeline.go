package cost

import (
	"fmt"

	"p2/internal/lower"
)

// PipelinedTime estimates executing a reduction program with its payload
// split into `buckets` equal parts that flow through the program's steps
// as a pipeline, the way gradient-bucketing frameworks (Horovod, DDP) and
// BlueConnect-style pipelined hierarchical reductions operate: bucket b
// can run step s+1 while bucket b+1 runs step s.
//
// With per-step times t_s evaluated at payload D/B, the makespan of a
// B-bucket pipeline over S stages is
//
//	Σ_s t_s(D/B)  +  (B−1) · max_s t_s(D/B)
//
// (fill the pipe once, then the bottleneck stage paces the remaining B−1
// buckets). Bucketing trades bandwidth efficiency for overlap: per-step
// latency terms are paid per bucket, so very large B loses. This is an
// extension beyond the paper, which reduces the full payload in one shot.
func (m *Model) PipelinedTime(p *lower.Program, buckets int) float64 {
	return m.PipelinedTimeSteps(p, buckets, nil)
}

// PipelinedTimeSteps is PipelinedTime under a per-step algorithm
// assignment (nil = m.Algo for every step).
func (m *Model) PipelinedTimeSteps(p *lower.Program, buckets int, stepAlgos []Algorithm) float64 {
	if buckets < 1 {
		panic(fmt.Sprintf("cost: PipelinedTime with %d buckets", buckets))
	}
	if stepAlgos != nil && len(stepAlgos) != len(p.Steps) {
		panic(fmt.Sprintf("cost: %d step algorithms for %d steps", len(stepAlgos), len(p.Steps)))
	}
	scaled := &Model{Sys: m.Sys, Algo: m.Algo, Bytes: m.Bytes / float64(buckets)}
	sum, worst := 0.0, 0.0
	for i, st := range p.Steps {
		t := 0.0
		if stepAlgos != nil {
			t = scaled.StepTimeAlgo(st, stepAlgos[i])
		} else {
			t = scaled.StepTime(st)
		}
		sum += t
		if t > worst {
			worst = t
		}
	}
	return sum + float64(buckets-1)*worst
}

// OptimalBuckets scans bucket counts 1..maxBuckets and returns the count
// minimizing PipelinedTime together with that time.
func OptimalBuckets(m *Model, p *lower.Program, maxBuckets int) (int, float64) {
	return OptimalBucketsSteps(m, p, maxBuckets, nil)
}

// OptimalBucketsSteps is OptimalBuckets under a per-step algorithm
// assignment (nil = m.Algo for every step).
func OptimalBucketsSteps(m *Model, p *lower.Program, maxBuckets int, stepAlgos []Algorithm) (int, float64) {
	if maxBuckets < 1 {
		maxBuckets = 1
	}
	bestB, bestT := 1, m.PipelinedTimeSteps(p, 1, stepAlgos)
	for b := 2; b <= maxBuckets; b++ {
		if t := m.PipelinedTimeSteps(p, b, stepAlgos); t < bestT {
			bestB, bestT = b, t
		}
	}
	return bestB, bestT
}
