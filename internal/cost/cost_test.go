package cost

import (
	"math"
	"strings"
	"testing"

	"p2/internal/collective"
	"p2/internal/dsl"
	"p2/internal/hierarchy"
	"p2/internal/lower"
	"p2/internal/placement"
	"p2/internal/synth"
	"p2/internal/topology"
)

// lowerFor builds the lowered program for a matrix, reduction axes and DSL
// program on the A100 4-node system.
func lowerFor(t *testing.T, hier, axes []int, rows [][]int, red []int, p dsl.Program) *lower.Program {
	t.Helper()
	m, err := placement.NewMatrix(hier, axes, rows)
	if err != nil {
		t.Fatal(err)
	}
	h, err := hierarchy.Build(hierarchy.KindReductionAxes, m, red, hierarchy.Options{Collapse: true})
	if err != nil {
		t.Fatal(err)
	}
	lp, err := lower.Lower(p, h)
	if err != nil {
		t.Fatal(err)
	}
	return lp
}

func approx(got, want, tol float64) bool {
	return math.Abs(got-want) <= tol*want
}

func TestPayloadBytes(t *testing.T) {
	// 2^29 floats × 4 bytes × nodes.
	if got := PayloadBytes(1); got != 4*(1<<29) {
		t.Errorf("PayloadBytes(1) = %v", got)
	}
	if got := PayloadBytes(4); got != 16*(1<<29) {
		t.Errorf("PayloadBytes(4) = %v", got)
	}
}

// TestWithinNodeAllReduce reproduces the B1 configuration of Table 3:
// matrix [[1 4] [4 4]] on 4-node A100, reduction on axis 0 — groups of 4
// GPUs inside a node over the NVSwitch. Expected analytic time:
// each ring edge carries 2·(3/4)·D, each GPU uplink two edges → 3D, at
// 270 GB/s with D ≈ 8.59 GB → ≈ 0.095 s (paper measures 0.15 s).
func TestWithinNodeAllReduce(t *testing.T) {
	lp := lowerFor(t, []int{4, 16}, []int{4, 16}, [][]int{{1, 4}, {4, 4}}, []int{0},
		synth.BaselineAllReduce())
	m := &Model{Sys: topology.A100System(4), Algo: Ring, Bytes: PayloadBytes(4)}
	got := m.ProgramTime(lp)
	d := PayloadBytes(4)
	want := 3 * d / topology.A100SwitchBandwidth
	if !approx(got, want, 0.02) {
		t.Errorf("within-node AllReduce = %v s, want ≈ %v s", got, want)
	}
}

// TestCrossNodeAllReduce reproduces B3 of Table 3: matrix [[4 1] [1 16]]
// with reduction on axis 0 — 16 groups of 4, one member per node, all
// contending for each node's single 8 GB/s NIC. Expected:
// per group a node carries 2 edges × 1.5·D = 3D; 16 groups → 48D ≈ 412 GB
// per NIC → ≈ 51.5 s (paper measures 56.1 s).
func TestCrossNodeAllReduce(t *testing.T) {
	lp := lowerFor(t, []int{4, 16}, []int{4, 16}, [][]int{{4, 1}, {1, 16}}, []int{0},
		synth.BaselineAllReduce())
	m := &Model{Sys: topology.A100System(4), Algo: Ring, Bytes: PayloadBytes(4)}
	got := m.ProgramTime(lp)
	d := PayloadBytes(4)
	want := 48 * d / topology.NICBandwidth
	if !approx(got, want, 0.02) {
		t.Errorf("cross-node AllReduce = %v s, want ≈ %v s", got, want)
	}
}

// TestPlacementImpact is the paper's Result 1: the same reduction differs
// by orders of magnitude between the best and worst placement (up to 448×
// in Table 3).
func TestPlacementImpact(t *testing.T) {
	within := lowerFor(t, []int{4, 16}, []int{4, 16}, [][]int{{1, 4}, {4, 4}}, []int{0},
		synth.BaselineAllReduce())
	cross := lowerFor(t, []int{4, 16}, []int{4, 16}, [][]int{{4, 1}, {1, 16}}, []int{0},
		synth.BaselineAllReduce())
	m := &Model{Sys: topology.A100System(4), Algo: Ring, Bytes: PayloadBytes(4)}
	ratio := m.ProgramTime(cross) / m.ProgramTime(within)
	if ratio < 100 {
		t.Errorf("placement impact ratio = %.1f, want > 100", ratio)
	}
}

// TestHierarchicalProgramBeatsAllReduce is the paper's Result 5: for
// cross-node reductions, ReduceScatter-AllReduce-AllGather outperforms the
// single AllReduce (B2: 28.8 s → 18.2 s, 1.57×).
func TestHierarchicalProgramBeatsAllReduce(t *testing.T) {
	rows := [][]int{{2, 2}, {2, 8}}
	baseline := lowerFor(t, []int{4, 16}, []int{4, 16}, rows, []int{0},
		synth.BaselineAllReduce())
	rsarag := lowerFor(t, []int{4, 16}, []int{4, 16}, rows, []int{0}, dsl.Program{
		{Slice: 1, Form: dsl.InsideGroup, Op: collective.ReduceScatter},
		{Slice: 1, Form: dsl.Parallel, Arg: 0, Op: collective.AllReduce},
		{Slice: 1, Form: dsl.InsideGroup, Op: collective.AllGather},
	})
	m := &Model{Sys: topology.A100System(4), Algo: Ring, Bytes: PayloadBytes(4)}
	tBase := m.ProgramTime(baseline)
	tOpt := m.ProgramTime(rsarag)
	speedup := tBase / tOpt
	if speedup < 1.2 || speedup > 2.5 {
		t.Errorf("RS-AR-AG speedup = %.2f, want in [1.2, 2.5] (paper: 1.57)", speedup)
	}
}

// TestV100CrossNodeRing reproduces L1 of Table 4: a single 32-wide ring
// AllReduce on 4-node V100 costs ≈ 2 cross edges × 2·(31/32)·D per NIC
// ≈ 4.15 s (paper measures 4.83 s).
func TestV100CrossNodeRing(t *testing.T) {
	lp := lowerFor(t, []int{4, 8}, []int{32}, [][]int{{4, 8}}, []int{0},
		synth.BaselineAllReduce())
	m := &Model{Sys: topology.V100System(4), Algo: Ring, Bytes: PayloadBytes(4)}
	got := m.ProgramTime(lp)
	d := PayloadBytes(4)
	want := 2 * 2 * (31.0 / 32.0) * d / topology.NICBandwidth
	if !approx(got, want, 0.02) {
		t.Errorf("V100 32-ring = %v s, want ≈ %v s", got, want)
	}
}

func TestTreeVsRingWithinNode(t *testing.T) {
	// Within a node the tree root's uplink carries 2 edges × 2D = 4D vs
	// the ring's 3D, so tree is moderately slower — matching the paper's
	// B1 ring 0.15 vs tree 0.20.
	lp := lowerFor(t, []int{4, 16}, []int{4, 16}, [][]int{{1, 4}, {4, 4}}, []int{0},
		synth.BaselineAllReduce())
	sys := topology.A100System(4)
	ring := &Model{Sys: sys, Algo: Ring, Bytes: PayloadBytes(4)}
	tree := &Model{Sys: sys, Algo: Tree, Bytes: PayloadBytes(4)}
	r, tr := ring.ProgramTime(lp), tree.ProgramTime(lp)
	if tr <= r {
		t.Errorf("tree (%v) should be slower than ring (%v) within a node", tr, r)
	}
	if tr > 2*r {
		t.Errorf("tree (%v) should be within 2× of ring (%v)", tr, r)
	}
}

func TestReduceScatterCheaperThanAllReduce(t *testing.T) {
	lp := lowerFor(t, []int{4, 16}, []int{4, 16}, [][]int{{1, 4}, {4, 4}}, []int{0},
		dsl.Program{{Slice: 0, Form: dsl.InsideGroup, Op: collective.ReduceScatter}})
	ar := lowerFor(t, []int{4, 16}, []int{4, 16}, [][]int{{1, 4}, {4, 4}}, []int{0},
		synth.BaselineAllReduce())
	m := &Model{Sys: topology.A100System(4), Algo: Ring, Bytes: PayloadBytes(4)}
	if rs, full := m.ProgramTime(lp), m.ProgramTime(ar); rs >= full {
		t.Errorf("ReduceScatter (%v) should cost less than AllReduce (%v)", rs, full)
	}
}

func TestStepTimePositiveForAllOps(t *testing.T) {
	// Every op on every algorithm must produce a positive finite time.
	m := &Model{Sys: topology.A100System(2), Algo: Ring, Bytes: 1e9}
	h, err := hierarchy.Build(hierarchy.KindReductionAxes,
		placement.MustMatrix([]int{2, 16}, []int{4, 8}, [][]int{{2, 2}, {1, 8}}),
		[]int{0}, hierarchy.Options{})
	if err != nil {
		t.Fatal(err)
	}
	res := synth.Synthesize(h, synth.Options{})
	for _, algo := range Algorithms {
		m.Algo = algo
		for _, p := range res.Programs {
			lp, err := lower.Lower(p, h)
			if err != nil {
				t.Fatal(err)
			}
			tt := m.ProgramTime(lp)
			if tt <= 0 || math.IsInf(tt, 0) || math.IsNaN(tt) {
				t.Errorf("%v/%v: time = %v", algo, p, tt)
			}
		}
	}
}

func TestCostScalesLinearlyWithBytes(t *testing.T) {
	lp := lowerFor(t, []int{4, 16}, []int{4, 16}, [][]int{{1, 4}, {4, 4}}, []int{0},
		synth.BaselineAllReduce())
	sys := topology.A100System(4)
	small := &Model{Sys: sys, Algo: Ring, Bytes: 1e9}
	large := &Model{Sys: sys, Algo: Ring, Bytes: 2e9}
	ratio := large.ProgramTime(lp) / small.ProgramTime(lp)
	if !approx(ratio, 2.0, 0.01) {
		t.Errorf("doubling bytes scaled time by %.3f, want ≈ 2", ratio)
	}
}

func TestAlgorithmStringParse(t *testing.T) {
	for _, a := range ExtendedAlgorithms {
		back, err := ParseAlgorithm(a.String())
		if err != nil || back != a {
			t.Errorf("ParseAlgorithm(%v) = %v, %v", a, back, err)
		}
	}
	// Parsing is case-insensitive: CLI users type -algo halvingdoubling.
	for in, want := range map[string]Algorithm{
		"ring": Ring, "TREE": Tree, "halvingdoubling": HalvingDoubling,
		"HALVINGDOUBLING": HalvingDoubling,
	} {
		got, err := ParseAlgorithm(in)
		if err != nil || got != want {
			t.Errorf("ParseAlgorithm(%q) = %v, %v; want %v", in, got, err, want)
		}
	}
	// Unknown names list the valid ones so the CLI error is actionable.
	_, err := ParseAlgorithm("nccl")
	if err == nil {
		t.Fatal("unknown algorithm accepted")
	}
	for _, name := range []string{"Ring", "Tree", "HalvingDoubling"} {
		if !strings.Contains(err.Error(), name) {
			t.Errorf("error %q does not enumerate %q", err, name)
		}
	}
}

func TestLatencyTermSmallButPresent(t *testing.T) {
	// With a tiny payload, latency dominates; ring rounds × link latency.
	lp := lowerFor(t, []int{4, 16}, []int{4, 16}, [][]int{{4, 1}, {1, 16}}, []int{0},
		synth.BaselineAllReduce())
	m := &Model{Sys: topology.A100System(4), Algo: Ring, Bytes: 1}
	got := m.ProgramTime(lp)
	// 2(g-1) = 6 rounds over the NIC (20 µs latency) = 120 µs floor.
	if got < 6*topology.NICLatency {
		t.Errorf("latency floor missing: %v", got)
	}
}
