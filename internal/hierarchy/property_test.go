package hierarchy

import (
	"testing"

	"p2/internal/placement"
)

// allConfigs yields a diverse set of (matrix, reduceAxes) pairs including
// non-power-of-two sizes and three hardware levels.
func allConfigs(t *testing.T) []struct {
	m   *placement.Matrix
	red []int
} {
	t.Helper()
	type cfg struct {
		hier, axes []int
		reds       [][]int
	}
	cfgs := []cfg{
		{[]int{1, 2, 2, 4}, []int{4, 4}, [][]int{{0}, {1}, {0, 1}}},
		{[]int{4, 16}, []int{8, 8}, [][]int{{0}, {1}}},
		{[]int{2, 2, 4}, []int{4, 4}, [][]int{{0}, {1}}},
		{[]int{3, 6}, []int{2, 9}, [][]int{{0}, {1}}},
		{[]int{4, 16}, []int{8, 2, 4}, [][]int{{0, 2}, {1}}},
	}
	var out []struct {
		m   *placement.Matrix
		red []int
	}
	for _, c := range cfgs {
		ms, err := placement.Enumerate(c.hier, c.axes)
		if err != nil {
			t.Fatal(err)
		}
		for _, m := range ms {
			for _, red := range c.reds {
				out = append(out, struct {
					m   *placement.Matrix
					red []int
				}{m, red})
			}
		}
	}
	return out
}

// TestLeavesPartitionDevices: for every hierarchy kind and config, the
// leaves' replica lists cover every physical device exactly once.
func TestLeavesPartitionDevices(t *testing.T) {
	for _, c := range allConfigs(t) {
		for _, kind := range Kinds {
			opts := Options{}
			h, err := Build(kind, c.m, c.red, opts)
			if err != nil {
				t.Fatalf("%v %v %v: %v", kind, c.m, c.red, err)
			}
			seen := map[int]int{}
			for _, leaves := range h.Leaves {
				for _, d := range leaves {
					seen[d]++
				}
			}
			if len(seen) != c.m.NumDevices() {
				t.Errorf("%v %v red %v: %d devices covered of %d",
					kind, c.m, c.red, len(seen), c.m.NumDevices())
			}
			for d, n := range seen {
				if n != 1 {
					t.Errorf("%v %v red %v: device %d appears %d times", kind, c.m, c.red, d, n)
				}
			}
			if h.K()*h.Replicas() != c.m.NumDevices() {
				t.Errorf("%v %v: K×Replicas = %d×%d != %d devices",
					kind, c.m, h.K(), h.Replicas(), c.m.NumDevices())
			}
		}
	}
}

// TestUniverseSizeMatchesSizes: K equals the product of level sizes.
func TestUniverseSizeMatchesSizes(t *testing.T) {
	for _, c := range allConfigs(t) {
		for _, kind := range Kinds {
			h, err := Build(kind, c.m, c.red, Options{})
			if err != nil {
				t.Fatal(err)
			}
			prod := 1
			for _, s := range h.Sizes {
				prod *= s
			}
			if prod != h.K() {
				t.Errorf("%v %v: ∏Sizes = %d, K = %d", kind, c.m, prod, h.K())
			}
		}
	}
}

// TestReplicaColumnsAreReductionGroups: for the reduction-axes hierarchy,
// fixing a replica index and sweeping leaves yields exactly one physical
// reduction group.
func TestReplicaColumnsAreReductionGroups(t *testing.T) {
	for _, c := range allConfigs(t) {
		h, err := Build(KindReductionAxes, c.m, c.red, Options{})
		if err != nil {
			t.Fatal(err)
		}
		for r := 0; r < h.Replicas(); r++ {
			col := make([]int, h.K())
			for u := 0; u < h.K(); u++ {
				col[u] = h.Leaves[u][r]
			}
			want := c.m.ReductionGroup(col[0], c.red)
			if !sameSet(col, want) {
				t.Errorf("%v red %v replica %d: column is not a reduction group", c.m, c.red, r)
			}
		}
	}
}

// TestCollapseInvariants: collapsing preserves the universe size and the
// leaf→device relation as a set, for multi-axis reductions.
func TestCollapseInvariants(t *testing.T) {
	ms, err := placement.Enumerate([]int{4, 16}, []int{8, 2, 4})
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range ms {
		plain, err := Build(KindReductionAxes, m, []int{0, 2}, Options{})
		if err != nil {
			t.Fatal(err)
		}
		coll, err := Build(KindReductionAxes, m, []int{0, 2}, Options{Collapse: true})
		if err != nil {
			t.Fatal(err)
		}
		if plain.K() != coll.K() || plain.Replicas() != coll.Replicas() {
			t.Errorf("%v: collapse changed universe shape", m)
		}
		if len(coll.Sizes) > len(plain.Sizes) {
			t.Errorf("%v: collapse grew the hierarchy", m)
		}
		for _, rl := range coll.ReductionLevel {
			if !rl {
				t.Errorf("%v: collapsed hierarchy has a non-reduction level", m)
			}
		}
	}
}

// TestReductionLevelFlags: full hierarchies flag exactly the reduction
// axes' factor levels.
func TestReductionLevelFlags(t *testing.T) {
	m, err := placement.NewMatrix([]int{1, 2, 2, 4}, []int{4, 4},
		[][]int{{1, 1, 2, 2}, {1, 2, 1, 2}})
	if err != nil {
		t.Fatal(err)
	}
	h, err := Build(KindRowBased, m, []int{1}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Sizes: [root, 2(a0), 2(a0), 2(a1), 2(a1)]; reduction axis is 1.
	want := []bool{true, false, false, true, true}
	for i, w := range want {
		if h.ReductionLevel[i] != w {
			t.Errorf("level %d: reduction = %v, want %v", i, h.ReductionLevel[i], w)
		}
	}
}

func sameSet(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	m := map[int]int{}
	for _, x := range a {
		m[x]++
	}
	for _, x := range b {
		m[x]--
	}
	for _, v := range m {
		if v != 0 {
			return false
		}
	}
	return true
}
