package hierarchy_test

import (
	"testing"

	"p2/internal/hierarchy"
	"p2/internal/placement"
	"p2/internal/synth"
)

func mustM(t *testing.T, hier, axes []int, rows [][]int) *placement.Matrix {
	t.Helper()
	m, err := placement.NewMatrix(hier, axes, rows)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// TestSignatureSharedAcrossPlacements: placements whose reduction-axis
// rows induce the same hierarchy (after unit-level dropping) must share a
// signature even though their physical leaves differ.
func TestSignatureSharedAcrossPlacements(t *testing.T) {
	hier := []int{4, 8, 8}
	axes := []int{16, 16}
	// Reduce-axis rows [1 2 8] and [2 1 8] both drop to sizes [2 8].
	a := mustM(t, hier, axes, [][]int{{1, 2, 8}, {4, 4, 1}})
	b := mustM(t, hier, axes, [][]int{{2, 1, 8}, {2, 8, 1}})
	// Row [1 4 4] drops to [4 4]: a different hierarchy.
	c := mustM(t, hier, axes, [][]int{{1, 4, 4}, {4, 2, 2}})

	ha := hierarchy.MustBuild(hierarchy.KindReductionAxes, a, []int{0}, hierarchy.Options{})
	hb := hierarchy.MustBuild(hierarchy.KindReductionAxes, b, []int{0}, hierarchy.Options{})
	hc := hierarchy.MustBuild(hierarchy.KindReductionAxes, c, []int{0}, hierarchy.Options{})

	if ha.Signature() != hb.Signature() {
		t.Errorf("signatures differ for equal reduction hierarchies:\n%s\n%s",
			ha.Signature(), hb.Signature())
	}
	if ha.Signature() == hc.Signature() {
		t.Errorf("distinct hierarchies %v and %v share signature %s", ha, hc, ha.Signature())
	}
}

// TestSignatureImpliesSamePrograms is the soundness property the planner
// memo relies on: equal signatures must yield identical synthesis
// results.
func TestSignatureImpliesSamePrograms(t *testing.T) {
	hier := []int{4, 8, 8}
	axes := []int{16, 16}
	type cfg struct {
		rows [][]int
		red  []int
	}
	cfgs := []cfg{
		{[][]int{{1, 2, 8}, {4, 4, 1}}, []int{0}},
		{[][]int{{2, 1, 8}, {2, 8, 1}}, []int{0}},
		{[][]int{{2, 8, 1}, {2, 1, 8}}, []int{0}},
		{[][]int{{1, 4, 4}, {4, 2, 2}}, []int{0}},
		{[][]int{{4, 4, 1}, {1, 2, 8}}, []int{1}},
	}
	bySig := map[string]string{}
	for _, c := range cfgs {
		m := mustM(t, hier, axes, c.rows)
		h := hierarchy.MustBuild(hierarchy.KindReductionAxes, m, c.red, hierarchy.Options{})
		progs := ""
		for _, p := range synth.Synthesize(h, synth.Options{MaxSize: 3}).Programs {
			progs += p.String() + "\n"
		}
		if prev, ok := bySig[h.Signature()]; ok {
			if prev != progs {
				t.Errorf("rows %v red %v: same signature, different programs", c.rows, c.red)
			}
		} else {
			bySig[h.Signature()] = progs
		}
	}
	if len(bySig) < 2 {
		t.Fatalf("test is vacuous: only %d distinct signatures", len(bySig))
	}
}

// TestSignatureDistinguishesReductionLevels: hierarchies with equal sizes
// but different reduction-level flags must not collide (their admissible
// instruction sets differ).
func TestSignatureDistinguishesReductionLevels(t *testing.T) {
	m := mustM(t, []int{1, 2, 2, 4}, []int{4, 4}, [][]int{{1, 1, 2, 2}, {1, 2, 1, 2}})
	hSys := hierarchy.MustBuild(hierarchy.KindSystem, m, []int{1}, hierarchy.Options{})
	hRow := hierarchy.MustBuild(hierarchy.KindRowBased, m, []int{1}, hierarchy.Options{})
	if hSys.Signature() == hRow.Signature() {
		// Only a problem when their synthesis output could differ; sizes
		// or flags or groups must separate them.
		t.Errorf("system and row-based hierarchies share signature %s", hSys.Signature())
	}
}
