package hierarchy

import (
	"reflect"
	"testing"

	"p2/internal/placement"
)

// fig2dMatrix is the running example: hierarchy [1 2 2 4], axes [4 4],
// matrix [[1 1 2 2] [1 2 1 2]], reduction on axis 1.
func fig2dMatrix(t *testing.T) *placement.Matrix {
	t.Helper()
	m, err := placement.NewMatrix([]int{1, 2, 2, 4}, []int{4, 4},
		[][]int{{1, 1, 2, 2}, {1, 2, 1, 2}})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestTable1Hierarchies(t *testing.T) {
	// Table 1 (first half): for the matrix [[1 1 2 2] [1 2 1 2]] the
	// column-based hierarchy is [1 1 1 2 2 1 2 2], the row-based one is
	// [1 1 2 2 1 2 1 2], and the reduction-axis one (axis 1) is
	// [1 2 1 2]. Unit levels are dropped in our construction, so we
	// compare the non-unit suffixes.
	m := fig2dMatrix(t)
	cases := []struct {
		kind Kind
		opts Options
		want []int // Sizes including the explicit root
	}{
		{KindSystem, Options{}, []int{1, 2, 2, 4}},
		{KindColumnBased, Options{}, []int{1, 2, 2, 2, 2}},
		{KindColumnBased, Options{KeepUnitLevels: true}, []int{1, 1, 1, 1, 2, 2, 1, 2, 2}},
		{KindRowBased, Options{}, []int{1, 2, 2, 2, 2}},
		{KindRowBased, Options{KeepUnitLevels: true}, []int{1, 1, 1, 2, 2, 1, 2, 1, 2}},
		{KindReductionAxes, Options{}, []int{1, 2, 2}},
		{KindReductionAxes, Options{KeepUnitLevels: true}, []int{1, 1, 2, 1, 2}},
	}
	for _, c := range cases {
		h := MustBuild(c.kind, m, []int{1}, c.opts)
		if !reflect.DeepEqual(h.Sizes, c.want) {
			t.Errorf("%v (keep=%v): Sizes = %v, want %v", c.kind, c.opts.KeepUnitLevels, h.Sizes, c.want)
		}
	}
}

func TestTable1Collapsed(t *testing.T) {
	// Table 1 (second half): matrix [[1 2 3][4 5 6][7 8 9]] with reduction
	// axes {0, 2} collapses to [7 16 27] = [1*7 2*8 3*9].
	hier := []int{28, 80, 162}
	axes := []int{6, 120, 504}
	m, err := placement.NewMatrix(hier, axes,
		[][]int{{1, 2, 3}, {4, 5, 6}, {7, 8, 9}})
	if err != nil {
		t.Fatal(err)
	}
	h := MustBuild(KindReductionAxes, m, []int{0, 2}, Options{Collapse: true})
	if !reflect.DeepEqual(h.Sizes, []int{1, 7, 16, 27}) {
		t.Errorf("collapsed Sizes = %v, want [1 7 16 27]", h.Sizes)
	}
	// Uncollapsed: [1 2 3 7 8 9].
	h2 := MustBuild(KindReductionAxes, m, []int{0, 2}, Options{})
	if !reflect.DeepEqual(h2.Sizes, []int{1, 2, 3, 7, 8, 9}) {
		t.Errorf("uncollapsed Sizes = %v, want [1 2 3 7 8 9]", h2.Sizes)
	}
	if h.K() != h2.K() {
		t.Errorf("collapse changed universe size: %d vs %d", h.K(), h2.K())
	}
}

func TestFullHierarchiesAreBijections(t *testing.T) {
	m := fig2dMatrix(t)
	for _, kind := range []Kind{KindSystem, KindColumnBased, KindRowBased} {
		h := MustBuild(kind, m, []int{1}, Options{})
		if h.K() != 16 {
			t.Errorf("%v: K = %d, want 16", kind, h.K())
		}
		if h.Replicas() != 1 {
			t.Errorf("%v: Replicas = %d, want 1", kind, h.Replicas())
		}
		seen := map[int]bool{}
		for u := 0; u < h.K(); u++ {
			if len(h.Leaves[u]) != 1 {
				t.Fatalf("%v: leaf %d has %d devices", kind, u, len(h.Leaves[u]))
			}
			d := h.Leaves[u][0]
			if seen[d] {
				t.Fatalf("%v: device %d appears twice", kind, d)
			}
			seen[d] = true
		}
	}
}

func TestSystemHierarchyLeafIsDevice(t *testing.T) {
	// For kind (a) the leaf index equals the physical device id.
	m := fig2dMatrix(t)
	h := MustBuild(KindSystem, m, []int{1}, Options{})
	for u := 0; u < h.K(); u++ {
		if h.Leaves[u][0] != u {
			t.Errorf("leaf %d maps to device %d", u, h.Leaves[u][0])
		}
	}
}

func TestReductionHierarchyLeavesAreGroups(t *testing.T) {
	// For Fig. 2d reducing along axis 1 (shards), the universe is the 4
	// shard coordinates. Leaf u's replicas must be exactly the devices
	// with shard coordinate u, one per batch coordinate.
	m := fig2dMatrix(t)
	h := MustBuild(KindReductionAxes, m, []int{1}, Options{})
	if h.K() != 4 {
		t.Fatalf("K = %d, want 4", h.K())
	}
	if h.Replicas() != 4 {
		t.Fatalf("Replicas = %d, want 4", h.Replicas())
	}
	for u := 0; u < h.K(); u++ {
		for _, dev := range h.Leaves[u] {
			if got := m.AxisCoord(dev, 1); got != u {
				t.Errorf("leaf %d holds device %d with shard coord %d", u, dev, got)
			}
		}
	}
	// Replica r of every leaf shares the same batch coordinate, so the
	// lowered groups {Leaves[u][r] : u} are exactly the reduction groups.
	for r := 0; r < h.Replicas(); r++ {
		batch := m.AxisCoord(h.Leaves[0][r], 0)
		for u := 1; u < h.K(); u++ {
			if got := m.AxisCoord(h.Leaves[u][r], 0); got != batch {
				t.Errorf("replica %d: leaf %d batch %d, want %d", r, u, got, batch)
			}
		}
	}
}

func TestReductionGroupsInLeafSpace(t *testing.T) {
	m := fig2dMatrix(t)
	// Full hierarchies: leaf-space groups must mirror physical groups.
	h := MustBuild(KindRowBased, m, []int{1}, Options{})
	for u := 0; u < h.K(); u++ {
		g := h.Groups[u]
		if len(g) != 4 {
			t.Fatalf("leaf %d group size %d", u, len(g))
		}
		// All members must map to devices in the same physical group.
		dev := h.Leaves[u][0]
		want := m.ReductionGroup(dev, []int{1})
		got := make([]int, len(g))
		for i, lu := range g {
			got[i] = h.Leaves[lu][0]
		}
		if !reflect.DeepEqual(sortedCopy(got), sortedCopy(want)) {
			t.Errorf("leaf %d: group devices %v, want %v", u, got, want)
		}
	}
	// Reduction hierarchy: every leaf groups with all leaves.
	hr := MustBuild(KindReductionAxes, m, []int{1}, Options{})
	for u := 0; u < hr.K(); u++ {
		if len(hr.Groups[u]) != hr.K() {
			t.Errorf("reduction leaf %d group size %d, want %d", u, len(hr.Groups[u]), hr.K())
		}
	}
}

func TestMultiAxisReduction(t *testing.T) {
	// Three axes on [4 16], reduce on {0, 2} as in Table 4 rows H/I.
	m, err := placement.NewMatrix([]int{4, 16}, []int{16, 2, 2},
		[][]int{{2, 8}, {2, 1}, {1, 2}})
	if err != nil {
		t.Fatal(err)
	}
	h := MustBuild(KindReductionAxes, m, []int{0, 2}, Options{})
	if h.K() != 32 {
		t.Errorf("K = %d, want 16*2 = 32", h.K())
	}
	if h.Replicas() != 2 {
		t.Errorf("Replicas = %d, want 2 (the non-reduced axis)", h.Replicas())
	}
	// Every replica column must hold a full reduction group.
	for r := 0; r < h.Replicas(); r++ {
		devs := make([]int, h.K())
		for u := 0; u < h.K(); u++ {
			devs[u] = h.Leaves[u][r]
		}
		want := m.ReductionGroup(devs[0], []int{0, 2})
		if !reflect.DeepEqual(sortedCopy(devs), sortedCopy(want)) {
			t.Errorf("replica %d devices != reduction group", r)
		}
	}
}

func TestCollapsedMappingConsistent(t *testing.T) {
	// Collapsed and uncollapsed reduction hierarchies must denote the
	// same leaf→device relation up to leaf relabeling: the multiset of
	// replica lists must match.
	m, err := placement.NewMatrix([]int{4, 16}, []int{16, 2, 2},
		[][]int{{2, 8}, {2, 1}, {1, 2}})
	if err != nil {
		t.Fatal(err)
	}
	a := MustBuild(KindReductionAxes, m, []int{0, 2}, Options{})
	b := MustBuild(KindReductionAxes, m, []int{0, 2}, Options{Collapse: true})
	if a.K() != b.K() {
		t.Fatalf("universe sizes differ: %d vs %d", a.K(), b.K())
	}
	seen := map[int]bool{}
	aset := map[int]bool{}
	for u := 0; u < a.K(); u++ {
		aset[a.Leaves[u][0]] = true
	}
	for u := 0; u < b.K(); u++ {
		d := b.Leaves[u][0]
		if seen[d] {
			t.Fatalf("collapsed leaf device %d duplicated", d)
		}
		seen[d] = true
		if !aset[d] {
			t.Errorf("collapsed leaf device %d not in uncollapsed set", d)
		}
	}
}

func TestBuildErrors(t *testing.T) {
	m := fig2dMatrix(t)
	if _, err := Build(KindReductionAxes, m, nil, Options{}); err == nil {
		t.Error("empty reduce axes accepted")
	}
	if _, err := Build(KindReductionAxes, m, []int{5}, Options{}); err == nil {
		t.Error("out-of-range axis accepted")
	}
	if _, err := Build(KindReductionAxes, m, []int{1, 1}, Options{}); err == nil {
		t.Error("duplicate axis accepted")
	}
	if _, err := Build(Kind(42), m, []int{1}, Options{}); err == nil {
		t.Error("unknown kind accepted")
	}
}

func TestKindString(t *testing.T) {
	wants := map[Kind]string{
		KindSystem:        "system",
		KindColumnBased:   "column-based",
		KindRowBased:      "row-based",
		KindReductionAxes: "reduction-axes",
	}
	for k, w := range wants {
		if k.String() != w {
			t.Errorf("%d.String() = %q, want %q", int(k), k.String(), w)
		}
	}
}

func TestHierarchyString(t *testing.T) {
	m := fig2dMatrix(t)
	h := MustBuild(KindReductionAxes, m, []int{1}, Options{})
	if got := h.String(); got != "[2 2]" {
		t.Errorf("String = %q", got)
	}
}

func sortedCopy(xs []int) []int {
	out := append([]int(nil), xs...)
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j-1] > out[j]; j-- {
			out[j-1], out[j] = out[j], out[j-1]
		}
	}
	return out
}
