// Package hierarchy constructs the synthesis hierarchies of §3.4 of the P²
// paper. Given a parallelism matrix and the requested reduction axes, four
// hierarchies can drive the reduction DSL:
//
//	(a) KindSystem        — the raw hardware hierarchy, e.g. [1 2 2 4]
//	(b) KindColumnBased   — parallelism factors expanded column by column
//	(c) KindRowBased      — parallelism factors expanded row by row
//	(d) KindReductionAxes — only the reduction axes' factors (P²'s choice),
//	                        optionally collapsing factors that live on the
//	                        same hardware level (§2.5)
//
// A hierarchy is a list of level sizes plus, per leaf, (1) the physical
// devices that leaf denotes and (2) the leaf-space reduction group. For
// (a)–(c) each leaf is exactly one device; for (d) each leaf stands for one
// device per combination of non-reduction coordinates (its replicas), and
// lowering replicates synthesized groups across replicas.
package hierarchy

import (
	"fmt"
	"strings"

	"p2/internal/factor"
	"p2/internal/placement"
)

// Kind selects which synthesis hierarchy to build.
type Kind int

const (
	// KindSystem is hierarchy (a): the hardware levels themselves.
	KindSystem Kind = iota
	// KindColumnBased is hierarchy (b): factors ordered column-major.
	KindColumnBased
	// KindRowBased is hierarchy (c): factors ordered row-major.
	KindRowBased
	// KindReductionAxes is hierarchy (d): only the reduction axes' rows,
	// row-major. This is what P² uses.
	KindReductionAxes
)

// Kinds lists all hierarchy kinds in expressiveness order (Theorem 3.2:
// each is at least as expressive as the ones before it).
var Kinds = []Kind{KindSystem, KindColumnBased, KindRowBased, KindReductionAxes}

// String names the kind as in the paper's discussion.
func (k Kind) String() string {
	switch k {
	case KindSystem:
		return "system"
	case KindColumnBased:
		return "column-based"
	case KindRowBased:
		return "row-based"
	case KindReductionAxes:
		return "reduction-axes"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Hierarchy is a synthesis hierarchy ready for the reduction DSL.
type Hierarchy struct {
	Kind Kind
	// Sizes are the level cardinalities, root-most first. Sizes[0] is
	// always the implicit root of size 1 (the paper appends (root, 1)).
	// Interior levels of size 1 are dropped: they cannot change any
	// device grouping and only duplicate instructions.
	Sizes []int
	// Names label each level for diagnostics, aligned with Sizes.
	Names []string
	// Leaves[u] lists the physical devices leaf u denotes, ordered by the
	// non-reduction coordinate combination (the replica index). All
	// leaves have the same replica count.
	Leaves [][]int
	// Groups[u] is the leaf-space reduction group of leaf u: the leaves
	// whose data must be reduced with it, sorted ascending and including
	// u itself.
	Groups [][]int
	// ReductionLevel[l] reports whether level l consists purely of
	// reduction-axis parallelism factors. The admissibility conditions of
	// Corollary B.4 and Lemmas B.5/B.6 quantify over these flags: an
	// instruction may only vary or cover non-root levels that are on the
	// reduction axes. For KindReductionAxes every level is a reduction
	// level.
	ReductionLevel []bool

	radix *factor.Radix
}

// K returns the number of leaves (the synthesis universe size).
func (h *Hierarchy) K() int { return len(h.Leaves) }

// Replicas returns how many physical devices each leaf denotes.
func (h *Hierarchy) Replicas() int { return len(h.Leaves[0]) }

// NumLevels returns the number of hierarchy levels including the root.
func (h *Hierarchy) NumLevels() int { return len(h.Sizes) }

// Radix exposes the leaf-address codec.
func (h *Hierarchy) Radix() *factor.Radix { return h.radix }

// String renders the hierarchy sizes like "[1 2 1 2]" (root omitted, as in
// the paper's presentation).
func (h *Hierarchy) String() string {
	var b strings.Builder
	b.WriteByte('[')
	first := true
	for _, s := range h.Sizes[1:] {
		if !first {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "%d", s)
		first = false
	}
	b.WriteByte(']')
	return b.String()
}

// Signature returns a canonical fingerprint of everything program
// synthesis depends on: the level sizes, which levels are reduction
// levels, and the leaf-space reduction groups. Candidate enumeration
// (Instruction.Validate/Admissible/Groups), the Hoare semantics and the
// target states are all functions of exactly these three, so two
// hierarchies with equal signatures admit the same synthesized program
// set and a planner may synthesize once per signature and reuse the
// result across placements. The physical leaves are deliberately
// excluded: placements that lower differently still share a signature
// whenever their reduction structure coincides.
func (h *Hierarchy) Signature() string {
	var b strings.Builder
	b.WriteString("s:")
	for i, s := range h.Sizes {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%d", s)
	}
	b.WriteString("|r:")
	for _, r := range h.ReductionLevel {
		if r {
			b.WriteByte('1')
		} else {
			b.WriteByte('0')
		}
	}
	b.WriteString("|g:")
	for _, g := range h.Groups {
		for i, u := range g {
			if i > 0 {
				b.WriteByte(',')
			}
			fmt.Fprintf(&b, "%d", u)
		}
		b.WriteByte(';')
	}
	return b.String()
}

// Options configure hierarchy construction.
type Options struct {
	// Collapse merges reduction-axis factors that belong to the same
	// hardware level into a single level (the [7 16 27] optimization of
	// §2.5). Only meaningful for KindReductionAxes.
	Collapse bool
	// KeepUnitLevels retains interior levels of size 1 instead of
	// dropping them. Useful for ablation studies of the search space.
	KeepUnitLevels bool
}

// Build constructs the synthesis hierarchy of the given kind for matrix m
// and reduction axes reduceAxes (indices into m.Axes, ascending).
func Build(kind Kind, m *placement.Matrix, reduceAxes []int, opts Options) (*Hierarchy, error) {
	if len(reduceAxes) == 0 {
		return nil, fmt.Errorf("hierarchy: no reduction axes")
	}
	seen := map[int]bool{}
	for _, r := range reduceAxes {
		if r < 0 || r >= m.NumAxes() {
			return nil, fmt.Errorf("hierarchy: reduction axis %d out of range", r)
		}
		if seen[r] {
			return nil, fmt.Errorf("hierarchy: duplicate reduction axis %d", r)
		}
		seen[r] = true
	}
	switch kind {
	case KindSystem, KindColumnBased, KindRowBased:
		return buildFull(kind, m, reduceAxes, opts)
	case KindReductionAxes:
		return buildReduction(m, reduceAxes, opts)
	default:
		return nil, fmt.Errorf("hierarchy: unknown kind %v", kind)
	}
}

// MustBuild is Build panicking on error.
func MustBuild(kind Kind, m *placement.Matrix, reduceAxes []int, opts Options) *Hierarchy {
	h, err := Build(kind, m, reduceAxes, opts)
	if err != nil {
		panic(err)
	}
	return h
}

// levelRef identifies one hierarchy position in terms of the matrix.
type levelRef struct {
	axis      int // -1 for a raw hardware level (kind (a))
	level     int
	size      int
	name      string
	reduction bool
}

func buildFull(kind Kind, m *placement.Matrix, reduceAxes []int, opts Options) (*Hierarchy, error) {
	isRed := make([]bool, m.NumAxes())
	for _, r := range reduceAxes {
		isRed[r] = true
	}
	// A raw hardware level is a reduction level when every non-reduction
	// factor in its column is 1.
	levelIsRed := func(j int) bool {
		for i := 0; i < m.NumAxes(); i++ {
			if !isRed[i] && m.X[i][j] != 1 {
				return false
			}
		}
		return true
	}
	var refs []levelRef
	switch kind {
	case KindSystem:
		for j := 0; j < m.NumLevels(); j++ {
			refs = append(refs, levelRef{axis: -1, level: j, size: m.Hier[j],
				name: fmt.Sprintf("h%d", j), reduction: levelIsRed(j)})
		}
	case KindColumnBased:
		for j := 0; j < m.NumLevels(); j++ {
			for i := 0; i < m.NumAxes(); i++ {
				refs = append(refs, levelRef{axis: i, level: j, size: m.X[i][j],
					name: fmt.Sprintf("x%d,%d", i, j), reduction: isRed[i]})
			}
		}
	case KindRowBased:
		for i := 0; i < m.NumAxes(); i++ {
			for j := 0; j < m.NumLevels(); j++ {
				refs = append(refs, levelRef{axis: i, level: j, size: m.X[i][j],
					name: fmt.Sprintf("x%d,%d", i, j), reduction: isRed[i]})
			}
		}
	default:
		// Build routes KindReductionAxes to buildReduction; any kind landing
		// here would otherwise build an empty hierarchy silently.
		return nil, fmt.Errorf("hierarchy: buildFull cannot handle kind %v", kind)
	}
	kept := keepRefs(refs, opts)
	sizes := refSizes(kept)
	rad := factor.NewRadix(sizes)

	n := m.NumDevices()
	// leafOf maps each physical device to its leaf index under this
	// hierarchy's digit ordering.
	leaves := make([][]int, n)
	leafOf := make([]int, n)
	digits := make([]int, len(kept))
	for dev := 0; dev < n; dev++ {
		for p, ref := range kept[1:] { // skip root digit (always 0)
			if ref.axis < 0 {
				digits[p+1] = m.LevelCoord(dev, ref.level)
			} else {
				digits[p+1] = m.FactorDigit(dev, ref.axis, ref.level)
			}
		}
		digits[0] = 0
		u := rad.Encode(digits)
		leafOf[dev] = u
		leaves[u] = []int{dev}
	}
	// Leaf-space reduction groups via the matrix's device groups.
	groups := make([][]int, n)
	for dev := 0; dev < n; dev++ {
		phys := m.ReductionGroup(dev, reduceAxes)
		g := make([]int, len(phys))
		for i, pd := range phys {
			g[i] = leafOf[pd]
		}
		groups[leafOf[dev]] = sortedInts(g)
	}
	return &Hierarchy{
		Kind:           kind,
		Sizes:          sizes,
		Names:          refNames(kept),
		Leaves:         leaves,
		Groups:         groups,
		ReductionLevel: refReduction(kept),
		radix:          rad,
	}, nil
}

func buildReduction(m *placement.Matrix, reduceAxes []int, opts Options) (*Hierarchy, error) {
	var refs []levelRef
	if opts.Collapse {
		// One level per hardware level: the product of the reduction
		// axes' factors there (e.g. [1 2 3; 7 8 9] on axes {0,1} gives
		// [7 16 27] as in §2.5).
		for j := 0; j < m.NumLevels(); j++ {
			size := 1
			for _, r := range reduceAxes {
				size *= m.X[r][j]
			}
			refs = append(refs, levelRef{axis: -2, level: j, size: size,
				name: fmt.Sprintf("c%d", j), reduction: true})
		}
	} else {
		for _, r := range reduceAxes {
			for j := 0; j < m.NumLevels(); j++ {
				refs = append(refs, levelRef{axis: r, level: j, size: m.X[r][j],
					name: fmt.Sprintf("x%d,%d", r, j), reduction: true})
			}
		}
	}
	kept := keepRefs(refs, opts)
	sizes := refSizes(kept)
	rad := factor.NewRadix(sizes)
	k := rad.Total()

	// Enumerate replicas: all combinations of non-reduction coordinates.
	isRed := make([]bool, m.NumAxes())
	for _, r := range reduceAxes {
		isRed[r] = true
	}
	var freeAxes, freeSizes []int
	for i := 0; i < m.NumAxes(); i++ {
		if !isRed[i] {
			freeAxes = append(freeAxes, i)
			freeSizes = append(freeSizes, m.Axes[i])
		}
	}
	freeRad := factor.NewRadix(freeSizes)

	leaves := make([][]int, k)
	digits := make([]int, len(kept))
	axisCoords := make([]int, m.NumAxes())
	freeDigits := make([]int, freeRad.Len())
	for u := 0; u < k; u++ {
		rad.DecodeInto(u, digits)
		// Convert hierarchy digits to per-reduction-axis coordinates.
		// Refs for one axis appear in root→leaf level order, so a
		// multiply-accumulate per axis rebuilds its coordinate; dropped
		// unit factors contribute digit 0 and change nothing.
		var redCoord []int
		if opts.Collapse {
			redCoord = collapsedLeafToRedCoord(u, m, reduceAxes, kept, rad)
		} else {
			redCoord = make([]int, len(reduceAxes))
			for p, ref := range kept {
				if p == 0 {
					continue // root
				}
				ri := indexOf(reduceAxes, ref.axis)
				redCoord[ri] = redCoord[ri]*ref.size + digits[p]
			}
		}
		reps := make([]int, 0, freeRad.Total())
		for v := 0; v < freeRad.Total(); v++ {
			freeRad.DecodeInto(v, freeDigits)
			for idx, a := range freeAxes {
				axisCoords[a] = freeDigits[idx]
			}
			for idx, r := range reduceAxes {
				axisCoords[r] = redCoord[idx]
			}
			reps = append(reps, m.Device(axisCoords))
		}
		leaves[u] = reps
	}

	all := make([]int, k)
	for i := range all {
		all[i] = i
	}
	groups := make([][]int, k)
	for u := range groups {
		groups[u] = all
	}
	return &Hierarchy{
		Kind:           KindReductionAxes,
		Sizes:          sizes,
		Names:          refNames(kept),
		Leaves:         leaves,
		Groups:         groups,
		ReductionLevel: refReduction(kept),
		radix:          rad,
	}, nil
}

// collapsedLeafToRedCoord decodes leaf u of a collapsed reduction hierarchy
// into per-reduction-axis coordinates. Within a collapsed level, per-axis
// digits are packed row-major (first reduction axis most significant).
func collapsedLeafToRedCoord(u int, m *placement.Matrix, reduceAxes []int, kept []levelRef, rad *factor.Radix) []int {
	redCoord := make([]int, len(reduceAxes))
	digits := rad.Decode(u)
	for p, ref := range kept {
		if p == 0 || ref.axis != -2 {
			continue
		}
		d := digits[p]
		// Unpack row-major: last axis least significant.
		sub := make([]int, len(reduceAxes))
		for idx := len(reduceAxes) - 1; idx >= 0; idx-- {
			f := m.X[reduceAxes[idx]][ref.level]
			sub[idx] = d % f
			d /= f
		}
		for idx := range reduceAxes {
			f := m.X[reduceAxes[idx]][ref.level]
			redCoord[idx] = redCoord[idx]*f + sub[idx]
		}
	}
	return redCoord
}

func indexOf(xs []int, v int) int {
	for i, x := range xs {
		if x == v {
			return i
		}
	}
	panic(fmt.Sprintf("hierarchy: %d not in %v", v, xs))
}

// keepRefs prepends the root and drops interior unit levels unless asked
// to keep them.
func keepRefs(refs []levelRef, opts Options) []levelRef {
	out := []levelRef{{axis: -3, level: -1, size: 1, name: "root", reduction: true}}
	for _, r := range refs {
		if r.size == 1 && !opts.KeepUnitLevels {
			continue
		}
		out = append(out, r)
	}
	return out
}

func refSizes(refs []levelRef) []int {
	out := make([]int, len(refs))
	for i, r := range refs {
		out[i] = r.size
	}
	return out
}

func refReduction(refs []levelRef) []bool {
	out := make([]bool, len(refs))
	for i, r := range refs {
		out[i] = r.reduction
	}
	return out
}

func refNames(refs []levelRef) []string {
	out := make([]string, len(refs))
	for i, r := range refs {
		out[i] = r.name
	}
	return out
}

func sortedInts(xs []int) []int {
	out := append([]int(nil), xs...)
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j-1] > out[j]; j-- {
			out[j-1], out[j] = out[j], out[j-1]
		}
	}
	return out
}
