// Regression tests for the default-payload convention: the paper's
// 2^29 × machines float32 per GPU, where "machines" is the product of all
// non-leaf level counts — NOT the root level count, which undercounted
// payloads on three-level systems (SuperPod(2,4) got the 2-node payload).
package p2_test

import (
	"runtime"
	"testing"

	"p2"
	"p2/internal/cost"
	"p2/internal/synth"
)

func planBytes(t *testing.T, sys *p2.System, axes []int) float64 {
	t.Helper()
	res, err := p2.Plan(sys, p2.Request{Axes: axes, ReduceAxes: []int{0}, TopK: 1})
	if err != nil {
		t.Fatal(err)
	}
	return res.Request.Bytes
}

func TestDefaultPayloadPerPreset(t *testing.T) {
	const chunk = float64(1<<29) * 4 // 2^29 float32 per machine
	cases := []struct {
		name     string
		sys      *p2.System
		axes     []int
		machines int
	}{
		{"fig2a", p2.Fig2aSystem(), []int{4, 4}, 4},       // 1 rack × 2 servers × 2 CPUs
		{"a100-4", p2.A100System(4), []int{4, 16}, 4},     // 4 nodes
		{"v100-2", p2.V100System(2), []int{2, 8}, 2},      // 2 nodes
		{"superpod-2x4", p2.SuperPodSystem(2, 4), []int{8, 8}, 8}, // 2 pods × 4 nodes
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			want := chunk * float64(tc.machines)
			if got := cost.DefaultPayload(tc.sys); got != want {
				t.Errorf("cost.DefaultPayload = %v, want %v (%d machines)", got, want, tc.machines)
			}
			if got := planBytes(t, tc.sys, tc.axes); got != want {
				t.Errorf("Plan default Bytes = %v, want %v", got, want)
			}
		})
	}
}

// TestSuperPodPayloadLocked is the acceptance-criterion lock: the 2×4
// SuperPod has 8 machines, so its default payload is 2^29 × 8 × 4 bytes —
// not the 2-pod payload the root-level-count bug produced.
func TestSuperPodPayloadLocked(t *testing.T) {
	want := float64(1<<29) * 8 * 4
	if got := planBytes(t, p2.SuperPodSystem(2, 4), []int{8, 8}); got != want {
		t.Fatalf("SuperPod(2,4) default payload = %v, want 2^29 × 8 machines × 4 = %v", got, want)
	}
	serial, err := p2.PlanSerial(p2.SuperPodSystem(2, 4), p2.Request{Axes: []int{8, 8}, ReduceAxes: []int{0}})
	if err != nil {
		t.Fatal(err)
	}
	if serial.Request.Bytes != want {
		t.Errorf("PlanSerial default payload = %v, want %v", serial.Request.Bytes, want)
	}
}

// TestRequestEchoAppliesDefaults locks the PlanResult.Request contract:
// every defaulted field is echoed resolved, not as its raw zero.
func TestRequestEchoAppliesDefaults(t *testing.T) {
	res, err := p2.Plan(p2.Fig2aSystem(), p2.Request{Axes: []int{4, 4}, ReduceAxes: []int{0}, TopK: 1})
	if err != nil {
		t.Fatal(err)
	}
	req := res.Request
	if req.Bytes != cost.DefaultPayload(p2.Fig2aSystem()) {
		t.Errorf("Bytes echoed %v, want default payload", req.Bytes)
	}
	if req.MaxProgramSize != synth.DefaultMaxSize {
		t.Errorf("MaxProgramSize echoed %d, want %d", req.MaxProgramSize, synth.DefaultMaxSize)
	}
	if req.Parallelism != runtime.GOMAXPROCS(0) {
		t.Errorf("Parallelism echoed %d, want GOMAXPROCS %d", req.Parallelism, runtime.GOMAXPROCS(0))
	}
	if len(req.Algos) != 1 || req.Algos[0] != p2.Ring {
		t.Errorf("Algos echoed %v, want [Ring]", req.Algos)
	}

	// A single-entry Algos set pins Algo; explicit values echo unchanged.
	res, err = p2.Plan(p2.Fig2aSystem(), p2.Request{Axes: []int{4, 4}, ReduceAxes: []int{0},
		Algos: []p2.Algorithm{p2.Tree}, MaxProgramSize: 3, Parallelism: 2, TopK: 1})
	if err != nil {
		t.Fatal(err)
	}
	req = res.Request
	if req.Algo != p2.Tree {
		t.Errorf("Algo echoed %v, want Tree (pinned by single-entry Algos)", req.Algo)
	}
	if req.MaxProgramSize != 3 || req.Parallelism != 2 {
		t.Errorf("explicit values not echoed: MaxProgramSize=%d Parallelism=%d", req.MaxProgramSize, req.Parallelism)
	}
}
