package p2

import (
	"fmt"
	"strings"
	"testing"
)

func TestPlanA100(t *testing.T) {
	plan, err := Plan(A100System(4), Request{Axes: []int{4, 16}, ReduceAxes: []int{0}})
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Strategies) < 9 { // 3 matrices × ≥3 programs
		t.Fatalf("strategies = %d", len(plan.Strategies))
	}
	best := plan.Best()
	// The best placement keeps the reduction axis inside a node, where
	// the plain AllReduce is optimal (paper Result 3).
	if got := best.Matrix.String(); got != "[[1 4] [4 4]]" {
		t.Errorf("best matrix = %s, want [[1 4] [4 4]]", got)
	}
	if best.Predicted <= 0 {
		t.Error("non-positive prediction")
	}
	// Ranking is ascending.
	for i := 1; i < len(plan.Strategies); i++ {
		if plan.Strategies[i-1].Predicted > plan.Strategies[i].Predicted {
			t.Fatal("strategies not sorted by prediction")
		}
	}
}

func TestPlanSingleMatrix(t *testing.T) {
	sys := A100System(4)
	m, err := ParseMatrix(sys, []int{4, 16}, "[[2 2] [2 8]]")
	if err != nil {
		t.Fatal(err)
	}
	plan, err := Plan(sys, Request{Axes: []int{4, 16}, ReduceAxes: []int{0}, Matrix: m})
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range plan.Strategies {
		if !s.Matrix.Equal(m) {
			t.Fatalf("strategy for unexpected matrix %v", s.Matrix)
		}
	}
	base := plan.BaselineFor(m)
	if base == nil {
		t.Fatal("baseline missing")
	}
	if plan.Best().Predicted >= base.Predicted {
		t.Error("cross-node plan should beat the AllReduce baseline")
	}
}

func TestStrategyMeasure(t *testing.T) {
	plan, err := Plan(V100System(2), Request{Axes: []int{4, 4}, ReduceAxes: []int{1}, Bytes: 1e8})
	if err != nil {
		t.Fatal(err)
	}
	s := plan.Best()
	meas := s.Measure()
	if meas <= 0 {
		t.Errorf("measured %v", meas)
	}
	if s.Lowered() == nil || len(s.Lowered().Steps) == 0 {
		t.Error("lowered program missing")
	}
}

func TestPlanErrors(t *testing.T) {
	if _, err := Plan(A100System(2), Request{Axes: []int{3}, ReduceAxes: []int{0}}); err == nil {
		t.Error("bad axes accepted")
	}
	if _, err := Plan(A100System(2), Request{Axes: []int{32}, ReduceAxes: []int{7}}); err == nil {
		t.Error("bad reduce axis accepted")
	}
}

func TestParseProgram(t *testing.T) {
	p, err := ParseProgram("(0, InsideGroup, AllReduce)")
	if err != nil {
		t.Fatal(err)
	}
	if len(p) != 1 {
		t.Fatalf("parsed %d instructions", len(p))
	}
	if _, err := ParseProgram("nonsense"); err == nil {
		t.Error("garbage accepted")
	}
}

func TestPlacements(t *testing.T) {
	ms, err := Placements(A100System(4), []int{8, 8})
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) != 3 {
		t.Errorf("placements = %d, want 3", len(ms))
	}
}

func TestStrategyString(t *testing.T) {
	plan, err := Plan(V100System(2), Request{Axes: []int{16}, ReduceAxes: []int{0}, Bytes: 1e8})
	if err != nil {
		t.Fatal(err)
	}
	s := plan.Best().String()
	if !strings.Contains(s, "predicted") {
		t.Errorf("String = %q", s)
	}
}

func ExamplePlan() {
	// Plan gradient reduction for data parallelism (axis 0, size 4)
	// combined with 16-way parameter sharding on a 4-node A100 system.
	plan, err := Plan(A100System(4), Request{
		Axes:       []int{4, 16},
		ReduceAxes: []int{0},
	})
	if err != nil {
		panic(err)
	}
	best := plan.Best()
	fmt.Println("placement:", best.Matrix)
	fmt.Println("program:  ", best.Program)
	// Output:
	// placement: [[1 4] [4 4]]
	// program:   (0, InsideGroup, AllReduce)
}

func TestStrategyTrace(t *testing.T) {
	plan, err := Plan(V100System(2), Request{Axes: []int{4, 4}, ReduceAxes: []int{1}, Bytes: 1e8})
	if err != nil {
		t.Fatal(err)
	}
	total, events := plan.Best().Trace()
	if total <= 0 || len(events) == 0 {
		t.Fatalf("Trace: total=%v events=%d", total, len(events))
	}
	for _, ev := range events {
		if ev.End > total+1e-9 {
			t.Errorf("event ends (%v) after total (%v)", ev.End, total)
		}
	}
}

func TestStrategyPipelined(t *testing.T) {
	plan, err := Plan(A100System(4), Request{Axes: []int{4, 16}, ReduceAxes: []int{0}})
	if err != nil {
		t.Fatal(err)
	}
	// Find the RS-AR-AG strategy for the cross-node matrix.
	for _, s := range plan.Strategies {
		if s.Matrix.String() != "[[2 2] [2 8]]" || len(s.Lowered().Steps) != 3 {
			continue
		}
		one := s.Pipelined(1)
		b, best := s.OptimalBuckets(32)
		if b > 1 && best >= one {
			t.Errorf("optimal buckets %d with time %v not better than %v", b, best, one)
		}
		return
	}
	t.Skip("no 3-step strategy found for the cross-node matrix")
}
