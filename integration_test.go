package p2

import (
	"testing"

	"p2/internal/hierarchy"
	"p2/internal/lower"
	"p2/internal/placement"
	"p2/internal/synth"
	"p2/internal/verify"
)

// TestSuperPodThreeLevelPipeline exercises the whole pipeline on a
// three-level hierarchy (pods × nodes × GPUs): placements enumerate over
// three columns, synthesis sees up-to-three-level universes, lowering and
// both simulators handle the deeper topology, and the concrete-data
// executor confirms correctness.
func TestSuperPodThreeLevelPipeline(t *testing.T) {
	sys := SuperPodSystem(2, 2) // 32 GPUs
	axes := []int{8, 4}

	ms, err := Placements(sys, axes)
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) < 4 {
		t.Fatalf("only %d placements for a 3-level hierarchy", len(ms))
	}

	plan, err := Plan(sys, Request{Axes: axes, ReduceAxes: []int{0}, Bytes: 1e9})
	if err != nil {
		t.Fatal(err)
	}
	best := plan.Best()
	if best.Predicted <= 0 {
		t.Fatal("non-positive prediction")
	}
	// The best placement should keep the reduction axis as local as
	// possible: its matrix assigns all 8 reduced shards within one node.
	if got := best.Matrix.Row(0)[2]; got != 8 {
		t.Errorf("best placement splits the reduction axis above the node level: %v", best.Matrix)
	}
	if best.Measure() <= 0 {
		t.Error("non-positive measurement")
	}

	// Concrete-data verification over the best placement's programs.
	m := best.Matrix
	h, err := hierarchy.Build(hierarchy.KindReductionAxes, m, []int{0}, hierarchy.Options{})
	if err != nil {
		t.Fatal(err)
	}
	res := synth.Synthesize(h, synth.Options{})
	for _, p := range res.Programs {
		lp, err := lower.Lower(p, h)
		if err != nil {
			t.Fatal(err)
		}
		if err := verify.Check(lp, m, []int{0}, 2); err != nil {
			t.Errorf("program %v: %v", p, err)
		}
	}
}

// TestCrossPodPlacementImpact verifies that the placement story holds on
// the deeper hierarchy: reductions confined to nodes beat pod-spanning and
// cluster-spanning placements by orders of magnitude.
func TestCrossPodPlacementImpact(t *testing.T) {
	sys := SuperPodSystem(2, 2)
	axes := []int{8, 4}
	plan, err := Plan(sys, Request{Axes: axes, ReduceAxes: []int{0}, Bytes: 4e9})
	if err != nil {
		t.Fatal(err)
	}
	byMatrix := map[string]float64{}
	base := synth.BaselineAllReduce().String()
	for _, s := range plan.Strategies {
		if s.Program.String() == base {
			byMatrix[s.Matrix.String()] = s.Predicted
		}
	}
	local, okL := byMatrix["[[1 1 8] [2 2 1]]"]
	spanning, okS := byMatrix["[[2 2 2] [1 1 4]]"]
	if !okL || !okS {
		t.Fatalf("expected matrices missing: %v", byMatrix)
	}
	if spanning/local < 10 {
		t.Errorf("cross-pod AllReduce only %.1f× slower than local", spanning/local)
	}
}

// TestPlacementDeviceBijectionAcrossThreeLevels property-checks the
// device↔axis bijection on a 3-level matrix.
func TestPlacementDeviceBijectionAcrossThreeLevels(t *testing.T) {
	m, err := placement.NewMatrix([]int{2, 2, 8}, []int{8, 4},
		[][]int{{2, 1, 4}, {1, 2, 2}})
	if err != nil {
		t.Fatal(err)
	}
	for dev := 0; dev < m.NumDevices(); dev++ {
		if back := m.Device(m.AxisCoords(dev)); back != dev {
			t.Fatalf("bijection broken at device %d", dev)
		}
	}
}
