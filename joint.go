package p2

import (
	"fmt"
	"sort"

	"p2/internal/netsim"
)

// Reduction describes one recurring reduction of a training step for joint
// placement planning: which axes it reduces over, how many bytes each
// occurrence moves, and how often it occurs per step.
type Reduction struct {
	// ReduceAxes are the axis indices reduced over.
	ReduceAxes []int
	// Bytes is the per-device payload of one occurrence.
	Bytes float64
	// Count is how many times the reduction runs per training step
	// (e.g. twice per transformer layer for tensor-parallel AllReduce);
	// 0 means 1.
	Count float64
	// Algo is the modelled NCCL algorithm (default Ring).
	Algo Algorithm
}

// JointChoice is the outcome for one placement: the best strategy per
// reduction and the weighted total communication time per step.
type JointChoice struct {
	Matrix *Matrix
	// PerReduction[i] is the fastest-predicted strategy for reductions[i]
	// under this placement.
	PerReduction []*Strategy
	// Costs[i] is Count_i × predicted seconds of PerReduction[i].
	Costs []float64
	// Total is the summed per-step communication time.
	Total float64
}

// MeasureConcurrent emulates the choice's per-reduction strategies running
// at the same time on the shared network (different streams contending for
// the same links) and returns per-reduction completion times. Compare with
// Costs, which assumes the reductions run back to back.
func (c *JointChoice) MeasureConcurrent() []float64 {
	if len(c.PerReduction) == 0 {
		return nil
	}
	first := c.PerReduction[0]
	sim := &netsim.Simulator{Sys: first.sys, Algo: first.algo, Bytes: first.bytes}
	specs := make([]netsim.ConcurrentSpec, len(c.PerReduction))
	for i, s := range c.PerReduction {
		specs[i] = netsim.ConcurrentSpec{
			Program: s.lowered,
			Bytes:   s.bytes,
			Algo:    s.algo,
			HasAlgo: true,
		}
	}
	return sim.MeasureConcurrentSpecs(specs)
}

// JointPlan ranks every placement by the combined cost of all requested
// reductions.
type JointPlan struct {
	// Choices are all placements, cheapest total first.
	Choices []*JointChoice
	System  *System
	Axes    []int
}

// Best returns the placement minimizing total per-step communication.
func (jp *JointPlan) Best() *JointChoice { return jp.Choices[0] }

// PlanJoint evaluates every placement of the axes against all reductions
// jointly — the §4.1 observation that "models with multiple parallelism
// forms involve reductions across both axes, and the selection of a mapping
// should take all of them into account" turned into an API.
func PlanJoint(sys *System, axes []int, reductions []Reduction) (*JointPlan, error) {
	if len(reductions) == 0 {
		return nil, fmt.Errorf("p2: PlanJoint needs at least one reduction")
	}
	matrices, err := Placements(sys, axes)
	if err != nil {
		return nil, err
	}
	jp := &JointPlan{System: sys, Axes: axes}
	for _, m := range matrices {
		choice := &JointChoice{Matrix: m}
		for _, red := range reductions {
			plan, err := Plan(sys, Request{
				Axes:       axes,
				ReduceAxes: red.ReduceAxes,
				Algo:       red.Algo,
				Bytes:      red.Bytes,
				Matrix:     m,
			})
			if err != nil {
				return nil, err
			}
			best := plan.Best()
			count := red.Count
			if count <= 0 {
				count = 1
			}
			choice.PerReduction = append(choice.PerReduction, best)
			choice.Costs = append(choice.Costs, count*best.Predicted)
			choice.Total += count * best.Predicted
		}
		jp.Choices = append(jp.Choices, choice)
	}
	sort.SliceStable(jp.Choices, func(i, j int) bool {
		return jp.Choices[i].Total < jp.Choices[j].Total
	})
	return jp, nil
}
