package p2

import (
	"context"
	"errors"
	"fmt"
	"sort"

	"p2/internal/cost"
	"p2/internal/netsim"
	"p2/internal/plan"
)

// Reduction describes one recurring reduction of a training step for joint
// placement planning: which axes it reduces over, how many bytes each
// occurrence moves, and how often it occurs per step.
type Reduction struct {
	// ReduceAxes are the axis indices reduced over.
	ReduceAxes []int
	// Bytes is the per-device payload of one occurrence.
	Bytes float64
	// Count is how many times the reduction runs per training step
	// (e.g. twice per transformer layer for tensor-parallel AllReduce);
	// 0 means 1.
	Count float64
	// Algo is the modelled NCCL algorithm (default Ring).
	Algo Algorithm
	// Algos, when it has two or more entries, searches the per-step
	// algorithm assignment for this reduction instead of pinning Algo
	// (see Request.Algos); each reduction of a joint request may search
	// its own set.
	Algos []Algorithm
}

// JointChoice is the outcome for one placement: the best strategy per
// reduction and the weighted total communication time per step.
type JointChoice struct {
	// Matrix is the placement this choice scores.
	Matrix *Matrix
	// PerReduction[i] is the fastest-predicted strategy for reductions[i]
	// under this placement.
	PerReduction []*Strategy
	// Costs[i] is Count_i × predicted seconds of PerReduction[i].
	Costs []float64
	// Total is the summed per-step communication time.
	Total float64
	// Measured mirrors Costs with emulated seconds — Measured[i] is
	// Count_i × the emulated time of PerReduction[i] (whose raw value is
	// PerReduction[i].Measured) — and MeasuredTotal their sum, when the
	// joint plan ran in a measured mode (JointOptions.Measure); nil/0 in
	// purely analytic plans.
	Measured      []float64
	MeasuredTotal float64
}

// MeasureConcurrent emulates the choice's per-reduction strategies running
// at the same time on the shared network (different streams contending for
// the same links) and returns per-reduction completion times. Compare with
// Costs, which assumes the reductions run back to back.
func (c *JointChoice) MeasureConcurrent() []float64 {
	if len(c.PerReduction) == 0 {
		return nil
	}
	first := c.PerReduction[0]
	sim := &netsim.Simulator{Sys: first.sys, Algo: first.algo, Bytes: first.bytes}
	specs := make([]netsim.ConcurrentSpec, len(c.PerReduction))
	for i, s := range c.PerReduction {
		specs[i] = netsim.ConcurrentSpec{
			Program:   s.lowered,
			Bytes:     s.bytes,
			Algo:      s.algo,
			HasAlgo:   true,
			StepAlgos: s.StepAlgos,
		}
	}
	return sim.MeasureConcurrentSpecs(specs)
}

// JointPlan ranks every placement by the combined cost of all requested
// reductions.
type JointPlan struct {
	// Choices are all placements, cheapest predicted total first —
	// cheapest measured total first when the plan ran in a measured mode
	// (JointOptions.Measure). With JointOptions.TopK set, only the K
	// cheapest are present.
	Choices []*JointChoice
	// System and Axes echo the planned request.
	System *System
	Axes   []int
	// Stats reports the planning effort (placements, synthesis runs,
	// signature-memo hits, candidates scored), the pruning wins with
	// TopK set, and the emulation effort in measured modes.
	Stats plan.Stats
	// Partial marks an anytime result (PlanJointCtx): the context was
	// cancelled mid-plan and Choices holds the best-so-far placement
	// ranking — only fully-scored placements (every reduction evaluated)
	// appear, correctly ordered among themselves. Always false from
	// PlanJoint and completed requests.
	Partial bool
}

// Best returns the placement minimizing total per-step communication
// (predicted, or measured in measured modes).
func (jp *JointPlan) Best() *JointChoice { return jp.Choices[0] }

// JointOptions tune joint planning.
type JointOptions struct {
	// Parallelism bounds the planner's worker pool (0 = GOMAXPROCS,
	// 1 = sequential). Any value yields the same placement ranking.
	Parallelism int
	// TopK, when positive, keeps only the K cheapest placements.
	TopK int
	// Measure selects measured-in-the-loop placement ranking: with
	// MeasureRerank the analytic top-K placements' per-reduction winners
	// are measured on the emulator (each reduction back to back, like
	// Costs — contrast JointChoice.MeasureConcurrent) and the placements
	// re-sorted by summed weighted measured time; MeasureRankAll measures
	// every placement. MeasureOff (the zero value) ranks analytically.
	Measure MeasureMode
	// SimOpts tunes the emulator used by measured modes; ignored with
	// MeasureOff.
	SimOpts SimOptions
}

// PlanJoint evaluates every placement of the axes against all reductions
// jointly — the §4.1 observation that "models with multiple parallelism
// forms involve reductions across both axes, and the selection of a mapping
// should take all of them into account" turned into an API. It runs on the
// parallel memoized engine with default options; use PlanJointOpts to tune
// the worker pool and placement top-K.
func PlanJoint(sys *System, axes []int, reductions []Reduction) (*JointPlan, error) {
	return PlanJointOpts(sys, axes, reductions, JointOptions{})
}

// PlanJointOpts is PlanJoint with explicit engine options. Placements fan
// out over the worker pool and synthesis is memoized by hierarchy
// signature across both placements and reductions, so e.g. the data- and
// tensor-parallel reductions of a transformer share synthesis whenever
// their axis rows induce the same reduction hierarchy. The analytic
// placement ranking (including tie order) is identical to
// PlanJointSerial; measured modes (opts.Measure) re-sort it by emulated
// totals, equally deterministically.
func PlanJointOpts(sys *System, axes []int, reductions []Reduction, opts JointOptions) (*JointPlan, error) {
	return PlanJointCtx(context.Background(), sys, axes, reductions, opts) //p2:ctx-ok documented no-deadline compatibility entry point wrapping PlanJointCtx
}

// PlanJointCtx is PlanJointOpts under a context, with the same anytime
// semantics as PlanCtx: an uncancelled context is byte-identical to
// PlanJointOpts; on cancellation the completed placements are returned
// with JointPlan.Partial set (nil error), or the context's error if none
// finished. A Planner's shared memo is equally safe here — see
// Planner.PlanJointCtx.
func PlanJointCtx(ctx context.Context, sys *System, axes []int, reductions []Reduction, opts JointOptions) (*JointPlan, error) {
	return (&Planner{eng: plan.New()}).PlanJointCtx(ctx, sys, axes, reductions, opts)
}

// PlanJointCtx plans one joint request on the Planner's shared synthesis
// memo; see the package-level PlanJointCtx for the anytime contract.
func (pl *Planner) PlanJointCtx(ctx context.Context, sys *System, axes []int, reductions []Reduction, opts JointOptions) (*JointPlan, error) {
	if len(reductions) == 0 {
		return nil, fmt.Errorf("p2: PlanJoint needs at least one reduction")
	}
	matrices, err := Placements(sys, axes)
	if err != nil {
		return nil, err
	}
	specs := make([]plan.JointSpec, len(reductions))
	for i, red := range reductions {
		bytes := red.Bytes
		if bytes <= 0 {
			bytes = cost.DefaultPayload(sys)
		}
		algo := red.Algo
		if len(red.Algos) == 1 {
			algo = red.Algos[0]
		}
		specs[i] = plan.JointSpec{
			ReduceAxes: red.ReduceAxes,
			Model:      &cost.Model{Sys: sys, Algo: algo, Bytes: bytes},
			Weight:     red.Count,
			Collapse:   len(red.ReduceAxes) > 1,
			Algos:      red.Algos,
		}
	}
	jcs, stats, err := pl.eng.RunJointCtx(ctx, matrices, specs, plan.Options{
		Parallelism: opts.Parallelism,
		TopK:        opts.TopK,
		Rerank:      opts.Measure,
		SimOpts:     opts.SimOpts,
	})
	partial := false
	if err != nil {
		if isCtxErr(err) && len(jcs) > 0 {
			partial = true
		} else {
			var noProg *plan.ErrNoPrograms
			if errors.As(err, &noProg) {
				return nil, fmt.Errorf("p2: no valid strategies for axes %v reduce %v", axes, noProg.ReduceAxes)
			}
			return nil, err
		}
	}
	jp := &JointPlan{System: sys, Axes: axes, Stats: stats, Partial: partial}
	for _, jc := range jcs {
		choice := &JointChoice{
			Matrix:        jc.Matrix,
			Costs:         jc.Costs,
			Total:         jc.Total,
			Measured:      jc.Measured,
			MeasuredTotal: jc.MeasuredTotal,
		}
		for ri, c := range jc.PerReduction {
			choice.PerReduction = append(choice.PerReduction,
				strategyFromCandidate(c, sys, specs[ri].Model.Algo, specs[ri].Model.Bytes))
		}
		jp.Choices = append(jp.Choices, choice)
	}
	return jp, nil
}

// PlanJointSerial is the reference implementation of PlanJoint: one
// placement at a time, one full serial Plan per (placement, reduction),
// always analytic (no measured mode). The parallel engine must reproduce
// its placement ranking byte for byte (see the equivalence tests).
func PlanJointSerial(sys *System, axes []int, reductions []Reduction) (*JointPlan, error) {
	if len(reductions) == 0 {
		return nil, fmt.Errorf("p2: PlanJoint needs at least one reduction")
	}
	matrices, err := Placements(sys, axes)
	if err != nil {
		return nil, err
	}
	jp := &JointPlan{System: sys, Axes: axes}
	for _, m := range matrices {
		choice := &JointChoice{Matrix: m}
		for _, red := range reductions {
			plan, err := PlanSerial(sys, Request{
				Axes:       axes,
				ReduceAxes: red.ReduceAxes,
				Algo:       red.Algo,
				Algos:      red.Algos,
				Bytes:      red.Bytes,
				Matrix:     m,
			})
			if err != nil {
				return nil, err
			}
			best := plan.Best()
			count := red.Count
			if count <= 0 {
				count = 1
			}
			choice.PerReduction = append(choice.PerReduction, best)
			choice.Costs = append(choice.Costs, count*best.Predicted)
			choice.Total += count * best.Predicted
		}
		jp.Choices = append(jp.Choices, choice)
	}
	sort.SliceStable(jp.Choices, func(i, j int) bool {
		return jp.Choices[i].Total < jp.Choices[j].Total
	})
	return jp, nil
}
